package fftgrad

// One benchmark per paper table/figure: each drives the same code path as
// the corresponding experiment in internal/experiments (Quick mode, output
// discarded), so `go test -bench=.` regenerates the evaluation end to end
// and reports how long each artifact takes to reproduce. Primitive-level
// benchmarks for the packing claim of Sec. 3.2 live in internal/pack;
// per-compressor microbenchmarks live in internal/compress.

import (
	"io"
	"testing"

	"fftgrad/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opts := experiments.Options{Out: io.Discard, Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2LayerwiseCommComp(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFig4GradientHistogram(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5FFTvsTopK(b *testing.B)            { benchExperiment(b, "fig5") }
func BenchmarkFig6StatusVectorOverhead(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7QuantSchemes(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig9AdjustableRange(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10MinimalRatio(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11AllgatherLatency(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12AlphaVerification(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13ThetaConvergence(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig13CNN(b *testing.B)                 { benchExperiment(b, "fig13cnn") }
func BenchmarkFig14WallTime(b *testing.B)            { benchExperiment(b, "fig14") }
func BenchmarkTable2EndToEnd(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkFig15ReconstructionError(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16WeakScaling(b *testing.B)         { benchExperiment(b, "fig16") }

// Design-choice ablations (DESIGN.md §5).
func BenchmarkAblTransform(b *testing.B)  { benchExperiment(b, "abl-transform") }
func BenchmarkAblQuant(b *testing.B)      { benchExperiment(b, "abl-quant") }
func BenchmarkAblSelect(b *testing.B)     { benchExperiment(b, "abl-select") }
func BenchmarkAblPack(b *testing.B)       { benchExperiment(b, "abl-pack") }
func BenchmarkAblSchedule(b *testing.B)   { benchExperiment(b, "abl-schedule") }
func BenchmarkAblCollective(b *testing.B) { benchExperiment(b, "abl-collective") }
func BenchmarkAblFeedback(b *testing.B)   { benchExperiment(b, "abl-feedback") }
func BenchmarkAblBitmap(b *testing.B)     { benchExperiment(b, "abl-bitmap") }
func BenchmarkAblChunk(b *testing.B)      { benchExperiment(b, "abl-chunk") }

// Faulttolerance: two recovery modes for BSP training — the
// fault-tolerance property the paper's Background attributes to the PS
// scheme, provided here for the allreduce-style exchange.
//
// Offline restore (phases 1-3): checkpoint the run, "crash" it, restart
// the whole job from the CRC-checked snapshot.
//
// Live rejoin (phase 4): run under the failure-aware cluster runtime
// with a deterministic chaos schedule that crashes one rank mid-epoch.
// The survivors suspect it, degrade the allreduce over the remaining
// ranks, and when the rank heals it rejoins the SAME run from the
// latest in-runtime checkpoint — no restart, no lost progress.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"fftgrad/internal/chaos"
	"fftgrad/internal/checkpoint"
	"fftgrad/internal/cluster"
	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/dist"
	"fftgrad/internal/models"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
	"fftgrad/internal/stats"
)

func main() {
	train, test := data.GaussianBlobs(2560, 8, 24, 0.9, 17).Split(2048)
	base := dist.Config{
		Workers: 4, Batch: 16, Seed: 17,
		Momentum:      0.9,
		LR:            optim.ConstLR(0.05),
		Model:         func(s int64) *nn.Network { return models.MLP(24, 48, 8, s) },
		Train:         train,
		Test:          test,
		NewCompressor: func() compress.Compressor { return compress.NewFFT(0.85) },
	}

	// Phase 1: train 2 epochs, checkpointing each epoch into a buffer
	// (stands in for durable storage).
	var snapshot bytes.Buffer
	cfg := base
	cfg.Epochs = 2
	cfg.CheckpointEvery = 1
	cfg.OnCheckpoint = func(st *checkpoint.State) {
		snapshot.Reset()
		if err := checkpoint.Write(&snapshot, st); err != nil {
			log.Fatal(err)
		}
	}
	res1, err := dist.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: trained 2 epochs, acc %.3f, checkpoint %.1f KB (CRC-protected)\n",
		res1.Epochs[len(res1.Epochs)-1].TestAcc, float64(snapshot.Len())/1024)

	fmt.Println("phase 2: simulated crash — all worker state lost")

	// Phase 3: restore and continue.
	st, err := checkpoint.Read(bytes.NewReader(snapshot.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 3: restored snapshot from epoch %d (iter %d)\n", st.Epoch, st.Iter)
	resumed := base
	resumed.Epochs = 2
	resumed.Resume = st
	res2, err := dist.Train(resumed)
	if err != nil {
		log.Fatal(err)
	}

	t := &stats.Table{Headers: []string{"phase", "epochs", "final loss", "final acc"}}
	t.AddRow("before crash", 2, res1.Epochs[1].TrainLoss, res1.Epochs[1].TestAcc)
	t.AddRow("after resume", 2, res2.Epochs[1].TrainLoss, res2.Epochs[1].TestAcc)
	fmt.Print(t.String())

	if res2.Epochs[1].TrainLoss < res1.Epochs[1].TrainLoss {
		fmt.Println("\nresumed training continued improving from the snapshot — no progress lost")
	} else {
		fmt.Println("\nresumed run did not improve; inspect the schedule")
	}

	// Phase 4: live rejoin — same failure, no restart. A chaos schedule
	// crashes rank 2 mid-run; the cluster runtime suspects it, survivors
	// continue with drop-and-rescale, and the healed rank rejoins the
	// running job from the latest in-runtime checkpoint.
	fmt.Println("\nphase 4: live rejoin — rank 2 crashes mid-epoch under chaos and re-enters the running job")
	live := base
	live.Epochs = 4
	live.Fault = &dist.FaultConfig{
		Cluster: cluster.Config{
			Heartbeat:    time.Millisecond,
			SuspectAfter: 100 * time.Millisecond,
			Policy:       cluster.DropRescale,
			RejoinWait:   30 * time.Second,
		},
		Chaos: &chaos.Config{
			Seed: 17,
			// Op-indexed crash window: down mid-run, heals ~1s later.
			Crashes: []chaos.CrashEvent{{Rank: 2, AtOp: 2000, RecoverAfterOps: 1000}},
		},
	}
	res3, err := dist.Train(live)
	if err != nil {
		log.Fatal(err)
	}
	s := res3.Fault.Cluster
	fmt.Printf("phase 4: finished at acc %.3f — %d suspicion(s), %d degraded iteration(s), %d rejoin(s), %d/%d ranks alive at end\n",
		res3.Epochs[len(res3.Epochs)-1].TestAcc, s.Suspicions, s.DegradedIterations, s.Rejoins, s.FinalAlive, live.Workers)
	switch {
	case s.Rejoins > 0 && s.FinalAlive == live.Workers:
		fmt.Println("the crashed rank restored the published checkpoint and rejoined the live view — the run never stopped")
	case s.Suspicions > 0:
		fmt.Println("the crashed rank was evicted; survivors completed degraded (it did not heal in time to rejoin)")
	default:
		fmt.Println("the crash window closed before the suspicion deadline — the run absorbed it as a straggle")
	}
}

// Faulttolerance: checkpoint a distributed training run, "crash" it, and
// resume from the snapshot — the fault-tolerance property the paper's
// Background attributes to the PS scheme, provided here for BSP training
// through CRC-checked state snapshots.
package main

import (
	"bytes"
	"fmt"
	"log"

	"fftgrad/internal/checkpoint"
	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/dist"
	"fftgrad/internal/models"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
	"fftgrad/internal/stats"
)

func main() {
	train, test := data.GaussianBlobs(2560, 8, 24, 0.9, 17).Split(2048)
	base := dist.Config{
		Workers: 4, Batch: 16, Seed: 17,
		Momentum:      0.9,
		LR:            optim.ConstLR(0.05),
		Model:         func(s int64) *nn.Network { return models.MLP(24, 48, 8, s) },
		Train:         train,
		Test:          test,
		NewCompressor: func() compress.Compressor { return compress.NewFFT(0.85) },
	}

	// Phase 1: train 2 epochs, checkpointing each epoch into a buffer
	// (stands in for durable storage).
	var snapshot bytes.Buffer
	cfg := base
	cfg.Epochs = 2
	cfg.CheckpointEvery = 1
	cfg.OnCheckpoint = func(st *checkpoint.State) {
		snapshot.Reset()
		if err := checkpoint.Write(&snapshot, st); err != nil {
			log.Fatal(err)
		}
	}
	res1, err := dist.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: trained 2 epochs, acc %.3f, checkpoint %.1f KB (CRC-protected)\n",
		res1.Epochs[len(res1.Epochs)-1].TestAcc, float64(snapshot.Len())/1024)

	fmt.Println("phase 2: simulated crash — all worker state lost")

	// Phase 3: restore and continue.
	st, err := checkpoint.Read(bytes.NewReader(snapshot.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 3: restored snapshot from epoch %d (iter %d)\n", st.Epoch, st.Iter)
	resumed := base
	resumed.Epochs = 2
	resumed.Resume = st
	res2, err := dist.Train(resumed)
	if err != nil {
		log.Fatal(err)
	}

	t := &stats.Table{Headers: []string{"phase", "epochs", "final loss", "final acc"}}
	t.AddRow("before crash", 2, res1.Epochs[1].TrainLoss, res1.Epochs[1].TestAcc)
	t.AddRow("after resume", 2, res2.Epochs[1].TrainLoss, res2.Epochs[1].TestAcc)
	fmt.Print(t.String())

	if res2.Epochs[1].TrainLoss < res1.Epochs[1].TrainLoss {
		fmt.Println("\nresumed training continued improving from the snapshot — no progress lost")
	} else {
		fmt.Println("\nresumed run did not improve; inspect the schedule")
	}
}

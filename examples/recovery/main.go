// Recovery: demonstrate the paper's Theorem 3.5 recipe — training with an
// aggressive θ=0.9 stalls at an error floor, but dropping θ to 0 halfway
// through recovers the lossless trajectory (Fig. 13).
package main

import (
	"fmt"
	"log"

	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/dist"
	"fftgrad/internal/models"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
	"fftgrad/internal/sparsify"
	"fftgrad/internal/stats"
)

func main() {
	train, test := data.GaussianBlobs(3584, 8, 24, 0.9, 11).Split(3072)
	const epochs = 6

	run := func(name string, sched sparsify.Schedule) []dist.EpochStats {
		res, err := dist.Train(dist.Config{
			Workers: 4, Batch: 16, Epochs: epochs, Seed: 11,
			Momentum:      0.9,
			LR:            optim.ConstLR(0.05),
			Model:         func(s int64) *nn.Network { return models.MLP(24, 48, 8, s) },
			Train:         train,
			Test:          test,
			NewCompressor: func() compress.Compressor { return compress.NewFFT(0) },
			ThetaSchedule: sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Epochs
	}

	baseline := run("sgd", sparsify.Const(0))
	stuck := run("θ=0.9 fixed", sparsify.Const(0.9))
	recovered := run("θ=0.9→0", sparsify.StepDrop{Initial: 0.9, Final: 0, DropEpoch: epochs / 2})

	t := &stats.Table{Headers: []string{"epoch", "SGD loss", "θ=0.9 loss", "θ=0.9→0 loss", "θ in effect"}}
	for i := range baseline {
		t.AddRow(i, baseline[i].TrainLoss, stuck[i].TrainLoss, recovered[i].TrainLoss, recovered[i].Theta)
	}
	fmt.Print(t.String())

	last := epochs - 1
	fmt.Printf("\nθ=0.9 ends %.1fx above the SGD loss; the θ=0.9→0 schedule ends %.1fx above\n",
		stuck[last].TrainLoss/baseline[last].TrainLoss,
		recovered[last].TrainLoss/baseline[last].TrainLoss)
	fmt.Println("recipe: when an aggressive compression ratio stalls training, shrink θ — " +
		"convergence is guaranteed for θ_t² = L·η_t (Theorem 3.5)")
}

// TCPCluster: run the gradient-exchange step over real TCP sockets — the
// transport a multi-machine deployment would use. Three ranks compress
// their local gradients with the FFT pipeline, allgather the messages
// over loopback TCP, decompress all peers, and verify they agree on the
// averaged gradient.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"fftgrad/internal/comm"
	"fftgrad/internal/compress"
	"fftgrad/internal/stats"
)

func main() {
	const (
		p = 3
		n = 1 << 16
	)
	comms, err := comm.StartLocalTCPCluster(p)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	fmt.Printf("%d TCP ranks connected on loopback\n", p)

	// Each rank's local sub-gradient (deterministic per rank).
	grads := make([][]float32, p)
	for r := 0; r < p; r++ {
		rng := rand.New(rand.NewSource(int64(r + 1)))
		g := make([]float32, n)
		v := 0.0
		for i := range g {
			v = 0.97*v + 0.03*rng.NormFloat64()
			g[i] = float32(0.1 * v)
		}
		grads[r] = g
	}
	// The exact average, for checking the lossy one.
	exact := make([]float32, n)
	for _, g := range grads {
		for i, v := range g {
			exact[i] += v / p
		}
	}

	averaged := make([][]float32, p)
	bytesOnWire := make([]int, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := compress.NewFFT(0.85)
			msg, err := c.Compress(grads[rank])
			if err != nil {
				log.Fatal(err)
			}
			bytesOnWire[rank] = len(msg)
			msgs, err := comms[rank].Allgather(msg)
			if err != nil {
				log.Fatal(err)
			}
			avg := make([]float32, n)
			rec := make([]float32, n)
			for _, m := range msgs {
				if err := c.Decompress(rec, m); err != nil {
					log.Fatal(err)
				}
				for i, v := range rec {
					avg[i] += v / p
				}
			}
			averaged[rank] = avg
		}(r)
	}
	wg.Wait()

	// All ranks must hold the identical averaged gradient.
	for r := 1; r < p; r++ {
		for i := range averaged[0] {
			if averaged[r][i] != averaged[0][i] {
				log.Fatalf("rank %d diverged at %d", r, i)
			}
		}
	}
	fmt.Printf("wire message: %.1f KB per rank (%.1fx compression)\n",
		float64(bytesOnWire[0])/1024, compress.Ratio(n, make([]byte, bytesOnWire[0])))
	fmt.Printf("all %d ranks agree on the averaged gradient\n", p)
	fmt.Printf("lossy-average error vs exact average: relL2 = %.4f\n",
		stats.RelL2(exact, averaged[0]))
}

// Jobservice: the multi-tenant training service in one process — a
// scheduler with a shared worker pool runs a BSP-allreduce job and a
// parameter-server job concurrently (the two parallelization schemes of
// the paper's Fig. 1), each with its own compressor, telemetry registry
// and trace ring, submitted and observed through the same HTTP/JSON API
// that `trainer -serve` exposes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"

	"fftgrad/internal/serve"
	"fftgrad/internal/telemetry"
)

func main() {
	// A 4-slot pool: both 2-worker jobs fit side by side.
	srv := serve.New(serve.Config{WorkerSlots: 4})
	mux := http.NewServeMux()
	mux.Handle("/", telemetry.NewRegistry().Handler())
	srv.Routes(mux)
	addr, shutdown, err := telemetry.ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	base := "http://" + addr
	fmt.Printf("job service listening on %s\n\n", base)

	submit := func(spec serve.Spec) serve.Info {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var info serve.Info
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %s: %s backend, %s θ=%.2f, %d workers -> %s\n",
			info.ID, info.Backend, info.Method, info.Theta, info.Workers, info.State)
		return info
	}

	bsp := submit(serve.Spec{
		Name: "bsp-fft", Backend: "bsp",
		Workers: 2, Epochs: 3, Samples: 1024, Seed: 42,
		Method: "fft", Theta: 0.85,
	})
	ps := submit(serve.Spec{
		Name: "ps-topk", Backend: "ps",
		Workers: 2, Epochs: 3, Samples: 1024, Seed: 43,
		Method: "topk", Theta: 0.9,
	})

	// Follow both jobs through their SSE event feeds: each `data:` line
	// is one lifecycle or epoch event.
	follow := func(info serve.Info, done chan<- serve.Info) {
		resp, err := http.Get(base + "/jobs/" + info.ID + "/events")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev serve.Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				log.Fatal(err)
			}
			if ev.Epoch != nil {
				fmt.Printf("  %s epoch %d: loss %.4f, acc %.3f\n",
					info.ID, ev.Epoch.Epoch, ev.Epoch.TrainLoss, ev.Epoch.TestAcc)
			}
		}
		final, err := http.Get(base + "/jobs/" + info.ID)
		if err != nil {
			log.Fatal(err)
		}
		defer final.Body.Close()
		var fi serve.Info
		if err := json.NewDecoder(final.Body).Decode(&fi); err != nil {
			log.Fatal(err)
		}
		done <- fi
	}
	bspDone := make(chan serve.Info, 1)
	psDone := make(chan serve.Info, 1)
	go follow(bsp, bspDone)
	go follow(ps, psDone)
	bspFinal, psFinal := <-bspDone, <-psDone

	fmt.Println()
	for _, fi := range []serve.Info{bspFinal, psFinal} {
		fmt.Printf("%s (%s, %s): %s after %d iterations, acc %.3f, ratio %.1fx\n",
			fi.ID, fi.Name, fi.Backend, fi.State, fi.Iterations, fi.TestAcc, fi.CompressionRatio)
	}

	// One scrape shows both tenants: every per-job sample carries a
	// job="<id>" label on the merged endpoint.
	resp, err := http.Get(base + "/jobs/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	perJob := map[string]int{}
	msc := bufio.NewScanner(resp.Body)
	for msc.Scan() {
		line := msc.Text()
		for _, fi := range []serve.Info{bspFinal, psFinal} {
			if strings.Contains(line, fmt.Sprintf("job=%q", fi.ID)) {
				perJob[fi.ID]++
			}
		}
	}
	fmt.Printf("\nmerged /jobs/metrics: %d series for %s, %d for %s — one scrape, tenants distinguishable\n",
		perJob[bspFinal.ID], bspFinal.ID, perJob[psFinal.ID], psFinal.ID)
}

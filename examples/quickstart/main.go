// Quickstart: compress a gradient with the paper's FFT pipeline, ship it,
// and reconstruct it — the five-line version of the whole system.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fftgrad/internal/compress"
	"fftgrad/internal/stats"
)

func main() {
	// A gradient-like signal: spatially correlated, near-Gaussian,
	// concentrated around zero — exactly what DNN training produces.
	r := rand.New(rand.NewSource(42))
	grad := make([]float32, 1<<20)
	v := 0.0
	for i := range grad {
		v = 0.97*v + 0.03*r.NormFloat64()
		grad[i] = float32(0.1*v + 0.002*r.NormFloat64())
	}

	// The paper's default configuration: drop 85% of the frequency
	// components, quantize the survivors to 10-bit range-based floats.
	c := compress.NewFFT(0.85)

	msg, err := c.Compress(grad)
	if err != nil {
		log.Fatal(err)
	}
	rec := make([]float32, len(grad))
	if err := c.Decompress(rec, msg); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gradient:        %d floats (%.2f MB)\n", len(grad), float64(len(grad)*4)/(1<<20))
	fmt.Printf("wire message:    %.2f MB\n", float64(len(msg))/(1<<20))
	fmt.Printf("compression:     %.1fx\n", compress.Ratio(len(grad), msg))
	fmt.Printf("relative L2 err: %.4f\n", stats.RelL2(grad, rec))

	// Compare against spatial Top-k at the same drop ratio: FFT keeps the
	// distribution, Top-k zeroes 85% of entries outright.
	tk := compress.NewTopK(0.85)
	tmsg, err := tk.Compress(grad)
	if err != nil {
		log.Fatal(err)
	}
	trec := make([]float32, len(grad))
	if err := tk.Decompress(trec, tmsg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat the same θ=0.85, Top-k error: %.4f (FFT wins: %v)\n",
		stats.RelL2(grad, trec), stats.RelL2(grad, rec) < stats.RelL2(grad, trec))
}

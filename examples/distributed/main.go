// Distributed: train a CNN with 4 BSP workers exchanging FFT-compressed
// gradients, and compare the communication bill against lossless FP32 —
// the end-to-end workflow of the paper's evaluation, scaled to a laptop.
package main

import (
	"fmt"
	"log"

	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/dist"
	"fftgrad/internal/models"
	"fftgrad/internal/netsim"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
	"fftgrad/internal/stats"
)

func main() {
	train, test := data.SynthImages(1536, 8, 16, 0.3, 7).Split(1280)

	run := func(name string, newC func() compress.Compressor) *dist.Result {
		res, err := dist.Train(dist.Config{
			Workers: 4, Batch: 16, Epochs: 3, Seed: 7,
			Momentum:      0.9,
			LR:            optim.ConstLR(0.02),
			Model:         func(s int64) *nn.Network { return models.TinyCNN(8, 16, s) },
			Train:         train,
			Test:          test,
			NewCompressor: newC,
			Fabric:        netsim.CometCluster(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", name)
		t := &stats.Table{Headers: []string{"epoch", "train loss", "test acc"}}
		for _, ep := range res.Epochs {
			t.AddRow(ep.Epoch, ep.TrainLoss, ep.TestAcc)
		}
		fmt.Print(t.String())
		fmt.Printf("ratio %.1fx, modeled comm %.4fs\n\n", res.CompressionRatio, res.CommSeconds)
		return res
	}

	fp32 := run("lossless FP32", func() compress.Compressor { return compress.FP32{} })
	fft := run("FFT θ=0.85 + 10-bit range quant", func() compress.Compressor { return compress.NewFFT(0.85) })

	fmt.Printf("FFT cut modeled communication by %.1fx at %.1f%% of the lossless accuracy\n",
		fp32.CommSeconds/fft.CommSeconds,
		100*fft.Epochs[len(fft.Epochs)-1].TestAcc/fp32.Epochs[len(fp32.Epochs)-1].TestAcc)
}

// Perfguide: use the Sec. 3.3 analytic model to decide, for a given
// cluster, whether gradient compression pays off and which θ to pick —
// the "guidance" contribution of the paper turned into a utility.
package main

import (
	"errors"
	"fmt"
	"math"

	"fftgrad/internal/compress"
	"fftgrad/internal/models"
	"fftgrad/internal/netsim"
	"fftgrad/internal/perfmodel"
	"fftgrad/internal/stats"
	"fftgrad/internal/telemetry"
)

func main() {
	// Your pipeline's primitive throughputs. Use `compressbench` to
	// measure them on real hardware; here we use the paper's GPU-class
	// reference rates.
	t := perfmodel.GPUReference()

	fmt.Println("Step 1 — is compression worth enabling at all?")
	tab := &stats.Table{Headers: []string{"network", "min beneficial ratio k"}}
	nets := []struct {
		name    string
		profile netsim.Profile
	}{
		{"1 Gbps Ethernet", netsim.Ethernet1G},
		{"10 Gbps Ethernet", netsim.Ethernet10G},
		{"56 Gbps FDR InfiniBand", netsim.InfiniBandFDR},
	}
	for _, n := range nets {
		k, err := perfmodel.MinBeneficialRatio(n.profile.Bandwidth, t)
		if errors.Is(err, perfmodel.ErrNoBeneficialRatio) {
			tab.AddRow(n.name, "never (pipeline too slow)")
			continue
		} else if err != nil {
			panic(err)
		}
		tab.AddRow(n.name, k)
	}
	fmt.Print(tab.String())

	fmt.Println("\nStep 2 — pick θ: the FFT pipeline's ratio at θ with 10-bit quantization")
	fmt.Println("is roughly 32 / (16·(1-θ)·(10/16) + 0.5) including the bin bitmap:")
	thetaTab := &stats.Table{Headers: []string{"θ", "approx ratio", "enough for FDR (k≈35)?"}}
	kFDR, _ := perfmodel.MinBeneficialRatio(netsim.InfiniBandFDR.Bandwidth, t)
	for _, theta := range []float64{0.5, 0.7, 0.85, 0.95} {
		// values: (1-θ)/2 bins kept × 2 coeffs × 10 bits over 32n bits,
		// bitmap: 0.5 bit per element.
		bits := (1-theta)*10 + 0.5
		ratio := 32 / bits
		thetaTab.AddRow(theta, ratio, ratio > kFDR)
	}
	fmt.Print(thetaTab.String())

	fmt.Println("\nStep 3 — sanity-check the end-to-end win on your model:")
	alex := models.AlexNetImageNetProfile()
	m := alex.TotalGradBytes()
	with, without := perfmodel.EndToEnd(m, netsim.InfiniBandFDR.Bandwidth, 16, t)
	fmt.Printf("AlexNet (%d MB gradient) on FDR at ratio 16: %.1f ms vs %.1f ms uncompressed (%.2fx)\n",
		m>>20, with*1e3, without*1e3, without/with)
	fmt.Println("\nrule of thumb: fast network ⇒ you need the FULL pipeline (sparsify + " +
		"quantize) to clear the bar; slow network ⇒ even mild Top-k helps")

	selfCalibrate(t)
}

// selfCalibrate replaces the reference rates with live ones: it runs
// instrumented FFT round trips on this machine so a telemetry.StageTimer
// measures the Sec. 3.3 terms for real, prints them next to the GPU
// reference, and re-answers Step 1 with the measured pipeline.
func selfCalibrate(ref perfmodel.Throughputs) {
	fmt.Println("\nStep 4 — self-calibration: measure THIS machine's pipeline live")
	st := telemetry.NewStageTimer()
	c := compress.NewFFT(0.85)
	compress.Instrument(c, st)

	grad := make([]float32, 1<<18) // 1 MB of gradients
	for i := range grad {
		grad[i] = float32(math.Sin(float64(i) * 0.37))
	}
	rec := make([]float32, len(grad))
	var msg []byte
	var err error
	for i := 0; i < 8; i++ {
		if msg, err = c.AppendCompress(msg[:0], grad); err != nil {
			panic(err)
		}
		if err = c.DecompressInto(rec, msg); err != nil {
			panic(err)
		}
	}

	measured := perfmodel.Throughputs{
		Tm: st.MeanRate(telemetry.StageConvert),
		Tf: st.MeanRate(telemetry.StageTransform),
		Tp: st.MeanRate(telemetry.StagePack),
		Ts: st.MeanRate(telemetry.StageSelect),
	}
	tab := &stats.Table{Headers: []string{"term", "measured (GB/s)", "GPU reference (GB/s)"}}
	tab.AddRow("Tm convert", measured.Tm/1e9, ref.Tm/1e9)
	tab.AddRow("Tf transform", measured.Tf/1e9, ref.Tf/1e9)
	tab.AddRow("Tp pack", measured.Tp/1e9, ref.Tp/1e9)
	tab.AddRow("Ts select", measured.Ts/1e9, ref.Ts/1e9)
	fmt.Print(tab.String())

	k, err := perfmodel.MinBeneficialRatio(netsim.Ethernet1G.Bandwidth, measured)
	switch {
	case errors.Is(err, perfmodel.ErrNoBeneficialRatio):
		fmt.Println("with the measured rates, compression cannot win even on 1 GbE")
	case err != nil:
		panic(err)
	default:
		fmt.Printf("with the measured rates, compress on 1 GbE when the ratio exceeds %.2f\n", k)
	}
	fmt.Println("(dist.Config.Adapt makes this decision online, every iteration)")
}

// Quantization: build and inspect the paper's range-based N-bit float
// (Alg. 1) — tune it to a gradient range, look at where its representable
// values fall, and compare its error against uniform quantization.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fftgrad/internal/quant"
	"fftgrad/internal/stats"
)

func main() {
	// Sample "gradients": N(0, 0.05), all inside [-0.5, 0.5].
	r := rand.New(rand.NewSource(3))
	sample := make([]float32, 20000)
	for i := range sample {
		sample[i] = float32(r.NormFloat64() * 0.05)
	}

	// Tune an 8-bit quantizer to the range: the tuner picks the mantissa
	// width m and eps so positives ≈ negatives and MSE is minimal.
	q, err := quant.Tune(8, -0.5, 0.5, sample[:4096])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned 8-bit quantizer: m=%d mantissa bits, eps=%.3g\n", q.M, q.Eps)
	fmt.Printf("positive codes P=%d of 256, covers [%.4g, %.4g]\n",
		q.P(), q.ActualMin(), q.ActualMax())

	// Where do representable values fall? Dense near zero, sparse at the
	// edges — matched to the gradient distribution (Fig. 7).
	h := stats.NewHistogram(-0.5, 0.5, 16)
	for _, v := range q.Representable() {
		h.Add(float64(v))
	}
	fmt.Printf("\nrepresentable-value distribution:\n%s", h.Render(40))

	// Error comparison against a uniform 8-bit quantizer on the same range.
	uq, err := quant.NewUniformQuantizer(8, -0.5, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	mse := func(qz quant.Quantizer) float64 {
		var s float64
		for _, v := range sample {
			d := float64(qz.Decode(qz.Encode(v)) - v)
			s += d * d
		}
		return s / float64(len(sample))
	}
	fmt.Printf("\nMSE on N(0,0.05): range-based %.3g vs uniform %.3g (%.1fx better)\n",
		mse(q), mse(uq), mse(uq)/mse(q))

	// Single-value walkthrough of the Alg. 1 conversion (Fig. 8).
	f := float32(0.0421)
	code := q.Encode(f)
	back := q.Decode(code)
	fmt.Printf("\nAlg. 1 walkthrough: %.6f → code %d (8 bits) → %.6f (err %.2g)\n",
		f, code, back, back-f)

	// Codes pack into a bit stream for the wire: 8 bits each here.
	codes := q.EncodeSlice(make([]uint32, len(sample)), sample)
	packed := quant.PackCodes(codes, q.N)
	fmt.Printf("wire size: %d floats → %d bytes (%.1fx)\n",
		len(sample), len(packed), float64(len(sample)*4)/float64(len(packed)))
}

// Command fftpaper regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the data series its figure
// plots plus CHECK lines for the qualitative properties it demonstrates.
//
// Usage:
//
//	fftpaper -list
//	fftpaper -exp fig13
//	fftpaper -exp all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fftgrad/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig2..fig16, table2) or 'all'")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{Out: os.Stdout, Quick: *quick, Seed: *seed}
	run := func(e experiments.Experiment) error {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(opts); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("--- %s done in %.1fs ---\n\n", e.ID, time.Since(start).Seconds())
		return nil
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command trainer runs BSP data-parallel training on a synthetic image
// classification task with a selectable gradient-compression algorithm,
// printing per-epoch loss/accuracy and the compression/communication
// accounting — a command-line version of the paper's training runs.
//
// Usage:
//
//	trainer -method fft -theta 0.85 -workers 8 -epochs 5
//	trainer -method topk -theta 0.9 -drop-epoch 3   # recovery schedule
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"fftgrad/internal/adapt"
	"fftgrad/internal/buildinfo"
	"fftgrad/internal/chaos"
	"fftgrad/internal/checkpoint"
	"fftgrad/internal/cluster"
	"fftgrad/internal/collective"
	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/dist"
	"fftgrad/internal/guard"
	"fftgrad/internal/models"
	"fftgrad/internal/netsim"
	"fftgrad/internal/nn"
	"fftgrad/internal/obs"
	"fftgrad/internal/optim"
	"fftgrad/internal/serve"
	"fftgrad/internal/sparsify"
	"fftgrad/internal/stats"
	"fftgrad/internal/telemetry"
	itrace "fftgrad/internal/trace"
)

func main() {
	method := flag.String("method", "fft", "fp32 | fft | dct | topk | qsgd | terngrad")
	theta := flag.Float64("theta", 0.85, "drop ratio for fft/topk")
	dropEpoch := flag.Int("drop-epoch", -1, "epoch at which theta drops to 0 (-1: never)")
	workers := flag.Int("workers", 4, "number of BSP workers")
	epochs := flag.Int("epochs", 4, "training epochs")
	batch := flag.Int("batch", 16, "per-worker batch size")
	samples := flag.Int("samples", 2048, "training samples")
	classes := flag.Int("classes", 8, "number of classes")
	model := flag.String("model", "cnn", "cnn | mlp")
	lr := flag.Float64("lr", 0.03, "learning rate")
	seed := flag.Int64("seed", 1, "random seed")
	alpha := flag.Bool("alpha", false, "measure Assumption 3.2 alpha each iteration")
	trace := flag.Bool("trace", false, "print a per-iteration timing breakdown")
	sparseAR := flag.Bool("sparse-allreduce", false, "exchange via the sparse ring allreduce instead of allgather (uses -theta, ignores -method)")
	collectiveStrategy := flag.String("collective", "ring", "exchange strategy: ring | hier | tree | gossip (gossip implies -fault-aware)")
	groupSize := flag.Int("group-size", 4, "with -collective hier, ranks per group (leader fan-in)")
	bucketBytes := flag.Int("bucket-bytes", 0, "split the gradient into fixed-byte buckets exchanged in flight while later buckets compress (0: monolithic)")
	partitioned := flag.Bool("partitioned", false, "with -sparse-allreduce, MiCRO-style disjoint rotating index partitions per rank")
	metricsAddr := flag.String("metrics-addr", "", "serve live Prometheus/JSON metrics on this address (e.g. :9090)")
	traceOut := flag.String("trace-out", "", "record a per-iteration distributed timeline and write it here as Chrome trace_event JSON (open in ui.perfetto.dev)")
	traceIters := flag.Int("trace-iters", 256, "with -trace-out, iterations of history the per-rank trace ring retains")
	pprofOn := flag.Bool("pprof", false, "with -metrics-addr, also serve net/http/pprof under /debug/pprof/")
	profileOn := flag.Bool("profile", false, "enable the cross-rank iteration profiler: critical paths, straggler blame, anomaly-triggered capture")
	profileOut := flag.String("profile-out", "", "write the end-of-run iteration profile here as JSON (implies -profile)")
	topView := flag.Bool("top", false, "live per-rank blame / critical-path table on stderr while training runs (implies -profile)")
	adaptive := flag.Bool("adapt", false, "let the online perf-model controller bypass compression when it cannot win on the fabric")
	adaptTheta := flag.Bool("adapt-theta", false, "with -adapt, also let the controller steer theta toward the beneficial ratio")

	// Job-service mode (internal/serve).
	serveMode := flag.Bool("serve", false, "run as a multi-tenant training job service instead of a one-shot run (HTTP job API on -metrics-addr, default :9090)")
	poolSlots := flag.Int("pool", 8, "with -serve, worker slots in the shared scheduling pool")
	queueMax := flag.Int("queue", 16, "with -serve, maximum queued jobs before submissions get 429")
	spoolDir := flag.String("spool", "spool", "with -serve, directory for drain-time job checkpoints (\"\" disables spooling)")

	// Failure-aware runtime (internal/cluster) + chaos injection.
	faultAware := flag.Bool("fault-aware", false, "exchange through the failure-aware cluster runtime (heartbeats, retry, degradation, rejoin)")
	heartbeat := flag.Duration("heartbeat", 2*time.Millisecond, "with -fault-aware, heartbeat period")
	suspectAfter := flag.Duration("suspect-after", 0, "with -fault-aware, silence before a peer is suspected dead (0: 50x heartbeat)")
	maxRetries := flag.Int("max-retries", 5, "with -fault-aware, nack/resend rounds per exchange before classifying the absentee")
	onFailure := flag.String("on-failure", "rescale", "with -fault-aware, dead-rank policy: failfast | rescale | stale")
	onStraggler := flag.String("on-straggler", "wait", "with -fault-aware, straggler policy: wait | drop | stale")
	staleness := flag.Int("staleness", 0, "with -fault-aware, bounded-staleness window K in iterations: ranks run up to K ahead, late gradients fold in damped (0: strict BSP)")
	stalenessDiscount := flag.Float64("staleness-discount", 0.9, "with -staleness, per-iteration damping factor applied to stale gradients")
	elasticJoin := flag.String("elastic-join", "", "comma-separated iterations at which brand-new ranks join mid-run (implies -fault-aware; e.g. 10,20)")
	chaosDrop := flag.Float64("chaos-drop", 0, "chaos: per-message drop probability (enables fault injection)")
	chaosDelay := flag.Duration("chaos-delay", 0, "chaos: max injected message delay")
	chaosDelayProb := flag.Float64("chaos-delay-prob", 0.1, "chaos: probability a message is delayed (with -chaos-delay)")
	chaosDup := flag.Float64("chaos-dup", 0, "chaos: per-message duplication probability")
	chaosCrash := flag.Int("chaos-crash", -1, "chaos: rank to crash mid-run (-1: none)")
	chaosCrashAt := flag.Uint64("chaos-crash-at", 1000, "chaos: crash at this transport-op index")
	chaosCrashFor := flag.Uint64("chaos-crash-for", 1000, "chaos: recover after this many ops (0: never)")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "chaos: per-message single-bit-flip probability")
	chaosStraggle := flag.Int("chaos-straggle", -1, "chaos: rank made persistently slow, never dead (-1: none)")
	chaosStraggleBy := flag.Duration("chaos-straggle-by", 20*time.Millisecond, "chaos: per-send delivery delay of the straggling rank")
	chaosStraggleAt := flag.Uint64("chaos-straggle-at", 0, "chaos: transport-op index at which the straggle window opens")
	chaosStraggleFor := flag.Uint64("chaos-straggle-for", 0, "chaos: ops until the straggler recovers (0: never)")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: fault-schedule seed")

	// Gradient integrity guard (internal/guard).
	guardOn := flag.Bool("guard", false, "enable the gradient integrity guard (CRC framing, scrub, anomaly detector, drift checks)")
	guardCRC := flag.Bool("guard-crc", true, "with -guard, CRC32C-frame every compressed gradient message")
	guardScrub := flag.String("guard-scrub", "clamp", "with -guard, non-finite gradient policy: off | clamp | skip")
	guardDriftEvery := flag.Int("guard-drift-every", 50, "with -guard, iterations between cross-rank parameter fingerprint checks (0: off)")
	guardRollbackAfter := flag.Int("guard-rollback-after", 6, "with -guard, consecutive anomalies before auto-rollback")
	flag.Parse()

	if *serveMode {
		runServe(*metricsAddr, serve.Config{
			WorkerSlots: *poolSlots,
			MaxQueue:    *queueMax,
			SpoolDir:    *spoolDir,
		})
		return
	}

	newCompressor, err := buildCompressor(*method, *theta)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var (
		train, test *data.Dataset
		modelFn     func(int64) *nn.Network
	)
	switch *model {
	case "cnn":
		train, test = data.SynthImages(*samples+512, *classes, 16, 0.3, *seed).Split(*samples)
		modelFn = func(s int64) *nn.Network { return models.TinyCNN(*classes, 16, s) }
	case "mlp":
		train, test = data.GaussianBlobs(*samples+512, *classes, 24, 0.8, *seed).Split(*samples)
		modelFn = func(s int64) *nn.Network { return models.MLP(24, 48, *classes, s) }
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	cfg := dist.Config{
		Workers: *workers, Batch: *batch, Epochs: *epochs, Seed: *seed,
		Momentum:      0.9,
		LR:            optim.ConstLR(*lr),
		Model:         modelFn,
		Train:         train,
		Test:          test,
		NewCompressor: newCompressor,
		Fabric:        netsim.CometCluster(),
		MeasureAlpha:  *alpha,
		Trace:         *trace,
	}
	if *sparseAR {
		cfg.UseSparseAllreduce = true
		cfg.SparseTheta = *theta
	}
	if *collectiveStrategy != "ring" || *bucketBytes > 0 || *partitioned {
		cfg.Collective = &collective.Config{
			Strategy:    collective.Strategy(*collectiveStrategy),
			GroupSize:   *groupSize,
			BucketBytes: *bucketBytes,
			Partitioned: *partitioned,
		}
		if err := cfg.Collective.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *dropEpoch >= 0 {
		cfg.ThetaSchedule = sparsify.StepDrop{Initial: *theta, Final: 0, DropEpoch: *dropEpoch}
	}
	if *metricsAddr != "" || *adaptive {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if *adaptive {
		cfg.Adapt = adapt.New(adapt.Config{AdjustTheta: *adaptTheta}, nil)
	}
	if *guardOn {
		policy, err := guard.ParseScrubPolicy(*guardScrub)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Guard = &guard.Config{
			CRC:           *guardCRC,
			Scrub:         policy,
			Detect:        true,
			DriftEvery:    *guardDriftEvery,
			RollbackAfter: *guardRollbackAfter,
		}
	}
	var joinIters []int
	if *elasticJoin != "" {
		for _, tok := range strings.Split(*elasticJoin, ",") {
			var at int
			if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &at); err != nil || at < 0 {
				fmt.Fprintf(os.Stderr, "bad -elastic-join entry %q\n", tok)
				os.Exit(2)
			}
			joinIters = append(joinIters, at)
		}
	}
	chaosWanted := *chaosDrop > 0 || *chaosDelay > 0 || *chaosDup > 0 || *chaosCrash >= 0 || *chaosCorrupt > 0 || *chaosStraggle >= 0
	if *faultAware || chaosWanted || *staleness > 0 || len(joinIters) > 0 || *collectiveStrategy == "gossip" {
		policy, err := cluster.ParsePolicy(*onFailure)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		stragglerPolicy, err := cluster.ParseStragglerPolicy(*onStraggler)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Fault = &dist.FaultConfig{
			Cluster: cluster.Config{
				Heartbeat:    *heartbeat,
				SuspectAfter: *suspectAfter,
				MaxRetries:   *maxRetries,
				Policy:       policy,
				OnStraggler:  stragglerPolicy,
				Seed:         *seed,
			},
			Staleness:         *staleness,
			StalenessDiscount: *stalenessDiscount,
			ElasticJoins:      joinIters,
		}
		if chaosWanted {
			cc := &chaos.Config{
				Seed:      *chaosSeed,
				Drop:      *chaosDrop,
				DelayProb: *chaosDelayProb,
				Delay:     *chaosDelay,
				Dup:       *chaosDup,
				Corrupt:   *chaosCorrupt,
			}
			if *chaosCrash >= 0 {
				cc.Crashes = []chaos.CrashEvent{{Rank: *chaosCrash, AtOp: *chaosCrashAt, RecoverAfterOps: *chaosCrashFor}}
			}
			if *chaosStraggle >= 0 {
				cc.Stragglers = []chaos.StragglerEvent{{Rank: *chaosStraggle, FromOp: *chaosStraggleAt, Ops: *chaosStraggleFor, SlowBy: *chaosStraggleBy}}
			}
			cfg.Fault.Chaos = cc
			fmt.Printf("chaos schedule: %s\n", cc)
		}
	}
	var tracer *itrace.Tracer
	if *traceOut != "" {
		tracer = itrace.New(*workers+len(joinIters), *traceIters*itrace.DefaultEventsPerIteration)
		cfg.Tracer = tracer
		cfg.Flight = itrace.NewFlightRecorder(tracer, flightPath(*traceOut))
		defer func() {
			if r := recover(); r != nil {
				cfg.Flight.Trigger(0, itrace.ReasonPanic)
				panic(r)
			}
		}()
	}
	var prof *obs.Profiler
	var stopCapture func()
	if *profileOn || *profileOut != "" || *topView {
		prof = obs.New(*workers+len(joinIters), 0)
		cfg.Profiler = prof
		if cfg.Telemetry == nil {
			// The profiler's rolling blame percentiles live in telemetry
			// histograms; give it a registry even without -metrics-addr.
			cfg.Telemetry = telemetry.NewRegistry()
		}
		// Anomaly captures (pprof CPU window + flight dump + cross-link)
		// land next to the profile output, else the trace output, else cwd.
		capDir := "."
		switch {
		case *profileOut != "":
			capDir = filepath.Dir(*profileOut)
		case *traceOut != "":
			capDir = filepath.Dir(*traceOut)
		}
		stopCapture = prof.EnableCapture(obs.CaptureConfig{Dir: capDir, Flight: cfg.Flight})
	}
	var draining atomic.Bool // flips /readyz once a halt is requested
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		buildinfo.Register(cfg.Telemetry)
		mux.Handle("/", cfg.Telemetry.Handler())
		if tracer != nil {
			mux.Handle("/trace", tracer.Handler())
		}
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		if prof != nil {
			mux.Handle("/profile", prof.Handler())
			if tracer != nil {
				mux.HandleFunc("/trace/merged", func(w http.ResponseWriter, _ *http.Request) {
					w.Header().Set("Content-Type", "application/json")
					_ = tracer.WriteMergedJSON(w, prof.Offsets())
				})
			}
		}
		mux.Handle("/debug/status", prof.StatusHandler(tracer.DroppedTotal))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			_, _ = io.WriteString(w, "ok\n")
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			if draining.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				_, _ = io.WriteString(w, "draining\n")
				return
			}
			_, _ = io.WriteString(w, "ok\n")
		})
		bound, shutdown, err := telemetry.ServeHandler(*metricsAddr, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() { _ = shutdown() }()
		fmt.Printf("metrics: http://%s/metrics (Prometheus) and /metrics.json\n", bound)
		if tracer != nil {
			fmt.Printf("trace:   http://%s/trace (Chrome trace_event JSON)\n", bound)
		}
		if *pprofOn {
			fmt.Printf("pprof:   http://%s/debug/pprof/\n", bound)
		}
		if prof != nil {
			fmt.Printf("profile: http://%s/profile (critical paths, blame ledger) and /debug/status\n", bound)
		}
	}

	// SIGINT/SIGTERM halt cooperatively at the next iteration boundary:
	// the run returns normally (Halted set), so the trace dump, metrics
	// summary, and the deferred graceful mux shutdown all still happen —
	// previously an interrupt killed the process and could lose the
	// flight recorder's final dump. A second signal force-quits.
	stopCh := make(chan struct{})
	cfg.Stop = stopCh
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "signal: halting at the next iteration boundary (send again to force quit)")
		draining.Store(true)
		close(stopCh)
		<-sigCh
		os.Exit(130)
	}()

	fmt.Printf("training %s with %s (θ=%.2f) on %d workers\n", *model, *method, *theta, *workers)
	var stopTop func()
	if *topView {
		topStop := make(chan struct{})
		topDone := make(chan struct{})
		go func() {
			prof.Top(os.Stderr, 0, topStop)
			close(topDone)
		}()
		stopTop = func() {
			close(topStop)
			<-topDone
			fmt.Fprintln(os.Stderr)
		}
	}
	res, err := dist.Train(cfg)
	if stopTop != nil {
		stopTop()
	}
	if stopCapture != nil {
		stopCapture() // drain the anomaly-capture worker before dumping
	}
	if tracer != nil {
		// Dump the timeline even when training failed: the final
		// iterations leading into the error are exactly what a
		// postmortem wants to see.
		data, merr := tracer.MarshalJSON()
		if merr == nil {
			merr = checkpoint.WriteBytesAtomic(*traceOut, data)
		}
		if merr != nil {
			fmt.Fprintf(os.Stderr, "trace dump failed: %v\n", merr)
		} else {
			fmt.Printf("trace: wrote %s (%d bytes; open in ui.perfetto.dev)\n", *traceOut, len(data))
		}
		if prof != nil {
			// The clock-aligned multi-process view: every rank's ring merged
			// into one timeline, re-based by the profiler's offset estimates.
			var buf bytes.Buffer
			if merr := tracer.WriteMergedJSON(&buf, prof.Offsets()); merr == nil {
				mp := mergedPath(*traceOut)
				if werr := checkpoint.WriteBytesAtomic(mp, buf.Bytes()); werr != nil {
					fmt.Fprintf(os.Stderr, "merged trace dump failed: %v\n", werr)
				} else {
					fmt.Printf("trace: wrote %s (clock-aligned multi-process view)\n", mp)
				}
			}
		}
	}
	if prof != nil {
		// Dump the profile even when training failed, like the trace: the
		// blame ledger of the iterations before the error is the postmortem.
		doc := prof.BuildProfile(true)
		topRank, topFrac := -1, 0.0
		for _, b := range doc.Blame {
			if b.BlamedFrac > topFrac {
				topRank, topFrac = b.Rank, b.BlamedFrac
			}
		}
		if topRank >= 0 {
			fmt.Printf("profile: top blamed rank %d (%.0f%% of %.3fs blocked time over %d iterations)\n",
				topRank, 100*topFrac, float64(doc.Summary.TotalBlockedNs)/1e9, doc.Summary.Iterations)
		}
		if n := len(doc.Captures); n > 0 {
			fmt.Printf("profile: %d anomaly capture(s) written: pprof CPU window + flight dump, cross-linked by iteration\n", n)
		}
		if *profileOut != "" {
			data, merr := json.MarshalIndent(&doc, "", "  ")
			if merr == nil {
				merr = checkpoint.WriteBytesAtomic(*profileOut, data)
			}
			if merr != nil {
				fmt.Fprintf(os.Stderr, "profile dump failed: %v\n", merr)
			} else {
				fmt.Printf("profile: wrote %s (%d bytes)\n", *profileOut, len(data))
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if res.Halted {
		fmt.Printf("halted by signal after %d iterations\n", res.Iterations)
	}
	t := &stats.Table{Headers: []string{"epoch", "train loss", "test acc", "lr", "theta"}}
	for _, ep := range res.Epochs {
		t.AddRow(ep.Epoch, ep.TrainLoss, ep.TestAcc, ep.LR, ep.Theta)
	}
	fmt.Print(t.String())
	fmt.Printf("\ngradient size: %d floats (%.2f MB)\n", res.GradSize, float64(res.GradSize*4)/(1<<20))
	fmt.Printf("compression ratio: %.2fx (avg message %.1f KB)\n", res.CompressionRatio, res.AvgMsgBytes/1024)
	fmt.Printf("measured compute %.2fs, compress %.2fs; modeled comm %.4fs (measured exchange %.4fs)\n",
		res.ComputeSeconds, res.CompressSeconds, res.CommSeconds, res.CommMeasuredSeconds)
	var rec netsim.Reconciliation
	rec.Add(res.CommSeconds, res.CommMeasuredSeconds)
	if rec.Samples() > 0 {
		fmt.Printf("fabric reconciliation: in-process exchange ran %.2fx the modeled fabric time\n", rec.Ratio())
	}
	if cfg.Adapt != nil {
		d := cfg.Adapt.Last()
		fmt.Printf("adapt: bypassed %d iterations, %d flips; last k_min %.2f at Tcomm %.1f MB/s (ratio %.2f)\n",
			res.BypassedIterations, cfg.Adapt.Flips(), d.KMin, d.Tcomm/1e6, d.Ratio)
	}
	if res.Telemetry != nil {
		fmt.Println("live stage throughput (MB/s):")
		for _, s := range []string{"tm", "tf", "tp", "ts", "comm"} {
			if v := res.Telemetry[`fftgrad_stage_throughput_bytes_per_second{stage="`+s+`"}`]; v > 0 {
				fmt.Printf("  %-4s %10.1f\n", s, v/1e6)
			}
		}
	}
	if res.Fault != nil {
		s := res.Fault.Cluster
		fmt.Printf("fault runtime: %d retries, %d suspicions, %d degraded iters, %d stale reuses, %d rejoins, %d skipped syncs, %d/%d ranks alive at end\n",
			s.Retries, s.Suspicions, s.DegradedIterations, s.StaleReuses, s.Rejoins, s.SkippedSyncs, s.FinalAlive, *workers+len(joinIters))
		if s.ElasticJoins > 0 || s.GossipRounds > 0 || s.StalenessMax > 0 {
			fmt.Printf("elasticity: %d elastic joins, %d gossip rounds, max folded staleness %d seqs\n",
				s.ElasticJoins, s.GossipRounds, s.StalenessMax)
		}
		if res.Fault.LostWorkers > 0 {
			fmt.Printf("fault runtime: %d worker(s) permanently lost; run completed degraded\n", res.Fault.LostWorkers)
		}
		if c := res.Fault.Chaos; c != nil {
			fmt.Printf("chaos injected: %d drops, %d delays, %d dups, %d corruptions, %d crashed ops, %d partitioned, %d straggled ops\n",
				c.Drops, c.Delays, c.Dups, c.Corruptions, c.CrashedOps, c.Partitioned, c.StraggledOps)
		}
	}
	if g := res.Guard; g != nil {
		fmt.Printf("guard: %d corrupt frames rejected, %d values scrubbed (%d gradients withheld), %d anomalies (%d clips, %d skipped updates, %d rollbacks), %d drift checks (%d forced re-syncs)\n",
			g.CorruptFrames, g.ScrubbedValues, g.SkippedGradients, g.Anomalies, g.Clips, g.SkippedUpdates, g.Rollbacks, g.DriftChecks, g.DriftResyncs)
	}
	if *alpha && len(res.Alpha) > 0 {
		e := stats.NewECDF(res.Alpha)
		fmt.Printf("alpha (Assumption 3.2): median %.3f, p95 %.3f, max %.3f\n",
			e.Quantile(0.5), e.Quantile(0.95), e.Quantile(1))
	}
	if *trace && len(res.Trace) > 0 {
		fmt.Println("\nper-iteration breakdown (first 10):")
		tt := &stats.Table{Headers: []string{"iter", "compute ms", "codec ms", "comm ms", "msg KB"}}
		for i, tr := range res.Trace {
			if i >= 10 {
				break
			}
			tt.AddRow(tr.Iter, tr.ComputeS*1e3, tr.CompressS*1e3, tr.CommS*1e3, float64(tr.MsgBytes)/1024)
		}
		fmt.Print(tt.String())
	}
}

// runServe runs the multi-tenant job service: the job API and the
// process telemetry endpoints share one mux and one listener. SIGINT or
// SIGTERM drains gracefully — admission closes, running jobs halt at an
// iteration boundary, their checkpoints spool to -spool, and the HTTP
// server shuts down once in-flight requests finish.
func runServe(addr string, cfg serve.Config) {
	if addr == "" {
		addr = ":9090"
	}
	if cfg.SpoolDir != "" {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	srv := serve.New(cfg)
	mux := http.NewServeMux()
	reg := telemetry.NewRegistry()
	buildinfo.Register(reg)
	mux.Handle("/", reg.Handler())
	srv.Routes(mux)
	bound, shutdown, err := telemetry.ServeHandler(addr, mux)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("job service: http://%s/jobs (%d worker slots, queue %d)\n", bound, cfg.WorkerSlots, cfg.MaxQueue)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	fmt.Println("draining: no new jobs; halting running jobs at their next iteration boundary")
	go func() { // second signal skips the drain
		<-sigCh
		os.Exit(130)
	}()
	for _, d := range srv.Drain() {
		if d.Spool != "" {
			fmt.Printf("spooled %s -> %s (resume with {\"resume_from\": %q})\n", d.ID, d.Spool, d.Spool)
		}
	}
	_ = shutdown()
}

// flightPath derives the flight-recorder dump path from the trace
// output path: trace.json -> trace.flight.json.
func flightPath(traceOut string) string {
	ext := filepath.Ext(traceOut)
	return strings.TrimSuffix(traceOut, ext) + ".flight" + ext
}

// mergedPath derives the merged multi-process timeline path from the
// trace output path: trace.json -> trace.merged.json.
func mergedPath(traceOut string) string {
	ext := filepath.Ext(traceOut)
	return strings.TrimSuffix(traceOut, ext) + ".merged" + ext
}

func buildCompressor(method string, theta float64) (func() compress.Compressor, error) {
	if _, err := compress.New(method, theta); err != nil {
		return nil, err
	}
	return func() compress.Compressor {
		c, err := compress.New(method, theta)
		if err != nil {
			panic(err) // validated above
		}
		return c
	}, nil
}

// Command compressbench measures the throughput of every compression
// primitive on this machine (the CPU analogue of the paper's Table 1
// rates), then feeds the measurements into the Sec. 3.3 analytic model to
// print the minimal beneficial compression ratio per network fabric —
// i.e. it answers "should I enable compression here, and at what θ?".
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"fftgrad/internal/cfft"
	"fftgrad/internal/compress"
	"fftgrad/internal/f16"
	"fftgrad/internal/pack"
	"fftgrad/internal/perfmodel"
	"fftgrad/internal/quant"
	"fftgrad/internal/stats"
	"fftgrad/internal/topk"
)

func main() {
	mega := flag.Int("mb", 64, "working-set size in MB of FP32 gradients")
	iters := flag.Int("iters", 5, "timing repetitions (max rate wins)")
	flag.Parse()

	n := *mega << 20 / 4
	r := rand.New(rand.NewSource(1))
	grad := make([]float32, n)
	for i := range grad {
		grad[i] = float32(r.NormFloat64() * 0.1)
	}
	bytes := float64(n * 4)

	// rate reports the best throughput over iters repetitions plus the
	// steady-state heap allocations of one call (the Mallocs delta of the
	// final repetition, after a warm-up call has populated plan caches,
	// tuned quantizers and scratch pools).
	rate := func(name string, fn func()) float64 {
		fn() // warm caches and pools; measure the steady state only
		best := 0.0
		var allocs uint64
		var ms runtime.MemStats
		for i := 0; i < *iters; i++ {
			runtime.ReadMemStats(&ms)
			m0 := ms.Mallocs
			start := time.Now()
			fn()
			el := time.Since(start).Seconds()
			runtime.ReadMemStats(&ms)
			allocs = ms.Mallocs - m0
			if rps := bytes / el; rps > best {
				best = rps
			}
		}
		fmt.Printf("%-28s %8.2f GB/s %8d allocs/op\n", name, best/1e9, allocs)
		return best
	}

	fmt.Printf("compression primitive throughputs (%d MB working set):\n", *mega)

	halves := make([]f16.Bits, n)
	tm := rate("precision conversion (Tm)", func() { f16.EncodeSlice(halves, grad) })

	sig := make([]float64, cfft.NextPow2(n))
	for i, v := range grad {
		sig[i] = float64(v)
	}
	plan := cfft.NewRealPlan(len(sig))
	spec := make([]complex128, plan.SpectrumLen())
	tf := rate("real FFT (Tf)", func() { plan.Forward(spec, sig) })

	mags := make([]float64, n)
	for i, v := range grad {
		m := float64(v)
		if m < 0 {
			m = -m
		}
		mags[i] = m
	}
	ts := rate("top-k selection (Ts)", func() { topk.KthLargestBucket(mags, n/10) })

	tp := rate("sparse packing (Tp)", func() { pack.PackNonzero(grad) })

	q, err := quant.Tune(10, -1, 1, grad[:4096])
	if err != nil {
		fmt.Println("quantizer tuning failed:", err)
		return
	}
	codes := make([]uint32, n)
	rate("range quantization", func() { q.EncodeSlice(codes, grad) })

	fftc := compress.NewFFT(0.85)
	rate("full FFT pipeline", func() {
		if _, err := fftc.Compress(grad); err != nil {
			panic(err)
		}
	})

	// Steady-state round trip with reused buffers — the zero-allocation
	// path distributed training runs every iteration (note the parallel
	// fan-out spawns goroutines, so allocs/op here is per-worker closure
	// overhead, not data-path allocation; run with GOMAXPROCS=1 to see 0).
	rec := make([]float32, n)
	var msg []byte
	rate("FFT round trip (reused)", func() {
		var err error
		msg, err = fftc.AppendCompress(msg[:0], grad)
		if err != nil {
			panic(err)
		}
		if err := fftc.DecompressInto(rec, msg); err != nil {
			panic(err)
		}
	})

	// Feed the measured rates into the Sec. 3.3 model.
	t := perfmodel.Throughputs{Tm: tm, Tf: tf, Tp: tp, Ts: ts}
	fmt.Printf("\nminimal beneficial compression ratio (Eq. 4) with these rates:\n")
	tab := &stats.Table{Headers: []string{"network", "min ratio k", "verdict"}}
	for _, net := range []struct {
		name  string
		tcomm float64
	}{
		{"1 Gbps Ethernet", 1e9 / 8},
		{"10 Gbps Ethernet", 10e9 / 8},
		{"56 Gbps FDR InfiniBand", 56e9 / 8},
		{"100 Gbps EDR InfiniBand", 100e9 / 8},
	} {
		k, err := perfmodel.MinBeneficialRatio(net.tcomm, t)
		if err != nil {
			tab.AddRow(net.name, "-", "compression cannot help")
			continue
		}
		tab.AddRow(net.name, k, fmt.Sprintf("compress when ratio > %.1f", k))
	}
	fmt.Print(tab.String())
	fmt.Printf("\nno ratio helps on links faster than %.1f Gbps with this pipeline\n",
		perfmodel.MaxTolerableTcomm(t)*8/1e9)
}

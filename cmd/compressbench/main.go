// Command compressbench measures the throughput of every compression
// primitive on this machine (the CPU analogue of the paper's Table 1
// rates), then feeds the measurements into the Sec. 3.3 analytic model to
// print the minimal beneficial compression ratio per network fabric —
// i.e. it answers "should I enable compression here, and at what θ?".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"fftgrad/internal/cfft"
	"fftgrad/internal/compress"
	"fftgrad/internal/f16"
	"fftgrad/internal/pack"
	"fftgrad/internal/perfmodel"
	"fftgrad/internal/quant"
	"fftgrad/internal/stats"
	"fftgrad/internal/topk"
)

// primitiveResult is one row of the machine-readable report: a pipeline
// primitive's best observed rate and its steady-state allocations.
// BytesPerOp records the per-operation working set for rows whose size is
// not the -mb gradient (the -sizes kernel matrix); benchdiff uses it to
// normalise ns/op per row instead of assuming the report-level size.
type primitiveResult struct {
	Name        string  `json:"name"`
	BytesPerSec float64 `json:"bytes_per_sec"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

// compressorResult reports one full compressor: round-trip rates, the
// steady-state wire ratio and the allocation count of one reused-buffer
// round trip.
type compressorResult struct {
	Method            string  `json:"method"`
	Theta             float64 `json:"theta"`
	Ratio             float64 `json:"ratio"`
	CompressBytesPS   float64 `json:"compress_bytes_per_sec"`
	DecompressBytesPS float64 `json:"decompress_bytes_per_sec"`
	AllocsPerOp       uint64  `json:"allocs_per_op"`
}

// report is the -json output: everything the text output prints, in a
// form CI and notebooks can diff across commits.
type report struct {
	WorkingSetMB int                `json:"working_set_mb"`
	Iters        int                `json:"iters"`
	Primitives   []primitiveResult  `json:"primitives"`
	Compressors  []compressorResult `json:"compressors"`
}

// parseSizes splits a comma-separated list of element counts, rounding
// each up to the power of two the transform kernels require.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, cfft.NextPow2(v))
	}
	return out, nil
}

func main() {
	mega := flag.Int("mb", 64, "working-set size in MB of FP32 gradients")
	iters := flag.Int("iters", 5, "timing repetitions (max rate wins)")
	sizes := flag.String("sizes", "65536,1048576", "comma-separated element counts for the transform/kernel benchmark matrix (rounded up to powers of two)")
	jsonPath := flag.String("json", "", "write a machine-readable report to this file (e.g. BENCH_compress.json)")
	flag.Parse()

	matrixSizes, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "-sizes:", err)
		os.Exit(2)
	}

	n := *mega << 20 / 4
	r := rand.New(rand.NewSource(1))
	grad := make([]float32, n)
	for i := range grad {
		grad[i] = float32(r.NormFloat64() * 0.1)
	}
	bytes := float64(n * 4)

	rep := report{WorkingSetMB: *mega, Iters: *iters}

	// measureBytes returns the best throughput over iters repetitions plus
	// the steady-state heap allocations of one call (the Mallocs delta of
	// the final repetition, after a warm-up call has populated plan caches,
	// tuned quantizers and scratch pools). The GC is paused during the
	// measurement so a collection cannot clear the scratch pools mid-run
	// and charge pool refills to the kernel under test — this keeps the
	// allocs/op column deterministic enough for CI to diff across commits.
	measureBytes := func(opBytes float64, fn func()) (best float64, allocs uint64) {
		fn() // warm caches and pools; measure the steady state only
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		var ms runtime.MemStats
		for i := 0; i < *iters; i++ {
			runtime.ReadMemStats(&ms)
			m0 := ms.Mallocs
			start := time.Now()
			fn()
			el := time.Since(start).Seconds()
			runtime.ReadMemStats(&ms)
			allocs = ms.Mallocs - m0
			if rps := opBytes / el; rps > best {
				best = rps
			}
		}
		return best, allocs
	}
	measure := func(fn func()) (best float64, allocs uint64) {
		return measureBytes(bytes, fn)
	}
	rate := func(name string, fn func()) float64 {
		best, allocs := measure(fn)
		fmt.Printf("%-28s %8.2f GB/s %8d allocs/op\n", name, best/1e9, allocs)
		rep.Primitives = append(rep.Primitives,
			primitiveResult{Name: name, BytesPerSec: best, AllocsPerOp: allocs})
		return best
	}
	// rateAt is rate for the -sizes kernel matrix: rows carry their own
	// per-op byte count so benchdiff can normalise them independently of
	// the -mb working set.
	rateAt := func(name string, opBytes float64, fn func()) float64 {
		best, allocs := measureBytes(opBytes, fn)
		fmt.Printf("%-28s %8.2f GB/s %8d allocs/op\n", name, best/1e9, allocs)
		rep.Primitives = append(rep.Primitives,
			primitiveResult{Name: name, BytesPerSec: best, AllocsPerOp: allocs, BytesPerOp: opBytes})
		return best
	}

	fmt.Printf("compression primitive throughputs (%d MB working set):\n", *mega)

	halves := make([]f16.Bits, n)
	tm := rate("precision conversion (Tm)", func() { f16.EncodeSlice(halves, grad) })

	sig := make([]float64, cfft.NextPow2(n))
	for i, v := range grad {
		sig[i] = float64(v)
	}
	plan := cfft.NewRealPlan(len(sig))
	spec := make([]complex128, plan.SpectrumLen())
	tf := rate("real FFT (Tf)", func() { plan.Forward(spec, sig) })

	mags := make([]float64, n)
	for i, v := range grad {
		m := float64(v)
		if m < 0 {
			m = -m
		}
		mags[i] = m
	}
	ts := rate("top-k selection (Ts)", func() { topk.KthLargestBucket(mags, n/10) })

	// Tp packs an actually sparsified vector: a ~12% random survivor set,
	// the shape PackNonzero sees after theta=0.85-0.9 selection. (A dense
	// or periodic fixture would hand the branch predictor a pattern that
	// real sparsified gradients never have.)
	sparse := make([]float32, n)
	for i := range sparse {
		if r.Float64() < 0.12 {
			sparse[i] = grad[i] + 1
		}
	}
	tp := rate("sparse packing (Tp)", func() { pack.PackNonzero(sparse) })

	q, err := quant.Tune(10, -1, 1, grad[:4096])
	if err != nil {
		fmt.Println("quantizer tuning failed:", err)
		return
	}
	codes := make([]uint32, n)
	rate("range quantization", func() { q.EncodeSlice(codes, grad) })

	fftc := compress.NewFFT(0.85)
	rate("full FFT pipeline", func() {
		if _, err := fftc.Compress(grad); err != nil {
			panic(err)
		}
	})

	// Steady-state round trip with reused buffers — the zero-allocation
	// path distributed training runs every iteration (note the parallel
	// fan-out spawns goroutines, so allocs/op here is per-worker closure
	// overhead, not data-path allocation; run with GOMAXPROCS=1 to see 0).
	rec := make([]float32, n)
	var msg []byte
	rate("FFT round trip (reused)", func() {
		var err error
		msg, err = fftc.AppendCompress(msg[:0], grad)
		if err != nil {
			panic(err)
		}
		if err := fftc.DecompressInto(rec, msg); err != nil {
			panic(err)
		}
	})

	// Transform/kernel matrix over the -sizes element counts: the complex
	// radix path, the real half-spectrum path, and the f16/pack bulk
	// kernels, each at sizes matching real layer gradients. These rows are
	// what the committed BENCH_BASELINE.json locks in: benchdiff fails CI
	// when any of them regresses.
	fmt.Printf("\ntransform/kernel matrix (-sizes %s):\n", *sizes)
	for _, kn := range matrixSizes {
		kr := rand.New(rand.NewSource(int64(kn)))
		kplan := cfft.PlanFor(kn)
		csrc := make([]complex128, kn)
		cdst := make([]complex128, kn)
		for i := range csrc {
			csrc[i] = complex(float64(i%101)*0.01-0.5, float64(i%37)*0.01)
		}
		// One op = forward + inverse over kn complex128 values.
		rtBytes := float64(2 * 16 * kn)
		rateAt(fmt.Sprintf("fft-forward/n=%d", kn), float64(16*kn), func() {
			kplan.Forward(cdst, csrc)
		})
		rateAt(fmt.Sprintf("fft-roundtrip/n=%d", kn), rtBytes, func() {
			kplan.Forward(cdst, csrc)
			kplan.Inverse(cdst, cdst)
		})

		rplan := cfft.RealPlanFor(kn)
		rsrc := make([]float64, kn)
		rdst := make([]float64, kn)
		for i := range rsrc {
			rsrc[i] = float64(i%101)*0.01 - 0.5
		}
		rspec := make([]complex128, rplan.SpectrumLen())
		rateAt(fmt.Sprintf("realfft-roundtrip/n=%d", kn), float64(2*8*kn), func() {
			rplan.Forward(rspec, rsrc)
			rplan.Inverse(rdst, rspec)
		})

		// Gradient-like random values: a periodic ramp would let the
		// branch predictor learn the scalar rounding branch's pattern and
		// make the conversion look faster than it runs on real data.
		fsrc := make([]float32, kn)
		for i := range fsrc {
			fsrc[i] = float32(kr.NormFloat64() * 0.1)
		}
		fh := make([]f16.Bits, kn)
		fdec := make([]float32, kn)
		rateAt(fmt.Sprintf("f16-roundtrip/n=%d", kn), float64(2*4*kn), func() {
			f16.EncodeSlice(fh, fsrc)
			f16.DecodeSlice(fdec, fh)
		})

		psrc := make([]float32, kn)
		for i := range psrc {
			if kr.Float64() < 0.12 { // ~12% density, a θ=0.85-ish survivor set
				psrc[i] = fsrc[i] + 1
			}
		}
		pdst := make([]float32, kn)
		rateAt(fmt.Sprintf("pack-roundtrip/n=%d", kn), float64(2*4*kn), func() {
			s := pack.PackNonzero(psrc)
			s.Unpack(pdst)
		})
	}

	// Every registered compressor end to end on the reused-buffer path:
	// per-method compress/decompress rates, wire ratio and allocations.
	const sweepTheta = 0.85
	fmt.Printf("\nper-compressor steady-state round trips (θ=%.2f where used):\n", sweepTheta)
	for _, method := range []string{"fp32", "fft", "dct", "topk", "qsgd", "terngrad"} {
		c, err := compress.New(method, sweepTheta)
		if err != nil {
			fmt.Printf("%-10s unavailable: %v\n", method, err)
			continue
		}
		var msg []byte
		compRate, _ := measure(func() {
			msg, err = compress.AppendCompress(c, msg[:0], grad)
			if err != nil {
				panic(err)
			}
		})
		decRate, _ := measure(func() {
			if err := compress.DecompressInto(c, rec, msg); err != nil {
				panic(err)
			}
		})
		_, rtAllocs := measure(func() {
			msg, err = compress.AppendCompress(c, msg[:0], grad)
			if err != nil {
				panic(err)
			}
			if err := compress.DecompressInto(c, rec, msg); err != nil {
				panic(err)
			}
		})
		ratio := bytes / float64(len(msg))
		fmt.Printf("%-10s %7.2fx  compress %6.2f GB/s  decompress %6.2f GB/s  %4d allocs/op\n",
			method, ratio, compRate/1e9, decRate/1e9, rtAllocs)
		rep.Compressors = append(rep.Compressors, compressorResult{
			Method: method, Theta: sweepTheta, Ratio: ratio,
			CompressBytesPS: compRate, DecompressBytesPS: decRate, AllocsPerOp: rtAllocs,
		})
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}

	// Feed the measured rates into the Sec. 3.3 model.
	t := perfmodel.Throughputs{Tm: tm, Tf: tf, Tp: tp, Ts: ts}
	fmt.Printf("\nminimal beneficial compression ratio (Eq. 4) with these rates:\n")
	tab := &stats.Table{Headers: []string{"network", "min ratio k", "verdict"}}
	for _, net := range []struct {
		name  string
		tcomm float64
	}{
		{"1 Gbps Ethernet", 1e9 / 8},
		{"10 Gbps Ethernet", 10e9 / 8},
		{"56 Gbps FDR InfiniBand", 56e9 / 8},
		{"100 Gbps EDR InfiniBand", 100e9 / 8},
	} {
		k, err := perfmodel.MinBeneficialRatio(net.tcomm, t)
		if err != nil {
			tab.AddRow(net.name, "-", "compression cannot help")
			continue
		}
		tab.AddRow(net.name, k, fmt.Sprintf("compress when ratio > %.1f", k))
	}
	fmt.Print(tab.String())
	fmt.Printf("\nno ratio helps on links faster than %.1f Gbps with this pipeline\n",
		perfmodel.MaxTolerableTcomm(t)*8/1e9)
}

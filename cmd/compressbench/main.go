// Command compressbench measures the throughput of every compression
// primitive on this machine (the CPU analogue of the paper's Table 1
// rates), then feeds the measurements into the Sec. 3.3 analytic model to
// print the minimal beneficial compression ratio per network fabric —
// i.e. it answers "should I enable compression here, and at what θ?".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"fftgrad/internal/cfft"
	"fftgrad/internal/compress"
	"fftgrad/internal/f16"
	"fftgrad/internal/pack"
	"fftgrad/internal/perfmodel"
	"fftgrad/internal/quant"
	"fftgrad/internal/stats"
	"fftgrad/internal/topk"
)

// primitiveResult is one row of the machine-readable report: a pipeline
// primitive's best observed rate and its steady-state allocations.
type primitiveResult struct {
	Name        string  `json:"name"`
	BytesPerSec float64 `json:"bytes_per_sec"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// compressorResult reports one full compressor: round-trip rates, the
// steady-state wire ratio and the allocation count of one reused-buffer
// round trip.
type compressorResult struct {
	Method            string  `json:"method"`
	Theta             float64 `json:"theta"`
	Ratio             float64 `json:"ratio"`
	CompressBytesPS   float64 `json:"compress_bytes_per_sec"`
	DecompressBytesPS float64 `json:"decompress_bytes_per_sec"`
	AllocsPerOp       uint64  `json:"allocs_per_op"`
}

// report is the -json output: everything the text output prints, in a
// form CI and notebooks can diff across commits.
type report struct {
	WorkingSetMB int                `json:"working_set_mb"`
	Iters        int                `json:"iters"`
	Primitives   []primitiveResult  `json:"primitives"`
	Compressors  []compressorResult `json:"compressors"`
}

func main() {
	mega := flag.Int("mb", 64, "working-set size in MB of FP32 gradients")
	iters := flag.Int("iters", 5, "timing repetitions (max rate wins)")
	jsonPath := flag.String("json", "", "write a machine-readable report to this file (e.g. BENCH_compress.json)")
	flag.Parse()

	n := *mega << 20 / 4
	r := rand.New(rand.NewSource(1))
	grad := make([]float32, n)
	for i := range grad {
		grad[i] = float32(r.NormFloat64() * 0.1)
	}
	bytes := float64(n * 4)

	rep := report{WorkingSetMB: *mega, Iters: *iters}

	// measure returns the best throughput over iters repetitions plus the
	// steady-state heap allocations of one call (the Mallocs delta of the
	// final repetition, after a warm-up call has populated plan caches,
	// tuned quantizers and scratch pools).
	measure := func(fn func()) (best float64, allocs uint64) {
		fn() // warm caches and pools; measure the steady state only
		var ms runtime.MemStats
		for i := 0; i < *iters; i++ {
			runtime.ReadMemStats(&ms)
			m0 := ms.Mallocs
			start := time.Now()
			fn()
			el := time.Since(start).Seconds()
			runtime.ReadMemStats(&ms)
			allocs = ms.Mallocs - m0
			if rps := bytes / el; rps > best {
				best = rps
			}
		}
		return best, allocs
	}
	rate := func(name string, fn func()) float64 {
		best, allocs := measure(fn)
		fmt.Printf("%-28s %8.2f GB/s %8d allocs/op\n", name, best/1e9, allocs)
		rep.Primitives = append(rep.Primitives,
			primitiveResult{Name: name, BytesPerSec: best, AllocsPerOp: allocs})
		return best
	}

	fmt.Printf("compression primitive throughputs (%d MB working set):\n", *mega)

	halves := make([]f16.Bits, n)
	tm := rate("precision conversion (Tm)", func() { f16.EncodeSlice(halves, grad) })

	sig := make([]float64, cfft.NextPow2(n))
	for i, v := range grad {
		sig[i] = float64(v)
	}
	plan := cfft.NewRealPlan(len(sig))
	spec := make([]complex128, plan.SpectrumLen())
	tf := rate("real FFT (Tf)", func() { plan.Forward(spec, sig) })

	mags := make([]float64, n)
	for i, v := range grad {
		m := float64(v)
		if m < 0 {
			m = -m
		}
		mags[i] = m
	}
	ts := rate("top-k selection (Ts)", func() { topk.KthLargestBucket(mags, n/10) })

	tp := rate("sparse packing (Tp)", func() { pack.PackNonzero(grad) })

	q, err := quant.Tune(10, -1, 1, grad[:4096])
	if err != nil {
		fmt.Println("quantizer tuning failed:", err)
		return
	}
	codes := make([]uint32, n)
	rate("range quantization", func() { q.EncodeSlice(codes, grad) })

	fftc := compress.NewFFT(0.85)
	rate("full FFT pipeline", func() {
		if _, err := fftc.Compress(grad); err != nil {
			panic(err)
		}
	})

	// Steady-state round trip with reused buffers — the zero-allocation
	// path distributed training runs every iteration (note the parallel
	// fan-out spawns goroutines, so allocs/op here is per-worker closure
	// overhead, not data-path allocation; run with GOMAXPROCS=1 to see 0).
	rec := make([]float32, n)
	var msg []byte
	rate("FFT round trip (reused)", func() {
		var err error
		msg, err = fftc.AppendCompress(msg[:0], grad)
		if err != nil {
			panic(err)
		}
		if err := fftc.DecompressInto(rec, msg); err != nil {
			panic(err)
		}
	})

	// Every registered compressor end to end on the reused-buffer path:
	// per-method compress/decompress rates, wire ratio and allocations.
	const sweepTheta = 0.85
	fmt.Printf("\nper-compressor steady-state round trips (θ=%.2f where used):\n", sweepTheta)
	for _, method := range []string{"fp32", "fft", "dct", "topk", "qsgd", "terngrad"} {
		c, err := compress.New(method, sweepTheta)
		if err != nil {
			fmt.Printf("%-10s unavailable: %v\n", method, err)
			continue
		}
		var msg []byte
		compRate, _ := measure(func() {
			msg, err = compress.AppendCompress(c, msg[:0], grad)
			if err != nil {
				panic(err)
			}
		})
		decRate, _ := measure(func() {
			if err := compress.DecompressInto(c, rec, msg); err != nil {
				panic(err)
			}
		})
		_, rtAllocs := measure(func() {
			msg, err = compress.AppendCompress(c, msg[:0], grad)
			if err != nil {
				panic(err)
			}
			if err := compress.DecompressInto(c, rec, msg); err != nil {
				panic(err)
			}
		})
		ratio := bytes / float64(len(msg))
		fmt.Printf("%-10s %7.2fx  compress %6.2f GB/s  decompress %6.2f GB/s  %4d allocs/op\n",
			method, ratio, compRate/1e9, decRate/1e9, rtAllocs)
		rep.Compressors = append(rep.Compressors, compressorResult{
			Method: method, Theta: sweepTheta, Ratio: ratio,
			CompressBytesPS: compRate, DecompressBytesPS: decRate, AllocsPerOp: rtAllocs,
		})
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}

	// Feed the measured rates into the Sec. 3.3 model.
	t := perfmodel.Throughputs{Tm: tm, Tf: tf, Tp: tp, Ts: ts}
	fmt.Printf("\nminimal beneficial compression ratio (Eq. 4) with these rates:\n")
	tab := &stats.Table{Headers: []string{"network", "min ratio k", "verdict"}}
	for _, net := range []struct {
		name  string
		tcomm float64
	}{
		{"1 Gbps Ethernet", 1e9 / 8},
		{"10 Gbps Ethernet", 10e9 / 8},
		{"56 Gbps FDR InfiniBand", 56e9 / 8},
		{"100 Gbps EDR InfiniBand", 100e9 / 8},
	} {
		k, err := perfmodel.MinBeneficialRatio(net.tcomm, t)
		if err != nil {
			tab.AddRow(net.name, "-", "compression cannot help")
			continue
		}
		tab.AddRow(net.name, k, fmt.Sprintf("compress when ratio > %.1f", k))
	}
	fmt.Print(tab.String())
	fmt.Printf("\nno ratio helps on links faster than %.1f Gbps with this pipeline\n",
		perfmodel.MaxTolerableTcomm(t)*8/1e9)
}

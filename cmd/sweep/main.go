// Command sweep explores the compression design space: for a grid of
// drop ratios θ and quantizer widths N it reports the achieved ratio, the
// reconstruction error, and the measured codec time of the FFT pipeline
// (with spatial Top-k at the same θ as the reference point). This is the
// tool for choosing an operating point before a long training run.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"fftgrad/internal/collective"
	"fftgrad/internal/compress"
	"fftgrad/internal/netsim"
	"fftgrad/internal/stats"
)

func main() {
	n := flag.Int("n", 1<<20, "gradient length (floats)")
	thetaList := flag.String("thetas", "0.5,0.7,0.85,0.95,0.99", "comma-separated drop ratios")
	bitsList := flag.String("bits", "6,8,10,12", "comma-separated quantizer widths")
	seed := flag.Int64("seed", 1, "random seed")
	rankList := flag.String("ranks", "16,64,256,1024", "comma-separated rank counts for the strategy table")
	groupSize := flag.Int("group-size", 8, "hierarchical group size for the strategy table")
	flag.Parse()

	thetas, err := parseFloats(*thetaList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -thetas:", err)
		os.Exit(2)
	}
	bits, err := parseInts(*bitsList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -bits:", err)
		os.Exit(2)
	}

	grad := correlated(*n, *seed)
	rec := make([]float32, *n)

	fmt.Printf("FFT pipeline sweep on a %d-element correlated gradient (%.1f MB):\n\n",
		*n, float64(*n*4)/(1<<20))
	t := &stats.Table{Headers: []string{"θ", "quant bits", "ratio", "relL2 err", "codec ms"}}
	for _, theta := range thetas {
		for _, b := range bits {
			c := compress.NewFFT(theta)
			c.QuantBits = b
			start := time.Now()
			msg, err := c.Compress(grad)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := c.Decompress(rec, msg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			el := time.Since(start).Seconds() * 1e3
			t.AddRow(theta, b, compress.Ratio(*n, msg), stats.RelL2(grad, rec), el)
		}
	}
	fmt.Print(t.String())

	fmt.Printf("\nspatial Top-k reference at the same θ:\n")
	t2 := &stats.Table{Headers: []string{"θ", "ratio", "relL2 err"}}
	for _, theta := range thetas {
		c := compress.NewTopK(theta)
		msg, err := c.Compress(grad)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := c.Decompress(rec, msg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t2.AddRow(theta, compress.Ratio(*n, msg), stats.RelL2(grad, rec))
	}
	fmt.Print(t2.String())

	// Exchange-strategy comparison on the paper's FDR-IB profile: predicted
	// time for one exchange of the full (uncompressed) gradient under each
	// schedule, the pure TreeReduce lower bound, and the Sec. 3.3 minimal
	// ratio k_min each strategy needs to beat the FP32 ring allreduce.
	ranks, err := parseInts(*rankList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -ranks:", err)
		os.Exit(2)
	}
	pr := netsim.InfiniBandFDR
	mBytes := *n * 4
	fmt.Printf("\nexchange strategies on %s, %.1f MB gradient (hier group size %d):\n\n",
		pr.Name, float64(mBytes)/(1<<20), *groupSize)
	t3 := &stats.Table{Headers: []string{"ranks", "ring ms", "hier ms", "tree ms", "treereduce ms",
		"k_min ring", "k_min hier", "k_min tree"}}
	ring := collective.Config{Strategy: collective.Ring}
	hier := collective.Config{Strategy: collective.Hier, GroupSize: *groupSize}
	tree := collective.Config{Strategy: collective.Tree}
	for _, p := range ranks {
		t3.AddRow(p,
			ring.ModelAllgather(pr, p, mBytes)*1e3,
			hier.ModelAllgather(pr, p, mBytes)*1e3,
			tree.ModelAllgather(pr, p, mBytes)*1e3,
			pr.TreeReduce(p, mBytes)*1e3,
			ring.KMin(pr, p, mBytes),
			hier.KMin(pr, p, mBytes),
			tree.KMin(pr, p, mBytes))
	}
	fmt.Print(t3.String())

	fmt.Println("\npick the smallest error whose ratio clears your network's minimal k" +
		" (see cmd/compressbench / examples/perfguide)")
}

func correlated(n int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float32, n)
	v := 0.0
	for i := range x {
		v = 0.97*v + 0.03*r.NormFloat64()
		x[i] = float32(0.1*v + 0.002*r.NormFloat64())
	}
	return x
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Command benchdiff compares two compressbench -json reports (see `make
// bench-json`) and prints per-benchmark ns/op and allocs/op deltas. It
// exits non-zero when any benchmark regressed beyond the threshold, so
// CI can gate performance changes:
//
//	go run ./cmd/compressbench -json old.json        # on the base commit
//	go run ./cmd/compressbench -json new.json        # on the candidate
//	go run ./cmd/benchdiff -threshold 0.10 old.json new.json
//
// A regression is a ns/op increase of more than -threshold (fractional,
// default 0.10 = 10%) or any allocs/op increase. Benchmarks present in
// only one report are listed but never fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type primitiveResult struct {
	Name        string  `json:"name"`
	BytesPerSec float64 `json:"bytes_per_sec"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

type compressorResult struct {
	Method            string  `json:"method"`
	Theta             float64 `json:"theta"`
	Ratio             float64 `json:"ratio"`
	CompressBytesPS   float64 `json:"compress_bytes_per_sec"`
	DecompressBytesPS float64 `json:"decompress_bytes_per_sec"`
	AllocsPerOp       uint64  `json:"allocs_per_op"`
}

type report struct {
	WorkingSetMB int                `json:"working_set_mb"`
	Iters        int                `json:"iters"`
	Primitives   []primitiveResult  `json:"primitives"`
	Compressors  []compressorResult `json:"compressors"`
}

// bench is one comparable benchmark row, normalised to ns/op so reports
// with different working-set sizes still compare per-operation cost.
type bench struct {
	nsPerOp float64
	allocs  uint64
}

func (r *report) benches() map[string]bench {
	bytes := float64(r.WorkingSetMB) * (1 << 20)
	nsPerOp := func(rate float64) float64 {
		if rate <= 0 {
			return 0
		}
		return bytes / rate * 1e9
	}
	out := make(map[string]bench)
	for _, p := range r.Primitives {
		b := bench{nsPerOp(p.BytesPerSec), p.AllocsPerOp}
		if p.BytesPerOp > 0 && p.BytesPerSec > 0 {
			// Kernel-matrix rows carry their own per-op working set (the
			// -sizes element count), independent of the -mb gradient.
			b.nsPerOp = p.BytesPerOp / p.BytesPerSec * 1e9
		}
		out["primitive/"+p.Name] = b
	}
	for _, c := range r.Compressors {
		key := fmt.Sprintf("%s/theta=%.2f", c.Method, c.Theta)
		out[key+"/compress"] = bench{nsPerOp(c.CompressBytesPS), c.AllocsPerOp}
		out[key+"/decompress"] = bench{nsPerOp(c.DecompressBytesPS), c.AllocsPerOp}
	}
	return out
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "fractional ns/op increase tolerated before failing (0.10 = 10%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	oldB, newB := oldRep.benches(), newRep.benches()
	names := make([]string, 0, len(oldB)+len(newB))
	for n := range oldB {
		names = append(names, n)
	}
	for n := range newB {
		if _, ok := oldB[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Printf("%-32s %14s %14s %8s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	regressions := 0
	for _, n := range names {
		o, haveOld := oldB[n]
		nw, haveNew := newB[n]
		switch {
		case !haveOld:
			fmt.Printf("%-32s %14s %14.0f %8s %12d  (new)\n", n, "-", nw.nsPerOp, "-", nw.allocs)
			continue
		case !haveNew:
			fmt.Printf("%-32s %14.0f %14s %8s %12s  (removed)\n", n, o.nsPerOp, "-", "-", "-")
			continue
		}
		delta := 0.0
		if o.nsPerOp > 0 {
			delta = (nw.nsPerOp - o.nsPerOp) / o.nsPerOp
		}
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSION(ns/op)"
			regressions++
		}
		if nw.allocs > o.allocs {
			mark += fmt.Sprintf("  REGRESSION(allocs %d->%d)", o.allocs, nw.allocs)
			regressions++
		}
		fmt.Printf("%-32s %14.0f %14.0f %+7.1f%% %12d%s\n", n, o.nsPerOp, nw.nsPerOp, delta*100, nw.allocs, mark)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%% threshold\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

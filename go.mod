module fftgrad

go 1.22

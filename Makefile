GO ?= go

.PHONY: all build vet test race bench bench-json benchdiff bench-baseline bench-gate experiments examples fmt check chaos guard fuzz trace-smoke serve-smoke collective-smoke elastic-smoke obs-smoke

all: build vet test

# check is the CI gate: vet, build, full test suite, then a short race
# pass over the packages that share caches/pools across goroutines or
# mutate shared controller/registry state.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -short ./internal/cfft/ ./internal/sparsify/ ./internal/compress/ ./internal/comm/ ./internal/collective/ ./internal/telemetry/ ./internal/adapt/ ./internal/cluster/ ./internal/chaos/ ./internal/guard/ ./internal/checkpoint/ ./internal/trace/ ./internal/obs/ ./internal/ps/ ./internal/serve/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/comm/ ./internal/collective/ ./internal/dist/ ./internal/ps/ ./internal/cluster/ ./internal/chaos/ ./internal/guard/ ./internal/trace/ ./internal/obs/ ./internal/serve/

# Chaos gate: the failure-policy suite plus a short fault-injected
# training run (5% drop, delays, one crash+rejoin) that must converge.
chaos:
	$(GO) test -run 'Chaos|Fault|Partition|Rejoin|Straggler|Suspect' -v ./internal/cluster/ ./internal/chaos/ ./internal/dist/
	$(GO) run ./cmd/trainer -model mlp -epochs 2 -workers 4 -fault-aware \
		-chaos-drop 0.05 -chaos-delay 10ms -chaos-crash 2 -chaos-crash-at 1200 -chaos-crash-for 1000

# Guard gate: the integrity suite plus a training run under seeded
# single-bit wire corruption — every corrupt frame must be caught by
# the CRC and repaired, and the run must converge.
guard:
	$(GO) test -run 'Guard|Frame|Scrub|Detector|Fingerprint|Corrupt|Ring|WriteFileAtomic' -v \
		./internal/guard/ ./internal/checkpoint/ ./internal/chaos/ ./internal/dist/
	$(GO) run ./cmd/trainer -model mlp -epochs 2 -workers 4 -fault-aware -guard \
		-chaos-corrupt 0.05

# Fuzz smoke: a short wall-clock-bounded pass over the compressed
# message decoder and the guard frame decoder.
fuzz:
	$(GO) test -fuzz=FuzzDecompressRobustness -fuzztime=15s -run '^$$' ./internal/compress/
	$(GO) test -fuzz=FuzzUnframe -fuzztime=15s -run '^$$' ./internal/guard/

# One pass over every benchmark (each experiment bench runs its full
# quick workload once).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Machine-readable compression benchmark: per-primitive and
# per-compressor throughput, wire ratio and allocs/op.
bench-json:
	$(GO) run ./cmd/compressbench -json BENCH_compress.json

# Compare two bench-json reports (OLD=... NEW=..., defaulting to a
# self-diff of BENCH_compress.json); exits non-zero on regression.
benchdiff:
	$(GO) run ./cmd/benchdiff -threshold 0.10 $(or $(OLD),BENCH_compress.json) $(or $(NEW),BENCH_compress.json)

# Regenerate the committed kernel baseline. Run on a quiet machine after
# an intentional kernel change, and commit the result together with it.
# Best-of-5 damps scheduler noise; -mb 8 matches the gate below (ns/op
# rows are normalised against the report's working set, so both sides
# of a diff must use the same size).
bench-baseline:
	$(GO) run ./cmd/compressbench -json BENCH_BASELINE.json -mb 8 -iters 5

# Kernel regression gate: a fresh run diffed against the committed
# baseline. Two tiers, because the baseline was recorded on a different
# machine than the one running the gate:
#   - allocs/op is hardware-independent and gated exactly (any increase
#     in a steady-state-zero path fails, whatever the threshold);
#   - ns/op is a coarse tripwire with a deliberately generous threshold
#     (default 2.0 = up to 3x slower than the baseline box) that still
#     catches algorithmic blowups — a lost fast path, accidental
#     serialisation, O(n log n) turning into O(n^2) — without flagging
#     ordinary cross-machine and scheduler variance.
bench-gate:
	$(GO) run ./cmd/compressbench -json BENCH_ci.json -mb 8 -iters 3
	$(GO) run ./cmd/benchdiff -threshold $(or $(THRESHOLD),2.0) BENCH_BASELINE.json BENCH_ci.json

# Trace smoke: a short chaos run with the flight recorder armed must
# produce a Perfetto-loadable trace_event dump covering every rank.
trace-smoke:
	$(GO) run ./cmd/trainer -model mlp -epochs 2 -workers 4 -fault-aware -guard \
		-chaos-drop 0.05 -chaos-corrupt 0.02 -chaos-crash 2 -chaos-crash-at 1200 -chaos-crash-for 1000 \
		-trace-out trace-smoke.json
	python3 -c "import json,sys; ev=json.load(open('trace-smoke.json')); ranks={e.get('tid') for e in ev if e.get('ph')=='X'}; assert ranks>={0,1,2,3}, ranks; print('trace-smoke: %d events, ranks %s' % (len(ev), sorted(ranks)))"

# Observability gate: the profiler unit suite (clock offsets under skew,
# critical-path blame, zero-alloc commit), then a 4-rank chaos run with a
# permanent 15ms straggler on rank 2 — the exported blame ledger must
# name rank 2 and charge it at least half of all cross-rank blocked time,
# and the merged multi-process timeline must cover every rank.
obs-smoke:
	$(GO) test -run 'TestOffsetsUnderSkew|TestCriticalPathBlame|TestFaultPathBlame|TestCommitZeroAlloc|TestProfilerBitIdentical|TestProfilerBlamesChaosStraggler' -v ./internal/obs/ ./internal/dist/
	$(GO) build -o obs-smoke-bin ./cmd/trainer
	./obs-smoke-bin -model mlp -epochs 2 -workers 4 -fault-aware \
		-chaos-straggle 2 -chaos-straggle-by 15ms \
		-profile-out obs-smoke.json -trace-out obs-smoke-trace.json | tee obs-smoke.log; \
	RC=$$?; [ $$RC -eq 0 ] && \
	grep -q "profile: top blamed rank 2" obs-smoke.log && \
	python3 -c "import json; \
		doc=json.load(open('obs-smoke.json')); \
		b={e['rank']: e for e in doc['blame']}; \
		frac=b[2]['blamed_frac']; \
		assert frac >= 0.5, 'straggled rank 2 only blamed for %.0f%% of blocked time' % (100*frac); \
		assert doc['summary']['iterations'] > 0 and doc['build']['version'], doc['summary']; \
		ev=json.load(open('obs-smoke-trace.merged.json')); \
		pids={e.get('pid') for e in ev if e.get('ph')=='X'}; \
		assert pids>={1,2,3,4}, pids; \
		print('obs-smoke: rank 2 blamed for %.0f%% of %.3fs blocked time; merged timeline spans %d processes' \
			% (100*frac, doc['summary']['total_blocked_ns']/1e9, len(pids)))"; \
	RC=$$?; rm -f obs-smoke-bin obs-smoke.json obs-smoke.log obs-smoke-trace.json obs-smoke-trace.merged.json obs-smoke-trace.flight.json obs-cpu-iter*.pprof obs-anomaly-iter*.json; exit $$RC

# Service smoke: start `trainer -serve`, run two concurrent jobs with
# different compressors over the HTTP API, require both to complete and
# their metrics to stay distinguishable per job, then SIGTERM-drain.
serve-smoke:
	$(GO) build -o serve-smoke-bin ./cmd/trainer
	./serve-smoke-bin -serve -metrics-addr 127.0.0.1:19099 -pool 4 -spool serve-smoke-spool & \
	SRV=$$!; \
	sleep 2; \
	A=$$(curl -sf -X POST 127.0.0.1:19099/jobs -d '{"name":"fft","method":"fft","theta":0.85,"workers":2,"epochs":2,"samples":1024}' | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])') && \
	B=$$(curl -sf -X POST 127.0.0.1:19099/jobs -d '{"name":"topk","method":"topk","theta":0.9,"workers":2,"epochs":2,"samples":1024}' | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])') && \
	for i in $$(seq 1 60); do \
		SA=$$(curl -sf 127.0.0.1:19099/jobs/$$A | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])'); \
		SB=$$(curl -sf 127.0.0.1:19099/jobs/$$B | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])'); \
		[ "$$SA" = completed ] && [ "$$SB" = completed ] && break; sleep 1; \
	done && \
	[ "$$SA" = completed ] && [ "$$SB" = completed ] && \
	curl -sf 127.0.0.1:19099/jobs/metrics | grep -q "job=\"$$A\"" && \
	curl -sf 127.0.0.1:19099/jobs/metrics | grep -q "job=\"$$B\"" && \
	echo "serve-smoke: $$A and $$B completed with per-job metrics"; \
	RC=$$?; kill -TERM $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	rm -rf serve-smoke-bin serve-smoke-spool; exit $$RC

# Collective gate: the Sec. 3.3 crossover-shift check (hier must lower
# k_min vs the flat ring at scale), the exact zero-alloc gates on the
# strategy schedules and traced collectives, then two chaos runs of the
# 2-group hierarchical bucketed pipeline with one rank crashing
# mid-iteration — between bucket rounds: the in-process gate that also
# enforces the 2-point accuracy envelope vs the fault-free flat-ring
# baseline, and a trainer run exercising the CLI flags end to end.
collective-smoke:
	$(GO) test -run 'TestCrossoverShift' -v ./internal/collective/
	$(GO) test -run 'ZeroAlloc' -v ./internal/collective/ ./internal/comm/
	$(GO) test -run 'TestHierBucketedChaosGate' -v ./internal/dist/
	$(GO) run ./cmd/trainer -model mlp -epochs 2 -workers 4 -fault-aware \
		-collective hier -group-size 2 -bucket-bytes 1024 \
		-chaos-drop 0.05 -chaos-delay 10ms -chaos-crash 2 -chaos-crash-at 1200 -chaos-crash-for 1000

# Elasticity gate: the bounded-staleness / gossip / elastic-join suites
# (these enforce the 2-point convergence envelope against the fault-free
# baseline in-process), then two seeded CLI runs under -staleness 4: a
# straggler-free one to time, and one adding a mid-run elastic join plus
# a *permanent* straggler (20ms per send — far above the per-round grace,
# well below the suspicion deadline, and never recovering). The straggled
# run must converge, must dump the timeline on the quorum-grow join, and
# must finish within 1.5x of the straggler-free run (+1s fixed slack for
# the extra rank's startup): bounded staleness folds the straggler's
# cached gradients instead of waiting, so a permanently slow rank no
# longer sets the fleet's pace.
elastic-smoke:
	$(GO) test -run 'TestBoundedStalenessGate|TestGossipGate|TestElasticJoinGate|TestAsyncConfigRejections|TestElasticJoinWorkerAccounting' -v ./internal/dist/
	$(GO) test -run 'TestBackoffJitterDeterministic|TestAwaitRejoinHaltPromptly|TestWaitWithinWindowThrottle|TestExchangeBoundedFoldsStaleCache|TestGossipExchangeMixesNeighbors|TestAdmitJoinGrowsView' -v ./internal/cluster/
	$(GO) build -o elastic-smoke-bin ./cmd/trainer
	T0=$$(date +%s%N); \
	./elastic-smoke-bin -model mlp -epochs 2 -workers 4 -seed 7 -staleness 4 \
		-chaos-drop 0.03 -chaos-delay 5ms >/dev/null || { rm -f elastic-smoke-bin; exit 1; }; \
	T1=$$(date +%s%N); \
	./elastic-smoke-bin -model mlp -epochs 2 -workers 4 -seed 7 -staleness 4 \
		-elastic-join 20 -chaos-drop 0.03 -chaos-delay 5ms \
		-chaos-straggle 3 -chaos-straggle-at 300 -chaos-straggle-by 20ms \
		-trace-out elastic-smoke.json | tee elastic-smoke.log || { rm -f elastic-smoke-bin elastic-smoke.log; exit 1; }; \
	T2=$$(date +%s%N); \
	grep -q "reason view_grow" elastic-smoke.log && \
	python3 -c "import json; ev=json.load(open('elastic-smoke.flight.json')); assert ev, 'empty flight dump'" && \
	python3 -c "base=($$T1-$$T0)/1e9; strag=($$T2-$$T1)/1e9; \
		print('elastic-smoke: straggler-free %.2fs, straggled+join %.2fs' % (base, strag)); \
		assert strag <= 1.5*base + 1.0, 'permanent straggler set the pace: %.2fs vs %.2fs' % (strag, base)"; \
	RC=$$?; rm -f elastic-smoke-bin elastic-smoke.log elastic-smoke.json elastic-smoke.flight.json; exit $$RC

# Regenerate every paper figure/table and ablation.
experiments:
	$(GO) run ./cmd/fftpaper -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/quantization
	$(GO) run ./examples/perfguide
	$(GO) run ./examples/recovery
	$(GO) run ./examples/distributed
	$(GO) run ./examples/tcpcluster
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/jobservice

fmt:
	gofmt -w .

GO ?= go

.PHONY: all build vet test race bench bench-json experiments examples fmt check

all: build vet test

# check is the CI gate: vet, build, full test suite, then a short race
# pass over the packages that share caches/pools across goroutines or
# mutate shared controller/registry state.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -short ./internal/cfft/ ./internal/sparsify/ ./internal/compress/ ./internal/comm/ ./internal/telemetry/ ./internal/adapt/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/comm/ ./internal/dist/ ./internal/ps/

# One pass over every benchmark (each experiment bench runs its full
# quick workload once).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Machine-readable compression benchmark: per-primitive and
# per-compressor throughput, wire ratio and allocs/op.
bench-json:
	$(GO) run ./cmd/compressbench -json BENCH_compress.json

# Regenerate every paper figure/table and ablation.
experiments:
	$(GO) run ./cmd/fftpaper -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/quantization
	$(GO) run ./examples/perfguide
	$(GO) run ./examples/recovery
	$(GO) run ./examples/distributed
	$(GO) run ./examples/tcpcluster
	$(GO) run ./examples/faulttolerance

fmt:
	gofmt -w .

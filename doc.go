// Package fftgrad reproduces "FFT-based Gradient Sparsification for the
// Distributed Training of Deep Neural Networks" (Wang et al., HPDC 2020)
// as a self-contained Go library: the FFT-domain sparsifier, the
// range-based N-bit float quantizer, the parallel sparse packing, the
// QSGD/TernGrad/Top-k baselines, a from-scratch DNN training substrate, a
// BSP data-parallel trainer over in-process collectives, the Sec. 3.3
// analytic performance model, and an experiment harness regenerating
// every table and figure of the paper's evaluation.
//
// Entry points:
//
//   - internal/compress — the Compressor interface and all five algorithms
//   - internal/dist     — BSP data-parallel training with compression
//   - internal/experiments + cmd/fftpaper — paper figure regeneration
//   - examples/         — runnable walkthroughs
//
// # Buffer reuse and the zero-allocation contract
//
// The compression hot path is designed to allocate nothing in the steady
// state. Every Compressor also implements the append-style pair
//
//	AppendCompress(dst []byte, grad []float32) ([]byte, error)
//	DecompressInto(dst []float32, msg []byte) error
//
// (compress.Appender / compress.IntoDecompressor; the package-level
// compress.AppendCompress and compress.DecompressInto helpers fall back
// to the allocating path for third-party implementations). The contract:
//
//   - AppendCompress appends the message to dst and returns the extended
//     slice, exactly like the standard library's append-style encoders.
//     Passing a retained buffer's msg[:0] reuses its capacity; after the
//     first few calls have grown it, compression allocates nothing.
//   - The returned message does not alias grad, and DecompressInto does
//     not retain msg — callers may reuse both buffers on the next
//     iteration, subject to whoever else is still reading them (see
//     internal/dist for the double-buffering this implies under
//     Allgather's aliasing).
//   - Temporaries inside the pipeline come from internal/scratch, a set
//     of typed, size-classed pools; FFT/DCT plans and tuned quantizers
//     are cached per size, so repeated same-shape gradients hit every
//     cache.
//
// The contract is enforced by testing.AllocsPerRun regression gates in
// internal/compress (TestZeroAllocRoundTrip: 0 allocs/op for the FFT,
// DCT, Top-k and FP32 round trips) and reported by cmd/compressbench's
// allocs/op column.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package fftgrad

// Package fftgrad reproduces "FFT-based Gradient Sparsification for the
// Distributed Training of Deep Neural Networks" (Wang et al., HPDC 2020)
// as a self-contained Go library: the FFT-domain sparsifier, the
// range-based N-bit float quantizer, the parallel sparse packing, the
// QSGD/TernGrad/Top-k baselines, a from-scratch DNN training substrate, a
// BSP data-parallel trainer over in-process collectives, the Sec. 3.3
// analytic performance model, and an experiment harness regenerating
// every table and figure of the paper's evaluation.
//
// Entry points:
//
//   - internal/compress — the Compressor interface and all five algorithms
//   - internal/dist     — BSP data-parallel training with compression
//   - internal/experiments + cmd/fftpaper — paper figure regeneration
//   - examples/         — runnable walkthroughs
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package fftgrad

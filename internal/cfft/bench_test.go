package cfft

import (
	"fmt"
	"math"
	"testing"
)

// Sizes match real layer gradients: 2^16 (small dense layer) through 2^22
// (large embedding / conv block).
var benchSizes = []int{1 << 16, 1 << 18, 1 << 20, 1 << 22}

func BenchmarkPlanForward(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			plan := PlanFor(n)
			src := make([]complex128, n)
			dst := make([]complex128, n)
			for i := range src {
				src[i] = complex(math.Sin(float64(i)), 0)
			}
			b.SetBytes(int64(n * 16))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Forward(dst, src)
			}
		})
	}
}

func BenchmarkRealPlanForward(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			plan := RealPlanFor(n)
			src := make([]float64, n)
			spec := make([]complex128, plan.SpectrumLen())
			for i := range src {
				src[i] = math.Sin(float64(i))
			}
			b.SetBytes(int64(n * 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Forward(spec, src)
			}
		})
	}
}

func BenchmarkBluestein(b *testing.B) {
	// Odd lengths force the chirp-z path; sized near the pow2 ladder.
	for _, n := range []int{1<<16 + 1, 1<<18 + 3, 1<<20 + 1} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := make([]complex128, n)
			dst := make([]complex128, n)
			for i := range src {
				src[i] = complex(math.Sin(float64(i)), 0)
			}
			bluestein(dst, src, false) // warm the chirp cache
			b.SetBytes(int64(n * 16))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bluestein(dst, src, false)
			}
		})
	}
}

// TestPlanForConcurrent hammers the global caches from many goroutines to
// prove the publish-once slots hand every caller the same plan.
func TestPlanForConcurrent(t *testing.T) {
	const n = 1 << 10
	ch := make(chan *Plan, 16)
	for g := 0; g < 16; g++ {
		go func() { ch <- PlanFor(n) }()
	}
	first := <-ch
	for g := 1; g < 16; g++ {
		if p := <-ch; p != first {
			t.Fatal("PlanFor returned different plans for the same length")
		}
	}
	if RealPlanFor(n) != RealPlanFor(n) {
		t.Fatal("RealPlanFor not cached")
	}
	if DCTPlanFor(n) != DCTPlanFor(n) {
		t.Fatal("DCTPlanFor not cached")
	}
}

func TestPaddedLen(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	}
	for _, c := range cases {
		if got := PaddedLen(c.n); got != c.want {
			t.Errorf("PaddedLen(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestBluesteinMatchesPow2Neighbor checks the cached-kernel chirp-z path
// against the radix-2 path via the defining DFT property on a small case.
func TestBluesteinCachedKernel(t *testing.T) {
	const n = 12
	src := make([]complex128, n)
	for i := range src {
		src[i] = complex(float64(i%5)-2, float64(i%3)-1)
	}
	got := FFT(src)
	// Direct O(n²) DFT reference.
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			want += src[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		if d := got[k] - want; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("bin %d: got %v, want %v", k, got[k], want)
		}
	}
	// Round trip through the cached inverse kernel.
	back := IFFT(got)
	for i := range back {
		if d := back[i] - src[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("ifft[%d]: got %v, want %v", i, back[i], src[i])
		}
	}
}

package cfft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// Plans must be safe for concurrent use: many goroutines transforming
// different buffers through one shared plan must all get the same answers
// as a serial run. (The sparsifier caches one plan per length and the BSP
// workers all hit it.)
func TestPlanConcurrentUse(t *testing.T) {
	n := 1 << 12
	p := NewPlan(n)
	const workers = 8
	inputs := make([][]complex128, workers)
	want := make([][]complex128, workers)
	for w := 0; w < workers; w++ {
		inputs[w] = randComplex(n, int64(w))
		want[w] = make([]complex128, n)
		p.Forward(want[w], inputs[w])
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				got := make([]complex128, n)
				p.Forward(got, inputs[w])
				for i := range got {
					if cmplx.Abs(got[i]-want[w][i]) > 1e-12 {
						t.Errorf("worker %d rep %d bin %d diverged", w, rep, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestRealPlanConcurrentUse(t *testing.T) {
	n := 1 << 10
	rp := NewRealPlan(n)
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			x := make([]float64, n)
			for i := range x {
				x[i] = r.NormFloat64()
			}
			spec := make([]complex128, rp.SpectrumLen())
			back := make([]float64, n)
			for rep := 0; rep < 20; rep++ {
				rp.Forward(spec, x)
				rp.Inverse(back, spec)
				for i := range x {
					if math.Abs(back[i]-x[i]) > 1e-9 {
						t.Errorf("seed %d rep %d: round trip broke", seed, rep)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// Time-shift property: shifting the input rotates each spectrum bin by
// e^{-2πik·s/n} without changing magnitudes — a deeper structural check
// than the round-trip tests.
func TestShiftTheorem(t *testing.T) {
	n := 256
	shift := 17
	x := randComplex(n, 99)
	shifted := make([]complex128, n)
	for i := range x {
		shifted[i] = x[(i+shift)%n]
	}
	X := FFT(x)
	S := FFT(shifted)
	for k := 0; k < n; k++ {
		if math.Abs(cmplx.Abs(X[k])-cmplx.Abs(S[k])) > 1e-9 {
			t.Fatalf("bin %d magnitude changed under shift", k)
		}
		ang := 2 * math.Pi * float64(k) * float64(shift) / float64(n)
		rot := complex(math.Cos(ang), math.Sin(ang))
		if cmplx.Abs(S[k]-X[k]*rot) > 1e-9*(1+cmplx.Abs(X[k])) {
			t.Fatalf("bin %d phase rotation wrong", k)
		}
	}
}

package cfft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			acc += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		if inverse {
			acc /= complex(float64(n), 0)
		}
		out[k] = acc
	}
	return out
}

func randComplex(n int, seed int64) []complex128 {
	r := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestIsPow2NextPow2(t *testing.T) {
	if !IsPow2(1) || !IsPow2(1024) || IsPow2(0) || IsPow2(3) || IsPow2(-4) {
		t.Fatal("IsPow2 misbehaves")
	}
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 17: 32, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d)=%d want %d", in, got, want)
		}
	}
}

func TestPlanMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(n, int64(n))
		want := naiveDFT(x, false)
		got := make([]complex128, n)
		NewPlan(n).Forward(got, x)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d forward max diff %g", n, d)
		}
	}
}

func TestPlanInverseRoundTrip(t *testing.T) {
	for _, n := range []int{2, 8, 128, 4096, 1 << 16} {
		x := randComplex(n, int64(n)+1)
		p := NewPlan(n)
		f := make([]complex128, n)
		p.Forward(f, x)
		back := make([]complex128, n)
		p.Inverse(back, f)
		if d := maxAbsDiff(back, x); d > 1e-9 {
			t.Errorf("n=%d round-trip max diff %g", n, d)
		}
	}
}

func TestPlanInPlace(t *testing.T) {
	n := 512
	x := randComplex(n, 3)
	want := make([]complex128, n)
	p := NewPlan(n)
	p.Forward(want, x)
	inPlace := append([]complex128(nil), x...)
	p.Forward(inPlace, inPlace)
	if d := maxAbsDiff(inPlace, want); d > 1e-12 {
		t.Errorf("in-place forward differs by %g", d)
	}
}

func TestPlanPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-pow2 plan")
		}
	}()
	NewPlan(12)
}

func TestBluesteinMatchesNaive(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12, 100, 243} {
		x := randComplex(n, int64(n)+100)
		want := naiveDFT(x, false)
		got := FFT(x)
		if d := maxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("bluestein n=%d max diff %g", n, d)
		}
	}
}

func TestFFTIFFTRoundTripAnyLength(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 100, 1000, 4095, 4096} {
		x := randComplex(n, int64(n)+200)
		back := IFFT(FFT(x))
		if d := maxAbsDiff(back, x); d > 1e-8 {
			t.Errorf("n=%d round trip diff %g", n, d)
		}
	}
}

// Parseval's theorem: Σ|x|² == (1/n)·Σ|X|².
func TestParseval(t *testing.T) {
	for _, n := range []int{64, 100, 1 << 12} {
		x := randComplex(n, int64(n)+300)
		X := FFT(x)
		var e1, e2 float64
		for i := range x {
			e1 += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			e2 += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		e2 /= float64(n)
		if math.Abs(e1-e2) > 1e-6*e1 {
			t.Errorf("n=%d Parseval violated: %g vs %g", n, e1, e2)
		}
	}
}

// Linearity: FFT(a·x + y) == a·FFT(x) + FFT(y).
func TestLinearity(t *testing.T) {
	n := 256
	x := randComplex(n, 400)
	y := randComplex(n, 401)
	a := complex(2.5, -1.0)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = a*x[i] + y[i]
	}
	left := FFT(sum)
	fx := FFT(x)
	fy := FFT(y)
	right := make([]complex128, n)
	for i := range right {
		right[i] = a*fx[i] + fy[i]
	}
	if d := maxAbsDiff(left, right); d > 1e-9 {
		t.Errorf("linearity violated by %g", d)
	}
}

// A pure tone must concentrate all energy in a single bin.
func TestPureTone(t *testing.T) {
	n := 128
	k0 := 5
	x := make([]complex128, n)
	for j := range x {
		ang := 2 * math.Pi * float64(k0) * float64(j) / float64(n)
		x[j] = complex(math.Cos(ang), math.Sin(ang))
	}
	X := FFT(x)
	for k := range X {
		mag := cmplx.Abs(X[k])
		if k == k0 {
			if math.Abs(mag-float64(n)) > 1e-9 {
				t.Errorf("bin %d magnitude %g want %d", k, mag, n)
			}
		} else if mag > 1e-9 {
			t.Errorf("leakage at bin %d: %g", k, mag)
		}
	}
}

func TestRealPlanMatchesComplex(t *testing.T) {
	for _, n := range []int{2, 4, 16, 256, 4096} {
		r := rand.New(rand.NewSource(int64(n)))
		x := make([]float64, n)
		cx := make([]complex128, n)
		for i := range x {
			x[i] = r.NormFloat64()
			cx[i] = complex(x[i], 0)
		}
		want := FFT(cx)
		rp := NewRealPlan(n)
		spec := make([]complex128, rp.SpectrumLen())
		rp.Forward(spec, x)
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(spec[k] - want[k]); d > 1e-9*float64(n) {
				t.Errorf("n=%d bin %d differs by %g", n, k, d)
			}
		}
	}
}

func TestRealPlanRoundTrip(t *testing.T) {
	for _, n := range []int{2, 8, 1024, 1 << 15} {
		r := rand.New(rand.NewSource(int64(n) + 7))
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		rp := NewRealPlan(n)
		spec := make([]complex128, rp.SpectrumLen())
		rp.Forward(spec, x)
		back := make([]float64, n)
		rp.Inverse(back, spec)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d sample %d: %g vs %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestRealPlanHermitianBins(t *testing.T) {
	n := 64
	r := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	rp := NewRealPlan(n)
	spec := make([]complex128, rp.SpectrumLen())
	rp.Forward(spec, x)
	if imag(spec[0]) != 0 || imag(spec[n/2]) != 0 {
		t.Fatalf("DC/Nyquist bins must be real: %v %v", spec[0], spec[n/2])
	}
}

func TestEmptyInputs(t *testing.T) {
	if out := FFT(nil); len(out) != 0 {
		t.Fatal("FFT(nil) should be empty")
	}
	if out := IFFT(nil); len(out) != 0 {
		t.Fatal("IFFT(nil) should be empty")
	}
}

func BenchmarkForward1M(b *testing.B) {
	n := 1 << 20
	p := NewPlan(n)
	x := randComplex(n, 1)
	dst := make([]complex128, n)
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, x)
	}
}

func BenchmarkRealForward1M(b *testing.B) {
	n := 1 << 20
	rp := NewRealPlan(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%100) * 0.01
	}
	spec := make([]complex128, rp.SpectrumLen())
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.Forward(spec, x)
	}
}

func BenchmarkBluestein1000(b *testing.B) {
	x := randComplex(1000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

package cfft

import (
	"math"

	"fftgrad/internal/scratch"
)

// DCTPlan computes the type-II discrete cosine transform (and its
// inverse, DCT-III) of power-of-two lengths via a mirrored 2n-point real
// FFT. The DCT is the natural ablation partner for the paper's FFT
// sparsifier: its coefficients are purely real — one value per kept bin
// instead of a (re, im) pair — and it avoids the wrap-around
// discontinuity the FFT's implicit periodicity imposes on a gradient
// signal, so it compacts energy at least as well on non-periodic data.
type DCTPlan struct {
	n  int
	rp *RealPlan // length 2n
	// tw[k] = exp(-iπk/(2n)), the post-FFT rotation of the mirror trick
	tw []complex128
}

// NewDCTPlan creates a DCT plan for length n, a power of two >= 2.
func NewDCTPlan(n int) *DCTPlan {
	if !IsPow2(n) || n < 2 {
		panic("cfft: DCT length must be a power of two >= 2")
	}
	p := &DCTPlan{n: n, rp: NewRealPlan(2 * n), tw: make([]complex128, n)}
	for k := 0; k < n; k++ {
		ang := -math.Pi * float64(k) / float64(2*n)
		p.tw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return p
}

// N returns the transform length.
func (p *DCTPlan) N() int { return p.n }

// Forward computes the unnormalized DCT-II:
//
//	dst[k] = Σ_j src[j] · cos(π(2j+1)k / 2n)
//
// dst and src must both have length n.
func (p *DCTPlan) Forward(dst, src []float64) {
	n := p.n
	if len(dst) != n || len(src) != n {
		panic("cfft: bad DCT forward lengths")
	}
	// Even-symmetric extension: y = [x0..x_{n-1}, x_{n-1}..x0].
	yb := scratch.Float64s(2 * n)
	specb := scratch.Complex128s(p.rp.SpectrumLen())
	defer scratch.PutFloat64s(yb)
	defer scratch.PutComplex128s(specb)
	y, spec := *yb, *specb
	copy(y, src)
	for j := 0; j < n; j++ {
		y[2*n-1-j] = src[j]
	}
	p.rp.Forward(spec, y)
	// Y[k] = e^{iπk/2n} · 2·C[k]  ⇒  C[k] = Re(Y[k]·e^{-iπk/2n}) / 2.
	for k := 0; k < n; k++ {
		dst[k] = real(spec[k]*p.tw[k]) / 2
	}
}

// Inverse computes the normalized inverse (DCT-III scaled so that
// Inverse(Forward(x)) == x up to round-off). dst and src must both have
// length n; src is not modified.
func (p *DCTPlan) Inverse(dst, src []float64) {
	n := p.n
	if len(dst) != n || len(src) != n {
		panic("cfft: bad DCT inverse lengths")
	}
	// Rebuild the half spectrum of the mirrored signal and invert it.
	specb := scratch.Complex128s(p.rp.SpectrumLen())
	yb := scratch.Float64s(2 * n)
	defer scratch.PutComplex128s(specb)
	defer scratch.PutFloat64s(yb)
	spec, y := *specb, *yb
	for k := 0; k < n; k++ {
		// Y[k] = 2·C[k]·e^{iπk/2n} = 2·C[k]·conj(tw[k])
		c := p.tw[k]
		spec[k] = complex(2*src[k], 0) * complex(real(c), -imag(c))
	}
	spec[n] = 0 // the k=n bin of an even-symmetric signal is always zero
	spec[0] = complex(real(spec[0]), 0)
	p.rp.Inverse(y, spec)
	copy(dst, y[:n])
}

package cfft

import (
	"math"
	"math/rand"
	"testing"
)

// naiveDCT2 is the O(n²) DCT-II reference.
func naiveDCT2(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var acc float64
		for j := 0; j < n; j++ {
			acc += x[j] * math.Cos(math.Pi*float64(2*j+1)*float64(k)/float64(2*n))
		}
		out[k] = acc
	}
	return out
}

func TestDCTMatchesNaive(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64, 256} {
		r := rand.New(rand.NewSource(int64(n)))
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		want := naiveDCT2(x)
		got := make([]float64, n)
		NewDCTPlan(n).Forward(got, x)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: %g want %g", n, k, got[k], want[k])
			}
		}
	}
}

func TestDCTRoundTrip(t *testing.T) {
	for _, n := range []int{2, 16, 1024, 1 << 14} {
		r := rand.New(rand.NewSource(int64(n) + 1))
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		p := NewDCTPlan(n)
		c := make([]float64, n)
		p.Forward(c, x)
		back := make([]float64, n)
		p.Inverse(back, c)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d sample %d: %g vs %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestDCTConstantSignal(t *testing.T) {
	// DCT-II of a constant c: bin 0 = n·c, all other bins 0.
	n := 32
	x := make([]float64, n)
	for i := range x {
		x[i] = 2.5
	}
	c := make([]float64, n)
	NewDCTPlan(n).Forward(c, x)
	if math.Abs(c[0]-float64(n)*2.5) > 1e-9 {
		t.Fatalf("DC bin %g want %g", c[0], float64(n)*2.5)
	}
	for k := 1; k < n; k++ {
		if math.Abs(c[k]) > 1e-9 {
			t.Fatalf("bin %d should be 0, got %g", k, c[k])
		}
	}
}

// Energy compaction: on a smooth ramp (no periodicity), the DCT must put
// more energy into its lowest bins than the FFT does — the reason the
// DCT variant is a meaningful ablation for gradient signals.
func TestDCTCompactsRampBetterThanFFT(t *testing.T) {
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n)
	}
	c := make([]float64, n)
	NewDCTPlan(n).Forward(c, x)
	var dctTotal, dctLow float64
	for k, v := range c {
		e := v * v
		// Parseval weight: the DCT basis is not orthonormal as computed,
		// but the low-bin *fraction* comparison is scale-free.
		dctTotal += e
		if k < n/16 {
			dctLow += e
		}
	}
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	X := FFT(cx)
	var fftTotal, fftLow float64
	for k := range X {
		e := real(X[k])*real(X[k]) + imag(X[k])*imag(X[k])
		fftTotal += e
		// low bins of the FFT wrap: 0..n/32 and the mirrored tail.
		if k < n/32 || k > n-n/32 {
			fftLow += e
		}
	}
	if dctLow/dctTotal <= fftLow/fftTotal {
		t.Fatalf("DCT low-bin energy share %.4f not above FFT %.4f on a ramp",
			dctLow/dctTotal, fftLow/fftTotal)
	}
}

func TestDCTPanics(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d should panic", n)
				}
			}()
			NewDCTPlan(n)
		}()
	}
}

func BenchmarkDCTForward64K(b *testing.B) {
	n := 1 << 16
	p := NewDCTPlan(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 97)
	}
	dst := make([]float64, n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, x)
	}
}

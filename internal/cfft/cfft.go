// Package cfft implements fast Fourier transforms from scratch: an
// iterative radix-2 Cooley-Tukey transform for power-of-two lengths, a
// Bluestein chirp-z transform for arbitrary lengths, and a real-input
// transform that maps a length-n real signal onto a length-n/2 complex
// transform.
//
// This is the substrate for the paper's FFT-based gradient sparsification
// (Sec. 3.1.1): the gradient is linearized into a 1-D signal, transformed,
// thresholded in the frequency domain, and inverse-transformed on the
// receiver. The paper uses cuFFT; here the same transforms run on the CPU
// in float64 so the sparsification error measured by the experiments is
// dominated by the *dropped coefficients*, not by transform round-off.
package cfft

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"fftgrad/internal/parallel"
	"fftgrad/internal/scratch"
)

// Plan holds the precomputed state (per-stage twiddle tables and the
// bit-reversal permutation) for transforms of one fixed power-of-two
// length. Plans are safe for concurrent use by multiple goroutines once
// created.
//
// The butterfly network is fused radix-4: each pass combines two radix-2
// stages, so a length-n transform makes ~log4(n) passes over the data
// with 3 complex multiplies per 4 outputs (radix-2 pays 4). Fusing two
// radix-2 stages keeps the plain radix-2 bit-reversal input ordering, so
// no digit-reversal machinery is needed; when log2(n) is odd a single
// multiplication-free size-2 stage runs first. Stages execute in a
// depth-first recursion over sub-blocks, so every block at or below the
// leaf size goes through all of its stages while cache-resident instead
// of streaming the whole array once per stage.
type Plan struct {
	n    int
	logN int
	leaf int     // largest block transformed iteratively (cache-resident)
	rev  []int32 // bit-reversal permutation
	// tw[s] is the twiddle table for the fused stage of block size 1<<s:
	// interleaved triples (W^k, W^2k, W^3k) with W = exp(-2πi/m), k in
	// [0, m/4) — unit stride in the butterfly loop, forward sign (the
	// inverse loop conjugates in registers). The size-4 stage is
	// multiplication-free and has no table.
	tw [][]complex128
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n must be > 0).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// PaddedLen returns the transform length the gradient pipeline uses for an
// n-element signal: the smallest power of two >= max(n, 2). This is the
// single source of truth shared by the sparsifiers and the compressor wire
// formats (which validate header lengths against it).
func PaddedLen(n int) int {
	if n < 2 {
		return 2
	}
	return NextPow2(n)
}

// planCaches hold one process-wide plan per power-of-two length, indexed
// by log2(n). Plans are immutable once built, so a lock-free
// publish-once-per-slot cache lets every FFT()/IFFT() call and every
// sparsifier share twiddle tables and bit-reversal permutations instead of
// rebuilding them per call.
var (
	planCache     [bits.UintSize]atomic.Pointer[Plan]
	realPlanCache [bits.UintSize]atomic.Pointer[RealPlan]
	dctPlanCache  [bits.UintSize]atomic.Pointer[DCTPlan]
)

// PlanFor returns the shared plan for power-of-two length n, building and
// caching it on first use. Safe for concurrent use; the steady state is
// one atomic load.
func PlanFor(n int) *Plan {
	i := cacheSlot(n)
	if p := planCache[i].Load(); p != nil {
		return p
	}
	p := NewPlan(n)
	if planCache[i].CompareAndSwap(nil, p) {
		return p
	}
	return planCache[i].Load()
}

// RealPlanFor returns the shared real-transform plan for power-of-two
// length n >= 2, building and caching it on first use.
func RealPlanFor(n int) *RealPlan {
	i := cacheSlot(n)
	if p := realPlanCache[i].Load(); p != nil {
		return p
	}
	p := NewRealPlan(n)
	if realPlanCache[i].CompareAndSwap(nil, p) {
		return p
	}
	return realPlanCache[i].Load()
}

// DCTPlanFor returns the shared DCT plan for power-of-two length n >= 2,
// building and caching it on first use.
func DCTPlanFor(n int) *DCTPlan {
	i := cacheSlot(n)
	if p := dctPlanCache[i].Load(); p != nil {
		return p
	}
	p := NewDCTPlan(n)
	if dctPlanCache[i].CompareAndSwap(nil, p) {
		return p
	}
	return dctPlanCache[i].Load()
}

// cacheSlot maps a power-of-two length to its cache index.
func cacheSlot(n int) int {
	if !IsPow2(n) {
		panic("cfft: plan length must be a power of two")
	}
	return bits.TrailingZeros(uint(n))
}

// leafLogEven/leafLogOdd pick the iterative-leaf block size for the
// depth-first recursion: 2^12 complex128 = 64 KiB (or 128 KiB for odd
// log2(n), keeping the same parity so the recursion bottoms out exactly
// at the leaf) — small enough to stay L2-resident through all of its
// stages on any modern core.
const (
	leafLogEven = 12
	leafLogOdd  = 13
)

// NewPlan creates a transform plan for length n, which must be a positive
// power of two.
func NewPlan(n int) *Plan {
	if !IsPow2(n) {
		panic("cfft: plan length must be a power of two")
	}
	p := &Plan{
		n:    n,
		logN: bits.TrailingZeros(uint(n)),
		rev:  make([]int32, n),
		tw:   make([][]complex128, bits.TrailingZeros(uint(n))+1),
	}
	leafLog := leafLogEven
	if p.logN&1 == 1 {
		leafLog = leafLogOdd
	}
	if leafLog > p.logN {
		leafLog = p.logN
	}
	p.leaf = 1 << leafLog
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse(uint(i)) >> (bits.UintSize - p.logN))
	}
	// Fused-stage twiddle tables. The first fused stage is size 4 when
	// log2(n) is even (twiddle-free) and size 8 after the size-2 opener
	// when odd; every subsequent stage quadruples.
	first := 16
	if p.logN&1 == 1 {
		first = 8
	}
	for m := first; m <= n; m <<= 2 {
		q := m >> 2
		t := make([]complex128, 3*q)
		for k := 0; k < q; k++ {
			for e := 1; e <= 3; e++ {
				ang := -2 * math.Pi * float64(e*k) / float64(m)
				t[3*k+e-1] = complex(math.Cos(ang), math.Sin(ang))
			}
		}
		p.tw[bits.TrailingZeros(uint(m))] = t
	}
	return p
}

// N returns the transform length of the plan.
func (p *Plan) N() int { return p.n }

// Forward computes the unnormalized forward DFT of src into dst:
//
//	dst[k] = Σ_j src[j] · exp(-2πi jk / n)
//
// dst and src must both have length n; they may be the same slice.
func (p *Plan) Forward(dst, src []complex128) {
	p.transform(dst, src, false)
}

// Inverse computes the inverse DFT of src into dst, normalized by 1/n, so
// that Inverse(Forward(x)) == x up to round-off. dst and src must both have
// length n; they may be the same slice. The 1/n scaling is folded into the
// bit-reversal reorder pass, so no separate scaling sweep runs.
func (p *Plan) Inverse(dst, src []complex128) {
	p.transform(dst, src, true)
}

// fftParMin is the element count above which a transform considers
// dispatching its block recursion to the worker pool.
const fftParMin = 1 << 16

// transform reorders src into dst (folding the inverse 1/n normalization
// into the same pass) and runs the fused radix-4 stage network in place.
func (p *Plan) transform(dst, src []complex128, inverse bool) {
	n := p.n
	if len(dst) != n || len(src) != n {
		panic("cfft: slice length does not match plan")
	}
	p.reorder(dst, src, inverse)
	if n >= fftParMin && parallel.Workers() > 1 {
		p.stagesParallel(dst, inverse)
	} else {
		p.recurse(dst, inverse)
	}
}

// reorder applies the bit-reversal permutation from src to dst, swapping
// in place when they alias, and multiplies by 1/n on the way when inverse
// (linearity lets the normalization ride the permutation pass for free).
func (p *Plan) reorder(dst, src []complex128, inverse bool) {
	n := p.n
	rev := p.rev
	if &dst[0] == &src[0] {
		if inverse {
			s := complex(1/float64(n), 0)
			for i := 0; i < n; i++ {
				j := int(rev[i])
				if i < j {
					dst[i], dst[j] = dst[j]*s, dst[i]*s
				} else if i == j {
					dst[i] *= s
				}
			}
		} else {
			for i := 0; i < n; i++ {
				j := int(rev[i])
				if i < j {
					dst[i], dst[j] = dst[j], dst[i]
				}
			}
		}
		return
	}
	if inverse {
		s := complex(1/float64(n), 0)
		for i := 0; i < n; i++ {
			dst[i] = src[rev[i]] * s
		}
		return
	}
	for i := 0; i < n; i++ {
		dst[i] = src[rev[i]]
	}
}

// recurse runs the stage network over one bit-reversed block depth-first:
// all four quarter-blocks are fully transformed before the combining
// stage touches the block, so blocks at or below the leaf size complete
// every stage while still cache-resident. Iterative stage-at-a-time
// execution would stream the full array from memory once per stage;
// depth-first execution streams it roughly once per recursion level.
func (p *Plan) recurse(x []complex128, inverse bool) {
	m := len(x)
	if m <= p.leaf {
		p.leafStages(x, inverse)
		return
	}
	q := m >> 2
	p.recurse(x[:q], inverse)
	p.recurse(x[q:2*q], inverse)
	p.recurse(x[2*q:3*q], inverse)
	p.recurse(x[3*q:], inverse)
	radix4Range(x, p.tw[bits.TrailingZeros(uint(m))], 0, q, inverse)
}

// leafStages transforms one cache-resident block iteratively: the opening
// multiplication-free stage (size 2 for odd log, size 4 for even), then
// fused radix-4 stages up to the block size.
func (p *Plan) leafStages(x []complex128, inverse bool) {
	m := len(x)
	if m == 1 {
		return
	}
	lg := bits.TrailingZeros(uint(m))
	s := 16
	if lg&1 == 1 {
		stage2(x)
		s = 8
	} else {
		stage4(x, inverse)
	}
	for ; s <= m; s <<= 2 {
		tw := p.tw[bits.TrailingZeros(uint(s))]
		q := s >> 2
		for b := 0; b < m; b += s {
			radix4Range(x[b:b+s], tw, 0, q, inverse)
		}
	}
}

// stage2 applies the size-2 butterfly across the whole block (the opening
// stage when log2(n) is odd; direction-independent and twiddle-free).
func stage2(x []complex128) {
	for j := 0; j+1 < len(x); j += 2 {
		a, b := x[j], x[j+1]
		x[j], x[j+1] = a+b, a-b
	}
}

// stage4 applies the twiddle-free size-4 fused butterfly across the whole
// block (the opening stage when log2(n) is even: all twiddles are 1).
func stage4(x []complex128, inverse bool) {
	for j := 0; j+3 < len(x); j += 4 {
		x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3]
		s0, s1 := x0+x1, x0-x1
		s2, s3 := x2+x3, x2-x3
		// ±i·s3 written out as a rotation: i·(a+bi) = -b + ai.
		r := complex(-imag(s3), real(s3))
		if inverse {
			x[j], x[j+1], x[j+2], x[j+3] = s0+s2, s1+r, s0-s2, s1-r
		} else {
			x[j], x[j+1], x[j+2], x[j+3] = s0+s2, s1-r, s0-s2, s1+r
		}
	}
}

// radix4Range applies the fused radix-4 butterfly to rows k in [lo, hi)
// of one block. tw holds interleaved forward triples (W^k, W^2k, W^3k);
// the inverse direction conjugates them in registers and swaps the ∓i
// rotation, which is exactly the conjugate network. Fusing two radix-2
// stages costs 3 complex multiplies per 4 outputs instead of 4 and makes
// one memory pass instead of two.
func radix4Range(x, tw []complex128, lo, hi int, inverse bool) {
	q := len(x) >> 2
	a := x[:q:q]
	b := x[q : 2*q : 2*q]
	c := x[2*q : 3*q : 3*q]
	d := x[3*q:]
	if inverse {
		for k := lo; k < hi; k++ {
			t := tw[3*k : 3*k+3]
			w1 := complex(real(t[0]), -imag(t[0]))
			w2 := complex(real(t[1]), -imag(t[1]))
			w3 := complex(real(t[2]), -imag(t[2]))
			u := b[k] * w2
			v := c[k] * w1
			z := d[k] * w3
			s0, s1 := a[k]+u, a[k]-u
			s2, s3 := v+z, v-z
			r := complex(-imag(s3), real(s3))
			a[k], c[k] = s0+s2, s0-s2
			b[k], d[k] = s1+r, s1-r
		}
		return
	}
	for k := lo; k < hi; k++ {
		t := tw[3*k : 3*k+3]
		u := b[k] * t[1]
		v := c[k] * t[0]
		z := d[k] * t[2]
		s0, s1 := a[k]+u, a[k]-u
		s2, s3 := v+z, v-z
		r := complex(-imag(s3), real(s3))
		a[k], c[k] = s0+s2, s0-s2
		b[k], d[k] = s1-r, s1+r
	}
}

// parCtx carries a parallel sub-transform dispatch through ForGrain1 by
// value, so the body captures nothing.
type parCtx struct {
	p       *Plan
	x       []complex128
	size    int
	inverse bool
}

// stageCtx carries one combining stage's k-range dispatch.
type stageCtx struct {
	x, tw   []complex128
	inverse bool
}

// stagesParallel splits the array into 4^d independent sub-blocks, runs
// each through the serial depth-first recursion on the worker pool, then
// executes the remaining d combining stages with their butterfly rows
// partitioned across workers (rows of one stage are independent).
func (p *Plan) stagesParallel(x []complex128, inverse bool) {
	n := len(x)
	blocks, size := 1, n
	for size > p.leaf && size >= fftParMin && blocks < parallel.Workers() {
		blocks <<= 2
		size >>= 2
	}
	parallel.ForGrain1(blocks, 1, parCtx{p, x, size, inverse},
		func(c parCtx, lo, hi int) {
			for b := lo; b < hi; b++ {
				c.p.recurse(c.x[b*c.size:(b+1)*c.size], c.inverse)
			}
		})
	for m := size << 2; m <= n; m <<= 2 {
		tw := p.tw[bits.TrailingZeros(uint(m))]
		q := m >> 2
		for b := 0; b < n; b += m {
			parallel.ForGrain1(q, 1<<13, stageCtx{x[b : b+m], tw, inverse},
				func(c stageCtx, lo, hi int) {
					radix4Range(c.x, c.tw, lo, hi, c.inverse)
				})
		}
	}
}

// FFT computes the unnormalized forward DFT of x, of any positive length,
// returning a new slice. Power-of-two lengths use the radix-2 path;
// other lengths use Bluestein's algorithm. Plans and chirp tables come
// from the process-wide caches, so repeated calls of one length only pay
// for the transform arithmetic plus the returned slice.
func FFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	if IsPow2(n) {
		PlanFor(n).Forward(out, x)
		return out
	}
	bluestein(out, x, false)
	return out
}

// IFFT computes the normalized (1/n) inverse DFT of x, of any positive
// length, returning a new slice.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	if IsPow2(n) {
		PlanFor(n).Inverse(out, x)
		return out
	}
	bluestein(out, x, true)
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// bluePlan is the cached per-(length, direction) state of Bluestein's
// chirp-z transform: the chirp vector and the forward transform of the
// mirrored conjugate chirp (the convolution kernel), which never change
// for a given length. Caching fb also removes one of the two forward
// transforms the naive formulation pays per call.
type bluePlan struct {
	m     int          // padded convolution length, NextPow2(2n-1)
	plan  *Plan        // shared plan of length m
	chirp []complex128 // chirp[j] = exp(sign·πi j² / n), len n
	fb    []complex128 // Forward(b) where b is the mirrored conj chirp, len m
}

// blueCache maps (n<<1 | inverseBit) to its *bluePlan.
var blueCache sync.Map

// bluePlanFor returns the cached chirp state for length n in the given
// direction, building it on first use.
func bluePlanFor(n int, inverse bool) *bluePlan {
	key := n<<1 | btoi(inverse)
	if v, ok := blueCache.Load(key); ok {
		return v.(*bluePlan)
	}
	m := NextPow2(2*n - 1)
	bp := &bluePlan{m: m, plan: PlanFor(m), chirp: make([]complex128, n)}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for j := 0; j < n; j++ {
		// j² mod 2n avoids precision loss for large j.
		jj := (int64(j) * int64(j)) % int64(2*n)
		ang := sign * math.Pi * float64(jj) / float64(n)
		bp.chirp[j] = complex(math.Cos(ang), math.Sin(ang))
	}
	b := make([]complex128, m)
	for j := 0; j < n; j++ {
		c := complex(real(bp.chirp[j]), -imag(bp.chirp[j])) // conj
		b[j] = c
		if j != 0 {
			b[m-j] = c
		}
	}
	bp.fb = make([]complex128, m)
	bp.plan.Forward(bp.fb, b)
	actual, _ := blueCache.LoadOrStore(key, bp)
	return actual.(*bluePlan)
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// bluestein computes the (unnormalized) DFT of arbitrary length via the
// chirp-z transform: x[j]·a[j] convolved with b, where a and b are chirps.
// The chirp and the kernel spectrum are cached per length; the two work
// buffers are borrowed from the scratch pools.
func bluestein(dst, src []complex128, inverse bool) {
	n := len(src)
	bp := bluePlanFor(n, inverse)
	m := bp.m

	fab := scratch.Complex128s(m)
	ab := scratch.Complex128s(m)
	defer scratch.PutComplex128s(fab)
	defer scratch.PutComplex128s(ab)
	a, fa := *ab, *fab

	for j := 0; j < n; j++ {
		a[j] = src[j] * bp.chirp[j]
	}
	for j := n; j < m; j++ {
		a[j] = 0
	}
	bp.plan.Forward(fa, a)
	for i := 0; i < m; i++ {
		fa[i] *= bp.fb[i]
	}
	bp.plan.Inverse(fa, fa)
	for k := 0; k < n; k++ {
		dst[k] = fa[k] * bp.chirp[k]
	}
}

// RealPlan performs forward/inverse transforms of real-valued signals of a
// fixed even power-of-two length n, producing the n/2+1 non-redundant
// spectrum bins. It uses the standard trick of transforming the length-n
// real signal as a length-n/2 complex signal followed by an untangling
// pass, halving the transform work relative to a padded complex FFT.
type RealPlan struct {
	n    int
	half *Plan
	// untw[k] = exp(-2πi k / n) for the untangle pass, k in [0, n/2]
	untw []complex128
}

// NewRealPlan creates a real-transform plan. n must be a power of two >= 2.
func NewRealPlan(n int) *RealPlan {
	if !IsPow2(n) || n < 2 {
		panic("cfft: real plan length must be a power of two >= 2")
	}
	rp := &RealPlan{n: n, half: NewPlan(n / 2), untw: make([]complex128, n/2+1)}
	for k := 0; k <= n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		rp.untw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return rp
}

// N returns the real signal length.
func (rp *RealPlan) N() int { return rp.n }

// SpectrumLen returns the number of non-redundant complex bins, n/2+1.
func (rp *RealPlan) SpectrumLen() int { return rp.n/2 + 1 }

// Forward computes the non-redundant half spectrum of the real signal x.
// spec must have length n/2+1. spec[0] and spec[n/2] have zero imaginary
// parts (DC and Nyquist bins).
func (rp *RealPlan) Forward(spec []complex128, x []float64) {
	n := rp.n
	if len(x) != n || len(spec) != n/2+1 {
		panic("cfft: bad real forward lengths")
	}
	h := n / 2
	zb := scratch.Complex128s(h)
	defer scratch.PutComplex128s(zb)
	z := *zb
	for j := 0; j < h; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	rp.half.Forward(z, z)

	// Untangle: X[k] = (Z[k]+conj(Z[h-k]))/2 - i·w^k·(Z[k]-conj(Z[h-k]))/2
	for k := 0; k <= h; k++ {
		var zk, zmk complex128
		if k == h {
			zk = z[0]
		} else {
			zk = z[k]
		}
		if k == 0 {
			zmk = z[0]
		} else {
			zmk = z[h-k]
		}
		zmk = complex(real(zmk), -imag(zmk))
		even := (zk + zmk) * 0.5
		odd := (zk - zmk) * complex(0, -0.5)
		spec[k] = even + rp.untw[k]*odd
	}
	// Enforce exactly-real DC and Nyquist bins.
	spec[0] = complex(real(spec[0]), 0)
	spec[h] = complex(real(spec[h]), 0)
}

// Inverse reconstructs the real signal from its half spectrum (normalized:
// Inverse(Forward(x)) == x up to round-off). x must have length n, spec
// length n/2+1. spec is not modified.
func (rp *RealPlan) Inverse(x []float64, spec []complex128) {
	n := rp.n
	if len(x) != n || len(spec) != n/2+1 {
		panic("cfft: bad real inverse lengths")
	}
	h := n / 2
	zb := scratch.Complex128s(h)
	defer scratch.PutComplex128s(zb)
	z := *zb
	// Retangle: Z[k] = E[k] + i·conj(w^k)·O[k] where E,O derive from spec.
	for k := 0; k < h; k++ {
		xk := spec[k]
		xmk := spec[h-k]
		xmk = complex(real(xmk), -imag(xmk))
		even := (xk + xmk) * 0.5
		odd := (xk - xmk) * 0.5
		// invert the untangle rotation
		w := rp.untw[k]
		wc := complex(real(w), -imag(w))
		z[k] = even + complex(0, 1)*wc*odd
	}
	rp.half.Inverse(z, z)
	for j := 0; j < h; j++ {
		x[2*j] = real(z[j])
		x[2*j+1] = imag(z[j])
	}
}

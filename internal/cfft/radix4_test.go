package cfft

import (
	"math"
	"testing"

	"fftgrad/internal/parallel"
)

// radix2DFT is the pre-radix-4 reference network: plain iterative radix-2
// Cooley-Tukey over bit-reversed input, kept here as an independent check
// that the fused radix-4 stages compute the same transform.
func radix2DFT(p *Plan, x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = x[p.rev[i]]
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				ang := -2 * math.Pi * float64(k) / float64(size)
				if inverse {
					ang = -ang
				}
				w := complex(math.Cos(ang), math.Sin(ang))
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
			}
		}
	}
	if inverse {
		s := complex(1/float64(n), 0)
		for i := range out {
			out[i] *= s
		}
	}
	return out
}

// TestRadix4MatchesNaive checks the fused radix-4 network against the
// O(n²) DFT across every power-of-two size through both leaf parities.
func TestRadix4MatchesNaive(t *testing.T) {
	for n := 1; n <= 4096; n <<= 1 {
		x := randComplex(n, int64(n))
		p := NewPlan(n)
		for _, inverse := range []bool{false, true} {
			got := make([]complex128, n)
			if inverse {
				p.Inverse(got, x)
			} else {
				p.Forward(got, x)
			}
			want := naiveDFT(x, inverse)
			tol := 1e-9 * float64(n)
			if d := maxAbsDiff(got, want); d > tol {
				t.Errorf("n=%d inverse=%v: max diff %g > %g", n, inverse, d, tol)
			}
		}
	}
}

// TestRadix4MatchesRadix2 checks the fused network against the radix-2
// reference at sizes spanning the leaf boundary for both parities, where
// the iterative-leaf/recursive-combine split changes shape.
func TestRadix4MatchesRadix2(t *testing.T) {
	for _, n := range []int{1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15} {
		x := randComplex(n, int64(n)+7)
		p := PlanFor(n)
		for _, inverse := range []bool{false, true} {
			got := make([]complex128, n)
			if inverse {
				p.Inverse(got, x)
			} else {
				p.Forward(got, x)
			}
			want := radix2DFT(p, x, inverse)
			// The two networks associate sums differently; round-off is
			// O(log n · eps) relative to the signal energy.
			tol := 1e-11 * float64(n)
			if d := maxAbsDiff(got, want); d > tol {
				t.Errorf("n=%d inverse=%v: max diff %g > %g", n, inverse, d, tol)
			}
		}
	}
}

// TestParallelMatchesSerial pins that the pool-partitioned transform is
// bit-identical to the serial one: chunking only changes which worker
// executes a butterfly row, never the arithmetic or its order within a
// row, so even floating-point results must match exactly.
func TestParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1 << 16, 1 << 17} {
		x := randComplex(n, int64(n)+99)
		p := PlanFor(n)
		for _, inverse := range []bool{false, true} {
			serial := make([]complex128, n)
			par := make([]complex128, n)

			restore := parallel.SetWorkers(1)
			if inverse {
				p.Inverse(serial, x)
			} else {
				p.Forward(serial, x)
			}
			parallel.SetWorkers(4)
			if inverse {
				p.Inverse(par, x)
			} else {
				p.Forward(par, x)
			}
			parallel.SetWorkers(restore)

			for i := range serial {
				if serial[i] != par[i] {
					t.Fatalf("n=%d inverse=%v: index %d serial=%v parallel=%v", n, inverse, i, serial[i], par[i])
				}
			}
		}
	}
}

// TestInverseScaleFolding checks the in-place aliased inverse (whose 1/n
// normalization rides the swap pass) against the out-of-place one.
func TestInverseScaleFolding(t *testing.T) {
	for _, n := range []int{8, 64, 1 << 13} {
		x := randComplex(n, int64(n)+3)
		p := PlanFor(n)
		out := make([]complex128, n)
		p.Inverse(out, x)
		inPlace := append([]complex128(nil), x...)
		p.Inverse(inPlace, inPlace)
		if d := maxAbsDiff(out, inPlace); d != 0 {
			t.Errorf("n=%d: aliased inverse differs from out-of-place by %g", n, d)
		}
	}
}

// Package stats provides the measurement and presentation utilities the
// experiment harness uses: fixed-bin histograms (the gradient-distribution
// figures), empirical CDFs (the reconstruction-error figure), scalar
// summaries, and plain-text table/bar-chart rendering so every experiment
// can print the series its paper figure plots.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-range, equal-width histogram.
type Histogram struct {
	Min, Max  float64
	Counts    []int
	Total     int
	Underflow int
	Overflow  int
}

// NewHistogram creates a histogram of bins equal-width buckets on
// [min, max).
func NewHistogram(min, max float64, bins int) *Histogram {
	if !(min < max) || bins < 1 {
		panic(fmt.Sprintf("stats: bad histogram spec [%g,%g) bins=%d", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.Total++
	switch {
	case math.IsNaN(v):
		h.Overflow++ // count NaN as out-of-range rather than dropping it
	case v < h.Min:
		h.Underflow++
	case v >= h.Max:
		h.Overflow++
	default:
		i := int((v - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard the v==Max float edge
			i--
		}
		h.Counts[i]++
	}
}

// AddSlice records every element of x.
func (h *Histogram) AddSlice(x []float32) {
	for _, v := range x {
		h.Add(float64(v))
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Density returns the fraction of in-range samples in bin i.
func (h *Histogram) Density(i int) float64 {
	in := h.Total - h.Underflow - h.Overflow
	if in == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(in)
}

// Render draws the histogram as ASCII rows of width-proportional bars.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%+.4f | %s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from values (copied and sorted).
func NewECDF(values []float64) *ECDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]).
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(q * float64(len(e.sorted)))
	if i >= len(e.sorted) {
		i = len(e.sorted) - 1
	}
	return e.sorted[i]
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// RelL2 returns ‖a−b‖₂ / ‖a‖₂ (0 when a is all-zero and b==a).
func RelL2(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("stats: length mismatch")
	}
	var num, den float64
	for i := range a {
		d := float64(a[i] - b[i])
		num += d * d
		den += float64(a[i]) * float64(a[i])
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// AbsErrors returns |a_i − b_i| for every i, the per-element
// reconstruction errors Fig. 15e plots as a cumulative distribution.
func AbsErrors(a, b []float32) []float64 {
	if len(a) != len(b) {
		panic("stats: length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = math.Abs(float64(a[i] - b[i]))
	}
	return out
}

// MeanStd returns the sample mean and (population) standard deviation.
func MeanStd(x []float32) (mean, std float64) {
	if len(x) == 0 {
		return 0, 0
	}
	for _, v := range x {
		mean += float64(v)
	}
	mean /= float64(len(x))
	for _, v := range x {
		d := float64(v) - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(x)))
	return mean, std
}

// Table renders aligned plain-text tables for experiment reports.
type Table struct {
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v (floats as %.4g).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named (x, y) sequence for figure-style output.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// RenderSeries prints several series as a column-aligned listing keyed by
// the x values of the first series.
func RenderSeries(series ...Series) string {
	if len(series) == 0 {
		return ""
	}
	t := &Table{Headers: append([]string{"x"}, names(series)...)}
	for i := range series[0].X {
		row := make([]interface{}, 0, len(series)+1)
		row = append(row, series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, s.Y[i])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

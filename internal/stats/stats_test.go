package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(-1, 1, 4)
	for _, v := range []float64{-0.9, -0.4, 0.1, 0.6, 0.99} {
		h.Add(v)
	}
	want := []int{1, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bin %d count %d want %d", i, c, want[i])
		}
	}
	if h.Total != 5 {
		t.Fatalf("total %d", h.Total)
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-5)
	h.Add(5)
	h.Add(1) // max is exclusive
	h.Add(math.NaN())
	if h.Underflow != 1 || h.Overflow != 3 {
		t.Fatalf("under=%d over=%d", h.Underflow, h.Overflow)
	}
}

func TestHistogramDensitySums(t *testing.T) {
	h := NewHistogram(-3, 3, 30)
	x := make([]float32, 1000)
	for i := range x {
		x[i] = float32(math.Sin(float64(i))) // in [-1,1]
	}
	h.AddSlice(x)
	var sum float64
	for i := range h.Counts {
		sum += h.Density(i)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("densities sum to %g", sum)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if h.BinCenter(0) != 1 || h.BinCenter(4) != 9 {
		t.Fatalf("centers: %g %g", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	s := h.Render(10)
	if !strings.Contains(s, "#") || len(strings.Split(strings.TrimSpace(s), "\n")) != 2 {
		t.Fatalf("render output:\n%s", s)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := map[float64]float64{0.5: 0, 1: 0.25, 2.5: 0.5, 4: 1, 10: 1}
	for x, want := range cases {
		if got := e.At(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("At(%g)=%g want %g", x, got, want)
		}
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 4 {
		t.Errorf("extreme quantiles wrong")
	}
	if q := e.Quantile(0.5); q != 3 {
		t.Errorf("median %g", q)
	}
	if e.Len() != 4 {
		t.Errorf("len %d", e.Len())
	}
}

func TestECDFMonotone(t *testing.T) {
	e := NewECDF([]float64{5, 1, 3, 3, 2, 8})
	prev := -1.0
	for x := 0.0; x <= 10; x += 0.25 {
		v := e.At(x)
		if v < prev {
			t.Fatalf("ECDF not monotone at %g", x)
		}
		prev = v
	}
}

func TestRelL2(t *testing.T) {
	a := []float32{3, 4}
	b := []float32{3, 4}
	if RelL2(a, b) != 0 {
		t.Fatal("identical vectors must have 0 error")
	}
	c := []float32{0, 0}
	if got := RelL2(a, c); math.Abs(got-1) > 1e-12 {
		t.Fatalf("zero reconstruction: %g want 1", got)
	}
	if got := RelL2(c, c); got != 0 {
		t.Fatalf("zero/zero: %g", got)
	}
	if got := RelL2(c, a); !math.IsInf(got, 1) {
		t.Fatalf("nonzero error on zero reference: %g", got)
	}
}

func TestAbsErrors(t *testing.T) {
	got := AbsErrors([]float32{1, -2, 3}, []float32{0.5, -1, 3})
	want := []float64{0.5, 1, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("err[%d]=%g want %g", i, got[i], want[i])
		}
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float32{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-9 || math.Abs(s-2) > 1e-9 {
		t.Fatalf("mean %g std %g", m, s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty input should be 0,0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Headers: []string{"method", "ratio", "acc"}}
	tab.AddRow("fft", 21.3, 0.5661)
	tab.AddRow("topk", 6.67, float32(0.5507))
	s := tab.String()
	if !strings.Contains(s, "method") || !strings.Contains(s, "21.3") || !strings.Contains(s, "0.5507") {
		t.Fatalf("table output:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+rule+2 rows, got %d lines", len(lines))
	}
}

func TestRenderSeries(t *testing.T) {
	s := RenderSeries(
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
	)
	for _, want := range []string{"a", "b", "10", "40"} {
		if !strings.Contains(s, want) {
			t.Fatalf("series output missing %q:\n%s", want, s)
		}
	}
}

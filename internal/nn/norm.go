package nn

import (
	"fmt"
	"math"

	"fftgrad/internal/tensor"
)

// BatchNorm normalizes each channel of an NCHW tensor over (N, H, W) using
// batch statistics during training and tracked running statistics during
// evaluation (Ioffe & Szegedy 2015). ResNet-style models depend on it.
type BatchNorm struct {
	C       int
	Eps     float64
	Moment  float64 // running-stat update momentum (e.g. 0.9)
	Gamma   *Param
	Beta    *Param
	RunMean []float32
	RunVar  []float32

	// forward caches
	xhat    []float32
	std     []float32 // per-channel 1/sqrt(var+eps)
	inShape []int
}

// NewBatchNorm creates a batch-norm layer for c channels.
func NewBatchNorm(c int) *BatchNorm {
	bn := &BatchNorm{
		C: c, Eps: 1e-5, Moment: 0.9,
		Gamma:   newParam(fmt.Sprintf("bn%d.gamma", c), c),
		Beta:    newParam(fmt.Sprintf("bn%d.beta", c), c),
		RunMean: make([]float32, c),
		RunVar:  make([]float32, c),
	}
	for i := range bn.Gamma.Data {
		bn.Gamma.Data[i] = 1
		bn.RunVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm) Name() string { return fmt.Sprintf("batchnorm(%d)", bn.C) }

// Params implements Layer.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Forward implements Layer. x is [N,C,H,W].
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != bn.C {
		panic(fmt.Sprintf("nn: %s got %d channels", bn.Name(), c))
	}
	bn.inShape = append(bn.inShape[:0], x.Shape...)
	y := tensor.New(x.Shape...)
	if cap(bn.xhat) < x.Len() {
		bn.xhat = make([]float32, x.Len())
	}
	bn.xhat = bn.xhat[:x.Len()]
	if bn.std == nil {
		bn.std = make([]float32, c)
	}
	area := h * w
	cnt := float64(n * area)

	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if train {
			for s := 0; s < n; s++ {
				plane := x.Data[(s*c+ch)*area : (s*c+ch+1)*area]
				for _, v := range plane {
					mean += float64(v)
				}
			}
			mean /= cnt
			for s := 0; s < n; s++ {
				plane := x.Data[(s*c+ch)*area : (s*c+ch+1)*area]
				for _, v := range plane {
					d := float64(v) - mean
					variance += d * d
				}
			}
			variance /= cnt
			bn.RunMean[ch] = float32(bn.Moment*float64(bn.RunMean[ch]) + (1-bn.Moment)*mean)
			bn.RunVar[ch] = float32(bn.Moment*float64(bn.RunVar[ch]) + (1-bn.Moment)*variance)
		} else {
			mean = float64(bn.RunMean[ch])
			variance = float64(bn.RunVar[ch])
		}
		invStd := float32(1 / math.Sqrt(variance+bn.Eps))
		bn.std[ch] = invStd
		g, b := bn.Gamma.Data[ch], bn.Beta.Data[ch]
		m := float32(mean)
		for s := 0; s < n; s++ {
			base := (s*c + ch) * area
			for i := 0; i < area; i++ {
				xh := (x.Data[base+i] - m) * invStd
				bn.xhat[base+i] = xh
				y.Data[base+i] = g*xh + b
			}
		}
	}
	return y
}

// Backward implements Layer (training-mode gradient with batch statistics).
func (bn *BatchNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, c := bn.inShape[0], bn.inShape[1]
	area := bn.inShape[2] * bn.inShape[3]
	cnt := float32(n * area)
	dx := tensor.New(bn.inShape...)

	for ch := 0; ch < c; ch++ {
		var dgamma, dbeta float64
		for s := 0; s < n; s++ {
			base := (s*c + ch) * area
			for i := 0; i < area; i++ {
				dgamma += float64(dy.Data[base+i] * bn.xhat[base+i])
				dbeta += float64(dy.Data[base+i])
			}
		}
		bn.Gamma.Grad[ch] += float32(dgamma)
		bn.Beta.Grad[ch] += float32(dbeta)

		// dx = (γ/std/cnt) · (cnt·dy − Σdy − xhat·Σ(dy·xhat))
		g := bn.Gamma.Data[ch]
		scale := g * bn.std[ch] / cnt
		sumDy := float32(dbeta)
		sumDyXhat := float32(dgamma)
		for s := 0; s < n; s++ {
			base := (s*c + ch) * area
			for i := 0; i < area; i++ {
				dx.Data[base+i] = scale * (cnt*dy.Data[base+i] - sumDy - bn.xhat[base+i]*sumDyXhat)
			}
		}
	}
	return dx
}

package nn

import (
	"fftgrad/internal/parallel"
	"fftgrad/internal/tensor"
)

// Residual is a residual block: y = ReLU(main(x) + shortcut(x)). With an
// empty Shortcut the skip connection is the identity (He et al. 2016).
// This is the structural element that makes ResNet-class models hard to
// overlap with communication — many small convolutions instead of a few
// large ones (Sec. 2.1, Challenge II).
type Residual struct {
	Main     []Layer
	Shortcut []Layer

	relu *ReLU
}

// NewResidual creates a residual block.
func NewResidual(main []Layer, shortcut []Layer) *Residual {
	return &Residual{Main: main, Shortcut: shortcut, relu: NewReLU()}
}

// Name implements Layer.
func (*Residual) Name() string { return "residual" }

// Params implements Layer.
func (r *Residual) Params() []*Param {
	var out []*Param
	for _, l := range r.Main {
		out = append(out, l.Params()...)
	}
	for _, l := range r.Shortcut {
		out = append(out, l.Params()...)
	}
	return out
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	m := x
	for _, l := range r.Main {
		m = l.Forward(m, train)
	}
	s := x
	for _, l := range r.Shortcut {
		s = l.Forward(s, train)
	}
	if !tensor.SameShape(m, s) {
		panic("nn: residual branch shapes diverge; add a projection shortcut")
	}
	sum := tensor.New(m.Shape...)
	parallel.For(m.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Data[i] = m.Data[i] + s.Data[i]
		}
	})
	return r.relu.Forward(sum, train)
}

// Backward implements Layer.
func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dsum := r.relu.Backward(dy)
	dm := dsum
	for i := len(r.Main) - 1; i >= 0; i-- {
		dm = r.Main[i].Backward(dm)
	}
	ds := dsum
	for i := len(r.Shortcut) - 1; i >= 0; i-- {
		ds = r.Shortcut[i].Backward(ds)
	}
	dx := tensor.New(dm.Shape...)
	parallel.For(dm.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dx.Data[i] = dm.Data[i] + ds.Data[i]
		}
	})
	return dx
}

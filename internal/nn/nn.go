// Package nn is a from-scratch neural-network substrate: layers with
// explicit forward/backward passes, a sequential network container, and —
// central to this reproduction — *gradient linearization*: every model
// exposes its gradient as one flat float32 vector, which is exactly the
// 1-D signal the paper's compression pipeline consumes (step ① of Fig. 3).
//
// Each worker in data-parallel training owns a model replica, so layers
// cache forward activations for the backward pass without any locking.
package nn

import (
	"fmt"

	"fftgrad/internal/tensor"
)

// Param is one learnable parameter tensor with its gradient accumulator.
type Param struct {
	Name string
	Data []float32
	Grad []float32
}

func newParam(name string, n int) *Param {
	return &Param{Name: name, Data: make([]float32, n), Grad: make([]float32, n)}
}

// Layer is a differentiable network stage. Forward must cache whatever it
// needs for the next Backward call; Backward returns dL/dx given dL/dy and
// accumulates (+=) parameter gradients.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Network is an ordered pipeline of layers.
type Network struct {
	Layers []Layer
}

// Sequential builds a network from layers.
func Sequential(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs the full pipeline.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the full backward pipeline from the loss gradient.
func (n *Network) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dy = n.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns all learnable parameters in layer order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total learnable scalar count — the length of the
// flat gradient vector (and, ×4, the per-iteration message size in bytes).
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Data)
	}
	return total
}

// ZeroGrads clears every gradient accumulator.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// FlattenGrads linearizes all parameter gradients into dst (which must
// have length NumParams) in deterministic layer order — step ① of the
// compression pipeline. Returns dst.
func (n *Network) FlattenGrads(dst []float32) []float32 {
	off := 0
	for _, p := range n.Params() {
		copy(dst[off:], p.Grad)
		off += len(p.Grad)
	}
	if off != len(dst) {
		panic(fmt.Sprintf("nn: flat gradient length %d != NumParams %d", len(dst), off))
	}
	return dst
}

// AddToParams applies a flat additive update (e.g. -η·v from the
// optimizer) across all parameters in the same order as FlattenGrads.
func (n *Network) AddToParams(delta []float32) {
	off := 0
	for _, p := range n.Params() {
		for i := range p.Data {
			p.Data[i] += delta[off+i]
		}
		off += len(p.Data)
	}
	if off != len(delta) {
		panic(fmt.Sprintf("nn: flat update length %d != NumParams %d", len(delta), off))
	}
}

// GetParams copies all parameter values into dst in flat order.
func (n *Network) GetParams(dst []float32) []float32 {
	off := 0
	for _, p := range n.Params() {
		copy(dst[off:], p.Data)
		off += len(p.Data)
	}
	return dst[:off]
}

// SetParams overwrites all parameter values from a flat vector (the
// periodic parameter re-broadcast of the BSP trainer).
func (n *Network) SetParams(src []float32) {
	off := 0
	for _, p := range n.Params() {
		copy(p.Data, src[off:off+len(p.Data)])
		off += len(p.Data)
	}
	if off != len(src) {
		panic(fmt.Sprintf("nn: flat param length %d != NumParams %d", len(src), off))
	}
}

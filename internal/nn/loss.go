package nn

import (
	"fmt"
	"math"

	"fftgrad/internal/tensor"
)

// SoftmaxCE computes the softmax cross-entropy loss and its gradient with
// respect to the logits, averaged over the batch.
type SoftmaxCE struct{}

// Loss returns the mean cross-entropy of logits [N×classes] against the
// integer labels, plus dL/dlogits with the same shape.
func (SoftmaxCE) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	dl := tensor.New(n, c)
	var total float64
	invN := 1 / float32(n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		// stable softmax
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		lab := labels[i]
		if lab < 0 || lab >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lab, c))
		}
		total += logSum - float64(row[lab]-maxv)
		drow := dl.Data[i*c : (i+1)*c]
		for j, v := range row {
			p := float32(math.Exp(float64(v-maxv)) / sum)
			drow[j] = p * invN
		}
		drow[lab] -= invN
	}
	return total / float64(n), dl
}

// Accuracy returns the top-1 accuracy of logits against labels.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		best := 0
		for j := 1; j < c; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

package nn

import (
	"math/rand"
	"testing"

	"fftgrad/internal/tensor"
)

func TestBranchesConcat(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	b := NewBranches(
		[]Layer{NewConv2D(2, 3, 1, 1, 0, r)},
		[]Layer{NewConv2D(2, 5, 3, 1, 1, r)},
	)
	x := randInput(r, 2, 2, 4, 4)
	y := b.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 8 || y.Dim(2) != 4 || y.Dim(3) != 4 {
		t.Fatalf("concat shape %v", y.Shape)
	}
	if got := len(b.Params()); got != 4 {
		t.Fatalf("params %d want 4", got)
	}
	dx := b.Backward(y.Clone())
	if !tensor.SameShape(dx, x) {
		t.Fatalf("backward shape %v", dx.Shape)
	}
}

func TestBranchesIdentitySplit(t *testing.T) {
	// Two empty branches: output = input stacked twice along channels;
	// backward must sum the two gradient halves.
	b := NewBranches([]Layer{}, []Layer{})
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := b.Forward(x, true)
	if y.Dim(1) != 2 {
		t.Fatalf("channels %d", y.Dim(1))
	}
	for i := 0; i < 4; i++ {
		if y.Data[i] != x.Data[i] || y.Data[4+i] != x.Data[i] {
			t.Fatalf("identity concat wrong at %d", i)
		}
	}
	dy := tensor.FromSlice([]float32{1, 1, 1, 1, 2, 2, 2, 2}, 1, 2, 2, 2)
	dx := b.Backward(dy)
	for i := 0; i < 4; i++ {
		if dx.Data[i] != 3 {
			t.Fatalf("backward sum wrong at %d: %g", i, dx.Data[i])
		}
	}
}

func TestGradCheckBranches(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	net := Sequential(
		NewBranches(
			[]Layer{NewConv2D(2, 2, 1, 1, 0, r), NewReLU()},
			[]Layer{NewConv2D(2, 3, 3, 1, 1, r)},
		),
		NewGlobalAvgPool(),
		NewDense(5, 2, r),
	)
	x := randInput(r, 2, 2, 5, 5)
	labels := []int{0, 1}
	gradCheck(t, net, x, labels, 40, 0.1)
}

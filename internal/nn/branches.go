package nn

import (
	"fmt"

	"fftgrad/internal/tensor"
)

// Branches is an Inception-style fan-out block: the input is fed to every
// branch (a sub-pipeline of layers) and the branch outputs, which must
// agree on every dimension except channels, are concatenated along the
// channel axis. This is the "sparse fan-out connections" structure the
// paper identifies as shrinking per-layer compute and therefore the
// overlap opportunity (Sec. 2.1, Challenge II).
type Branches struct {
	Branch [][]Layer

	outCh []int // cached per-branch channel counts for backward split
}

// NewBranches creates a fan-out block from the given branches.
func NewBranches(branches ...[]Layer) *Branches {
	if len(branches) == 0 {
		panic("nn: Branches needs at least one branch")
	}
	return &Branches{Branch: branches}
}

// Name implements Layer.
func (b *Branches) Name() string { return fmt.Sprintf("branches(%d)", len(b.Branch)) }

// Params implements Layer.
func (b *Branches) Params() []*Param {
	var out []*Param
	for _, br := range b.Branch {
		for _, l := range br {
			out = append(out, l.Params()...)
		}
	}
	return out
}

// Forward implements Layer. x is [N,C,H,W].
func (b *Branches) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	outs := make([]*tensor.Tensor, len(b.Branch))
	for i, br := range b.Branch {
		y := x
		for _, l := range br {
			y = l.Forward(y, train)
		}
		outs[i] = y
	}
	n, h, w := outs[0].Dim(0), outs[0].Dim(2), outs[0].Dim(3)
	b.outCh = b.outCh[:0]
	totalC := 0
	for i, o := range outs {
		if o.Dim(0) != n || o.Dim(2) != h || o.Dim(3) != w {
			panic(fmt.Sprintf("nn: branch %d output %v incompatible with %v", i, o.Shape, outs[0].Shape))
		}
		b.outCh = append(b.outCh, o.Dim(1))
		totalC += o.Dim(1)
	}
	y := tensor.New(n, totalC, h, w)
	area := h * w
	for s := 0; s < n; s++ {
		cOff := 0
		for _, o := range outs {
			c := o.Dim(1)
			src := o.Data[s*c*area : (s+1)*c*area]
			dst := y.Data[(s*totalC+cOff)*area : (s*totalC+cOff+c)*area]
			copy(dst, src)
			cOff += c
		}
	}
	return y
}

// Backward implements Layer.
func (b *Branches) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, totalC, h, w := dy.Dim(0), dy.Dim(1), dy.Dim(2), dy.Dim(3)
	area := h * w
	var dx *tensor.Tensor
	cOff := 0
	for i, br := range b.Branch {
		c := b.outCh[i]
		dBranch := tensor.New(n, c, h, w)
		for s := 0; s < n; s++ {
			src := dy.Data[(s*totalC+cOff)*area : (s*totalC+cOff+c)*area]
			dst := dBranch.Data[s*c*area : (s+1)*c*area]
			copy(dst, src)
		}
		cOff += c
		d := dBranch
		for j := len(br) - 1; j >= 0; j-- {
			d = br[j].Backward(d)
		}
		if dx == nil {
			dx = d.Clone()
		} else {
			for k := range dx.Data {
				dx.Data[k] += d.Data[k]
			}
		}
	}
	return dx
}

package nn

import (
	"fftgrad/internal/parallel"
	"fftgrad/internal/tensor"
)

// ReLU is the rectified linear activation, y = max(0, x).
type ReLU struct {
	mask []bool
}

// NewReLU creates a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (*ReLU) Name() string { return "relu" }

// Params implements Layer.
func (*ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	if cap(l.mask) < x.Len() {
		l.mask = make([]bool, x.Len())
	}
	l.mask = l.mask[:x.Len()]
	parallel.For(x.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if x.Data[i] > 0 {
				y.Data[i] = x.Data[i]
				l.mask[i] = true
			} else {
				l.mask[i] = false
			}
		}
	})
	return y
}

// Backward implements Layer.
func (l *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dy.Shape...)
	parallel.For(dy.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if l.mask[i] {
				dx.Data[i] = dy.Data[i]
			}
		}
	})
	return dx
}

// Flatten reshapes [N, ...] to [N, D]. It is a pure view change.
type Flatten struct {
	inShape []int
}

// NewFlatten creates a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (*Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (*Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.inShape = append(l.inShape[:0], x.Shape...)
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (l *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(l.inShape...)
}

package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fftgrad/internal/parallel"
	"fftgrad/internal/tensor"
)

// Conv2D is a square 2-D convolution over NCHW tensors implemented as
// im2col + matrix multiply (the standard GEMM formulation the paper's GPU
// substrate uses).
type Conv2D struct {
	InC, OutC, Kernel, Stride, Pad int
	W, B                           *Param

	x    *tensor.Tensor  // cached input
	geom tensor.ConvGeom // geometry of the cached input
	cols [][]float32     // cached per-sample im2col buffers
}

// NewConv2D creates a convolution layer with He-normal initialization.
func NewConv2D(inC, outC, kernel, stride, pad int, r *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad,
		W: newParam(fmt.Sprintf("conv%dx%dk%d.W", outC, inC, kernel), outC*inC*kernel*kernel),
		B: newParam(fmt.Sprintf("conv%dx%dk%d.b", outC, inC, kernel), outC),
	}
	fanIn := float64(inC * kernel * kernel)
	std := math.Sqrt(2 / fanIn)
	for i := range c.W.Data {
		c.W.Data[i] = float32(r.NormFloat64() * std)
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv(%d→%d,k%d,s%d,p%d)", c.InC, c.OutC, c.Kernel, c.Stride, c.Pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Forward implements Layer. x is [N, InC, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if ch != c.InC {
		panic(fmt.Sprintf("nn: %s got %d input channels", c.Name(), ch))
	}
	g := tensor.ConvGeom{InC: ch, InH: h, InW: w, Kernel: c.Kernel, Stride: c.Stride, Pad: c.Pad}
	oh, ow := g.OutH(), g.OutW()
	rows := ch * c.Kernel * c.Kernel
	ncols := oh * ow

	c.x = x
	c.geom = g
	if len(c.cols) < n {
		c.cols = make([][]float32, n)
	}
	y := tensor.New(n, c.OutC, oh, ow)
	wT := tensor.FromSlice(c.W.Data, c.OutC, rows)

	parallel.ForGrain(n, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			if len(c.cols[s]) != rows*ncols {
				c.cols[s] = make([]float32, rows*ncols)
			}
			img := x.Data[s*ch*h*w : (s+1)*ch*h*w]
			tensor.Im2col(c.cols[s], img, g)
			out := tensor.FromSlice(y.Data[s*c.OutC*ncols:(s+1)*c.OutC*ncols], c.OutC, ncols)
			tensor.MatMul(out, wT, tensor.FromSlice(c.cols[s], rows, ncols))
			// add bias per output channel
			for oc := 0; oc < c.OutC; oc++ {
				b := c.B.Data[oc]
				row := out.Data[oc*ncols : (oc+1)*ncols]
				for i := range row {
					row[i] += b
				}
			}
		}
	})
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := dy.Dim(0)
	g := c.geom
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * c.Kernel * c.Kernel
	ncols := oh * ow
	imgLen := g.InC * g.InH * g.InW

	dx := tensor.New(n, g.InC, g.InH, g.InW)
	wT := tensor.FromSlice(c.W.Data, c.OutC, rows)

	// Per-worker partial dW/dB accumulators avoid write contention.
	chunks := parallel.Chunks(n, 1)
	dWparts := make([][]float32, len(chunks))
	dBparts := make([][]float32, len(chunks))
	parallel.ForGrain(len(chunks), 1, func(clo, chi int) {
		for ci := clo; ci < chi; ci++ {
			dW := make([]float32, len(c.W.Data))
			dB := make([]float32, c.OutC)
			dWt := tensor.FromSlice(dW, c.OutC, rows)
			for s := chunks[ci][0]; s < chunks[ci][1]; s++ {
				dout := tensor.FromSlice(dy.Data[s*c.OutC*ncols:(s+1)*c.OutC*ncols], c.OutC, ncols)
				// dW += dout · colsᵀ
				dWs := tensor.New(c.OutC, rows)
				tensor.MatMulTransB(dWs, dout, tensor.FromSlice(c.cols[s], rows, ncols))
				for i, v := range dWs.Data {
					dWt.Data[i] += v
				}
				// dB += row sums of dout
				for oc := 0; oc < c.OutC; oc++ {
					var acc float32
					row := dout.Data[oc*ncols : (oc+1)*ncols]
					for _, v := range row {
						acc += v
					}
					dB[oc] += acc
				}
				// dcols = Wᵀ · dout, then col2im
				dcols := tensor.New(rows, ncols)
				tensor.MatMulTransA(dcols, wT, dout)
				tensor.Col2im(dx.Data[s*imgLen:(s+1)*imgLen], dcols.Data, g)
			}
			dWparts[ci] = dW
			dBparts[ci] = dB
		}
	})
	for ci := range dWparts {
		for i, v := range dWparts[ci] {
			c.W.Grad[i] += v
		}
		for i, v := range dBparts[ci] {
			c.B.Grad[i] += v
		}
	}
	return dx
}

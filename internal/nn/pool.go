package nn

import (
	"fmt"
	"math"

	"fftgrad/internal/parallel"
	"fftgrad/internal/tensor"
)

// MaxPool2D is a square max pooling layer over NCHW tensors.
type MaxPool2D struct {
	Size, Stride int

	inShape []int
	argmax  []int32 // flat input index of each output element's maximum
}

// NewMaxPool2D creates a max-pooling layer. A stride of 0 defaults to size.
func NewMaxPool2D(size, stride int) *MaxPool2D {
	if stride == 0 {
		stride = size
	}
	return &MaxPool2D{Size: size, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool(%d,s%d)", p.Size, p.Stride) }

// Params implements Layer.
func (*MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.Size)/p.Stride + 1
	ow := (w-p.Size)/p.Stride + 1
	p.inShape = append(p.inShape[:0], x.Shape...)
	y := tensor.New(n, c, oh, ow)
	if cap(p.argmax) < y.Len() {
		p.argmax = make([]int32, y.Len())
	}
	p.argmax = p.argmax[:y.Len()]

	planes := n * c
	parallel.ForGrain(planes, 4, func(lo, hi int) {
		for pl := lo; pl < hi; pl++ {
			in := x.Data[pl*h*w : (pl+1)*h*w]
			outBase := pl * oh * ow
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					best := float32(math.Inf(-1))
					bestIdx := int32(-1)
					for di := 0; di < p.Size; di++ {
						ih := i*p.Stride + di
						for dj := 0; dj < p.Size; dj++ {
							iw := j*p.Stride + dj
							v := in[ih*w+iw]
							if v > best {
								best = v
								bestIdx = int32(pl*h*w + ih*w + iw)
							}
						}
					}
					y.Data[outBase+i*ow+j] = best
					p.argmax[outBase+i*ow+j] = bestIdx
				}
			}
		}
	})
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inShape...)
	// Different output cells can share an argmax only within a plane when
	// pooling windows overlap; planes are disjoint, so parallelize over
	// planes and accumulate serially within one.
	n, c := p.inShape[0], p.inShape[1]
	planes := n * c
	perPlane := dy.Len() / planes
	parallel.ForGrain(planes, 4, func(lo, hi int) {
		for pl := lo; pl < hi; pl++ {
			for i := pl * perPlane; i < (pl+1)*perPlane; i++ {
				dx.Data[p.argmax[i]] += dy.Data[i]
			}
		}
	})
	return dx
}

// GlobalAvgPool averages each channel plane to a single value:
// [N,C,H,W] → [N,C].
type GlobalAvgPool struct {
	inShape []int
}

// NewGlobalAvgPool creates a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Name implements Layer.
func (*GlobalAvgPool) Name() string { return "gap" }

// Params implements Layer.
func (*GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p.inShape = append(p.inShape[:0], x.Shape...)
	y := tensor.New(n, c)
	area := float32(h * w)
	parallel.ForGrain(n*c, 16, func(lo, hi int) {
		for pl := lo; pl < hi; pl++ {
			var acc float32
			plane := x.Data[pl*h*w : (pl+1)*h*w]
			for _, v := range plane {
				acc += v
			}
			y.Data[pl] = acc / area
		}
	})
	return y
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	h, w := p.inShape[2], p.inShape[3]
	dx := tensor.New(p.inShape...)
	inv := 1 / float32(h*w)
	parallel.ForGrain(dy.Len(), 16, func(lo, hi int) {
		for pl := lo; pl < hi; pl++ {
			g := dy.Data[pl] * inv
			plane := dx.Data[pl*h*w : (pl+1)*h*w]
			for i := range plane {
				plane[i] = g
			}
		}
	})
	return dx
}

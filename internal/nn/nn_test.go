package nn

import (
	"math"
	"math/rand"
	"testing"

	"fftgrad/internal/tensor"
)

func randInput(r *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64())
	}
	return t
}

func TestDenseForwardKnown(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := NewDense(2, 3, r)
	copy(d.W.Data, []float32{1, 2, 3, 4, 5, 6}) // W [3x2]
	copy(d.B.Data, []float32{0.1, 0.2, 0.3})
	x := tensor.FromSlice([]float32{1, 1, 2, -1}, 2, 2)
	y := d.Forward(x, true)
	// row0: [1+2, 3+4, 5+6] + b = [3.1, 7.2, 11.3]
	// row1: [2-2, 6-4, 10-6] + b = [0.1, 2.2, 4.3]
	want := []float32{3.1, 7.2, 11.3, 0.1, 2.2, 4.3}
	for i := range want {
		if math.Abs(float64(y.Data[i]-want[i])) > 1e-5 {
			t.Fatalf("y[%d]=%g want %g", i, y.Data[i], want[i])
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU()
	x := tensor.FromSlice([]float32{-1, 0, 2, -3, 4, 0.5}, 2, 3)
	y := l.Forward(x, true)
	want := []float32{0, 0, 2, 0, 4, 0.5}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu fwd[%d]=%g", i, y.Data[i])
		}
	}
	dy := tensor.FromSlice([]float32{1, 1, 1, 1, 1, 1}, 2, 3)
	dx := l.Backward(dy)
	wantDx := []float32{0, 0, 1, 0, 1, 1}
	for i := range wantDx {
		if dx.Data[i] != wantDx[i] {
			t.Fatalf("relu bwd[%d]=%g", i, dx.Data[i])
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D(2, 0)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 3,
		4, 0, 1, 2,
		0, 1, 9, 8,
		3, 2, 7, 6,
	}, 1, 1, 4, 4)
	y := p.Forward(x, true)
	want := []float32{4, 5, 3, 9}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("pool fwd[%d]=%g want %g", i, y.Data[i], want[i])
		}
	}
	dy := tensor.FromSlice([]float32{10, 20, 30, 40}, 1, 1, 2, 2)
	dx := p.Backward(dy)
	// gradient lands on the argmax positions: 4@(1,0), 5@(0,2), 3@(3,0), 9@(2,2)
	checks := map[int]float32{4: 10, 2: 20, 12: 30, 10: 40}
	for idx, v := range dx.Data {
		if want, ok := checks[idx]; ok {
			if v != want {
				t.Fatalf("pool bwd[%d]=%g want %g", idx, v, want)
			}
		} else if v != 0 {
			t.Fatalf("pool bwd[%d]=%g want 0", idx, v)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	p := NewGlobalAvgPool()
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := p.Forward(x, true)
	if y.Data[0] != 2.5 || y.Data[1] != 25 {
		t.Fatalf("gap fwd: %v", y.Data)
	}
	dy := tensor.FromSlice([]float32{4, 8}, 1, 2)
	dx := p.Backward(dy)
	for i := 0; i < 4; i++ {
		if dx.Data[i] != 1 {
			t.Fatalf("gap bwd ch0 [%d]=%g", i, dx.Data[i])
		}
		if dx.Data[4+i] != 2 {
			t.Fatalf("gap bwd ch1 [%d]=%g", i, dx.Data[4+i])
		}
	}
}

func TestSoftmaxCEKnown(t *testing.T) {
	// Uniform logits: loss = log(C), gradient = (1/C - onehot)/N.
	logits := tensor.FromSlice([]float32{0, 0, 0, 0}, 1, 4)
	loss, dl := SoftmaxCE{}.Loss(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss %g want %g", loss, math.Log(4))
	}
	for j := 0; j < 4; j++ {
		want := 0.25
		if j == 2 {
			want = 0.25 - 1
		}
		if math.Abs(float64(dl.Data[j])-want) > 1e-6 {
			t.Fatalf("dlogits[%d]=%g want %g", j, dl.Data[j], want)
		}
	}
}

func TestSoftmaxCEGradientSumsToZero(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	logits := randInput(r, 8, 10)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = r.Intn(10)
	}
	_, dl := SoftmaxCE{}.Loss(logits, labels)
	for i := 0; i < 8; i++ {
		var sum float64
		for j := 0; j < 10; j++ {
			sum += float64(dl.Data[i*10+j])
		}
		if math.Abs(sum) > 1e-5 {
			t.Fatalf("row %d gradient sums to %g", i, sum)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 5, 0,
		9, 1, 2,
		0, 0, 7,
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 2}); got != 1 {
		t.Fatalf("accuracy %g want 1", got)
	}
	if got := Accuracy(logits, []int{0, 0, 2}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("accuracy %g want 2/3", got)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	l := NewFlatten()
	x := randInput(r, 2, 3, 4, 5)
	y := l.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	dx := l.Backward(y)
	if !tensor.SameShape(dx, x) {
		t.Fatalf("unflatten shape %v", dx.Shape)
	}
}

func TestFlatGradientLinearization(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	net := Sequential(
		NewDense(10, 8, r),
		NewReLU(),
		NewDense(8, 3, r),
	)
	n := net.NumParams()
	if n != 10*8+8+8*3+3 {
		t.Fatalf("NumParams %d", n)
	}
	x := randInput(r, 4, 10)
	labels := []int{0, 1, 2, 1}
	net.ZeroGrads()
	logits := net.Forward(x, true)
	_, dl := SoftmaxCE{}.Loss(logits, labels)
	net.Backward(dl)

	flat := net.FlattenGrads(make([]float32, n))
	// Flat order must match Params order.
	off := 0
	for _, p := range net.Params() {
		for i := range p.Grad {
			if flat[off+i] != p.Grad[i] {
				t.Fatalf("flat grad mismatch at param %s idx %d", p.Name, i)
			}
		}
		off += len(p.Grad)
	}

	// AddToParams round-trips with GetParams/SetParams.
	before := net.GetParams(make([]float32, n))
	delta := make([]float32, n)
	for i := range delta {
		delta[i] = 0.5
	}
	net.AddToParams(delta)
	after := net.GetParams(make([]float32, n))
	for i := range after {
		if math.Abs(float64(after[i]-before[i]-0.5)) > 1e-6 {
			t.Fatalf("AddToParams wrong at %d", i)
		}
	}
	net.SetParams(before)
	restored := net.GetParams(make([]float32, n))
	for i := range restored {
		if restored[i] != before[i] {
			t.Fatalf("SetParams wrong at %d", i)
		}
	}
}

// lossOf runs the full forward and returns the loss on a fixed batch.
func lossOf(net *Network, x *tensor.Tensor, labels []int) float64 {
	logits := net.Forward(x, true)
	loss, _ := SoftmaxCE{}.Loss(logits, labels)
	return loss
}

// gradCheck compares analytic flat gradients against central differences
// on a random subset of parameters. Perturbing a parameter can flip a
// max-pool argmax or a ReLU sign, which makes the numeric derivative
// arbitrarily wrong at isolated kink points; a genuine backward bug would
// shift *most* parameters, so the check allows a small fraction of
// outliers rather than requiring every sample to match.
func gradCheck(t *testing.T, net *Network, x *tensor.Tensor, labels []int, samples int, tol float64) {
	t.Helper()
	n := net.NumParams()
	net.ZeroGrads()
	logits := net.Forward(x, true)
	_, dl := SoftmaxCE{}.Loss(logits, labels)
	net.Backward(dl)
	analytic := net.FlattenGrads(make([]float32, n))

	params := net.GetParams(make([]float32, n))
	r := rand.New(rand.NewSource(99))
	const h = 1e-2
	outliers := 0
	for s := 0; s < samples; s++ {
		i := r.Intn(n)
		orig := params[i]
		params[i] = orig + h
		net.SetParams(params)
		lp := lossOf(net, x, labels)
		params[i] = orig - h
		net.SetParams(params)
		lm := lossOf(net, x, labels)
		params[i] = orig
		net.SetParams(params)

		numeric := (lp - lm) / (2 * h)
		a := float64(analytic[i])
		denom := math.Max(math.Abs(numeric)+math.Abs(a), 1e-4)
		if rel := math.Abs(numeric-a) / denom; rel > tol {
			outliers++
			t.Logf("param %d: analytic %g numeric %g (rel %g)", i, a, numeric, rel)
		}
	}
	if outliers > samples/10 {
		t.Errorf("%d/%d samples exceeded tolerance %g", outliers, samples, tol)
	}
}

func TestGradCheckDenseNet(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	net := Sequential(
		NewDense(6, 12, r),
		NewReLU(),
		NewDense(12, 4, r),
	)
	x := randInput(r, 5, 6)
	labels := []int{0, 1, 2, 3, 1}
	gradCheck(t, net, x, labels, 60, 0.05)
}

func TestGradCheckConvNet(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	net := Sequential(
		NewConv2D(2, 4, 3, 1, 1, r),
		NewReLU(),
		NewMaxPool2D(2, 0),
		NewFlatten(),
		NewDense(4*3*3, 3, r),
	)
	x := randInput(r, 3, 2, 6, 6)
	labels := []int{0, 1, 2}
	gradCheck(t, net, x, labels, 50, 0.08)
}

func TestGradCheckBatchNorm(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	net := Sequential(
		NewConv2D(1, 3, 3, 1, 1, r),
		NewBatchNorm(3),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(3, 2, r),
	)
	x := randInput(r, 4, 1, 5, 5)
	labels := []int{0, 1, 1, 0}
	gradCheck(t, net, x, labels, 40, 0.1)
}

func TestGradCheckResidual(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	block := NewResidual(
		[]Layer{
			NewConv2D(3, 3, 3, 1, 1, r),
			NewReLU(),
			NewConv2D(3, 3, 3, 1, 1, r),
		},
		nil, // identity shortcut
	)
	net := Sequential(
		block,
		NewGlobalAvgPool(),
		NewDense(3, 2, r),
	)
	x := randInput(r, 2, 3, 5, 5)
	labels := []int{0, 1}
	gradCheck(t, net, x, labels, 40, 0.1)
}

func TestGradCheckResidualProjection(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	// Downsampling block with a 1x1 projection shortcut.
	block := NewResidual(
		[]Layer{
			NewConv2D(2, 4, 3, 2, 1, r),
			NewReLU(),
			NewConv2D(4, 4, 3, 1, 1, r),
		},
		[]Layer{NewConv2D(2, 4, 1, 2, 0, r)},
	)
	net := Sequential(
		block,
		NewGlobalAvgPool(),
		NewDense(4, 2, r),
	)
	x := randInput(r, 2, 2, 6, 6)
	labels := []int{1, 0}
	gradCheck(t, net, x, labels, 40, 0.1)
}

// A small dense net must actually learn a separable problem — sanity check
// that forward/backward/update compose into working SGD.
func TestLearningSanity(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	net := Sequential(
		NewDense(2, 16, r),
		NewReLU(),
		NewDense(16, 2, r),
	)
	n := net.NumParams()
	grad := make([]float32, n)
	delta := make([]float32, n)

	// XOR-ish separable data.
	batch := 64
	x := tensor.New(batch, 2)
	labels := make([]int, batch)
	newBatch := func() {
		for i := 0; i < batch; i++ {
			a, b := r.Float64()*2-1, r.Float64()*2-1
			x.Data[2*i], x.Data[2*i+1] = float32(a), float32(b)
			if a*b > 0 {
				labels[i] = 1
			}
		}
	}
	var loss float64
	for iter := 0; iter < 300; iter++ {
		newBatch()
		net.ZeroGrads()
		logits := net.Forward(x, true)
		loss, _ = SoftmaxCE{}.Loss(logits, labels)
		_, dl := SoftmaxCE{}.Loss(logits, labels)
		net.Backward(dl)
		net.FlattenGrads(grad)
		for i := range delta {
			delta[i] = -0.2 * grad[i]
		}
		net.AddToParams(delta)
	}
	if loss > 0.35 {
		t.Fatalf("net failed to learn XOR: final loss %g", loss)
	}
}

func BenchmarkConvForward(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	conv := NewConv2D(16, 32, 3, 1, 1, r)
	x := randInput(r, 8, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
	}
}

func BenchmarkConvBackward(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	conv := NewConv2D(16, 32, 3, 1, 1, r)
	x := randInput(r, 8, 16, 16, 16)
	y := conv.Forward(x, true)
	dy := y.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Backward(dy)
	}
}

// BatchNorm in eval mode must use running statistics: after training-mode
// passes accumulate stats, an eval pass on the same data must be close to
// normalized, and eval output must not depend on batch composition.
func TestBatchNormEvalMode(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	bn := NewBatchNorm(2)
	bn.Moment = 0 // adopt the latest batch statistics immediately
	x := randInput(r, 16, 2, 4, 4)
	for i := range x.Data {
		x.Data[i] = x.Data[i]*3 + 1 // non-trivial mean/var
	}
	bn.Forward(x, true) // accumulates running stats

	y := bn.Forward(x, false)
	mean, std := 0.0, 0.0
	for _, v := range y.Data {
		mean += float64(v)
	}
	mean /= float64(len(y.Data))
	for _, v := range y.Data {
		d := float64(v) - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(y.Data)))
	if math.Abs(mean) > 0.1 || math.Abs(std-1) > 0.1 {
		t.Fatalf("eval normalization off: mean %.3f std %.3f", mean, std)
	}

	// Eval output for a single sample must equal its slice of the batch
	// output (no batch-statistics leakage in eval mode).
	single := tensor.New(1, 2, 4, 4)
	copy(single.Data, x.Data[:2*16])
	ys := bn.Forward(single, false)
	for i := range ys.Data {
		if ys.Data[i] != y.Data[i] {
			t.Fatalf("eval output depends on batch composition at %d", i)
		}
	}
}

// Overlapping max-pool windows (stride < size) must route gradients to
// shared argmax positions additively.
func TestMaxPoolOverlappingWindows(t *testing.T) {
	p := NewMaxPool2D(2, 1) // 2x2 windows, stride 1
	x := tensor.FromSlice([]float32{
		1, 2, 1,
		2, 9, 2, // the 9 is the max of all four windows
		1, 2, 1,
	}, 1, 1, 3, 3)
	y := p.Forward(x, true)
	for i, v := range y.Data {
		if v != 9 {
			t.Fatalf("window %d max %g want 9", i, v)
		}
	}
	dy := tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	dx := p.Backward(dy)
	if dx.Data[4] != 4 { // center receives all four gradients
		t.Fatalf("shared argmax gradient %g want 4", dx.Data[4])
	}
	var rest float32
	for i, v := range dx.Data {
		if i != 4 {
			rest += v
		}
	}
	if rest != 0 {
		t.Fatalf("gradient leaked to non-argmax positions: %g", rest)
	}
}

// Residual with mismatched branch shapes must fail loudly, pointing at
// the missing projection shortcut.
func TestResidualShapeMismatchPanics(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	block := NewResidual(
		[]Layer{NewConv2D(2, 4, 3, 1, 1, r)}, // changes channels
		nil,                                  // identity shortcut can't match
	)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on branch shape mismatch")
		}
	}()
	block.Forward(randInput(r, 1, 2, 4, 4), true)
}

// Dense must reject inputs whose flattened width disagrees with In.
func TestDenseWidthMismatchPanics(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	d := NewDense(10, 4, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Forward(randInput(r, 2, 9), true)
}

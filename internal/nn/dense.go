package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fftgrad/internal/tensor"
)

// Dense is a fully-connected layer: y = x·Wᵀ + b, for x [N×in] and
// W [out×in].
type Dense struct {
	In, Out int
	W, B    *Param

	x *tensor.Tensor // cached input
}

// NewDense creates a dense layer with He-normal initialized weights.
func NewDense(in, out int, r *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W: newParam(fmt.Sprintf("dense%dx%d.W", out, in), in*out),
		B: newParam(fmt.Sprintf("dense%dx%d.b", out, in), out),
	}
	std := math.Sqrt(2 / float64(in))
	for i := range d.W.Data {
		d.W.Data[i] = float32(r.NormFloat64() * std)
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d→%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	x2 := x.Reshape(n, x.Len()/n)
	if x2.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: %s got input width %d", d.Name(), x2.Dim(1)))
	}
	d.x = x2
	y := tensor.New(n, d.Out)
	tensor.MatMulTransB(y, x2, tensor.FromSlice(d.W.Data, d.Out, d.In))
	tensor.AddBiasRows(y, d.B.Data)
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := dy.Dim(0)
	// dW += dyᵀ·x  — shape [out×in]
	dW := tensor.New(d.Out, d.In)
	tensor.MatMulTransA(dW, dy, d.x)
	for i, v := range dW.Data {
		d.W.Grad[i] += v
	}
	// db += column sums of dy
	for i := 0; i < n; i++ {
		row := dy.Data[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			d.B.Grad[j] += v
		}
	}
	// dx = dy·W — [N×in]
	dx := tensor.New(n, d.In)
	tensor.MatMul(dx, dy, tensor.FromSlice(d.W.Data, d.Out, d.In))
	return dx
}

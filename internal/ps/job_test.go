package ps

import (
	"errors"
	"testing"

	"fftgrad/internal/compress"
	"fftgrad/internal/dist"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// appendOnly wraps a real compressor but fails the legacy entry points,
// pinning the PS exchange to the zero-allocation AppendCompress /
// DecompressInto path: if either side of the push ever falls back to
// Compress/Decompress, the run errors and the test fails.
type appendOnly struct{ inner compress.Compressor }

var errLegacyPath = errors.New("legacy codec entry point used")

// mustNew panics on a bad codec name; NewCompressor runs on worker
// goroutines where t.Fatal is off-limits.
func mustNew(name string, theta float64) compress.Compressor {
	c, err := compress.New(name, theta)
	if err != nil {
		panic(err)
	}
	return c
}

func (a appendOnly) Name() string { return a.inner.Name() }
func (a appendOnly) Compress(grad []float32) ([]byte, error) {
	return nil, errLegacyPath
}
func (a appendOnly) Decompress(dst []float32, msg []byte) error {
	return errLegacyPath
}
func (a appendOnly) AppendCompress(dst []byte, grad []float32) ([]byte, error) {
	return compress.AppendCompress(a.inner, dst, grad)
}
func (a appendOnly) DecompressInto(dst []float32, msg []byte) error {
	return compress.DecompressInto(a.inner, dst, msg)
}

func TestPSExchangeUsesAppendCodecPath(t *testing.T) {
	cfg := blobCfg(11)
	cfg.NewCompressor = func() compress.Compressor {
		return appendOnly{inner: mustNew("fft", 0.85)}
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatalf("Train via append-only codec: %v", err)
	}
	if res.CompressionRatio < 2 {
		t.Fatalf("compression ratio = %.2f, want > 2 with theta 0.85", res.CompressionRatio)
	}
	acc := res.Epochs[len(res.Epochs)-1].TestAcc
	if acc < 0.80 {
		t.Fatalf("final accuracy = %.3f, want >= 0.80", acc)
	}
}

func TestPSHaltCapturesAndResumes(t *testing.T) {
	// Halt after the first epoch boundary, then resume from the captured
	// checkpoint and confirm the continued run reaches normal quality.
	stop := make(chan struct{})
	cfg := blobCfg(12)
	cfg.Epochs = 4
	cfg.ItersPerEpoch = 32 // 2048 samples / 4 workers / batch 16
	var seen []EpochStats
	cfg.Stop = stop
	cfg.OnEpoch = func(s EpochStats) {
		seen = append(seen, s)
		if s.Epoch == 0 {
			close(stop)
		}
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatalf("halted Train: %v", err)
	}
	if !res.Halted {
		t.Fatal("Halted = false after Stop closed")
	}
	if res.Final == nil {
		t.Fatal("halted run captured no final checkpoint")
	}
	total := cfg.Epochs * cfg.ItersPerEpoch * cfg.Workers
	if res.Iterations >= total {
		t.Fatalf("halted run applied %d pushes, want < %d", res.Iterations, total)
	}
	if len(seen) == 0 {
		t.Fatal("OnEpoch never fired before the halt")
	}

	rest := blobCfg(12)
	rest.Epochs = 3
	rest.Resume = res.Final
	res2, err := Train(rest)
	if err != nil {
		t.Fatalf("resumed Train: %v", err)
	}
	acc := res2.Epochs[len(res2.Epochs)-1].TestAcc
	if acc < 0.80 {
		t.Fatalf("resumed accuracy = %.3f, want >= 0.80", acc)
	}
}

func TestPSAsyncHalt(t *testing.T) {
	stop := make(chan struct{})
	cfg := blobCfg(13)
	cfg.Async = true
	cfg.Epochs = 4
	cfg.Stop = stop
	cfg.OnEpoch = func(s EpochStats) {
		if s.Epoch == 0 {
			close(stop)
		}
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatalf("halted async Train: %v", err)
	}
	if !res.Halted || res.Final == nil {
		t.Fatalf("async halt: Halted=%v Final=%v", res.Halted, res.Final != nil)
	}
}

func TestPSJobInterface(t *testing.T) {
	cfg := blobCfg(14)
	cfg.NewCompressor = func() compress.Compressor {
		return mustNew("fft", 0.85)
	}
	job := cfg.NewJob()
	if job.Backend() != "ps" {
		t.Fatalf("Backend() = %q, want ps", job.Backend())
	}
	if job.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", job.Workers())
	}
	if job.Tracks() != 5 {
		t.Fatalf("Tracks() = %d, want workers+1 server track", job.Tracks())
	}

	reg := telemetry.NewRegistry()
	tr := trace.New(job.Tracks(), 1024)
	var epochs []dist.EpochStats
	res, err := job.Run(dist.JobHarness{
		Telemetry: reg,
		Tracer:    tr,
		OnEpoch:   func(s dist.EpochStats) { epochs = append(epochs, s) },
	})
	if err != nil {
		t.Fatalf("job.Run: %v", err)
	}
	if len(epochs) != 3 || len(res.Epochs) != 3 {
		t.Fatalf("epoch stream %d / result %d, want 3", len(epochs), len(res.Epochs))
	}

	// The push counter must account every applied gradient.
	if pushes := res.Telemetry["fftgrad_ps_pushes_total"]; pushes != float64(res.Iterations) {
		t.Fatalf("fftgrad_ps_pushes_total = %v, want %d", pushes, res.Iterations)
	}

	// The server track (index Workers) must carry decode/update spans.
	serverEvents := 0
	for _, ev := range tr.Events() {
		if ev.Rank == 4 {
			serverEvents++
		}
	}
	if serverEvents == 0 {
		t.Fatal("server timeline track recorded no events")
	}
}

// Package ps implements Parameter-Server (PS) data-parallel training, the
// alternative parallelization scheme of the paper's Fig. 1: workers push
// (optionally compressed) gradients to a central server, the server
// updates the global parameters, and workers pull them back.
//
// The paper's Background section identifies the PS trade-off this package
// makes measurable: client-server structure gives easy fault tolerance
// and elasticity, but the server's link becomes a congestion point — at p
// workers the server moves p gradient messages in and p parameter copies
// out per iteration, where BSP's ring spreads that volume over all links.
// CongestionCost prices exactly that, and the tests compare it against
// the BSP collective costs from internal/netsim.
//
// As the second execution backend of the training service (Config.NewJob
// → dist.Job), the package carries the same runtime surface as the BSP
// path: the push/pull exchange runs through AppendCompress /
// DecompressInto with steady-state buffer reuse (no per-iteration codec
// allocations), progress streams through OnEpoch, Stop halts
// cooperatively with a final checkpoint, Resume restores one, and
// Telemetry/Tracer give a job its own metrics and timeline.
package ps

import (
	"fmt"
	"sync"
	"time"

	"fftgrad/internal/checkpoint"
	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/netsim"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// Config describes one PS training run.
type Config struct {
	Workers       int
	Batch         int
	Epochs        int
	ItersPerEpoch int // 0 = one pass over each worker's shard
	Seed          int64

	Momentum float64
	LR       optim.LRSchedule

	Model func(seed int64) *nn.Network
	Train *data.Dataset
	Test  *data.Dataset

	// NewCompressor builds one compressor per worker for the push path
	// (pulls ship FP32 parameters, as real PS deployments do).
	NewCompressor func() compress.Compressor

	// Async applies each gradient as it arrives (stale gradients, no
	// iteration barrier) instead of synchronously averaging all p pushes.
	Async bool

	// Fabric prices the star-topology communication. Nil disables timing.
	Fabric *netsim.Profile

	// Telemetry, when non-nil, receives live metrics: push/pull counters
	// and the per-stage compression throughput gauges (the Sec. 3.3
	// terms) from every worker's compressor. A final Snapshot lands in
	// Result.Telemetry.
	Telemetry *telemetry.Registry

	// Tracer, when non-nil, records worker compute/compress spans on
	// per-worker tracks and the server's decompress/update spans on
	// track Workers (the server track). Nil keeps tracing off with zero
	// hot-path cost.
	Tracer *trace.Tracer

	// Stop, when non-nil, requests a cooperative halt once closed: the
	// server stops issuing pulls at the next application boundary,
	// captures a final checkpoint into Result.Final, and Train returns
	// with Result.Halted set — not an error.
	Stop <-chan struct{}

	// OnEpoch, when non-nil, receives each epoch's statistics as the
	// server crosses the boundary — the live progress stream of a
	// service job. Runs on the server goroutine; keep it fast.
	OnEpoch func(EpochStats)

	// Resume, when non-nil, restores the server's global parameters and
	// optimizer momentum before training starts; workers receive the
	// resumed parameters through the initial pull.
	Resume *checkpoint.State

	// CaptureFinal asks for an end-of-run checkpoint in Result.Final
	// even when the run completes normally (halted runs always capture).
	CaptureFinal bool
}

// Result aggregates a PS run.
type Result struct {
	Epochs []EpochStats

	GradSize         int
	Iterations       int // gradient pushes applied by the server
	AvgPushBytes     float64
	CompressionRatio float64

	ComputeSeconds float64 // measured across workers (sum of rank-0 share)
	CommSeconds    float64 // modeled star-topology cost

	// Halted reports that Config.Stop ended the run early.
	Halted bool
	// Final is the server's end-of-run checkpoint (always set when
	// Halted; set on completion too under CaptureFinal or Stop).
	Final *checkpoint.State
	// Telemetry is the end-of-run snapshot of Config.Telemetry (nil when
	// no registry was supplied).
	Telemetry telemetry.Snapshot
}

// EpochStats records per-epoch progress (evaluated on the server's
// global parameters).
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	TestAcc   float64
	LR        float64
}

// CongestionCost returns the modeled per-iteration communication time of
// a PS star at p workers: the server's single link carries p pushes of
// pushBytes inbound and p pulls of paramBytes outbound.
func CongestionCost(fabric netsim.Profile, p, pushBytes, paramBytes int) float64 {
	in := float64(p) * (fabric.Latency + float64(pushBytes)/fabric.Bandwidth)
	out := float64(p) * (fabric.Latency + float64(paramBytes)/fabric.Bandwidth)
	return in + out
}

type push struct {
	rank int
	msg  []byte
	loss float64
}

// Train runs PS training and returns the server's statistics.
func Train(cfg Config) (*Result, error) {
	if cfg.Model == nil || cfg.Train == nil {
		return nil, fmt.Errorf("ps: Model and Train dataset are required")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Batch < 1 {
		cfg.Batch = 32
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	if cfg.LR == nil {
		cfg.LR = optim.ConstLR(0.01)
	}
	if cfg.NewCompressor == nil {
		cfg.NewCompressor = func() compress.Compressor { return compress.FP32{} }
	}
	if cfg.ItersPerEpoch == 0 {
		shard := cfg.Train.Len() / cfg.Workers
		cfg.ItersPerEpoch = shard / cfg.Batch
		if cfg.ItersPerEpoch < 1 {
			cfg.ItersPerEpoch = 1
		}
	}

	p := cfg.Workers
	global := cfg.Model(cfg.Seed) // the server's authoritative parameters
	n := global.NumParams()
	sgd := optim.NewSGD(cfg.LR.LR(0), cfg.Momentum, n)
	if cfg.Resume != nil {
		if err := cfg.Resume.Apply(global, sgd); err != nil {
			return nil, fmt.Errorf("ps: resume: %w", err)
		}
	}
	serverComp := cfg.NewCompressor() // decode side on the server

	// Telemetry: a shared stage timer feeds the Sec. 3.3 gauges from
	// every worker's compressor plus the server's decode side; the push
	// counters account the star's inbound volume.
	var st *telemetry.StageTimer
	var pushCtr, pushBytesCtr *telemetry.Counter
	if cfg.Telemetry != nil {
		st = telemetry.NewStageTimer()
		st.Register(cfg.Telemetry)
		pushCtr = cfg.Telemetry.Counter("fftgrad_ps_pushes_total",
			"Gradient pushes applied by the parameter server")
		pushBytesCtr = cfg.Telemetry.Counter("fftgrad_ps_push_bytes_total",
			"Compressed gradient bytes pushed to the parameter server")
	}
	compress.Instrument(serverComp, st)

	// Server timeline track: one past the worker tracks, when the
	// tracer was sized for it (Tracks() = Workers+1 on the job path).
	var serverTC *trace.Ctx
	if cfg.Tracer != nil && cfg.Tracer.Ranks() > p {
		serverTC = cfg.Tracer.Rank(p)
	}

	pushes := make(chan push, p)
	// pulls[r] receives a fresh parameter view for worker r; closed by
	// the server on halt so parked workers exit.
	pulls := make([]chan []float32, p)
	for i := range pulls {
		pulls[i] = make(chan []float32, 1)
	}
	workerIters := cfg.Epochs * cfg.ItersPerEpoch
	totalPushes := workerIters * p

	res := &Result{GradSize: n}
	var totalPushBytes float64

	// --- server loop -----------------------------------------------------
	var serverWG sync.WaitGroup
	serverWG.Add(1)
	serverErr := make(chan error, 1)
	go func() {
		defer serverWG.Done()
		grad := make([]float32, n)
		accum := make([]float32, n)
		delta := make([]float32, n)
		var lossSum float64
		var lossCount int
		pending := 0
		applied := 0

		// Parameter-view buffers, reused across rounds. Sync mode shares
		// one: the server refills it only after receiving all p pushes of
		// the round, and each push happens-after its sender finished
		// SetParams on the previous view — so no worker can still be
		// reading. Async mode replies per worker, so each worker gets its
		// own buffer with the same happens-before argument.
		syncView := make([]float32, n)
		var asyncViews [][]float32
		if cfg.Async {
			asyncViews = make([][]float32, p)
			for r := range asyncViews {
				asyncViews[r] = make([]float32, n)
			}
		}
		view := func(r int) []float32 {
			if cfg.Async {
				return global.GetParams(asyncViews[r])
			}
			return syncView
		}

		// halt drains the run cooperatively: stop issuing pulls, close
		// them so parked workers exit, and let wg.Wait collect everyone.
		halted := false
		haltDue := func() bool {
			if cfg.Stop == nil {
				return false
			}
			select {
			case <-cfg.Stop:
				return true
			default:
				return false
			}
		}

		// Initial pull for everyone.
		global.GetParams(syncView)
		for r := 0; r < p; r++ {
			pulls[r] <- view(r)
		}

		for applied < totalPushes {
			pu := <-pushes
			totalPushBytes += float64(len(pu.msg))
			pushCtr.Inc(pu.rank)
			pushBytesCtr.Add(pu.rank, len(pu.msg))
			if serverTC != nil {
				serverTC.SetIter(uint64(applied))
			}
			t0 := time.Now()
			if err := compress.DecompressInto(serverComp, grad, pu.msg); err != nil {
				serverErr <- fmt.Errorf("ps: server decompress: %w", err)
				return
			}
			serverTC.SpanSince(trace.OpDecompress, int64(len(pu.msg)), t0)
			lossSum += pu.loss
			lossCount++
			applied++
			epoch := (applied - 1) / (cfg.ItersPerEpoch * p)
			sgd.LR = cfg.LR.LR(epoch)

			if cfg.Async {
				// Apply immediately (stale gradient), reply with fresh
				// params. The contribution is scaled by 1/p so one round
				// of p asynchronous pushes moves the parameters as far as
				// one synchronous averaged step — without this, async
				// training at p workers runs at an effective learning
				// rate p times too large and diverges.
				t0 = time.Now()
				inv := 1 / float32(p)
				for i := range grad {
					grad[i] *= inv
				}
				sgd.Delta(delta, grad)
				global.AddToParams(delta)
				serverTC.SpanSince(trace.OpUpdate, int64(n), t0)
				if haltDue() {
					halted = true
					break
				}
				pulls[pu.rank] <- view(pu.rank)
			} else {
				for i, v := range grad {
					accum[i] += v
				}
				pending++
				if pending == p {
					t0 = time.Now()
					inv := 1 / float32(p)
					for i := range accum {
						accum[i] *= inv
					}
					sgd.Delta(delta, accum)
					global.AddToParams(delta)
					for i := range accum {
						accum[i] = 0
					}
					pending = 0
					serverTC.SpanSince(trace.OpUpdate, int64(n), t0)
					if haltDue() {
						halted = true
						break
					}
					global.GetParams(syncView)
					for r := 0; r < p; r++ {
						pulls[r] <- view(r)
					}
				}
			}

			// Epoch bookkeeping on the server.
			if applied%(cfg.ItersPerEpoch*p) == 0 {
				stats := EpochStats{
					Epoch:     epoch,
					TrainLoss: lossSum / float64(lossCount),
					LR:        sgd.LR,
				}
				lossSum, lossCount = 0, 0
				if cfg.Test != nil {
					stats.TestAcc = evaluate(global, cfg.Test, cfg.Batch)
				}
				res.Epochs = append(res.Epochs, stats)
				if cfg.OnEpoch != nil {
					cfg.OnEpoch(stats)
				}
			}
		}
		res.Iterations = applied
		res.Halted = halted
		if halted {
			// Release workers parked on their pull; in-flight pushes of
			// the abandoned round sit in the buffered channel and are
			// simply never applied.
			for r := range pulls {
				close(pulls[r])
			}
		}
		if halted || cfg.CaptureFinal || cfg.Stop != nil {
			e := int64(applied) / int64(cfg.ItersPerEpoch*p)
			res.Final = checkpoint.Capture(global, sgd, e, int64(applied-1))
		}
	}()

	// --- workers ----------------------------------------------------------
	var wg sync.WaitGroup
	workerErrs := make([]error, p)
	var computeMu sync.Mutex
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			replica := cfg.Model(cfg.Seed)
			shard := cfg.Train.Shard(rank, p)
			it := data.NewIterator(shard.Len(), cfg.Batch, cfg.Seed+int64(rank)*104729)
			comp := cfg.NewCompressor()
			compress.Instrument(comp, st)
			tc := cfg.Tracer.Rank(rank)
			grad := make([]float32, n)
			loss := nn.SoftmaxCE{}
			// The push message is double-use-safe with a single buffer:
			// the server decompresses push i before it replies with the
			// pull this worker blocks on, so by the time iteration i+1
			// compresses into the same buffer no reader remains.
			var msgBuf []byte

			for iter := 0; iter < workerIters; iter++ {
				params, ok := <-pulls[rank]
				if !ok {
					return // server halted the run
				}
				replica.SetParams(params)
				tc.SetIter(uint64(iter))

				t0 := time.Now()
				x, labels := shard.Batch(it.Next())
				replica.ZeroGrads()
				logits := replica.Forward(x, true)
				l, dl := loss.Loss(logits, labels)
				replica.Backward(dl)
				replica.FlattenGrads(grad)
				el := time.Since(t0)
				tc.SpanTimed(trace.OpCompute, int64(cfg.Batch), t0, el)
				if rank == 0 {
					computeMu.Lock()
					res.ComputeSeconds += el.Seconds()
					computeMu.Unlock()
				}

				t0 = time.Now()
				msg, err := compress.AppendCompress(comp, msgBuf[:0], grad)
				if err != nil {
					workerErrs[rank] = err
					return
				}
				msgBuf = msg
				tc.SpanSince(trace.OpCompress, int64(len(msg)), t0)
				pushes <- push{rank: rank, msg: msg, loss: l}
				if !cfg.Async && iter == workerIters-1 {
					// The final synchronous broadcast is consumed nowhere;
					// drain it so the server can exit cleanly.
					defer func() { <-pulls[rank] }()
				}
			}
		}(rank)
	}
	wg.Wait()
	serverWG.Wait()
	select {
	case err := <-serverErr:
		return nil, err
	default:
	}
	for _, err := range workerErrs {
		if err != nil {
			return nil, err
		}
	}

	if res.Iterations > 0 {
		res.AvgPushBytes = totalPushBytes / float64(res.Iterations)
		res.CompressionRatio = float64(n*4) / res.AvgPushBytes
	}
	if cfg.Fabric != nil {
		perIter := CongestionCost(*cfg.Fabric, p, int(res.AvgPushBytes), n*4)
		res.CommSeconds = perIter * float64(res.Iterations) / float64(p)
	}
	if cfg.Telemetry != nil {
		res.Telemetry = cfg.Telemetry.Snapshot()
	}
	return res, nil
}

// evaluate computes top-1 accuracy of the global model.
func evaluate(net *nn.Network, test *data.Dataset, batch int) float64 {
	correct := 0.0
	total := 0
	idx := make([]int, 0, batch)
	for s := 0; s < test.Len(); s += batch {
		idx = idx[:0]
		for j := s; j < s+batch && j < test.Len(); j++ {
			idx = append(idx, j)
		}
		x, labels := test.Batch(idx)
		logits := net.Forward(x, false)
		correct += nn.Accuracy(logits, labels) * float64(len(idx))
		total += len(idx)
	}
	if total == 0 {
		return 0
	}
	return correct / float64(total)
}

// Package ps implements Parameter-Server (PS) data-parallel training, the
// alternative parallelization scheme of the paper's Fig. 1: workers push
// (optionally compressed) gradients to a central server, the server
// updates the global parameters, and workers pull them back.
//
// The paper's Background section identifies the PS trade-off this package
// makes measurable: client-server structure gives easy fault tolerance
// and elasticity, but the server's link becomes a congestion point — at p
// workers the server moves p gradient messages in and p parameter copies
// out per iteration, where BSP's ring spreads that volume over all links.
// CongestionCost prices exactly that, and the tests compare it against
// the BSP collective costs from internal/netsim.
package ps

import (
	"fmt"
	"sync"
	"time"

	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/netsim"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
)

// Config describes one PS training run.
type Config struct {
	Workers       int
	Batch         int
	Epochs        int
	ItersPerEpoch int // 0 = one pass over each worker's shard
	Seed          int64

	Momentum float64
	LR       optim.LRSchedule

	Model func(seed int64) *nn.Network
	Train *data.Dataset
	Test  *data.Dataset

	// NewCompressor builds one compressor per worker for the push path
	// (pulls ship FP32 parameters, as real PS deployments do).
	NewCompressor func() compress.Compressor

	// Async applies each gradient as it arrives (stale gradients, no
	// iteration barrier) instead of synchronously averaging all p pushes.
	Async bool

	// Fabric prices the star-topology communication. Nil disables timing.
	Fabric *netsim.Profile
}

// Result aggregates a PS run.
type Result struct {
	Epochs []EpochStats

	GradSize         int
	Iterations       int // gradient pushes applied by the server
	AvgPushBytes     float64
	CompressionRatio float64

	ComputeSeconds float64 // measured across workers (sum of rank-0 share)
	CommSeconds    float64 // modeled star-topology cost
}

// EpochStats records per-epoch progress (evaluated on the server's
// global parameters).
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	TestAcc   float64
	LR        float64
}

// CongestionCost returns the modeled per-iteration communication time of
// a PS star at p workers: the server's single link carries p pushes of
// pushBytes inbound and p pulls of paramBytes outbound.
func CongestionCost(fabric netsim.Profile, p, pushBytes, paramBytes int) float64 {
	in := float64(p) * (fabric.Latency + float64(pushBytes)/fabric.Bandwidth)
	out := float64(p) * (fabric.Latency + float64(paramBytes)/fabric.Bandwidth)
	return in + out
}

type push struct {
	rank int
	msg  []byte
	loss float64
}

// Train runs PS training and returns the server's statistics.
func Train(cfg Config) (*Result, error) {
	if cfg.Model == nil || cfg.Train == nil {
		return nil, fmt.Errorf("ps: Model and Train dataset are required")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Batch < 1 {
		cfg.Batch = 32
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	if cfg.LR == nil {
		cfg.LR = optim.ConstLR(0.01)
	}
	if cfg.NewCompressor == nil {
		cfg.NewCompressor = func() compress.Compressor { return compress.FP32{} }
	}
	if cfg.ItersPerEpoch == 0 {
		shard := cfg.Train.Len() / cfg.Workers
		cfg.ItersPerEpoch = shard / cfg.Batch
		if cfg.ItersPerEpoch < 1 {
			cfg.ItersPerEpoch = 1
		}
	}

	p := cfg.Workers
	global := cfg.Model(cfg.Seed) // the server's authoritative parameters
	n := global.NumParams()
	sgd := optim.NewSGD(cfg.LR.LR(0), cfg.Momentum, n)
	serverComp := cfg.NewCompressor() // decode side on the server

	pushes := make(chan push, p)
	// pulls[r] receives a fresh parameter copy for worker r.
	pulls := make([]chan []float32, p)
	for i := range pulls {
		pulls[i] = make(chan []float32, 1)
	}
	workerIters := cfg.Epochs * cfg.ItersPerEpoch
	totalPushes := workerIters * p

	res := &Result{GradSize: n}
	var totalPushBytes float64

	// --- server loop -----------------------------------------------------
	var serverWG sync.WaitGroup
	serverWG.Add(1)
	serverErr := make(chan error, 1)
	go func() {
		defer serverWG.Done()
		grad := make([]float32, n)
		accum := make([]float32, n)
		delta := make([]float32, n)
		var lossSum float64
		var lossCount int
		pending := 0
		applied := 0

		snapshot := func() []float32 {
			return global.GetParams(make([]float32, n))
		}
		// Initial pull for everyone.
		for r := 0; r < p; r++ {
			pulls[r] <- snapshot()
		}

		for applied < totalPushes {
			pu := <-pushes
			totalPushBytes += float64(len(pu.msg))
			if err := serverComp.Decompress(grad, pu.msg); err != nil {
				serverErr <- fmt.Errorf("ps: server decompress: %w", err)
				return
			}
			lossSum += pu.loss
			lossCount++
			applied++
			epoch := (applied - 1) / (cfg.ItersPerEpoch * p)
			sgd.LR = cfg.LR.LR(epoch)

			if cfg.Async {
				// Apply immediately (stale gradient), reply with fresh
				// params. The contribution is scaled by 1/p so one round
				// of p asynchronous pushes moves the parameters as far as
				// one synchronous averaged step — without this, async
				// training at p workers runs at an effective learning
				// rate p times too large and diverges.
				inv := 1 / float32(p)
				for i := range grad {
					grad[i] *= inv
				}
				sgd.Delta(delta, grad)
				global.AddToParams(delta)
				pulls[pu.rank] <- snapshot()
			} else {
				for i, v := range grad {
					accum[i] += v
				}
				pending++
				if pending == p {
					inv := 1 / float32(p)
					for i := range accum {
						accum[i] *= inv
					}
					sgd.Delta(delta, accum)
					global.AddToParams(delta)
					for i := range accum {
						accum[i] = 0
					}
					pending = 0
					fresh := snapshot()
					for r := 0; r < p; r++ {
						pulls[r] <- fresh
					}
				}
			}

			// Epoch bookkeeping on the server.
			if applied%(cfg.ItersPerEpoch*p) == 0 {
				stats := EpochStats{
					Epoch:     epoch,
					TrainLoss: lossSum / float64(lossCount),
					LR:        sgd.LR,
				}
				lossSum, lossCount = 0, 0
				if cfg.Test != nil {
					stats.TestAcc = evaluate(global, cfg.Test, cfg.Batch)
				}
				res.Epochs = append(res.Epochs, stats)
			}
		}
	}()

	// --- workers ----------------------------------------------------------
	var wg sync.WaitGroup
	workerErrs := make([]error, p)
	var computeMu sync.Mutex
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			replica := cfg.Model(cfg.Seed)
			shard := cfg.Train.Shard(rank, p)
			it := data.NewIterator(shard.Len(), cfg.Batch, cfg.Seed+int64(rank)*104729)
			comp := cfg.NewCompressor()
			grad := make([]float32, n)
			loss := nn.SoftmaxCE{}

			for iter := 0; iter < workerIters; iter++ {
				params := <-pulls[rank]
				replica.SetParams(params)

				t0 := time.Now()
				x, labels := shard.Batch(it.Next())
				replica.ZeroGrads()
				logits := replica.Forward(x, true)
				l, dl := loss.Loss(logits, labels)
				replica.Backward(dl)
				replica.FlattenGrads(grad)
				el := time.Since(t0).Seconds()
				if rank == 0 {
					computeMu.Lock()
					res.ComputeSeconds += el
					computeMu.Unlock()
				}

				msg, err := comp.Compress(grad)
				if err != nil {
					workerErrs[rank] = err
					return
				}
				pushes <- push{rank: rank, msg: msg, loss: l}
				if !cfg.Async && iter == workerIters-1 {
					// The final synchronous broadcast is consumed nowhere;
					// drain it so the server can exit cleanly.
					defer func() { <-pulls[rank] }()
				}
			}
		}(rank)
	}
	wg.Wait()
	serverWG.Wait()
	select {
	case err := <-serverErr:
		return nil, err
	default:
	}
	for _, err := range workerErrs {
		if err != nil {
			return nil, err
		}
	}

	res.Iterations = totalPushes
	if totalPushes > 0 {
		res.AvgPushBytes = totalPushBytes / float64(totalPushes)
		res.CompressionRatio = float64(n*4) / res.AvgPushBytes
	}
	if cfg.Fabric != nil {
		perIter := CongestionCost(*cfg.Fabric, p, int(res.AvgPushBytes), n*4)
		res.CommSeconds = perIter * float64(workerIters)
	}
	return res, nil
}

// evaluate computes top-1 accuracy of the global model.
func evaluate(net *nn.Network, test *data.Dataset, batch int) float64 {
	correct := 0.0
	total := 0
	idx := make([]int, 0, batch)
	for s := 0; s < test.Len(); s += batch {
		idx = idx[:0]
		for j := s; j < s+batch && j < test.Len(); j++ {
			idx = append(idx, j)
		}
		x, labels := test.Batch(idx)
		logits := net.Forward(x, false)
		correct += nn.Accuracy(logits, labels) * float64(len(idx))
		total += len(idx)
	}
	if total == 0 {
		return 0
	}
	return correct / float64(total)
}

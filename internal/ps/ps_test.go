package ps

import (
	"math"
	"testing"

	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/dist"
	"fftgrad/internal/feedback"
	"fftgrad/internal/models"
	"fftgrad/internal/netsim"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
)

func blobCfg(seed int64) Config {
	train, test := data.GaussianBlobs(2560, 4, 16, 0.25, seed).Split(2048)
	fabric := netsim.InfiniBandFDR
	return Config{
		Workers: 4, Batch: 16, Epochs: 3, Seed: seed,
		Momentum: 0.9,
		LR:       optim.ConstLR(0.05),
		Model:    func(s int64) *nn.Network { return models.MLP(16, 32, 4, s) },
		Train:    train, Test: test,
		Fabric: &fabric,
	}
}

func TestSyncPSConverges(t *testing.T) {
	res, err := Train(blobCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("epochs %d", len(res.Epochs))
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.TestAcc < 0.9 {
		t.Fatalf("sync PS accuracy %.3f", last.TestAcc)
	}
	if last.TrainLoss >= res.Epochs[0].TrainLoss {
		t.Fatalf("loss did not fall: %v", res.Epochs)
	}
	if res.CommSeconds <= 0 || res.ComputeSeconds <= 0 {
		t.Fatalf("timing missing: comm=%g compute=%g", res.CommSeconds, res.ComputeSeconds)
	}
}

func TestIterationAccounting(t *testing.T) {
	cfg := blobCfg(2)
	cfg.ItersPerEpoch = 10
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Epochs * cfg.ItersPerEpoch * cfg.Workers
	if res.Iterations != want {
		t.Fatalf("pushes %d want %d", res.Iterations, want)
	}
}

func TestSyncPSDeterministic(t *testing.T) {
	a, err := Train(blobCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(blobCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Epochs {
		if a.Epochs[i].TestAcc != b.Epochs[i].TestAcc {
			t.Fatalf("sync PS must be deterministic: epoch %d %.4f vs %.4f",
				i, a.Epochs[i].TestAcc, b.Epochs[i].TestAcc)
		}
	}
}

func TestAsyncPSConverges(t *testing.T) {
	cfg := blobCfg(4)
	cfg.Async = true
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Epochs[len(res.Epochs)-1]
	// Async with stale gradients still converges on this task, though not
	// necessarily to the synchronous accuracy.
	if last.TestAcc < 0.8 {
		t.Fatalf("async PS accuracy %.3f", last.TestAcc)
	}
}

func TestPSWithCompression(t *testing.T) {
	cfg := blobCfg(5)
	cfg.NewCompressor = func() compress.Compressor { return compress.NewFFT(0.5) }
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio < 1.5 {
		t.Fatalf("ratio %.2f", res.CompressionRatio)
	}
	if res.Epochs[len(res.Epochs)-1].TestAcc < 0.85 {
		t.Fatalf("accuracy %.3f", res.Epochs[len(res.Epochs)-1].TestAcc)
	}
	base, err := Train(blobCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSeconds >= base.CommSeconds {
		t.Fatalf("compressed push path should cost less: %g vs %g", res.CommSeconds, base.CommSeconds)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Train(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
}

// The paper's structural claim: the PS star congests at the server while
// BSP's ring spreads volume — at equal message sizes and worker counts,
// the PS per-iteration communication must exceed the ring allreduce cost,
// and the gap must widen with p.
func TestCongestionVsRing(t *testing.T) {
	fabric := netsim.InfiniBandFDR
	m := 6 << 20 // ResNet32-scale gradient
	prevGap := 0.0
	for _, p := range []int{4, 8, 16, 32} {
		star := CongestionCost(fabric, p, m, m)
		ring := fabric.RingAllreduce(p, m)
		if star <= ring {
			t.Fatalf("p=%d: star %.5f should exceed ring %.5f", p, star, ring)
		}
		gap := star / ring
		if gap < prevGap {
			t.Fatalf("congestion gap should widen with p: %.2f then %.2f", prevGap, gap)
		}
		prevGap = gap
	}
}

// Sync PS with FP32 must match BSP training quality on the same task
// (both are exact synchronous SGD; trajectories differ only through
// gradient-averaging order).
func TestSyncPSMatchesBSPQuality(t *testing.T) {
	psRes, err := Train(blobCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	train, test := data.GaussianBlobs(2560, 4, 16, 0.25, 6).Split(2048)
	bspRes, err := dist.Train(dist.Config{
		Workers: 4, Batch: 16, Epochs: 3, Seed: 6,
		Momentum: 0.9,
		LR:       optim.ConstLR(0.05),
		Model:    func(s int64) *nn.Network { return models.MLP(16, 32, 4, s) },
		Train:    train, Test: test,
	})
	if err != nil {
		t.Fatal(err)
	}
	pa := psRes.Epochs[len(psRes.Epochs)-1].TestAcc
	ba := bspRes.Epochs[len(bspRes.Epochs)-1].TestAcc
	if math.Abs(pa-ba) > 0.05 {
		t.Fatalf("sync PS %.3f and BSP %.3f should agree", pa, ba)
	}
}

// PS composes with the feedback wrappers: each worker owns a stateful
// compressor instance and the server decodes with a stateless one.
func TestPSWithErrorFeedback(t *testing.T) {
	cfg := blobCfg(7)
	cfg.Momentum = 0
	cfg.NewCompressor = func() compress.Compressor {
		return feedback.New(compress.NewTopK(0.95))
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[len(res.Epochs)-1].TestAcc < 0.8 {
		t.Fatalf("PS + error feedback accuracy %.3f", res.Epochs[len(res.Epochs)-1].TestAcc)
	}
}

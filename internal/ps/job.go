package ps

import (
	"fftgrad/internal/dist"
)

// NewJob binds c to the parameter-server execution backend, the second
// implementation of the training service's dist.Job abstraction. Harness
// wiring overlays the config at Run, so a scheduler reuses one validated
// config under per-job observability — same contract as the BSP side.
func (c Config) NewJob() dist.Job { return psJob{cfg: c} }

type psJob struct{ cfg Config }

func (j psJob) Backend() string { return "ps" }

func (j psJob) Workers() int {
	if j.cfg.Workers < 1 {
		return 1
	}
	return j.cfg.Workers
}

// Tracks reserves one timeline track per worker plus one for the server,
// whose decompress/update spans land on track Workers.
func (j psJob) Tracks() int { return j.Workers() + 1 }

func (j psJob) Run(h dist.JobHarness) (*dist.JobResult, error) {
	cfg := j.cfg
	if h.Stop != nil {
		cfg.Stop = h.Stop
	}
	if h.OnEpoch != nil {
		fn := h.OnEpoch
		cfg.OnEpoch = func(s EpochStats) {
			fn(dist.EpochStats{
				Epoch:     s.Epoch,
				TrainLoss: s.TrainLoss,
				TestAcc:   s.TestAcc,
				LR:        s.LR,
			})
		}
	}
	if h.Telemetry != nil {
		cfg.Telemetry = h.Telemetry
	}
	if h.Tracer != nil {
		cfg.Tracer = h.Tracer
	}
	if h.Resume != nil {
		cfg.Resume = h.Resume
	}
	cfg.CaptureFinal = cfg.CaptureFinal || h.CaptureFinal
	res, err := Train(cfg)
	if err != nil {
		return nil, err
	}
	out := &dist.JobResult{
		Iterations:       res.Iterations,
		GradSize:         res.GradSize,
		AvgMsgBytes:      res.AvgPushBytes,
		CompressionRatio: res.CompressionRatio,
		ComputeSeconds:   res.ComputeSeconds,
		CommSeconds:      res.CommSeconds,
		Halted:           res.Halted,
		Final:            res.Final,
		Telemetry:        res.Telemetry,
	}
	for _, e := range res.Epochs {
		out.Epochs = append(out.Epochs, dist.EpochStats{
			Epoch:     e.Epoch,
			TrainLoss: e.TrainLoss,
			TestAcc:   e.TestAcc,
			LR:        e.LR,
		})
	}
	return out, nil
}

// Package prefix implements sequential and parallel prefix sums (scans).
//
// The paper's sparse-packing algorithm (Sec. 3.2) performs a parallel
// prefix sum on the status vector to compute the output location of every
// surviving element; on a V100 the authors report a 689x speedup over the
// single-threaded scan. The parallel implementation here is the classic
// blocked two-pass scan: per-block local sums, an exclusive scan over block
// totals, then a per-block local scan seeded with the block offset.
package prefix

import "fftgrad/internal/parallel"

// grain is the minimum per-block element count for the parallel scan; two
// passes over the data mean parallelism needs a larger grain than a map-style
// kernel to pay off.
const grain = 8192

// SumInt32Serial writes the inclusive prefix sum of src into dst and
// returns the total. dst and src may alias. len(dst) must equal len(src).
func SumInt32Serial(dst, src []int32) int32 {
	var acc int32
	for i, v := range src {
		acc += v
		dst[i] = acc
	}
	return acc
}

// SumInt32 writes the inclusive prefix sum of src into dst in parallel and
// returns the total. dst and src may alias. len(dst) must equal len(src).
func SumInt32(dst, src []int32) int32 {
	n := len(src)
	if len(dst) != n {
		panic("prefix: len(dst) != len(src)")
	}
	blocks := parallel.Chunks(n, grain)
	if len(blocks) <= 1 {
		return SumInt32Serial(dst, src)
	}

	// Pass 1: each block computes its local total.
	totals := make([]int32, len(blocks))
	parallel.ForGrain(len(blocks), 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			var acc int32
			for i := blocks[b][0]; i < blocks[b][1]; i++ {
				acc += src[i]
			}
			totals[b] = acc
		}
	})

	// Exclusive scan over block totals (small, serial).
	var running int32
	offsets := make([]int32, len(blocks))
	for b, t := range totals {
		offsets[b] = running
		running += t
	}

	// Pass 2: per-block inclusive scan seeded with the block offset.
	parallel.ForGrain(len(blocks), 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			acc := offsets[b]
			for i := blocks[b][0]; i < blocks[b][1]; i++ {
				acc += src[i]
				dst[i] = acc
			}
		}
	})
	return running
}

// CountBits computes the inclusive prefix sum of the bits of a bitmap:
// dst[i] = number of set bits in bitmap[0..i] (treating the bitmap as a bit
// vector of length n). It returns the population count. This is the exact
// scan the packing algorithm needs when the status vector is stored as a
// bitmap rather than one int per element.
func CountBits(dst []int32, bitmap []uint64, n int) int32 {
	if len(dst) != n {
		panic("prefix: len(dst) != n")
	}
	src := make([]int32, n)
	parallel.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if bitmap[i>>6]&(1<<(uint(i)&63)) != 0 {
				src[i] = 1
			}
		}
	})
	return SumInt32(dst, src)
}

package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumInt32MatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 100, 8191, 8192, 8193, 1 << 18} {
		src := make([]int32, n)
		for i := range src {
			src[i] = int32(r.Intn(5))
		}
		want := make([]int32, n)
		wTot := SumInt32Serial(want, src)
		got := make([]int32, n)
		gTot := SumInt32(got, src)
		if gTot != wTot {
			t.Fatalf("n=%d total %d != %d", n, gTot, wTot)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d index %d: %d != %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestSumInt32Aliased(t *testing.T) {
	src := []int32{1, 2, 3, 4, 5}
	SumInt32(src, src)
	want := []int32{1, 3, 6, 10, 15}
	for i := range want {
		if src[i] != want[i] {
			t.Fatalf("aliased scan wrong at %d: %d != %d", i, src[i], want[i])
		}
	}
}

func TestSumInt32LengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	SumInt32(make([]int32, 3), make([]int32, 4))
}

// Property: the last element of an inclusive scan equals the sum, and the
// scan is monotone for non-negative input.
func TestScanProperties(t *testing.T) {
	f := func(vals []uint8) bool {
		src := make([]int32, len(vals))
		var sum int32
		for i, v := range vals {
			src[i] = int32(v)
			sum += int32(v)
		}
		dst := make([]int32, len(src))
		tot := SumInt32(dst, src)
		if tot != sum {
			return false
		}
		prev := int32(0)
		for _, v := range dst {
			if v < prev {
				return false
			}
			prev = v
		}
		return len(dst) == 0 || dst[len(dst)-1] == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountBits(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 100001
	bitmap := make([]uint64, (n+63)/64)
	want := make([]int32, n)
	var acc int32
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			bitmap[i>>6] |= 1 << (uint(i) & 63)
			acc++
		}
		want[i] = acc
	}
	dst := make([]int32, n)
	tot := CountBits(dst, bitmap, n)
	if tot != acc {
		t.Fatalf("popcount %d != %d", tot, acc)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("index %d: %d != %d", i, dst[i], want[i])
		}
	}
}

func BenchmarkSumInt32Serial(b *testing.B) {
	src := make([]int32, 1<<22)
	for i := range src {
		src[i] = int32(i & 1)
	}
	dst := make([]int32, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumInt32Serial(dst, src)
	}
}

func BenchmarkSumInt32Parallel(b *testing.B) {
	src := make([]int32, 1<<22)
	for i := range src {
		src[i] = int32(i & 1)
	}
	dst := make([]int32, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumInt32(dst, src)
	}
}

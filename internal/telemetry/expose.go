package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"time"
)

// splitName separates a metric name from its optional Prometheus label
// suffix: `foo{bar="x"}` → ("foo", `{bar="x"}`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// labelJoin merges a metric's registered labels with an extra label pair
// (used for histogram `le` labels).
func labelJoin(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4). Metrics sharing a base name (same metric,
// different label sets) get one HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WritePrometheusLabeled(w, "")
}

// WritePrometheusLabeled is WritePrometheus with an extra label pair
// (e.g. `job="j-42"`) merged into every sample's label set. The job
// service uses it to expose many per-job registries on one /metrics
// endpoint with tenant-distinguishable series.
func (r *Registry) WritePrometheusLabeled(w io.Writer, extra string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	relabel := func(labels string) string {
		if extra == "" {
			return labels
		}
		return labelJoin(labels, extra)
	}
	seen := make(map[string]bool)
	for _, name := range r.order {
		base, labels := splitName(name)
		m := r.byName[name]
		typ, help := "gauge", ""
		switch mm := m.(type) {
		case *Counter:
			typ, help = "counter", mm.help
		case *Gauge:
			help = mm.help
		case *gaugeFunc:
			help = mm.help
		case *Histogram:
			typ, help = "histogram", mm.help
		}
		if !seen[base] {
			seen[base] = true
			if help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ); err != nil {
				return err
			}
		}
		labels = relabel(labels)
		switch mm := m.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, labels, mm.Total()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", base, labels, formatFloat(mm.Value())); err != nil {
				return err
			}
		case *gaugeFunc:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", base, labels, formatFloat(mm.fn())); err != nil {
				return err
			}
		case *Histogram:
			cum := uint64(0)
			for i, b := range mm.bounds {
				cum += mm.buckets[i].Load()
				le := labelJoin(labels, fmt.Sprintf("le=%q", formatFloat(b)))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, le, cum); err != nil {
					return err
				}
			}
			cum += mm.buckets[len(mm.bounds)].Load()
			le := labelJoin(labels, `le="+Inf"`)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, le, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				base, labels, formatFloat(mm.Sum()), base, labels, mm.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects (no exponent
// for integral values in the common range, +Inf spelled out).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteJSON renders the registry snapshot as a flat JSON object, one
// entry per metric (histograms as _count/_sum pairs), keys sorted.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler returns an http.Handler serving the registry:
//
//	GET /metrics       Prometheus text format
//	GET /metrics.json  flat JSON snapshot
//	GET /healthz       "ok"
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})
	return mux
}

// Serve starts an HTTP metrics endpoint on addr (e.g. ":9090"). It
// returns the bound address (useful with ":0") and a shutdown function.
func Serve(addr string, r *Registry) (bound string, shutdown func() error, err error) {
	return ServeHandler(addr, r.Handler())
}

// ServeHandler is Serve with a caller-composed handler — the trainer
// uses it to mount /trace and the optional pprof handlers on the same
// mux as the registry endpoints.
//
// The returned shutdown drains gracefully: it stops accepting new
// connections and gives in-flight requests (a scrape mid-render, a
// flight-recorder dump download) up to two seconds to finish before
// closing hard, so a trainer exiting on SIGTERM no longer truncates the
// final response on the wire.
func ServeHandler(addr string, h http.Handler) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	shutdown = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
		return nil
	}
	return ln.Addr().String(), shutdown, nil
}

package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterShardedSum(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "test")
	for rank := 0; rank < 40; rank++ {
		c.Add(rank, rank+1)
	}
	want := uint64(40 * 41 / 2)
	if got := c.Total(); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	c.Add(0, -5) // negative deltas ignored
	if got := c.Total(); got != want {
		t.Fatalf("Total after negative Add = %d, want %d", got, want)
	}
}

func TestGetOrCreateSharesInstances(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("shared_total", "h")
	b := reg.Counter("shared_total", "h")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	g1 := reg.Gauge("g", "h")
	g2 := reg.Gauge("g", "h")
	if g1 != g2 {
		t.Fatal("same name returned distinct gauges")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type re-registration did not panic")
		}
	}()
	reg.Gauge("shared_total", "h")
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "h", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 6.055; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrency hammers every metric type from many goroutines;
// it is the -race CI gate for the lock-free update paths.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	st := NewStageTimer()
	st.Register(reg)
	c := reg.Counter("conc_total", "h")
	g := reg.Gauge("conc_gauge", "h")
	h := reg.Histogram("conc_hist", "h", []float64{1, 10, 100})

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(rank, 1)
				g.Set(float64(i))
				h.Observe(float64(i % 200))
				st.ObserveStage(Stage(i%int(NumStages)), 1024, 1e-6)
				if i%500 == 0 { // concurrent exposition against updates
					_ = reg.WritePrometheus(io.Discard)
					_ = reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Total(); got != workers*iters {
		t.Fatalf("counter lost updates: %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram lost updates: %d, want %d", got, workers*iters)
	}
	var total int64
	for s := Stage(0); s < NumStages; s++ {
		total += st.Samples(s)
	}
	if total != workers*iters {
		t.Fatalf("stage timer lost updates: %d, want %d", total, workers*iters)
	}
}

func TestStageTimerRates(t *testing.T) {
	st := NewStageTimer()
	if st.Rate(StageConvert) != 0 {
		t.Fatal("unobserved stage should report 0 rate")
	}
	st.ObserveStage(StageConvert, 1000, 1e-3) // 1 MB/s
	if got := st.Rate(StageConvert); math.Abs(got-1e6) > 1 {
		t.Fatalf("first observation should seed the EWMA: got %g", got)
	}
	st.ObserveStage(StageConvert, 2000, 1e-3) // 2 MB/s
	want := 1e6 + ewmaAlpha*(2e6-1e6)
	if got := st.Rate(StageConvert); math.Abs(got-want) > 1 {
		t.Fatalf("EWMA = %g, want %g", got, want)
	}
	if got := st.MeanRate(StageConvert); math.Abs(got-1.5e6) > 1 {
		t.Fatalf("MeanRate = %g, want 1.5e6", got)
	}
	// Degenerate inputs are ignored.
	st.ObserveStage(StageConvert, 0, 1)
	st.ObserveStage(StageConvert, 10, 0)
	st.ObserveStage(NumStages, 10, 1)
	if got := st.Samples(StageConvert); got != 2 {
		t.Fatalf("Samples = %d, want 2", got)
	}
	// A nil timer is a no-op everywhere.
	var nilT *StageTimer
	nilT.ObserveStage(StageConvert, 10, 1)
	nilT.ObserveSince(StageConvert, 10, time.Now())
	if nilT.Rate(StageConvert) != 0 || nilT.Samples(StageComm) != 0 {
		t.Fatal("nil timer should report zeros")
	}
}

func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StageConvert: "tm", StageTransform: "tf", StagePack: "tp",
		StageSelect: "ts", StageComm: "comm",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
}

func TestPrometheusAndJSONExposition(t *testing.T) {
	reg := NewRegistry()
	st := NewStageTimer()
	st.ObserveStage(StageConvert, 4096, 1e-3)
	st.Register(reg)
	reg.Counter(`comm_tx_bytes_total{transport="inproc"}`, "bytes sent").Add(0, 123)
	reg.Gauge("theta", "drop ratio").Set(0.85)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE comm_tx_bytes_total counter",
		`comm_tx_bytes_total{transport="inproc"} 123`,
		"theta 0.85",
		`fftgrad_stage_throughput_bytes_per_second{stage="tm"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per base name even with several label sets.
	if got := strings.Count(out, "# TYPE fftgrad_stage_throughput_bytes_per_second"); got != 1 {
		t.Errorf("expected exactly one TYPE header for the stage gauge, got %d", got)
	}

	snap := reg.Snapshot()
	if snap[`comm_tx_bytes_total{transport="inproc"}`] != 123 {
		t.Errorf("snapshot missing counter: %v", snap)
	}
	if v := snap[`fftgrad_stage_throughput_bytes_per_second{stage="tm"}`]; math.Abs(v-4.096e6) > 1 {
		t.Errorf("snapshot stage gauge = %g, want ~4.096e6", v)
	}
}

func TestHTTPEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "h").Add(0, 7)
	addr, shutdown, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "hits_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"hits_total": 7`) {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}
	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q", body)
	}
}

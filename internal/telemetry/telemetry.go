// Package telemetry is the live measurement layer of the system: a
// lock-free metrics registry (counters, gauges, fixed-bucket histograms)
// plus the StageTimer that measures the Sec. 3.3 cost terms (Tm, Tf, Tp,
// Ts and the communication rate) inside the running compression pipeline
// and collectives.
//
// The paper's performance model (perfmodel, Eq. 1-4) is only as good as
// the throughputs fed into it; Table 1 of the paper was measured offline.
// This package measures the same terms online so the adapt controller can
// re-evaluate "does compression pay off here?" every iteration against
// the fabric the job is actually running on.
//
// Design constraints:
//
//   - Allocation-free hot path. Registration (which allocates) happens at
//     setup; Add/Set/Observe afterwards are pure atomics, so the
//     compress-pipeline 0 allocs/op gate holds with telemetry enabled.
//   - Lock-free updates. Counters are sharded by rank (padded to cache
//     lines) so p workers incrementing the same counter do not contend;
//     gauges and histogram buckets are single atomics.
//   - Exposition is cold-path: Prometheus text and JSON renderings walk
//     the registry under its registration lock and may allocate freely.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// numShards is the counter shard count; rank r updates shard r&(numShards-1).
// A power of two so the index is a mask, sized for typical worker counts.
const numShards = 16

// shard is one cache-line-padded counter cell.
type shard struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes against false sharing
}

// Counter is a monotonically increasing sharded counter. The zero value is
// not usable; obtain one from Registry.Counter.
type Counter struct {
	name, help string
	shards     [numShards]shard
}

// Add increments the counter by n on the caller's rank shard. Negative n
// is ignored (counters are monotone).
func (c *Counter) Add(rank, n int) {
	if c == nil || n <= 0 {
		return
	}
	c.shards[rank&(numShards-1)].v.Add(uint64(n))
}

// Inc increments the counter by one on the caller's rank shard.
func (c *Counter) Inc(rank int) { c.Add(rank, 1) }

// Total returns the sum over all shards.
func (c *Counter) Total() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is an instantaneous float64 value. The zero value is not usable;
// obtain one from Registry.Gauge.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// gaugeFunc is a read-on-exposition gauge backed by a callback.
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

// Histogram is a fixed-bucket histogram. Bucket bounds are set at
// registration and never change; Observe is a bounds scan plus three
// atomic updates — no locks, no allocation.
type Histogram struct {
	name, help string
	bounds     []float64 // strictly increasing upper bounds; +Inf implied
	buckets    []atomic.Uint64
	count      atomic.Uint64
	sumBits    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := len(h.bounds) // overflow bucket
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	addFloatAtomic(&h.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// by linear interpolation inside the covering bucket — the same estimate
// Prometheus' histogram_quantile computes server-side, available here so
// in-process consumers (the profiler's blame ledger, /debug/status) can
// report rolling percentiles without an exposition round-trip. Returns
// NaN when the histogram holds no samples; samples in the +Inf overflow
// bucket clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n > 0 && cum+n >= target {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // overflow bucket: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*((target-cum)/n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// addFloatAtomic CAS-adds v to the float64 stored in bits.
func addFloatAtomic(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Registry owns a namespace of metrics. Registration takes a lock and
// allocates; it is get-or-create, so independent subsystems can ask for
// the same metric name and share the instance. The zero value is not
// usable; use NewRegistry.
type Registry struct {
	mu     sync.Mutex
	byName map[string]interface{}
	order  []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]interface{})}
}

// Counter returns the counter registered under name, creating it if
// needed. name may carry a Prometheus label suffix, e.g.
// `comm_tx_bytes_total{transport="tcp"}`. Panics if name is already
// registered as a different metric type (a programming error).
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time — zero hot-path cost for values that are already maintained
// elsewhere (EWMAs, controller state). Re-registering the same name
// replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*gaugeFunc)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
		}
		g.fn = fn
		return
	}
	r.register(name, &gaugeFunc{name: name, help: help, fn: fn})
}

// Histogram returns the histogram registered under name, creating it with
// the given strictly-increasing upper bucket bounds if needed (an +Inf
// overflow bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not increasing at %d", name, i))
		}
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(name, h)
	return h
}

// register stores m under name; callers hold r.mu.
func (r *Registry) register(name string, m interface{}) {
	r.byName[name] = m
	r.order = append(r.order, name)
	sort.Strings(r.order)
}

// Snapshot is a point-in-time flattening of every metric to float64s —
// the end-of-run record dist.Result carries. Histograms contribute
// `<name>_count` and `<name>_sum` entries.
type Snapshot map[string]float64

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.order))
	for _, name := range r.order {
		switch m := r.byName[name].(type) {
		case *Counter:
			s[name] = float64(m.Total())
		case *Gauge:
			s[name] = m.Value()
		case *gaugeFunc:
			s[name] = m.fn()
		case *Histogram:
			s[name+"_count"] = float64(m.Count())
			s[name+"_sum"] = m.Sum()
		}
	}
	return s
}

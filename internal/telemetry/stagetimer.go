package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Stage identifies one cost term of the Sec. 3.3 model. The first four
// map onto the paper's Table 1 primitive throughputs; StageComm is the
// effective rate of the gradient exchange itself (bytes of compressed
// message per second of collective time), the live analogue of Tcomm.
type Stage uint8

const (
	// StageConvert is Tm: precision conversion (fp32↔fp16 round trips,
	// f32↔f64 widening for the transform, range-quantizer encode/decode).
	StageConvert Stage = iota
	// StageTransform is Tf: the forward or inverse FFT/DCT.
	StageTransform
	// StagePack is Tp: sparse gather/scatter and wire (de)serialization.
	StagePack
	// StageSelect is Ts: top-k threshold selection (magnitudes + mask).
	StageSelect
	// StageComm is the exchange: per-rank message bytes over collective
	// seconds, measured (TCP/in-process wall time) or modeled (netsim).
	StageComm
	// NumStages is the number of stages; not itself a stage.
	NumStages
)

// String returns the short label used in metric names ("tm", "tf", ...).
func (s Stage) String() string {
	switch s {
	case StageConvert:
		return "tm"
	case StageTransform:
		return "tf"
	case StagePack:
		return "tp"
	case StageSelect:
		return "ts"
	case StageComm:
		return "comm"
	}
	return "unknown"
}

// ewmaAlpha is the smoothing factor of the per-stage rate EWMAs: new
// rates move the estimate 20% of the way, so a transient (GC pause, OS
// scheduling hiccup) decays within a handful of iterations while a real
// fabric or pipeline change settles in well under an epoch.
const ewmaAlpha = 0.2

// ewmaFloat is a lock-free exponentially weighted moving average.
type ewmaFloat struct{ bits atomic.Uint64 }

func (e *ewmaFloat) update(v float64) {
	for {
		old := e.bits.Load()
		cur := math.Float64frombits(old)
		var nv float64
		if old == 0 { // first sample (rates are positive, so 0.0 means unset)
			nv = v
		} else {
			nv = cur + ewmaAlpha*(v-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

func (e *ewmaFloat) value() float64 { return math.Float64frombits(e.bits.Load()) }

// EWMA is the exported form of the lock-free exponentially weighted
// moving average the StageTimer uses internally — for callers (the
// cluster runtime's per-peer lag and RTT trackers) that need the same
// allocation-free, atomic estimator outside a StageTimer. A nil *EWMA is
// valid; Update is a no-op and Value returns 0.
type EWMA struct{ e ewmaFloat }

// NewEWMA returns an empty estimator.
func NewEWMA() *EWMA { return &EWMA{} }

// Update folds sample v into the average (first sample initializes it).
func (e *EWMA) Update(v float64) {
	if e == nil {
		return
	}
	e.e.update(v)
}

// Value returns the current estimate, 0 when no sample has arrived.
func (e *EWMA) Value() float64 {
	if e == nil {
		return 0
	}
	return e.e.value()
}

// StageSink receives a copy of every stage observation made through a
// StageTimer that carries one — the seam through which per-rank tracing
// sees compressor-internal stage timings without the compressors knowing
// about tracing. Implementations must be cheap and allocation-free on
// the steady-state path (the 0 allocs/op gates measure through them).
type StageSink interface {
	StageSpan(s Stage, bytes int, start time.Time, dur time.Duration)
}

// stageTimerCore holds the shared measurement state. Several StageTimer
// handles (the base timer plus per-worker WithSink derivations) point at
// one core, so every worker's observations feed the same EWMAs and
// totals regardless of which handle recorded them.
type stageTimerCore struct {
	rate    [NumStages]ewmaFloat // bytes/sec EWMA
	nanos   [NumStages]atomic.Int64
	bytes   [NumStages]atomic.Int64
	samples [NumStages]atomic.Int64
}

// StageTimer measures the live throughput of each pipeline stage. One
// instance is shared by every worker's compressor and by the trainer's
// exchange loop; all updates are atomic and allocation-free, so the
// steady-state 0 allocs/op gate holds with a timer attached.
//
// A nil *StageTimer is valid and every method on it is a no-op, so
// instrumented code paths need no nil checks at call sites.
type StageTimer struct {
	core *stageTimerCore
	sink StageSink
}

// NewStageTimer creates an empty stage timer.
func NewStageTimer() *StageTimer { return &StageTimer{core: &stageTimerCore{}} }

// WithSink returns a handle sharing this timer's measurement state that
// additionally forwards every observation to sink — one handle per
// worker gives its observations rank attribution while the EWMAs stay
// global. A nil receiver yields a fresh standalone timer (so tracing
// works even when no shared timer was configured); a nil sink returns
// the receiver unchanged.
func (t *StageTimer) WithSink(sink StageSink) *StageTimer {
	if t == nil {
		if sink == nil {
			return nil
		}
		return &StageTimer{core: &stageTimerCore{}, sink: sink}
	}
	if sink == nil {
		return t
	}
	return &StageTimer{core: t.core, sink: sink}
}

// ObserveStage records that stage s processed n bytes in the given number
// of seconds. Non-positive inputs are ignored.
func (t *StageTimer) ObserveStage(s Stage, n int, seconds float64) {
	if t == nil || s >= NumStages || n <= 0 || seconds <= 0 {
		return
	}
	t.core.observe(s, n, seconds)
	if t.sink != nil {
		d := time.Duration(seconds * 1e9)
		t.sink.StageSpan(s, n, time.Now().Add(-d), d)
	}
}

// ObserveSince is ObserveStage with the duration measured from start —
// the form the in-pipeline hooks use: t0 := time.Now(); ...stage...;
// timer.ObserveSince(stage, bytes, t0).
func (t *StageTimer) ObserveSince(s Stage, n int, start time.Time) {
	if t == nil || s >= NumStages || n <= 0 {
		return
	}
	d := time.Since(start)
	if d <= 0 {
		return
	}
	t.core.observe(s, n, d.Seconds())
	if t.sink != nil {
		t.sink.StageSpan(s, n, start, d)
	}
}

func (c *stageTimerCore) observe(s Stage, n int, seconds float64) {
	c.rate[s].update(float64(n) / seconds)
	c.nanos[s].Add(int64(seconds * 1e9))
	c.bytes[s].Add(int64(n))
	c.samples[s].Add(1)
}

// Rate returns the EWMA throughput of stage s in bytes/second, or 0 when
// the stage has never been observed.
func (t *StageTimer) Rate(s Stage) float64 {
	if t == nil || s >= NumStages {
		return 0
	}
	return t.core.rate[s].value()
}

// MeanRate returns the lifetime mean throughput (total bytes over total
// seconds), or 0 when unobserved. Less reactive than Rate but immune to
// EWMA startup transients; the perfguide calibration uses it.
func (t *StageTimer) MeanRate(s Stage) float64 {
	if t == nil || s >= NumStages {
		return 0
	}
	ns := t.core.nanos[s].Load()
	if ns <= 0 {
		return 0
	}
	return float64(t.core.bytes[s].Load()) / (float64(ns) / 1e9)
}

// Samples returns how many observations stage s has received.
func (t *StageTimer) Samples(s Stage) int64 {
	if t == nil || s >= NumStages {
		return 0
	}
	return t.core.samples[s].Load()
}

// TotalSeconds returns the cumulative measured time of stage s.
func (t *StageTimer) TotalSeconds(s Stage) float64 {
	if t == nil || s >= NumStages {
		return 0
	}
	return float64(t.core.nanos[s].Load()) / 1e9
}

// Register exposes the timer on reg: one EWMA throughput gauge, one bytes
// counter-gauge and one seconds counter-gauge per stage, all labeled by
// stage name. Exposition reads go through GaugeFunc, so registering adds
// no hot-path cost.
func (t *StageTimer) Register(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	for s := Stage(0); s < NumStages; s++ {
		s := s
		reg.GaugeFunc(
			"fftgrad_stage_throughput_bytes_per_second{stage=\""+s.String()+"\"}",
			"EWMA throughput of one compression-pipeline stage (Sec. 3.3 cost term)",
			func() float64 { return t.Rate(s) })
		reg.GaugeFunc(
			"fftgrad_stage_bytes_total{stage=\""+s.String()+"\"}",
			"total bytes processed by one pipeline stage",
			func() float64 { return float64(t.core.bytes[s].Load()) })
		reg.GaugeFunc(
			"fftgrad_stage_seconds_total{stage=\""+s.String()+"\"}",
			"total measured seconds spent in one pipeline stage",
			func() float64 { return t.TotalSeconds(s) })
	}
}

// Package topk implements k-th order-statistic selection used to threshold
// gradients (spatial Top-k sparsification) and gradient frequencies
// (FFT-based sparsification).
//
// The paper implements the selection with either sorting or a GPU k-select;
// it cites bucketSelect (Alabi et al., 2012). This package provides three
// interchangeable strategies with identical semantics:
//
//   - KthLargest: iterative quickselect with median-of-three pivots, O(n)
//     expected time, operating on a scratch copy.
//   - KthLargestBucket: the bucketSelect analogue — a parallel histogram
//     over the value range, recursing into the bucket containing the k-th
//     element. Data-parallel and cache-friendly for large n.
//   - KthLargestSort: full sort, O(n log n); the reference used in tests.
package topk

import (
	"sort"

	"fftgrad/internal/parallel"
	"fftgrad/internal/scratch"
)

// KthLargestSort returns the k-th largest element (1-based, so k=1 is the
// maximum) of x by full sorting. It is the reference implementation.
func KthLargestSort(x []float64, k int) float64 {
	checkK(len(x), k)
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return s[len(s)-k]
}

// KthLargest returns the k-th largest element (1-based) of x using
// iterative quickselect on a pooled scratch copy. Expected O(n); x is not
// modified, and the steady state allocates nothing.
func KthLargest(x []float64, k int) float64 {
	checkK(len(x), k)
	return kthLargestScratch(x, k)
}

// kthLargestScratch runs quickselect on a pooled copy of x.
func kthLargestScratch(x []float64, k int) float64 {
	sb := scratch.Float64s(len(x))
	defer scratch.PutFloat64s(sb)
	s := *sb
	copy(s, x)
	return kthLargestInPlace(s, k)
}

// kthLargestInPlace selects the k-th largest element, reordering s.
func kthLargestInPlace(s []float64, k int) float64 {
	// Select index len-k in ascending order.
	target := len(s) - k
	lo, hi := 0, len(s)-1
	for lo < hi {
		p := partition(s, lo, hi)
		switch {
		case p == target:
			return s[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return s[target]
}

// partition performs Hoare-style partitioning around a median-of-three
// pivot and returns the final pivot index (Lomuto placement).
func partition(s []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// median of three to s[hi]
	if s[mid] < s[lo] {
		s[mid], s[lo] = s[lo], s[mid]
	}
	if s[hi] < s[lo] {
		s[hi], s[lo] = s[lo], s[hi]
	}
	if s[hi] < s[mid] {
		s[hi], s[mid] = s[mid], s[hi]
	}
	s[mid], s[hi] = s[hi], s[mid]
	pivot := s[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if s[j] < pivot {
			s[i], s[j] = s[j], s[i]
			i++
		}
	}
	s[i], s[hi] = s[hi], s[i]
	return i
}

// bucketCount is the histogram width per refinement round of the
// bucket-select strategy.
const bucketCount = 1024

// KthLargestBucket returns the k-th largest element (1-based) of x using
// iterative range-refinement with parallel histograms (the CPU analogue of
// GPU bucketSelect). Exact: it terminates by scanning the final bucket.
// x is not modified; all temporaries come from the scratch pools, so the
// steady state allocates nothing beyond goroutine startup.
func KthLargestBucket(x []float64, k int) float64 {
	checkK(len(x), k)

	lo, hi := parMinMax(x)
	if lo == hi {
		return lo
	}
	// remaining = how many of the largest elements we still need to skip
	// inside the current [lo, hi] range.
	remaining := k
	cur := x
	// Two pooled buffers alternate as gather target: cur aliases one while
	// the refinement pass fills the other.
	var hold, spare *[]float64
	defer func() {
		if hold != nil {
			scratch.PutFloat64s(hold)
		}
		if spare != nil {
			scratch.PutFloat64s(spare)
		}
	}()

	for round := 0; ; round++ {
		width := (hi - lo) / bucketCount
		if width <= 0 || len(cur) <= 4096 || round > 64 {
			// Degenerate range or small candidate set: finish exactly.
			return kthLargestScratch(cur, remaining)
		}
		// One division per round instead of one per element: binning
		// multiplies by the reciprocal. Any consistent partition is
		// correct (the k-th element is found by exact scan of the final
		// bucket), so the reciprocal's rounding is harmless as long as
		// the histogram and the gather below share it.
		invWidth := 1 / width
		var hist [bucketCount]int64
		histogram(&hist, cur, lo, invWidth)
		// Walk buckets from the top (largest values) down.
		b := bucketCount - 1
		for ; b >= 0; b-- {
			if int(hist[b]) >= remaining {
				break
			}
			remaining -= int(hist[b])
		}
		if b < 0 {
			// Numerical edge (all counted); fall back.
			return kthLargestScratch(cur, k)
		}
		bLo := lo + float64(b)*width
		bHi := bLo + width
		if b == bucketCount-1 {
			bHi = hi
		}
		// Gather the candidates of bucket b — with the same bucketOf the
		// histogram used, so the gathered count always equals hist[b].
		// Re-testing with range comparisons would disagree with bucketOf
		// at bucket edges (the binning arithmetic rounds differently than
		// the bLo/bHi comparisons), and with heavy ties sitting exactly
		// on an edge the whole counted population could fall outside the
		// range, leaving an empty candidate set while remaining > 0.
		if spare == nil || cap(*spare) < len(cur) {
			if spare != nil {
				scratch.PutFloat64s(spare)
			}
			spare = scratch.Float64s(len(cur))
		}
		gathered := (*spare)[:0]
		for _, v := range cur {
			if bucketOf(v, lo, invWidth) == b {
				gathered = append(gathered, v)
			}
		}
		if len(gathered) == len(cur) || len(gathered) == 0 {
			// No progress (heavy ties) or a numerical edge; finish exactly.
			return kthLargestScratch(cur, remaining)
		}
		*spare = gathered
		cur = gathered
		hold, spare = spare, hold
		lo, hi = bLo, bHi
	}
}

// histogram bins cur into bucketCount buckets starting at lo with bucket
// width 1/invWidth, in parallel. Values above the last bucket edge (the
// maximum) are clamped into the top bucket.
func histogram(hist *[bucketCount]int64, cur []float64, lo, invWidth float64) {
	chunks, size := parallel.Plan(len(cur), 16384)
	if chunks <= 1 {
		for _, v := range cur {
			hist[bucketOf(v, lo, invWidth)]++
		}
		return
	}
	partialb := scratch.Ints(chunks * bucketCount)
	defer scratch.PutInts(partialb)
	partial := *partialb
	for i := range partial {
		partial[i] = 0
	}
	parallel.ForGrain(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			h := partial[c*bucketCount : (c+1)*bucketCount]
			ilo, ihi := parallel.ChunkBounds(c, size, len(cur))
			for i := ilo; i < ihi; i++ {
				h[bucketOf(cur[i], lo, invWidth)]++
			}
		}
	})
	for c := 0; c < chunks; c++ {
		for b := 0; b < bucketCount; b++ {
			hist[b] += int64(partial[c*bucketCount+b])
		}
	}
}

// bucketOf maps v into [0, bucketCount) for a histogram starting at lo
// with bucket width 1/invWidth, clamping outliers into the end buckets.
func bucketOf(v, lo, invWidth float64) int {
	b := int((v - lo) * invWidth)
	if b < 0 {
		b = 0
	}
	if b >= bucketCount {
		b = bucketCount - 1
	}
	return b
}

func parMinMax(x []float64) (lo, hi float64) {
	chunks, size := parallel.Plan(len(x), 16384)
	if chunks <= 1 {
		lo, hi = x[0], x[0]
		for _, v := range x[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi
	}
	// One pooled buffer holds the per-chunk minima then maxima.
	extb := scratch.Float64s(2 * chunks)
	defer scratch.PutFloat64s(extb)
	los, his := (*extb)[:chunks], (*extb)[chunks:]
	parallel.ForGrain(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			ilo, ihi := parallel.ChunkBounds(c, size, len(x))
			l, h := x[ilo], x[ilo]
			for i := ilo + 1; i < ihi; i++ {
				v := x[i]
				if v < l {
					l = v
				}
				if v > h {
					h = v
				}
			}
			los[c], his[c] = l, h
		}
	})
	lo, hi = los[0], his[0]
	for c := 1; c < chunks; c++ {
		if los[c] < lo {
			lo = los[c]
		}
		if his[c] > hi {
			hi = his[c]
		}
	}
	return lo, hi
}

func checkK(n, k int) {
	if n == 0 {
		panic("topk: empty input")
	}
	if k < 1 || k > n {
		panic("topk: k out of range")
	}
}

// MaskTopK sets exactly k bits in the returned bitmap (length ⌈n/64⌉ words)
// marking the k largest-magnitude entries of x. Ties at the threshold are
// broken by lower index. k == 0 returns an all-zero bitmap; k >= len(x)
// marks everything.
func MaskTopK(x []float64, k int) []uint64 {
	n := len(x)
	bitmap := make([]uint64, (n+63)/64)
	if k <= 0 || n == 0 || k >= n {
		MaskTopKInto(bitmap, x, k)
		return bitmap
	}
	magsb := scratch.Float64s(n)
	defer scratch.PutFloat64s(magsb)
	mags := *magsb
	parallel.For2(n, mags, x, func(mags, x []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := x[i]
			if v < 0 {
				v = -v
			}
			mags[i] = v
		}
	})
	MaskTopKInto(bitmap, mags, k)
	return bitmap
}

// MaskTopKInto is the fused selection path: mags must already hold
// non-negative magnitudes (|x|, or |z|² for complex bins — any monotone
// transform works), so selection makes no extra pass to recompute them.
// It zeroes bitmap (length ⌈len(mags)/64⌉ words) and sets exactly
// min(k, len(mags)) bits marking the k largest entries, ties broken by
// lower index. mags is not modified, and the steady state allocates
// nothing.
func MaskTopKInto(bitmap []uint64, mags []float64, k int) {
	n := len(mags)
	if len(bitmap) != (n+63)/64 {
		panic("topk: bitmap length mismatch")
	}
	for i := range bitmap {
		bitmap[i] = 0
	}
	if k <= 0 || n == 0 {
		return
	}
	if k >= n {
		for i := 0; i < n; i++ {
			bitmap[i>>6] |= 1 << (uint(i) & 63)
		}
		return
	}
	thr := KthLargestBucket(mags, k)

	// First pass: everything strictly above the threshold is kept.
	kept := 0
	for i := 0; i < n; i++ {
		if mags[i] > thr {
			bitmap[i>>6] |= 1 << (uint(i) & 63)
			kept++
		}
	}
	// Second pass: fill remaining slots with threshold-equal entries.
	for i := 0; i < n && kept < k; i++ {
		if mags[i] == thr {
			bitmap[i>>6] |= 1 << (uint(i) & 63)
			kept++
		}
	}
}

// Package topk implements k-th order-statistic selection used to threshold
// gradients (spatial Top-k sparsification) and gradient frequencies
// (FFT-based sparsification).
//
// The paper implements the selection with either sorting or a GPU k-select;
// it cites bucketSelect (Alabi et al., 2012). This package provides three
// interchangeable strategies with identical semantics:
//
//   - KthLargest: iterative quickselect with median-of-three pivots, O(n)
//     expected time, operating on a scratch copy.
//   - KthLargestBucket: the bucketSelect analogue — a parallel histogram
//     over the value range, recursing into the bucket containing the k-th
//     element. Data-parallel and cache-friendly for large n.
//   - KthLargestSort: full sort, O(n log n); the reference used in tests.
package topk

import (
	"sort"

	"fftgrad/internal/parallel"
)

// KthLargestSort returns the k-th largest element (1-based, so k=1 is the
// maximum) of x by full sorting. It is the reference implementation.
func KthLargestSort(x []float64, k int) float64 {
	checkK(len(x), k)
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return s[len(s)-k]
}

// KthLargest returns the k-th largest element (1-based) of x using
// iterative quickselect on a scratch copy. Expected O(n).
func KthLargest(x []float64, k int) float64 {
	checkK(len(x), k)
	s := append([]float64(nil), x...)
	// Select index len-k in ascending order.
	target := len(s) - k
	lo, hi := 0, len(s)-1
	for lo < hi {
		p := partition(s, lo, hi)
		switch {
		case p == target:
			return s[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return s[target]
}

// partition performs Hoare-style partitioning around a median-of-three
// pivot and returns the final pivot index (Lomuto placement).
func partition(s []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// median of three to s[hi]
	if s[mid] < s[lo] {
		s[mid], s[lo] = s[lo], s[mid]
	}
	if s[hi] < s[lo] {
		s[hi], s[lo] = s[lo], s[hi]
	}
	if s[hi] < s[mid] {
		s[hi], s[mid] = s[mid], s[hi]
	}
	s[mid], s[hi] = s[hi], s[mid]
	pivot := s[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if s[j] < pivot {
			s[i], s[j] = s[j], s[i]
			i++
		}
	}
	s[i], s[hi] = s[hi], s[i]
	return i
}

// bucketCount is the histogram width per refinement round of the
// bucket-select strategy.
const bucketCount = 1024

// KthLargestBucket returns the k-th largest element (1-based) of x using
// iterative range-refinement with parallel histograms (the CPU analogue of
// GPU bucketSelect). Exact: it terminates by scanning the final bucket.
func KthLargestBucket(x []float64, k int) float64 {
	checkK(len(x), k)

	lo, hi := parMinMax(x)
	if lo == hi {
		return lo
	}
	// remaining = how many of the largest elements we still need to skip
	// inside the current [lo, hi] range.
	remaining := k
	cur := x
	scratch := make([]float64, 0, len(x)/bucketCount*4+64)

	for round := 0; ; round++ {
		width := (hi - lo) / bucketCount
		if width <= 0 || len(cur) <= 4096 || round > 64 {
			// Degenerate range or small candidate set: finish exactly.
			return KthLargest(cur, remaining)
		}
		hist := histogram(cur, lo, width)
		// Walk buckets from the top (largest values) down.
		b := bucketCount - 1
		for ; b >= 0; b-- {
			if int(hist[b]) >= remaining {
				break
			}
			remaining -= int(hist[b])
		}
		if b < 0 {
			// Numerical edge (all counted); fall back.
			return KthLargest(cur, k)
		}
		bLo := lo + float64(b)*width
		bHi := bLo + width
		if b == bucketCount-1 {
			bHi = hi
		}
		// Gather candidates in [bLo, bHi] (inclusive upper edge for the
		// top bucket to catch the maximum).
		scratch = scratch[:0]
		for _, v := range cur {
			if v >= bLo && (v < bHi || (b == bucketCount-1 && v <= bHi)) {
				scratch = append(scratch, v)
			}
		}
		if len(scratch) == len(cur) {
			// No progress (heavy ties); finish exactly.
			return KthLargest(cur, remaining)
		}
		cur = append([]float64(nil), scratch...)
		lo, hi = bLo, bHi
	}
}

// histogram bins cur into bucketCount buckets of the given width starting
// at lo, in parallel. Values above the last bucket edge (the maximum) are
// clamped into the top bucket.
func histogram(cur []float64, lo, width float64) [bucketCount]int64 {
	chunks := parallel.Chunks(len(cur), 16384)
	partial := make([][bucketCount]int64, len(chunks))
	parallel.ForGrain(len(chunks), 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			h := &partial[c]
			for i := chunks[c][0]; i < chunks[c][1]; i++ {
				b := int((cur[i] - lo) / width)
				if b < 0 {
					b = 0
				}
				if b >= bucketCount {
					b = bucketCount - 1
				}
				h[b]++
			}
		}
	})
	var total [bucketCount]int64
	for c := range partial {
		for b := 0; b < bucketCount; b++ {
			total[b] += partial[c][b]
		}
	}
	return total
}

func parMinMax(x []float64) (lo, hi float64) {
	chunks := parallel.Chunks(len(x), 16384)
	los := make([]float64, len(chunks))
	his := make([]float64, len(chunks))
	parallel.ForGrain(len(chunks), 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			l, h := x[chunks[c][0]], x[chunks[c][0]]
			for i := chunks[c][0] + 1; i < chunks[c][1]; i++ {
				v := x[i]
				if v < l {
					l = v
				}
				if v > h {
					h = v
				}
			}
			los[c], his[c] = l, h
		}
	})
	lo, hi = los[0], his[0]
	for c := 1; c < len(chunks); c++ {
		if los[c] < lo {
			lo = los[c]
		}
		if his[c] > hi {
			hi = his[c]
		}
	}
	return lo, hi
}

func checkK(n, k int) {
	if n == 0 {
		panic("topk: empty input")
	}
	if k < 1 || k > n {
		panic("topk: k out of range")
	}
}

// MaskTopK sets exactly k bits in the returned bitmap (length ⌈n/64⌉ words)
// marking the k largest-magnitude entries of x. Ties at the threshold are
// broken by lower index. k == 0 returns an all-zero bitmap; k >= len(x)
// marks everything.
func MaskTopK(x []float64, k int) []uint64 {
	n := len(x)
	bitmap := make([]uint64, (n+63)/64)
	if k <= 0 || n == 0 {
		return bitmap
	}
	if k >= n {
		for i := 0; i < n; i++ {
			bitmap[i>>6] |= 1 << (uint(i) & 63)
		}
		return bitmap
	}
	mags := make([]float64, n)
	parallel.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := x[i]
			if v < 0 {
				v = -v
			}
			mags[i] = v
		}
	})
	thr := KthLargestBucket(mags, k)

	// First pass: everything strictly above the threshold is kept.
	kept := 0
	for i := 0; i < n; i++ {
		if mags[i] > thr {
			bitmap[i>>6] |= 1 << (uint(i) & 63)
			kept++
		}
	}
	// Second pass: fill remaining slots with threshold-equal entries.
	for i := 0; i < n && kept < k; i++ {
		if mags[i] == thr {
			bitmap[i>>6] |= 1 << (uint(i) & 63)
			kept++
		}
	}
	return bitmap
}

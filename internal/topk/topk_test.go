package topk

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSlice(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func TestSelectorsAgree(t *testing.T) {
	for _, n := range []int{1, 2, 10, 1000, 50000} {
		x := randSlice(n, int64(n))
		for _, k := range []int{1, (n + 1) / 2, n} {
			want := KthLargestSort(x, k)
			if got := KthLargest(x, k); got != want {
				t.Errorf("quickselect n=%d k=%d: %g want %g", n, k, got, want)
			}
			if got := KthLargestBucket(x, k); got != want {
				t.Errorf("bucket n=%d k=%d: %g want %g", n, k, got, want)
			}
		}
	}
}

func TestSelectorsWithTies(t *testing.T) {
	x := make([]float64, 10000)
	r := rand.New(rand.NewSource(42))
	for i := range x {
		x[i] = float64(r.Intn(5)) // heavy ties
	}
	for _, k := range []int{1, 100, 5000, 9999, 10000} {
		want := KthLargestSort(x, k)
		if got := KthLargest(x, k); got != want {
			t.Errorf("quickselect ties k=%d: %g want %g", k, got, want)
		}
		if got := KthLargestBucket(x, k); got != want {
			t.Errorf("bucket ties k=%d: %g want %g", k, got, want)
		}
	}
}

func TestSelectorsAllEqual(t *testing.T) {
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 3.14
	}
	if got := KthLargestBucket(x, 500); got != 3.14 {
		t.Errorf("all-equal bucket select: %g", got)
	}
	if got := KthLargest(x, 500); got != 3.14 {
		t.Errorf("all-equal quickselect: %g", got)
	}
}

func TestSelectorsPropertyAgreement(t *testing.T) {
	f := func(vals []float64, kraw uint16) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if v != v { // NaN would poison ordering; not a valid input
				return true
			}
		}
		k := int(kraw)%len(vals) + 1
		want := KthLargestSort(vals, k)
		return KthLargest(vals, k) == want && KthLargestBucket(vals, k) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKPanics(t *testing.T) {
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic", k)
				}
			}()
			KthLargest([]float64{1, 2, 3}, k)
		}()
	}
}

func popcount(bm []uint64) int {
	total := 0
	for _, w := range bm {
		total += bits.OnesCount64(w)
	}
	return total
}

func TestMaskTopKExactCount(t *testing.T) {
	x := randSlice(12345, 5)
	for _, k := range []int{0, 1, 100, 6000, 12344, 12345, 20000} {
		bm := MaskTopK(x, k)
		want := k
		if want > len(x) {
			want = len(x)
		}
		if got := popcount(bm); got != want {
			t.Errorf("k=%d: popcount %d want %d", k, got, want)
		}
	}
}

func TestMaskTopKSelectsLargest(t *testing.T) {
	x := []float64{0.1, -5, 0.2, 4, -0.3, 3}
	bm := MaskTopK(x, 3)
	// Largest magnitudes: -5 (idx 1), 4 (idx 3), 3 (idx 5).
	wantIdx := []int{1, 3, 5}
	for _, i := range wantIdx {
		if bm[0]&(1<<uint(i)) == 0 {
			t.Errorf("index %d should be kept", i)
		}
	}
	if got := popcount(bm); got != 3 {
		t.Errorf("popcount %d want 3", got)
	}
}

func TestMaskTopKWithTies(t *testing.T) {
	x := []float64{1, -1, 1, -1, 1}
	bm := MaskTopK(x, 3)
	if got := popcount(bm); got != 3 {
		t.Fatalf("ties must still yield exactly k bits, got %d", got)
	}
	// Ties broken by lower index: indices 0,1,2.
	for i := 0; i < 3; i++ {
		if bm[0]&(1<<uint(i)) == 0 {
			t.Errorf("tie-break should keep index %d", i)
		}
	}
}

// Property: every kept magnitude >= every dropped magnitude.
func TestMaskTopKDominance(t *testing.T) {
	f := func(vals []float64, kraw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if v != v {
				return true
			}
		}
		k := int(kraw) % (len(vals) + 1)
		bm := MaskTopK(vals, k)
		minKept := -1.0
		maxDropped := -1.0
		first := true
		for i, v := range vals {
			m := v
			if m < 0 {
				m = -m
			}
			if bm[i>>6]&(1<<(uint(i)&63)) != 0 {
				if first || m < minKept {
					minKept = m
					first = false
				}
			} else if m > maxDropped {
				maxDropped = m
			}
		}
		if k == 0 || k >= len(vals) {
			return true
		}
		return minKept >= maxDropped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQuickselect1M(b *testing.B) {
	x := randSlice(1<<20, 1)
	b.SetBytes(int64(len(x) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KthLargest(x, len(x)/10)
	}
}

func BenchmarkBucketSelect1M(b *testing.B) {
	x := randSlice(1<<20, 1)
	b.SetBytes(int64(len(x) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KthLargestBucket(x, len(x)/10)
	}
}

func BenchmarkSortSelect1M(b *testing.B) {
	x := randSlice(1<<20, 1)
	b.SetBytes(int64(len(x) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KthLargestSort(x, len(x)/10)
	}
}

func BenchmarkMaskTopK1M(b *testing.B) {
	x := randSlice(1<<20, 1)
	b.SetBytes(int64(len(x) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaskTopK(x, len(x)/10)
	}
}

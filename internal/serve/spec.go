// Package serve is the multi-tenant training job service: an HTTP/JSON
// control plane over a scheduler that admits jobs against a shared
// worker pool. Each submitted job is one dist.Job — the BSP-allreduce
// backend or the parameter-server backend, chosen per submission — wired
// with its own compression pipeline, integrity guard, chaos schedule,
// telemetry registry and trace ring, so tenants share the fleet but not
// their observability.
//
// The control plane mounts on the same mux as the trainer's telemetry
// endpoints (see Server.Routes); the merged /metrics view relabels every
// per-job registry with a job="<id>" pair so one Prometheus scrape
// distinguishes tenants.
package serve

import (
	"fmt"
	"time"

	"fftgrad/internal/chaos"
	"fftgrad/internal/cluster"
	"fftgrad/internal/collective"
	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/dist"
	"fftgrad/internal/guard"
	"fftgrad/internal/models"
	"fftgrad/internal/netsim"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
	"fftgrad/internal/ps"
)

// Spec is the JSON job submission. Every field is optional; zero values
// take the defaults noted inline, so `{}` is a valid two-worker BSP job
// with FFT compression.
type Spec struct {
	Name     string `json:"name,omitempty"`
	Backend  string `json:"backend,omitempty"`  // "bsp" (default) or "ps"
	Priority int    `json:"priority,omitempty"` // higher admits first

	Workers int   `json:"workers,omitempty"` // default 2
	Batch   int   `json:"batch,omitempty"`   // default 16
	Epochs  int   `json:"epochs,omitempty"`  // default 2
	Seed    int64 `json:"seed,omitempty"`

	Model   string `json:"model,omitempty"`   // "mlp" (default) or "cnn"
	Classes int    `json:"classes,omitempty"` // default 4
	Samples int    `json:"samples,omitempty"` // default 2048 train samples

	Method string  `json:"method,omitempty"` // compressor name; default "fft"
	Theta  float64 `json:"theta,omitempty"`  // drop ratio; default 0.85

	LR        float64 `json:"lr,omitempty"`         // default 0.05
	Momentum  float64 `json:"momentum,omitempty"`   // default 0.9
	SyncEvery int     `json:"sync_every,omitempty"` // BSP re-broadcast period

	// Async selects asynchronous PS updates (ignored on BSP).
	Async bool `json:"async,omitempty"`

	// Collective selects the BSP exchange strategy: "ring" (default),
	// "hier" or "tree". GroupSize sets the hierarchical group width
	// (default 4); BucketBytes > 0 splits the gradient into fixed-byte
	// buckets compressed and exchanged as an overlapped pipeline.
	Collective  string `json:"collective,omitempty"`
	GroupSize   int    `json:"group_size,omitempty"`
	BucketBytes int    `json:"bucket_bytes,omitempty"`

	// Guard enables the data-plane integrity layer (CRC framing, scrub,
	// anomaly detector, drift checks). BSP only.
	Guard bool `json:"guard,omitempty"`
	// Fault routes the BSP exchange through the failure-aware cluster
	// runtime; implied by Chaos, Staleness, ElasticJoins, and the gossip
	// collective.
	Fault bool `json:"fault,omitempty"`
	// Chaos injects a deterministic fault schedule (BSP fault path).
	Chaos *ChaosSpec `json:"chaos,omitempty"`

	// Staleness > 0 selects the bounded-staleness exchange: workers may
	// run up to this many iterations ahead of the slowest live rank, and
	// a peer missing the round's grace budget contributes its freshest
	// cached gradient damped by StalenessDiscount^d.
	Staleness int `json:"staleness,omitempty"`
	// StalenessDiscount is the per-iteration damping factor λ ∈ (0,1]
	// for stale contributions; 0 defaults to 0.9.
	StalenessDiscount float64 `json:"staleness_discount,omitempty"`
	// ElasticJoins schedules brand-new ranks joining mid-run at the given
	// iterations. Each entry grows the job's worker quota by one slot,
	// reserved from submission time.
	ElasticJoins []int `json:"elastic_joins,omitempty"`

	// ResumeFrom names a checkpoint file (e.g. a drain spool entry) to
	// restore before training starts.
	ResumeFrom string `json:"resume_from,omitempty"`
}

// ChaosSpec mirrors the chaos.Config knobs a submission may set.
type ChaosSpec struct {
	Seed      int64   `json:"seed,omitempty"`
	Drop      float64 `json:"drop,omitempty"`
	DelayProb float64 `json:"delay_prob,omitempty"`
	DelayMS   int     `json:"delay_ms,omitempty"`

	// CrashRank, when set, crashes that rank at CrashAtOp transport
	// operations and recovers it RecoverAfterOps later — the
	// kill-a-worker-mid-job scenario of the rejoin tests.
	CrashRank       *int   `json:"crash_rank,omitempty"`
	CrashAtOp       uint64 `json:"crash_at_op,omitempty"`
	RecoverAfterOps uint64 `json:"recover_after_ops,omitempty"`
}

// normalize applies defaults in place and validates the result.
func (s *Spec) normalize() error {
	if s.Backend == "" {
		s.Backend = "bsp"
	}
	if s.Backend != "bsp" && s.Backend != "ps" {
		return fmt.Errorf("backend %q: want bsp or ps", s.Backend)
	}
	if s.Workers == 0 {
		s.Workers = 2
	}
	if s.Workers < 1 || s.Workers > 64 {
		return fmt.Errorf("workers %d out of range [1,64]", s.Workers)
	}
	if s.Batch == 0 {
		s.Batch = 16
	}
	if s.Batch < 1 {
		return fmt.Errorf("batch %d must be positive", s.Batch)
	}
	if s.Epochs == 0 {
		s.Epochs = 2
	}
	if s.Epochs < 1 || s.Epochs > 100 {
		return fmt.Errorf("epochs %d out of range [1,100]", s.Epochs)
	}
	if s.Model == "" {
		s.Model = "mlp"
	}
	if s.Model != "mlp" && s.Model != "cnn" {
		return fmt.Errorf("model %q: want mlp or cnn", s.Model)
	}
	if s.Classes == 0 {
		s.Classes = 4
	}
	if s.Samples == 0 {
		s.Samples = 2048
	}
	if s.Samples < s.Workers*s.Batch {
		return fmt.Errorf("samples %d too few for %d workers x batch %d", s.Samples, s.Workers, s.Batch)
	}
	if s.Method == "" {
		s.Method = "fft"
	}
	if s.Theta == 0 {
		s.Theta = 0.85
	}
	if _, err := compress.New(s.Method, s.Theta); err != nil {
		return err
	}
	if s.LR == 0 {
		s.LR = 0.05
	}
	if s.Momentum == 0 {
		s.Momentum = 0.9
	}
	if s.Backend == "ps" && (s.Guard || s.Fault || s.Chaos != nil) {
		return fmt.Errorf("guard/fault/chaos require the bsp backend")
	}
	if s.Backend == "ps" && (s.Staleness != 0 || len(s.ElasticJoins) > 0) {
		return fmt.Errorf("bounded staleness and elastic joins require the bsp backend")
	}
	if s.Staleness < 0 {
		return fmt.Errorf("staleness %d must be non-negative", s.Staleness)
	}
	if s.StalenessDiscount < 0 || s.StalenessDiscount > 1 {
		return fmt.Errorf("staleness_discount %v outside (0,1]", s.StalenessDiscount)
	}
	for _, at := range s.ElasticJoins {
		if at < 0 {
			return fmt.Errorf("elastic_joins iteration %d must be non-negative", at)
		}
	}
	if s.Workers+len(s.ElasticJoins) > 64 {
		return fmt.Errorf("workers %d + %d elastic joins exceed the 64-slot cap", s.Workers, len(s.ElasticJoins))
	}
	if s.Collective != "" || s.BucketBytes != 0 || s.GroupSize != 0 {
		if s.Backend == "ps" {
			return fmt.Errorf("collective/bucketing options require the bsp backend")
		}
		if c := s.collectiveConfig(); c != nil {
			if err := c.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// faultPath reports whether the submission runs on the failure-aware
// cluster runtime — requested directly or implied by a feature that
// needs it (chaos, bounded staleness, elastic joins, gossip).
func (s *Spec) faultPath() bool {
	return s.Fault || s.Chaos != nil || s.Staleness > 0 || len(s.ElasticJoins) > 0 ||
		s.Collective == string(collective.Gossip)
}

// collectiveConfig compiles the exchange-strategy fields into a
// collective.Config, or nil when the submission keeps the flat default.
func (s *Spec) collectiveConfig() *collective.Config {
	if (s.Collective == "" || s.Collective == "ring") && s.BucketBytes == 0 {
		return nil
	}
	c := &collective.Config{
		Strategy:    collective.Strategy(s.Collective),
		GroupSize:   s.GroupSize,
		BucketBytes: s.BucketBytes,
	}
	if c.Strategy == "" {
		c.Strategy = collective.Ring
	}
	return c
}

// buildJob compiles a normalized Spec into a runnable dist.Job with its
// full per-job pipeline: dataset, model, compressor factory, and the
// optional guard and fault/chaos layers.
func (s *Spec) buildJob() (dist.Job, error) {
	var (
		train, test *data.Dataset
		modelFn     func(int64) *nn.Network
	)
	classes := s.Classes
	switch s.Model {
	case "cnn":
		train, test = data.SynthImages(s.Samples+512, classes, 16, 0.3, s.Seed).Split(s.Samples)
		modelFn = func(seed int64) *nn.Network { return models.TinyCNN(classes, 16, seed) }
	default:
		train, test = data.GaussianBlobs(s.Samples+512, classes, 24, 0.8, s.Seed).Split(s.Samples)
		modelFn = func(seed int64) *nn.Network { return models.MLP(24, 48, classes, seed) }
	}
	method, theta := s.Method, s.Theta
	newComp := func() compress.Compressor {
		c, err := compress.New(method, theta)
		if err != nil {
			panic(err) // validated in normalize
		}
		return c
	}

	if s.Backend == "ps" {
		fabric := netsim.InfiniBandFDR
		cfg := ps.Config{
			Workers:       s.Workers,
			Batch:         s.Batch,
			Epochs:        s.Epochs,
			Seed:          s.Seed,
			Momentum:      s.Momentum,
			LR:            optim.ConstLR(s.LR),
			Model:         modelFn,
			Train:         train,
			Test:          test,
			NewCompressor: newComp,
			Async:         s.Async,
			Fabric:        &fabric,
		}
		return cfg.NewJob(), nil
	}

	cfg := dist.Config{
		Workers:       s.Workers,
		Batch:         s.Batch,
		Epochs:        s.Epochs,
		Seed:          s.Seed,
		Momentum:      s.Momentum,
		LR:            optim.ConstLR(s.LR),
		SyncEvery:     s.SyncEvery,
		Model:         modelFn,
		Train:         train,
		Test:          test,
		NewCompressor: newComp,
		Fabric:        netsim.CometCluster(),
		Collective:    s.collectiveConfig(),
	}
	if s.Guard {
		cfg.Guard = &guard.Config{CRC: true, Scrub: guard.ScrubClamp, Detect: true, DriftEvery: 50}
	}
	if s.faultPath() {
		// Service-speed cluster tuning: tight heartbeats so failure
		// detection and rejoin complete within a short job's lifetime.
		cfg.Fault = &dist.FaultConfig{
			Cluster: cluster.Config{
				Heartbeat:    2 * time.Millisecond,
				SuspectAfter: 200 * time.Millisecond,
				BackoffBase:  2 * time.Millisecond,
				BackoffMax:   50 * time.Millisecond,
				MaxRetries:   8,
				MaxStall:     30 * time.Second,
				RejoinWait:   30 * time.Second,
				Policy:       cluster.StaleReuse,
				OnStraggler:  cluster.StragglerWait,
				Seed:         s.Seed,
			},
			Staleness:         s.Staleness,
			StalenessDiscount: s.StalenessDiscount,
			ElasticJoins:      s.ElasticJoins,
		}
		if c := s.Chaos; c != nil {
			cc := &chaos.Config{
				Seed:      c.Seed,
				Drop:      c.Drop,
				DelayProb: c.DelayProb,
				Delay:     time.Duration(c.DelayMS) * time.Millisecond,
			}
			if c.CrashRank != nil {
				at := c.CrashAtOp
				if at == 0 {
					at = 1200
				}
				rec := c.RecoverAfterOps
				if rec == 0 {
					rec = 1000
				}
				cc.Crashes = []chaos.CrashEvent{{Rank: *c.CrashRank, AtOp: at, RecoverAfterOps: rec}}
			}
			cfg.Fault.Chaos = cc
		}
	}
	return cfg.NewJob(), nil
}

package serve

import (
	"sync"
	"time"

	"fftgrad/internal/checkpoint"
	"fftgrad/internal/dist"
	"fftgrad/internal/obs"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: admitted to the queue, waiting for worker slots.
	StateQueued State = "queued"
	// StateRunning: occupying worker slots, training.
	StateRunning State = "running"
	// StateCompleted: ran to the configured epoch count.
	StateCompleted State = "completed"
	// StateFailed: the backend returned an error.
	StateFailed State = "failed"
	// StateCanceled: canceled by the API (before or during the run).
	StateCanceled State = "canceled"
	// StateHalted: stopped cooperatively by a server drain with its
	// final checkpoint spooled for resumption.
	StateHalted State = "halted"
)

// terminal reports whether no further transitions can happen.
func (s State) terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled || s == StateHalted
}

// Event is one entry in a job's progress feed (served over SSE).
type Event struct {
	Seq   int              `json:"seq"`
	Time  time.Time        `json:"time"`
	Type  string           `json:"type"` // queued|started|epoch|completed|failed|canceled|halted
	Epoch *dist.EpochStats `json:"epoch,omitempty"`
	Error string           `json:"error,omitempty"`
}

// job is the server-side record of one submission.
type job struct {
	id   string
	spec Spec
	run  dist.Job

	// Per-job observability, created at submission so endpoints work
	// while the job is still queued.
	reg    *telemetry.Registry
	tracer *trace.Tracer
	prof   *obs.Profiler

	stop     chan struct{}
	stopOnce sync.Once
	resume   *checkpoint.State // loaded from spec.ResumeFrom at submission

	mu        sync.Mutex
	state     State
	canceling bool // distinguishes cancel-halt from drain-halt
	events    []Event
	updated   chan struct{} // closed and replaced on every append
	result    *dist.JobResult
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	spool     string // path of the drain-spooled checkpoint, if any
}

func (j *job) cancel() {
	j.stopOnce.Do(func() { close(j.stop) })
}

// append records an event and wakes every stream blocked on updated.
// Callers hold j.mu.
func (j *job) append(typ string, epoch *dist.EpochStats, errMsg string) {
	j.events = append(j.events, Event{
		Seq:   len(j.events),
		Time:  time.Now(),
		Type:  typ,
		Epoch: epoch,
		Error: errMsg,
	})
	close(j.updated)
	j.updated = make(chan struct{})
}

// wait returns the events after seq and a channel that is closed when
// more arrive (nil when the job is terminal and fully consumed).
func (j *job) wait(seq int) ([]Event, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var pending []Event
	if seq < len(j.events) {
		pending = append(pending, j.events[seq:]...)
	}
	if j.state.terminal() {
		return pending, nil
	}
	return pending, j.updated
}

// Info is the JSON view of a job.
type Info struct {
	ID       string  `json:"id"`
	Name     string  `json:"name,omitempty"`
	Backend  string  `json:"backend"`
	State    State   `json:"state"`
	Workers  int     `json:"workers"`
	Priority int     `json:"priority,omitempty"`
	Method   string  `json:"method"`
	Theta    float64 `json:"theta"`

	EpochsDone   int     `json:"epochs_done"`
	EpochsWanted int     `json:"epochs_wanted"`
	TrainLoss    float64 `json:"train_loss,omitempty"`
	TestAcc      float64 `json:"test_acc,omitempty"`

	Iterations       int     `json:"iterations,omitempty"`
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
	Rejoins          uint64  `json:"rejoins,omitempty"`

	// Fault is the fault/guard/staleness summary of a job on the
	// failure-aware path: live from the job's telemetry registry while
	// the job runs, final from the result afterwards. Absent on the
	// barrier path and on PS jobs.
	Fault *FaultInfo `json:"fault,omitempty"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	Spool     string    `json:"spool,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// FaultInfo is the fault/guard/staleness summary surfaced in Info for
// jobs on the failure-aware path.
type FaultInfo struct {
	Suspicions       uint64 `json:"suspicions"`
	Rejoins          uint64 `json:"rejoins"`
	StaleReuses      uint64 `json:"stale_reuses"`
	StalenessCurrent uint64 `json:"staleness_current"`
	StalenessMax     uint64 `json:"staleness_max"`
	ElasticJoins     uint64 `json:"elastic_joins"`
	GossipRounds     uint64 `json:"gossip_rounds"`
	LostWorkers      int    `json:"lost_workers,omitempty"`

	GuardAnomalies uint64 `json:"guard_anomalies,omitempty"`
	GuardRollbacks uint64 `json:"guard_rollbacks,omitempty"`
}

// faultInfo builds the summary: final result stats when the run is over,
// otherwise a live read of the job's telemetry registry — the same
// counters the merged /metrics view exports, so a dashboard and this
// endpoint can never disagree. Callers hold j.mu.
func (j *job) faultInfo() *FaultInfo {
	if j.result != nil && j.result.Fault != nil {
		cs := j.result.Fault.Cluster
		fi := &FaultInfo{
			Suspicions:       cs.Suspicions,
			Rejoins:          cs.Rejoins,
			StaleReuses:      cs.StaleReuses,
			StalenessCurrent: 0, // final: the run is over, nothing in flight
			StalenessMax:     cs.StalenessMax,
			ElasticJoins:     cs.ElasticJoins,
			GossipRounds:     cs.GossipRounds,
			LostWorkers:      j.result.Fault.LostWorkers,
		}
		if g := j.result.Guard; g != nil {
			fi.GuardAnomalies = g.Anomalies
			fi.GuardRollbacks = g.Rollbacks
		}
		return fi
	}
	if j.state != StateRunning || !j.spec.faultPath() {
		return nil
	}
	snap := j.reg.Snapshot()
	return &FaultInfo{
		Suspicions:       uint64(snap["fftgrad_cluster_suspicions_total"]),
		Rejoins:          uint64(snap["fftgrad_cluster_rejoins_total"]),
		StaleReuses:      uint64(snap["fftgrad_cluster_stale_reuses_total"]),
		StalenessCurrent: uint64(snap["fftgrad_staleness_current"]),
		StalenessMax:     uint64(snap["fftgrad_staleness_max"]),
		ElasticJoins:     uint64(snap["fftgrad_elastic_joins_total"]),
		GossipRounds:     uint64(snap["fftgrad_gossip_rounds_total"]),
		GuardAnomalies:   uint64(snap["fftgrad_guard_anomalies"]),
		GuardRollbacks:   uint64(snap["fftgrad_guard_rollbacks"]),
	}
}

// info snapshots the job under its lock.
func (j *job) info() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	in := Info{
		ID:           j.id,
		Name:         j.spec.Name,
		Backend:      j.spec.Backend,
		State:        j.state,
		Workers:      j.run.Workers(),
		Priority:     j.spec.Priority,
		Method:       j.spec.Method,
		Theta:        j.spec.Theta,
		EpochsWanted: j.spec.Epochs,
		Submitted:    j.submitted,
		Started:      j.started,
		Finished:     j.finished,
		Spool:        j.spool,
	}
	for _, ev := range j.events {
		if ev.Epoch != nil {
			in.EpochsDone++
			in.TrainLoss = ev.Epoch.TrainLoss
			in.TestAcc = ev.Epoch.TestAcc
		}
	}
	if j.result != nil {
		in.Iterations = j.result.Iterations
		in.CompressionRatio = j.result.CompressionRatio
		if j.result.Fault != nil {
			in.Rejoins = j.result.Fault.Cluster.Rejoins
		}
	}
	in.Fault = j.faultInfo()
	if j.err != nil {
		in.Error = j.err.Error()
	}
	return in
}

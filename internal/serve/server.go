package serve

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"fftgrad/internal/buildinfo"
	"fftgrad/internal/checkpoint"
	"fftgrad/internal/dist"
	"fftgrad/internal/obs"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// Typed admission errors; the HTTP layer maps them to status codes.
var (
	// ErrQueueFull: the bounded queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining: the server is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: server is draining")
	// ErrTooManyWorkers: the job's quota exceeds the whole pool (400).
	ErrTooManyWorkers = errors.New("serve: job wants more workers than the pool has")
	// ErrNotFound: no such job id (404).
	ErrNotFound = errors.New("serve: no such job")
)

// Config tunes the scheduler.
type Config struct {
	// WorkerSlots is the shared pool every running job draws its quota
	// from (default 8).
	WorkerSlots int
	// MaxQueue bounds the admission queue; a full queue rejects with
	// ErrQueueFull (default 16).
	MaxQueue int
	// TraceEvents sizes each job's per-track trace ring (default
	// trace.DefaultEventsPerIteration * 256).
	TraceEvents int
	// SpoolDir receives <id>.ckpt files when a drain halts running jobs;
	// "" disables spooling (drained jobs still halt cleanly).
	SpoolDir string
}

// Server owns the job table, the queue, and the worker-slot ledger.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*job
	order    []*job // submission order, for listing
	queue    []*job // admission order: priority desc, then arrival asc
	free     int    // unoccupied worker slots
	nextID   int
	draining bool
	wg       sync.WaitGroup
}

// New creates a Server with cfg's defaults applied.
func New(cfg Config) *Server {
	if cfg.WorkerSlots <= 0 {
		cfg.WorkerSlots = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16
	}
	if cfg.TraceEvents <= 0 {
		cfg.TraceEvents = trace.DefaultEventsPerIteration * 256
	}
	return &Server{
		cfg:  cfg,
		jobs: make(map[string]*job),
		free: cfg.WorkerSlots,
	}
}

// Submit validates and admits a job, returning its queued Info. The
// scheduler may start it before Submit returns.
func (s *Server) Submit(spec Spec) (Info, error) {
	if err := spec.normalize(); err != nil {
		return Info{}, fmt.Errorf("serve: bad spec: %w", err)
	}
	run, err := spec.buildJob()
	if err != nil {
		return Info{}, fmt.Errorf("serve: bad spec: %w", err)
	}
	if run.Workers() > s.cfg.WorkerSlots {
		return Info{}, fmt.Errorf("%w: %d > %d", ErrTooManyWorkers, run.Workers(), s.cfg.WorkerSlots)
	}
	var resume *checkpoint.State
	if spec.ResumeFrom != "" {
		resume, err = checkpoint.ReadFile(spec.ResumeFrom)
		if err != nil {
			return Info{}, fmt.Errorf("serve: resume_from: %w", err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Info{}, ErrDraining
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		return Info{}, ErrQueueFull
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("j-%d", s.nextID),
		spec:      spec,
		run:       run,
		reg:       telemetry.NewRegistry(),
		tracer:    trace.New(run.Tracks(), s.cfg.TraceEvents),
		prof:      obs.New(run.Tracks(), 0),
		stop:      make(chan struct{}),
		state:     StateQueued,
		updated:   make(chan struct{}),
		submitted: time.Now(),
	}
	j.tracer.SetName(fmt.Sprintf("job %s (%s)", j.id, spec.Backend))
	buildinfo.Register(j.reg)
	j.tracer.Instrument(j.reg)
	j.prof.Instrument(j.reg)
	j.resume = resume
	j.mu.Lock()
	j.append("queued", nil, "")
	j.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j)

	// Queue insertion keeps admission order: priority descending, then
	// arrival ascending (stable within a priority band).
	s.queue = append(s.queue, j)
	sort.SliceStable(s.queue, func(a, b int) bool {
		return s.queue[a].spec.Priority > s.queue[b].spec.Priority
	})
	s.schedule()
	return j.info(), nil
}

// schedule starts queued jobs while the head fits the free slots.
// Head-of-line blocking is deliberate: a wide job at the head is not
// overtaken by narrow jobs behind it, so big tenants cannot starve.
// Callers hold s.mu.
func (s *Server) schedule() {
	for len(s.queue) > 0 {
		head := s.queue[0]
		if head.run.Workers() > s.free {
			return
		}
		s.queue = s.queue[1:]
		s.start(head)
	}
}

// start transitions a job to running and launches its goroutine.
// Callers hold s.mu.
func (s *Server) start(j *job) {
	s.free -= j.run.Workers()
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.append("started", nil, "")
	j.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		res, err := j.run.Run(dist.JobHarness{
			Stop:      j.stop,
			Telemetry: j.reg,
			Tracer:    j.tracer,
			Profiler:  j.prof,
			OnEpoch: func(st dist.EpochStats) {
				// encoding/json refuses NaN/Inf (e.g. Theta on the
				// fp32 path reports NaN for "no drop ratio in effect");
				// scrub so one odd float can't kill the event stream.
				stCopy := st
				for _, f := range []*float64{&stCopy.TrainLoss, &stCopy.TestAcc, &stCopy.Theta, &stCopy.LR} {
					if math.IsNaN(*f) || math.IsInf(*f, 0) {
						*f = 0
					}
				}
				j.mu.Lock()
				j.append("epoch", &stCopy, "")
				j.mu.Unlock()
			},
			Resume: j.resume,
		})
		s.finish(j, res, err)
	}()
}

// finish records the outcome, releases the quota, and reschedules.
func (s *Server) finish(j *job, res *dist.JobResult, err error) {
	j.mu.Lock()
	j.result = res
	j.err = err
	j.finished = time.Now()
	switch {
	case err != nil:
		j.state = StateFailed
		j.append("failed", nil, err.Error())
	case res.Halted && j.canceling:
		j.state = StateCanceled
		j.append("canceled", nil, "")
	case res.Halted:
		j.state = StateHalted
		j.append("halted", nil, "")
	default:
		j.state = StateCompleted
		j.append("completed", nil, "")
	}
	j.mu.Unlock()

	s.mu.Lock()
	s.free += j.run.Workers()
	s.schedule()
	s.mu.Unlock()
}

// Cancel stops a job: a queued job is removed and terminal immediately;
// a running job gets its stop channel closed and halts at the next
// iteration boundary, releasing its quota when the run returns.
func (s *Server) Cancel(id string) (Info, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Info{}, ErrNotFound
	}
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.finished = time.Now()
		j.append("canceled", nil, "")
	case StateRunning:
		j.canceling = true
	}
	j.mu.Unlock()
	j.cancel()
	return j.info(), nil
}

// Get returns one job's Info.
func (s *Server) Get(id string) (Info, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Info{}, ErrNotFound
	}
	return j.info(), nil
}

// List returns every job in submission order.
func (s *Server) List() []Info {
	s.mu.Lock()
	order := append([]*job(nil), s.order...)
	s.mu.Unlock()
	out := make([]Info, 0, len(order))
	for _, j := range order {
		out = append(out, j.info())
	}
	return out
}

// Ready reports whether the server is accepting submissions — the
// /readyz signal. It flips false the moment a drain begins, so a load
// balancer stops routing new submissions while running jobs halt.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// lookup fetches the raw job record (for the observability endpoints).
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Drain gracefully shuts the service down: admission closes (Submit
// returns ErrDraining), queued jobs are canceled, running jobs halt
// cooperatively at their next iteration boundary, and — when SpoolDir is
// set — each halted job's final checkpoint is spooled to
// SpoolDir/<id>.ckpt so a later submission can resume_from it. Drain
// returns when every job goroutine has exited.
func (s *Server) Drain() []Info {
	s.mu.Lock()
	s.draining = true
	queued := s.queue
	s.queue = nil
	var running []*job
	for _, j := range s.order {
		j.mu.Lock()
		if j.state == StateRunning {
			running = append(running, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()

	for _, j := range queued {
		j.mu.Lock()
		j.state = StateCanceled
		j.finished = time.Now()
		j.append("canceled", nil, "")
		j.mu.Unlock()
		j.cancel()
	}
	for _, j := range running {
		j.cancel()
	}
	s.wg.Wait()

	var drained []Info
	for _, j := range running {
		j.mu.Lock()
		if j.state == StateHalted && j.result != nil && j.result.Final != nil && s.cfg.SpoolDir != "" {
			path := filepath.Join(s.cfg.SpoolDir, j.id+".ckpt")
			if err := checkpoint.WriteFileAtomic(path, j.result.Final); err == nil {
				j.spool = path
			}
		}
		j.mu.Unlock()
		drained = append(drained, j.info())
	}
	return drained
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"fftgrad/internal/buildinfo"
)

// Routes mounts the job API onto mux. The caller owns the mux, so the
// service composes with the trainer's existing telemetry endpoints
// (/metrics for the process registry, /trace, pprof) on one listener.
//
//	POST   /jobs               submit (202; 400 bad spec; 429 queue full; 503 draining)
//	GET    /jobs               list all jobs
//	GET    /jobs/{id}          one job's state and progress
//	POST   /jobs/{id}/cancel   cancel (idempotent); DELETE /jobs/{id} is an alias
//	GET    /jobs/{id}/events   SSE progress stream (?since=N resumes the feed)
//	GET    /jobs/{id}/metrics  the job's registry, Prometheus text format
//	GET    /jobs/{id}/metrics.json  same, flat JSON
//	GET    /jobs/{id}/trace    the job's timeline, Chrome trace_event JSON
//	GET    /jobs/{id}/profile  the job's iteration profile: critical paths, blame ledger, anomalies
//	GET    /jobs/{id}/profile/trace  clock-aligned merged multi-process timeline (Perfetto)
//	GET    /jobs/metrics       every job's registry merged, job="<id>" labels
//	GET    /healthz            liveness (always 200 while the process serves)
//	GET    /readyz             readiness (503 once a drain has begun)
//	GET    /debug/status       compact operator status: build, slots, jobs
func (s *Server) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/metrics", s.handleMergedMetrics)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("GET /jobs/{id}/metrics.json", s.handleJobMetricsJSON)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /jobs/{id}/profile", s.handleJobProfile)
	mux.HandleFunc("GET /jobs/{id}/profile/trace", s.handleJobMergedTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/status", s.handleDebugStatus)
}

// Handler returns a standalone mux with just the job API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Routes(mux)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	default:
		// Spec validation problems are the caller's fault.
		code = http.StatusBadRequest
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad JSON: " + err.Error()})
		return
	}
	info, err := s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+info.ID)
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleEvents streams a job's progress feed as server-sent events:
// one `data:` line per Event, starting after ?since= (default 0, i.e.
// the full history), ending when the job reaches a terminal state or
// the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	seq := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad since parameter"})
			return
		}
		seq = n
	}
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	for {
		events, more := j.wait(seq)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return
			}
			seq = ev.Seq + 1
		}
		if len(events) > 0 && fl != nil {
			fl.Flush()
		}
		if more == nil {
			return // terminal state, feed fully delivered
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = j.reg.WritePrometheus(w)
}

func (s *Server) handleJobMetricsJSON(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = j.reg.WriteJSON(w)
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = j.tracer.WriteJSON(w)
}

// handleJobProfile serves the job's iteration-profile document: build
// identity, clock offsets, the critical-path decomposition, the blame
// ledger with rolling percentiles, and any anomaly captures. A terminal
// job gets a final profile (the ledger folds its ragged tail).
func (s *Server) handleJobProfile(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	j.mu.Lock()
	final := j.state.terminal()
	j.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = j.prof.WriteProfileJSON(w, final)
}

// handleJobMergedTrace serves the clock-aligned multi-process timeline:
// every rank's trace ring merged into one Perfetto view, re-based by the
// profiler's barrier-anchored clock-offset estimates.
func (s *Server) handleJobMergedTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = j.tracer.WriteMergedJSON(w, j.prof.Offsets())
}

// handleHealthz is liveness: if this handler runs, the process serves.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz is readiness: 200 while accepting submissions, 503 once a
// drain has begun — so orchestrators stop routing work to a terminating
// replica while its running jobs halt and spool.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}

// debugStatus is the compact operator view served at /debug/status.
type debugStatus struct {
	Version string `json:"version"`
	Go      string `json:"go"`
	Ready   bool   `json:"ready"`

	WorkerSlots int `json:"worker_slots"`
	FreeSlots   int `json:"free_slots"`
	Queued      int `json:"queued"`

	Jobs map[State]int `json:"jobs"`
}

func (s *Server) handleDebugStatus(w http.ResponseWriter, _ *http.Request) {
	st := debugStatus{
		Version:     buildinfo.Version(),
		Go:          buildinfo.GoVersion(),
		WorkerSlots: s.cfg.WorkerSlots,
		Jobs:        map[State]int{},
	}
	s.mu.Lock()
	st.Ready = !s.draining
	st.FreeSlots = s.free
	st.Queued = len(s.queue)
	order := append([]*job(nil), s.order...)
	s.mu.Unlock()
	for _, j := range order {
		j.mu.Lock()
		st.Jobs[j.state]++
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMergedMetrics renders every job's registry on one page, each
// sample relabeled with job="<id>" — the single-scrape multi-tenant
// view.
func (s *Server) handleMergedMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	order := append([]*job(nil), s.order...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, j := range order {
		if err := j.reg.WritePrometheusLabeled(w, fmt.Sprintf("job=%q", j.id)); err != nil {
			return
		}
		_, _ = io.WriteString(w, "\n")
	}
}

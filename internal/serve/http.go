package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Routes mounts the job API onto mux. The caller owns the mux, so the
// service composes with the trainer's existing telemetry endpoints
// (/metrics for the process registry, /trace, pprof) on one listener.
//
//	POST   /jobs               submit (202; 400 bad spec; 429 queue full; 503 draining)
//	GET    /jobs               list all jobs
//	GET    /jobs/{id}          one job's state and progress
//	POST   /jobs/{id}/cancel   cancel (idempotent); DELETE /jobs/{id} is an alias
//	GET    /jobs/{id}/events   SSE progress stream (?since=N resumes the feed)
//	GET    /jobs/{id}/metrics  the job's registry, Prometheus text format
//	GET    /jobs/{id}/metrics.json  same, flat JSON
//	GET    /jobs/{id}/trace    the job's timeline, Chrome trace_event JSON
//	GET    /jobs/metrics       every job's registry merged, job="<id>" labels
func (s *Server) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/metrics", s.handleMergedMetrics)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("GET /jobs/{id}/metrics.json", s.handleJobMetricsJSON)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
}

// Handler returns a standalone mux with just the job API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Routes(mux)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	default:
		// Spec validation problems are the caller's fault.
		code = http.StatusBadRequest
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad JSON: " + err.Error()})
		return
	}
	info, err := s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+info.ID)
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleEvents streams a job's progress feed as server-sent events:
// one `data:` line per Event, starting after ?since= (default 0, i.e.
// the full history), ending when the job reaches a terminal state or
// the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	seq := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad since parameter"})
			return
		}
		seq = n
	}
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	for {
		events, more := j.wait(seq)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return
			}
			seq = ev.Seq + 1
		}
		if len(events) > 0 && fl != nil {
			fl.Flush()
		}
		if more == nil {
			return // terminal state, feed fully delivered
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = j.reg.WritePrometheus(w)
}

func (s *Server) handleJobMetricsJSON(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = j.reg.WriteJSON(w)
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = j.tracer.WriteJSON(w)
}

// handleMergedMetrics renders every job's registry on one page, each
// sample relabeled with job="<id>" — the single-scrape multi-tenant
// view.
func (s *Server) handleMergedMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	order := append([]*job(nil), s.order...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, j := range order {
		if err := j.reg.WritePrometheusLabeled(w, fmt.Sprintf("job=%q", j.id)); err != nil {
			return
		}
		_, _ = io.WriteString(w, "\n")
	}
}

package serve

// API coverage for the asynchrony/elasticity knobs: the staleness and
// elastic-join spec fields compile into the fault path, the job info
// endpoint surfaces the live fault/staleness summary while the job is
// still running, and invalid combinations are rejected at submission.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestElasticJobFaultSummary: a bounded-staleness job with one elastic
// join reports the fault summary over GET /jobs/{id} — live (from the
// per-job registry) while running, final (from the result) afterwards —
// and the JSON shape carries the staleness/elastic fields by name.
func TestElasticJobFaultSummary(t *testing.T) {
	srv := New(Config{WorkerSlots: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := fastSpec(11)
	spec.Epochs = 4
	spec.Staleness = 2
	spec.StalenessDiscount = 0.9
	spec.ElasticJoins = []int{3}
	info, resp := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	// The elastic slot occupies quota from submission.
	if info.Workers != spec.Workers+1 {
		t.Fatalf("workers %d, want %d (elastic slot reserved)", info.Workers, spec.Workers+1)
	}

	// While the job runs, the summary must be present and live.
	sawLive := false
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		raw, err := http.Get(ts.URL + "/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		var shape struct {
			State State `json:"state"`
			Fault *struct {
				Suspicions       *uint64 `json:"suspicions"`
				Rejoins          *uint64 `json:"rejoins"`
				StaleReuses      *uint64 `json:"stale_reuses"`
				StalenessCurrent *uint64 `json:"staleness_current"`
				StalenessMax     *uint64 `json:"staleness_max"`
				ElasticJoins     *uint64 `json:"elastic_joins"`
				GossipRounds     *uint64 `json:"gossip_rounds"`
			} `json:"fault"`
		}
		err = json.NewDecoder(raw.Body).Decode(&shape)
		raw.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if shape.State == StateRunning && shape.Fault != nil {
			// Every summary field must be present by name (not omitted),
			// so dashboards can rely on the shape.
			if shape.Fault.Suspicions == nil || shape.Fault.StalenessMax == nil ||
				shape.Fault.ElasticJoins == nil || shape.Fault.GossipRounds == nil ||
				shape.Fault.StaleReuses == nil || shape.Fault.StalenessCurrent == nil ||
				shape.Fault.Rejoins == nil {
				t.Fatalf("running fault summary missing fields: %+v", shape.Fault)
			}
			sawLive = true
		}
		if shape.State.terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawLive {
		t.Fatal("never observed a live fault summary on a running job")
	}

	final := waitTerminal(t, ts.URL, info.ID)
	if final.State != StateCompleted {
		t.Fatalf("final state %s: %+v", final.State, final)
	}
	if final.Fault == nil {
		t.Fatal("terminal info dropped the fault summary")
	}
	if final.Fault.ElasticJoins != 1 {
		t.Fatalf("final elastic joins %d, want 1", final.Fault.ElasticJoins)
	}
	if final.Fault.LostWorkers != 0 {
		t.Fatalf("scale-up lost workers: %+v", final.Fault)
	}
}

// TestBarrierJobHasNoFaultSummary: a plain BSP job never grows a fault
// block — the field stays absent rather than zero-filled.
func TestBarrierJobHasNoFaultSummary(t *testing.T) {
	srv := New(Config{WorkerSlots: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	info, resp := postJob(t, ts.URL, fastSpec(13))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	final := waitTerminal(t, ts.URL, info.ID)
	if final.Fault != nil {
		t.Fatalf("barrier job reported a fault summary: %+v", final.Fault)
	}
}

// TestElasticSpecRejections: invalid asynchrony specs fail at submission
// with 400, before any slot is taken.
func TestElasticSpecRejections(t *testing.T) {
	srv := New(Config{WorkerSlots: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := map[string]Spec{
		"staleness on ps":     {Backend: "ps", Staleness: 2},
		"negative staleness":  {Staleness: -1},
		"discount above one":  {Staleness: 1, StalenessDiscount: 2},
		"negative join":       {ElasticJoins: []int{-1}},
		"joins on ps":         {Backend: "ps", ElasticJoins: []int{2}},
		"gossip on ps":        {Backend: "ps", Collective: "gossip"},
		"gossip with buckets": {Collective: "gossip", BucketBytes: 4096},
	}
	for name, spec := range cases {
		_, resp := postJob(t, ts.URL, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

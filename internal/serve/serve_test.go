package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fftgrad/internal/dist"
)

// fastSpec is a small, quickly converging job for the scheduler tests.
func fastSpec(seed int64) Spec {
	return Spec{Workers: 2, Epochs: 2, Samples: 1024, Seed: seed}
}

func postJob(t *testing.T, url string, spec Spec) (Info, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info Info
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return info, resp
}

func getInfo(t *testing.T, url, id string) Info {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func waitTerminal(t *testing.T, url, id string) Info {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		info := getInfo(t, url, id)
		if info.State.terminal() {
			return info
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return Info{}
}

// TestJobLifecycle walks the full submit → run → stream → complete path
// over HTTP, including the SSE event feed.
func TestJobLifecycle(t *testing.T) {
	srv := New(Config{WorkerSlots: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	info, resp := postJob(t, ts.URL, fastSpec(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if info.ID == "" || info.Backend != "bsp" {
		t.Fatalf("bad submit info: %+v", info)
	}

	// The SSE feed must replay history and deliver epochs through the
	// terminal event.
	sresp, err := http.Get(ts.URL + "/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var types []string
	epochs := 0
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		types = append(types, ev.Type)
		if ev.Type == "epoch" {
			epochs++
			if ev.Epoch == nil {
				t.Fatal("epoch event without stats")
			}
		}
	}
	if len(types) == 0 || types[0] != "queued" || types[len(types)-1] != "completed" {
		t.Fatalf("event sequence %v", types)
	}
	if epochs != 2 {
		t.Fatalf("streamed %d epoch events, want 2", epochs)
	}

	final := getInfo(t, ts.URL, info.ID)
	if final.State != StateCompleted || final.EpochsDone != 2 {
		t.Fatalf("final info %+v", final)
	}
	if final.TestAcc <= 0.5 {
		t.Fatalf("final accuracy %.3f suspiciously low", final.TestAcc)
	}
}

// TestCancelReleasesQuota pins the quota ledger: canceling a running job
// frees its worker slots and the queued job behind it starts.
func TestCancelReleasesQuota(t *testing.T) {
	srv := New(Config{WorkerSlots: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	long := fastSpec(2)
	long.Epochs = 50 // long enough to still be running when canceled
	a, _ := postJob(t, ts.URL, long)
	b, _ := postJob(t, ts.URL, fastSpec(3))
	if got := getInfo(t, ts.URL, b.ID); got.State != StateQueued {
		t.Fatalf("job B state %s, want queued behind the full pool", got.State)
	}

	if _, err := http.Post(ts.URL+"/jobs/"+a.ID+"/cancel", "", nil); err != nil {
		t.Fatal(err)
	}
	if fa := waitTerminal(t, ts.URL, a.ID); fa.State != StateCanceled {
		t.Fatalf("canceled job state %s", fa.State)
	}
	if fb := waitTerminal(t, ts.URL, b.ID); fb.State != StateCompleted {
		t.Fatalf("queued job after cancel: %s (%s)", fb.State, fb.Error)
	}
}

// TestQueueFullRejects pins the bounded queue: one running, MaxQueue
// queued, and the next submission gets a typed 429.
func TestQueueFullRejects(t *testing.T) {
	srv := New(Config{WorkerSlots: 2, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	long := fastSpec(4)
	long.Epochs = 50
	a, _ := postJob(t, ts.URL, long)
	if _, resp := postJob(t, ts.URL, fastSpec(5)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit status %d", resp.StatusCode)
	}
	_, resp := postJob(t, ts.URL, fastSpec(6))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit status %d, want 429", resp.StatusCode)
	}
	if _, err := srv.Submit(fastSpec(7)); err == nil || !strings.Contains(err.Error(), ErrQueueFull.Error()) {
		t.Fatalf("Submit error %v, want ErrQueueFull", err)
	}
	srv.Cancel(a.ID)
	srv.Drain()
}

// TestBadSpecRejected pins 400 on validation failures.
func TestBadSpecRejected(t *testing.T) {
	srv := New(Config{WorkerSlots: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, spec := range []Spec{
		{Backend: "mpi"},
		{Method: "zstd"},
		{Workers: 128},
		{Backend: "ps", Guard: true},
	} {
		if _, resp := postJob(t, ts.URL, spec); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %+v: status %d, want 400", spec, resp.StatusCode)
		}
	}
	// A job wider than the whole pool can never run.
	if _, resp := postJob(t, ts.URL, Spec{Workers: 4}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("too-wide job accepted")
	}
}

// TestConcurrentJobsMatchSoloQuality is the acceptance gate: two jobs
// with different compressors running concurrently must each converge
// within 2 points of the same spec run alone.
func TestConcurrentJobsMatchSoloQuality(t *testing.T) {
	specA := fastSpec(8)
	specA.Method, specA.Theta = "fft", 0.85
	specB := fastSpec(9)
	specB.Method, specB.Theta = "topk", 0.9

	solo := func(spec Spec) float64 {
		s := spec
		if err := s.normalize(); err != nil {
			t.Fatal(err)
		}
		job, err := s.buildJob()
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run(dist.JobHarness{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Epochs[len(res.Epochs)-1].TestAcc
	}
	soloA, soloB := solo(specA), solo(specB)

	srv := New(Config{WorkerSlots: 4}) // both jobs fit at once
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	a, _ := postJob(t, ts.URL, specA)
	b, _ := postJob(t, ts.URL, specB)
	fa, fb := waitTerminal(t, ts.URL, a.ID), waitTerminal(t, ts.URL, b.ID)
	if fa.State != StateCompleted || fb.State != StateCompleted {
		t.Fatalf("states %s/%s (%s/%s)", fa.State, fb.State, fa.Error, fb.Error)
	}
	if fa.TestAcc < soloA-0.02 {
		t.Fatalf("concurrent fft job %.3f more than 2 points below solo %.3f", fa.TestAcc, soloA)
	}
	if fb.TestAcc < soloB-0.02 {
		t.Fatalf("concurrent topk job %.3f more than 2 points below solo %.3f", fb.TestAcc, soloB)
	}
}

// TestPerJobObservabilityIsolation: each job's registry and trace ring
// are its own; the merged view distinguishes tenants by job label.
func TestPerJobObservabilityIsolation(t *testing.T) {
	srv := New(Config{WorkerSlots: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	specA := fastSpec(10)
	specB := fastSpec(11)
	specB.Method, specB.Theta = "topk", 0.9
	a, _ := postJob(t, ts.URL, specA)
	b, _ := postJob(t, ts.URL, specB)
	waitTerminal(t, ts.URL, a.ID)
	waitTerminal(t, ts.URL, b.ID)

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := new(bytes.Buffer)
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	ma := get("/jobs/" + a.ID + "/metrics")
	if !strings.Contains(ma, "fftgrad_") {
		t.Fatalf("job A metrics empty:\n%s", ma)
	}
	merged := get("/jobs/metrics")
	for _, id := range []string{a.ID, b.ID} {
		if !strings.Contains(merged, fmt.Sprintf("job=%q", id)) {
			t.Fatalf("merged metrics missing job=%q:\n%.400s", id, merged)
		}
	}
	ta := get("/jobs/" + a.ID + "/trace")
	if !strings.Contains(ta, fmt.Sprintf("job %s (bsp)", a.ID)) {
		t.Fatalf("job A trace lacks its own process name:\n%.200s", ta)
	}
	tb := get("/jobs/" + b.ID + "/trace")
	if strings.Contains(tb, fmt.Sprintf("job %s ", a.ID)) {
		t.Fatal("job B trace leaked job A's identity")
	}
}

// TestPSJobOverHTTP runs the parameter-server backend through the
// service.
func TestPSJobOverHTTP(t *testing.T) {
	srv := New(Config{WorkerSlots: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	spec := fastSpec(12)
	spec.Backend = "ps"
	info, resp := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ps submit status %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts.URL, info.ID)
	if final.State != StateCompleted || final.Backend != "ps" {
		t.Fatalf("ps job %+v", final)
	}
	if final.TestAcc <= 0.5 {
		t.Fatalf("ps accuracy %.3f", final.TestAcc)
	}
}

// TestCollectiveJobOverHTTP submits a bucketed hierarchical-exchange job
// and pins the validation path: strategy typos and collective options on
// the PS backend are 400s, a valid spec runs to completion.
func TestCollectiveJobOverHTTP(t *testing.T) {
	srv := New(Config{WorkerSlots: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bad := fastSpec(13)
	bad.Collective = "mesh"
	if _, resp := postJob(t, ts.URL, bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown strategy status %d, want 400", resp.StatusCode)
	}
	badPS := fastSpec(13)
	badPS.Backend = "ps"
	badPS.BucketBytes = 1024
	if _, resp := postJob(t, ts.URL, badPS); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ps bucketing status %d, want 400", resp.StatusCode)
	}

	spec := fastSpec(14)
	spec.Workers = 4
	spec.Collective = "hier"
	spec.GroupSize = 2
	spec.BucketBytes = 1024
	info, resp := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("collective submit status %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts.URL, info.ID)
	if final.State != StateCompleted {
		t.Fatalf("collective job %+v", final)
	}
	if final.TestAcc <= 0.5 {
		t.Fatalf("collective accuracy %.3f", final.TestAcc)
	}
}

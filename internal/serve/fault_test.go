package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"fftgrad/internal/dist"
)

// TestWorkerCrashRejoinsWithoutCrossTalk is the acceptance gate for
// fault isolation: kill a worker mid-job via the seeded chaos harness,
// and the job must recover through the cluster rejoin machinery while a
// concurrently running job on the same server is unaffected.
func TestWorkerCrashRejoinsWithoutCrossTalk(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	srv := New(Config{WorkerSlots: 6})

	// 4 workers so evicting the crashed rank keeps quorum (3/4 alive).
	crashRank := 2
	victim := fastSpec(21)
	victim.Workers = 4
	victim.Epochs = 3
	victim.Chaos = &ChaosSpec{
		Seed:            21,
		CrashRank:       &crashRank,
		CrashAtOp:       600,
		RecoverAfterOps: 600,
	}
	bystander := fastSpec(22)

	vi, err := srv.Submit(victim)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := srv.Submit(bystander)
	if err != nil {
		t.Fatal(err)
	}

	soloAcc := soloRun(t, bystander)
	v := awaitTerminal(t, srv, vi.ID)
	b := awaitTerminal(t, srv, bi.ID)
	if v.State != StateCompleted {
		t.Fatalf("victim job state %s (%s)", v.State, v.Error)
	}
	if v.Rejoins == 0 {
		t.Fatal("crashed worker never rejoined: chaos schedule injected nothing")
	}
	if b.State != StateCompleted {
		t.Fatalf("bystander job state %s (%s)", b.State, b.Error)
	}
	if b.Rejoins != 0 {
		t.Fatalf("bystander recorded %d rejoins; fault leaked across jobs", b.Rejoins)
	}
	if b.TestAcc < soloAcc-0.02 {
		t.Fatalf("bystander accuracy %.3f more than 2 points below solo %.3f", b.TestAcc, soloAcc)
	}
}

func soloRun(t *testing.T, spec Spec) float64 {
	t.Helper()
	s := spec
	if err := s.normalize(); err != nil {
		t.Fatal(err)
	}
	job, err := s.buildJob()
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(dist.JobHarness{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Epochs[len(res.Epochs)-1].TestAcc
}

// awaitTerminal polls the server directly (no HTTP) until the job
// reaches a terminal state.
func awaitTerminal(t *testing.T, srv *Server, id string) Info {
	t.Helper()
	deadline := time.Now().Add(4 * time.Minute)
	for time.Now().Before(deadline) {
		info, err := srv.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State.terminal() {
			return info
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Info{}
}

// TestDrainSpoolsAndResumes: a drain halts running jobs at an iteration
// boundary, spools their final checkpoint, and a fresh server resumes
// the work from the spool file.
func TestDrainSpoolsAndResumes(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{WorkerSlots: 2, SpoolDir: dir})

	long := fastSpec(23)
	long.Epochs = 50
	info, err := srv.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first epoch so the drain catches the job mid-run.
	j, _ := srv.lookup(info.ID)
	for {
		events, more := j.wait(0)
		hasEpoch := false
		for _, ev := range events {
			if ev.Type == "epoch" {
				hasEpoch = true
			}
		}
		if hasEpoch {
			break
		}
		if more == nil {
			t.Fatal("job finished before the drain could interrupt it")
		}
		<-more
	}

	drained := srv.Drain()
	if len(drained) != 1 {
		t.Fatalf("drained %d jobs, want 1", len(drained))
	}
	got := drained[0]
	if got.State != StateHalted {
		t.Fatalf("drained job state %s, want halted", got.State)
	}
	want := filepath.Join(dir, info.ID+".ckpt")
	if got.Spool != want {
		t.Fatalf("spool path %q, want %q", got.Spool, want)
	}
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("spool file missing: %v", err)
	}

	// Admission is closed after the drain.
	if _, err := srv.Submit(fastSpec(24)); err == nil {
		t.Fatal("draining server accepted a job")
	}

	// A fresh server resumes from the spool and finishes quickly.
	srv2 := New(Config{WorkerSlots: 2})
	resumed := fastSpec(23)
	resumed.Epochs = 2
	resumed.ResumeFrom = want
	ri, err := srv2.Submit(resumed)
	if err != nil {
		t.Fatal(err)
	}
	rf := awaitTerminal(t, srv2, ri.ID)
	if rf.State != StateCompleted {
		t.Fatalf("resumed job state %s (%s)", rf.State, rf.Error)
	}
	if rf.TestAcc <= 0.5 {
		t.Fatalf("resumed accuracy %.3f", rf.TestAcc)
	}
}

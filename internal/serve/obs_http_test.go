package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"fftgrad/internal/obs"
)

// TestJobProfileEndpoints runs a job to completion and checks the whole
// observability surface: the iteration-profile document, the merged
// multi-process timeline, and the operator status view.
func TestJobProfileEndpoints(t *testing.T) {
	srv := New(Config{WorkerSlots: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	info, _ := postJob(t, ts.URL, fastSpec(5))
	waitTerminal(t, ts.URL, info.ID)

	// --- /jobs/{id}/profile -------------------------------------------
	resp, err := http.Get(ts.URL + "/jobs/" + info.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d", resp.StatusCode)
	}
	var prof obs.Profile
	if err := json.NewDecoder(resp.Body).Decode(&prof); err != nil {
		t.Fatalf("profile is not valid JSON: %v", err)
	}
	if prof.Build.Version == "" || prof.Build.Go == "" {
		t.Fatalf("profile missing build identity: %+v", prof.Build)
	}
	if prof.Summary.Iterations <= 0 {
		t.Fatalf("profile folded no iterations: %+v", prof.Summary)
	}
	if len(prof.Blame) != 2 {
		t.Fatalf("blame ledger has %d entries, want one per worker (2)", len(prof.Blame))
	}
	if len(prof.OffsetsNs) != 2 {
		t.Fatalf("offsets for %d ranks, want 2", len(prof.OffsetsNs))
	}
	if len(prof.Iterations) == 0 {
		t.Fatal("profile has no per-iteration critical paths")
	}
	last := prof.Iterations[len(prof.Iterations)-1]
	if last.WallNs <= 0 || last.CriticalRank < 0 || last.CriticalRank >= 2 {
		t.Fatalf("bad critical path entry: %+v", last)
	}

	// --- /jobs/{id}/profile/trace -------------------------------------
	resp2, err := http.Get(ts.URL + "/jobs/" + info.ID + "/profile/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&events); err != nil {
		t.Fatalf("merged timeline is not valid trace_event JSON: %v", err)
	}
	pids := map[float64]bool{}
	build := false
	for _, e := range events {
		if pid, ok := e["pid"].(float64); ok && e["ph"] == "X" {
			pids[pid] = true
		}
		if e["name"] == "fftgrad_build" {
			build = true
		}
	}
	if !build {
		t.Error("merged timeline missing the fftgrad_build stamp")
	}
	// Ranks export as processes pid=rank+1.
	for rank := 0; rank < 2; rank++ {
		if !pids[float64(rank+1)] {
			t.Errorf("merged timeline has no spans for rank %d (pid %d)", rank, rank+1)
		}
	}

	// --- /debug/status -------------------------------------------------
	resp3, err := http.Get(ts.URL + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var st debugStatus
	if err := json.NewDecoder(resp3.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Version == "" || st.Jobs[StateCompleted] == 0 {
		t.Fatalf("bad status: %+v", st)
	}
}

// TestHealthReadyFlipOnDrain pins the probe semantics: /healthz stays 200
// for the process's lifetime, /readyz flips to 503 the moment a drain
// begins.
func TestHealthReadyFlipOnDrain(t *testing.T) {
	srv := New(Config{WorkerSlots: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz %d before drain", got)
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz %d before drain", got)
	}
	srv.Drain()
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz %d after drain, must stay 200", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d after drain, want 503", got)
	}
}

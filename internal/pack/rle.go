package pack

import (
	"encoding/binary"
	"fmt"
)

// Fig. 6 shows the 1-bit-per-element status vector capping the achievable
// compression ratio at 32. At high sparsity the bitmap is itself highly
// compressible: long runs of all-zero words. This word-level run-length
// coder removes most of that overhead — zero-word runs and one-word runs
// collapse to a token + varint count, mixed words are stored literally —
// raising the ratio ceiling well past 32 for aggressive θ.

// RLE token kinds (one control byte each, followed by a uvarint count).
const (
	rleZeroRun = 0x00 // count all-zero words
	rleOneRun  = 0x01 // count all-one words
	rleLiteral = 0x02 // count literal words follow (8 bytes each)
)

// EncodeBitmapRLE compresses a bitmap. The output never exceeds the raw
// size by more than a few bytes per literal run.
func EncodeBitmapRLE(bitmap []uint64) []byte {
	out := make([]byte, 0, len(bitmap)/4+16)
	var tmp [binary.MaxVarintLen64]byte
	emitRun := func(kind byte, count int) {
		out = append(out, kind)
		n := binary.PutUvarint(tmp[:], uint64(count))
		out = append(out, tmp[:n]...)
	}
	i := 0
	for i < len(bitmap) {
		switch bitmap[i] {
		case 0:
			j := i
			for j < len(bitmap) && bitmap[j] == 0 {
				j++
			}
			emitRun(rleZeroRun, j-i)
			i = j
		case ^uint64(0):
			j := i
			for j < len(bitmap) && bitmap[j] == ^uint64(0) {
				j++
			}
			emitRun(rleOneRun, j-i)
			i = j
		default:
			j := i
			for j < len(bitmap) && bitmap[j] != 0 && bitmap[j] != ^uint64(0) {
				j++
			}
			emitRun(rleLiteral, j-i)
			for ; i < j; i++ {
				out = binary.LittleEndian.AppendUint64(out, bitmap[i])
			}
		}
	}
	return out
}

// DecodeBitmapRLE expands an RLE stream back into exactly words bitmap
// words.
func DecodeBitmapRLE(data []byte, words int) ([]uint64, error) {
	out := make([]uint64, 0, words)
	for len(data) > 0 {
		kind := data[0]
		data = data[1:]
		count, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("pack: bad RLE varint")
		}
		data = data[n:]
		if int(count) > words-len(out) {
			return nil, fmt.Errorf("pack: RLE run of %d overflows %d-word bitmap", count, words)
		}
		switch kind {
		case rleZeroRun:
			for i := 0; i < int(count); i++ {
				out = append(out, 0)
			}
		case rleOneRun:
			for i := 0; i < int(count); i++ {
				out = append(out, ^uint64(0))
			}
		case rleLiteral:
			if len(data) < int(count)*8 {
				return nil, fmt.Errorf("pack: RLE literal run truncated")
			}
			for i := 0; i < int(count); i++ {
				out = append(out, binary.LittleEndian.Uint64(data[i*8:]))
			}
			data = data[count*8:]
		default:
			return nil, fmt.Errorf("pack: unknown RLE token %#02x", kind)
		}
	}
	if len(out) != words {
		return nil, fmt.Errorf("pack: RLE decoded %d words, want %d", len(out), words)
	}
	return out, nil
}

// WireBytesRLE returns the packed message size when the bitmap travels
// RLE-compressed instead of raw — the Fig. 6 overhead after this
// optimization.
func (s *Sparse) WireBytesRLE() int {
	return len(EncodeBitmapRLE(s.Bitmap)) + len(s.Values)*4
}

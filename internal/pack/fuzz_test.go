package pack

import "testing"

// FuzzDecodeBitmapRLE feeds arbitrary bytes to the RLE decoder: errors
// are fine, panics and over-allocation are not, and any stream that
// decodes must re-encode to a stream that decodes to the same bitmap.
func FuzzDecodeBitmapRLE(f *testing.F) {
	f.Add(EncodeBitmapRLE([]uint64{0, ^uint64(0), 0xDEADBEEF}), uint16(3))
	f.Add([]byte{rleZeroRun, 5}, uint16(5))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0xFF}, uint16(4))

	f.Fuzz(func(t *testing.T, data []byte, wordsRaw uint16) {
		words := int(wordsRaw) % 4096
		bm, err := DecodeBitmapRLE(data, words)
		if err != nil {
			return
		}
		if len(bm) != words {
			t.Fatalf("decoded %d words, want %d", len(bm), words)
		}
		back, err := DecodeBitmapRLE(EncodeBitmapRLE(bm), words)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		for i := range bm {
			if back[i] != bm[i] {
				t.Fatal("re-encode changed the bitmap")
			}
		}
	})
}

package pack

import (
	"math/rand"
	"testing"

	"fftgrad/internal/parallel"
)

// packNonzeroBranchy is the pre-branch-free bitmap build, kept in the
// benchmarks as the A/B reference for the branch-free word assembly.
func packNonzeroBranchy(x []float32) *Sparse {
	n := len(x)
	bitmap := make([]uint64, BitmapWords(n))
	words := len(bitmap)
	parallel.ForGrain2(words, 64, bitmap, x, func(bitmap []uint64, x []float32, wlo, whi int) {
		n := len(x)
		for w := wlo; w < whi; w++ {
			base := w << 6
			end := base + 64
			if end > n {
				end = n
			}
			var word uint64
			for i := base; i < end; i++ {
				if x[i] != 0 {
					word |= 1 << (uint(i) & 63)
				}
			}
			bitmap[w] = word
		}
	})
	return PackMask(x, bitmap)
}

func benchVec(n int, density float64) []float32 {
	r := rand.New(rand.NewSource(3))
	x := make([]float32, n)
	for i := range x {
		if density >= 1 || r.Float64() < density {
			x[i] = float32(r.NormFloat64()) + 1
		}
	}
	return x
}

func benchPack(b *testing.B, f func([]float32) *Sparse, x []float32) {
	b.SetBytes(int64(4 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(x)
	}
}

func BenchmarkPackDenseBranchy(b *testing.B)    { benchPack(b, packNonzeroBranchy, benchVec(1<<21, 1)) }
func BenchmarkPackDenseBranchFree(b *testing.B) { benchPack(b, PackNonzero, benchVec(1<<21, 1)) }
func BenchmarkPackSparseBranchy(b *testing.B) {
	benchPack(b, packNonzeroBranchy, benchVec(1<<21, 0.12))
}
func BenchmarkPackSparseBranchFree(b *testing.B) { benchPack(b, PackNonzero, benchVec(1<<21, 0.12)) }

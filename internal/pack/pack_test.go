package pack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fftgrad/internal/topk"
)

func sparseVector(n int, density float64, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float32, n)
	for i := range x {
		if r.Float64() < density {
			x[i] = float32(r.NormFloat64())
			if x[i] == 0 {
				x[i] = 1
			}
		}
	}
	return x
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 100000} {
		x := sparseVector(n, 0.1, int64(n))
		p := PackNonzero(x)
		dst := make([]float32, n)
		for i := range dst {
			dst[i] = 99 // must be overwritten
		}
		p.Unpack(dst)
		for i := range x {
			if dst[i] != x[i] {
				t.Fatalf("n=%d index %d: %g != %g", n, i, dst[i], x[i])
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	x := sparseVector(200000, 0.15, 7)
	par := PackNonzero(x)
	ser := PackNonzeroSerial(x)
	if par.N != ser.N || len(par.Values) != len(ser.Values) {
		t.Fatalf("shape mismatch: %d/%d values vs %d/%d", par.N, len(par.Values), ser.N, len(ser.Values))
	}
	for i := range par.Bitmap {
		if par.Bitmap[i] != ser.Bitmap[i] {
			t.Fatalf("bitmap word %d differs", i)
		}
	}
	for i := range par.Values {
		if par.Values[i] != ser.Values[i] {
			t.Fatalf("value %d differs: %g vs %g", i, par.Values[i], ser.Values[i])
		}
	}
	d1 := make([]float32, len(x))
	d2 := make([]float32, len(x))
	par.Unpack(d1)
	par.UnpackSerial(d2)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("unpack mismatch at %d", i)
		}
	}
}

func TestPackMaskIgnoresUnselected(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5}
	bitmap := make([]uint64, 1)
	bitmap[0] = 0b10101 // keep indices 0, 2, 4
	p := PackMask(x, bitmap)
	want := []float32{1, 3, 5}
	if len(p.Values) != len(want) {
		t.Fatalf("got %d values", len(p.Values))
	}
	for i := range want {
		if p.Values[i] != want[i] {
			t.Fatalf("value %d: %g want %g", i, p.Values[i], want[i])
		}
	}
	dst := make([]float32, 5)
	p.Unpack(dst)
	wantDense := []float32{1, 0, 3, 0, 5}
	for i := range wantDense {
		if dst[i] != wantDense[i] {
			t.Fatalf("dense %d: %g want %g", i, dst[i], wantDense[i])
		}
	}
}

func TestPackMaskBadBitmapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PackMask(make([]float32, 100), make([]uint64, 1))
}

func TestUnpackBadLengthPanics(t *testing.T) {
	p := PackNonzero([]float32{1, 0, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Unpack(make([]float32, 2))
}

// Property: pack∘unpack is the identity on any float32 vector whose zeros
// are exact (non-zero values survive, zeros stay zero).
func TestPackRoundTripProperty(t *testing.T) {
	f := func(vals []float32) bool {
		p := PackNonzero(vals)
		dst := make([]float32, len(vals))
		p.Unpack(dst)
		for i := range vals {
			// NaN != NaN, compare bitwise semantics via equality on
			// non-NaN and self-inequality on NaN.
			if vals[i] != vals[i] {
				if dst[i] == dst[i] {
					return false
				}
				continue
			}
			if dst[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWireBytesAndRatio(t *testing.T) {
	// 6400 elements, 64 kept: bitmap = 100 words = 800 bytes,
	// values = 256 bytes. Original 25600 bytes.
	n := 6400
	x := make([]float32, n)
	for i := 0; i < 64; i++ {
		x[i*100] = 1
	}
	p := PackNonzero(x)
	if got, want := p.WireBytes(), 800+256; got != want {
		t.Fatalf("WireBytes %d want %d", got, want)
	}
	wantRatio := float64(n*4) / float64(800+256)
	if got := p.CompressionRatio(); got != wantRatio {
		t.Fatalf("ratio %g want %g", got, wantRatio)
	}
}

// Fig. 6 behaviour: even with *everything* dropped, the bitmap bounds the
// ratio at 32; and the marginal gain beyond ratio ~20 is small.
func TestBitmapBoundsRatio(t *testing.T) {
	n := 64000
	empty := PackNonzero(make([]float32, n))
	if got := empty.CompressionRatio(); got != 32 {
		t.Fatalf("all-dropped ratio %g want 32", got)
	}
	// θ=0.05 (keep 5%): ratio = 32n / (n + 32·0.05n) = 32/2.6 ≈ 12.3
	x := sparseVector(n, 0.05, 1)
	p := PackNonzero(x)
	if r := p.CompressionRatio(); r < 10 || r > 14 {
		t.Fatalf("5%% density ratio %g out of expected band", r)
	}
}

func TestPackWithTopKMask(t *testing.T) {
	n := 10000
	r := rand.New(rand.NewSource(3))
	x := make([]float32, n)
	mags := make([]float64, n)
	for i := range x {
		x[i] = float32(r.NormFloat64())
		m := float64(x[i])
		if m < 0 {
			m = -m
		}
		mags[i] = m
	}
	k := 1000
	mask := topk.MaskTopK(mags, k)
	p := PackMask(x, mask)
	if len(p.Values) != k {
		t.Fatalf("expected %d packed values, got %d", k, len(p.Values))
	}
}

func BenchmarkPackParallel(b *testing.B) {
	// 25M floats = 100 MB, the message size in the paper's packing claim.
	x := sparseVector(25_000_000, 0.15, 1)
	b.SetBytes(int64(len(x) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackNonzero(x)
	}
}

func BenchmarkPackSerial(b *testing.B) {
	x := sparseVector(25_000_000, 0.15, 1)
	b.SetBytes(int64(len(x) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackNonzeroSerial(x)
	}
}

func BenchmarkUnpackParallel(b *testing.B) {
	x := sparseVector(25_000_000, 0.15, 1)
	p := PackNonzero(x)
	dst := make([]float32, len(x))
	b.SetBytes(int64(len(x) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Unpack(dst)
	}
}

// TestBranchFreeBitmapMatchesSerial pins the branch-free status-vector
// build against the serial baseline on adversarial payloads: signed
// zeros (both must be treated as zero, like the != 0 comparison), float32
// subnormals, NaN and Inf (non-zero), across lengths that exercise the
// 8-wide full-word path and every tail shape.
func TestBranchFreeBitmapMatchesSerial(t *testing.T) {
	specials := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		math.MaxFloat32,
	}
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000, 4096, 4097} {
		x := make([]float32, n)
		for i := range x {
			x[i] = specials[r.Intn(len(specials))]
		}
		got := PackNonzero(x)
		want := PackNonzeroSerial(x)
		if len(got.Bitmap) != len(want.Bitmap) {
			t.Fatalf("n=%d: bitmap words %d != %d", n, len(got.Bitmap), len(want.Bitmap))
		}
		for w := range got.Bitmap {
			if got.Bitmap[w] != want.Bitmap[w] {
				t.Fatalf("n=%d word %d: %#x != %#x", n, w, got.Bitmap[w], want.Bitmap[w])
			}
		}
		if len(got.Values) != len(want.Values) {
			t.Fatalf("n=%d: %d values != %d", n, len(got.Values), len(want.Values))
		}
		for i := range got.Values {
			gb := math.Float32bits(got.Values[i])
			wb := math.Float32bits(want.Values[i])
			if gb != wb {
				t.Fatalf("n=%d value %d: %#x != %#x", n, i, gb, wb)
			}
		}
	}
}

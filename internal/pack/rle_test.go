package pack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRLERoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, words := range []int{0, 1, 10, 1000} {
		for _, density := range []float64{0, 0.001, 0.1, 0.5, 1} {
			bm := make([]uint64, words)
			for w := range bm {
				for b := 0; b < 64; b++ {
					if r.Float64() < density {
						bm[w] |= 1 << uint(b)
					}
				}
			}
			enc := EncodeBitmapRLE(bm)
			dec, err := DecodeBitmapRLE(enc, words)
			if err != nil {
				t.Fatalf("words=%d density=%g: %v", words, density, err)
			}
			for w := range bm {
				if dec[w] != bm[w] {
					t.Fatalf("words=%d density=%g word %d mismatch", words, density, w)
				}
			}
		}
	}
}

func TestRLERoundTripProperty(t *testing.T) {
	f := func(bm []uint64) bool {
		dec, err := DecodeBitmapRLE(EncodeBitmapRLE(bm), len(bm))
		if err != nil {
			return false
		}
		for i := range bm {
			if dec[i] != bm[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRLECompressesSparseBitmaps(t *testing.T) {
	// Word-level RLE: with bit density d, a word is all-zero with
	// probability (1-d)^64 — at d=1% that is only ~53%, so expect a
	// modest squeeze; at d=0.1% (94% zero words) a strong one.
	words := 10000
	fill := func(perMille int) []uint64 {
		bm := make([]uint64, words)
		r := rand.New(rand.NewSource(int64(perMille)))
		for i := 0; i < words*64*perMille/1000; i++ {
			pos := r.Intn(words * 64)
			bm[pos>>6] |= 1 << (uint(pos) & 63)
		}
		return bm
	}
	if enc := EncodeBitmapRLE(fill(10)); len(enc) >= words*8*3/4 {
		t.Fatalf("1%% bitmap: %d vs %d raw", len(enc), words*8)
	}
	if enc := EncodeBitmapRLE(fill(1)); len(enc) >= words*8/4 {
		t.Fatalf("0.1%% bitmap should compress >4x: %d vs %d raw", len(enc), words*8)
	}
	// All-zero compresses to a few bytes.
	if l := len(EncodeBitmapRLE(make([]uint64, words))); l > 8 {
		t.Fatalf("all-zero bitmap encoded to %d bytes", l)
	}
}

func TestRLEBoundedExpansion(t *testing.T) {
	// Dense random bitmap: all literal words; overhead must stay small.
	words := 5000
	r := rand.New(rand.NewSource(3))
	bm := make([]uint64, words)
	for w := range bm {
		bm[w] = r.Uint64() | 1 // avoid zero words
		if bm[w] == ^uint64(0) {
			bm[w]--
		}
	}
	enc := EncodeBitmapRLE(bm)
	if len(enc) > words*8+16 {
		t.Fatalf("dense bitmap expanded too much: %d vs %d raw", len(enc), words*8)
	}
}

func TestRLEDecodeErrors(t *testing.T) {
	bm := []uint64{0, ^uint64(0), 0x1234}
	enc := EncodeBitmapRLE(bm)
	if _, err := DecodeBitmapRLE(enc, 2); err == nil {
		t.Fatal("word-count mismatch should error")
	}
	if _, err := DecodeBitmapRLE(enc[:len(enc)-3], 3); err == nil {
		t.Fatal("truncation should error")
	}
	if _, err := DecodeBitmapRLE([]byte{0xFF, 0x01}, 3); err == nil {
		t.Fatal("unknown token should error")
	}
	if _, err := DecodeBitmapRLE([]byte{rleZeroRun}, 3); err == nil {
		t.Fatal("missing varint should error")
	}
	// A run longer than the bitmap must be rejected.
	if _, err := DecodeBitmapRLE([]byte{rleZeroRun, 0xFF, 0x01}, 3); err == nil {
		t.Fatal("overlong run should error")
	}
}

// The Fig. 6 improvement: at very high sparsity, the RLE wire size pushes
// the achievable ratio past the raw-bitmap ceiling of 32.
func TestRLELiftsRatioCeiling(t *testing.T) {
	n := 640000
	x := make([]float32, n)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < n/1000; i++ { // 0.1% density
		x[r.Intn(n)] = 1
	}
	sp := PackNonzero(x)
	raw := float64(n*4) / float64(sp.WireBytes())
	rle := float64(n*4) / float64(sp.WireBytesRLE())
	if raw > 32 {
		t.Fatalf("raw ratio %f should be capped at 32", raw)
	}
	if rle < 100 {
		t.Fatalf("RLE ratio %f should blow past the 32 ceiling at 0.1%% density", rle)
	}
}

func BenchmarkEncodeBitmapRLE(b *testing.B) {
	words := 1 << 17 // 8M-bit bitmap
	bm := make([]uint64, words)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < words*64/20; i++ {
		pos := r.Intn(words * 64)
		bm[pos>>6] |= 1 << (uint(pos) & 63)
	}
	b.SetBytes(int64(words * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeBitmapRLE(bm)
	}
}

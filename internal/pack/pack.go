// Package pack converts irregular sparse vectors into dense messages and
// back, implementing the parallel packing algorithm of Sec. 3.2:
//
//  1. build a status vector marking non-zero (or mask-selected) elements,
//  2. parallel prefix-sum the status vector into a location vector,
//  3. scatter surviving elements to dense[location[i]-1].
//
// The status vector travels with the message as a bitmap (1 bit per source
// element), which is what makes very aggressive sparsification (θ < 0.05,
// compression ratio > 20 on the value payload) stop paying off — Fig. 6.
package pack

import (
	"math"
	"math/bits"

	"fftgrad/internal/parallel"
	"fftgrad/internal/scratch"
)

// Sparse is a packed sparse vector: a bitmap marking which of the N source
// positions survived, plus the surviving values in position order.
type Sparse struct {
	N      int       // original (unpacked) length
	Bitmap []uint64  // ⌈N/64⌉ words; bit i set ⇒ position i kept
	Values []float32 // packed surviving values, len == popcount(Bitmap)
}

// BitmapWords returns the number of uint64 words needed for n bits.
func BitmapWords(n int) int { return (n + 63) / 64 }

// WireBytes returns the size in bytes of the packed message: the bitmap
// plus the dense values. This is the quantity the compression-ratio
// accounting in Fig. 6 uses (before any further quantization of Values).
func (s *Sparse) WireBytes() int {
	return len(s.Bitmap)*8 + len(s.Values)*4
}

// nzBit returns 1 if v != 0 and 0 otherwise, without a branch: the sign
// bit is shifted out (so +0 and -0 both map to bit pattern 0, matching
// float comparison semantics — NaNs and subnormals are non-zero), and
// (b | -b) has its top bit set exactly when b is non-zero.
func nzBit(v float32) uint64 {
	b := math.Float32bits(v) << 1
	return uint64((b | -b) >> 31)
}

// PackNonzero packs every non-zero element of x. Parallel. The status
// bitmap is built branch-free, 8 elements per step, so the word assembly
// runs at memory speed regardless of the sparsity pattern (a conditional
// per element would mispredict constantly on sparsified gradients).
func PackNonzero(x []float32) *Sparse {
	n := len(x)
	bitmap := make([]uint64, BitmapWords(n))
	// Each 64-element stripe maps to one word, so chunking on word
	// boundaries keeps writers disjoint.
	words := len(bitmap)
	parallel.ForGrain2(words, 64, bitmap, x, func(bitmap []uint64, x []float32, wlo, whi int) {
		n := len(x)
		for w := wlo; w < whi; w++ {
			base := w << 6
			if base+64 <= n {
				s := x[base : base+64 : base+64]
				var word uint64
				for j := 0; j < 64; j += 8 {
					word |= nzBit(s[j])<<uint(j) |
						nzBit(s[j+1])<<uint(j+1) |
						nzBit(s[j+2])<<uint(j+2) |
						nzBit(s[j+3])<<uint(j+3) |
						nzBit(s[j+4])<<uint(j+4) |
						nzBit(s[j+5])<<uint(j+5) |
						nzBit(s[j+6])<<uint(j+6) |
						nzBit(s[j+7])<<uint(j+7)
				}
				bitmap[w] = word
				continue
			}
			var word uint64
			for i := base; i < n; i++ {
				word |= nzBit(x[i]) << (uint(i) & 63)
			}
			bitmap[w] = word
		}
	})
	return PackMask(x, bitmap)
}

// PackMask packs the elements of x selected by the given bitmap (values at
// unselected positions are ignored, whatever their content). The parallel
// structure follows Sec. 3.2 — status vector, prefix sum, scatter — but
// the prefix sum runs over per-chunk word popcounts instead of one
// counter per element, so packing is two passes over the bitmap with no
// O(n) temporary.
func PackMask(x []float32, bitmap []uint64) *Sparse {
	n := len(x)
	if len(bitmap) != BitmapWords(n) {
		panic("pack: bitmap length mismatch")
	}
	words := len(bitmap)
	chunks, size := parallel.Plan(words, 2048)
	if chunks == 0 {
		return &Sparse{N: n, Bitmap: bitmap, Values: nil}
	}

	// Pass 1: per-chunk popcounts, scanned in place into exclusive offsets.
	offb := scratch.Ints(chunks)
	defer scratch.PutInts(offb)
	offsets := *offb
	parallel.ForGrain3(chunks, 1, offsets, bitmap, size, chunkPopcounts)
	running := 0
	for c, t := range offsets {
		offsets[c] = running
		running += t
	}
	values := make([]float32, running)

	// Pass 2: each chunk gathers its surviving values at its offset.
	parallel.ForGrain1(chunks, 1,
		scatterCtx{offsets: offsets, bitmap: bitmap, values: values, dense: x, size: size},
		func(sc scatterCtx, clo, chi int) {
			words := len(sc.bitmap)
			for c := clo; c < chi; c++ {
				vi := sc.offsets[c]
				wlo, whi := parallel.ChunkBounds(c, sc.size, words)
				for w := wlo; w < whi; w++ {
					word := sc.bitmap[w]
					base := w << 6
					for word != 0 {
						bit := bits.TrailingZeros64(word)
						sc.values[vi] = sc.dense[base+bit]
						vi++
						word &= word - 1
					}
				}
			}
		})
	return &Sparse{N: n, Bitmap: bitmap, Values: values}
}

// scatterCtx threads the pack/unpack pass-2 state through For1 by value so
// the loop bodies capture nothing (see parallel.For1 on why that matters
// for steady-state allocation).
type scatterCtx struct {
	offsets []int
	bitmap  []uint64
	values  []float32
	dense   []float32 // gather source (PackMask) or scatter target (UnpackInto)
	size    int
}

// chunkPopcounts is the shared pass-1 body: per-chunk bitmap popcounts
// written to offsets[c], later scanned into exclusive offsets. The count
// loop is unrolled 8 wide: OnesCount64 compiles to a single POPCNT-class
// instruction, so with one word per step the loop control dominates;
// eight independent counts per step let them pipeline.
func chunkPopcounts(offsets []int, bitmap []uint64, size, clo, chi int) {
	words := len(bitmap)
	for c := clo; c < chi; c++ {
		wlo, whi := parallel.ChunkBounds(c, size, words)
		b := bitmap[wlo:whi]
		total := 0
		i := 0
		for ; i+8 <= len(b); i += 8 {
			total += bits.OnesCount64(b[i]) + bits.OnesCount64(b[i+1]) +
				bits.OnesCount64(b[i+2]) + bits.OnesCount64(b[i+3]) +
				bits.OnesCount64(b[i+4]) + bits.OnesCount64(b[i+5]) +
				bits.OnesCount64(b[i+6]) + bits.OnesCount64(b[i+7])
		}
		for ; i < len(b); i++ {
			total += bits.OnesCount64(b[i])
		}
		offsets[c] = total
	}
}

// PackNonzeroSerial is the single-threaded baseline packing algorithm the
// paper compares against (it reports a 689x parallel speedup on a V100).
func PackNonzeroSerial(x []float32) *Sparse {
	n := len(x)
	bitmap := make([]uint64, BitmapWords(n))
	values := make([]float32, 0, n/8)
	for i, v := range x {
		if v != 0 {
			bitmap[i>>6] |= 1 << (uint(i) & 63)
			values = append(values, v)
		}
	}
	return &Sparse{N: n, Bitmap: bitmap, Values: values}
}

// Unpack scatters the packed values back into a dense vector of length N.
// dst must have length N; positions not covered by the bitmap are zeroed.
// Parallel: per-chunk popcount offsets, then an independent scatter per
// chunk.
func (s *Sparse) Unpack(dst []float32) {
	UnpackInto(dst, s.Bitmap, s.Values)
}

// UnpackInto scatters values into dst according to bitmap (dst positions
// with a clear bit are zeroed). len(bitmap) must be BitmapWords(len(dst))
// and len(values) the bitmap popcount. This is the allocation-free core of
// Sparse.Unpack for callers holding the fields in reused buffers.
func UnpackInto(dst []float32, bitmap []uint64, values []float32) {
	n := len(dst)
	if len(bitmap) != BitmapWords(n) {
		panic("pack: dst length mismatch")
	}
	words := len(bitmap)
	chunks, size := parallel.Plan(words, 2048)
	if chunks == 0 {
		return
	}
	offb := scratch.Ints(chunks)
	defer scratch.PutInts(offb)
	offsets := *offb
	parallel.ForGrain3(chunks, 1, offsets, bitmap, size, chunkPopcounts)
	running := 0
	for c, t := range offsets {
		offsets[c] = running
		running += t
	}
	parallel.ForGrain1(chunks, 1,
		scatterCtx{offsets: offsets, bitmap: bitmap, values: values, dense: dst, size: size},
		func(sc scatterCtx, clo, chi int) {
			words := len(sc.bitmap)
			n := len(sc.dense)
			for c := clo; c < chi; c++ {
				vi := sc.offsets[c]
				wlo, whi := parallel.ChunkBounds(c, sc.size, words)
				for w := wlo; w < whi; w++ {
					word := sc.bitmap[w]
					base := w << 6
					end := base + 64
					if end > n {
						end = n
					}
					for i := base; i < end; i++ {
						sc.dense[i] = 0
					}
					for word != 0 {
						bit := bits.TrailingZeros64(word)
						sc.dense[base+bit] = sc.values[vi]
						vi++
						word &= word - 1
					}
				}
			}
		})
}

// UnpackSerial is the single-threaded unpacking baseline.
func (s *Sparse) UnpackSerial(dst []float32) {
	if len(dst) != s.N {
		panic("pack: dst length mismatch")
	}
	j := 0
	for i := 0; i < s.N; i++ {
		if s.Bitmap[i>>6]&(1<<(uint(i)&63)) != 0 {
			dst[i] = s.Values[j]
			j++
		} else {
			dst[i] = 0
		}
	}
}

// CompressionRatio returns originalBytes / wireBytes for a float32 source
// of length N packed into this sparse message. See Fig. 6: with the bitmap
// costing 1 bit per source element, the ratio saturates at 32 even when
// every value is dropped.
func (s *Sparse) CompressionRatio() float64 {
	return float64(s.N*4) / float64(s.WireBytes())
}

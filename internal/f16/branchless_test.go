package f16

import (
	"math"
	"math/rand"
	"testing"
)

// TestDecodeBitsExhaustive proves decodeBits == Bits.Float32 over the
// entire 16-bit input space — zeros, subnormals, normals, infinities, and
// every NaN payload.
func TestDecodeBitsExhaustive(t *testing.T) {
	for u := 0; u <= 0xFFFF; u++ {
		h := Bits(u)
		want := h.Float32()
		got := decodeBits(h)
		if math.Float32bits(want) != math.Float32bits(got) {
			t.Fatalf("h=%#04x: scalar %#08x branchless %#08x", u,
				math.Float32bits(want), math.Float32bits(got))
		}
	}
}

// TestEncodeBitsExhaustiveBoundaries sweeps every float32 whose high
// halfword takes each of the 65536 possible values, crossed with low-bit
// patterns chosen to hit each rounding decision (zero, just-below-half,
// exact-half for both tie parities, just-above-half, all-ones). The high
// half fixes the class (sign, exponent, top mantissa bits), so this
// covers every class boundary — normal/subnormal, subnormal/underflow,
// overflow-to-Inf, Inf, NaN payloads — with every rounding behaviour.
func TestEncodeBitsExhaustiveBoundaries(t *testing.T) {
	lows := []uint32{0x0000, 0x0FFF, 0x1000, 0x1001, 0x1FFF, 0xFFFF, 0x8000, 0x0001}
	for hi := 0; hi <= 0xFFFF; hi++ {
		for _, lo := range lows {
			b := uint32(hi)<<16 | lo
			want := FromFloat32(math.Float32frombits(b))
			got := encodeBits(b)
			if want != got {
				t.Fatalf("bits=%#08x: scalar %#04x branchless %#04x", b, want, got)
			}
		}
	}
}

// TestEncodeBitsRandom adds a dense random sweep on top of the structured
// boundary scan.
func TestEncodeBitsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2_000_000; i++ {
		b := r.Uint32()
		want := FromFloat32(math.Float32frombits(b))
		got := encodeBits(b)
		if want != got {
			t.Fatalf("bits=%#08x: scalar %#04x branchless %#04x", b, want, got)
		}
	}
}

// TestBranchlessEdgeValues spot-checks the documented edge cases by name,
// so a future regression reports which class broke rather than a raw bit
// pattern.
func TestBranchlessEdgeValues(t *testing.T) {
	cases := []struct {
		name string
		in   float32
	}{
		{"+0", 0},
		{"-0", float32(math.Copysign(0, -1))},
		{"+Inf", float32(math.Inf(1))},
		{"-Inf", float32(math.Inf(-1))},
		{"NaN", float32(math.NaN())},
		{"MaxValue", MaxValue},
		{"just above MaxValue", 65520},
		{"midpoint 65504..65536 ties to Inf", 65520.000001},
		{"MinNormal", MinNormal},
		{"below MinNormal", MinNormal * 0.99},
		{"MinSubnormal", MinSubnormal},
		{"half of MinSubnormal (ties to zero)", MinSubnormal / 2},
		{"just above half MinSubnormal", MinSubnormal * 0.500001},
		{"largest subnormal", MinNormal - MinSubnormal},
		{"one", 1},
		{"one plus half ulp", 1.000244140625}, // exactly between 1 and 1+2^-10
	}
	for _, c := range cases {
		b := math.Float32bits(c.in)
		want := FromFloat32(c.in)
		got := encodeBits(b)
		if want != got {
			t.Errorf("%s (%#08x): scalar %#04x branchless %#04x", c.name, b, want, got)
		}
	}
	// NaN payloads: every quiet/signalling mantissa pattern in the top
	// bits must keep NaN-ness and the payload slice the scalar keeps.
	for _, man := range []uint32{1, 0x1FFF, 0x2000, 0x200000, 0x3FFFFF, 0x400000, 0x7FFFFF} {
		for _, sign := range []uint32{0, 0x80000000} {
			b := sign | 0x7F800000 | man
			want := FromFloat32(math.Float32frombits(b))
			got := encodeBits(b)
			if want != got {
				t.Errorf("NaN payload %#08x: scalar %#04x branchless %#04x", b, want, got)
			}
		}
	}
}

package f16

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Bits
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},             // max finite
		{6.103515625e-05, 0x0400},   // min normal
		{5.9604644775390625e-08, 1}, // min subnormal
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if back := c.bits.Float32(); back != c.f {
			t.Errorf("Bits(%#04x).Float32() = %g, want %g", c.bits, back, c.f)
		}
	}
}

func TestOverflowToInfinity(t *testing.T) {
	if got := FromFloat32(65520); got != PositiveInfinity {
		t.Errorf("65520 should round to +Inf, got %#04x", got)
	}
	if got := FromFloat32(1e30); got != PositiveInfinity {
		t.Errorf("1e30 should overflow to +Inf, got %#04x", got)
	}
	if got := FromFloat32(-1e30); got != NegativeInfinity {
		t.Errorf("-1e30 should overflow to -Inf, got %#04x", got)
	}
}

func TestUnderflowToZero(t *testing.T) {
	tiny := float32(1e-10)
	got := FromFloat32(tiny)
	if got != 0 {
		t.Errorf("1e-10 should underflow to +0, got %#04x", got)
	}
	got = FromFloat32(-tiny)
	if got != 0x8000 {
		t.Errorf("-1e-10 should underflow to -0, got %#04x", got)
	}
}

func TestNaNPreserved(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("NaN not preserved: %#04x", h)
	}
	if !math.IsNaN(float64(h.Float32())) {
		t.Fatal("decoded NaN is not NaN")
	}
}

func TestIsInf(t *testing.T) {
	if !PositiveInfinity.IsInf() || !NegativeInfinity.IsInf() {
		t.Fatal("infinities not detected")
	}
	if Bits(0x3C00).IsInf() || Bits(0x3C00).IsNaN() {
		t.Fatal("1.0 misclassified")
	}
}

// Every binary16 value must round-trip exactly through float32.
func TestExhaustiveRoundTrip(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := Bits(i)
		if h.IsNaN() {
			continue
		}
		f := h.Float32()
		back := FromFloat32(f)
		if back != h {
			t.Fatalf("bits %#04x -> %g -> %#04x", h, f, back)
		}
	}
}

// Rounding property: the conversion must pick the nearest representable
// half; on ties it must pick the even mantissa.
func TestRoundToNearestEven(t *testing.T) {
	// 1.0 + 2^-11 is exactly halfway between 1.0 (0x3C00, even) and the
	// next half 1.0009765625 (0x3C01, odd): must round to even = 0x3C00.
	halfway := float32(1.0) + float32(math.Exp2(-11))
	if got := FromFloat32(halfway); got != 0x3C00 {
		t.Errorf("tie should round to even: got %#04x", got)
	}
	// Just above halfway must round up.
	above := math.Nextafter32(halfway, 2)
	if got := FromFloat32(above); got != 0x3C01 {
		t.Errorf("above tie should round up: got %#04x", got)
	}
	// 1.0 + 3*2^-11 is halfway between 0x3C01 (odd) and 0x3C02 (even):
	// must round to even = 0x3C02.
	halfway2 := float32(1.0) + 3*float32(math.Exp2(-11))
	if got := FromFloat32(halfway2); got != 0x3C02 {
		t.Errorf("tie should round to even: got %#04x", got)
	}
}

// Property: for values inside the normal range, the relative quantization
// error is bounded by 2^-11 (half ULP of a 10-bit mantissa).
func TestQuantizationErrorBound(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		av := math.Abs(float64(v))
		if av < MinNormal || av > MaxValue {
			return true
		}
		back := float64(FromFloat32(v).Float32())
		rel := math.Abs(back-float64(v)) / av
		return rel <= math.Exp2(-11)
	}
	cfg := &quick.Config{
		MaxCount: 5000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			// Values within the gradient-like range (-8, 8).
			args[0] = reflect.ValueOf(float32(r.NormFloat64()))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSliceCodecs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := make([]float32, 10000)
	for i := range src {
		src[i] = float32(r.NormFloat64())
	}
	enc := EncodeSlice(make([]Bits, len(src)), src)
	dec := DecodeSlice(make([]float32, len(src)), enc)
	for i := range src {
		want := FromFloat32(src[i]).Float32()
		if dec[i] != want {
			t.Fatalf("index %d: got %g want %g", i, dec[i], want)
		}
	}
}

func TestRoundTripSliceIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := make([]float32, 5000)
	for i := range x {
		x[i] = float32(r.NormFloat64() * 0.1)
	}
	RoundTripSlice(x)
	y := append([]float32(nil), x...)
	RoundTripSlice(x) // second pass must be identity
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("round trip not idempotent at %d: %g vs %g", i, x[i], y[i])
		}
	}
}

// The paper claims fp16 loss is negligible for bounded gradients: check that
// the RMS error of quantizing N(0, 0.01) data is tiny relative to the RMS of
// the data itself.
func TestGradientLossNegligible(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 100000
	var sumSq, errSq float64
	for i := 0; i < n; i++ {
		g := float32(r.NormFloat64() * 0.01)
		q := FromFloat32(g).Float32()
		sumSq += float64(g) * float64(g)
		d := float64(q - g)
		errSq += d * d
	}
	relRMS := math.Sqrt(errSq / sumSq)
	if relRMS > 1e-3 {
		t.Fatalf("fp16 relative RMS error too large: %g", relRMS)
	}
}

func BenchmarkEncodeSlice(b *testing.B) {
	src := make([]float32, 1<<20)
	for i := range src {
		src[i] = float32(i%1000) * 1e-3
	}
	dst := make([]Bits, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeSlice(dst, src)
	}
}

func BenchmarkDecodeSlice(b *testing.B) {
	src := make([]Bits, 1<<20)
	for i := range src {
		src[i] = Bits(i & 0x7BFF)
	}
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(src) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeSlice(dst, src)
	}
}

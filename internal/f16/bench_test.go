package f16

import (
	"math"
	"math/rand"

	"fftgrad/internal/parallel"
	"testing"
)

func benchData(n int) ([]float32, []Bits) {
	r := rand.New(rand.NewSource(7))
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	h := make([]Bits, n)
	EncodeSlice(h, x)
	return x, h
}

func BenchmarkEncodeSliceK(b *testing.B) {
	x, h := benchData(1 << 16)
	b.SetBytes(4 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeSlice(h, x)
	}
}

func BenchmarkDecodeSliceK(b *testing.B) {
	x, h := benchData(1 << 16)
	out := make([]float32, len(x))
	b.SetBytes(4 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeSlice(out, h)
	}
}

func BenchmarkEncodeScalarLoop(b *testing.B) {
	x, h := benchData(1 << 16)
	b.SetBytes(4 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range x {
			h[j] = FromFloat32(v)
		}
	}
}

func BenchmarkDecodeScalarLoop(b *testing.B) {
	x, h := benchData(1 << 16)
	out := make([]float32, len(x))
	b.SetBytes(4 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range h {
			out[j] = v.Float32()
		}
	}
}

func BenchmarkEncodeBitsLoop(b *testing.B) {
	x, h := benchData(1 << 16)
	b.SetBytes(4 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range x {
			h[j] = encodeBits(math.Float32bits(v))
		}
	}
}

func BenchmarkDecodeBitsLoop(b *testing.B) {
	x, h := benchData(1 << 16)
	out := make([]float32, len(x))
	b.SetBytes(4 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range h {
			out[j] = decodeBits(v)
		}
	}
}

func encodeScalarWrapped(dst []Bits, src []float32) {
	parallel.For2(len(src), dst, src, func(dst []Bits, src []float32, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = FromFloat32(src[i])
		}
	})
}

func decodeScalarWrapped(dst []float32, src []Bits) {
	parallel.For2(len(src), dst, src, func(dst []float32, src []Bits, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = src[i].Float32()
		}
	})
}

func BenchmarkEncodeWrappedScalarBig(b *testing.B) {
	x, h := benchData(1 << 21)
	b.SetBytes(4 << 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encodeScalarWrapped(h, x)
	}
}

func BenchmarkEncodeWrappedBranchFreeBig(b *testing.B) {
	x, h := benchData(1 << 21)
	b.SetBytes(4 << 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeSlice(h, x)
	}
}

func BenchmarkDecodeWrappedScalarBig(b *testing.B) {
	x, h := benchData(1 << 21)
	out := make([]float32, len(x))
	b.SetBytes(4 << 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decodeScalarWrapped(out, h)
	}
}

func BenchmarkDecodeWrappedBranchFreeBig(b *testing.B) {
	x, h := benchData(1 << 21)
	out := make([]float32, len(x))
	b.SetBytes(4 << 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeSlice(out, h)
	}
}

// Package f16 implements IEEE-754 binary16 ("half precision") conversion in
// software.
//
// The paper's compression pipeline converts full-precision (binary32)
// gradients to half precision before the FFT, because half-precision FFT
// roughly doubles throughput on recent GPUs and the information loss is
// negligible for bounded gradients (Sec. 3.1.1). This package provides the
// same conversion on the CPU with round-to-nearest-even semantics, matching
// hardware behaviour, so that the end-to-end reconstruction error measured
// by the experiments includes the fp16 step exactly as in the paper.
package f16

import (
	"math"

	"fftgrad/internal/parallel"
)

// Bits is a raw IEEE-754 binary16 value: 1 sign bit, 5 exponent bits,
// 10 mantissa bits.
type Bits uint16

const (
	signMask16 = 0x8000
	expMask16  = 0x7C00
	manMask16  = 0x03FF

	// PositiveInfinity and NegativeInfinity are the binary16 infinities.
	PositiveInfinity Bits = 0x7C00
	NegativeInfinity Bits = 0xFC00

	// MaxValue is the largest finite binary16 value, 65504.
	MaxValue = 65504.0
	// MinNormal is the smallest positive normal binary16 value, 2^-14.
	MinNormal = 6.103515625e-05
	// MinSubnormal is the smallest positive subnormal value, 2^-24.
	MinSubnormal = 5.9604644775390625e-08
)

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even,
// the IEEE-754 default rounding mode and the mode used by GPU f32→f16
// conversion instructions.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask16
	exp := int32(b>>23) & 0xFF
	man := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if man != 0 {
			// Preserve a quiet NaN; keep the top mantissa bit set.
			return Bits(sign | expMask16 | 0x0200 | uint16(man>>13))
		}
		return Bits(sign | expMask16)
	case exp == 0 && man == 0: // signed zero
		return Bits(sign)
	}

	// Unbiased exponent of the float32 value.
	e := exp - 127
	switch {
	case e > 15: // overflow to infinity
		return Bits(sign | expMask16)
	case e >= -14: // normal binary16
		// 10 mantissa bits survive; round-to-nearest-even on the 13
		// discarded bits.
		halfExp := uint16(e+15) << 10
		halfMan := uint16(man >> 13)
		round := man & 0x1FFF
		v := sign | halfExp | halfMan
		if round > 0x1000 || (round == 0x1000 && halfMan&1 == 1) {
			v++ // carry may roll into the exponent; that is correct
		}
		return Bits(v)
	case e >= -24: // subnormal binary16
		// Implicit leading 1 becomes explicit. The binary16 subnormal
		// value is halfMan·2^-24, so halfMan = (1.man)·2^(e+24-23+...)
		// = man32 >> (-e-1) with -e-1 in [14, 23].
		man |= 0x800000
		shift := uint(-e - 1)
		halfMan := uint16(man >> shift)
		dropped := man & (1<<shift - 1)
		halfway := uint32(1) << (shift - 1)
		v := sign | halfMan
		if dropped > halfway || (dropped == halfway && halfMan&1 == 1) {
			v++
		}
		return Bits(v)
	default: // underflow to signed zero
		return Bits(sign)
	}
}

// Float32 converts a binary16 value back to float32 exactly (every binary16
// value is representable in binary32).
func (h Bits) Float32() float32 {
	sign := uint32(h&signMask16) << 16
	exp := uint32(h&expMask16) >> 10
	man := uint32(h & manMask16)

	switch exp {
	case 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: value = man * 2^-24. Normalize into binary32.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= manMask16
		return math.Float32frombits(sign | e<<23 | man<<13)
	case 0x1F:
		if man == 0 {
			return math.Float32frombits(sign | 0xFF<<23) // infinity
		}
		return math.Float32frombits(sign | 0xFF<<23 | man<<13 | 1<<22) // NaN
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
	}
}

// IsNaN reports whether h encodes a NaN.
func (h Bits) IsNaN() bool {
	return h&expMask16 == expMask16 && h&manMask16 != 0
}

// IsInf reports whether h encodes +Inf or -Inf.
func (h Bits) IsInf() bool {
	return h&expMask16 == expMask16 && h&manMask16 == 0
}

// encodeBits is the branch-free equivalent of FromFloat32, operating on
// the raw float32 bit pattern. Every format class (normal, subnormal,
// underflow, overflow, Inf, NaN payload) is computed unconditionally and
// the right one selected with sign-extension masks, so the bulk loop has
// no data-dependent branches for the hardware to mispredict on mixed
// gradients. Bit-for-bit equivalent to FromFloat32 (the property tests
// pin this across every class boundary).
func encodeBits(b uint32) Bits {
	sign := uint16(b>>16) & signMask16
	x := b & 0x7FFFFFFF
	e := int32(x >> 23)

	// Class masks: all-ones when the condition holds (arithmetic shift of
	// a negative int32).
	isSub := uint32((e - 113) >> 31)                  // |v| below the smallest normal half
	isTiny := uint32((e - 103) >> 31)                 // |v| too small even for a subnormal
	isBig := uint32((142 - e) >> 31)                  // |v| at least 2^16, or Inf
	isNaN := uint32(int32(0x7F800000-int32(x)) >> 31) // NaN of any payload

	// Normal path: rebias the exponent by subtracting (127-15)<<23, then
	// round-to-nearest-even on the 13 dropped bits by adding 0xFFF plus
	// the result's LSB before shifting. A mantissa carry rolls into the
	// exponent and, at e=142, correctly on to infinity.
	nval := (x - 112<<23 + 0xFFF + (x >> 13 & 1)) >> 13

	// Subnormal path: make the implicit leading 1 explicit and shift it
	// down to weight 2^-24, rounding the same way. For out-of-class
	// exponents shift is huge; Go defines oversized shifts as 0, so the
	// value is garbage but fully masked out below.
	man := b&0x7FFFFF | 0x800000
	shift := uint32(126 - e)
	sval := (man + 1<<(shift-1) - 1 + (man >> shift & 1)) >> shift

	v := nval&^isSub | sval&isSub
	v &^= isTiny
	v = v&^isBig | expMask16&isBig
	v = v&^isNaN | (expMask16|0x0200|x>>13&manMask16)&isNaN
	return Bits(sign | uint16(v)&0x7FFF)
}

// decodeBits is the branch-free equivalent of Bits.Float32. The exponent
// rebias (including subnormal normalization, which the scalar path does
// with a loop) is delegated to the FPU: reinterpreting the half's
// magnitude bits as a tiny float32 and multiplying by 2^112 is exact for
// every finite input, because scaling by a power of two only touches the
// exponent and float32 subnormals renormalize in hardware. Inf/NaN would
// come out finite (2^16·1.m), so their exponent and quiet bits are OR-ed
// back in under masks.
func decodeBits(h Bits) float32 {
	sign := uint32(h&signMask16) << 16
	em := uint32(h &^ signMask16)
	f := math.Float32frombits(em<<13) * math.Float32frombits(0x77800000) // ×2^112
	b := math.Float32bits(f) | sign
	isInf := uint32(int32(0x7BFF-int32(em)) >> 31) // em ≥ 0x7C00: Inf or NaN
	isNaN := uint32(int32(0x7C00-int32(em)) >> 31) // em > 0x7C00: NaN
	return math.Float32frombits(b | 0xFF<<23&isInf | 1<<22&isNaN)
}

// EncodeSlice converts src to binary16, writing into dst (which must be at
// least len(src) long), in parallel via the branch-free bulk kernel. It
// returns dst[:len(src)].
func EncodeSlice(dst []Bits, src []float32) []Bits {
	dst = dst[:len(src)]
	parallel.For2(len(src), dst, src, func(dst []Bits, src []float32, lo, hi int) {
		// Re-slice to the chunk and anchor dst's length to src's so the
		// compiler drops both per-element bounds checks from the hot loop.
		src = src[lo:hi]
		dst = dst[lo:hi][:len(src)]
		for i, v := range src {
			dst[i] = encodeBits(math.Float32bits(v))
		}
	})
	return dst
}

// DecodeSlice converts binary16 values back to float32 in parallel via
// the branch-free bulk kernel. dst must be at least len(src) long; it
// returns dst[:len(src)].
func DecodeSlice(dst []float32, src []Bits) []float32 {
	dst = dst[:len(src)]
	parallel.For2(len(src), dst, src, func(dst []float32, src []Bits, lo, hi int) {
		src = src[lo:hi]
		dst = dst[lo:hi][:len(src)]
		for i, h := range src {
			dst[i] = decodeBits(h)
		}
	})
	return dst
}

// RoundTripSlice applies f32→f16→f32 in place, i.e. quantizes every element
// of x to the nearest binary16 value. This is the "convert to half before
// FFT" step of the compression pipeline.
func RoundTripSlice(x []float32) {
	parallel.For1(len(x), x, func(x []float32, lo, hi int) {
		x = x[lo:hi]
		for i, v := range x {
			x[i] = decodeBits(encodeBits(math.Float32bits(v)))
		}
	})
}

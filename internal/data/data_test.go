package data

import (
	"testing"
)

func TestSynthImagesShape(t *testing.T) {
	d := SynthImages(100, 10, 16, 0.3, 1)
	if d.Len() != 100 || d.Classes != 10 {
		t.Fatalf("len=%d classes=%d", d.Len(), d.Classes)
	}
	if d.SampleLen() != 3*16*16 {
		t.Fatalf("sample len %d", d.SampleLen())
	}
	for _, l := range d.Labels {
		if l < 0 || l >= 10 {
			t.Fatalf("label %d out of range", l)
		}
	}
	x, labels := d.Batch([]int{0, 5, 99})
	if x.Dim(0) != 3 || x.Dim(1) != 3 || x.Dim(2) != 16 || x.Dim(3) != 16 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if len(labels) != 3 || labels[0] != d.Labels[0] || labels[2] != d.Labels[99] {
		t.Fatal("batch labels wrong")
	}
	// Batch data must match source rows.
	for i := 0; i < d.SampleLen(); i++ {
		if x.Data[d.SampleLen()+i] != d.X[5*d.SampleLen()+i] {
			t.Fatal("batch gather wrong")
		}
	}
}

func TestSynthImagesDeterministic(t *testing.T) {
	a := SynthImages(50, 5, 8, 0.2, 7)
	b := SynthImages(50, 5, 8, 0.2, 7)
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("same seed must reproduce data")
		}
	}
	c := SynthImages(50, 5, 8, 0.2, 8)
	same := 0
	for i := range a.X {
		if a.X[i] == c.X[i] {
			same++
		}
	}
	if same > len(a.X)/2 {
		t.Fatal("different seed should differ")
	}
}

func TestSynthImagesClassSeparation(t *testing.T) {
	// Same-class samples must be closer to each other than cross-class on
	// average (otherwise nothing is learnable).
	d := SynthImages(200, 4, 8, 0.3, 3)
	sl := d.SampleLen()
	dist := func(a, b int) float64 {
		var s float64
		for i := 0; i < sl; i++ {
			df := float64(d.X[a*sl+i] - d.X[b*sl+i])
			s += df * df
		}
		return s
	}
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if d.Labels[i] == d.Labels[j] {
				same += dist(i, j)
				nSame++
			} else {
				cross += dist(i, j)
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skip("degenerate label split")
	}
	if same/float64(nSame) >= cross/float64(nCross) {
		t.Fatalf("classes not separated: same %g cross %g", same/float64(nSame), cross/float64(nCross))
	}
}

func TestGaussianBlobs(t *testing.T) {
	d := GaussianBlobs(300, 5, 16, 0.1, 2)
	if d.Len() != 300 || d.SampleLen() != 16 {
		t.Fatal("shape wrong")
	}
	x, _ := d.Batch([]int{1, 2})
	if x.Dim(0) != 2 || x.Dim(1) != 16 {
		t.Fatalf("batch shape %v", x.Shape)
	}
}

func TestShard(t *testing.T) {
	d := GaussianBlobs(103, 3, 4, 0.1, 5)
	total := 0
	seen := map[int]bool{}
	for rank := 0; rank < 4; rank++ {
		s := d.Shard(rank, 4)
		total += s.Len()
		// Verify shard content maps back to the parent dataset.
		base := rank * (103 / 4)
		for i := 0; i < s.Len(); i++ {
			if s.Labels[i] != d.Labels[base+i] {
				t.Fatalf("rank %d label %d mismatch", rank, i)
			}
			seen[base+i] = true
		}
	}
	if total != 103 {
		t.Fatalf("shards cover %d samples, want 103", total)
	}
	if len(seen) != 103 {
		t.Fatalf("shards overlap or skip: %d unique", len(seen))
	}
}

func TestShardPanics(t *testing.T) {
	d := GaussianBlobs(10, 2, 2, 0.1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Shard(4, 4)
}

func TestIteratorCoversEpoch(t *testing.T) {
	it := NewIterator(100, 10, 1)
	seen := map[int]int{}
	for b := 0; b < 10; b++ {
		for _, i := range it.Next() {
			seen[i]++
		}
	}
	if len(seen) != 100 {
		t.Fatalf("first epoch covered %d unique samples", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d seen %d times in one epoch", i, c)
		}
	}
	if it.Epoch() != 0 {
		t.Fatalf("epoch counter %d", it.Epoch())
	}
	it.Next()
	if it.Epoch() != 1 {
		t.Fatalf("epoch should roll to 1, got %d", it.Epoch())
	}
}

func TestIteratorDropsShortTail(t *testing.T) {
	it := NewIterator(25, 10, 2)
	it.Next()
	it.Next()
	// 5 leftover samples: next batch must start a new epoch of full size.
	b := it.Next()
	if len(b) != 10 {
		t.Fatalf("batch size %d", len(b))
	}
	if it.Epoch() != 1 {
		t.Fatalf("epoch %d", it.Epoch())
	}
}

func TestIteratorDeterministic(t *testing.T) {
	a := NewIterator(50, 5, 9)
	b := NewIterator(50, 5, 9)
	for i := 0; i < 20; i++ {
		ba, bb := a.Next(), b.Next()
		for j := range ba {
			if ba[j] != bb[j] {
				t.Fatal("iterators with same seed diverged")
			}
		}
	}
}

// Package data provides deterministic synthetic datasets standing in for
// CIFAR-10 and ImageNet, which this environment cannot ship (see DESIGN.md
// substitutions). Each dataset is a supervised classification task with
// enough learnable structure that the convergence phenomena the paper
// studies — error floors under aggressive sparsification, recovery under
// diminishing θ — reproduce at CPU scale.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"fftgrad/internal/tensor"
)

// Dataset is an in-memory supervised classification dataset.
type Dataset struct {
	// X holds len(Labels) samples, each of SampleLen floats, row-major.
	X []float32
	// Labels holds the class index of each sample.
	Labels []int
	// Shape is the per-sample tensor shape (e.g. [3,32,32] or [D]).
	Shape []int
	// Classes is the number of distinct labels.
	Classes int
}

// SampleLen returns the flat length of one sample.
func (d *Dataset) SampleLen() int {
	n := 1
	for _, s := range d.Shape {
		n *= s
	}
	return n
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Batch gathers the samples at the given indices into a batch tensor of
// shape [len(idx), Shape...] plus the matching label slice.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	sl := d.SampleLen()
	shape := append([]int{len(idx)}, d.Shape...)
	x := tensor.New(shape...)
	labels := make([]int, len(idx))
	for i, s := range idx {
		copy(x.Data[i*sl:(i+1)*sl], d.X[s*sl:(s+1)*sl])
		labels[i] = d.Labels[s]
	}
	return x, labels
}

// Shard returns the contiguous 1/p slice of the dataset owned by worker
// rank under data parallelism. The remainder goes to the last rank.
func (d *Dataset) Shard(rank, p int) *Dataset {
	if p < 1 || rank < 0 || rank >= p {
		panic(fmt.Sprintf("data: bad shard rank=%d p=%d", rank, p))
	}
	per := d.Len() / p
	lo := rank * per
	hi := lo + per
	if rank == p-1 {
		hi = d.Len()
	}
	sl := d.SampleLen()
	return &Dataset{
		X:       d.X[lo*sl : hi*sl],
		Labels:  d.Labels[lo:hi],
		Shape:   d.Shape,
		Classes: d.Classes,
	}
}

// Split divides the dataset at sample index n into a training head and a
// test tail that share the same class structure (both views alias the
// parent's storage).
func (d *Dataset) Split(n int) (train, test *Dataset) {
	if n <= 0 || n >= d.Len() {
		panic(fmt.Sprintf("data: split point %d outside (0,%d)", n, d.Len()))
	}
	sl := d.SampleLen()
	train = &Dataset{X: d.X[:n*sl], Labels: d.Labels[:n], Shape: d.Shape, Classes: d.Classes}
	test = &Dataset{X: d.X[n*sl:], Labels: d.Labels[n:], Shape: d.Shape, Classes: d.Classes}
	return train, test
}

// SynthImages builds a class-pattern image dataset: each class has a
// deterministic base pattern (smooth random field), and every sample is
// its class pattern plus per-sample Gaussian noise. CNNs of the scale in
// internal/models learn it to high accuracy; aggressive gradient
// corruption visibly slows that convergence, which is exactly the signal
// the Fig. 13 experiments need.
func SynthImages(samples, classes, size int, noise float64, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	c, h, w := 3, size, size
	sl := c * h * w

	// Smooth class patterns: random low-frequency mixtures.
	patterns := make([][]float32, classes)
	for cl := range patterns {
		p := make([]float32, sl)
		for ch := 0; ch < c; ch++ {
			fx := 1 + r.Intn(3)
			fy := 1 + r.Intn(3)
			phase := r.Float64() * 6.28318
			amp := 0.5 + r.Float64()
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := amp * math.Sin(float64(fx)*float64(x)/float64(w)*6.28318+
						float64(fy)*float64(y)/float64(h)*6.28318+phase)
					p[(ch*h+y)*w+x] = float32(v)
				}
			}
		}
		patterns[cl] = p
	}

	d := &Dataset{
		X:       make([]float32, samples*sl),
		Labels:  make([]int, samples),
		Shape:   []int{c, h, w},
		Classes: classes,
	}
	for s := 0; s < samples; s++ {
		cl := r.Intn(classes)
		d.Labels[s] = cl
		base := patterns[cl]
		out := d.X[s*sl : (s+1)*sl]
		for i := range out {
			out[i] = base[i] + float32(r.NormFloat64()*noise)
		}
	}
	return d
}

// GaussianBlobs builds a flat-vector classification dataset: classes are
// Gaussian clusters around random unit-ish means in R^dim.
func GaussianBlobs(samples, classes, dim int, noise float64, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	means := make([][]float32, classes)
	for cl := range means {
		m := make([]float32, dim)
		for i := range m {
			m[i] = float32(r.NormFloat64())
		}
		means[cl] = m
	}
	d := &Dataset{
		X:       make([]float32, samples*dim),
		Labels:  make([]int, samples),
		Shape:   []int{dim},
		Classes: classes,
	}
	for s := 0; s < samples; s++ {
		cl := r.Intn(classes)
		d.Labels[s] = cl
		out := d.X[s*dim : (s+1)*dim]
		for i := range out {
			out[i] = means[cl][i] + float32(r.NormFloat64()*noise)
		}
	}
	return d
}

// Iterator yields shuffled mini-batch index sets, reshuffling each epoch
// with a deterministic per-epoch permutation.
type Iterator struct {
	n, batch int
	seed     int64
	perm     []int
	pos      int
	epoch    int
}

// NewIterator creates a batch iterator over n samples.
func NewIterator(n, batch int, seed int64) *Iterator {
	if batch < 1 || n < 1 {
		panic("data: iterator needs n >= 1 and batch >= 1")
	}
	it := &Iterator{n: n, batch: batch, seed: seed}
	it.reshuffle()
	return it
}

func (it *Iterator) reshuffle() {
	r := rand.New(rand.NewSource(it.seed + int64(it.epoch)*1_000_003))
	it.perm = r.Perm(it.n)
	it.pos = 0
}

// Next returns the next batch of indices, rolling into a fresh epoch when
// the current one is exhausted (short final batches are dropped).
func (it *Iterator) Next() []int {
	if it.pos+it.batch > it.n {
		it.epoch++
		it.reshuffle()
	}
	idx := it.perm[it.pos : it.pos+it.batch]
	it.pos += it.batch
	return idx
}

// Epoch returns the number of completed epochs.
func (it *Iterator) Epoch() int { return it.epoch }

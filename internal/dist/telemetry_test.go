package dist

import (
	"testing"

	"fftgrad/internal/adapt"
	"fftgrad/internal/compress"
	"fftgrad/internal/netsim"
	"fftgrad/internal/telemetry"
)

// TestTelemetryWiring: a run with a Registry attached must produce a
// final snapshot holding wire-byte counters and per-stage throughput
// gauges, plus the measured exchange wall time in the trace and result.
func TestTelemetryWiring(t *testing.T) {
	cfg := blobCfg(41)
	cfg.NewCompressor = func() compress.Compressor { return compress.NewFFT(0.5) }
	cfg.Trace = true
	cfg.Telemetry = telemetry.NewRegistry()
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("result carries no telemetry snapshot")
	}
	tx := res.Telemetry[`fftgrad_comm_tx_bytes_total{transport="inproc"}`]
	rx := res.Telemetry[`fftgrad_comm_rx_bytes_total{transport="inproc"}`]
	if tx <= 0 || rx != tx {
		t.Errorf("wire counters: tx=%v rx=%v, want equal and positive", tx, rx)
	}
	for _, stage := range []string{"tm", "tf", "tp", "ts", "comm"} {
		if v := res.Telemetry[`fftgrad_stage_throughput_bytes_per_second{stage="`+stage+`"}`]; v <= 0 {
			t.Errorf("stage %q throughput gauge = %v, want > 0", stage, v)
		}
	}
	if res.CommMeasuredSeconds <= 0 {
		t.Errorf("CommMeasuredSeconds = %v, want > 0", res.CommMeasuredSeconds)
	}
	var measured float64
	for _, tr := range res.Trace {
		if !tr.Compressed {
			t.Fatalf("iteration %d marked uncompressed without a controller", tr.Iter)
		}
		measured += tr.CommMeasuredS
	}
	if measured != res.CommMeasuredSeconds {
		t.Errorf("trace CommMeasuredS sum %v != result %v", measured, res.CommMeasuredSeconds)
	}
}

// TestAdaptBypassesOnFastFabric: on a PCIe-class fabric the live Eq. 4
// evaluation finds no beneficial ratio for a CPU pipeline, so the
// controller must switch the run to FP32 bypass after its warmup
// samples — and training must still converge.
func TestAdaptBypassesOnFastFabric(t *testing.T) {
	cfg := blobCfg(42)
	cfg.NewCompressor = func() compress.Compressor { return compress.NewFFT(0.5) }
	cfg.Fabric = netsim.PCIe3
	cfg.Trace = true
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.Adapt = adapt.New(adapt.Config{Patience: 1, MinSamples: 2}, nil)
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BypassedIterations == 0 {
		t.Fatalf("controller never bypassed on PCIe: %+v", cfg.Adapt.Last())
	}
	var sawBypass bool
	for _, tr := range res.Trace {
		if !tr.Compressed {
			sawBypass = true
			break
		}
	}
	if !sawBypass {
		t.Error("no trace entry records a bypassed iteration")
	}
	if v := res.Telemetry["fftgrad_adapt_bypassed_iterations_total"]; v <= 0 {
		t.Errorf("bypass gauge = %v, want > 0", v)
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.TestAcc < 0.9 {
		t.Errorf("bypassed run accuracy %.3f < 0.9", last.TestAcc)
	}
}

// TestAdaptKeepsCompressingOnSlowFabric: on a WAN-class fabric the
// effective exchange rate is tens of KB/s — any pipeline this repo can
// run beats it at the achieved ratio, so the controller must never
// bypass. (The fabric is far slower than 1 GbE so the verdict holds for
// this test's tiny 2.7 KB gradient even under the race detector's ~10x
// pipeline slowdown; the adapt package tests cover the 1 GbE vs PCIe
// contrast on an amortizing 64 KB gradient.)
func TestAdaptKeepsCompressingOnSlowFabric(t *testing.T) {
	cfg := blobCfg(43)
	cfg.NewCompressor = func() compress.Compressor { return compress.NewFFT(0.5) }
	cfg.Fabric = netsim.Profile{Name: "wan", Bandwidth: 125e3, Latency: 5e-3}
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.Adapt = adapt.New(adapt.Config{Patience: 1, MinSamples: 2}, nil)
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BypassedIterations != 0 {
		t.Fatalf("controller bypassed %d iterations on 1GbE: %+v",
			res.BypassedIterations, cfg.Adapt.Last())
	}
	d := cfg.Adapt.Last()
	if !d.Ready || !d.Compress {
		t.Errorf("final decision should be ready and compressing: %+v", d)
	}
	if d.KMin <= 1 || d.Ratio <= d.KMin {
		t.Errorf("achieved ratio %.2f should exceed k_min %.2f", d.Ratio, d.KMin)
	}
	if res.CompressionRatio <= 1 {
		t.Errorf("run compression ratio = %v, want > 1", res.CompressionRatio)
	}
}

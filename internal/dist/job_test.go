package dist

import (
	"testing"

	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

func TestBSPJobInterface(t *testing.T) {
	cfg := blobCfg(31)
	job := cfg.NewJob()
	if job.Backend() != "bsp" {
		t.Fatalf("Backend() = %q, want bsp", job.Backend())
	}
	if job.Workers() != 4 || job.Tracks() != 4 {
		t.Fatalf("Workers/Tracks = %d/%d, want 4/4", job.Workers(), job.Tracks())
	}

	reg := telemetry.NewRegistry()
	tr := trace.New(job.Tracks(), 1024)
	var epochs []EpochStats
	res, err := job.Run(JobHarness{
		Telemetry: reg,
		Tracer:    tr,
		OnEpoch:   func(s EpochStats) { epochs = append(epochs, s) },
	})
	if err != nil {
		t.Fatalf("job.Run: %v", err)
	}
	if len(epochs) != 3 || len(res.Epochs) != 3 {
		t.Fatalf("epoch stream %d / result %d, want 3", len(epochs), len(res.Epochs))
	}
	if res.Epochs[len(res.Epochs)-1].TestAcc < 0.9 {
		t.Fatalf("final accuracy %.3f < 0.9", res.Epochs[len(res.Epochs)-1].TestAcc)
	}
	if res.Telemetry == nil {
		t.Fatal("harness telemetry snapshot missing from result")
	}
	if len(tr.Events()) == 0 {
		t.Fatal("harness tracer recorded no events")
	}
}

func TestBSPHaltCapturesAndResumes(t *testing.T) {
	stop := make(chan struct{})
	cfg := blobCfg(32)
	cfg.Epochs = 4
	cfg.Stop = stop
	cfg.OnEpoch = func(s EpochStats) {
		if s.Epoch == 0 {
			close(stop)
		}
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatalf("halted Train: %v", err)
	}
	if !res.Halted {
		t.Fatal("Halted = false after Stop closed")
	}
	if res.Final == nil {
		t.Fatal("halted run captured no final checkpoint")
	}
	want := cfg.Epochs * (2048 / 4 / 16)
	if res.Iterations >= want {
		t.Fatalf("halted run did %d iterations, want < %d", res.Iterations, want)
	}

	rest := blobCfg(32)
	rest.Epochs = 3
	rest.Resume = res.Final
	res2, err := Train(rest)
	if err != nil {
		t.Fatalf("resumed Train: %v", err)
	}
	if acc := res2.Epochs[len(res2.Epochs)-1].TestAcc; acc < 0.9 {
		t.Fatalf("resumed accuracy %.3f < 0.9", acc)
	}
}

func TestBSPCaptureFinalOnCompletion(t *testing.T) {
	cfg := blobCfg(33)
	cfg.CaptureFinal = true
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("unexpected halt")
	}
	if res.Final == nil {
		t.Fatal("CaptureFinal run returned no final checkpoint")
	}
}

package dist

import (
	"testing"
	"time"

	"fftgrad/internal/chaos"
	"fftgrad/internal/cluster"
	"fftgrad/internal/obs"
)

// TestProfilerBitIdentical is the profiler acceptance gate for the
// barrier path: committing a full per-iteration record stream must not
// perturb training arithmetic — the profiled run's losses and accuracies
// are bitwise equal to the unprofiled run's.
func TestProfilerBitIdentical(t *testing.T) {
	base, err := Train(blobCfg(13))
	if err != nil {
		t.Fatal(err)
	}
	cfg := blobCfg(13)
	prof := obs.New(cfg.Workers, 1024)
	cfg.Profiler = prof
	got, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Epochs) != len(base.Epochs) {
		t.Fatalf("epoch count %d vs %d", len(got.Epochs), len(base.Epochs))
	}
	for i := range base.Epochs {
		if got.Epochs[i].TrainLoss != base.Epochs[i].TrainLoss ||
			got.Epochs[i].TestAcc != base.Epochs[i].TestAcc {
			t.Fatalf("epoch %d diverged under profiling: %+v vs %+v", i, got.Epochs[i], base.Epochs[i])
		}
	}
	// Every rank must have committed a record for every iteration, with
	// the stage terms populated.
	for rank := 0; rank < cfg.Workers; rank++ {
		recs := prof.Records(rank)
		if len(recs) != got.Iterations {
			t.Fatalf("rank %d committed %d records, want %d", rank, len(recs), got.Iterations)
		}
		for _, r := range recs {
			if r.ComputeNs <= 0 || r.ExchEndNs <= 0 || r.EndNs <= r.StartNs {
				t.Fatalf("rank %d iter %d record not populated: %+v", rank, r.Iter, r)
			}
		}
	}
	s := prof.Summary(true)
	if s.Iterations != int64(got.Iterations) {
		t.Fatalf("ledger folded %d iterations, want %d", s.Iterations, got.Iterations)
	}
}

// TestProfilerBlamesChaosStraggler is the in-process half of the
// obs-smoke gate: under a chaos schedule that permanently slows one
// rank's message delivery, the blame ledger must attribute at least half
// of all blocked time to that rank. The straggler's own records look
// healthy (it computes and exchanges fast — its *sends* arrive late), so
// this exercises the cluster layer's in-exchange arrival attribution end
// to end: Member arrival tracking → ExchangeResult.SlowestPeer/WaitNs →
// IterRecord.BlamePeer → ledger.
func TestProfilerBlamesChaosStraggler(t *testing.T) {
	const straggler = 2
	cfg := blobCfg(17)
	cfg.Epochs = 1
	cc := faultClusterCfg()
	cc.OnStraggler = cluster.StragglerWait
	cfg.Fault = &FaultConfig{
		Cluster: cc,
		Chaos: &chaos.Config{
			Seed:       17,
			Stragglers: []chaos.StragglerEvent{{Rank: straggler, SlowBy: 2 * time.Millisecond}},
		},
	}
	prof := obs.New(cfg.Workers, 1024)
	cfg.Profiler = prof
	if _, err := Train(cfg); err != nil {
		t.Fatal(err)
	}
	s := prof.Summary(true)
	if s.TotalBlockedNs <= 0 {
		t.Fatal("no blocked time recorded despite a straggling rank")
	}
	var blamed int64
	for _, e := range s.Blame {
		if e.Rank == straggler {
			blamed = e.BlamedNs
		}
	}
	if frac := float64(blamed) / float64(s.TotalBlockedNs); frac < 0.5 {
		t.Fatalf("straggled rank %d holds %.0f%% of blame, want >= 50%% (ledger: %+v)",
			straggler, 100*frac, s.Blame)
	}
}

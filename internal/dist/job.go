package dist

// Job is the execution-backend abstraction of the training service
// (internal/serve): one schedulable unit of training work that a
// scheduler can run over a shared worker fleet, stream progress from,
// halt cooperatively, and resume from a checkpoint. Two backends
// implement it — the BSP-allreduce path in this package (Config.NewJob)
// and the parameter-server path (internal/ps Config.NewJob) — so a job
// submission chooses its parallelization scheme per job (the Fig. 1
// choice of the paper) while sharing one control plane.

import (
	"fftgrad/internal/checkpoint"
	"fftgrad/internal/guard"
	"fftgrad/internal/obs"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// JobHarness is the per-job runtime wiring the scheduler hands a
// backend: the cooperative-stop signal, the progress stream, and the
// job-scoped observability sinks. Every field is optional; a zero
// harness runs the job exactly like a direct Train call.
type JobHarness struct {
	// Stop requests a cooperative halt when closed: the backend finishes
	// the iteration every worker can still reach, captures a final
	// checkpoint, and returns with JobResult.Halted set — no error.
	Stop <-chan struct{}
	// OnEpoch receives each epoch's statistics as training crosses the
	// boundary — the live progress stream behind the job API's event
	// feed. Called from a worker goroutine; keep it fast or hand off.
	OnEpoch func(EpochStats)
	// Telemetry is the job-scoped metrics registry; each job gets its
	// own so per-job throughput and guard/fault accounting stay
	// isolated across tenants.
	Telemetry *telemetry.Registry
	// Tracer is the job-scoped timeline (one ring per worker track);
	// Tracks() says how many tracks the backend records.
	Tracer *trace.Tracer
	// Flight dumps the job's trace ring on rollback/crash/panic.
	Flight *trace.FlightRecorder
	// Profiler is the job-scoped cross-rank iteration profiler
	// (internal/obs): critical paths, the straggler blame ledger and the
	// anomaly engine behind /jobs/{id}/profile. BSP backends commit one
	// record per rank per iteration; the PS backend ignores it.
	Profiler *obs.Profiler
	// Resume restores parameters and optimizer state before training
	// starts — how a drained job continues after a service restart.
	Resume *checkpoint.State
	// CaptureFinal asks for a final checkpoint in JobResult.Final even
	// when the job runs to completion (halted jobs always capture one).
	CaptureFinal bool
}

// JobResult is the backend-independent outcome of a job run.
type JobResult struct {
	Epochs     []EpochStats
	Iterations int
	GradSize   int

	AvgMsgBytes      float64
	CompressionRatio float64

	ComputeSeconds  float64
	CompressSeconds float64
	CommSeconds     float64

	// Halted reports a cooperative stop (cancel or drain): the run ended
	// early at an iteration boundary with Final capturing where.
	Halted bool
	// Final is the end-of-run checkpoint (always set when Halted; set on
	// completion too when the harness asked for CaptureFinal).
	Final *checkpoint.State

	// Telemetry is the end-of-run snapshot of the harness registry.
	Telemetry telemetry.Snapshot
	// Fault carries the cluster-runtime accounting of a fault-aware BSP
	// job (nil on PS and on barrier-path BSP).
	Fault *FaultReport
	// Guard carries the integrity-layer accounting when the job ran with
	// a guard config (nil otherwise).
	Guard *guard.Report
}

// Job is one schedulable training job bound to an execution backend.
type Job interface {
	// Backend names the execution engine: "bsp" or "ps".
	Backend() string
	// Workers is the worker-slot quota the job occupies while running.
	Workers() int
	// Tracks is how many timeline tracks the backend records (BSP: one
	// per worker; PS: one per worker plus the server track) — what the
	// scheduler sizes the job's Tracer with.
	Tracks() int
	// Run executes the job to completion or cooperative halt. A halt is
	// not an error: it returns a JobResult with Halted set.
	Run(h JobHarness) (*JobResult, error)
}

// NewJob binds c to the BSP-allreduce execution backend. The harness
// fields overlay the config at Run: harness wiring wins where set, so a
// scheduler can reuse one validated config under per-job observability.
func (c Config) NewJob() Job { return bspJob{cfg: c} }

type bspJob struct{ cfg Config }

func (j bspJob) Backend() string { return "bsp" }

func (j bspJob) Workers() int {
	w := j.cfg.Workers
	if w < 1 {
		w = 1
	}
	if j.cfg.Fault != nil {
		// Elastic slots occupy worker quota (and timeline tracks) from the
		// start: the ranks exist the moment their join handshake fires.
		w += len(j.cfg.Fault.ElasticJoins)
	}
	return w
}

func (j bspJob) Tracks() int { return j.Workers() }

func (j bspJob) Run(h JobHarness) (*JobResult, error) {
	cfg := j.cfg
	if h.Stop != nil {
		cfg.Stop = h.Stop
	}
	if h.OnEpoch != nil {
		cfg.OnEpoch = h.OnEpoch
	}
	if h.Telemetry != nil {
		cfg.Telemetry = h.Telemetry
	}
	if h.Tracer != nil {
		cfg.Tracer = h.Tracer
	}
	if h.Flight != nil {
		cfg.Flight = h.Flight
	}
	if h.Profiler != nil {
		cfg.Profiler = h.Profiler
	}
	if h.Resume != nil {
		cfg.Resume = h.Resume
	}
	cfg.CaptureFinal = cfg.CaptureFinal || h.CaptureFinal
	res, err := Train(cfg)
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Epochs:           res.Epochs,
		Iterations:       res.Iterations,
		GradSize:         res.GradSize,
		AvgMsgBytes:      res.AvgMsgBytes,
		CompressionRatio: res.CompressionRatio,
		ComputeSeconds:   res.ComputeSeconds,
		CompressSeconds:  res.CompressSeconds,
		CommSeconds:      res.CommSeconds,
		Halted:           res.Halted,
		Final:            res.Final,
		Telemetry:        res.Telemetry,
		Fault:            res.Fault,
		Guard:            res.Guard,
	}, nil
}

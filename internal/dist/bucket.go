package dist

// Gradient bucketing for the BSP exchange (collective.Config.BucketBytes).
//
// The flat gradient is split into fixed-byte buckets (collective.Buckets);
// each bucket has its own compressor instance, so each bucket keeps its
// own CRC frame and its own error-feedback residual slice — the flat
// residual partitioned, with identical accounting. Per iteration the
// buckets run as a two-stage pipeline: while bucket b's compressed
// message is in flight (exchange + decompress + accumulate), bucket b+1
// is still being compressed — compute/communication overlap inside the
// exchange phase. The two stages touch disjoint state (bucket b's
// message/recon/avg slices vs bucket b+1's grad slice and codec), so the
// only synchronization needed is the parallel.Run join between pipeline
// steps; the compressors' own kernels keep using the persistent worker
// pool underneath.
//
// Numerics are unchanged: every rank still averages the same p
// reconstructions of the same gradient slices in the same order, so a
// bucketed run with B buckets is bit-compatible with what a flat run
// over per-bucket codecs would produce, traced or untraced.

import (
	"fmt"
	"time"

	"fftgrad/internal/collective"
	"fftgrad/internal/compress"
	"fftgrad/internal/nn"
	"fftgrad/internal/parallel"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// bucketState is one worker's bucketed-exchange pipeline. Nil (no
// bucketing) when the run is monolithic; every method is called only on
// a non-nil receiver from the worker loop.
type bucketState struct {
	col    collective.Config
	fabric Fabric
	ex     *collective.Exchanger
	gs     *guardState
	tc     *trace.Ctx
	st     *telemetry.StageTimer
	isRoot bool
	p      int

	bk    collective.Buckets
	comps []compress.Compressor // configured codec, one per bucket (guard-framed)
	wire  []compress.Compressor // FP32 bypass codec, one per bucket (guard-framed)

	// Per-bucket compressed messages, double-buffered by iteration parity
	// with exactly the aliasing discipline of runWorker's msgBufs.
	msgs [2][][]byte

	// Per-iteration outputs, read by the worker loop after exchange().
	compressT, decompressT time.Duration
	exchangeS              float64
	msgBytes, maxBytes     int
	driftHit               bool

	// Per-bucket scratch, written only by the bucket's own closure.
	cmpD, exD, decD []time.Duration
	sizes, maxs     []int
}

// newBucketState builds the pipeline when the config asks for bucketing
// on the barrier path; nil otherwise.
func newBucketState(cfg Config, gs *guardState, wst *telemetry.StageTimer, tc *trace.Ctx, ex *collective.Exchanger, n, p, rank int) *bucketState {
	if cfg.Collective == nil || cfg.Collective.BucketBytes <= 0 || cfg.UseSparseAllreduce {
		return nil
	}
	bs := &bucketState{
		col:    *cfg.Collective,
		fabric: cfg.Fabric,
		ex:     ex,
		gs:     gs,
		tc:     tc,
		st:     cfg.stageTimer,
		isRoot: rank == 0,
		p:      p,
		bk:     collective.MakeBuckets(n, cfg.Collective.BucketBytes),
	}
	nb := bs.bk.Count()
	bs.comps = make([]compress.Compressor, nb)
	bs.wire = make([]compress.Compressor, nb)
	for b := 0; b < nb; b++ {
		bs.comps[b] = gs.wrap(cfg.NewCompressor())
		compress.Instrument(bs.comps[b], wst)
		bs.wire[b] = gs.wrap(compress.FP32{})
	}
	bs.msgs[0] = make([][]byte, nb)
	bs.msgs[1] = make([][]byte, nb)
	bs.cmpD = make([]time.Duration, nb)
	bs.exD = make([]time.Duration, nb)
	bs.decD = make([]time.Duration, nb)
	bs.sizes = make([]int, nb)
	bs.maxs = make([]int, nb)
	return bs
}

// pick returns bucket b's wire codec for this iteration: the configured
// compressor, or the FP32 bypass when the adapt controller said so.
func (bs *bucketState) pick(b int, compressed bool) compress.Compressor {
	if compressed {
		return bs.comps[b]
	}
	return bs.wire[b]
}

// setTheta drives every bucket codec implementing compress.ThetaSetter.
func (bs *bucketState) setTheta(theta float64) {
	for _, c := range bs.comps {
		if ts, ok := c.(compress.ThetaSetter); ok {
			ts.SetTheta(theta)
		}
	}
}

// attachFingerprint rides the parameter fingerprint on bucket 0's frame;
// drift is checked on bucket 0's message set — one fingerprint per
// iteration per rank, exactly as in the monolithic exchange.
func (bs *bucketState) attachFingerprint(net *nn.Network, compressed bool) {
	bs.gs.attachFingerprint(net, bs.pick(0, compressed))
}

// exchange runs the full bucketed pipeline for one iteration:
//
//	compress(0); for b: { exchange+decompress(b) ∥ compress(b+1) }
//
// grad is read per bucket slice, avg[lo:hi] is zeroed, accumulated and
// scaled in the bucket's own closure, recon[lo:hi] is the bucket's
// decode scratch — all slices disjoint between concurrent closures.
func (bs *bucketState) exchange(iter int, grad, avg, recon []float32, compressed bool) error {
	nb := bs.bk.Count()
	parity := iter & 1
	inv := 1 / float32(bs.p)
	drift := bs.gs.driftDue(iter)
	bs.driftHit = false

	compressBucket := func(b int) error {
		lo, hi := bs.bk.Range(b)
		t0 := time.Now()
		msg, err := compress.AppendCompress(bs.pick(b, compressed), bs.msgs[parity][b][:0], grad[lo:hi])
		if err != nil {
			return fmt.Errorf("bucket %d compress: %w", b, err)
		}
		bs.msgs[parity][b] = msg
		bs.cmpD[b] = time.Since(t0)
		bs.sizes[b] = len(msg)
		bs.tc.SpanTimed(trace.OpCompress, int64(len(msg)), t0, bs.cmpD[b])
		return nil
	}

	exchangeBucket := func(b int) error {
		lo, hi := bs.bk.Range(b)
		comp := bs.pick(b, compressed)
		var tB time.Time
		if bs.tc != nil {
			tB = time.Now()
		}
		tEx := time.Now()
		msgs := bs.ex.Allgather(bs.msgs[parity][b])
		bs.exD[b] = time.Since(tEx)
		bs.tc.SpanTimed(trace.OpExchange, int64(bs.sizes[b]), tEx, bs.exD[b])
		max := 0
		for _, m := range msgs {
			if len(m) > max {
				max = len(m)
			}
		}
		bs.maxs[b] = max

		t0 := time.Now()
		for i := lo; i < hi; i++ {
			avg[i] = 0
		}
		for _, m := range msgs {
			if err := compress.DecompressInto(comp, recon[lo:hi], m); err != nil {
				return fmt.Errorf("bucket %d decompress: %w", b, err)
			}
			for i, v := range recon[lo:hi] {
				avg[lo+i] += v
			}
		}
		for i := lo; i < hi; i++ {
			avg[i] *= inv
		}
		bs.decD[b] = time.Since(t0)
		bs.tc.SpanTimed(trace.OpDecompress, int64(bs.p), t0, bs.decD[b])
		if b == 0 && drift && bs.gs.checkDrift(msgs, nil) {
			bs.driftHit = true
		}

		// Exchange-rate observation per bucket: modeled when a fabric
		// prices the run, measured otherwise (same rule as monolithic).
		if bs.st != nil && bs.sizes[b] > 0 {
			if bs.fabric != nil {
				if bs.isRoot {
					bs.st.ObserveStage(telemetry.StageComm, max, bs.col.ModelAllgather(bs.fabric, bs.p, max))
				}
			} else {
				bs.st.ObserveStage(telemetry.StageComm, bs.sizes[b], bs.exD[b].Seconds())
			}
		}
		bs.tc.SpanSince(trace.OpBucket, int64(b), tB)
		return nil
	}

	if err := compressBucket(0); err != nil {
		return err
	}
	for b := 0; b < nb; b++ {
		var exErr, cmpErr error
		if b+1 < nb {
			bb := b
			parallel.Run(
				func() { exErr = exchangeBucket(bb) },
				func() { cmpErr = compressBucket(bb + 1) },
			)
		} else {
			exErr = exchangeBucket(b)
		}
		if exErr != nil {
			return exErr
		}
		if cmpErr != nil {
			return cmpErr
		}
	}

	bs.compressT, bs.decompressT, bs.exchangeS = 0, 0, 0
	bs.msgBytes, bs.maxBytes = 0, 0
	for b := 0; b < nb; b++ {
		bs.compressT += bs.cmpD[b]
		bs.decompressT += bs.decD[b]
		bs.exchangeS += bs.exD[b].Seconds()
		bs.msgBytes += bs.sizes[b]
		if bs.maxs[b] > bs.maxBytes {
			bs.maxBytes = bs.maxs[b]
		}
	}
	return nil
}

// modelComm prices the iteration's bucketed exchange on the fabric: the
// sum of per-bucket collectives at the observed max message sizes. The
// overlap benefit (codec time hidden behind flight) is a wall-time
// effect, not a communication-volume effect, so the comm price stays the
// honest sum; collective.ModelBucketedExchange exposes the overlapped
// wall model for offline analysis.
func (bs *bucketState) modelComm() float64 {
	if bs.fabric == nil {
		return 0
	}
	s := 0.0
	for _, m := range bs.maxs {
		if m > 0 {
			s += bs.col.ModelAllgather(bs.fabric, bs.p, m)
		}
	}
	return s
}

package dist

// Failure-aware training path: when Config.Fault is set, the exchange
// runs through the internal/cluster runtime over a point-to-point mesh
// instead of the barrier-based collectives. Dead ranks are suspected and
// handled by the configured degradation policy, stragglers by the
// straggler policy, and a crashed rank rejoins mid-run from the latest
// in-runtime checkpoint. Config.Fault.Chaos optionally wraps every
// worker's transport in the deterministic fault injector — the test
// harness for all of the above.
//
// Divergence accounting: a degraded round makes survivors average over
// fewer (or one-round-stale) contributions, so replicas can drift apart
// until the next parameter re-broadcast. The runtime therefore forces a
// re-sync whenever the membership epoch changes, and a rank whose own
// gradient was computed but never shipped folds it into the feedback
// residual (when the compressor is error-feedback wrapped) — the same
// bounded-error budget that covers sparsification (Assumption 3.2 /
// Sec. 3.4) covers the one-round stale or missing contribution.

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"fftgrad/internal/chaos"
	"fftgrad/internal/checkpoint"
	"fftgrad/internal/cluster"
	"fftgrad/internal/collective"
	"fftgrad/internal/comm"
	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/guard"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// FaultConfig enables the failure-aware runtime for a run.
type FaultConfig struct {
	// Cluster tunes heartbeats, retry/backoff, policies and rejoin.
	Cluster cluster.Config
	// Chaos, when non-nil, injects the given deterministic fault schedule
	// into every worker's transport.
	Chaos *chaos.Config
}

// FaultReport is the end-of-run fault accounting (Result.Fault).
type FaultReport struct {
	// Cluster is the runtime's cumulative view: retries, suspicions,
	// degraded iterations, stale reuses, rejoins, skipped syncs.
	Cluster cluster.Stats
	// Chaos counts the injected faults (nil when no chaos was configured).
	Chaos *chaos.Stats
	// LostWorkers counts ranks that left permanently and did not return
	// (the run still completed under the degradation policy).
	LostWorkers int
}

// residualSink is implemented by error-feedback compressors; the trainer
// uses it to keep a computed-but-unshipped gradient in the information
// stream instead of discarding it.
type residualSink interface{ AddToResidual([]float32) }

// trainFault is Train for Config.Fault != nil.
func trainFault(cfg Config) (*Result, error) {
	if cfg.UseSparseAllreduce {
		return nil, fmt.Errorf("dist: Fault and UseSparseAllreduce are mutually exclusive (the ring collective has no failure-aware variant yet)")
	}
	if cfg.MeasureAlpha {
		return nil, fmt.Errorf("dist: MeasureAlpha requires the barrier-based exchange; disable Fault")
	}
	p := cfg.Workers
	clCfg := cfg.Fault.Cluster
	if clCfg.Halt == nil {
		// A canceled/drained job must not wait out RejoinWait on a rank
		// parked in rejoin; the halt signal abandons the park.
		clCfg.Halt = cfg.Stop
	}
	if v := (*guardState)(nil).verifier(cfg); v != nil {
		// Guard framing on: the cluster receiver rejects corrupt frames
		// before they can reach a decompressor; nack/resend repairs them.
		clCfg.Verify = v
	}
	if cfg.Collective != nil && cfg.Collective.BucketBytes > 0 && clCfg.SendDepth <= 0 {
		// Bucketed exchanges burn Count() seqs per iteration, so the seq
		// drift between a rank parked at the iteration-end sync and a
		// lagging peer spans whole iterations of seqs; size the resend
		// cache to cover it or nack repair of old buckets silently fails.
		nb := collective.MakeBuckets(cfg.Model(cfg.Seed).NumParams(), cfg.Collective.BucketBytes).Count()
		clCfg.SendDepth = 2*nb + 2
	}
	rt := cluster.New(p, clCfg)
	rt.AttachTracer(cfg.Tracer)
	mesh := comm.NewMesh(p)
	var harness *chaos.Harness
	if cfg.Fault.Chaos != nil {
		harness = chaos.NewHarness(p, *cfg.Fault.Chaos)
		harness.AttachTracer(cfg.Tracer)
	}

	if cfg.Adapt != nil {
		cfg.stageTimer = cfg.Adapt.StageTimer()
	} else if cfg.Telemetry != nil {
		cfg.stageTimer = telemetry.NewStageTimer()
	}
	rt.AttachStageTimer(cfg.stageTimer)
	if cfg.Telemetry != nil {
		rt.Instrument(cfg.Telemetry)
		if harness != nil {
			harness.Instrument(cfg.Telemetry)
		}
		cfg.stageTimer.Register(cfg.Telemetry)
		if cfg.Adapt != nil {
			cfg.Adapt.Register(cfg.Telemetry)
		}
		if cfg.guardStats != nil {
			cfg.guardStats.Register(cfg.Telemetry)
		}
	}

	members := make([]*cluster.Member, p)
	for rank := 0; rank < p; rank++ {
		var tr comm.Transport = mesh.Endpoint(rank)
		if harness != nil {
			tr = harness.Wrap(tr)
		}
		members[rank] = rt.Join(tr)
	}

	results := make([]*Result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					cfg.Flight.Trigger(rank, trace.ReasonPanic)
					panic(r)
				}
			}()
			results[rank], errs[rank] = runWorkerFault(cfg, members[rank], rt)
			// A worker that finished cleanly keeps its member alive —
			// heartbeats and nack repair keep serving a slower rank still
			// catching up after a rejoin. A terminally failed worker goes
			// silent instead, so survivors suspect it rather than waiting
			// on a straggler that will never deliver.
			if errs[rank] != nil {
				members[rank].Close()
			}
		}(rank)
	}
	wg.Wait()
	for _, m := range members {
		m.Close()
	}

	report := &FaultReport{Cluster: rt.Stats()}
	if harness != nil {
		s := harness.Stats()
		report.Chaos = &s
	}
	for rank, err := range errs {
		if err == nil {
			continue
		}
		// A non-root rank that died and could not come back is a degraded
		// but successful run — exactly what the policies exist for. Every
		// other error class (quorum loss, fail-fast, stall, or losing the
		// bookkeeping root) fails the run, typed.
		if rank != 0 && (cluster.IsRecoverable(err) || errors.Is(err, cluster.ErrRejoinTimeout) || errors.Is(err, cluster.ErrHalted)) {
			report.LostWorkers++
			continue
		}
		// Terminal failure: dump the timeline before surfacing the error —
		// the last N iterations are exactly the postmortem evidence.
		if errors.Is(err, cluster.ErrNoQuorum) {
			cfg.Flight.Trigger(rank, trace.ReasonNoQuorum)
		} else {
			cfg.Flight.Trigger(rank, trace.ReasonFailure)
		}
		return nil, err
	}
	res := results[0]
	res.Fault = report
	if cfg.Telemetry != nil {
		res.Telemetry = cfg.Telemetry.Snapshot()
	}
	if cfg.guardStats != nil {
		rep := cfg.guardStats.Report()
		rep.CorruptFrames = report.Cluster.CorruptFrames
		res.Guard = &rep
	}
	return res, nil
}

// runWorkerFault is runWorker with the exchange and parameter sync
// routed through the failure-aware member.
func runWorkerFault(cfg Config, m *cluster.Member, rt *cluster.Runtime) (*Result, error) {
	rank := m.Rank()
	p := rt.P()
	isRoot := rank == 0

	// Same tracing shape as the barrier path; the member additionally
	// records per-peer send/recv sub-spans and cluster incidents on the
	// same rank track (attached at Join via Runtime.AttachTracer).
	tc := cfg.Tracer.Rank(rank)
	wst := cfg.stageTimer.WithSink(tc.StageSink())

	net := cfg.Model(cfg.Seed)
	n := net.NumParams()
	shard := cfg.Train.Shard(rank, p)
	it := data.NewIterator(shard.Len(), cfg.Batch, cfg.Seed+int64(rank)*7919)
	sgd := optim.NewSGD(cfg.LR.LR(0), cfg.Momentum, n)
	if cfg.Resume != nil {
		if err := cfg.Resume.Apply(net, sgd); err != nil {
			return nil, fmt.Errorf("dist: rank %d resume: %w", rank, err)
		}
	}
	gs := newGuardState(cfg, rank, n, tc)

	// Exchange strategy: on the fault path the point-to-point mesh keeps
	// per-peer delivery (nack/resend repairs individual links), so the
	// hier/tree schedules inform the *modeled* collective price only.
	// Bucketing, however, is real: the iteration's exchange runs as
	// Count() member rounds under sequence numbers iter·B+b, each bucket
	// with its own codec instance (own CRC frames, own residual slice),
	// so a chaos crash mid-iteration lands between buckets and the
	// unshipped tail folds into the per-bucket residuals.
	colCfg := collective.Config{}.WithDefaults()
	if cfg.Collective != nil {
		colCfg = *cfg.Collective
	}
	bk := collective.MakeBuckets(n, colCfg.BucketBytes)
	nb := bk.Count()
	var bcomps, bwire []compress.Compressor
	var comp compress.Compressor
	if nb > 1 {
		bcomps = make([]compress.Compressor, nb)
		bwire = make([]compress.Compressor, nb)
		for b := 0; b < nb; b++ {
			bcomps[b] = gs.wrap(cfg.NewCompressor())
			compress.Instrument(bcomps[b], wst)
			bwire[b] = gs.wrap(compress.FP32{})
		}
	} else {
		comp = gs.wrap(cfg.NewCompressor())
		compress.Instrument(comp, wst)
	}
	pickBucket := func(b int, compressed bool) compress.Compressor {
		if compressed {
			return bcomps[b]
		}
		return bwire[b]
	}

	grad := make([]float32, n)
	avg := make([]float32, n)
	recon := make([]float32, n)
	delta := make([]float32, n)
	loss := nn.SoftmaxCE{}
	fp32 := compress.FP32{}
	wireFP32 := gs.wrap(fp32)
	gs.retain(checkpoint.Capture(net, sgd, 0, -1))

	res := &Result{GradSize: n}
	var totalMsgBytes float64
	var lossSum float64
	var lossCount int
	totalIters := cfg.Epochs * cfg.ItersPerEpoch

	var msgBuf []byte // mesh sends copy, so one buffer suffices
	var bmaxs []int   // per-bucket max message size (pricing)
	if nb > 1 {
		bmaxs = make([]int, nb)
	}
	var syncFlat []float32
	var syncPayload []byte
	var liveRatio float64

	// Seed the rejoin store so a rank crashing before the first epoch
	// boundary can still restore something consistent.
	if isRoot {
		rt.PublishCheckpoint(checkpoint.Capture(net, sgd, 0, 0), 0)
	}

	iter := 0
	forceSync := false
	// rejoin parks until the transport heals, restores the published
	// checkpoint when this rank was evicted, and fast-forwards to the
	// exchange frontier. Returns a terminal error when re-entry failed.
	rejoin := func() error {
		view, frontier, st, err := m.AwaitRejoin()
		if err != nil {
			return fmt.Errorf("dist: rank %d: %w", rank, err)
		}
		if st != nil {
			if aerr := st.Apply(net, sgd); aerr != nil {
				return fmt.Errorf("dist: rank %d restoring checkpoint on rejoin: %w", rank, aerr)
			}
		}
		// The frontier is in exchange-sequence units (iter·nb+b when
		// bucketed). Resume at the iteration *containing* it — never past
		// it: survivors parked mid-iteration are waiting on this rank's
		// remaining bucket rounds, so skipping to the next boundary would
		// deadlock both sides. Replaying the iteration's earlier bucket
		// seqs is safe: peers discard late data for completed rounds and
		// serve (or degrade) the replayed exchanges from their send cache.
		if f := int(frontier) / nb; f > iter {
			iter = f
		}
		forceSync = true
		_ = view
		return nil
	}

	for iter < totalIters {
		if cfg.haltCheck(iter) {
			res.Halted = true
			break
		}
		epoch := iter / cfg.ItersPerEpoch
		sgd.LR = cfg.LR.LR(epoch)
		tc.SetIter(uint64(iter))
		var tIter time.Time
		if tc != nil {
			tIter = time.Now()
		}
		theta := math.NaN()
		if cfg.ThetaSchedule != nil {
			theta = cfg.ThetaSchedule.Theta(epoch)
			if nb > 1 {
				for _, c := range bcomps {
					if ts, ok := c.(compress.ThetaSetter); ok {
						ts.SetTheta(theta)
					}
				}
			} else if ts, ok := comp.(compress.ThetaSetter); ok {
				ts.SetTheta(theta)
			}
		}

		// --- local gradient ---------------------------------------------
		t0 := time.Now()
		x, labels := shard.Batch(it.Next())
		net.ZeroGrads()
		logits := net.Forward(x, true)
		l, dl := loss.Loss(logits, labels)
		net.Backward(dl)
		net.FlattenGrads(grad)
		if tc != nil {
			tScrub := time.Now()
			gs.scrubGrad(grad)
			tc.SpanSince(trace.OpScrub, int64(n), tScrub)
		} else {
			gs.scrubGrad(grad)
		}
		computeT := time.Since(t0)
		tc.SpanTimed(trace.OpCompute, int64(cfg.Batch), t0, computeT)
		if isRoot {
			lossSum += l
			lossCount++
			if cfg.SampleGradients > 0 && iter%cfg.SampleGradients == 0 {
				res.GradSamples = append(res.GradSamples, append([]float32(nil), grad...))
			}
		}

		// --- adaptive compression decision -------------------------------
		iterComp := comp
		compressed := true
		if cfg.Adapt != nil {
			adTheta := theta
			if math.IsNaN(adTheta) {
				adTheta = 0
			}
			d := cfg.Adapt.DecideIter(iter, liveRatio, adTheta)
			if !d.Compress {
				iterComp = wireFP32
				compressed = false
				tc.Instant(trace.OpBypass, 0)
			} else if d.ThetaAdjusted {
				if nb > 1 {
					for _, c := range bcomps {
						if ts, ok := c.(compress.ThetaSetter); ok {
							ts.SetTheta(d.Theta)
							theta = d.Theta
						}
					}
				} else if ts, ok := comp.(compress.ThetaSetter); ok {
					ts.SetTheta(d.Theta)
					theta = d.Theta
				}
			}
		}
		if gs.driftDue(iter) {
			if nb > 1 {
				gs.attachFingerprint(net, pickBucket(0, compressed))
			} else {
				gs.attachFingerprint(net, iterComp)
			}
		}

		// --- compress + failure-aware exchange ----------------------------
		var compressT, decompressT time.Duration
		var exchangeS float64
		var msgBytes, maxBytes int
		var ex *cluster.ExchangeResult
		epochChanged := false
		crashed := false
		if nb > 1 {
			// Bucketed: Count() member rounds under seq iter·nb+b. The
			// mesh copies sends, so one staging buffer serves every bucket.
			for i := range avg {
				avg[i] = 0
			}
			for b := range bmaxs {
				bmaxs[b] = 0
			}
			for b := 0; b < nb; b++ {
				lo, hi := bk.Range(b)
				bcomp := pickBucket(b, compressed)
				t0 = time.Now()
				msg, err := compress.AppendCompress(bcomp, msgBuf[:0], grad[lo:hi])
				if err != nil {
					return nil, fmt.Errorf("dist: rank %d bucket %d compress: %w", rank, b, err)
				}
				msgBuf = msg
				cmpD := time.Since(t0)
				compressT += cmpD
				msgBytes += len(msg)
				tc.SpanTimed(trace.OpCompress, int64(len(msg)), t0, cmpD)

				var tB time.Time
				if tc != nil {
					tB = time.Now()
				}
				tEx := time.Now()
				exb, err := m.Exchange(uint64(iter*nb+b), msg)
				exD := time.Since(tEx)
				exchangeS += exD.Seconds()
				tc.SpanTimed(trace.OpExchange, int64(len(msg)), tEx, exD)
				if err != nil {
					if cluster.IsRecoverable(err) {
						// Crash mid-iteration, between bucket rounds: dump
						// the timeline, then fold every unshipped bucket
						// slice into its own error-feedback residual before
						// parking in rejoin — buckets below b were already
						// averaged by the survivors.
						cfg.Flight.Trigger(rank, trace.ReasonCrash)
						for bb := b; bb < nb; bb++ {
							l2, h2 := bk.Range(bb)
							if sink, ok := bcomps[bb].(residualSink); ok {
								sink.AddToResidual(grad[l2:h2])
							}
						}
						crashed = true
						break
					}
					return nil, fmt.Errorf("dist: rank %d exchange %d.%d: %w", rank, iter, b, err)
				}
				t0 = time.Now()
				// A stale cache entry was served from the previous *round* —
				// under bucketed sequencing that is the previous bucket, a
				// different slice shape — so stale contributions are dropped
				// and the average rescales over the fresh ones (this rank's
				// own message is always fresh, so fresh ≥ 1).
				fresh := 0
				for j, mm := range exb.Msgs {
					if mm == nil || (exb.Stale != nil && exb.Stale[j]) {
						continue
					}
					if len(mm) > bmaxs[b] {
						bmaxs[b] = len(mm)
					}
					if derr := compress.DecompressInto(bcomp, recon[lo:hi], mm); derr != nil {
						return nil, fmt.Errorf("dist: rank %d bucket %d decompress: %w", rank, b, derr)
					}
					for i, v := range recon[lo:hi] {
						avg[lo+i] += v
					}
					fresh++
				}
				invB := 1 / float32(fresh)
				for i := lo; i < hi; i++ {
					avg[i] *= invB
				}
				decD := time.Since(t0)
				decompressT += decD
				tc.SpanTimed(trace.OpDecompress, int64(exb.Contributors), t0, decD)
				if bmaxs[b] > maxBytes {
					maxBytes = bmaxs[b]
				}
				// One fingerprint per iteration, riding bucket 0's frames.
				if b == 0 && gs.driftDue(iter) && gs.checkDrift(exb.Msgs, exb.Stale) {
					forceSync = true
				}
				epochChanged = epochChanged || exb.EpochChanged
				ex = exb
				tc.SpanSince(trace.OpBucket, int64(b), tB)
			}
			if crashed {
				if rerr := rejoin(); rerr != nil {
					return res, rerr
				}
				continue
			}
			if compressed && msgBytes > 0 {
				liveRatio = float64(4*n) / float64(msgBytes)
			}
		} else {
			t0 = time.Now()
			msg, err := compress.AppendCompress(iterComp, msgBuf[:0], grad)
			if err != nil {
				return nil, fmt.Errorf("dist: rank %d compress: %w", rank, err)
			}
			msgBuf = msg
			compressT = time.Since(t0)
			msgBytes = len(msg)
			tc.SpanTimed(trace.OpCompress, int64(msgBytes), t0, compressT)
			if compressed && msgBytes > 0 {
				liveRatio = float64(4*n) / float64(msgBytes)
			}

			tEx := time.Now()
			ex, err = m.Exchange(uint64(iter), msg)
			exchangeD := time.Since(tEx)
			exchangeS = exchangeD.Seconds()
			tc.SpanTimed(trace.OpExchange, int64(msgBytes), tEx, exchangeD)
			if err != nil {
				if cluster.IsRecoverable(err) {
					// The local transport is inside a chaos crash window (or this
					// rank was evicted): dump the timeline while the pre-crash
					// events are still in the ring, then park in rejoin.
					cfg.Flight.Trigger(rank, trace.ReasonCrash)
					// This gradient was computed but never averaged anywhere:
					// keep it in the stream via the error-feedback residual.
					if sink, ok := comp.(residualSink); ok {
						sink.AddToResidual(grad)
					}
					if rerr := rejoin(); rerr != nil {
						return res, rerr
					}
					continue
				}
				return nil, fmt.Errorf("dist: rank %d exchange %d: %w", rank, iter, err)
			}

			// --- average over actual contributors -------------------------
			t0 = time.Now()
			inv := 1 / float32(ex.Contributors)
			for i := range avg {
				avg[i] = 0
			}
			for _, mm := range ex.Msgs {
				if mm == nil {
					continue
				}
				if len(mm) > maxBytes {
					maxBytes = len(mm)
				}
				if err := compress.DecompressInto(iterComp, recon, mm); err != nil {
					return nil, fmt.Errorf("dist: rank %d decompress: %w", rank, err)
				}
				for i, v := range recon {
					avg[i] += v
				}
			}
			for i := range avg {
				avg[i] *= inv
			}
			decompressT = time.Since(t0)
			tc.SpanTimed(trace.OpDecompress, int64(ex.Contributors), t0, decompressT)
			if gs.driftDue(iter) && gs.checkDrift(ex.Msgs, ex.Stale) {
				forceSync = true
			}
			epochChanged = ex.EpochChanged
		}

		if st := cfg.stageTimer; st != nil && msgBytes > 0 {
			if cfg.Fabric != nil {
				if isRoot {
					st.ObserveStage(telemetry.StageComm, maxBytes, colCfg.ModelAllgather(cfg.Fabric, p, maxBytes))
				}
			} else {
				st.ObserveStage(telemetry.StageComm, msgBytes, exchangeS)
			}
		}

		// --- update --------------------------------------------------------
		t0 = time.Now()
		switch gs.observe(avg) {
		case guard.ActionRollback:
			gs.rollback(net, sgd)
			forceSync = true
			if isRoot {
				cfg.Flight.Trigger(rank, trace.ReasonRollback)
			}
		case guard.ActionSkip:
			// Poisoned round: no update.
		default:
			sgd.Delta(delta, avg)
			net.AddToParams(delta)
		}
		updateT := time.Since(t0)
		tc.SpanTimed(trace.OpUpdate, int64(n), t0, updateT)

		// --- parameter re-broadcast ----------------------------------------
		// The periodic sync also runs early after any view change: degraded
		// rounds and rejoins both leave replicas slightly apart, and the
		// re-broadcast is what bounds that drift window.
		var syncBytes int
		if (iter+1)%cfg.SyncEvery == 0 || forceSync || epochChanged {
			var tSync time.Time
			if tc != nil {
				tSync = time.Now()
			}
			root := ex.View.LowestAlive()
			if root >= 0 {
				if syncFlat == nil {
					syncFlat = make([]float32, n)
				}
				var payload []byte
				if rank == root {
					flat := net.GetParams(syncFlat)
					payload, _ = compress.AppendCompress(wireFP32, syncPayload[:0], flat)
					syncPayload = payload
				}
				got, ok, serr := m.SyncBroadcast(uint64((iter+1)*nb), payload, root)
				if serr != nil {
					if cluster.IsRecoverable(serr) {
						if rerr := rejoin(); rerr != nil {
							return res, rerr
						}
						continue
					}
					return nil, fmt.Errorf("dist: rank %d sync %d: %w", rank, iter, serr)
				}
				if ok && rank != root {
					if err := compress.DecompressInto(wireFP32, syncFlat, got); err != nil {
						return nil, err
					}
					net.SetParams(syncFlat)
				}
				if ok {
					syncBytes = n * 4
				}
			}
			forceSync = false
			tc.SpanSince(trace.OpSync, int64(syncBytes), tSync)
		}

		// --- bookkeeping (rank 0) ------------------------------------------
		if isRoot {
			res.Iterations++
			totalMsgBytes += float64(msgBytes)
			res.ComputeSeconds += computeT.Seconds() + updateT.Seconds()
			res.CompressSeconds += compressT.Seconds() + decompressT.Seconds()
			res.CommMeasuredSeconds += exchangeS
			if !compressed {
				res.BypassedIterations++
			}
			var commS float64
			if cfg.Fabric != nil {
				if nb > 1 {
					for _, mb := range bmaxs {
						if mb > 0 {
							commS += colCfg.ModelAllgather(cfg.Fabric, p, mb)
						}
					}
				} else {
					commS = colCfg.ModelAllgather(cfg.Fabric, p, maxBytes)
				}
				if syncBytes > 0 {
					commS += colCfg.ModelBroadcast(cfg.Fabric, p, syncBytes)
				}
				res.CommSeconds += commS
			}
			if cfg.Trace {
				res.Trace = append(res.Trace, IterTrace{
					Iter:          iter,
					ComputeS:      computeT.Seconds() + updateT.Seconds(),
					CompressS:     compressT.Seconds() + decompressT.Seconds(),
					CommS:         commS,
					CommMeasuredS: exchangeS,
					MsgBytes:      msgBytes,
					Theta:         theta,
					Compressed:    compressed,
				})
			}
		}

		// --- epoch boundary -------------------------------------------------
		if (iter+1)%cfg.ItersPerEpoch == 0 {
			if isRoot {
				stats := EpochStats{
					Epoch:     epoch,
					TrainLoss: lossSum / float64(lossCount),
					LR:        sgd.LR,
					Theta:     theta,
				}
				lossSum, lossCount = 0, 0
				if cfg.Test != nil {
					stats.TestAcc = evaluate(net, cfg.Test, cfg.Batch)
				}
				res.Epochs = append(res.Epochs, stats)
				if cfg.OnEpoch != nil {
					cfg.OnEpoch(stats)
				}
				if cfg.CheckpointEvery > 0 && cfg.OnCheckpoint != nil && (epoch+1)%cfg.CheckpointEvery == 0 {
					cfg.OnCheckpoint(checkpoint.Capture(net, sgd, int64(epoch), int64(iter)))
				}
			}
			// The current sync root (not necessarily rank 0 — it may be
			// dead) publishes the rejoin checkpoint.
			if rank == ex.View.LowestAlive() {
				rt.PublishCheckpoint(checkpoint.Capture(net, sgd, int64(epoch), int64(iter)), uint64((iter+1)*nb))
			}
		}
		gs.maybeRetain(iter, epoch, net, sgd)
		tc.SpanSince(trace.OpIteration, int64(msgBytes), tIter)
		iter++
	}

	if isRoot && res.Iterations > 0 {
		res.AvgMsgBytes = totalMsgBytes / float64(res.Iterations)
		res.CompressionRatio = float64(n*4) / res.AvgMsgBytes
	}
	if isRoot {
		cfg.finalState(res, net, sgd)
	}
	return res, nil
}

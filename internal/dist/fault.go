package dist

// Failure-aware training path: when Config.Fault is set, the exchange
// runs through the internal/cluster runtime over a point-to-point mesh
// instead of the barrier-based collectives. Dead ranks are suspected and
// handled by the configured degradation policy, stragglers by the
// straggler policy, and a crashed rank rejoins mid-run from the latest
// in-runtime checkpoint. Config.Fault.Chaos optionally wraps every
// worker's transport in the deterministic fault injector — the test
// harness for all of the above.
//
// On top of the strict per-round exchange the path offers two
// asynchrony modes and one elasticity mechanism:
//
//   - Bounded staleness (Fault.Staleness = K > 0): ranks may run up to K
//     iterations ahead of the slowest live rank (Runtime.WaitWithinWindow
//     throttles the front); a peer that misses the per-round grace budget
//     contributes its freshest cached gradient damped by λ^d (λ =
//     Fault.StalenessDiscount, d = iterations stale), and each receiver
//     banks its share of the withheld (1−λ^d) mass into the
//     error-feedback residual, so damping defers information instead of
//     destroying it — the DGC/SSP regime under the same Sec. 3.4
//     bounded-error budget that covers sparsification.
//
//   - Gossip (Collective.Strategy = "gossip"): decentralized D-PSGD-style
//     averaging with the two nearest live ring neighbors under Metropolis
//     mixing weights. No root, no global barrier: a partition slows
//     convergence on each side but never stalls a round, and the periodic
//     parameter sync becomes a parameter *gossip* round under the same
//     weights instead of a root broadcast.
//
//   - Elastic scale-up (Fault.ElasticJoins): brand-new ranks enter
//     mid-run once the exchange frontier reaches their scheduled
//     iteration — the join handshake (Runtime.AdmitJoin) grows the view,
//     bumps the epoch (forcing a re-sync), restores the newest published
//     checkpoint on the joiner, and enters it at the frontier.
//
// Divergence accounting: a degraded round makes survivors average over
// fewer (or stale-damped) contributions, so replicas can drift apart
// until the next parameter re-broadcast. The runtime therefore forces a
// re-sync whenever the membership epoch changes, and a rank whose own
// gradient was computed but never shipped folds it into the feedback
// residual (when the compressor is error-feedback wrapped) — the same
// bounded-error budget that covers sparsification (Assumption 3.2 /
// Sec. 3.4) covers the stale or missing contribution.

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"fftgrad/internal/chaos"
	"fftgrad/internal/checkpoint"
	"fftgrad/internal/cluster"
	"fftgrad/internal/collective"
	"fftgrad/internal/comm"
	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/guard"
	"fftgrad/internal/nn"
	"fftgrad/internal/obs"
	"fftgrad/internal/optim"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// FaultConfig enables the failure-aware runtime for a run.
type FaultConfig struct {
	// Cluster tunes heartbeats, retry/backoff, policies and rejoin.
	Cluster cluster.Config
	// Chaos, when non-nil, injects the given deterministic fault schedule
	// into every worker's transport.
	Chaos *chaos.Config

	// Staleness > 0 enables the bounded-staleness (SSP-style) exchange:
	// a rank may run up to Staleness iterations ahead of the slowest
	// live rank, and a peer missing the per-round grace budget
	// contributes its freshest cached gradient damped by
	// StalenessDiscount^d (d = iterations stale). 0 keeps the strict
	// per-round exchange.
	Staleness int
	// StalenessDiscount is the per-iteration damping factor λ ∈ (0,1]
	// applied to stale contributions; the withheld (1−λ^d) share is
	// banked in the error-feedback residual. 0 defaults to 0.9.
	StalenessDiscount float64

	// ElasticJoins schedules brand-new ranks entering mid-run: entry k
	// admits rank Workers+k once the exchange frontier reaches the given
	// iteration. A joiner restores the newest published checkpoint,
	// enters at the frontier, and grows the view (epoch bump → forced
	// parameter re-sync on every survivor).
	ElasticJoins []int
}

// FaultReport is the end-of-run fault accounting (Result.Fault).
type FaultReport struct {
	// Cluster is the runtime's cumulative view: retries, suspicions,
	// degraded iterations, stale reuses, rejoins, elastic joins, gossip
	// rounds, skipped syncs.
	Cluster cluster.Stats
	// Chaos counts the injected faults (nil when no chaos was configured).
	Chaos *chaos.Stats
	// LostWorkers counts ranks that left permanently and did not return
	// (the run still completed under the degradation policy).
	LostWorkers int
}

// residualSink is implemented by error-feedback compressors; the trainer
// uses it to keep a computed-but-unshipped gradient in the information
// stream instead of discarding it. scaledResidualSink is its
// bounded-staleness sibling: the damped remainder of a stale
// contribution re-enters through the residual at the discount's
// complement.
type (
	residualSink       interface{ AddToResidual([]float32) }
	scaledResidualSink interface {
		AddToResidualScaled([]float32, float32)
	}
)

// trainFault is Train for Config.Fault != nil.
func trainFault(cfg Config) (*Result, error) {
	if cfg.UseSparseAllreduce {
		return nil, fmt.Errorf("dist: Fault and UseSparseAllreduce are mutually exclusive (the ring collective has no failure-aware variant yet)")
	}
	if cfg.MeasureAlpha {
		return nil, fmt.Errorf("dist: MeasureAlpha requires the barrier-based exchange; disable Fault")
	}
	colCfg := collective.Config{}.WithDefaults()
	if cfg.Collective != nil {
		colCfg = *cfg.Collective
	}
	gossipMode := colCfg.Strategy == collective.Gossip
	if gossipMode && colCfg.BucketBytes > 0 {
		return nil, fmt.Errorf("dist: gossip exchanges whole gradients with ring neighbors; BucketBytes does not apply")
	}
	if cfg.Fault.Staleness < 0 {
		return nil, fmt.Errorf("dist: negative Fault.Staleness %d", cfg.Fault.Staleness)
	}
	if l := cfg.Fault.StalenessDiscount; l < 0 || l > 1 {
		return nil, fmt.Errorf("dist: Fault.StalenessDiscount %v outside (0,1]", l)
	}
	for _, at := range cfg.Fault.ElasticJoins {
		if at < 0 {
			return nil, fmt.Errorf("dist: negative ElasticJoins iteration %d", at)
		}
	}

	p := cfg.Workers
	joins := cfg.Fault.ElasticJoins
	pmax := p + len(joins)

	// Seqs per iteration: buckets burn Count() exchange seqs, gossip
	// burns two (gradient round, then the parameter-consensus round).
	nb := collective.MakeBuckets(cfg.Model(cfg.Seed).NumParams(), colCfg.BucketBytes).Count()
	spi := nb
	if gossipMode {
		spi = 2
	}

	clCfg := cfg.Fault.Cluster
	if clCfg.Halt == nil {
		// A canceled/drained job must not wait out RejoinWait on a rank
		// parked in rejoin; the halt signal abandons the park.
		clCfg.Halt = cfg.Stop
	}
	if v := (*guardState)(nil).verifier(cfg); v != nil {
		// Guard framing on: the cluster receiver rejects corrupt frames
		// before they can reach a decompressor; nack/resend repairs them.
		clCfg.Verify = v
	}
	if clCfg.SendDepth <= 0 && (spi > 1 || cfg.Fault.Staleness > 0) {
		// Multi-seq iterations and bounded staleness both let the seq
		// drift between the front rank and a laggard span whole
		// iterations of seqs; size the resend cache to cover the window
		// or nack repair of old rounds silently fails.
		clCfg.SendDepth = (2+cfg.Fault.Staleness)*spi + 2
	}
	rt := cluster.NewElastic(p, pmax, clCfg)
	rt.AttachTracer(cfg.Tracer)
	mesh := comm.NewMesh(pmax)
	var harness *chaos.Harness
	if cfg.Fault.Chaos != nil {
		harness = chaos.NewHarness(pmax, *cfg.Fault.Chaos)
		harness.AttachTracer(cfg.Tracer)
	}

	if cfg.Adapt != nil {
		cfg.stageTimer = cfg.Adapt.StageTimer()
	} else if cfg.Telemetry != nil {
		cfg.stageTimer = telemetry.NewStageTimer()
	}
	rt.AttachStageTimer(cfg.stageTimer)
	if cfg.Telemetry != nil {
		rt.Instrument(cfg.Telemetry)
		if harness != nil {
			harness.Instrument(cfg.Telemetry)
		}
		cfg.Tracer.Instrument(cfg.Telemetry)
		cfg.Profiler.Instrument(cfg.Telemetry)
		cfg.stageTimer.Register(cfg.Telemetry)
		if cfg.Adapt != nil {
			cfg.Adapt.Register(cfg.Telemetry)
		}
		if cfg.guardStats != nil {
			cfg.guardStats.Register(cfg.Telemetry)
		}
	}

	members := make([]*cluster.Member, pmax)
	for rank := 0; rank < p; rank++ {
		var tr comm.Transport = mesh.Endpoint(rank)
		if harness != nil {
			tr = harness.Wrap(tr)
		}
		members[rank] = rt.Join(tr)
	}

	results := make([]*Result, pmax)
	errs := make([]error, pmax)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					cfg.Flight.Trigger(rank, trace.ReasonPanic)
					panic(r)
				}
			}()
			results[rank], errs[rank] = runWorkerFault(cfg, members[rank], rt, 0, nil)
			// A worker that finished cleanly keeps its member alive —
			// heartbeats and nack repair keep serving a slower rank still
			// catching up after a rejoin. A terminally failed worker goes
			// silent instead, so survivors suspect it rather than waiting
			// on a straggler that will never deliver.
			if errs[rank] != nil {
				members[rank].Close()
			}
		}(rank)
	}

	// Elastic join watchers: each parks until the fleet's exchange
	// frontier reaches its scheduled iteration, then runs the join
	// handshake and becomes a regular worker from the frontier on. A
	// watcher whose moment never comes (halt, early completion) exits
	// without joining.
	var wgJoin sync.WaitGroup
	trainingDone := make(chan struct{})
	for k, atIter := range joins {
		wgJoin.Add(1)
		go func(rank int, target uint64) {
			defer wgJoin.Done()
			defer func() {
				if r := recover(); r != nil {
					cfg.Flight.Trigger(rank, trace.ReasonPanic)
					panic(r)
				}
			}()
			for rt.Frontier() < target {
				select {
				case <-trainingDone:
					return
				case <-clCfg.Halt:
					return
				case <-time.After(200 * time.Microsecond):
				}
			}
			_, frontier, st, aerr := rt.AdmitJoin(rank)
			if aerr != nil {
				errs[rank] = fmt.Errorf("dist: rank %d join: %w", rank, aerr)
				return
			}
			var tr comm.Transport = mesh.Endpoint(rank)
			if harness != nil {
				tr = harness.Wrap(tr)
			}
			members[rank] = rt.Join(tr)
			// The view just grew: dump the timeline so the quorum change
			// and the frontier the joiner entered at are on record.
			cfg.Flight.Trigger(rank, trace.ReasonViewGrow)
			results[rank], errs[rank] = runWorkerFault(cfg, members[rank], rt, int(frontier)/spi, st)
			if errs[rank] != nil {
				members[rank].Close()
			}
		}(p+k, uint64(atIter)*uint64(spi))
	}

	wg.Wait()
	close(trainingDone)
	wgJoin.Wait()
	for _, m := range members {
		if m != nil {
			m.Close()
		}
	}

	report := &FaultReport{Cluster: rt.Stats()}
	if harness != nil {
		s := harness.Stats()
		report.Chaos = &s
	}
	for rank, err := range errs {
		if err == nil {
			continue
		}
		// A non-root rank that died and could not come back is a degraded
		// but successful run — exactly what the policies exist for. Every
		// other error class (quorum loss, fail-fast, stall, or losing the
		// bookkeeping root) fails the run, typed.
		if rank != 0 && (cluster.IsRecoverable(err) || errors.Is(err, cluster.ErrRejoinTimeout) || errors.Is(err, cluster.ErrHalted)) {
			report.LostWorkers++
			continue
		}
		// Terminal failure: dump the timeline before surfacing the error —
		// the last N iterations are exactly the postmortem evidence.
		if errors.Is(err, cluster.ErrNoQuorum) {
			cfg.Flight.Trigger(rank, trace.ReasonNoQuorum)
		} else {
			cfg.Flight.Trigger(rank, trace.ReasonFailure)
		}
		return nil, err
	}
	res := results[0]
	res.Fault = report
	if cfg.Telemetry != nil {
		res.Telemetry = cfg.Telemetry.Snapshot()
	}
	if cfg.guardStats != nil {
		rep := cfg.guardStats.Report()
		rep.CorruptFrames = report.Cluster.CorruptFrames
		res.Guard = &rep
	}
	return res, nil
}

// runWorkerFault is runWorker with the exchange and parameter sync
// routed through the failure-aware member. startIter/restore are the
// elastic-join entry point: a mid-run joiner restores the published
// checkpoint and resumes at the frontier's iteration; initial ranks pass
// (0, nil).
func runWorkerFault(cfg Config, m *cluster.Member, rt *cluster.Runtime, startIter int, restore *checkpoint.State) (*Result, error) {
	rank := m.Rank()
	p := rt.P()
	isRoot := rank == 0

	// Same tracing shape as the barrier path; the member additionally
	// records per-peer send/recv sub-spans and cluster incidents on the
	// same rank track (attached at Join via Runtime.AttachTracer).
	tc := cfg.Tracer.Rank(rank)
	wst := cfg.stageTimer.WithSink(tc.StageSink())
	oc := cfg.Profiler.Rank(rank)

	net := cfg.Model(cfg.Seed)
	n := net.NumParams()
	shard := cfg.Train.Shard(rank, p)
	it := data.NewIterator(shard.Len(), cfg.Batch, cfg.Seed+int64(rank)*7919)
	sgd := optim.NewSGD(cfg.LR.LR(0), cfg.Momentum, n)
	if cfg.Resume != nil {
		if err := cfg.Resume.Apply(net, sgd); err != nil {
			return nil, fmt.Errorf("dist: rank %d resume: %w", rank, err)
		}
	}
	if restore != nil {
		if err := restore.Apply(net, sgd); err != nil {
			return nil, fmt.Errorf("dist: rank %d restoring join checkpoint: %w", rank, err)
		}
	}
	gs := newGuardState(cfg, rank, n, tc)

	// Exchange strategy: on the fault path the point-to-point mesh keeps
	// per-peer delivery (nack/resend repairs individual links), so the
	// hier/tree schedules inform the *modeled* collective price only;
	// gossip however changes the real message flow (ring neighbors only).
	// Bucketing is also real: the iteration's exchange runs as Count()
	// member rounds under sequence numbers iter·B+b, each bucket with its
	// own codec instance (own CRC frames, own residual slice), so a chaos
	// crash mid-iteration lands between buckets and the unshipped tail
	// folds into the per-bucket residuals.
	colCfg := collective.Config{}.WithDefaults()
	if cfg.Collective != nil {
		colCfg = *cfg.Collective
	}
	bk := collective.MakeBuckets(n, colCfg.BucketBytes)
	nb := bk.Count()
	gossipMode := colCfg.Strategy == collective.Gossip
	spi := nb
	if gossipMode {
		spi = 2
	}
	bounded := cfg.Fault.Staleness > 0
	lambda := cfg.Fault.StalenessDiscount
	if lambda <= 0 || lambda > 1 {
		lambda = 0.9
	}
	// Staleness windows in exchange-seq units: K iterations of spi seqs.
	// Gossip folds at-most-one-iteration-old caches even without an
	// explicit staleness budget (self-weight absorption covers the rest).
	var staleWindow uint64
	if bounded {
		staleWindow = uint64(cfg.Fault.Staleness) * uint64(spi)
	}
	gossipWindow := staleWindow
	if gossipMode && gossipWindow == 0 {
		gossipWindow = uint64(spi)
	}

	var bcomps, bwire []compress.Compressor
	var comp compress.Compressor
	if nb > 1 {
		bcomps = make([]compress.Compressor, nb)
		bwire = make([]compress.Compressor, nb)
		for b := 0; b < nb; b++ {
			bcomps[b] = gs.wrap(cfg.NewCompressor())
			compress.Instrument(bcomps[b], wst)
			bwire[b] = gs.wrap(compress.FP32{})
		}
	} else {
		comp = gs.wrap(cfg.NewCompressor())
		compress.Instrument(comp, wst)
	}
	pickBucket := func(b int, compressed bool) compress.Compressor {
		if compressed {
			return bcomps[b]
		}
		return bwire[b]
	}

	grad := make([]float32, n)
	avg := make([]float32, n)
	recon := make([]float32, n)
	delta := make([]float32, n)
	loss := nn.SoftmaxCE{}
	fp32 := compress.FP32{}
	wireFP32 := gs.wrap(fp32)
	gs.retain(checkpoint.Capture(net, sgd, 0, -1))

	res := &Result{GradSize: n}
	var totalMsgBytes float64
	var lossSum float64
	var lossCount int
	totalIters := cfg.Epochs * cfg.ItersPerEpoch

	var msgBuf []byte // mesh sends copy, so one buffer suffices
	var bmaxs []int   // per-bucket max message size (pricing)
	if nb > 1 {
		bmaxs = make([]int, nb)
	}
	var syncFlat []float32
	var syncPayload []byte
	var liveRatio float64
	var gossipEpoch uint64 // last view epoch acted on (gossip mode)

	// Seed the rejoin store so a rank crashing before the first epoch
	// boundary can still restore something consistent.
	if isRoot {
		rt.PublishCheckpoint(checkpoint.Capture(net, sgd, 0, 0), 0)
	}

	iter := startIter
	forceSync := startIter > 0 || restore != nil
	// rejoin parks until the transport heals, restores the published
	// checkpoint when this rank was evicted, and fast-forwards to the
	// exchange frontier. Returns a terminal error when re-entry failed.
	rejoin := func() error {
		view, frontier, st, err := m.AwaitRejoin()
		if err != nil {
			return fmt.Errorf("dist: rank %d: %w", rank, err)
		}
		if st != nil {
			if aerr := st.Apply(net, sgd); aerr != nil {
				return fmt.Errorf("dist: rank %d restoring checkpoint on rejoin: %w", rank, aerr)
			}
		}
		// The frontier is in exchange-sequence units (iter·spi+s when the
		// iteration burns several seqs). Resume at the iteration
		// *containing* it — never past it: survivors parked mid-iteration
		// are waiting on this rank's remaining rounds, so skipping to the
		// next boundary would deadlock both sides. Replaying the
		// iteration's earlier seqs is safe: peers discard late data for
		// completed rounds and serve (or degrade) the replayed exchanges
		// from their send cache.
		if f := int(frontier) / spi; f > iter {
			iter = f
		}
		forceSync = true
		_ = view
		return nil
	}

	for iter < totalIters {
		if cfg.haltCheck(iter) {
			res.Halted = true
			break
		}
		// Bounded-staleness throttle: never start an exchange more than K
		// iterations ahead of the slowest live rank's frontier.
		if bounded {
			if _, werr := rt.WaitWithinWindow(rank, uint64(iter)*uint64(spi), staleWindow); werr != nil {
				res.Halted = true
				break
			}
		}
		epoch := iter / cfg.ItersPerEpoch
		sgd.LR = cfg.LR.LR(epoch)
		tc.SetIter(uint64(iter))
		var tIter time.Time
		if tc != nil {
			tIter = time.Now()
		}
		var obsStart int64
		if oc != nil {
			obsStart = oc.NowNs()
		}
		theta := math.NaN()
		if cfg.ThetaSchedule != nil {
			theta = cfg.ThetaSchedule.Theta(epoch)
			if nb > 1 {
				for _, c := range bcomps {
					if ts, ok := c.(compress.ThetaSetter); ok {
						ts.SetTheta(theta)
					}
				}
			} else if ts, ok := comp.(compress.ThetaSetter); ok {
				ts.SetTheta(theta)
			}
		}

		// --- local gradient ---------------------------------------------
		t0 := time.Now()
		x, labels := shard.Batch(it.Next())
		net.ZeroGrads()
		logits := net.Forward(x, true)
		l, dl := loss.Loss(logits, labels)
		net.Backward(dl)
		net.FlattenGrads(grad)
		if tc != nil {
			tScrub := time.Now()
			gs.scrubGrad(grad)
			tc.SpanSince(trace.OpScrub, int64(n), tScrub)
		} else {
			gs.scrubGrad(grad)
		}
		computeT := time.Since(t0)
		tc.SpanTimed(trace.OpCompute, int64(cfg.Batch), t0, computeT)
		if isRoot {
			lossSum += l
			lossCount++
			if cfg.SampleGradients > 0 && iter%cfg.SampleGradients == 0 {
				res.GradSamples = append(res.GradSamples, append([]float32(nil), grad...))
			}
		}

		// --- adaptive compression decision -------------------------------
		iterComp := comp
		compressed := true
		if cfg.Adapt != nil {
			adTheta := theta
			if math.IsNaN(adTheta) {
				adTheta = 0
			}
			d := cfg.Adapt.DecideIter(iter, liveRatio, adTheta)
			if !d.Compress {
				iterComp = wireFP32
				compressed = false
				tc.Instant(trace.OpBypass, 0)
			} else if d.ThetaAdjusted {
				if nb > 1 {
					for _, c := range bcomps {
						if ts, ok := c.(compress.ThetaSetter); ok {
							ts.SetTheta(d.Theta)
							theta = d.Theta
						}
					}
				} else if ts, ok := comp.(compress.ThetaSetter); ok {
					ts.SetTheta(d.Theta)
					theta = d.Theta
				}
			}
		}
		// Drift fingerprints need every replica to hold nominally equal
		// parameters; gossip replicas intentionally differ between mixing
		// rounds, so the check only runs on the root-synced modes.
		if !gossipMode && gs.driftDue(iter) {
			if nb > 1 {
				gs.attachFingerprint(net, pickBucket(0, compressed))
			} else {
				gs.attachFingerprint(net, iterComp)
			}
		}

		// --- compress + failure-aware exchange ----------------------------
		var compressT, decompressT time.Duration
		var exchangeS float64
		var msgBytes, maxBytes int
		var exchEndNs int64 // exchange-end instant (obs)
		// The cluster layer's in-exchange straggler attribution: the peer
		// this rank waited for longest this iteration and the marginal
		// wait it caused (see ExchangeResult.SlowestPeer). Gossip has no
		// global round to attribute, so it stays -1 there.
		blamePeer, blameWait := int64(-1), int64(0)
		var ex *cluster.ExchangeResult
		var view cluster.View
		epochChanged := false
		crashed := false
		if gossipMode {
			t0 = time.Now()
			msg, err := compress.AppendCompress(iterComp, msgBuf[:0], grad)
			if err != nil {
				return nil, fmt.Errorf("dist: rank %d compress: %w", rank, err)
			}
			msgBuf = msg
			compressT = time.Since(t0)
			msgBytes = len(msg)
			tc.SpanTimed(trace.OpCompress, int64(msgBytes), t0, compressT)
			if compressed && msgBytes > 0 {
				liveRatio = float64(4*n) / float64(msgBytes)
			}

			tEx := time.Now()
			gr, gerr := m.GossipExchange(uint64(iter)*uint64(spi), msg, gossipWindow)
			exchangeD := time.Since(tEx)
			exchangeS = exchangeD.Seconds()
			tc.SpanTimed(trace.OpExchange, int64(msgBytes), tEx, exchangeD)
			if oc != nil {
				exchEndNs = oc.NowNs()
			}
			if gerr != nil {
				if cluster.IsRecoverable(gerr) {
					cfg.Flight.Trigger(rank, trace.ReasonCrash)
					if sink, ok := comp.(residualSink); ok {
						sink.AddToResidual(grad)
					}
					if rerr := rejoin(); rerr != nil {
						return res, rerr
					}
					continue
				}
				return nil, fmt.Errorf("dist: rank %d gossip %d: %w", rank, iter, gerr)
			}

			// --- Metropolis mixing over the live neighborhood ----------
			// avg = Σ w_j·peer_j + (1−Σ w_j)·self. A stale fold is damped
			// to w_j = PeerWeight·λ^d; an absent (or wrong-stream) cache
			// contributes nothing and its mass reverts to self, so the
			// realized mixing row always sums to one.
			t0 = time.Now()
			for i := range avg {
				avg[i] = 0
			}
			if msgBytes > maxBytes {
				maxBytes = msgBytes
			}
			var peerW float32
			for k, mm := range gr.Msgs {
				w := float32(gr.PeerWeight)
				if gr.Stale[k] {
					d := gr.StaleBy[k]
					if d == 0 || d%uint64(spi) != 0 {
						continue // cached payload is from the parameter stream
					}
					w *= float32(math.Pow(lambda, float64(d/uint64(spi))))
				}
				if len(mm) > maxBytes {
					maxBytes = len(mm)
				}
				if derr := compress.DecompressInto(iterComp, recon, mm); derr != nil {
					return nil, fmt.Errorf("dist: rank %d gossip decompress: %w", rank, derr)
				}
				for i, v := range recon {
					avg[i] += w * v
				}
				peerW += w
			}
			if derr := compress.DecompressInto(iterComp, recon, msgBuf); derr != nil {
				return nil, fmt.Errorf("dist: rank %d gossip self-decode: %w", rank, derr)
			}
			selfW := 1 - peerW
			for i, v := range recon {
				avg[i] += selfW * v
			}
			decompressT = time.Since(t0)
			tc.SpanTimed(trace.OpDecompress, int64(len(gr.Peers)+1), t0, decompressT)
			view = gr.View
			epochChanged = gr.View.Epoch != gossipEpoch
			gossipEpoch = gr.View.Epoch
		} else if nb > 1 {
			// Bucketed: Count() member rounds under seq iter·nb+b. The
			// mesh copies sends, so one staging buffer serves every bucket.
			for i := range avg {
				avg[i] = 0
			}
			for b := range bmaxs {
				bmaxs[b] = 0
			}
			for b := 0; b < nb; b++ {
				lo, hi := bk.Range(b)
				bcomp := pickBucket(b, compressed)
				t0 = time.Now()
				msg, err := compress.AppendCompress(bcomp, msgBuf[:0], grad[lo:hi])
				if err != nil {
					return nil, fmt.Errorf("dist: rank %d bucket %d compress: %w", rank, b, err)
				}
				msgBuf = msg
				cmpD := time.Since(t0)
				compressT += cmpD
				msgBytes += len(msg)
				tc.SpanTimed(trace.OpCompress, int64(len(msg)), t0, cmpD)

				var tB time.Time
				if tc != nil {
					tB = time.Now()
				}
				tEx := time.Now()
				var exb *cluster.ExchangeResult
				if bounded {
					exb, err = m.ExchangeBounded(uint64(iter*nb+b), msg, staleWindow)
				} else {
					exb, err = m.Exchange(uint64(iter*nb+b), msg)
				}
				exD := time.Since(tEx)
				exchangeS += exD.Seconds()
				tc.SpanTimed(trace.OpExchange, int64(len(msg)), tEx, exD)
				if oc != nil {
					exchEndNs = oc.NowNs() // last bucket's round wins
				}
				if err != nil {
					if cluster.IsRecoverable(err) {
						// Crash mid-iteration, between bucket rounds: dump
						// the timeline, then fold every unshipped bucket
						// slice into its own error-feedback residual before
						// parking in rejoin — buckets below b were already
						// averaged by the survivors.
						cfg.Flight.Trigger(rank, trace.ReasonCrash)
						for bb := b; bb < nb; bb++ {
							l2, h2 := bk.Range(bb)
							if sink, ok := bcomps[bb].(residualSink); ok {
								sink.AddToResidual(grad[l2:h2])
							}
						}
						crashed = true
						break
					}
					return nil, fmt.Errorf("dist: rank %d exchange %d.%d: %w", rank, iter, b, err)
				}
				if exb.SlowestPeer >= 0 && exb.WaitNs > blameWait {
					blamePeer, blameWait = int64(exb.SlowestPeer), exb.WaitNs
				}
				t0 = time.Now()
				// In strict mode a stale cache entry was served from the
				// previous *seq* — under bucketed sequencing that is the
				// previous bucket, a different slice shape — so stale
				// contributions are dropped and the average rescales over
				// the fresh ones (this rank's own message is always fresh,
				// so the weight sum ≥ 1). In bounded mode a cache that is a
				// whole number of iterations old is the *same* bucket from
				// d iterations back: it folds in damped by λ^d, and the
				// withheld share is banked in this bucket's residual.
				var wsumB float32
				for j, mm := range exb.Msgs {
					if mm == nil {
						continue
					}
					w := float32(1)
					if exb.Stale != nil && exb.Stale[j] {
						if !bounded {
							continue
						}
						d := exb.StaleBy[j]
						if d == 0 || d%uint64(nb) != 0 {
							continue // different bucket: wrong slice shape
						}
						w = float32(math.Pow(lambda, float64(d/uint64(nb))))
					}
					if len(mm) > bmaxs[b] {
						bmaxs[b] = len(mm)
					}
					if derr := compress.DecompressInto(bcomp, recon[lo:hi], mm); derr != nil {
						return nil, fmt.Errorf("dist: rank %d bucket %d decompress: %w", rank, b, derr)
					}
					for i, v := range recon[lo:hi] {
						avg[lo+i] += w * v
					}
					wsumB += w
					if w < 1 {
						if sink, ok := bcomps[b].(scaledResidualSink); ok {
							sink.AddToResidualScaled(recon[lo:hi], (1-w)/float32(exb.Contributors))
						}
					}
				}
				invB := 1 / wsumB
				for i := lo; i < hi; i++ {
					avg[i] *= invB
				}
				decD := time.Since(t0)
				decompressT += decD
				tc.SpanTimed(trace.OpDecompress, int64(exb.Contributors), t0, decD)
				if bmaxs[b] > maxBytes {
					maxBytes = bmaxs[b]
				}
				// One fingerprint per iteration, riding bucket 0's frames.
				if b == 0 && gs.driftDue(iter) && gs.checkDrift(exb.Msgs, exb.Stale) {
					forceSync = true
				}
				epochChanged = epochChanged || exb.EpochChanged
				ex = exb
				tc.SpanSince(trace.OpBucket, int64(b), tB)
			}
			if crashed {
				if rerr := rejoin(); rerr != nil {
					return res, rerr
				}
				continue
			}
			view = ex.View
			if compressed && msgBytes > 0 {
				liveRatio = float64(4*n) / float64(msgBytes)
			}
		} else {
			t0 = time.Now()
			msg, err := compress.AppendCompress(iterComp, msgBuf[:0], grad)
			if err != nil {
				return nil, fmt.Errorf("dist: rank %d compress: %w", rank, err)
			}
			msgBuf = msg
			compressT = time.Since(t0)
			msgBytes = len(msg)
			tc.SpanTimed(trace.OpCompress, int64(msgBytes), t0, compressT)
			if compressed && msgBytes > 0 {
				liveRatio = float64(4*n) / float64(msgBytes)
			}

			tEx := time.Now()
			if bounded {
				ex, err = m.ExchangeBounded(uint64(iter), msg, staleWindow)
			} else {
				ex, err = m.Exchange(uint64(iter), msg)
			}
			exchangeD := time.Since(tEx)
			exchangeS = exchangeD.Seconds()
			tc.SpanTimed(trace.OpExchange, int64(msgBytes), tEx, exchangeD)
			if oc != nil {
				exchEndNs = oc.NowNs()
			}
			if err != nil {
				if cluster.IsRecoverable(err) {
					// The local transport is inside a chaos crash window (or this
					// rank was evicted): dump the timeline while the pre-crash
					// events are still in the ring, then park in rejoin.
					cfg.Flight.Trigger(rank, trace.ReasonCrash)
					// This gradient was computed but never averaged anywhere:
					// keep it in the stream via the error-feedback residual.
					if sink, ok := comp.(residualSink); ok {
						sink.AddToResidual(grad)
					}
					if rerr := rejoin(); rerr != nil {
						return res, rerr
					}
					continue
				}
				return nil, fmt.Errorf("dist: rank %d exchange %d: %w", rank, iter, err)
			}
			if ex.SlowestPeer >= 0 {
				blamePeer, blameWait = int64(ex.SlowestPeer), ex.WaitNs
			}

			// --- average over actual contributors -------------------------
			// Strict mode: every contribution weighs 1 (one-round-stale
			// reuse included), so the weight sum is just Contributors.
			// Bounded mode: a d-iterations-stale contribution weighs λ^d
			// and its withheld share is banked in the residual.
			t0 = time.Now()
			for i := range avg {
				avg[i] = 0
			}
			var wsum float32
			for j, mm := range ex.Msgs {
				if mm == nil {
					continue
				}
				w := float32(1)
				if bounded && ex.Stale != nil && ex.Stale[j] && ex.StaleBy != nil && ex.StaleBy[j] > 0 {
					w = float32(math.Pow(lambda, float64(ex.StaleBy[j])))
				}
				if len(mm) > maxBytes {
					maxBytes = len(mm)
				}
				if err := compress.DecompressInto(iterComp, recon, mm); err != nil {
					return nil, fmt.Errorf("dist: rank %d decompress: %w", rank, err)
				}
				for i, v := range recon {
					avg[i] += w * v
				}
				wsum += w
				if w < 1 {
					if sink, ok := comp.(scaledResidualSink); ok {
						sink.AddToResidualScaled(recon, (1-w)/float32(ex.Contributors))
					}
				}
			}
			inv := 1 / wsum
			for i := range avg {
				avg[i] *= inv
			}
			decompressT = time.Since(t0)
			tc.SpanTimed(trace.OpDecompress, int64(ex.Contributors), t0, decompressT)
			if gs.driftDue(iter) && gs.checkDrift(ex.Msgs, ex.Stale) {
				forceSync = true
			}
			epochChanged = ex.EpochChanged
			view = ex.View
		}

		if st := cfg.stageTimer; st != nil && msgBytes > 0 {
			if cfg.Fabric != nil {
				if isRoot {
					st.ObserveStage(telemetry.StageComm, maxBytes, colCfg.ModelAllgather(cfg.Fabric, p, maxBytes))
				}
			} else {
				st.ObserveStage(telemetry.StageComm, msgBytes, exchangeS)
			}
		}

		// --- update --------------------------------------------------------
		t0 = time.Now()
		switch gs.observe(avg) {
		case guard.ActionRollback:
			gs.rollback(net, sgd)
			forceSync = true
			if isRoot {
				cfg.Flight.Trigger(rank, trace.ReasonRollback)
			}
		case guard.ActionSkip:
			// Poisoned round: no update.
		default:
			sgd.Delta(delta, avg)
			net.AddToParams(delta)
		}
		updateT := time.Since(t0)
		tc.SpanTimed(trace.OpUpdate, int64(n), t0, updateT)

		// --- parameter re-sync ---------------------------------------------
		// The periodic sync also runs early after any view change: degraded
		// rounds, rejoins and elastic joins all leave replicas apart, and
		// the re-sync is what bounds that drift window. Root-synced modes
		// broadcast from the lowest alive rank; gossip mode instead runs a
		// parameter-consensus gossip round under the same Metropolis
		// weights (no root to depend on).
		var syncBytes int
		var syncD time.Duration
		if (iter+1)%cfg.SyncEvery == 0 || forceSync || epochChanged {
			var tSync time.Time
			if tc != nil || oc != nil {
				tSync = time.Now()
			}
			if gossipMode {
				if syncFlat == nil {
					syncFlat = make([]float32, n)
				}
				flat := net.GetParams(syncFlat)
				payload, _ := compress.AppendCompress(wireFP32, syncPayload[:0], flat)
				syncPayload = payload
				// Window 0: a parameter round never folds a stale cache —
				// the cache would be a gradient payload from the other
				// seq stream; an absent neighbor's mass reverts to self.
				pg, perr := m.GossipExchange(uint64(iter)*uint64(spi)+1, payload, 0)
				if perr != nil {
					if cluster.IsRecoverable(perr) {
						if rerr := rejoin(); rerr != nil {
							return res, rerr
						}
						continue
					}
					return nil, fmt.Errorf("dist: rank %d param gossip %d: %w", rank, iter, perr)
				}
				if len(pg.Msgs) > 0 {
					for i := range avg {
						avg[i] = 0
					}
					var pws float32
					for k, mm := range pg.Msgs {
						if pg.Stale[k] {
							continue
						}
						if derr := compress.DecompressInto(wireFP32, recon, mm); derr != nil {
							return nil, fmt.Errorf("dist: rank %d param gossip decode: %w", rank, derr)
						}
						w := float32(pg.PeerWeight)
						for i, v := range recon {
							avg[i] += w * v
						}
						pws += w
					}
					sw := 1 - pws
					for i, v := range flat {
						avg[i] += sw * v
					}
					net.SetParams(avg)
					syncBytes = n * 4
				}
				forceSync = false
				tc.SpanSince(trace.OpSync, int64(syncBytes), tSync)
				if oc != nil {
					syncD = time.Since(tSync)
				}
			} else {
				root := view.LowestAlive()
				if root >= 0 {
					if syncFlat == nil {
						syncFlat = make([]float32, n)
					}
					var payload []byte
					if rank == root {
						flat := net.GetParams(syncFlat)
						payload, _ = compress.AppendCompress(wireFP32, syncPayload[:0], flat)
						syncPayload = payload
					}
					got, ok, serr := m.SyncBroadcast(uint64((iter+1)*spi), payload, root)
					if serr != nil {
						if cluster.IsRecoverable(serr) {
							if rerr := rejoin(); rerr != nil {
								return res, rerr
							}
							continue
						}
						return nil, fmt.Errorf("dist: rank %d sync %d: %w", rank, iter, serr)
					}
					if ok && rank != root {
						if err := compress.DecompressInto(wireFP32, syncFlat, got); err != nil {
							return nil, err
						}
						net.SetParams(syncFlat)
					}
					if ok {
						syncBytes = n * 4
					}
				}
				forceSync = false
				tc.SpanSince(trace.OpSync, int64(syncBytes), tSync)
				if oc != nil {
					syncD = time.Since(tSync)
				}
			}
		}

		// --- bookkeeping (rank 0) ------------------------------------------
		if isRoot {
			res.Iterations++
			totalMsgBytes += float64(msgBytes)
			res.ComputeSeconds += computeT.Seconds() + updateT.Seconds()
			res.CompressSeconds += compressT.Seconds() + decompressT.Seconds()
			res.CommMeasuredSeconds += exchangeS
			if !compressed {
				res.BypassedIterations++
			}
			var commS float64
			if cfg.Fabric != nil {
				if nb > 1 {
					for _, mb := range bmaxs {
						if mb > 0 {
							commS += colCfg.ModelAllgather(cfg.Fabric, p, mb)
						}
					}
				} else {
					commS = colCfg.ModelAllgather(cfg.Fabric, p, maxBytes)
				}
				if syncBytes > 0 {
					if gossipMode {
						commS += colCfg.ModelAllgather(cfg.Fabric, p, syncBytes)
					} else {
						commS += colCfg.ModelBroadcast(cfg.Fabric, p, syncBytes)
					}
				}
				res.CommSeconds += commS
			}
			if cfg.Trace {
				res.Trace = append(res.Trace, IterTrace{
					Iter:          iter,
					ComputeS:      computeT.Seconds() + updateT.Seconds(),
					CompressS:     compressT.Seconds() + decompressT.Seconds(),
					CommS:         commS,
					CommMeasuredS: exchangeS,
					MsgBytes:      msgBytes,
					Theta:         theta,
					Compressed:    compressed,
				})
			}
		}

		// --- epoch boundary -------------------------------------------------
		if (iter+1)%cfg.ItersPerEpoch == 0 {
			if isRoot {
				stats := EpochStats{
					Epoch:     epoch,
					TrainLoss: lossSum / float64(lossCount),
					LR:        sgd.LR,
					Theta:     theta,
				}
				lossSum, lossCount = 0, 0
				if cfg.Test != nil {
					stats.TestAcc = evaluate(net, cfg.Test, cfg.Batch)
				}
				res.Epochs = append(res.Epochs, stats)
				if cfg.OnEpoch != nil {
					cfg.OnEpoch(stats)
				}
				if cfg.CheckpointEvery > 0 && cfg.OnCheckpoint != nil && (epoch+1)%cfg.CheckpointEvery == 0 {
					cfg.OnCheckpoint(checkpoint.Capture(net, sgd, int64(epoch), int64(iter)))
				}
			}
			// The current sync root (not necessarily rank 0 — it may be
			// dead) publishes the rejoin/join checkpoint.
			if rank == view.LowestAlive() {
				rt.PublishCheckpoint(checkpoint.Capture(net, sgd, int64(epoch), int64(iter)), uint64((iter+1)*spi))
			}
		}
		gs.maybeRetain(iter, epoch, net, sgd)
		tc.SpanSince(trace.OpIteration, int64(msgBytes), tIter)
		if oc != nil {
			oc.Commit(obs.IterRecord{
				Iter:         int64(iter),
				StartNs:      obsStart,
				ExchEndNs:    exchEndNs,
				EndNs:        oc.NowNs(),
				ComputeNs:    computeT.Nanoseconds(),
				CompressNs:   compressT.Nanoseconds(),
				ExchangeNs:   int64(exchangeS * 1e9),
				DecompressNs: decompressT.Nanoseconds(),
				UpdateNs:     updateT.Nanoseconds(),
				SyncNs:       syncD.Nanoseconds(),
				MsgBytes:     int64(msgBytes),
				BlamePeer:    blamePeer,
				BlameWaitNs:  blameWait,
			})
		}
		iter++
	}

	if isRoot && res.Iterations > 0 {
		res.AvgMsgBytes = totalMsgBytes / float64(res.Iterations)
		res.CompressionRatio = float64(n*4) / res.AvgMsgBytes
	}
	if isRoot {
		cfg.finalState(res, net, sgd)
	}
	return res, nil
}

package dist

import (
	"math"
	"testing"

	"fftgrad/internal/checkpoint"
	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/models"
	"fftgrad/internal/netsim"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
	"fftgrad/internal/sparsify"
)

// blobCfg returns a fast-converging baseline config: MLP on Gaussian
// blobs, 4 workers.
func blobCfg(seed int64) Config {
	train, test := data.GaussianBlobs(2560, 4, 16, 0.25, seed).Split(2048)
	return Config{
		Workers:  4,
		Batch:    16,
		Epochs:   3,
		Seed:     seed,
		Momentum: 0.9,
		LR:       optim.ConstLR(0.05),
		Model: func(s int64) *nn.Network {
			return models.MLP(16, 32, 4, s)
		},
		Train:  train,
		Test:   test,
		Fabric: netsim.InfiniBandFDR,
	}
}

func TestTrainFP32Converges(t *testing.T) {
	res, err := Train(blobCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("epochs recorded %d", len(res.Epochs))
	}
	first := res.Epochs[0]
	last := res.Epochs[len(res.Epochs)-1]
	if last.TrainLoss >= first.TrainLoss {
		t.Fatalf("loss did not fall: %g -> %g", first.TrainLoss, last.TrainLoss)
	}
	if last.TestAcc < 0.9 {
		t.Fatalf("final accuracy %.3f < 0.9", last.TestAcc)
	}
	if res.CompressionRatio != 1 {
		t.Fatalf("fp32 ratio %g", res.CompressionRatio)
	}
	if res.ComputeSeconds <= 0 || res.CommSeconds <= 0 {
		t.Fatalf("timing not recorded: compute=%g comm=%g", res.ComputeSeconds, res.CommSeconds)
	}
}

func TestTrainDeterministic(t *testing.T) {
	a, err := Train(blobCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(blobCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Epochs {
		if a.Epochs[i].TrainLoss != b.Epochs[i].TrainLoss || a.Epochs[i].TestAcc != b.Epochs[i].TestAcc {
			t.Fatalf("epoch %d diverged: %+v vs %+v", i, a.Epochs[i], b.Epochs[i])
		}
	}
}

func TestTrainWithFFTCompression(t *testing.T) {
	cfg := blobCfg(3)
	cfg.NewCompressor = func() compress.Compressor { return compress.NewFFT(0.5) }
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.TestAcc < 0.85 {
		t.Fatalf("fft θ=0.5 final accuracy %.3f", last.TestAcc)
	}
	if res.CompressionRatio < 1.5 {
		t.Fatalf("fft compression ratio %.2f too low", res.CompressionRatio)
	}
	// Compression must shrink modeled communication vs FP32.
	base, err := Train(blobCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSeconds >= base.CommSeconds {
		t.Fatalf("compressed comm %.6f not below fp32 %.6f", res.CommSeconds, base.CommSeconds)
	}
}

// Theorem 3.4's error floor: θ=0.99 must converge visibly worse than
// θ=0.3 under the same budget. The floor shows in training loss on a task
// hard enough not to saturate (high-noise blobs, 8 classes).
func TestThetaErrorFloorOrdering(t *testing.T) {
	run := func(theta float64) float64 {
		train, test := data.GaussianBlobs(2560, 8, 16, 1.0, 44).Split(2048)
		cfg := blobCfg(4)
		cfg.Train, cfg.Test = train, test
		cfg.Epochs = 3
		cfg.Model = func(s int64) *nn.Network { return models.MLP(16, 32, 8, s) }
		cfg.NewCompressor = func() compress.Compressor { return compress.NewTopK(theta) }
		res, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Epochs[len(res.Epochs)-1].TrainLoss
	}
	low := run(0.3)
	high := run(0.99)
	if high <= low {
		t.Fatalf("θ=0.99 loss %.4f should exceed θ=0.3 loss %.4f", high, low)
	}
}

// Theorem 3.5's recovery: an aggressive θ whose schedule drops to 0
// mid-run must end close to the lossless baseline.
func TestThetaRecoverySchedule(t *testing.T) {
	cfg := blobCfg(5)
	cfg.Epochs = 4
	cfg.NewCompressor = func() compress.Compressor { return compress.NewTopK(0.99) }
	cfg.ThetaSchedule = sparsify.StepDrop{Initial: 0.99, Final: 0, DropEpoch: 2}
	rec, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := blobCfg(5)
	base.Epochs = 4
	baseRes, err := Train(base)
	if err != nil {
		t.Fatal(err)
	}
	recAcc := rec.Epochs[len(rec.Epochs)-1].TestAcc
	baseAcc := baseRes.Epochs[len(baseRes.Epochs)-1].TestAcc
	if recAcc < baseAcc-0.05 {
		t.Fatalf("recovered acc %.3f too far below baseline %.3f", recAcc, baseAcc)
	}
}

func TestAlphaMeasurement(t *testing.T) {
	cfg := blobCfg(6)
	cfg.Epochs = 1
	cfg.MeasureAlpha = true
	cfg.NewCompressor = func() compress.Compressor { return compress.NewFFT(0.85) }
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alpha) != res.Iterations {
		t.Fatalf("alpha samples %d != iterations %d", len(res.Alpha), res.Iterations)
	}
	for i, a := range res.Alpha {
		if a < 0 || a > 1 || math.IsNaN(a) {
			t.Fatalf("α[%d]=%g violates Assumption 3.2 band", i, a)
		}
	}
}

func TestGradientSampling(t *testing.T) {
	cfg := blobCfg(7)
	cfg.Epochs = 1
	cfg.SampleGradients = 10
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := (res.Iterations + 9) / 10
	if len(res.GradSamples) != want {
		t.Fatalf("samples %d want %d", len(res.GradSamples), want)
	}
	for _, g := range res.GradSamples {
		if len(g) != res.GradSize {
			t.Fatalf("sample length %d != grad size %d", len(g), res.GradSize)
		}
	}
}

func TestSingleWorker(t *testing.T) {
	cfg := blobCfg(8)
	cfg.Workers = 1
	cfg.Epochs = 2
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[len(res.Epochs)-1].TestAcc < 0.85 {
		t.Fatalf("single-worker accuracy %.3f", res.Epochs[len(res.Epochs)-1].TestAcc)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Train(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
}

func TestCNNSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training is slow")
	}
	train, test := data.SynthImages(384, 4, 16, 0.3, 9).Split(256)
	cfg := Config{
		Workers: 2, Batch: 16, Epochs: 2, Seed: 9,
		Momentum: 0.9,
		LR:       optim.ConstLR(0.02),
		Model: func(s int64) *nn.Network {
			return models.TinyCNN(4, 16, s)
		},
		Train: train, Test: test,
		NewCompressor: func() compress.Compressor { return compress.NewFFT(0.7) },
		Fabric:        netsim.CometCluster(),
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[len(res.Epochs)-1].TrainLoss >= res.Epochs[0].TrainLoss+0.1 {
		t.Fatalf("CNN loss not improving: %v", res.Epochs)
	}
}

// Sparse-allreduce exchange mode must converge like Top-k + allgather at
// the same θ (numerically both average the same sparsified vectors) while
// pricing strictly less modeled communication.
func TestSparseAllreduceExchangeMode(t *testing.T) {
	base := blobCfg(31)
	base.NewCompressor = func() compress.Compressor { return compress.NewTopK(0.85) }
	agRes, err := Train(base)
	if err != nil {
		t.Fatal(err)
	}

	sp := blobCfg(31)
	sp.UseSparseAllreduce = true
	sp.SparseTheta = 0.85
	spRes, err := Train(sp)
	if err != nil {
		t.Fatal(err)
	}

	agAcc := agRes.Epochs[len(agRes.Epochs)-1].TestAcc
	spAcc := spRes.Epochs[len(spRes.Epochs)-1].TestAcc
	if math.Abs(agAcc-spAcc) > 0.05 {
		t.Fatalf("exchange modes should converge alike: allgather %.3f vs sparse-allreduce %.3f", agAcc, spAcc)
	}
	if spRes.CommSeconds >= agRes.CommSeconds {
		t.Fatalf("sparse allreduce should price less comm: %.6f vs %.6f",
			spRes.CommSeconds, agRes.CommSeconds)
	}
	if spRes.CompressionRatio <= 1 {
		t.Fatalf("sparse mode ratio %.2f", spRes.CompressionRatio)
	}
}

// The θ schedule must drive the sparse-allreduce path too.
func TestSparseAllreduceThetaSchedule(t *testing.T) {
	cfg := blobCfg(32)
	cfg.Epochs = 2
	cfg.UseSparseAllreduce = true
	cfg.SparseTheta = 0.99
	cfg.ThetaSchedule = sparsify.StepDrop{Initial: 0.99, Final: 0.5, DropEpoch: 1}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[0].Theta != 0.99 || res.Epochs[1].Theta != 0.5 {
		t.Fatalf("schedule not applied: %+v", res.Epochs)
	}
}

func TestTraceRecording(t *testing.T) {
	cfg := blobCfg(33)
	cfg.Epochs = 1
	cfg.Trace = true
	cfg.NewCompressor = func() compress.Compressor { return compress.NewFFT(0.85) }
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Iterations {
		t.Fatalf("trace entries %d != iterations %d", len(res.Trace), res.Iterations)
	}
	var compute, compress, comm float64
	for i, tr := range res.Trace {
		if tr.Iter != i {
			t.Fatalf("trace %d has iter %d", i, tr.Iter)
		}
		if tr.ComputeS <= 0 || tr.CompressS <= 0 || tr.MsgBytes <= 0 {
			t.Fatalf("trace %d incomplete: %+v", i, tr)
		}
		compute += tr.ComputeS
		compress += tr.CompressS
		comm += tr.CommS
	}
	if compute != res.ComputeSeconds || compress != res.CompressSeconds || comm != res.CommSeconds {
		t.Fatalf("trace totals must match result totals")
	}
}

// Checkpoint + Resume: training that checkpoints at epoch 1 and resumes
// must continue improving from the restored state.
func TestCheckpointResume(t *testing.T) {
	var captured *checkpoint.State
	cfg := blobCfg(34)
	cfg.Epochs = 2
	cfg.CheckpointEvery = 2
	cfg.OnCheckpoint = func(st *checkpoint.State) { captured = st }
	first, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("checkpoint callback never fired")
	}
	if len(captured.Params) != first.GradSize {
		t.Fatalf("captured %d params for grad size %d", len(captured.Params), first.GradSize)
	}

	resumed := blobCfg(34)
	resumed.Epochs = 2
	resumed.Resume = captured
	second, err := Train(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if second.Epochs[len(second.Epochs)-1].TrainLoss >= first.Epochs[len(first.Epochs)-1].TrainLoss {
		t.Fatalf("resumed run should keep improving: %.4f vs %.4f",
			second.Epochs[len(second.Epochs)-1].TrainLoss,
			first.Epochs[len(first.Epochs)-1].TrainLoss)
	}
}

package dist

// Chaos gates for the asynchrony/elasticity layer: bounded staleness
// under a permanent straggler, gossip averaging under lossy links, and a
// brand-new rank joining mid-run. Each gate holds the degraded run to
// within two accuracy points of the fault-free baseline — the same
// envelope the crash/rejoin gate in fault_test.go enforces.

import (
	"path/filepath"
	"testing"
	"time"

	"fftgrad/internal/chaos"
	"fftgrad/internal/cluster"
	"fftgrad/internal/collective"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// trainOrDeadlock runs Train in a goroutine so a wedged exchange fails
// the test instead of hanging the package.
func trainOrDeadlock(t *testing.T, cfg Config) *Result {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := Train(cfg)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("run failed: %v", o.err)
		}
		return o.res
	case <-time.After(4 * time.Minute):
		t.Fatal("run deadlocked")
		return nil
	}
}

func finalAcc(res *Result) float64 {
	return res.Epochs[len(res.Epochs)-1].TestAcc
}

// TestBoundedStalenessGate: a permanent straggler (every send ~6ms late,
// well under the suspicion deadline, never recovering) plus background
// drop/delay chaos. Strict BSP would pay the straggler's delay every
// round; bounded mode folds its freshest cached gradient damped by λ^d
// instead. The gate: the run completes, staleness never exceeds the
// window K, and accuracy stays within two points of fault-free.
func TestBoundedStalenessGate(t *testing.T) {
	base, err := Train(blobCfg(51))
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := finalAcc(base)

	for _, k := range []int{1, 4} {
		k := k
		t.Run(map[int]string{1: "K1", 4: "K4"}[k], func(t *testing.T) {
			cfg := blobCfg(51)
			cc := faultClusterCfg()
			cc.Policy = cluster.StaleReuse
			cc.OnStraggler = cluster.StragglerWait
			cfg.Fault = &FaultConfig{
				Cluster:           cc,
				Staleness:         k,
				StalenessDiscount: 0.9,
				Chaos: &chaos.Config{
					Seed:      51,
					Drop:      0.03,
					DelayProb: 0.08,
					Delay:     5 * time.Millisecond,
					// Ops: 0 — rank 3 straggles from op 300 to the end of
					// the run; SlowBy stays below SuspectAfter so it is
					// classified slow, never dead.
					Stragglers: []chaos.StragglerEvent{{Rank: 3, FromOp: 300, SlowBy: 6 * time.Millisecond}},
				},
			}
			cfg.Telemetry = telemetry.NewRegistry()

			res := trainOrDeadlock(t, cfg)
			if res.Fault == nil || res.Fault.Chaos == nil {
				t.Fatal("fault/chaos report missing")
			}
			if res.Fault.Chaos.StraggledOps == 0 {
				t.Fatal("straggler injected nothing; gate proves nothing")
			}
			if res.Fault.LostWorkers != 0 {
				t.Fatalf("permanent straggler was evicted: %+v", res.Fault)
			}
			s := res.Fault.Cluster
			if s.StalenessMax > uint64(k) {
				t.Fatalf("staleness %d folded beyond the K=%d window", s.StalenessMax, k)
			}
			if s.StaleReuses == 0 {
				t.Fatal("no stale folds: bounded mode never engaged")
			}
			if acc := finalAcc(res); acc < baseAcc-0.02 {
				t.Fatalf("accuracy under bounded staleness %.3f more than 2 points below fault-free %.3f", acc, baseAcc)
			}
			if v := res.Telemetry["fftgrad_staleness_max"]; v != float64(s.StalenessMax) {
				t.Fatalf("fftgrad_staleness_max = %g, stats say %d", v, s.StalenessMax)
			}
		})
	}
}

// TestGossipGate: decentralized ring-neighbor averaging under lossy
// links. No root, no global barrier — every iteration is one gradient
// gossip round and every sync period one parameter-consensus round, both
// under Metropolis weights. The gate: rounds actually happened and
// accuracy stays within two points of the fault-free allreduce baseline.
func TestGossipGate(t *testing.T) {
	base, err := Train(blobCfg(53))
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := finalAcc(base)

	cfg := blobCfg(53)
	cfg.Collective = &collective.Config{Strategy: collective.Gossip}
	cc := faultClusterCfg()
	cc.Policy = cluster.StaleReuse
	cfg.Fault = &FaultConfig{
		Cluster: cc,
		Chaos: &chaos.Config{
			Seed:      53,
			Drop:      0.03,
			DelayProb: 0.05,
			Delay:     5 * time.Millisecond,
		},
	}
	cfg.Telemetry = telemetry.NewRegistry()

	res := trainOrDeadlock(t, cfg)
	if res.Fault == nil {
		t.Fatal("fault report missing")
	}
	if res.Fault.Cluster.GossipRounds == 0 {
		t.Fatal("no gossip rounds recorded")
	}
	if acc := finalAcc(res); acc < baseAcc-0.02 {
		t.Fatalf("gossip accuracy %.3f more than 2 points below allreduce %.3f", acc, baseAcc)
	}
	if v := res.Telemetry["fftgrad_gossip_rounds_total"]; v <= 0 {
		t.Fatalf("fftgrad_gossip_rounds_total = %g in telemetry snapshot", v)
	}
}

// TestAsyncConfigRejections: the asynchrony modes validate their
// configuration up front with typed, actionable errors.
func TestAsyncConfigRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"gossip without fault", func(c *Config) {
			c.Collective = &collective.Config{Strategy: collective.Gossip}
		}},
		{"gossip with buckets", func(c *Config) {
			c.Collective = &collective.Config{Strategy: collective.Gossip, BucketBytes: 4096}
			c.Fault = &FaultConfig{Cluster: faultClusterCfg()}
		}},
		{"negative staleness", func(c *Config) {
			c.Fault = &FaultConfig{Cluster: faultClusterCfg(), Staleness: -1}
		}},
		{"discount above one", func(c *Config) {
			c.Fault = &FaultConfig{Cluster: faultClusterCfg(), Staleness: 2, StalenessDiscount: 1.5}
		}},
		{"negative join iteration", func(c *Config) {
			c.Fault = &FaultConfig{Cluster: faultClusterCfg(), ElasticJoins: []int{-3}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := blobCfg(1)
			tc.mut(&cfg)
			if _, err := Train(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// TestElasticJoinGate: a brand-new rank (beyond the initial four) joins
// once the exchange frontier reaches iteration 10 — quorum view change
// that grows the view, checkpoint restore, entry at the frontier. The
// gate: exactly one elastic join, nobody lost, a view-grow flight dump
// on record, and accuracy within two points of the fault-free baseline.
func TestElasticJoinGate(t *testing.T) {
	base, err := Train(blobCfg(57))
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := finalAcc(base)

	cfg := blobCfg(57)
	cc := faultClusterCfg()
	cc.Policy = cluster.StaleReuse
	cc.OnStraggler = cluster.StragglerWait
	cfg.Fault = &FaultConfig{Cluster: cc, ElasticJoins: []int{10}}
	cfg.Telemetry = telemetry.NewRegistry()
	tracer := trace.New(cfg.Workers+1, 2048)
	cfg.Tracer = tracer
	cfg.Flight = trace.NewFlightRecorder(tracer, filepath.Join(t.TempDir(), "flight.json"))

	res := trainOrDeadlock(t, cfg)
	if res.Fault == nil {
		t.Fatal("fault report missing")
	}
	s := res.Fault.Cluster
	if s.ElasticJoins != 1 {
		t.Fatalf("elastic joins %d, want 1: %+v", s.ElasticJoins, s)
	}
	if res.Fault.LostWorkers != 0 {
		t.Fatalf("a rank was lost during scale-up: %+v", res.Fault)
	}
	if s.ViewChanges == 0 {
		t.Fatal("join did not bump the view epoch")
	}
	if acc := finalAcc(res); acc < baseAcc-0.02 {
		t.Fatalf("accuracy with mid-run join %.3f more than 2 points below baseline %.3f", acc, baseAcc)
	}
	if v := res.Telemetry["fftgrad_elastic_joins_total"]; v != 1 {
		t.Fatalf("fftgrad_elastic_joins_total = %g, want 1", v)
	}
	if cfg.Flight.Dumps() == 0 {
		t.Fatal("view-grow flight dump never fired")
	}
}

// TestElasticJoinWorkerAccounting: elastic slots occupy worker quota and
// timeline tracks from submission time — the scheduler must reserve the
// slot before the join fires, not discover it mid-run.
func TestElasticJoinWorkerAccounting(t *testing.T) {
	cfg := blobCfg(1)
	cfg.Fault = &FaultConfig{Cluster: faultClusterCfg(), ElasticJoins: []int{5, 9}}
	job := cfg.NewJob()
	if got := job.Workers(); got != cfg.Workers+2 {
		t.Fatalf("Workers() = %d, want %d", got, cfg.Workers+2)
	}
	if got := job.Tracks(); got != cfg.Workers+2 {
		t.Fatalf("Tracks() = %d, want %d", got, cfg.Workers+2)
	}
}

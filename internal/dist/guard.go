package dist

// Guard glue: per-worker state for internal/guard's integrity layer.
// Every method is nil-receiver safe, so the worker loops call straight
// through without sprinkling `if guard enabled` checks; with guard off
// each call is a nil check and nothing else.
//
// Cross-rank agreement without coordination: the shared guard.Config
// fixes the wire format and thresholds, the anomaly detector observes
// the *post-average* gradient norm (identical on every rank in the
// barrier path), and drift detection compares the one fingerprint set
// every rank received — so clip/skip/rollback and forced re-syncs
// happen in lockstep with zero extra collectives.

import (
	"math"

	"fftgrad/internal/checkpoint"
	"fftgrad/internal/compress"
	"fftgrad/internal/guard"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
	"fftgrad/internal/trace"
)

type guardState struct {
	cfg    guard.Config
	stats  *guard.Stats
	det    *guard.Detector
	isRoot bool
	tc     *trace.Ctx // this rank's timeline track (nil = tracing off)

	fpFlat []float32 // fingerprint staging (reused every drift round)
	ownFP  uint64

	// ring is the in-memory retained rollback ring: states captured at
	// deterministic iterations, so every rank restores the same point.
	// The durable on-disk variant is checkpoint.Ring (trainer wiring).
	ring []*checkpoint.State
}

func newGuardState(cfg Config, rank, n int, tc *trace.Ctx) *guardState {
	if cfg.Guard == nil {
		return nil
	}
	gs := &guardState{cfg: *cfg.Guard, stats: cfg.guardStats, isRoot: rank == 0, tc: tc}
	if gs.cfg.Detect {
		gs.det = guard.NewDetector(gs.cfg)
	}
	if gs.cfg.DriftEvery > 0 {
		gs.fpFlat = make([]float32, n)
	}
	return gs
}

// wrap frames c for the wire when framing is enabled (CRC or drift
// fingerprints); otherwise c passes through untouched.
func (gs *guardState) wrap(c compress.Compressor) compress.Compressor {
	if gs == nil || !gs.cfg.Framing() {
		return c
	}
	return guard.NewFramed(c, gs.cfg.CRC)
}

// verifier returns the wire integrity check for the cluster receiver,
// or nil when frames are not in use.
func (gs *guardState) verifier(cfg Config) func([]byte) error {
	if cfg.Guard == nil || !cfg.Guard.Framing() {
		return nil
	}
	return guard.Verify
}

// scrubGrad runs the pre-compress scrub in place. Under ScrubSkip a
// poisoned gradient is withheld entirely: the rank ships zeros (keeping
// the BSP collective in lockstep without coordination) and the
// compressor's error-feedback residual is left untouched — preserved
// for the next healthy iteration rather than polluted with NaNs.
func (gs *guardState) scrubGrad(grad []float32) {
	if gs == nil || gs.cfg.Scrub == guard.ScrubOff {
		return
	}
	scrubbed, skip := guard.Scrub(grad, gs.cfg.Scrub, gs.cfg.ClampLimit)
	if scrubbed > 0 {
		gs.stats.AddScrubbed(scrubbed)
		gs.tc.Instant(trace.OpScrubbed, int64(scrubbed))
	}
	if skip {
		for i := range grad {
			grad[i] = 0
		}
		gs.stats.AddSkippedGrad()
	}
}

// driftDue reports whether iter is a fingerprint-exchange round.
func (gs *guardState) driftDue(iter int) bool {
	return gs != nil && gs.cfg.DriftEvery > 0 && iter > 0 && iter%gs.cfg.DriftEvery == 0
}

// attachFingerprint hashes the current parameters and rides the result
// on this iteration's outgoing frame header.
func (gs *guardState) attachFingerprint(net *nn.Network, iterComp compress.Compressor) {
	f, ok := iterComp.(*guard.Framed)
	if !ok {
		return
	}
	gs.ownFP = guard.Fingerprint(net.GetParams(gs.fpFlat))
	f.SetNextFingerprint(gs.ownFP)
}

// checkDrift compares every fresh peer fingerprint against our own,
// returning true when a mismatch calls for a forced re-sync. Any
// divergence makes the fingerprint set non-uniform, and every rank
// compares the same set — so all ranks reach the same verdict and
// enter the forced sync together. Stale cached contributions carry a
// fingerprint from an older round and are excluded.
func (gs *guardState) checkDrift(msgs [][]byte, staleMask []bool) bool {
	if gs.isRoot {
		gs.stats.AddDriftCheck()
	}
	for j, m := range msgs {
		if m == nil || (staleMask != nil && staleMask[j]) {
			continue
		}
		if fp, ok := guard.PeekFingerprint(m); ok && fp != gs.ownFP {
			if gs.isRoot {
				gs.stats.AddDriftResync()
			}
			gs.tc.Instant(trace.OpDriftResync, int64(j))
			return true
		}
	}
	return false
}

// observe feeds the post-average gradient norm to the anomaly detector
// and applies the in-place part of the verdict (clipping). The caller
// acts on the returned rung: skip drops the update, rollback restores
// the retained ring. Only rank 0 counts — the decision is global.
func (gs *guardState) observe(avg []float32) guard.Action {
	if gs == nil || gs.det == nil {
		return guard.ActionNone
	}
	var sum float64
	for _, v := range avg {
		sum += float64(v) * float64(v)
	}
	action, scale := gs.det.Observe(math.Sqrt(sum))
	if gs.isRoot {
		gs.stats.SetZ(gs.det.Z())
		if action != guard.ActionNone {
			gs.stats.AddAnomaly()
		}
	}
	switch action {
	case guard.ActionClip:
		s := float32(scale)
		for i := range avg {
			avg[i] *= s
		}
		if gs.isRoot {
			gs.stats.AddClip()
		}
		gs.tc.Instant(trace.OpClip, 0)
	case guard.ActionSkip:
		if gs.isRoot {
			gs.stats.AddSkippedUpdate()
		}
		gs.tc.Instant(trace.OpSkipUpdate, 0)
	case guard.ActionRollback:
		if gs.isRoot {
			gs.stats.AddRollback()
		}
		gs.tc.Instant(trace.OpRollback, 0)
	}
	return action
}

// retain pushes a rollback state, keeping the last RetainK.
func (gs *guardState) retain(st *checkpoint.State) {
	if gs == nil || gs.det == nil {
		return
	}
	gs.ring = append(gs.ring, st)
	if len(gs.ring) > gs.cfg.RetainK {
		gs.ring = gs.ring[1:]
	}
}

// maybeRetain captures a rollback state at the deterministic retention
// cadence (every rank captures at the same iterations).
func (gs *guardState) maybeRetain(iter, epoch int, net *nn.Network, sgd *optim.SGD) {
	if gs == nil || gs.det == nil || (iter+1)%gs.cfg.RetainEvery != 0 {
		return
	}
	gs.retain(checkpoint.Capture(net, sgd, int64(epoch), int64(iter)))
}

// rollback restores the newest retained state and resets the detector
// baseline (the restored parameters produce pre-burst norms).
func (gs *guardState) rollback(net *nn.Network, sgd *optim.SGD) {
	if len(gs.ring) == 0 {
		return
	}
	_ = gs.ring[len(gs.ring)-1].Apply(net, sgd)
	gs.det.Reset()
}

package dist

import (
	"testing"
	"time"

	"fftgrad/internal/chaos"
	"fftgrad/internal/cluster"
	"fftgrad/internal/collective"
	"fftgrad/internal/compress"
	"fftgrad/internal/feedback"
	"fftgrad/internal/trace"
)

// epochsEqual asserts bitwise-equal per-epoch statistics.
func epochsEqual(t *testing.T, label string, base, got *Result) {
	t.Helper()
	if len(got.Epochs) != len(base.Epochs) {
		t.Fatalf("%s: epoch count %d vs %d", label, len(got.Epochs), len(base.Epochs))
	}
	for i := range base.Epochs {
		if got.Epochs[i].TrainLoss != base.Epochs[i].TrainLoss ||
			got.Epochs[i].TestAcc != base.Epochs[i].TestAcc {
			t.Fatalf("%s: epoch %d diverged: %+v vs %+v", label, i, got.Epochs[i], base.Epochs[i])
		}
	}
}

// TestCollectiveStrategiesBitIdentical: the hier and tree schedules move
// the same messages as the flat ring, so a BSP run under either strategy
// must be bit-identical to the ring run — the strategy changes wall time
// and wire schedule, never arithmetic.
func TestCollectiveStrategiesBitIdentical(t *testing.T) {
	mk := func(col *collective.Config) Config {
		cfg := blobCfg(81)
		cfg.NewCompressor = func() compress.Compressor {
			return feedback.New(compress.NewFFT(0.5))
		}
		cfg.Collective = col
		return cfg
	}
	base, err := Train(mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []collective.Config{
		{Strategy: collective.Hier, GroupSize: 2},
		{Strategy: collective.Hier, GroupSize: 3}, // ragged last group
		{Strategy: collective.Tree},
	} {
		col := col
		got, err := Train(mk(&col))
		if err != nil {
			t.Fatalf("%s: %v", col.Strategy, err)
		}
		epochsEqual(t, string(col.Strategy), base, got)
	}
}

// bucketedCfg is the 8-rank bucketed pipeline configuration of the
// acceptance gate: error-feedback FFT codecs per bucket, full guard
// (CRC frames + fingerprint drift checks), several buckets per
// iteration.
func bucketedCfg(seed int64) Config {
	cfg := blobCfg(seed)
	cfg.Workers = 8
	cfg.NewCompressor = func() compress.Compressor {
		return feedback.New(compress.NewFFT(0.5))
	}
	cfg.Guard = fullGuard()
	cfg.Collective = &collective.Config{BucketBytes: 1024}
	return cfg
}

// TestBucketedExchangeGate is the PR's 8-rank acceptance gate for the
// bucketed pipeline: per-bucket compressors (own CRC framing, own
// error-feedback residual slice) exchanged in flight while later
// buckets compress. The residual-accounting invariants are checked
// through the guard: every drift round's fingerprints must match (all
// ranks hold bit-identical parameters ⇒ zero forced re-syncs), and the
// traced run must be bit-identical to the untraced run.
func TestBucketedExchangeGate(t *testing.T) {
	base, err := Train(bucketedCfg(83))
	if err != nil {
		t.Fatal(err)
	}
	n := base.GradSize
	if wantB := (n + 255) / 256; wantB < 2 {
		t.Fatalf("model too small to bucket: %d params", n)
	}
	last := base.Epochs[len(base.Epochs)-1]
	if last.TestAcc < 0.9 {
		t.Fatalf("bucketed run accuracy %.3f < 0.9", last.TestAcc)
	}
	g := base.Guard
	if g == nil || g.DriftChecks == 0 {
		t.Fatalf("drift checks did not run: %+v", g)
	}
	if g.DriftResyncs != 0 {
		t.Fatalf("bucketed ranks drifted apart: %d re-syncs", g.DriftResyncs)
	}

	// Tracing must not perturb the pipeline (the overlap goroutines
	// record onto the same lock-free rank tracks).
	cfg := bucketedCfg(83)
	tr := trace.New(cfg.Workers, 512*trace.DefaultEventsPerIteration)
	cfg.Tracer = tr
	traced, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epochsEqual(t, "traced-bucketed", base, traced)

	// Per-bucket spans: every rank records OpBucket markers.
	perRank := map[int32]int{}
	for _, e := range tr.Events() {
		if e.Op == trace.OpBucket {
			perRank[e.Rank]++
		}
	}
	for rank := 0; rank < cfg.Workers; rank++ {
		if perRank[int32(rank)] == 0 {
			t.Errorf("rank %d recorded no bucket spans", rank)
		}
	}
}

// TestBucketedFaultFreeMatchesBarrier: the fault path's sequential
// bucket rounds (seq = iter·B+b) perform the same per-bucket arithmetic
// as the barrier path's overlapped pipeline, so with no chaos the two
// runs are bit-identical — overlap is scheduling, not numerics.
func TestBucketedFaultFreeMatchesBarrier(t *testing.T) {
	mk := func() Config {
		cfg := blobCfg(85)
		cfg.NewCompressor = func() compress.Compressor {
			return feedback.New(compress.NewFFT(0.5))
		}
		cfg.Collective = &collective.Config{BucketBytes: 1024}
		return cfg
	}
	base, err := Train(mk())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mk()
	cfg.Fault = &FaultConfig{Cluster: faultClusterCfg()}
	got, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epochsEqual(t, "fault-free-bucketed", base, got)
	if s := got.Fault.Cluster; s.Suspicions != 0 || s.Rejoins != 0 {
		t.Fatalf("clean bucketed run recorded faults: %+v", s)
	}
}

// TestPartitionedSparseConverges: MiCRO-style disjoint-partition
// selection on the sparse-allreduce path must converge within 2 points
// of the unpartitioned sparse run — the rotation drains every region's
// residual, so nothing is permanently dropped.
func TestPartitionedSparseConverges(t *testing.T) {
	mk := func(part bool) Config {
		cfg := blobCfg(87)
		cfg.UseSparseAllreduce = true
		cfg.SparseTheta = 0.5
		if part {
			cfg.Collective = &collective.Config{Partitioned: true}
		}
		return cfg
	}
	base, err := Train(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Train(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := base.Epochs[len(base.Epochs)-1].TestAcc
	acc := got.Epochs[len(got.Epochs)-1].TestAcc
	if acc < baseAcc-0.02 {
		t.Fatalf("partitioned sparse accuracy %.3f more than 2 points below %.3f", acc, baseAcc)
	}
	// The partitioned message is ~1/p of the full selection.
	if got.AvgMsgBytes >= base.AvgMsgBytes {
		t.Fatalf("partitioned messages not smaller: %.0f vs %.0f bytes", got.AvgMsgBytes, base.AvgMsgBytes)
	}
}

// TestHierBucketedChaosGate is the collective-smoke chaos gate: a
// 2-group hierarchical (pricing) + bucketed run under chaos, with one
// rank crashing mid-iteration — between bucket rounds — must complete,
// rejoin the crashed rank, and stay within 2 points of the fault-free
// flat-ring baseline. The unshipped bucket tail folds into the
// per-bucket error-feedback residuals, so the lost contribution re-ships
// instead of vanishing.
func TestHierBucketedChaosGate(t *testing.T) {
	base, err := Train(blobCfg(89))
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := base.Epochs[len(base.Epochs)-1].TestAcc

	cfg := blobCfg(89)
	cfg.NewCompressor = func() compress.Compressor {
		return feedback.New(compress.NewFFT(0.5))
	}
	cfg.Collective = &collective.Config{
		Strategy:    collective.Hier,
		GroupSize:   2, // 4 workers → 2 groups of 2
		BucketBytes: 1024,
	}
	cc := faultClusterCfg()
	cc.Policy = cluster.StaleReuse
	cc.OnStraggler = cluster.StragglerWait
	cfg.Fault = &FaultConfig{
		Cluster: cc,
		Chaos: &chaos.Config{
			Seed:      89,
			Drop:      0.05,
			DelayProb: 0.10,
			Delay:     10 * time.Millisecond,
			Crashes:   []chaos.CrashEvent{{Rank: 2, AtOp: 1200, RecoverAfterOps: 1000}},
		},
	}

	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := Train(cfg)
		done <- out{res, err}
	}()
	var res *Result
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("hier bucketed chaos run failed: %v", o.err)
		}
		res = o.res
	case <-time.After(4 * time.Minute):
		t.Fatal("hier bucketed chaos run deadlocked")
	}

	if res.Fault == nil || res.Fault.Chaos == nil || res.Fault.Chaos.Drops == 0 {
		t.Fatal("chaos injected nothing; gate proves nothing")
	}
	s := res.Fault.Cluster
	if s.Suspicions == 0 || s.Rejoins == 0 {
		t.Fatalf("crash+rejoin not exercised: %+v", s)
	}
	if res.Fault.LostWorkers != 0 {
		t.Fatalf("crashed rank never made it back: %+v", res.Fault)
	}
	acc := res.Epochs[len(res.Epochs)-1].TestAcc
	if acc < baseAcc-0.02 {
		t.Fatalf("accuracy under chaos %.3f more than 2 points below fault-free %.3f", acc, baseAcc)
	}
}

// TestCollectiveConfigRejected: invalid strategy and bucketed sparse
// combinations fail fast at Train.
func TestCollectiveConfigRejected(t *testing.T) {
	cfg := blobCfg(91)
	cfg.Collective = &collective.Config{Strategy: "mesh"}
	if _, err := Train(cfg); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	cfg = blobCfg(91)
	cfg.UseSparseAllreduce = true
	cfg.SparseTheta = 0.5
	cfg.Collective = &collective.Config{BucketBytes: 4096}
	if _, err := Train(cfg); err == nil {
		t.Fatal("bucketed sparse-allreduce accepted")
	}
}

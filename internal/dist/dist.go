// Package dist implements Bulk Synchronous Parallel data-parallel SGD
// with pluggable gradient compression — the training harness of the
// paper's evaluation (Sec. 4).
//
// Per iteration, every worker: computes a local sub-gradient on its data
// shard, linearizes it, compresses it, allgathers everyone's compressed
// messages (the paper uses allgather for *all* algorithms, including the
// lossless baseline, because sparse allreduce does not exist in MPI/NCCL),
// decompresses and averages all p messages, and applies an identical SGD
// update. Parameters are re-broadcast from rank 0 every SyncEvery
// iterations to eliminate floating-point drift.
//
// Compute and compression are measured on the actual CPU; communication is
// priced through a netsim fabric model at the real message sizes — the
// substitution that stands in for the paper's 8-GPU InfiniBand testbed
// (see DESIGN.md).
package dist

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"fftgrad/internal/adapt"
	"fftgrad/internal/checkpoint"
	"fftgrad/internal/collective"
	"fftgrad/internal/comm"
	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/guard"
	"fftgrad/internal/nn"
	"fftgrad/internal/obs"
	"fftgrad/internal/optim"
	"fftgrad/internal/pack"
	"fftgrad/internal/sparsify"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// Fabric prices collectives; netsim.Profile and netsim.Hierarchical both
// satisfy it.
type Fabric interface {
	// Allgather returns the seconds to allgather m bytes per rank across
	// n ranks.
	Allgather(n, m int) float64
	// Broadcast returns the seconds to broadcast m bytes to n ranks.
	Broadcast(n, m int) float64
}

// Config describes one distributed training run.
type Config struct {
	Workers       int
	Batch         int // per-worker batch size
	Epochs        int
	ItersPerEpoch int // 0 = one pass over each worker's shard
	Seed          int64

	Momentum float64 // 0 means no momentum; the paper uses 0.9
	LR       optim.LRSchedule

	// ThetaSchedule, when non-nil, drives the drop ratio of compressors
	// implementing compress.ThetaSetter at every epoch boundary.
	ThetaSchedule sparsify.Schedule

	// SyncEvery is the parameter re-broadcast period in iterations
	// (default 10, as in the paper).
	SyncEvery int

	Model func(seed int64) *nn.Network
	Train *data.Dataset
	Test  *data.Dataset

	// NewCompressor builds one compressor instance per worker.
	NewCompressor func() compress.Compressor

	// UseSparseAllreduce exchanges gradients through the sparse ring
	// allreduce (comm.SparseAllreduce) instead of allgathering compressed
	// messages — the collective the paper's conclusion calls for. In this
	// mode gradients are sparsified spatially at SparseTheta (driven by
	// ThetaSchedule when set) and NewCompressor is ignored: the collective
	// itself is the compression. Numerically this matches Top-k +
	// allgather: both average the same sparsified vectors.
	UseSparseAllreduce bool
	// SparseTheta is the drop ratio for the sparse-allreduce path.
	SparseTheta float64

	// Fabric prices communication. Nil disables the timing model.
	Fabric Fabric

	// Collective selects the exchange strategy (ring, hierarchical or
	// binomial tree), gradient bucketing with compute/comm overlap, and
	// MiCRO-style partitioned selection on the sparse path. Nil keeps the
	// flat ring exchange. On the barrier path the strategy reschedules the
	// real collectives; on the Fault path the point-to-point mesh keeps
	// per-peer delivery and the strategy prices the modeled collectives
	// only, while bucketing still splits the exchange into per-bucket
	// rounds (see DESIGN.md Sec. 12).
	Collective *collective.Config

	// Telemetry, when non-nil, receives live metrics for the run:
	// bytes-on-wire counters on the in-process transport, per-stage
	// pipeline throughput gauges (the Sec. 3.3 Tm/Tf/Tp/Ts terms), and —
	// when Adapt is set — the controller's decision gauges. A final
	// Snapshot lands in Result.Telemetry. All hot-path updates are
	// atomics; exposition is cold.
	Telemetry *telemetry.Registry

	// Adapt, when non-nil, is consulted every iteration: the controller
	// folds the live-measured stage throughputs and the effective
	// exchange rate into the Sec. 3.3 model and may bypass compression
	// to FP32 when no ratio is beneficial (re-enabling when the model
	// flips back), and may suggest θ adjustments (composing with
	// ThetaSchedule, which still runs first). Ignored when
	// UseSparseAllreduce is set — that exchange has no per-message
	// compressor to bypass.
	Adapt *adapt.Controller

	// stageTimer is the shared per-stage timer threaded into every
	// worker's compressor and the exchange loop; derived from Adapt or
	// Telemetry in Train.
	stageTimer *telemetry.StageTimer

	// MeasureAlpha additionally allgathers raw FP32 gradients each
	// iteration (excluded from timing) to measure the Assumption 3.2
	// constant α = ‖v̄−v̂̄‖/‖v̄‖ (Fig. 12).
	MeasureAlpha bool

	// SampleGradients, when > 0, stores rank-0's raw flat gradient every
	// SampleGradients iterations (for the histogram experiments).
	SampleGradients int

	// Trace records a per-iteration timing breakdown (rank 0) into
	// Result.Trace — the profile view of where an iteration goes.
	Trace bool

	// Tracer, when non-nil, records the full iteration lifecycle on
	// per-rank timeline tracks (internal/trace): compute, scrub, the
	// compressor's internal stage spans, exchange with per-peer sub-spans
	// on the cluster path, decompress, update and sync, plus cluster and
	// guard incidents as instant markers. Nil keeps tracing off with zero
	// hot-path cost — the barrier path's output is bit-identical either
	// way.
	Tracer *trace.Tracer

	// Flight, when non-nil, dumps Tracer's last-N-iteration timeline to
	// disk the moment a guard rollback, quorum loss, chaos crash window
	// or worker panic fires (see trace.FlightRecorder).
	Flight *trace.FlightRecorder

	// Profiler, when non-nil, receives one obs.IterRecord per rank per
	// iteration — the cross-rank iteration profiler (internal/obs): clock
	// alignment for merged timelines, per-iteration critical paths with
	// the straggler blame ledger, and the EWMA anomaly engine. The only
	// hot-path touch is RankCtx.Commit (zero allocations); training output
	// is bit-identical with or without it. On the Fault path the committed
	// records carry the cluster's in-exchange straggler attribution
	// (ExchangeResult.SlowestPeer/WaitNs).
	Profiler *obs.Profiler

	// CheckpointEvery, when > 0, invokes OnCheckpoint with rank-0's
	// captured state every CheckpointEvery epochs. The callback runs on
	// the worker goroutine; keep it fast or hand off.
	CheckpointEvery int
	OnCheckpoint    func(*checkpoint.State)

	// Resume, when non-nil, restores parameters and optimizer momentum on
	// every worker before training starts (kill-and-resume).
	Resume *checkpoint.State

	// Stop, when non-nil, requests a cooperative halt once closed: the
	// first rank to observe it proposes the next iteration boundary as
	// the halt point, every rank stops there in agreement (see haltCheck
	// for why the vote cannot deadlock the collectives), rank 0 captures
	// a final checkpoint into Result.Final, and Train returns with
	// Result.Halted set — not an error. This is how the job service
	// cancels and drains running jobs.
	Stop <-chan struct{}

	// OnEpoch, when non-nil, is invoked on rank 0 at every epoch
	// boundary with that epoch's statistics — the live progress stream
	// of a service job. Runs on the worker goroutine; keep it fast.
	OnEpoch func(EpochStats)

	// CaptureFinal asks rank 0 to capture the end-of-run parameter and
	// optimizer state into Result.Final even when the run completes
	// normally (a halted run always captures one).
	CaptureFinal bool

	// haltAt is the agreed halt boundary (MaxUint64 = none); allocated
	// in withDefaults when Stop is set, shared by every worker.
	haltAt *atomic.Uint64

	// Fault, when non-nil, routes the gradient exchange through the
	// failure-aware cluster runtime (internal/cluster) instead of the
	// barrier-based collectives: heartbeats, bounded retry, straggler
	// and dead-rank degradation policies, and checkpoint-based rejoin.
	// Optionally injects a deterministic chaos schedule. Mutually
	// exclusive with UseSparseAllreduce and MeasureAlpha.
	Fault *FaultConfig

	// Guard, when non-nil and enabled, activates the data-plane
	// integrity layer (internal/guard): CRC32C wire framing (rejected
	// before decompression, repaired via nack/resend under Fault),
	// pre-compress NaN/Inf scrubbing, the EWMA gradient-norm anomaly
	// detector with its clip → skip → rollback escalation, and periodic
	// cross-rank parameter-fingerprint drift detection with forced
	// re-sync. The same Config must reach every rank (it defines the
	// wire format); with healthy gradients the guards are bit-exact
	// pure overhead. Incompatible with UseSparseAllreduce.
	Guard *guard.Config

	// guardStats is the run-wide shared guard accounting; created in
	// withDefaults when Guard is enabled.
	guardStats *guard.Stats
}

// IterTrace is one iteration's timing breakdown on rank 0.
type IterTrace struct {
	Iter      int
	ComputeS  float64 // forward+backward+update (measured)
	CompressS float64 // compress+decompress (measured)
	CommS     float64 // modeled collective cost (0 without a Fabric)
	// CommMeasuredS is the measured wall time of the gradient exchange
	// itself. On the in-process transport this is barrier/copy time —
	// useful for modeled-vs-measured reconciliation, not a fabric stand-in.
	CommMeasuredS float64
	MsgBytes      int
	Theta         float64
	// Compressed is false when the adapt controller bypassed the
	// compressor and the iteration shipped raw FP32.
	Compressed bool
}

// EpochStats records per-epoch training progress.
type EpochStats struct {
	Epoch     int
	TrainLoss float64 // mean rank-0 shard loss over the epoch
	TestAcc   float64 // top-1 accuracy on the test set (rank 0)
	Theta     float64 // drop ratio in effect
	LR        float64
}

// Result aggregates a full run.
type Result struct {
	Epochs      []EpochStats
	Alpha       []float64   // per-iteration α when MeasureAlpha
	GradSamples [][]float32 // raw gradient snapshots when SampleGradients > 0
	Trace       []IterTrace // per-iteration breakdown when Config.Trace

	GradSize         int     // flat gradient length
	Iterations       int     // total iterations executed
	AvgMsgBytes      float64 // mean compressed message size
	CompressionRatio float64

	ComputeSeconds  float64 // measured forward+backward+update (rank 0)
	CompressSeconds float64 // measured compress+decompress (rank 0)
	CommSeconds     float64 // modeled via Fabric (0 if Fabric nil)
	// CommMeasuredSeconds is the summed measured wall time of the
	// gradient exchanges on rank 0 (see IterTrace.CommMeasuredS).
	CommMeasuredSeconds float64
	// BypassedIterations counts iterations the adapt controller decided
	// to ship uncompressed.
	BypassedIterations int
	// Telemetry is the end-of-run snapshot of Config.Telemetry (nil when
	// no registry was supplied).
	Telemetry telemetry.Snapshot
	// Fault is the fault-tolerance accounting of a Config.Fault run (nil
	// otherwise): retries, suspicions, degraded iterations, rejoins,
	// injected chaos counts, and permanently lost workers.
	Fault *FaultReport
	// Guard is the integrity-layer accounting of a Config.Guard run (nil
	// otherwise): corrupt frames rejected, values scrubbed, anomalies
	// and the escalation actions taken, drift checks and forced re-syncs.
	Guard *guard.Report
	// Halted reports that Config.Stop ended the run early at an agreed
	// iteration boundary.
	Halted bool
	// Final is rank-0's end-of-run checkpoint: always captured when the
	// run halted, and on normal completion when Config.CaptureFinal or
	// Config.Stop was set.
	Final *checkpoint.State
}

// ModeledWallSeconds returns the end-to-end modeled wall time: measured
// compute and compression plus modeled communication.
func (r *Result) ModeledWallSeconds() float64 {
	return r.ComputeSeconds + r.CompressSeconds + r.CommSeconds
}

// Throughput returns modeled training throughput in samples/second for
// the given per-worker batch size and worker count.
func (r *Result) Throughput(workers, batch int) float64 {
	w := r.ModeledWallSeconds()
	if w <= 0 {
		return 0
	}
	return float64(r.Iterations*workers*batch) / w
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Batch < 1 {
		cfg.Batch = 32
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	if cfg.SyncEvery < 1 {
		cfg.SyncEvery = 10
	}
	if cfg.LR == nil {
		cfg.LR = optim.ConstLR(0.01)
	}
	if cfg.NewCompressor == nil {
		cfg.NewCompressor = func() compress.Compressor { return compress.FP32{} }
	}
	if cfg.ItersPerEpoch == 0 {
		shard := cfg.Train.Len() / cfg.Workers
		cfg.ItersPerEpoch = shard / cfg.Batch
		if cfg.ItersPerEpoch < 1 {
			cfg.ItersPerEpoch = 1
		}
	}
	if cfg.Collective != nil {
		cc := cfg.Collective.WithDefaults()
		cfg.Collective = &cc
	}
	if cfg.Guard != nil {
		if cfg.Guard.Enabled() {
			g := cfg.Guard.WithDefaults()
			cfg.Guard = &g
			cfg.guardStats = &guard.Stats{}
		} else {
			cfg.Guard = nil
		}
	}
	if cfg.Stop != nil {
		cfg.haltAt = new(atomic.Uint64)
		cfg.haltAt.Store(math.MaxUint64)
	}
	return cfg
}

// haltCheck runs at the top of every iteration and reports whether the
// agreed halt boundary has been reached. The first rank to observe the
// closed Stop channel at the top of iteration i proposes halting before
// iteration i+1 (CAS-min, earliest proposal wins). This cannot deadlock
// the collectives: when a rank is at the top of iteration i, no peer can
// have passed its own top-of-loop check for iteration i+1 — exiting the
// iteration-i exchange requires every rank (including this one) to have
// entered it first — so by the time any rank loads haltAt for its
// iteration-i+1 check, the barrier's happens-before edge has published
// the proposal and all ranks stop at the same boundary. On the
// fault-aware path a straggler can lag several iterations behind the
// proposer; it stops as soon as its own check reaches the boundary, and
// the degradation policies cover the rounds in between exactly as they
// cover any other absentee.
func (c *Config) haltCheck(iter int) bool {
	if c.haltAt == nil {
		return false
	}
	if uint64(iter) >= c.haltAt.Load() {
		return true
	}
	select {
	case <-c.Stop:
		want := uint64(iter) + 1
		for {
			cur := c.haltAt.Load()
			if cur <= want || c.haltAt.CompareAndSwap(cur, want) {
				break
			}
		}
		return uint64(iter) >= c.haltAt.Load()
	default:
	}
	return false
}

// finalState captures rank-0's end-of-run checkpoint when the config
// asked for one (explicitly, or implicitly by being stoppable).
func (c *Config) finalState(res *Result, net *nn.Network, sgd *optim.SGD) {
	if !c.CaptureFinal && c.Stop == nil {
		return
	}
	done := int64(res.Iterations)
	res.Final = checkpoint.Capture(net, sgd, done/int64(c.ItersPerEpoch), done-1)
}

// Train runs BSP data-parallel training and returns rank-0's statistics.
func Train(c Config) (*Result, error) {
	if c.Model == nil || c.Train == nil {
		return nil, fmt.Errorf("dist: Model and Train dataset are required")
	}
	cfg := c.withDefaults()
	if cfg.Guard != nil && cfg.UseSparseAllreduce {
		return nil, fmt.Errorf("dist: Guard requires the compressed-message exchange; disable UseSparseAllreduce")
	}
	if cfg.Collective != nil {
		if err := cfg.Collective.Validate(); err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		if cfg.Collective.BucketBytes > 0 && cfg.UseSparseAllreduce {
			return nil, fmt.Errorf("dist: BucketBytes applies to the compressed-message exchange; disable UseSparseAllreduce")
		}
		if cfg.Collective.Strategy == collective.Gossip && cfg.Fault == nil {
			return nil, fmt.Errorf("dist: the gossip strategy is decentralized averaging over the failure-aware mesh; set Fault")
		}
	}
	if cfg.Fault != nil {
		return trainFault(cfg)
	}
	p := cfg.Workers
	cluster := comm.NewCluster(p)

	// One stage timer is shared by every worker's compressor and the
	// exchange loop; the adapt controller reads it, the registry (if any)
	// exposes it.
	if cfg.Adapt != nil {
		cfg.stageTimer = cfg.Adapt.StageTimer()
	} else if cfg.Telemetry != nil {
		cfg.stageTimer = telemetry.NewStageTimer()
	}
	if cfg.Telemetry != nil {
		cluster.Instrument(cfg.Telemetry)
		cfg.Tracer.Instrument(cfg.Telemetry)
		cfg.Profiler.Instrument(cfg.Telemetry)
		cfg.stageTimer.Register(cfg.Telemetry)
		if cfg.Adapt != nil {
			cfg.Adapt.Register(cfg.Telemetry)
		}
		if cfg.guardStats != nil {
			cfg.guardStats.Register(cfg.Telemetry)
		}
	}

	results := make([]*Result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Dump the timeline before the panic propagates: the
					// flight recording is the postmortem for exactly this.
					cfg.Flight.Trigger(rank, trace.ReasonPanic)
					panic(r)
				}
			}()
			results[rank], errs[rank] = runWorker(cfg, cluster.Rank(rank))
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if cfg.Telemetry != nil {
		results[0].Telemetry = cfg.Telemetry.Snapshot()
	}
	if cfg.guardStats != nil {
		rep := cfg.guardStats.Report()
		results[0].Guard = &rep
	}
	return results[0], nil
}

func runWorker(cfg Config, cm *comm.Comm) (*Result, error) {
	rank := cm.RankID()
	p := cm.P()
	isRoot := rank == 0

	// tc is this rank's timeline track (nil when tracing is off — every
	// record call degrades to a pointer check). The compressor's internal
	// stage timings reach the track through a sink-carrying handle of the
	// shared stage timer, so Tm/Tf/Ts/Tp spans get rank and iteration
	// attribution without the compressors knowing about tracing.
	tc := cfg.Tracer.Rank(rank)
	wst := cfg.stageTimer.WithSink(tc.StageSink())
	cm.AttachTrace(tc)
	oc := cfg.Profiler.Rank(rank)

	net := cfg.Model(cfg.Seed) // identical init on every rank
	n := net.NumParams()
	shard := cfg.Train.Shard(rank, p)
	it := data.NewIterator(shard.Len(), cfg.Batch, cfg.Seed+int64(rank)*7919)
	sgd := optim.NewSGD(cfg.LR.LR(0), cfg.Momentum, n)
	if cfg.Resume != nil {
		if err := cfg.Resume.Apply(net, sgd); err != nil {
			return nil, fmt.Errorf("dist: rank %d resume: %w", rank, err)
		}
	}
	gs := newGuardState(cfg, rank, n, tc)

	// colCfg is the (defaulted) exchange strategy; ex reschedules the
	// collectives accordingly (a nil Config is the flat ring, so every
	// pre-existing path is untouched byte for byte).
	colCfg := collective.Config{}.WithDefaults()
	if cfg.Collective != nil {
		colCfg = *cfg.Collective
	}
	ex := collective.New(cfg.Collective, cm)
	bs := newBucketState(cfg, gs, wst, tc, ex, n, p, rank)

	// The monolithic compressor; with bucketing each bucket owns its own
	// instance instead (per-bucket CRC frames and residual slices).
	var comp compress.Compressor
	if bs == nil {
		comp = gs.wrap(cfg.NewCompressor())
		compress.Instrument(comp, wst)
	}
	var pt *collective.Partitioner
	if cfg.UseSparseAllreduce && colCfg.Partitioned {
		pt = collective.NewPartitioner(p, rank, n)
	}

	grad := make([]float32, n)
	avg := make([]float32, n)
	recon := make([]float32, n)
	delta := make([]float32, n)
	rawAvg := make([]float32, n)
	loss := nn.SoftmaxCE{}

	res := &Result{GradSize: n}
	var totalMsgBytes float64
	var lossSum float64
	var lossCount int
	totalIters := cfg.Epochs * cfg.ItersPerEpoch

	fp32 := compress.FP32{}
	// wireFP32 is the FP32 codec as it appears on the wire (framed under
	// guard): the adapt bypass and the parameter sync go through it, so
	// every exchanged message shares one frame format. MeasureAlpha's
	// side-channel allgather keeps the raw fp32 — it is a measurement,
	// not part of the guarded data plane.
	wireFP32 := gs.wrap(fp32)

	// Guard bookkeeping: forceSync triggers an off-cycle parameter
	// re-broadcast (after drift or rollback); the retained ring seeds
	// with the initial state so a rollback always has a target.
	forceSync := false
	gs.retain(checkpoint.Capture(net, sgd, 0, -1))

	// Compressed messages are double-buffered across iterations: Allgather
	// returns aliases of the senders' buffers, and peers keep reading
	// iteration i's message while decompressing — but every rank must
	// finish that before it can enter Allgather(i+1) (its first barrier).
	// So by the time this rank compresses iteration i+1 into the buffer
	// last sent at i-1, no reader of that buffer remains. Two buffers,
	// rotated by iteration parity, make the steady state allocation-free.
	var msgBufs [2][]byte
	var rawBufs [2][]byte  // MeasureAlpha raw-fp32 messages, same rotation
	var alphaTmp []float32 // MeasureAlpha decode scratch (root only)
	var syncFlat []float32 // parameter re-broadcast staging
	var syncPayload []byte

	// liveRatio is the compression ratio of this rank's most recent
	// compressed message, fed to the adapt controller (which remembers it
	// across bypassed stretches so re-enablement can be judged).
	var liveRatio float64

	for iter := 0; iter < totalIters; iter++ {
		if cfg.haltCheck(iter) {
			res.Halted = true
			break
		}
		epoch := iter / cfg.ItersPerEpoch
		sgd.LR = cfg.LR.LR(epoch)
		tc.SetIter(uint64(iter))
		var tIter time.Time
		if tc != nil {
			tIter = time.Now()
		}
		var obsStart int64
		if oc != nil {
			obsStart = oc.NowNs()
		}
		theta := math.NaN()
		if cfg.ThetaSchedule != nil {
			theta = cfg.ThetaSchedule.Theta(epoch)
			if bs != nil {
				bs.setTheta(theta)
			} else if ts, ok := comp.(compress.ThetaSetter); ok {
				ts.SetTheta(theta)
			}
		}

		// --- local gradient ---------------------------------------------
		t0 := time.Now()
		x, labels := shard.Batch(it.Next())
		net.ZeroGrads()
		logits := net.Forward(x, true)
		l, dl := loss.Loss(logits, labels)
		net.Backward(dl)
		net.FlattenGrads(grad)
		if tc != nil {
			tScrub := time.Now()
			gs.scrubGrad(grad)
			tc.SpanSince(trace.OpScrub, int64(n), tScrub)
		} else {
			gs.scrubGrad(grad)
		}
		computeT := time.Since(t0)
		tc.SpanTimed(trace.OpCompute, int64(cfg.Batch), t0, computeT)
		if isRoot {
			lossSum += l
			lossCount++
			if cfg.SampleGradients > 0 && iter%cfg.SampleGradients == 0 {
				res.GradSamples = append(res.GradSamples, append([]float32(nil), grad...))
			}
		}

		// --- adaptive compression decision ---------------------------------
		// All ranks consult the controller before building any message; the
		// per-iteration decision cache guarantees they agree on the wire
		// format even though telemetry keeps moving between calls.
		iterComp := comp
		compressed := true
		if cfg.Adapt != nil && !cfg.UseSparseAllreduce {
			adTheta := theta
			if math.IsNaN(adTheta) {
				adTheta = 0 // no schedule: suppress θ suggestions
			}
			d := cfg.Adapt.DecideIter(iter, liveRatio, adTheta)
			if !d.Compress {
				iterComp = wireFP32
				compressed = false
				tc.Instant(trace.OpBypass, 0)
			} else if d.ThetaAdjusted {
				if bs != nil {
					bs.setTheta(d.Theta)
					theta = d.Theta
				} else if ts, ok := comp.(compress.ThetaSetter); ok {
					ts.SetTheta(d.Theta)
					theta = d.Theta
				}
			}
		}
		if gs.driftDue(iter) {
			if bs != nil {
				bs.attachFingerprint(net, compressed)
			} else {
				gs.attachFingerprint(net, iterComp)
			}
		}

		// --- compress + exchange + average ---------------------------------
		var compressT, decompressT time.Duration
		var exchangeS float64
		var msgBytes, maxBytes int
		var exchEndNs int64 // barrier-anchored exchange-end instant (obs)
		inv := 1 / float32(p)
		if cfg.UseSparseAllreduce {
			sparseTheta := cfg.SparseTheta
			if cfg.ThetaSchedule != nil {
				sparseTheta = theta
			}
			t0 = time.Now()
			var sp *pack.Sparse
			if pt != nil {
				// MiCRO-style: select only inside this rank's rotating
				// disjoint partition; everything outside banks in the
				// partitioner's residual until ownership rotates around.
				sp = pt.Select(grad, sparseTheta, iter)
			} else {
				work := append(grad[:0:0], grad...)
				mask := sparsify.TopKSpatial(work, sparseTheta)
				sp = pack.PackMask(work, mask)
			}
			compressT = time.Since(t0)
			tc.SpanTimed(trace.OpCompress, int64(n), t0, compressT)

			tEx := time.Now()
			reduced, moved := ex.SparseAllreduce(sp)
			exchangeD := time.Since(tEx)
			exchangeS = exchangeD.Seconds()
			tc.SpanTimed(trace.OpExchange, int64(moved), tEx, exchangeD)
			if oc != nil {
				exchEndNs = oc.NowNs()
			}

			t0 = time.Now()
			reduced.Unpack(avg)
			for i := range avg {
				avg[i] *= inv
			}
			decompressT = time.Since(t0)
			tc.SpanTimed(trace.OpDecompress, int64(n), t0, decompressT)
			// Per-rank sent volume normalized to an equivalent allgather
			// message so ratios stay comparable across exchange modes.
			msgBytes = moved / (p - 1 + boolToInt(p == 1))
			maxBytes = msgBytes
		} else if bs != nil {
			if err := bs.exchange(iter, grad, avg, recon, compressed); err != nil {
				return nil, fmt.Errorf("dist: rank %d: %w", rank, err)
			}
			// The bucketed pipeline interleaves exchange and decompress;
			// the instant after the last bucket's round stands in for the
			// barrier anchor.
			if oc != nil {
				exchEndNs = oc.NowNs()
			}
			compressT, decompressT = bs.compressT, bs.decompressT
			exchangeS = bs.exchangeS
			msgBytes, maxBytes = bs.msgBytes, bs.maxBytes
			if compressed && msgBytes > 0 {
				liveRatio = float64(4*n) / float64(msgBytes)
			}
			if bs.driftHit {
				forceSync = true
			}
		} else {
			t0 = time.Now()
			msg, err := compress.AppendCompress(iterComp, msgBufs[iter&1][:0], grad)
			if err != nil {
				return nil, fmt.Errorf("dist: rank %d compress: %w", rank, err)
			}
			msgBufs[iter&1] = msg
			compressT = time.Since(t0)
			msgBytes = len(msg)
			tc.SpanTimed(trace.OpCompress, int64(msgBytes), t0, compressT)
			if compressed && msgBytes > 0 {
				liveRatio = float64(4*n) / float64(msgBytes)
			}

			tEx := time.Now()
			msgs := ex.Allgather(msg)
			exchangeD := time.Since(tEx)
			exchangeS = exchangeD.Seconds()
			tc.SpanTimed(trace.OpExchange, int64(msgBytes), tEx, exchangeD)
			if oc != nil {
				exchEndNs = oc.NowNs()
			}
			for _, m := range msgs {
				if len(m) > maxBytes {
					maxBytes = len(m)
				}
			}

			t0 = time.Now()
			for i := range avg {
				avg[i] = 0
			}
			for _, m := range msgs {
				if err := compress.DecompressInto(iterComp, recon, m); err != nil {
					return nil, fmt.Errorf("dist: rank %d decompress: %w", rank, err)
				}
				for i, v := range recon {
					avg[i] += v
				}
			}
			for i := range avg {
				avg[i] *= inv
			}
			decompressT = time.Since(t0)
			tc.SpanTimed(trace.OpDecompress, int64(p), t0, decompressT)
			if gs.driftDue(iter) && gs.checkDrift(msgs, nil) {
				forceSync = true
			}
		}

		// --- exchange-rate observation (the live Tcomm of Eq. 2) -----------
		// With a Fabric, the modeled collective time prices the exchange (the
		// in-process barrier wall time is not a fabric); without one, the
		// measured wall time is the real thing (TCP or actual deployment).
		// The bucketed pipeline observed per bucket already.
		if st := cfg.stageTimer; st != nil && msgBytes > 0 && bs == nil {
			if cfg.Fabric != nil {
				if isRoot {
					st.ObserveStage(telemetry.StageComm, maxBytes, colCfg.ModelAllgather(cfg.Fabric, p, maxBytes))
				}
			} else {
				st.ObserveStage(telemetry.StageComm, msgBytes, exchangeS)
			}
		}

		// --- α measurement (off the timed path) ---------------------------
		if cfg.MeasureAlpha {
			rawMsg, err := fp32.AppendCompress(rawBufs[iter&1][:0], grad)
			if err != nil {
				return nil, err
			}
			rawBufs[iter&1] = rawMsg
			raws := cm.Allgather(rawMsg)
			if isRoot {
				for i := range rawAvg {
					rawAvg[i] = 0
				}
				if alphaTmp == nil {
					alphaTmp = make([]float32, n)
				}
				for _, m := range raws {
					if err := fp32.DecompressInto(alphaTmp, m); err != nil {
						return nil, err
					}
					for i, v := range alphaTmp {
						rawAvg[i] += v
					}
				}
				for i := range rawAvg {
					rawAvg[i] *= inv
				}
				var num, den float64
				for i := range rawAvg {
					d := float64(rawAvg[i] - avg[i])
					num += d * d
					den += float64(rawAvg[i]) * float64(rawAvg[i])
				}
				alpha := 0.0
				if den > 0 {
					alpha = math.Sqrt(num / den)
				}
				res.Alpha = append(res.Alpha, alpha)
			} else {
				cm.Barrier()
			}
			if isRoot {
				cm.Barrier()
			}
		}

		// --- numerical health + update -------------------------------------
		// The detector sees the post-average norm (identical on every
		// rank), so all ranks take the same escalation rung in lockstep.
		t0 = time.Now()
		switch gs.observe(avg) {
		case guard.ActionRollback:
			gs.rollback(net, sgd)
			forceSync = true
			if isRoot {
				// The decision is global and identical on every rank; one
				// dump (root's) captures all tracks.
				cfg.Flight.Trigger(rank, trace.ReasonRollback)
			}
		case guard.ActionSkip:
			// Poisoned round: no update.
		default:
			sgd.Delta(delta, avg)
			net.AddToParams(delta)
		}
		updateT := time.Since(t0)
		tc.SpanTimed(trace.OpUpdate, int64(n), t0, updateT)

		// --- periodic parameter re-broadcast -------------------------------
		var syncBytes int
		var syncD time.Duration
		if (iter+1)%cfg.SyncEvery == 0 || forceSync {
			var tSync time.Time
			if tc != nil || oc != nil {
				tSync = time.Now()
			}
			if syncFlat == nil {
				syncFlat = make([]float32, n)
			}
			var payload []byte
			if isRoot {
				// Reusing the payload buffer across syncs is safe: every
				// non-root finishes decoding it before entering the next
				// collective's barrier, at least one of which separates
				// consecutive syncs.
				flat := net.GetParams(syncFlat)
				var err error
				payload, err = compress.AppendCompress(wireFP32, syncPayload[:0], flat)
				if err != nil {
					return nil, err
				}
				syncPayload = payload
			}
			got := ex.Broadcast(payload, 0)
			if !isRoot {
				if err := compress.DecompressInto(wireFP32, syncFlat, got); err != nil {
					return nil, err
				}
				net.SetParams(syncFlat)
			}
			syncBytes = n * 4
			forceSync = false
			tc.SpanSince(trace.OpSync, int64(syncBytes), tSync)
			if oc != nil {
				syncD = time.Since(tSync)
			}
		}
		gs.maybeRetain(iter, epoch, net, sgd)
		tc.SpanSince(trace.OpIteration, int64(msgBytes), tIter)
		if oc != nil {
			oc.Commit(obs.IterRecord{
				Iter:         int64(iter),
				StartNs:      obsStart,
				ExchEndNs:    exchEndNs,
				EndNs:        oc.NowNs(),
				ComputeNs:    computeT.Nanoseconds(),
				CompressNs:   compressT.Nanoseconds(),
				ExchangeNs:   int64(exchangeS * 1e9),
				DecompressNs: decompressT.Nanoseconds(),
				UpdateNs:     updateT.Nanoseconds(),
				SyncNs:       syncD.Nanoseconds(),
				MsgBytes:     int64(msgBytes),
				BlamePeer:    -1, // barrier path: skew reconstructed in obs
			})
		}

		// --- bookkeeping (rank 0) ------------------------------------------
		if isRoot {
			res.Iterations++
			totalMsgBytes += float64(msgBytes)
			res.ComputeSeconds += computeT.Seconds() + updateT.Seconds()
			res.CompressSeconds += compressT.Seconds() + decompressT.Seconds()
			res.CommMeasuredSeconds += exchangeS
			if !compressed {
				res.BypassedIterations++
			}
			var commS float64
			if cfg.Fabric != nil {
				if bs != nil {
					commS = bs.modelComm()
				} else {
					commS = colCfg.ModelAllgather(cfg.Fabric, p, maxBytes)
				}
				if syncBytes > 0 {
					commS += colCfg.ModelBroadcast(cfg.Fabric, p, syncBytes)
				}
				res.CommSeconds += commS
			}
			if cfg.Trace {
				res.Trace = append(res.Trace, IterTrace{
					Iter:          iter,
					ComputeS:      computeT.Seconds() + updateT.Seconds(),
					CompressS:     compressT.Seconds() + decompressT.Seconds(),
					CommS:         commS,
					CommMeasuredS: exchangeS,
					MsgBytes:      msgBytes,
					Theta:         theta,
					Compressed:    compressed,
				})
			}
		}

		// --- epoch boundary -------------------------------------------------
		if (iter+1)%cfg.ItersPerEpoch == 0 && isRoot {
			stats := EpochStats{
				Epoch:     epoch,
				TrainLoss: lossSum / float64(lossCount),
				LR:        sgd.LR,
				Theta:     theta,
			}
			lossSum, lossCount = 0, 0
			if cfg.Test != nil {
				stats.TestAcc = evaluate(net, cfg.Test, cfg.Batch)
			}
			res.Epochs = append(res.Epochs, stats)
			if cfg.OnEpoch != nil {
				cfg.OnEpoch(stats)
			}
			if cfg.CheckpointEvery > 0 && cfg.OnCheckpoint != nil && (epoch+1)%cfg.CheckpointEvery == 0 {
				cfg.OnCheckpoint(checkpoint.Capture(net, sgd, int64(epoch), int64(iter)))
			}
		}
	}

	if isRoot && res.Iterations > 0 {
		res.AvgMsgBytes = totalMsgBytes / float64(res.Iterations)
		res.CompressionRatio = float64(n*4) / res.AvgMsgBytes
	}
	if isRoot {
		cfg.finalState(res, net, sgd)
	}
	return res, nil
}

// boolToInt avoids a divide-by-zero in the single-worker volume
// normalization (moved is 0 there anyway).
func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// evaluate computes top-1 accuracy over the full test set in eval mode.
func evaluate(net *nn.Network, test *data.Dataset, batch int) float64 {
	correct := 0.0
	total := 0
	idx := make([]int, 0, batch)
	for s := 0; s < test.Len(); s += batch {
		idx = idx[:0]
		for j := s; j < s+batch && j < test.Len(); j++ {
			idx = append(idx, j)
		}
		x, labels := test.Batch(idx)
		logits := net.Forward(x, false)
		correct += nn.Accuracy(logits, labels) * float64(len(idx))
		total += len(idx)
	}
	if total == 0 {
		return 0
	}
	return correct / float64(total)
}

package dist

import (
	"errors"
	"testing"
	"time"

	"fftgrad/internal/chaos"
	"fftgrad/internal/cluster"
	"fftgrad/internal/comm"
	"fftgrad/internal/compress"
	"fftgrad/internal/feedback"
	"fftgrad/internal/telemetry"
)

// faultClusterCfg is a test-speed cluster configuration: tight
// heartbeats and backoffs so failure detection fits in CI seconds.
func faultClusterCfg() cluster.Config {
	return cluster.Config{
		Heartbeat:    time.Millisecond,
		SuspectAfter: 150 * time.Millisecond,
		BackoffBase:  2 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		MaxRetries:   8,
		MaxStall:     30 * time.Second,
		RejoinWait:   20 * time.Second,
	}
}

// TestFaultFreeMatchesBarrierExactly: with no chaos and no failures the
// failure-aware exchange is just a different transport for the same
// arithmetic — the run must be bit-identical to the barrier-based path.
func TestFaultFreeMatchesBarrierExactly(t *testing.T) {
	base, err := Train(blobCfg(21))
	if err != nil {
		t.Fatal(err)
	}
	cfg := blobCfg(21)
	cfg.Fault = &FaultConfig{Cluster: faultClusterCfg()}
	got, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Epochs) != len(base.Epochs) {
		t.Fatalf("epoch count %d vs %d", len(got.Epochs), len(base.Epochs))
	}
	for i := range base.Epochs {
		if got.Epochs[i].TrainLoss != base.Epochs[i].TrainLoss ||
			got.Epochs[i].TestAcc != base.Epochs[i].TestAcc {
			t.Fatalf("epoch %d diverged: fault %+v vs barrier %+v", i, got.Epochs[i], base.Epochs[i])
		}
	}
	if got.Fault == nil {
		t.Fatal("fault report missing")
	}
	if s := got.Fault.Cluster; s.Suspicions != 0 || s.DegradedIterations != 0 || s.Rejoins != 0 {
		t.Fatalf("clean run recorded faults: %+v", s)
	}
}

// TestChaosGate is the PR's acceptance gate: a 4-worker run under 5%
// drop, delays, and one crash+recovery must complete without deadlock,
// the crashed rank must rejoin, and final accuracy must stay within 2
// points of the fault-free run.
func TestChaosGate(t *testing.T) {
	base, err := Train(blobCfg(31))
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := base.Epochs[len(base.Epochs)-1].TestAcc

	cfg := blobCfg(31)
	cc := faultClusterCfg()
	cc.Policy = cluster.StaleReuse
	cc.OnStraggler = cluster.StragglerWait
	cfg.Fault = &FaultConfig{
		Cluster: cc,
		Chaos: &chaos.Config{
			Seed:      31,
			Drop:      0.05,
			DelayProb: 0.10,
			Delay:     10 * time.Millisecond,
			// Rank 2 crashes mid-run (op-indexed: heartbeats + data traffic
			// burn ~1k ops/s) and recovers, forcing an eviction + rejoin.
			Crashes: []chaos.CrashEvent{{Rank: 2, AtOp: 1200, RecoverAfterOps: 1000}},
		},
	}
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg

	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := Train(cfg)
		done <- out{res, err}
	}()
	var res *Result
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("chaos run failed: %v", o.err)
		}
		res = o.res
	case <-time.After(4 * time.Minute):
		t.Fatal("chaos run deadlocked")
	}

	if res.Fault == nil || res.Fault.Chaos == nil {
		t.Fatal("fault/chaos report missing")
	}
	if res.Fault.Chaos.Drops == 0 {
		t.Fatal("chaos injected nothing; gate proves nothing")
	}
	acc := res.Epochs[len(res.Epochs)-1].TestAcc
	if acc < baseAcc-0.02 {
		t.Fatalf("accuracy under chaos %.3f more than 2 points below fault-free %.3f", acc, baseAcc)
	}
	// The crash is long enough that rank 2 must have been suspected and
	// must have come back.
	s := res.Fault.Cluster
	if s.Suspicions == 0 || s.Rejoins == 0 {
		t.Fatalf("crash+rejoin not exercised: %+v", s)
	}
	if res.Fault.LostWorkers != 0 {
		t.Fatalf("rank 2 never made it back: %+v", res.Fault)
	}
	// Telemetry carries the cluster counters.
	if v := res.Telemetry["fftgrad_cluster_suspicions_total"]; v <= 0 {
		t.Fatalf("fftgrad_cluster_suspicions_total = %g in telemetry snapshot", v)
	}
}

// TestFaultPartitionFailsFast: an unrecoverable 2-2 partition must
// surface a typed error in bounded time — never hang, never silently
// return a half-trained model as success.
func TestFaultPartitionFailsFast(t *testing.T) {
	cfg := blobCfg(41)
	cc := faultClusterCfg()
	cc.Policy = cluster.DropRescale // quorum guard must fire regardless of policy
	cc.SuspectAfter = 80 * time.Millisecond
	cc.MaxRetries = 3
	cc.MaxStall = 5 * time.Second
	cc.RejoinWait = time.Second
	cc.MaxRejoins = 2
	cfg.Fault = &FaultConfig{
		Cluster: cc,
		Chaos: &chaos.Config{
			Seed:      41,
			Partition: &chaos.Partition{Ranks: []int{2, 3}, FromOp: 0, Ops: 0},
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := Train(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("partitioned run reported success")
		}
		if !errors.Is(err, cluster.ErrNoQuorum) && !errors.Is(err, cluster.ErrEvicted) &&
			!errors.Is(err, cluster.ErrStalled) && !errors.Is(err, cluster.ErrRejoinTimeout) {
			t.Fatalf("partition error not typed: %v", err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("partitioned run hung instead of failing fast")
	}
}

// TestFaultConfigExclusions: the unsupported combinations error out
// immediately instead of half-working.
func TestFaultConfigExclusions(t *testing.T) {
	cfg := blobCfg(5)
	cfg.Fault = &FaultConfig{}
	cfg.UseSparseAllreduce = true
	if _, err := Train(cfg); err == nil {
		t.Fatal("Fault+UseSparseAllreduce accepted")
	}
	cfg = blobCfg(5)
	cfg.Fault = &FaultConfig{}
	cfg.MeasureAlpha = true
	if _, err := Train(cfg); err == nil {
		t.Fatal("Fault+MeasureAlpha accepted")
	}
}

// TestChaosScheduleProperty is the convergence-or-typed-error property:
// for any seeded drop/delay/dup schedule (no crashes, no partitions),
// the run either completes having repaired every fault losslessly —
// bit-identical epochs to the fault-free run — or completes degraded
// with non-zero fault accounting, or fails with a typed error. It never
// silently diverges and never deadlocks.
func TestChaosScheduleProperty(t *testing.T) {
	mk := func(seed int64) Config {
		cfg := blobCfg(7) // same training seed every time: comparable runs
		cfg.Epochs = 1
		cfg.ItersPerEpoch = 12
		cfg.Workers = 3
		cfg.NewCompressor = func() compress.Compressor {
			return feedback.New(compress.NewFFT(0.5))
		}
		cc := faultClusterCfg()
		cc.Seed = seed
		cfg.Fault = &FaultConfig{Cluster: cc}
		if seed != 0 {
			cfg.Fault.Chaos = &chaos.Config{
				Seed:      seed,
				Drop:      0.10,
				DelayProb: 0.20,
				Delay:     2 * time.Millisecond,
				Dup:       0.10,
			}
		}
		return cfg
	}

	clean, err := Train(mk(0))
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}

	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		type out struct {
			res *Result
			err error
		}
		done := make(chan out, 1)
		go func() {
			res, err := Train(mk(seed))
			done <- out{res, err}
		}()
		select {
		case o := <-done:
			if o.err != nil {
				// Failure is allowed, but only typed.
				if !errors.Is(o.err, cluster.ErrNoQuorum) && !errors.Is(o.err, cluster.ErrPeerFailed) &&
					!errors.Is(o.err, cluster.ErrStalled) && !errors.Is(o.err, cluster.ErrEvicted) &&
					!errors.Is(o.err, cluster.ErrRejoinTimeout) && !errors.Is(o.err, comm.ErrTimeout) {
					t.Fatalf("seed %d: untyped error: %v", seed, o.err)
				}
				continue
			}
			s := o.res.Fault.Cluster
			identical := true
			for i := range clean.Epochs {
				if o.res.Epochs[i].TrainLoss != clean.Epochs[i].TrainLoss ||
					o.res.Epochs[i].TestAcc != clean.Epochs[i].TestAcc {
					identical = false
				}
			}
			if s.Suspicions == 0 && s.DegradedIterations == 0 && s.SkippedSyncs == 0 {
				// Every fault was repaired losslessly: the result must be
				// bit-identical to the fault-free run.
				if !identical {
					t.Fatalf("seed %d: silent divergence — no faults recorded but epochs differ: %+v vs %+v",
						seed, o.res.Epochs, clean.Epochs)
				}
			} else if identical {
				// Degradation that happens to land on the same floats is
				// fine; nothing to assert.
				_ = identical
			}
		case <-time.After(3 * time.Minute):
			t.Fatalf("seed %d: run deadlocked", seed)
		}
	}
}

package dist

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fftgrad/internal/chaos"
	"fftgrad/internal/cluster"
	"fftgrad/internal/compress"
	"fftgrad/internal/feedback"
	"fftgrad/internal/guard"
	"fftgrad/internal/nn"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/tensor"
)

// fullGuard returns every guard mechanism switched on.
func fullGuard() *guard.Config {
	return &guard.Config{
		CRC:        true,
		Scrub:      guard.ScrubClamp,
		Detect:     true,
		DriftEvery: 8,
	}
}

// TestGuardOffIsBitIdentical is the zero-interference property: on
// healthy gradients a run with every guard enabled — CRC framing,
// clamp scrub, anomaly detector, drift checks — must be bit-identical
// to the same run with guard off. The guards may only ever act on
// faults, never on clean training.
func TestGuardOffIsBitIdentical(t *testing.T) {
	mk := func(g *guard.Config) Config {
		cfg := blobCfg(61)
		cfg.NewCompressor = func() compress.Compressor {
			return feedback.New(compress.NewFFT(0.5))
		}
		cfg.Guard = g
		return cfg
	}
	base, err := Train(mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Train(mk(fullGuard()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Epochs {
		if got.Epochs[i].TrainLoss != base.Epochs[i].TrainLoss ||
			got.Epochs[i].TestAcc != base.Epochs[i].TestAcc {
			t.Fatalf("epoch %d diverged under guard: %+v vs %+v", i, got.Epochs[i], base.Epochs[i])
		}
	}
	g := got.Guard
	if g == nil {
		t.Fatal("guard report missing")
	}
	if g.DriftChecks == 0 {
		t.Fatal("drift checks never ran")
	}
	if g.ScrubbedValues != 0 || g.Anomalies != 0 || g.DriftResyncs != 0 || g.CorruptFrames != 0 {
		t.Fatalf("guard intervened on a healthy run: %+v", g)
	}
}

// TestGuardFaultPathBitIdentical is the same property through the
// failure-aware runtime (frames ride the cluster transport and the
// receiver-side Verify hook is live).
func TestGuardFaultPathBitIdentical(t *testing.T) {
	mk := func(g *guard.Config) Config {
		cfg := blobCfg(62)
		cfg.Fault = &FaultConfig{Cluster: faultClusterCfg()}
		cfg.Guard = g
		return cfg
	}
	base, err := Train(mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Train(mk(fullGuard()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Epochs {
		if got.Epochs[i].TrainLoss != base.Epochs[i].TrainLoss ||
			got.Epochs[i].TestAcc != base.Epochs[i].TestAcc {
			t.Fatalf("epoch %d diverged under guard: %+v vs %+v", i, got.Epochs[i], base.Epochs[i])
		}
	}
	if g := got.Guard; g == nil || g.Anomalies != 0 || g.CorruptFrames != 0 || g.DriftResyncs != 0 {
		t.Fatalf("guard intervened on a healthy fault-path run: %+v", got.Guard)
	}
}

// TestGuardCorruptionGate is the PR's acceptance gate: under seeded
// single-bit wire corruption every corrupt frame must be caught by the
// CRC before decompression and repaired by the nack/resend path — so
// the run completes, counts its rejections, shows zero parameter
// drift, and converges within 2 points of the fault-free run.
func TestGuardCorruptionGate(t *testing.T) {
	base, err := Train(blobCfg(71))
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := base.Epochs[len(base.Epochs)-1].TestAcc

	cfg := blobCfg(71)
	cc := faultClusterCfg()
	cc.Policy = cluster.StaleReuse
	cfg.Fault = &FaultConfig{
		Cluster: cc,
		Chaos:   &chaos.Config{Seed: 71, Corrupt: 0.05},
	}
	cfg.Guard = fullGuard()
	cfg.Telemetry = telemetry.NewRegistry()

	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := Train(cfg)
		done <- out{res, err}
	}()
	var res *Result
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("corrupted run failed: %v", o.err)
		}
		res = o.res
	case <-time.After(4 * time.Minute):
		t.Fatal("corrupted run deadlocked")
	}

	if res.Fault == nil || res.Fault.Chaos == nil || res.Guard == nil {
		t.Fatal("fault/chaos/guard report missing")
	}
	if res.Fault.Chaos.Corruptions == 0 {
		t.Fatal("chaos corrupted nothing; gate proves nothing")
	}
	g := res.Guard
	if g.CorruptFrames == 0 {
		t.Fatalf("no corrupt frames rejected despite %d injected corruptions", res.Fault.Chaos.Corruptions)
	}
	if g.CorruptFrames > res.Fault.Chaos.Corruptions {
		t.Fatalf("rejected %d frames but only %d were corrupted", g.CorruptFrames, res.Fault.Chaos.Corruptions)
	}
	// Zero garbage gradients applied: every repair was lossless, so the
	// replicas never drifted and the fingerprint checks all matched.
	if g.DriftChecks == 0 || g.DriftResyncs != 0 {
		t.Fatalf("drift accounting off: %d checks, %d resyncs", g.DriftChecks, g.DriftResyncs)
	}
	acc := res.Epochs[len(res.Epochs)-1].TestAcc
	if acc < baseAcc-0.02 {
		t.Fatalf("accuracy under corruption %.3f more than 2 points below fault-free %.3f", acc, baseAcc)
	}
	if v := res.Telemetry["fftgrad_guard_corrupt_frames"]; v <= 0 {
		t.Fatalf("fftgrad_guard_corrupt_frames = %g in telemetry snapshot", v)
	}
}

// burstInjector wraps a compressor and multiplies every reconstructed
// gradient by scale during iterations [from, to) — garbage that gets
// past compression (it is finite, so the pre-compress scrub cannot see
// it) and must be caught by the post-average norm detector. Each rank
// decodes p messages per iteration in lockstep, so a per-instance call
// counter recovers the iteration index and every rank injects
// identically.
type burstInjector struct {
	inner    compress.Compressor
	p        int
	from, to int
	scale    float32
	calls    int
}

func (b *burstInjector) Name() string { return "burst" }
func (b *burstInjector) Compress(g []float32) ([]byte, error) {
	return b.inner.Compress(g)
}
func (b *burstInjector) Decompress(dst []float32, msg []byte) error {
	if err := b.inner.Decompress(dst, msg); err != nil {
		return err
	}
	iter := b.calls / b.p
	b.calls++
	if iter >= b.from && iter < b.to {
		for i := range dst {
			dst[i] *= b.scale
		}
	}
	return nil
}

// TestGuardEscalationLadder forces a sustained burst of amplified
// gradients through the exchange and checks the detector walks the full
// clip → skip-update → rollback ladder — and that the run still
// completes afterwards.
func TestGuardEscalationLadder(t *testing.T) {
	cfg := blobCfg(81)
	cfg.NewCompressor = func() compress.Compressor {
		return &burstInjector{inner: compress.FP32{}, p: cfg.Workers, from: 40, to: 52, scale: 1e8}
	}
	cfg.Guard = &guard.Config{
		CRC:       true,
		Scrub:     guard.ScrubClamp,
		Detect:    true,
		SkipAfter: 2, RollbackAfter: 4,
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatalf("run with injected burst failed: %v", err)
	}
	g := res.Guard
	if g == nil {
		t.Fatal("guard report missing")
	}
	if g.Clips == 0 || g.SkippedUpdates == 0 || g.Rollbacks == 0 {
		t.Fatalf("escalation ladder incomplete: %d clips, %d skips, %d rollbacks", g.Clips, g.SkippedUpdates, g.Rollbacks)
	}
	if g.Anomalies != g.Clips+g.SkippedUpdates+g.Rollbacks {
		t.Fatalf("anomaly accounting inconsistent: %+v", g)
	}
	if len(res.Epochs) != cfg.Epochs {
		t.Fatalf("run did not complete all epochs: %d of %d", len(res.Epochs), cfg.Epochs)
	}
}

// nanBackward is a parameter-free layer that injects a NaN into the
// backward delta on a fixed cadence — so a real Dense layer's weight
// gradient goes non-finite, exactly like an intermittent numerical
// blow-up in the backward pass. Forward is the identity.
type nanBackward struct{ every, calls int }

func (l *nanBackward) Name() string                                    { return "nan-backward" }
func (l *nanBackward) Params() []*nn.Param                             { return nil }
func (l *nanBackward) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor { return x }
func (l *nanBackward) Backward(dy *tensor.Tensor) *tensor.Tensor {
	l.calls++
	if l.calls%l.every == 0 {
		dy.Data[0] = float32(math.NaN())
	}
	return dy
}

// TestGuardScrubSkipRunCompletes runs a model whose backward pass
// intermittently produces NaN gradients. Under ScrubSkip the poisoned
// gradients are withheld (the rank ships zeros, keeping the collective
// in lockstep), no NaN ever reaches the wire or the parameters, and
// the run completes with a finite model.
func TestGuardScrubSkipRunCompletes(t *testing.T) {
	cfg := blobCfg(91)
	cfg.Model = func(s int64) *nn.Network {
		r := rand.New(rand.NewSource(s))
		return nn.Sequential(
			nn.NewDense(16, 32, r),
			&nanBackward{every: 3},
			nn.NewReLU(),
			nn.NewDense(32, 4, r),
		)
	}
	cfg.Guard = &guard.Config{CRC: true, Scrub: guard.ScrubSkip, Detect: true}
	res, err := Train(cfg)
	if err != nil {
		t.Fatalf("run with NaN samples failed: %v", err)
	}
	g := res.Guard
	if g == nil || g.ScrubbedValues == 0 || g.SkippedGradients == 0 {
		t.Fatalf("scrub-skip never fired: %+v", g)
	}
	if len(res.Epochs) != cfg.Epochs {
		t.Fatalf("run did not complete: %d epochs", len(res.Epochs))
	}
	for _, ep := range res.Epochs {
		if math.IsNaN(ep.TrainLoss) || math.IsNaN(ep.TestAcc) {
			t.Fatalf("NaN leaked into training despite scrub-skip: %+v", ep)
		}
	}
}

// TestGuardRejectsSparseAllreduce: the unsupported combination errors
// immediately.
func TestGuardRejectsSparseAllreduce(t *testing.T) {
	cfg := blobCfg(5)
	cfg.Guard = fullGuard()
	cfg.UseSparseAllreduce = true
	cfg.SparseTheta = 0.9
	if _, err := Train(cfg); err == nil {
		t.Fatal("Guard+UseSparseAllreduce accepted")
	}
}

package dist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fftgrad/internal/chaos"
	"fftgrad/internal/cluster"
	"fftgrad/internal/guard"
	"fftgrad/internal/trace"
)

// TestTraceBitIdentical is the tracing acceptance gate for the barrier
// path: recording a full per-iteration timeline must not perturb
// training arithmetic in any way — the traced run's losses and
// accuracies are bitwise equal to the untraced run's.
func TestTraceBitIdentical(t *testing.T) {
	base, err := Train(blobCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := blobCfg(7)
	tr := trace.New(cfg.Workers, 512*trace.DefaultEventsPerIteration)
	cfg.Tracer = tr
	got, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Epochs) != len(base.Epochs) {
		t.Fatalf("epoch count %d vs %d", len(got.Epochs), len(base.Epochs))
	}
	for i := range base.Epochs {
		if got.Epochs[i].TrainLoss != base.Epochs[i].TrainLoss ||
			got.Epochs[i].TestAcc != base.Epochs[i].TestAcc {
			t.Fatalf("epoch %d diverged under tracing: %+v vs %+v", i, got.Epochs[i], base.Epochs[i])
		}
	}
	// Every rank must have produced iteration spans with stage children.
	perRank := make(map[int32]map[trace.Op]int)
	for _, e := range tr.Events() {
		if perRank[e.Rank] == nil {
			perRank[e.Rank] = map[trace.Op]int{}
		}
		perRank[e.Rank][e.Op]++
	}
	for rank := 0; rank < cfg.Workers; rank++ {
		ops := perRank[int32(rank)]
		for _, op := range []trace.Op{trace.OpIteration, trace.OpCompute, trace.OpCompress, trace.OpExchange, trace.OpUpdate} {
			if ops[op] == 0 {
				t.Errorf("rank %d recorded no %s spans", rank, op)
			}
		}
	}
}

// TestFlightRecorderChaosDump is the flight-recorder acceptance gate: a
// seeded chaos run (crash + corruption, guard on) must auto-dump a
// trace_event timeline that parses, carries spans from every rank, and
// contains the incident instants that triggered it.
func TestFlightRecorderChaosDump(t *testing.T) {
	cfg := blobCfg(31)
	cc := faultClusterCfg()
	cc.Policy = cluster.StaleReuse
	cc.OnStraggler = cluster.StragglerWait
	cfg.Fault = &FaultConfig{
		Cluster: cc,
		Chaos: &chaos.Config{
			Seed:      31,
			Drop:      0.05,
			DelayProb: 0.10,
			Delay:     10 * time.Millisecond,
			Corrupt:   0.02,
			Crashes:   []chaos.CrashEvent{{Rank: 2, AtOp: 1200, RecoverAfterOps: 1000}},
		},
	}
	cfg.Guard = &guard.Config{CRC: true, Scrub: guard.ScrubClamp}
	tr := trace.New(cfg.Workers, 512*trace.DefaultEventsPerIteration)
	cfg.Tracer = tr
	path := filepath.Join(t.TempDir(), "flight.json")
	cfg.Flight = trace.NewFlightRecorder(tr, path)

	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := Train(cfg)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("chaos run failed: %v", o.err)
		}
	case <-time.After(4 * time.Minute):
		t.Fatal("chaos run deadlocked")
	}

	if cfg.Flight.Dumps() == 0 {
		t.Fatal("no flight dump fired despite crash + corruption chaos")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight dump missing: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("flight dump is not valid trace_event JSON: %v", err)
	}
	spanRanks := map[float64]bool{}
	names := map[string]int{}
	for _, e := range events {
		switch e["ph"] {
		case "X":
			spanRanks[e["tid"].(float64)] = true
		case "i":
			names[e["name"].(string)]++
		}
	}
	for rank := 0; rank < cfg.Workers; rank++ {
		if !spanRanks[float64(rank)] {
			t.Errorf("flight dump has no spans from rank %d", rank)
		}
	}
	// The dump must contain its own cause and the incident markers the
	// chaos schedule guarantees: a crash-window edge on rank 2 and the
	// flight trigger itself.
	for _, want := range []string{"flight_trigger", "crash"} {
		if names[want] == 0 {
			t.Errorf("flight dump missing %q instant (instants seen: %v)", want, names)
		}
	}
}

// Package buildinfo resolves the binary's build identity — the module
// version (or VCS revision) and the Go toolchain — once, so every
// observability surface stamps the same answer: the
// fftgrad_build_info{version,go} gauge, the Perfetto export metadata,
// flight-recorder dumps, and the profiler's JSON profiles. When a
// timeline from one box is compared against metrics from another, the
// stamps say immediately whether the two artifacts came from the same
// build.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"fftgrad/internal/telemetry"
)

var (
	once    sync.Once
	version string
)

// Version returns the build's version string: the main module version
// when the binary was built from a tagged module, else the VCS revision
// (12-hex prefix, "+dirty" when the tree was modified), else "dev".
func Version() string {
	once.Do(func() {
		version = resolve()
	})
	return version
}

func resolve() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// GoVersion returns the toolchain that built the binary (runtime.Version).
func GoVersion() string { return runtime.Version() }

// Register exposes the standard build-info gauge on reg:
//
//	fftgrad_build_info{version="<rev>",go="<toolchain>"} 1
//
// — the Prometheus convention of a constant-1 gauge whose labels carry
// the identity, so dashboards join any other series against the build
// that produced it.
func Register(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	name := fmt.Sprintf(`fftgrad_build_info{version=%q,go=%q}`, Version(), GoVersion())
	reg.GaugeFunc(name, "Build identity of this binary; the value is always 1.",
		func() float64 { return 1 })
}

package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"fftgrad/internal/buildinfo"
	"fftgrad/internal/checkpoint"
	"fftgrad/internal/trace"
)

// The rolling anomaly engine: per-rank EWMA mean/variance over iteration
// latency and per-stage shares, updated on every Commit. A sample whose
// z-score breaches the threshold after warm-up fires an anomalyEvent
// into the capture channel — non-blocking, so a storm of breaches while
// a capture is in flight degrades to a counter bump, never a stall on
// the training path.

const (
	// anomalyWarmup: samples before z-scores are trusted — the EWMA needs
	// to see the steady state before deviations from it mean anything.
	anomalyWarmup = 32
	// anomalyZ: |z| breach threshold. 4 sigma on an EWMA variance is
	// deliberately coarse: the engine exists to catch a rank falling off
	// a cliff (GC pause, page-in, a straggling link), not ±10% jitter.
	anomalyZ = 4.0
	// ewmaAlpha: smoothing factor for mean/variance tracking.
	ewmaAlpha = 0.05
)

// ewmaZ tracks an EWMA mean/variance and scores new samples against it.
type ewmaZ struct {
	mean, varr float64
	n          int64
}

// observe returns the sample's z-score against the state *before* the
// update (0 until warm-up completes), then folds the sample in.
func (e *ewmaZ) observe(x float64) float64 {
	var z float64
	d := x - e.mean
	if e.n >= anomalyWarmup && e.varr > 0 {
		z = d / math.Sqrt(e.varr)
	}
	if e.n == 0 {
		e.mean = x
	} else {
		e.mean += ewmaAlpha * d
		e.varr = (1 - ewmaAlpha) * (e.varr + ewmaAlpha*d*d)
	}
	e.n++
	return z
}

// anomalyState is one rank's engine cell, touched only by that rank's
// Commit goroutine.
type anomalyState struct {
	latency   ewmaZ // iteration latency (seconds)
	commShare ewmaZ // exchange share of the iteration
	compShare ewmaZ // compute share of the iteration
	_         [40]byte // pad: keep neighbouring ranks off one cache line
}

// anomalyEvent is one breach handed to the capture worker.
type anomalyEvent struct {
	Rank   int     `json:"rank"`
	Iter   int64   `json:"iter"`
	Metric string  `json:"metric"` // "latency" | "comm_share" | "compute_share"
	Value  float64 `json:"value"`
	Z      float64 `json:"zscore"`
}

// anomalyCheck scores one committed record. Pure float math plus, on
// breach, a counter bump and a non-blocking channel send — no allocation
// (the metric names are string constants).
func (p *Profiler) anomalyCheck(rank int, rec *IterRecord, latency float64) {
	st := &p.anom[rank]
	wall := float64(rec.EndNs - rec.StartNs)
	var commShare, compShare float64
	if wall > 0 {
		commShare = float64(rec.ExchangeNs) / wall
		compShare = float64(rec.ComputeNs) / wall
	}
	if z := st.latency.observe(latency); z > anomalyZ || z < -anomalyZ {
		p.breach(rank, rec.Iter, "latency", latency, z)
	}
	if z := st.commShare.observe(commShare); z > anomalyZ || z < -anomalyZ {
		p.breach(rank, rec.Iter, "comm_share", commShare, z)
	}
	if z := st.compShare.observe(compShare); z > anomalyZ || z < -anomalyZ {
		p.breach(rank, rec.Iter, "compute_share", compShare, z)
	}
}

func (p *Profiler) breach(rank int, iter int64, metric string, v, z float64) {
	p.breaches.Add(1)
	if p.captureCh == nil {
		return
	}
	select {
	case p.captureCh <- anomalyEvent{Rank: rank, Iter: iter, Metric: metric, Value: v, Z: z}:
	default: // capture in flight or queue full: the counter already recorded it
	}
}

// CaptureConfig wires the anomaly engine to its capture side-effects.
type CaptureConfig struct {
	// Dir receives the pprof CPU profiles and cross-link files.
	Dir string
	// Flight, when set, dumps the trace ring on each capture (reason
	// "anomaly") so the timeline and the CPU profile cover the same
	// moment.
	Flight *trace.FlightRecorder
	// MaxCaptures caps captures per run (<= 0 selects 4): anomalies
	// cluster, and each capture costs a CPUProfileDur pause of *sampling*
	// (not stopping) plus two file writes.
	MaxCaptures int
	// CPUProfileDur is how long the CPU profile samples (<= 0 selects
	// 250ms) — long enough to catch the culprit of a latency cliff that
	// is still happening, short enough to stay out of the way.
	CPUProfileDur time.Duration
}

// capturer is the background capture worker's state.
type capturer struct {
	cfg      CaptureConfig
	done     chan struct{}
	wg       sync.WaitGroup
	mu       sync.Mutex
	captures []CaptureRecord
}

// CaptureRecord cross-links one capture's artifacts by iteration.
type CaptureRecord struct {
	anomalyEvent
	CPUProfile string `json:"cpu_profile,omitempty"`
	FlightDump string `json:"flight_dump,omitempty"`
	CrossLink  string `json:"cross_link,omitempty"`
	Version    string `json:"version"`
	Go         string `json:"go"`
}

// EnableCapture starts the anomaly-capture worker: every breach (up to
// MaxCaptures) captures a pprof CPU profile window, triggers the flight
// recorder, and writes a cross-link JSON keyed by iteration tying the
// two artifacts together. Returns a stop function that drains the worker
// (idempotent). Call once per run, before training starts (like
// Instrument, the channel wiring is not synchronized against Commit); a
// second call on the same profiler is a no-op.
func (p *Profiler) EnableCapture(cfg CaptureConfig) func() {
	if p == nil || p.capt != nil {
		return func() {}
	}
	if cfg.MaxCaptures <= 0 {
		cfg.MaxCaptures = 4
	}
	if cfg.CPUProfileDur <= 0 {
		cfg.CPUProfileDur = 250 * time.Millisecond
	}
	c := &capturer{cfg: cfg, done: make(chan struct{})}
	p.capt = c
	p.captureCh = make(chan anomalyEvent, 8)
	c.wg.Add(1)
	go c.run(p)
	var once sync.Once
	return func() {
		once.Do(func() {
			close(c.done)
			c.wg.Wait()
		})
	}
}

// Captures returns the cross-linked capture records so far (nil when
// capture was never enabled).
func (p *Profiler) Captures() []CaptureRecord {
	if p == nil || p.capt == nil {
		return nil
	}
	c := p.capt
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CaptureRecord(nil), c.captures...)
}

func (c *capturer) run(p *Profiler) {
	defer c.wg.Done()
	taken := 0
	for {
		select {
		case <-c.done:
			return
		case ev := <-p.captureCh:
			if taken >= c.cfg.MaxCaptures {
				continue
			}
			taken++
			c.capture(ev)
		}
	}
}

// capture performs one anomaly capture: CPU profile window, flight dump,
// cross-link file. Failures degrade field by field — a capture that can
// only produce the flight dump still cross-links it.
func (c *capturer) capture(ev anomalyEvent) {
	rec := CaptureRecord{
		anomalyEvent: ev,
		Version:      buildinfo.Version(),
		Go:           buildinfo.GoVersion(),
	}
	if c.cfg.Dir != "" {
		if err := os.MkdirAll(c.cfg.Dir, 0o755); err == nil {
			cpuPath := filepath.Join(c.cfg.Dir, fmt.Sprintf("obs-cpu-iter%d.pprof", ev.Iter))
			if f, err := os.Create(cpuPath); err == nil {
				if err := pprof.StartCPUProfile(f); err == nil {
					timer := time.NewTimer(c.cfg.CPUProfileDur)
					select {
					case <-timer.C:
					case <-c.done:
						timer.Stop()
					}
					pprof.StopCPUProfile()
					rec.CPUProfile = cpuPath
				}
				_ = f.Close()
			}
		}
	}
	if c.cfg.Flight != nil {
		rec.FlightDump = c.cfg.Flight.Trigger(ev.Rank, trace.ReasonAnomaly)
	}
	if c.cfg.Dir != "" {
		link := filepath.Join(c.cfg.Dir, fmt.Sprintf("obs-anomaly-iter%d.json", ev.Iter))
		if data, err := json.MarshalIndent(&rec, "", "  "); err == nil {
			if err := checkpoint.WriteBytesAtomic(link, data); err == nil {
				rec.CrossLink = link
			}
		}
	}
	fmt.Printf("obs: anomaly capture iter %d rank %d (%s z=%.1f): cpu=%s flight=%s\n",
		ev.Iter, ev.Rank, ev.Metric, ev.Z, orNone(rec.CPUProfile), orNone(rec.FlightDump))
	c.mu.Lock()
	c.captures = append(c.captures, rec)
	c.mu.Unlock()
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

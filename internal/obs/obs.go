// Package obs is the cross-rank iteration profiler: it turns the
// per-rank stage measurements the training loops already take (the
// paper's Sec. 3.3 terms — compute, Tm/Tf/Ts/Tp inside compress, the
// exchange, decompress, update, sync) into *cross-rank* attribution:
//
//   - a clock-aligned global timeline. On the TCP/netsim paths each rank
//     records against its own monotonic epoch; the profiler estimates
//     per-rank clock offsets from the barrier-anchored exchange-end
//     instants (all ranks leave a BSP allgather at nearly the same wall
//     moment) and hands them to trace.WriteMergedJSON for a single
//     multi-process Perfetto view.
//
//   - a per-iteration critical path: which rank set the pace, how its
//     wall time decomposes into stage terms plus comm-wait, and a
//     straggler "blame ledger" attributing each rank's blocked time to
//     the rank that caused it, with rolling per-rank blame percentiles
//     fed into telemetry histograms.
//
//   - a rolling anomaly engine: EWMA z-scores over iteration latency and
//     per-stage shares; a breach auto-captures a pprof CPU profile
//     alongside the flight-recorder dump, cross-linked by iteration.
//
// Design constraints match the rest of the observability stack: a nil
// *Profiler / *RankCtx is valid and records nothing, and the
// steady-state record path (RankCtx.Commit) performs zero allocations —
// seqlock stores, EWMA float math, histogram atomics and a non-blocking
// channel send, nothing else. All analysis (offset estimation, critical
// paths, the ledger, JSON export) is cold-path and runs on demand.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"fftgrad/internal/telemetry"
)

// IterRecord is one rank's accounting of one training iteration. All
// *Ns stage durations come from the training loop's existing timers;
// StartNs/ExchEndNs/EndNs are instants on the rank's profiler clock
// (RankCtx.NowNs), which is what makes cross-rank alignment possible.
type IterRecord struct {
	Iter int64 `json:"iter"`

	StartNs   int64 `json:"start_ns"`    // iteration began (rank-local clock)
	ExchEndNs int64 `json:"exch_end_ns"` // gradient exchange completed (barrier-anchored)
	EndNs     int64 `json:"end_ns"`      // iteration ended

	ComputeNs    int64 `json:"compute_ns"`
	CompressNs   int64 `json:"compress_ns"`
	ExchangeNs   int64 `json:"exchange_ns"`
	DecompressNs int64 `json:"decompress_ns"`
	UpdateNs     int64 `json:"update_ns"`
	SyncNs       int64 `json:"sync_ns"`

	MsgBytes int64 `json:"msg_bytes"`

	// BlamePeer/BlameWaitNs carry the cluster layer's in-exchange
	// attribution on the fault path (ExchangeResult.SlowestPeer/WaitNs):
	// the peer whose data this rank waited for longest, and the marginal
	// wait it caused. -1/0 on the barrier path, where arrival skew is
	// reconstructed from the records instead (see critical.go).
	BlamePeer   int64 `json:"blame_peer"`
	BlameWaitNs int64 `json:"blame_wait_ns"`
}

// Field indices of the seqlock slot, mirroring IterRecord.
const (
	fIter = iota
	fStart
	fExchEnd
	fEnd
	fCompute
	fCompress
	fExchange
	fDecompress
	fUpdate
	fSync
	fMsgBytes
	fBlamePeer
	fBlameWait
	nFields
)

// pslot is one seqlock-protected record slot (same protocol as the trace
// ring: invalidate stamp, store fields, republish; readers retry on a
// moved stamp and never see a torn record).
type pslot struct {
	stamp atomic.Uint64 // 0 = empty/in-flight; else claim index + 1
	f     [nFields]atomic.Int64
}

// pring is one rank's record buffer. Only that rank's worker goroutine
// writes it; analysis goroutines read it through the seqlock.
type pring struct {
	pos   atomic.Uint64
	mask  uint64
	slots []pslot
}

func (r *pring) store(rec *IterRecord) {
	idx := r.pos.Add(1) - 1
	s := &r.slots[idx&r.mask]
	s.stamp.Store(0)
	s.f[fIter].Store(rec.Iter)
	s.f[fStart].Store(rec.StartNs)
	s.f[fExchEnd].Store(rec.ExchEndNs)
	s.f[fEnd].Store(rec.EndNs)
	s.f[fCompute].Store(rec.ComputeNs)
	s.f[fCompress].Store(rec.CompressNs)
	s.f[fExchange].Store(rec.ExchangeNs)
	s.f[fDecompress].Store(rec.DecompressNs)
	s.f[fUpdate].Store(rec.UpdateNs)
	s.f[fSync].Store(rec.SyncNs)
	s.f[fMsgBytes].Store(rec.MsgBytes)
	s.f[fBlamePeer].Store(rec.BlamePeer)
	s.f[fBlameWait].Store(rec.BlameWaitNs)
	s.stamp.Store(idx + 1)
}

// DefaultIterWindow is the per-rank record capacity New selects when
// asked for <= 0: enough iterations for offset estimation and the
// rolling ledger without unbounded memory.
const DefaultIterWindow = 4096

// Profiler owns one record ring per rank plus the analysis state. The
// zero value is not usable; a nil *Profiler is valid and records nothing.
type Profiler struct {
	rings []pring
	now   []func() int64 // per-rank clock; test/netsim-skew overridable

	// Anomaly engine state, one cell per rank, each touched only by its
	// own rank's Commit goroutine.
	anom []anomalyState

	// Telemetry, wired by Instrument before training starts (or left nil).
	iterHist  *telemetry.Histogram   // fftgrad_obs_iteration_seconds
	blameHist []*telemetry.Histogram // fftgrad_obs_blame_seconds{rank=...}

	// Capture plumbing (EnableCapture); captureCh is non-nil only when a
	// capture worker is running.
	captureCh chan anomalyEvent
	capt      *capturer
	breaches  atomic.Uint64 // z-score breaches detected (captured or not)

	// Cold-path analysis state: the cursor-guarded ledger sweep.
	mu     sync.Mutex
	ledger ledger
}

// New creates a profiler for `ranks` tracks retaining the last perIter
// iteration records per rank (rounded up to a power of two; <= 0 selects
// DefaultIterWindow). All ranks share one monotonic epoch by default —
// the in-process case; SetClock skews individual ranks for netsim tests.
func New(ranks, perIter int) *Profiler {
	if ranks < 1 {
		ranks = 1
	}
	if perIter <= 0 {
		perIter = DefaultIterWindow
	}
	capPow2 := 1
	for capPow2 < perIter {
		capPow2 <<= 1
	}
	p := &Profiler{
		rings: make([]pring, ranks),
		now:   make([]func() int64, ranks),
		anom:  make([]anomalyState, ranks),
	}
	base := time.Now()
	shared := func() int64 { return int64(time.Since(base)) }
	for i := range p.rings {
		p.rings[i].mask = uint64(capPow2 - 1)
		p.rings[i].slots = make([]pslot, capPow2)
		p.now[i] = shared
	}
	return p
}

// Ranks returns the number of tracks, 0 on a nil profiler.
func (p *Profiler) Ranks() int {
	if p == nil {
		return 0
	}
	return len(p.rings)
}

// SetClock overrides one rank's clock source — how netsim tests model
// ranks that do not share an epoch. Call before recording.
func (p *Profiler) SetClock(rank int, fn func() int64) {
	if p == nil || rank < 0 || rank >= len(p.now) || fn == nil {
		return
	}
	p.now[rank] = fn
}

// Rank returns the recording handle for one rank's track, nil when the
// profiler is nil or the rank is out of range — callers thread the nil
// through and every record call degrades to a pointer check.
func (p *Profiler) Rank(rank int) *RankCtx {
	if p == nil || rank < 0 || rank >= len(p.rings) {
		return nil
	}
	return &RankCtx{p: p, rank: int32(rank)}
}

// RankCtx is one rank's recording handle. A nil *RankCtx is valid; every
// method is a no-op (NowNs returns 0).
type RankCtx struct {
	p    *Profiler
	rank int32
}

// NowNs returns the current time on this rank's profiler clock.
func (c *RankCtx) NowNs() int64 {
	if c == nil {
		return 0
	}
	return c.p.now[c.rank]()
}

// Commit records one completed iteration. This is the steady-state
// record path: seqlock stores, one histogram observation, the EWMA
// anomaly update and (on breach) a non-blocking channel send — zero
// allocations, asserted by TestCommitZeroAlloc and the obs gate.
func (c *RankCtx) Commit(rec IterRecord) {
	if c == nil {
		return
	}
	p := c.p
	p.rings[c.rank].store(&rec)
	latency := float64(rec.EndNs-rec.StartNs) / 1e9
	if p.iterHist != nil {
		p.iterHist.Observe(latency)
	}
	p.anomalyCheck(int(c.rank), &rec, latency)
}

// Records snapshots one rank's retained iteration records, ordered by
// iteration. Cold path; safe against a concurrently committing writer.
func (p *Profiler) Records(rank int) []IterRecord {
	if p == nil || rank < 0 || rank >= len(p.rings) {
		return nil
	}
	r := &p.rings[rank]
	out := make([]IterRecord, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		for attempt := 0; attempt < 4; attempt++ {
			st1 := s.stamp.Load()
			if st1 == 0 {
				break
			}
			rec := IterRecord{
				Iter:         s.f[fIter].Load(),
				StartNs:      s.f[fStart].Load(),
				ExchEndNs:    s.f[fExchEnd].Load(),
				EndNs:        s.f[fEnd].Load(),
				ComputeNs:    s.f[fCompute].Load(),
				CompressNs:   s.f[fCompress].Load(),
				ExchangeNs:   s.f[fExchange].Load(),
				DecompressNs: s.f[fDecompress].Load(),
				UpdateNs:     s.f[fUpdate].Load(),
				SyncNs:       s.f[fSync].Load(),
				MsgBytes:     s.f[fMsgBytes].Load(),
				BlamePeer:    s.f[fBlamePeer].Load(),
				BlameWaitNs:  s.f[fBlameWait].Load(),
			}
			if s.stamp.Load() == st1 {
				out = append(out, rec)
				break
			}
		}
	}
	sortRecords(out)
	return out
}

func sortRecords(recs []IterRecord) {
	// Insertion-friendly: rings fill in iteration order, so the snapshot
	// is at most rotated; a simple sort keeps the code obvious.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Iter < recs[j-1].Iter; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// blameBounds are the bucket bounds (seconds) for the per-rank blame
// histograms: sub-ms in-process skew up to multi-second stalls.
var blameBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// iterBounds are the bucket bounds (seconds) for iteration latency.
var iterBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Instrument wires the profiler's histograms and gauges into reg:
//
//	fftgrad_obs_iteration_seconds            — iteration latency histogram
//	fftgrad_obs_blame_seconds{rank="N"}      — blocked time attributed to rank N
//	fftgrad_obs_anomaly_breaches_total       — EWMA z-score breaches
//
// Call before training starts; Commit publishes to these without locks.
func (p *Profiler) Instrument(reg *telemetry.Registry) {
	if p == nil || reg == nil {
		return
	}
	p.iterHist = reg.Histogram("fftgrad_obs_iteration_seconds",
		"Per-rank training iteration latency.", iterBounds)
	p.blameHist = make([]*telemetry.Histogram, len(p.rings))
	for rank := range p.rings {
		p.blameHist[rank] = reg.Histogram(
			histName(rank),
			"Blocked time across the fleet attributed to this rank (per blamed iteration).",
			blameBounds)
	}
	reg.GaugeFunc("fftgrad_obs_anomaly_breaches_total",
		"EWMA z-score breaches detected by the profiler's anomaly engine.",
		func() float64 { return float64(p.breaches.Load()) })
}

func histName(rank int) string {
	return `fftgrad_obs_blame_seconds{rank="` + itoa(rank) + `"}`
}

// itoa is a tiny allocation-conscious int formatter for metric names
// (registration-time only, but keeps the import set lean).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

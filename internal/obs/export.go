package obs

import (
	"encoding/json"
	"io"
	"net/http"

	"fftgrad/internal/buildinfo"
)

// Profile is the per-iteration JSON profile document: build identity,
// the clock-offset estimate, the blame ledger with rolling percentiles,
// the recent per-iteration critical paths, and any anomaly captures.
// This is what /jobs/{id}/profile and `trainer -profile-out` serve.
type Profile struct {
	Build struct {
		Version string `json:"version"`
		Go      string `json:"go"`
	} `json:"build"`

	Summary   Summary `json:"summary"`
	OffsetsNs []int64 `json:"offsets_ns"`

	// Blame mirrors Summary.Blame with derived convenience fields: the
	// fraction of all blocked time each rank is responsible for and the
	// rolling per-iteration blame percentiles from the telemetry
	// histograms (NaN-free: 0 when uninstrumented or empty).
	Blame []BlameStanding `json:"blame"`

	Iterations []IterProfile   `json:"iterations"`
	Captures   []CaptureRecord `json:"captures,omitempty"`
}

// BlameStanding is one rank's row in the exported ledger.
type BlameStanding struct {
	Rank        int     `json:"rank"`
	BlamedS     float64 `json:"blamed_s"`
	BlamedFrac  float64 `json:"blamed_frac"`
	BlamedIters int64   `json:"blamed_iters"`
	BlockedS    float64 `json:"blocked_s"`
	P50S        float64 `json:"p50_s"`
	P90S        float64 `json:"p90_s"`
	P99S        float64 `json:"p99_s"`
}

// BuildProfile assembles the full profile document. final=true folds the
// ragged tail (see Summary).
func (p *Profiler) BuildProfile(final bool) Profile {
	var out Profile
	out.Build.Version = buildinfo.Version()
	out.Build.Go = buildinfo.GoVersion()
	if p == nil {
		return out
	}
	out.Summary = p.Summary(final)
	out.OffsetsNs = p.Offsets()
	out.Iterations = p.Profiles(false) // already swept by Summary above
	out.Captures = p.Captures()
	out.Blame = make([]BlameStanding, len(out.Summary.Blame))
	total := float64(out.Summary.TotalBlockedNs)
	for i, e := range out.Summary.Blame {
		st := BlameStanding{
			Rank:        e.Rank,
			BlamedS:     float64(e.BlamedNs) / 1e9,
			BlamedIters: e.BlamedIters,
			BlockedS:    float64(e.BlockedNs) / 1e9,
		}
		if total > 0 {
			st.BlamedFrac = float64(e.BlamedNs) / total
		}
		if p.blameHist != nil && e.Rank < len(p.blameHist) {
			st.P50S = finite(p.blameHist[e.Rank].Quantile(0.50))
			st.P90S = finite(p.blameHist[e.Rank].Quantile(0.90))
			st.P99S = finite(p.blameHist[e.Rank].Quantile(0.99))
		}
		out.Blame[i] = st
	}
	return out
}

func finite(v float64) float64 {
	if v != v { // NaN: empty histogram
		return 0
	}
	return v
}

// WriteProfileJSON writes the profile document as indented JSON.
func (p *Profiler) WriteProfileJSON(w io.Writer, final bool) error {
	prof := p.BuildProfile(final)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&prof)
}

// Handler serves the live profile document — mounted at /profile on the
// trainer's metrics mux and /jobs/{id}/profile on the serve mux.
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = p.WriteProfileJSON(w, false)
	})
}

// Status is the compact live-status document for /debug/status: build
// identity, the ledger headline, anomaly and trace-loss counts. Kept
// deliberately small — it is the first thing an operator curls.
type Status struct {
	Version string `json:"version"`
	Go      string `json:"go"`

	Ranks           int    `json:"ranks"`
	Iterations      int64  `json:"iterations"`
	TotalBlockedS   float64 `json:"total_blocked_s"`
	TopBlamedRank   int    `json:"top_blamed_rank"`
	TopBlamedFrac   float64 `json:"top_blamed_frac"`
	AnomalyBreaches uint64 `json:"anomaly_breaches"`
	TraceDropped    uint64 `json:"trace_dropped"`
}

// BuildStatus assembles the status document; traceDropped is supplied by
// the caller (the tracer lives a layer up).
func (p *Profiler) BuildStatus(traceDropped uint64) Status {
	st := Status{
		Version:       buildinfo.Version(),
		Go:            buildinfo.GoVersion(),
		TopBlamedRank: -1,
		TraceDropped:  traceDropped,
	}
	if p == nil {
		return st
	}
	s := p.Summary(false)
	st.Ranks = s.Ranks
	st.Iterations = s.Iterations
	st.TotalBlockedS = float64(s.TotalBlockedNs) / 1e9
	st.AnomalyBreaches = s.AnomalyBreaches
	var top int64
	for _, e := range s.Blame {
		if e.BlamedNs > top {
			top = e.BlamedNs
			st.TopBlamedRank = e.Rank
		}
	}
	if s.TotalBlockedNs > 0 {
		st.TopBlamedFrac = float64(top) / float64(s.TotalBlockedNs)
	}
	return st
}

// StatusHandler serves the live Status document.
func (p *Profiler) StatusHandler(traceDropped func() uint64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var dropped uint64
		if traceDropped != nil {
			dropped = traceDropped()
		}
		st := p.BuildStatus(dropped)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&st)
	})
}

// blameQuantile reads the rolling blame percentile for one rank (0 when
// uninstrumented) — used by the -top table.
func (p *Profiler) blameQuantile(rank int, q float64) float64 {
	if p == nil || p.blameHist == nil || rank < 0 || rank >= len(p.blameHist) {
		return 0
	}
	return finite(p.blameHist[rank].Quantile(q))
}

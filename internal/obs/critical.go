package obs

import (
	"math"
	"sort"
)

// This file is the cold-path analysis half of the profiler: clock-offset
// estimation, the per-iteration critical path, and the blame ledger.
//
// Critical-path algorithm (DESIGN Sec. 14):
//
//  1. Align clocks. offset[r] = median over the common iteration window
//     of (ExchEndNs[r][i] − ExchEndNs[0][i]). The exchange-completion
//     instant is barrier-anchored — on the BSP path every rank leaves
//     the allgather at nearly the same wall moment, so the per-iteration
//     difference between two ranks' *local* readings of that shared
//     moment is their clock skew plus noise; the median across
//     iterations is robust to the noise.
//
//  2. Pick the pacesetter. The critical rank of iteration i is the rank
//     with the latest aligned *arrival* at the exchange (exchange end
//     minus its own exchange duration): on a barrier everyone *leaves*
//     together, so the latest end says nothing — the last arriver is the
//     rank the barrier was provably waiting on.
//
//  3. Decompose. Comm-proper is the *minimum* exchange duration across
//     ranks — the rank that waited for nobody paid closest to the pure
//     transfer cost. Everything the critical rank's exchange spent above
//     that is comm-wait. The critical rank's other stage terms (compute,
//     compress = Tm+Tf+Ts+Tp, decompress, update, sync) pass through
//     unchanged: together they explain the iteration's wall time.
//
// Blame attribution rules:
//
//   - Fault path (TCP/netsim): the cluster layer watched arrivals inside
//     the exchange and reported the slowest fresh peer and the marginal
//     wait it caused (ExchangeResult.SlowestPeer/WaitNs → the record's
//     BlamePeer/BlameWaitNs). That is precise per-rank evidence — a
//     chaos straggler delays message *delivery*, so its own record looks
//     healthy while every peer's record names it. Blame the named peer.
//   - Barrier path: no per-arrival evidence exists, but the pacesetter
//     does — blame each rank's excess exchange time (its exchange minus
//     comm-proper) on the critical rank, which is the rank everyone was
//     provably waiting on. The critical rank itself blames nobody.

// IterProfile is the per-iteration critical-path view.
type IterProfile struct {
	Iter  int64 `json:"iter"`
	Ranks int   `json:"ranks"` // ranks that reported this iteration

	WallNs       int64 `json:"wall_ns"` // aligned max(End) − min(Start)
	CriticalRank int   `json:"critical_rank"`

	// The critical rank's decomposition (comm split into proper + wait).
	ComputeNs    int64 `json:"compute_ns"`
	CompressNs   int64 `json:"compress_ns"`
	CommProperNs int64 `json:"comm_proper_ns"`
	CommWaitNs   int64 `json:"comm_wait_ns"`
	DecompressNs int64 `json:"decompress_ns"`
	UpdateNs     int64 `json:"update_ns"`
	SyncNs       int64 `json:"sync_ns"`

	// Per-reporting-rank blame: BlockedNs[k] is rank Ranks[k]'s blocked
	// time, Blamed[k] the rank it attributes it to (-1 = none). Indexed
	// by position in RankIDs.
	RankIDs   []int   `json:"rank_ids"`
	BlockedNs []int64 `json:"blocked_ns"`
	Blamed    []int   `json:"blamed"`

	// Incomplete marks iterations some rank never reported (ring
	// wraparound, crash, or a not-yet-joined elastic slot) — cross-rank
	// readings over them are partial.
	Incomplete bool `json:"incomplete,omitempty"`
}

// Offsets estimates each rank's clock offset relative to rank 0 (ns; the
// value to *subtract* from rank r's timestamps to land on rank 0's
// axis). Ranks with no iterations in common with rank 0 get offset 0.
func (p *Profiler) Offsets() []int64 {
	if p == nil {
		return nil
	}
	perRank := make([]map[int64]int64, len(p.rings)) // iter → ExchEndNs
	for r := range p.rings {
		recs := p.Records(r)
		m := make(map[int64]int64, len(recs))
		for i := range recs {
			if recs[i].ExchEndNs > 0 {
				m[recs[i].Iter] = recs[i].ExchEndNs
			}
		}
		perRank[r] = m
	}
	return offsetsFrom(perRank)
}

func offsetsFrom(perRank []map[int64]int64) []int64 {
	out := make([]int64, len(perRank))
	if len(perRank) == 0 {
		return out
	}
	base := perRank[0]
	diffs := make([]int64, 0, len(base))
	for r := 1; r < len(perRank); r++ {
		diffs = diffs[:0]
		for iter, t0 := range base {
			if tr, ok := perRank[r][iter]; ok {
				diffs = append(diffs, tr-t0)
			}
		}
		if len(diffs) == 0 {
			continue
		}
		sort.Slice(diffs, func(i, j int) bool { return diffs[i] < diffs[j] })
		out[r] = diffs[len(diffs)/2]
	}
	return out
}

// profileIter builds one iteration's critical-path profile from the
// reporting ranks' records (parallel slices) and the offset estimate.
// Returns ok=false when no rank reported.
func profileIter(iter int64, ranks []int, recs []IterRecord, offsets []int64, total int) (IterProfile, bool) {
	if len(ranks) == 0 {
		return IterProfile{}, false
	}
	prof := IterProfile{
		Iter:         iter,
		Ranks:        len(ranks),
		CriticalRank: ranks[0],
		Incomplete:   len(ranks) < total,
		RankIDs:      append([]int(nil), ranks...),
		BlockedNs:    make([]int64, len(ranks)),
		Blamed:       make([]int, len(ranks)),
	}
	off := func(rank int) int64 {
		if rank < len(offsets) {
			return offsets[rank]
		}
		return 0
	}

	var minStart, maxEnd, maxArrive int64
	commProper := int64(math.MaxInt64)
	critIdx := 0
	for k, r := range ranks {
		rec := &recs[k]
		start := rec.StartNs - off(r)
		end := rec.EndNs - off(r)
		arrive := rec.ExchEndNs - off(r) - rec.ExchangeNs // exchange entry
		if k == 0 || start < minStart {
			minStart = start
		}
		if k == 0 || end > maxEnd {
			maxEnd = end
		}
		if k == 0 || arrive > maxArrive {
			maxArrive = arrive
			critIdx = k
		}
		if rec.ExchangeNs < commProper {
			commProper = rec.ExchangeNs
		}
	}
	crit := &recs[critIdx]
	prof.CriticalRank = ranks[critIdx]
	prof.WallNs = maxEnd - minStart
	prof.ComputeNs = crit.ComputeNs
	prof.CompressNs = crit.CompressNs
	prof.CommProperNs = commProper
	prof.CommWaitNs = crit.ExchangeNs - commProper
	if prof.CommWaitNs < 0 {
		prof.CommWaitNs = 0
	}
	prof.DecompressNs = crit.DecompressNs
	prof.UpdateNs = crit.UpdateNs
	prof.SyncNs = crit.SyncNs

	for k, r := range ranks {
		rec := &recs[k]
		prof.Blamed[k] = -1
		switch {
		case rec.BlamePeer >= 0 && rec.BlameWaitNs > 0:
			// Fault path: the cluster layer named the peer this rank
			// actually waited for, with the marginal wait measured.
			prof.BlockedNs[k] = rec.BlameWaitNs
			prof.Blamed[k] = int(rec.BlamePeer)
		case r != prof.CriticalRank:
			// Barrier path: excess exchange time over comm-proper is the
			// barrier wait, and the pacesetter is who everyone waited on.
			if blocked := rec.ExchangeNs - commProper; blocked > 0 {
				prof.BlockedNs[k] = blocked
				prof.Blamed[k] = prof.CriticalRank
			}
		}
	}
	return prof, true
}

// BlameEntry is one rank's standing in the ledger.
type BlameEntry struct {
	Rank int `json:"rank"`
	// BlamedNs: total blocked time across the fleet attributed to this
	// rank. BlamedIters: iterations in which at least one peer blamed it.
	BlamedNs    int64 `json:"blamed_ns"`
	BlamedIters int64 `json:"blamed_iters"`
	// BlockedNs: total time this rank spent blocked on others.
	BlockedNs int64 `json:"blocked_ns"`
}

// ledger is the cursor-guarded rolling aggregation. Guarded by
// Profiler.mu; the sweep folds each iteration exactly once, so the
// telemetry histograms never double-count however often an HTTP
// handler, the -top view or the end-of-run summary asks.
type ledger struct {
	swept      int64 // iterations below this are folded
	entries    []BlameEntry
	totalBlock int64
	iters      int64
	incomplete int64
	stage      [7]int64      // critical-path stage totals, Summary order
	recent     []IterProfile // bounded tail for export/top
}

const recentProfiles = 64

// sweep folds all newly complete iterations into the ledger. Callers
// hold p.mu. When final is true the sweep runs to the last iteration any
// rank reported; otherwise it stops at the common frontier (the largest
// iteration *every* active rank has committed), so a rank mid-iteration
// is never blamed on partial evidence.
func (p *Profiler) sweep(final bool) {
	type rankRecs struct {
		rank int
		recs []IterRecord
		byIt map[int64]int
		max  int64
	}
	var active []rankRecs
	exch := make([]map[int64]int64, len(p.rings))
	for r := range p.rings {
		recs := p.Records(r)
		em := make(map[int64]int64, len(recs))
		for i := range recs {
			if recs[i].ExchEndNs > 0 {
				em[recs[i].Iter] = recs[i].ExchEndNs
			}
		}
		exch[r] = em
		if len(recs) == 0 {
			continue
		}
		m := make(map[int64]int, len(recs))
		maxIter := int64(-1)
		for i := range recs {
			m[recs[i].Iter] = i
			if recs[i].Iter > maxIter {
				maxIter = recs[i].Iter
			}
		}
		active = append(active, rankRecs{rank: r, recs: recs, byIt: m, max: maxIter})
	}
	if len(active) == 0 {
		return
	}
	offsets := offsetsFrom(exch)

	// The sweep limit: common frontier (exclusive) normally, everything
	// reported when final.
	limit := int64(math.MaxInt64)
	for _, a := range active {
		if !final && a.max+1 < limit {
			limit = a.max + 1
		}
	}
	if final {
		limit = int64(-1)
		for _, a := range active {
			if a.max+1 > limit {
				limit = a.max + 1
			}
		}
	}

	if len(p.ledger.entries) == 0 {
		p.ledger.entries = make([]BlameEntry, len(p.rings))
		for r := range p.ledger.entries {
			p.ledger.entries[r].Rank = r
		}
	}

	var ranks []int
	var recs []IterRecord
	for iter := p.ledger.swept; iter < limit; iter++ {
		ranks = ranks[:0]
		recs = recs[:0]
		for _, a := range active {
			if idx, ok := a.byIt[iter]; ok {
				ranks = append(ranks, a.rank)
				recs = append(recs, a.recs[idx])
			}
		}
		prof, ok := profileIter(iter, ranks, recs, offsets, len(p.rings))
		if !ok {
			// Nobody retains this iteration anymore (wraparound): count it
			// and move on — the cursor must advance or the sweep stalls.
			p.ledger.incomplete++
			continue
		}
		p.fold(&prof)
	}
	p.ledger.swept = limit
}

// fold accumulates one iteration profile into the ledger and feeds the
// per-rank blame histograms.
func (p *Profiler) fold(prof *IterProfile) {
	l := &p.ledger
	l.iters++
	if prof.Incomplete {
		l.incomplete++
	}
	blamedThisIter := make(map[int]bool, 2)
	for k := range prof.RankIDs {
		blocked := prof.BlockedNs[k]
		target := prof.Blamed[k]
		if blocked <= 0 || target < 0 || target >= len(l.entries) {
			continue
		}
		l.entries[prof.RankIDs[k]].BlockedNs += blocked
		l.entries[target].BlamedNs += blocked
		l.totalBlock += blocked
		if !blamedThisIter[target] {
			blamedThisIter[target] = true
			l.entries[target].BlamedIters++
		}
		if p.blameHist != nil && p.blameHist[target] != nil {
			p.blameHist[target].Observe(float64(blocked) / 1e9)
		}
	}
	l.stage[0] += prof.ComputeNs
	l.stage[1] += prof.CompressNs
	l.stage[2] += prof.CommProperNs
	l.stage[3] += prof.CommWaitNs
	l.stage[4] += prof.DecompressNs
	l.stage[5] += prof.UpdateNs
	l.stage[6] += prof.SyncNs
	l.recent = append(l.recent, *prof)
	if len(l.recent) > recentProfiles {
		l.recent = l.recent[len(l.recent)-recentProfiles:]
	}
}

// Summary is the rolled-up cross-rank view: the blame ledger plus
// cumulative critical-path stage totals over the swept window.
type Summary struct {
	Ranks      int   `json:"ranks"`
	Iterations int64 `json:"iterations"`
	Incomplete int64 `json:"incomplete"`

	TotalBlockedNs int64        `json:"total_blocked_ns"`
	Blame          []BlameEntry `json:"blame"`

	// Cumulative critical-path stage totals (ns) across swept iterations.
	ComputeNs    int64 `json:"compute_ns"`
	CompressNs   int64 `json:"compress_ns"`
	CommProperNs int64 `json:"comm_proper_ns"`
	CommWaitNs   int64 `json:"comm_wait_ns"`
	DecompressNs int64 `json:"decompress_ns"`
	UpdateNs     int64 `json:"update_ns"`
	SyncNs       int64 `json:"sync_ns"`

	AnomalyBreaches uint64 `json:"anomaly_breaches"`
}

// Summary sweeps newly complete iterations into the ledger and returns
// the rolled-up view. final=true additionally folds the ragged tail
// (iterations not every rank reported) — the end-of-run form.
func (p *Profiler) Summary(final bool) Summary {
	if p == nil {
		return Summary{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sweep(final)
	s := Summary{
		Ranks:           len(p.rings),
		Iterations:      p.ledger.iters,
		Incomplete:      p.ledger.incomplete,
		TotalBlockedNs:  p.ledger.totalBlock,
		Blame:           append([]BlameEntry(nil), p.ledger.entries...),
		AnomalyBreaches: p.breaches.Load(),
	}
	s.ComputeNs = p.ledger.stage[0]
	s.CompressNs = p.ledger.stage[1]
	s.CommProperNs = p.ledger.stage[2]
	s.CommWaitNs = p.ledger.stage[3]
	s.DecompressNs = p.ledger.stage[4]
	s.UpdateNs = p.ledger.stage[5]
	s.SyncNs = p.ledger.stage[6]
	return s
}

// Profiles sweeps and returns the most recent per-iteration profiles
// (up to the retained tail of 64).
func (p *Profiler) Profiles(final bool) []IterProfile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sweep(final)
	return append([]IterProfile(nil), p.ledger.recent...)
}

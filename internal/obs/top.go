package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// The `trainer -top` terminal view: a blame/stage table redrawn in place
// while training runs. Rendering is plain ANSI — cursor-up plus
// erase-line — so it works in any terminal without a TUI dependency and
// degrades to an appending log when piped to a file.

// RenderTop writes one frame of the blame/stage table and returns the
// number of lines written (so the caller can cursor back up before the
// next frame).
func (p *Profiler) RenderTop(w io.Writer) int {
	s := p.Summary(false)
	lines := 0
	pr := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\x1b[K\n", args...)
		lines++
	}
	critTotal := s.ComputeNs + s.CompressNs + s.CommProperNs + s.CommWaitNs +
		s.DecompressNs + s.UpdateNs + s.SyncNs
	pr("obs: %d ranks · %d iterations · blocked %.3fs · anomalies %d",
		s.Ranks, s.Iterations, float64(s.TotalBlockedNs)/1e9, s.AnomalyBreaches)
	if critTotal > 0 {
		share := func(ns int64) float64 { return 100 * float64(ns) / float64(critTotal) }
		pr("critical path: compute %.1f%% · compress %.1f%% · comm %.1f%% · comm-wait %.1f%% · decompress %.1f%% · update %.1f%% · sync %.1f%%",
			share(s.ComputeNs), share(s.CompressNs), share(s.CommProperNs), share(s.CommWaitNs),
			share(s.DecompressNs), share(s.UpdateNs), share(s.SyncNs))
	}
	pr("%-5s %10s %7s %7s %10s %9s %9s", "rank", "blamed(s)", "blame%", "iters", "blocked(s)", "p50(ms)", "p99(ms)")
	for _, e := range s.Blame {
		frac := 0.0
		if s.TotalBlockedNs > 0 {
			frac = 100 * float64(e.BlamedNs) / float64(s.TotalBlockedNs)
		}
		bar := blameBar(frac)
		pr("%-5d %10.3f %6.1f%% %7d %10.3f %9.2f %9.2f  %s",
			e.Rank, float64(e.BlamedNs)/1e9, frac, e.BlamedIters,
			float64(e.BlockedNs)/1e9,
			1e3*p.blameQuantile(e.Rank, 0.50), 1e3*p.blameQuantile(e.Rank, 0.99), bar)
	}
	return lines
}

// blameBar is a 10-cell bar for the blame share column.
func blameBar(pct float64) string {
	cells := int(pct/10 + 0.5)
	if cells > 10 {
		cells = 10
	}
	if cells < 0 {
		cells = 0
	}
	return strings.Repeat("█", cells) + strings.Repeat("·", 10-cells)
}

// Top redraws the table every interval until stop closes, then renders a
// final frame. The table is repainted in place: after each frame the
// cursor moves back up over the lines just written.
func (p *Profiler) Top(w io.Writer, interval time.Duration, stop <-chan struct{}) {
	if p == nil {
		return
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	prev := 0
	for {
		if prev > 0 {
			fmt.Fprintf(w, "\x1b[%dA", prev) // cursor up over the old frame
		}
		prev = p.RenderTop(w)
		select {
		case <-stop:
			return
		case <-tick.C:
		}
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"fftgrad/internal/telemetry"
)

// rec builds a healthy iteration record for rank-style synthesis: the
// exchange ends exchEnd on the rank's local clock, stages fill the rest.
func rec(iter, start, exchEnd int64, compute, exchange int64) IterRecord {
	return IterRecord{
		Iter:       iter,
		StartNs:    start,
		ExchEndNs:  exchEnd,
		EndNs:      exchEnd + 2000,
		ComputeNs:  compute,
		CompressNs: 500,
		ExchangeNs: exchange,
		UpdateNs:   1000,
		BlamePeer:  -1,
	}
}

// TestCommitZeroAlloc is the obs record-path gate: steady-state Commit —
// with telemetry histograms instrumented and the anomaly engine past
// warm-up — must not allocate.
func TestCommitZeroAlloc(t *testing.T) {
	p := New(2, 256)
	p.Instrument(telemetry.NewRegistry())
	c := p.Rank(0)
	iter := int64(0)
	// Warm the anomaly engine into steady state first.
	for ; iter < 64; iter++ {
		c.Commit(rec(iter, iter*10_000, iter*10_000+7000, 5000, 2000))
	}
	allocs := testing.AllocsPerRun(200, func() {
		c.Commit(rec(iter, iter*10_000, iter*10_000+7000, 5000, 2000))
		iter++
	})
	if allocs != 0 {
		t.Fatalf("Commit allocates %v/op, want 0", allocs)
	}
}

// TestCommitNilSafe: nil profiler and nil ctx record nothing and never
// panic.
func TestCommitNilSafe(t *testing.T) {
	var p *Profiler
	c := p.Rank(0)
	c.Commit(rec(0, 0, 100, 50, 20))
	if c.NowNs() != 0 {
		t.Error("nil ctx NowNs must be 0")
	}
	if got := p.Summary(true); got.Ranks != 0 {
		t.Errorf("nil profiler summary: %+v", got)
	}
	if p.Offsets() != nil || p.Records(0) != nil || p.Profiles(true) != nil {
		t.Error("nil profiler analysis must return nil")
	}
	p.Top(nil, time.Millisecond, nil) // must return immediately
	if q := New(1, 4).Rank(5); q != nil {
		t.Error("out-of-range rank must be nil")
	}
}

// TestOffsetsUnderSkew models the netsim case: three ranks whose clocks
// disagree by fixed offsets, with per-iteration jitter on the
// barrier-anchored exchange end. The median estimator must recover the
// offsets to within the jitter bound.
func TestOffsetsUnderSkew(t *testing.T) {
	p := New(3, 256)
	skew := []int64{0, 250_000, -700_000} // ns each rank's clock runs ahead
	// Deterministic jitter in [-5µs, +5µs): a splitmix-style hash.
	jitter := func(rank int, iter int64) int64 {
		x := uint64(rank+1)*0x9E3779B97F4A7C15 + uint64(iter)*0xBF58476D1CE4E5B9
		x ^= x >> 31
		return int64(x%10_000) - 5_000
	}
	for iter := int64(0); iter < 100; iter++ {
		trueExchEnd := iter*1_000_000 + 800_000 // shared wall moment
		for rank := 0; rank < 3; rank++ {
			local := trueExchEnd + skew[rank] + jitter(rank, iter)
			p.Rank(rank).Commit(rec(iter, local-800_000, local, 500_000, 200_000))
		}
	}
	offsets := p.Offsets()
	if len(offsets) != 3 {
		t.Fatalf("offsets: %v", offsets)
	}
	for rank, want := range skew {
		got := offsets[rank]
		if d := got - want; d > 5_000 || d < -5_000 {
			t.Errorf("rank %d offset = %d, want %d ± 5000", rank, got, want)
		}
	}
}

// TestCriticalPathBlame synthesizes a BSP iteration where rank 2 arrives
// late at the barrier: every other rank's exchange stretches while rank
// 2's own exchange is short. The profile must name rank 2 the critical
// rank and blame the others' blocked time on it.
func TestCriticalPathBlame(t *testing.T) {
	p := New(4, 64)
	for iter := int64(0); iter < 8; iter++ {
		base := iter * 100_000
		for rank := 0; rank < 4; rank++ {
			r := IterRecord{
				Iter: iter, StartNs: base, BlamePeer: -1,
				ComputeNs: 10_000, CompressNs: 2_000, UpdateNs: 1_000,
			}
			// Barrier semantics: every rank leaves the exchange at the same
			// wall moment; what differs is when each *entered* it.
			r.ExchEndNs = base + 47_000
			if rank == 2 {
				// The straggler computes long and exchanges fast: it never
				// waits — everyone waits for it.
				r.ComputeNs = 40_000
				r.ExchangeNs = 5_000
			} else {
				r.ExchangeNs = 33_000 // blocked at the barrier
			}
			r.EndNs = r.ExchEndNs + 2_000
			p.Rank(rank).Commit(r)
		}
	}
	s := p.Summary(true)
	if s.Iterations != 8 {
		t.Fatalf("swept %d iterations, want 8", s.Iterations)
	}
	var blamed2, total int64
	for _, e := range s.Blame {
		total += e.BlamedNs
		if e.Rank == 2 {
			blamed2 = e.BlamedNs
		}
	}
	if total == 0 || blamed2 != total {
		t.Errorf("rank 2 should hold all blame: blamed2=%d total=%d (%+v)", blamed2, total, s.Blame)
	}
	// Each non-straggler is blocked 33000-5000 = 28000ns per iteration.
	if want := int64(8 * 3 * 28_000); total != want {
		t.Errorf("total blocked %d, want %d", total, want)
	}
	profs := p.Profiles(true)
	if len(profs) == 0 {
		t.Fatal("no profiles")
	}
	last := profs[len(profs)-1]
	if last.CriticalRank != 2 {
		t.Errorf("critical rank %d, want 2", last.CriticalRank)
	}
	if last.CommProperNs != 5_000 {
		t.Errorf("comm proper %d, want 5000", last.CommProperNs)
	}
}

// TestFaultPathBlame: records carrying the cluster layer's explicit
// SlowestPeer/WaitNs attribution must outrank the barrier heuristic.
func TestFaultPathBlame(t *testing.T) {
	p := New(3, 64)
	reg := telemetry.NewRegistry()
	p.Instrument(reg)
	for iter := int64(0); iter < 4; iter++ {
		base := iter * 100_000
		for rank := 0; rank < 3; rank++ {
			r := rec(iter, base, base+50_000, 10_000, 30_000)
			if rank != 1 {
				r.BlamePeer = 1 // both peers waited on rank 1's delivery
				r.BlameWaitNs = 20_000
			}
			p.Rank(rank).Commit(r)
		}
	}
	s := p.Summary(true)
	if want := int64(4 * 2 * 20_000); s.TotalBlockedNs != want {
		t.Errorf("total blocked %d, want %d", s.TotalBlockedNs, want)
	}
	if got := s.Blame[1].BlamedNs; got != s.TotalBlockedNs {
		t.Errorf("rank 1 blamed %d of %d", got, s.TotalBlockedNs)
	}
	// The rolling percentile histograms must have been fed exactly once
	// per blamed wait (cursor-guarded: a second Summary adds nothing).
	_ = p.Summary(true)
	snap := reg.Snapshot()
	if got := snap[`fftgrad_obs_blame_seconds{rank="1"}_count`]; got != 8 {
		t.Errorf("blame histogram count %v, want 8", got)
	}
	if q := p.blameQuantile(1, 0.5); q <= 0 {
		t.Errorf("p50 blame quantile %v, want > 0", q)
	}
}

// TestSweepCursorMonotonic: sweeping mid-run must not fold iterations a
// slow rank has not reported yet, and must fold them once it has.
func TestSweepCursorMonotonic(t *testing.T) {
	p := New(2, 64)
	for iter := int64(0); iter < 10; iter++ {
		p.Rank(0).Commit(rec(iter, iter*1000, iter*1000+500, 300, 100))
	}
	// Rank 1 lags: only 5 iterations in.
	for iter := int64(0); iter < 5; iter++ {
		p.Rank(1).Commit(rec(iter, iter*1000, iter*1000+500, 300, 100))
	}
	if s := p.Summary(false); s.Iterations != 5 {
		t.Errorf("non-final sweep folded %d iterations, want 5 (common frontier)", s.Iterations)
	}
	for iter := int64(5); iter < 10; iter++ {
		p.Rank(1).Commit(rec(iter, iter*1000, iter*1000+500, 300, 100))
	}
	if s := p.Summary(false); s.Iterations != 10 {
		t.Errorf("after catch-up folded %d iterations, want 10", s.Iterations)
	}
}

// TestAnomalyCaptureFires: a latency cliff after warm-up must breach the
// EWMA z-score and produce a cross-linked capture record.
func TestAnomalyCaptureFires(t *testing.T) {
	p := New(1, 256)
	dir := t.TempDir()
	stop := p.EnableCapture(CaptureConfig{Dir: dir, MaxCaptures: 2, CPUProfileDur: 10 * time.Millisecond})
	defer stop()
	c := p.Rank(0)
	var iter int64
	for ; iter < 50; iter++ {
		r := rec(iter, iter*10_000, iter*10_000+7000, 5000, 2000)
		// Mild deterministic jitter so the EWMA variance is non-zero.
		r.EndNs += iter % 3 * 10
		c.Commit(r)
	}
	// The cliff: a 100x latency spike.
	spike := rec(iter, iter*10_000, iter*10_000+700_000, 5000, 690_000)
	spike.EndNs = spike.StartNs + 900_000
	c.Commit(spike)
	if p.breaches.Load() == 0 {
		t.Fatal("latency cliff did not breach the anomaly engine")
	}
	// The capture worker is async; wait for it.
	deadline := time.After(5 * time.Second)
	for len(p.Captures()) == 0 {
		select {
		case <-deadline:
			t.Fatal("no capture record within 5s")
		case <-time.After(10 * time.Millisecond):
		}
	}
	cap0 := p.Captures()[0]
	if cap0.Iter != iter {
		t.Errorf("capture iter %d, want %d", cap0.Iter, iter)
	}
	if cap0.CrossLink == "" {
		t.Error("capture missing cross-link file")
	}
	var link map[string]any
	data := mustRead(t, cap0.CrossLink)
	if err := json.Unmarshal(data, &link); err != nil {
		t.Fatalf("cross-link not JSON: %v", err)
	}
	if link["iter"] != float64(iter) || link["version"] == "" {
		t.Errorf("cross-link content: %v", link)
	}
}

// TestProfileAndStatusHandlers: the HTTP surfaces serve valid JSON with
// the expected shape.
func TestProfileAndStatusHandlers(t *testing.T) {
	p := New(2, 64)
	p.Instrument(telemetry.NewRegistry())
	for iter := int64(0); iter < 6; iter++ {
		for rank := 0; rank < 2; rank++ {
			r := rec(iter, iter*1000, iter*1000+500, 300, 100+int64(rank)*50)
			p.Rank(rank).Commit(r)
		}
	}
	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/profile", nil))
	var prof Profile
	if err := json.Unmarshal(rr.Body.Bytes(), &prof); err != nil {
		t.Fatalf("profile not JSON: %v", err)
	}
	if prof.Summary.Ranks != 2 || len(prof.Blame) != 2 || prof.Build.Go == "" {
		t.Errorf("profile shape: %+v", prof.Summary)
	}
	rr = httptest.NewRecorder()
	p.StatusHandler(func() uint64 { return 7 }).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/status", nil))
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("status not JSON: %v", err)
	}
	if st.Ranks != 2 || st.TraceDropped != 7 || st.Version == "" {
		t.Errorf("status shape: %+v", st)
	}
}

// TestRenderTop: one frame renders every rank and the header.
func TestRenderTop(t *testing.T) {
	p := New(2, 64)
	for iter := int64(0); iter < 4; iter++ {
		for rank := 0; rank < 2; rank++ {
			p.Rank(rank).Commit(rec(iter, iter*1000, iter*1000+500, 300, 100+int64(rank)*200))
		}
	}
	var buf bytes.Buffer
	lines := p.RenderTop(&buf)
	out := buf.String()
	if lines < 4 || !strings.Contains(out, "rank") || !strings.Contains(out, "critical path") {
		t.Errorf("top frame (%d lines):\n%s", lines, out)
	}
}

// TestConcurrentCommitAndAnalyze: ranks committing while analysis runs —
// exercised under -race by the obs gate.
func TestConcurrentCommitAndAnalyze(t *testing.T) {
	p := New(4, 512)
	p.Instrument(telemetry.NewRegistry())
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := p.Rank(rank)
			for iter := int64(0); iter < 500; iter++ {
				c.Commit(rec(iter, iter*1000, iter*1000+500, 300, 100))
			}
		}(rank)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = p.Summary(false)
				_ = p.Offsets()
			}
		}
	}()
	wg.Wait()
	close(done)
	if s := p.Summary(true); s.Iterations != 500 {
		t.Errorf("final sweep folded %d, want 500", s.Iterations)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

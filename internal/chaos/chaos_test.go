package chaos

import (
	"errors"
	"math/bits"
	"testing"
	"time"

	"fftgrad/internal/comm"
)

// TestDeterministicSchedule: the drop/delay/dup decision for the N-th op
// of a rank is a pure function of the seed — two harnesses with the same
// seed agree op for op, and a different seed disagrees somewhere.
func TestDeterministicSchedule(t *testing.T) {
	decisions := func(seed int64) []bool {
		h := NewHarness(2, Config{Seed: seed, Drop: 0.3})
		tr := h.Wrap(comm.NewMesh(2).Endpoint(0))
		out := make([]bool, 200)
		for i := range out {
			out[i] = tr.roll(uint64(i), 0x01) < 0.3
		}
		return out
	}
	a, b := decisions(42), decisions(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed disagrees at op %d", i)
		}
	}
	c := decisions(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDropRate(t *testing.T) {
	mesh := comm.NewMesh(2)
	h := NewHarness(2, Config{Seed: 7, Drop: 0.5})
	src := h.Wrap(mesh.Endpoint(0))
	dst := mesh.Endpoint(1)
	const n = 400
	for i := 0; i < n; i++ {
		if err := src.Send(1, comm.Message{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for {
		if _, err := dst.Recv(50 * time.Millisecond); err != nil {
			break
		}
		got++
	}
	drops := int(h.Stats().Drops)
	if got+drops != n {
		t.Fatalf("%d delivered + %d dropped != %d sent", got, drops, n)
	}
	if drops < n/4 || drops > 3*n/4 {
		t.Fatalf("drop rate wildly off: %d of %d", drops, n)
	}
}

func TestCrashWindowAndRecovery(t *testing.T) {
	mesh := comm.NewMesh(2)
	h := NewHarness(2, Config{Seed: 1, Crashes: []CrashEvent{{Rank: 0, AtOp: 5, RecoverAfterOps: 10}}})
	tr := h.Wrap(mesh.Endpoint(0))
	// Ops 0..4 healthy.
	for i := 0; i < 5; i++ {
		if err := tr.Send(1, comm.Message{}); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if !tr.Down() {
		t.Fatal("should be inside the crash window at op 5")
	}
	// Ops 5..14 down.
	sawCrash := 0
	for i := 0; i < 10; i++ {
		if err := tr.Send(1, comm.Message{}); errors.Is(err, ErrCrashed) {
			sawCrash++
		}
	}
	if sawCrash != 10 {
		t.Fatalf("crashed ops = %d, want 10", sawCrash)
	}
	if tr.Down() {
		t.Fatal("should have recovered at op 15")
	}
	if err := tr.Send(1, comm.Message{}); err != nil {
		t.Fatalf("post-recovery send: %v", err)
	}
}

func TestPartitionDropsCrossTraffic(t *testing.T) {
	mesh := comm.NewMesh(4)
	h := NewHarness(4, Config{Seed: 3, Partition: &Partition{Ranks: []int{2, 3}, FromOp: 0, Ops: 0}})
	t02 := h.Wrap(mesh.Endpoint(0))
	if err := t02.Send(2, comm.Message{Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Endpoint(2).Recv(30 * time.Millisecond); err == nil {
		t.Fatal("cross-partition message delivered")
	}
	// Same-side traffic flows.
	if err := t02.Send(1, comm.Message{Payload: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Endpoint(1).Recv(time.Second); err != nil {
		t.Fatalf("same-side message lost: %v", err)
	}
	if h.Stats().Partitioned == 0 {
		t.Fatal("partition counter not incremented")
	}
}

func TestDelayDeliversLate(t *testing.T) {
	mesh := comm.NewMesh(2)
	h := NewHarness(2, Config{Seed: 9, DelayProb: 1, Delay: 30 * time.Millisecond})
	src := h.Wrap(mesh.Endpoint(0))
	dst := mesh.Endpoint(1)
	if err := src.Send(1, comm.Message{Payload: []byte("late")}); err != nil {
		t.Fatal(err)
	}
	msg, err := dst.Recv(2 * time.Second)
	if err != nil {
		t.Fatalf("delayed message never arrived: %v", err)
	}
	if string(msg.Payload) != "late" {
		t.Fatalf("payload corrupted: %q", msg.Payload)
	}
	if h.Stats().Delays != 1 {
		t.Fatalf("delays = %d, want 1", h.Stats().Delays)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	mesh := comm.NewMesh(2)
	h := NewHarness(2, Config{Seed: 11, Dup: 1})
	src := h.Wrap(mesh.Endpoint(0))
	dst := mesh.Endpoint(1)
	if err := src.Send(1, comm.Message{Seq: 5, Payload: []byte("twin")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		msg, err := dst.Recv(time.Second)
		if err != nil {
			t.Fatalf("copy %d missing: %v", i, err)
		}
		if msg.Seq != 5 || string(msg.Payload) != "twin" {
			t.Fatalf("copy %d corrupted: %+v", i, msg)
		}
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	mesh := comm.NewMesh(2)
	h := NewHarness(2, Config{Seed: 13, Corrupt: 1})
	src := h.Wrap(mesh.Endpoint(0))
	dst := mesh.Endpoint(1)
	orig := []byte{0x00, 0xFF, 0x55, 0xAA, 0x12, 0x34}
	sent := append([]byte(nil), orig...)
	if err := src.Send(1, comm.Message{Payload: sent}); err != nil {
		t.Fatal(err)
	}
	// Corruption copies before flipping — the sender's buffer (the
	// cluster's resend ring) must stay intact.
	for i := range sent {
		if sent[i] != orig[i] {
			t.Fatal("corruption mutated the sender's buffer")
		}
	}
	msg, err := dst.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	diffBits := 0
	for i := range orig {
		diffBits += bits.OnesCount8(msg.Payload[i] ^ orig[i])
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
	if h.Stats().Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", h.Stats().Corruptions)
	}
}

// TestCorruptDeterministic: which messages are corrupted, and which bit
// flips, is a pure function of the seed.
func TestCorruptDeterministic(t *testing.T) {
	run := func(seed int64) [][]byte {
		mesh := comm.NewMesh(2)
		h := NewHarness(2, Config{Seed: seed, Corrupt: 0.5})
		src := h.Wrap(mesh.Endpoint(0))
		dst := mesh.Endpoint(1)
		var out [][]byte
		for i := 0; i < 50; i++ {
			if err := src.Send(1, comm.Message{Seq: uint64(i), Payload: []byte{1, 2, 3, 4}}); err != nil {
				t.Fatal(err)
			}
			msg, err := dst.Recv(time.Second)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, append([]byte(nil), msg.Payload...))
		}
		return out
	}
	a, b := run(21), run(21)
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("same seed produced different corruption at message %d", i)
		}
	}
}

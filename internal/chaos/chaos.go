// Package chaos is a deterministic, seeded fault-injecting wrapper
// around any comm.Transport: message drop, delay, duplication, rank
// crash windows, and network partitions — the in-process test harness
// for every failure policy of internal/cluster.
//
// Determinism: whether the N-th send of rank r is dropped, delayed or
// duplicated is a pure function of (seed, r, N) via a splitmix64 hash —
// no shared RNG state, no lock, no dependence on goroutine interleaving.
// Crash windows are indexed by a rank's own operation counter and
// partitions by a global operation counter, so fault schedules track
// workload progress rather than wall-clock speed and reproduce across
// machines. (Wall-clock *interleavings* still vary; protocols are
// expected to be insensitive to them, which is exactly what the chaos
// property tests assert.)
package chaos

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"fftgrad/internal/comm"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// ErrCrashed is returned by a chaos endpoint whose rank is inside a
// crash window. The cluster runtime treats it as "this process is down":
// the member parks in its rejoin loop until the transport heals.
var ErrCrashed = errors.New("chaos: rank crashed")

// CrashEvent schedules one rank crash. The rank is down from its AtOp-th
// transport operation (sends + receives, counted per rank) for
// RecoverAfterOps further operations; RecoverAfterOps == 0 means it
// never recovers. While down, sends vanish, receives fail with
// ErrCrashed, and inbound traffic is dropped by the peer-side filter.
type CrashEvent struct {
	Rank            int
	AtOp            uint64
	RecoverAfterOps uint64
}

// StragglerEvent makes one rank persistently slow (not dead): every
// send it performs from its FromOp-th transport operation onward is
// delivered only after SlowBy — the permanent-straggler model that
// distinguishes the bounded-staleness mode (the fleet keeps its
// iteration rate) from strict BSP (every round waits out SlowBy). Ops
// bounds the window; 0 means the rank never speeds up again. Heartbeats
// are delayed too, but as long as SlowBy stays below the suspicion
// deadline the rank is classified straggler, never dead.
type StragglerEvent struct {
	Rank   int
	FromOp uint64
	Ops    uint64 // 0 = permanent
	SlowBy time.Duration
}

// Partition isolates Ranks from everyone else between global operation
// FromOp and FromOp+Ops (Ops == 0 means forever). Messages crossing the
// boundary are silently dropped in both directions.
type Partition struct {
	Ranks  []int
	FromOp uint64
	Ops    uint64 // 0 = unrecoverable
}

// Config is one chaos schedule.
type Config struct {
	Seed int64
	// Drop is the per-message loss probability.
	Drop float64
	// DelayProb is the probability a message is delayed; Delay is the
	// maximum injected delay (per-message uniform in (0, Delay]).
	DelayProb float64
	Delay     time.Duration
	// Dup is the per-message duplication probability.
	Dup float64
	// Corrupt is the per-message probability of a single bit flip at a
	// deterministic position in the payload — the silent-corruption model
	// exercised by the internal/guard CRC framing. A single flipped bit is
	// always caught by CRC32C, so with framing enabled every corruption
	// must surface as a rejected frame, never as a garbage gradient.
	Corrupt float64

	Crashes    []CrashEvent
	Stragglers []StragglerEvent
	Partition  *Partition
}

// Stats counts injected faults across all endpoints of one Harness.
type Stats struct {
	Drops       uint64
	Delays      uint64
	Dups        uint64
	Corruptions  uint64
	CrashedOps   uint64
	Partitioned  uint64
	StraggledOps uint64
}

// Harness owns the shared schedule state for one cluster's worth of
// chaos endpoints.
type Harness struct {
	cfg      Config
	globalOp atomic.Uint64
	inPart   []bool // rank -> member of the partitioned side
	tracer   *trace.Tracer

	drops, delays, dups, corruptions, crashedOps, partitioned, straggledOps atomic.Uint64
}

// AttachTracer marks injected incidents — crash-window entry/exit and
// payload bit flips — on the affected rank's trace track, so a chaos
// postmortem shows cause (injection) and effect (nacks, corrupt-frame
// drops, rejoins) on one timeline. Call before Wrap.
func (h *Harness) AttachTracer(tr *trace.Tracer) { h.tracer = tr }

// NewHarness builds the shared fault scheduler for p ranks.
func NewHarness(p int, cfg Config) *Harness {
	h := &Harness{cfg: cfg, inPart: make([]bool, p)}
	if cfg.Partition != nil {
		for _, r := range cfg.Partition.Ranks {
			if r >= 0 && r < p {
				h.inPart[r] = true
			}
		}
	}
	return h
}

// Stats returns the cumulative injected-fault counts.
func (h *Harness) Stats() Stats {
	return Stats{
		Drops:       h.drops.Load(),
		Delays:      h.delays.Load(),
		Dups:        h.dups.Load(),
		Corruptions: h.corruptions.Load(),
		CrashedOps:   h.crashedOps.Load(),
		Partitioned:  h.partitioned.Load(),
		StraggledOps: h.straggledOps.Load(),
	}
}

// Instrument exposes the injected-fault counters on reg.
func (h *Harness) Instrument(reg *telemetry.Registry) {
	reg.GaugeFunc("fftgrad_chaos_drops_total", "chaos-injected message drops",
		func() float64 { return float64(h.drops.Load()) })
	reg.GaugeFunc("fftgrad_chaos_delays_total", "chaos-injected message delays",
		func() float64 { return float64(h.delays.Load()) })
	reg.GaugeFunc("fftgrad_chaos_dups_total", "chaos-injected message duplications",
		func() float64 { return float64(h.dups.Load()) })
	reg.GaugeFunc("fftgrad_chaos_corruptions_total", "chaos-injected single-bit payload flips",
		func() float64 { return float64(h.corruptions.Load()) })
	reg.GaugeFunc("fftgrad_chaos_crashed_ops_total", "transport ops refused inside crash windows",
		func() float64 { return float64(h.crashedOps.Load()) })
	reg.GaugeFunc("fftgrad_chaos_partitioned_total", "messages dropped at a partition boundary",
		func() float64 { return float64(h.partitioned.Load()) })
	reg.GaugeFunc("fftgrad_chaos_straggled_ops_total", "sends slowed by a straggler window",
		func() float64 { return float64(h.straggledOps.Load()) })
}

// Wrap returns tr with this harness's fault schedule applied.
func (h *Harness) Wrap(tr comm.Transport) *Transport {
	return &Transport{h: h, inner: tr, rank: tr.RankID(), tc: h.tracer.Rank(tr.RankID())}
}

// Transport is one rank's fault-injected view of an inner transport.
type Transport struct {
	h       *Harness
	inner   comm.Transport
	rank    int
	ops     atomic.Uint64 // this rank's operation counter
	tc      *trace.Ctx
	wasDown atomic.Bool // last observed crash-window state, for edge events
}

// noteCrashEdge records crash-window transitions (entry and exit) as
// instant events, once per edge rather than once per refused op.
func (t *Transport) noteCrashEdge(op uint64, down bool) {
	if t.tc == nil {
		return
	}
	if t.wasDown.CompareAndSwap(!down, down) {
		if down {
			t.tc.Instant(trace.OpCrash, int64(op))
		} else {
			t.tc.Instant(trace.OpRecover, int64(op))
		}
	}
}

// RankID implements comm.Transport.
func (t *Transport) RankID() int { return t.inner.RankID() }

// P implements comm.Transport.
func (t *Transport) P() int { return t.inner.P() }

// Close implements comm.Transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Down reports whether the rank is currently inside a crash window (at
// its present op counter, without advancing it).
func (t *Transport) Down() bool { return t.crashedAt(t.ops.Load()) }

func (t *Transport) crashedAt(op uint64) bool {
	for _, c := range t.h.cfg.Crashes {
		if c.Rank != t.rank {
			continue
		}
		if op >= c.AtOp && (c.RecoverAfterOps == 0 || op < c.AtOp+c.RecoverAfterOps) {
			return true
		}
	}
	return false
}

// stragglingBy returns how much rank's op-th send is slowed by an
// active straggler window (0 when the rank is at full speed).
func (t *Transport) stragglingBy(op uint64) time.Duration {
	for _, s := range t.h.cfg.Stragglers {
		if s.Rank != t.rank {
			continue
		}
		if op >= s.FromOp && (s.Ops == 0 || op < s.FromOp+s.Ops) {
			return s.SlowBy
		}
	}
	return 0
}

// partitioned reports whether src->dst crosses an active partition
// boundary at global op g.
func (h *Harness) partitionedAt(g uint64, src, dst int) bool {
	p := h.cfg.Partition
	if p == nil || g < p.FromOp {
		return false
	}
	if p.Ops != 0 && g >= p.FromOp+p.Ops {
		return false
	}
	return h.inPart[src] != h.inPart[dst]
}

// splitmix64 is the stateless per-message hash (same construction the
// stochastic quantizer uses for its counter-derived streams).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll returns a uniform [0,1) deterministic in (seed, rank, op, salt).
func (t *Transport) roll(op uint64, salt uint64) float64 {
	x := splitmix64(uint64(t.h.cfg.Seed) ^ uint64(t.rank)*0xA24BAED4963EE407 ^ op*0x9FB21C651E98DF25 ^ salt)
	return float64(x>>11) / float64(1<<53)
}

// Send implements comm.Transport with the fault schedule applied.
func (t *Transport) Send(to int, m comm.Message) error {
	op := t.ops.Add(1) - 1
	g := t.h.globalOp.Add(1) - 1
	if t.crashedAt(op) {
		t.h.crashedOps.Add(1)
		t.noteCrashEdge(op, true)
		return &comm.OpError{Op: "send", Rank: t.rank, Peer: to, Err: ErrCrashed}
	}
	t.noteCrashEdge(op, false)
	if t.h.partitionedAt(g, t.rank, to) {
		t.h.partitioned.Add(1)
		return nil // crosses the partition: silently lost
	}
	if t.h.cfg.Drop > 0 && t.roll(op, 0x01) < t.h.cfg.Drop {
		t.h.drops.Add(1)
		return nil // lost on the wire
	}
	if t.h.cfg.Corrupt > 0 && len(m.Payload) > 0 && t.roll(op, 0x05) < t.h.cfg.Corrupt {
		t.h.corruptions.Add(1)
		// Flip one deterministic bit. The payload is copied first: the
		// sender's buffer must stay pristine — the wire corrupted the
		// frame, not the process that produced it (the nack/resend path
		// relies on the sender still holding the good bytes).
		bit := splitmix64(uint64(t.h.cfg.Seed)^uint64(t.rank)*0xA24BAED4963EE407^op*0x9FB21C651E98DF25^0x06) % uint64(len(m.Payload)*8)
		m.Payload = append([]byte(nil), m.Payload...)
		m.Payload[bit/8] ^= 1 << (bit % 8)
		t.tc.Instant(trace.OpChaosCorrupt, int64(to))
	}
	dup := t.h.cfg.Dup > 0 && t.roll(op, 0x02) < t.h.cfg.Dup
	// A straggler window adds a fixed per-send delay on top of any
	// randomly scheduled one — the rank is slow, not lossy.
	slow := t.stragglingBy(op)
	if slow > 0 {
		t.h.straggledOps.Add(1)
	}
	delayed := t.h.cfg.DelayProb > 0 && t.h.cfg.Delay > 0 && t.roll(op, 0x03) < t.h.cfg.DelayProb
	if delayed || slow > 0 {
		if delayed {
			t.h.delays.Add(1)
		}
		// Deterministic per-message delay magnitude; delivery happens off
		// the sender's goroutine so a slow link never stalls the sender.
		// The payload is copied NOW: once Send returns, the sender may
		// reuse its buffer, and a late delivery must carry the bytes as
		// they were at send time, not whatever the buffer holds later.
		d := slow
		if delayed {
			d += time.Duration(t.roll(op, 0x04) * float64(t.h.cfg.Delay))
		}
		inner, msg := t.inner, m
		msg.Payload = append([]byte(nil), m.Payload...)
		go func() {
			time.Sleep(d)
			_ = inner.Send(to, msg)
			if dup {
				_ = inner.Send(to, msg)
			}
		}()
		if dup {
			t.h.dups.Add(1)
		}
		return nil
	}
	if err := t.inner.Send(to, m); err != nil {
		return err
	}
	if dup {
		t.h.dups.Add(1)
		return t.inner.Send(to, m)
	}
	return nil
}

// Recv implements comm.Transport. Inside a crash window it refuses with
// ErrCrashed and discards anything queued (a rebooted process has no
// memory of frames that arrived while it was down).
func (t *Transport) Recv(timeout time.Duration) (comm.Message, error) {
	op := t.ops.Add(1) - 1
	if t.crashedAt(op) {
		t.h.crashedOps.Add(1)
		t.noteCrashEdge(op, true)
		// Drain without delivering, then report the crash.
		for {
			if _, err := t.inner.Recv(0); err != nil {
				break
			}
		}
		return comm.Message{}, &comm.OpError{Op: "recv", Rank: t.rank, Peer: -1, Err: ErrCrashed}
	}
	t.noteCrashEdge(op, false)
	return t.inner.Recv(timeout)
}

// String describes the schedule (for logs and run summaries).
func (c Config) String() string {
	s := fmt.Sprintf("chaos{seed=%d drop=%.2g delay=%.2g@%s dup=%.2g corrupt=%.2g", c.Seed, c.Drop, c.DelayProb, c.Delay, c.Dup, c.Corrupt)
	for _, cr := range c.Crashes {
		s += fmt.Sprintf(" crash[r%d@%d+%d]", cr.Rank, cr.AtOp, cr.RecoverAfterOps)
	}
	for _, st := range c.Stragglers {
		s += fmt.Sprintf(" straggle[r%d@%d+%d by %s]", st.Rank, st.FromOp, st.Ops, st.SlowBy)
	}
	if c.Partition != nil {
		s += fmt.Sprintf(" part[%v@%d+%d]", c.Partition.Ranks, c.Partition.FromOp, c.Partition.Ops)
	}
	return s + "}"
}

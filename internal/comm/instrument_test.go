package comm

import (
	"fmt"
	"sync"
	"testing"

	"fftgrad/internal/telemetry"
)

// TestClusterWireCounters checks the in-process transport's logical
// bytes-on-wire accounting against the analytic ring-schedule volumes
// that netsim prices: allgather tx = (p−1)·m per rank, allreduce moves
// 2(p−1)·(n/p)·4 bytes per rank, broadcast root tx = (p−1)·m.
func TestClusterWireCounters(t *testing.T) {
	const p, m = 4, 1000
	reg := telemetry.NewRegistry()
	cl := NewCluster(p)
	cl.Instrument(reg)

	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cm := cl.Rank(rank)
			data := make([]byte, m)
			cm.Allgather(data)
			x := make([]float32, 64*p)
			cm.Allreduce(x)
			cm.Broadcast(data, 0)
		}(r)
	}
	wg.Wait()

	snap := reg.Snapshot()
	tx := snap[`fftgrad_comm_tx_bytes_total{transport="inproc"}`]
	rx := snap[`fftgrad_comm_rx_bytes_total{transport="inproc"}`]
	// Allgather: p ranks × (p−1)·m. Allreduce: p ranks × 2(p−1) steps ×
	// 64·4 bytes. Broadcast: root sends (p−1)·m, peers receive it.
	wantAG := float64(p * (p - 1) * m)
	wantAR := float64(p * 2 * (p - 1) * 64 * 4)
	wantBC := float64((p - 1) * m)
	want := wantAG + wantAR + wantBC
	if tx != want {
		t.Errorf("inproc tx = %.0f, want %.0f", tx, want)
	}
	if rx != want {
		t.Errorf("inproc rx = %.0f, want %.0f", rx, want)
	}
}

// TestTCPWireCounters checks the TCP transport counts actual frame bytes
// (4-byte header + payload) and that cluster-wide tx equals rx.
func TestTCPWireCounters(t *testing.T) {
	const p, m = 3, 512
	comms, err := StartLocalTCPCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	reg := telemetry.NewRegistry()
	for _, c := range comms {
		c.Instrument(reg)
	}

	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			data := make([]byte, m)
			if _, err := comms[rank].Allgather(data); err != nil {
				errs[rank] = fmt.Errorf("allgather: %w", err)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	tx := snap[`fftgrad_comm_tx_bytes_total{transport="tcp"}`]
	rx := snap[`fftgrad_comm_rx_bytes_total{transport="tcp"}`]
	want := float64(p * (p - 1) * (m + 4)) // full mesh: each rank frames m bytes to p−1 peers
	if tx != want {
		t.Errorf("tcp tx = %.0f, want %.0f", tx, want)
	}
	if rx != want {
		t.Errorf("tcp rx = %.0f, want %.0f", rx, want)
	}
}

package comm

import (
	"math/rand"
	"sync"
	"testing"

	"fftgrad/internal/trace"
)

// TestAllreduceRaggedChunks exercises the pad-once buffer rotation in the
// ring allreduce at non-power-of-two P with chunk sizes that do not
// divide evenly: every in-flight buffer must carry maxChunk capacity so
// adopting a neighbor's buffer for a larger outgoing chunk never
// reallocates or truncates.
func TestAllreduceRaggedChunks(t *testing.T) {
	for _, p := range []int{6, 12} {
		// n % p != 0 in every case, so chunks are ragged and rotate
		// through different sizes at every ring step.
		for _, n := range []int{997, 1000, 6*64 + 1, p + 1} {
			c := NewCluster(p)
			bufs := make([][]float32, p)
			want := make([]float64, n)
			r := rand.New(rand.NewSource(int64(p*100000 + n)))
			for rank := 0; rank < p; rank++ {
				bufs[rank] = make([]float32, n)
				for i := range bufs[rank] {
					bufs[rank][i] = float32(r.Intn(100)) // integers: exact sums
					want[i] += float64(bufs[rank][i])
				}
			}
			runRanks(c, func(cm *Comm) {
				// Repeat so adopted buffers from round k feed round k+1.
				// After round 0 every rank holds the sum, so round r
				// multiplies by p again: expected = want · p^(rounds−1).
				for round := 0; round < 3; round++ {
					cm.Allreduce(bufs[cm.RankID()])
				}
			})
			for i := range want {
				w := want[i]
				for round := 1; round < 3; round++ {
					w *= float64(p)
				}
				if float64(bufs[0][i]) != w {
					t.Fatalf("p=%d n=%d idx %d: %g want %g", p, n, i, bufs[0][i], w)
				}
			}
		}
	}
}

// TestTracedCollectivesZeroAllocP16 pins the zero-allocation guarantee
// for Broadcast and AllgatherInto on the steady-state path at P=16 with
// a tracer attached — the configuration dist runs in production. Ranks
// are persistent goroutines stepped over channels so goroutine launches
// do not pollute the measurement.
func TestTracedCollectivesZeroAllocP16(t *testing.T) {
	const p = 16
	c := NewCluster(p)
	tr := trace.New(p, 4096)

	msgs := make([][]byte, p)
	dsts := make([][][]byte, p)
	for r := range msgs {
		msgs[r] = make([]byte, 128+r)
		dsts[r] = make([][]byte, 0, p)
	}

	start := make(chan struct{})
	done := make(chan struct{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cm := c.Rank(rank)
			cm.AttachTrace(tr.Rank(rank))
			for {
				select {
				case <-stop:
					return
				case <-start:
				}
				dsts[rank] = cm.AllgatherInto(dsts[rank], msgs[rank])
				cm.Broadcast(msgs[rank], 3)
				done <- struct{}{}
			}
		}(r)
	}
	step := func() {
		for i := 0; i < p; i++ {
			start <- struct{}{}
		}
		for i := 0; i < p; i++ {
			<-done
		}
	}
	step() // warm-up: first AllgatherInto may grow dst, pools fill

	allocs := testing.AllocsPerRun(20, step)
	close(stop)
	wg.Wait()

	if allocs != 0 {
		t.Fatalf("traced P=%d collective round allocated %.1f times, want 0", p, allocs)
	}
	for rank := 0; rank < p; rank++ {
		if len(dsts[rank]) != p {
			t.Fatalf("rank %d allgather result has %d entries, want %d", rank, len(dsts[rank]), p)
		}
		for j := range dsts[rank] {
			if len(dsts[rank][j]) != 128+j {
				t.Fatalf("rank %d entry %d has %d bytes, want %d", rank, j, len(dsts[rank][j]), 128+j)
			}
		}
	}
	// The tracer must actually have recorded barrier arrival spans.
	barriers := 0
	for _, e := range tr.Events() {
		if e.Op == trace.OpBarrier {
			barriers++
		}
	}
	if barriers == 0 {
		t.Fatal("no OpBarrier spans recorded despite attached tracer")
	}
}

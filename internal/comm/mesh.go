package comm

import (
	"sync/atomic"
	"time"
)

// Transport is rank-scoped, deadline-aware point-to-point messaging — the
// substrate the failure-aware cluster runtime (internal/cluster) builds
// its membership and exchange protocols on. Unlike the barrier-based
// collectives above, a Transport never blocks on a dead peer: every Recv
// takes a timeout and sends to vanished endpoints fail or vanish instead
// of wedging the caller. The chaos harness (internal/chaos) wraps any
// Transport to inject faults.
type Transport interface {
	// RankID returns the local rank.
	RankID() int
	// P returns the cluster size.
	P() int
	// Send delivers m to rank `to`. The transport owns m.Payload after the
	// call returns (implementations copy), so callers may reuse their
	// buffers immediately. Delivery is best-effort: a lost message
	// surfaces as the receiver's Recv timeout, not a send error.
	Send(to int, m Message) error
	// Recv returns the next inbound message, waiting at most timeout.
	// Expiry returns an *OpError wrapping ErrTimeout.
	Recv(timeout time.Duration) (Message, error)
	// Close tears the endpoint down; blocked Recvs return ErrClosed.
	Close() error
}

// Message is one point-to-point datagram. Kind and Seq are opaque to the
// transport; the cluster protocol assigns meanings (data, heartbeat,
// nack, sync, ...).
type Message struct {
	From    int
	Seq     uint64
	Kind    uint8
	Payload []byte
}

// Mesh is the in-process Transport: one buffered mailbox per rank. It
// models a full mesh of lossless-but-unordered-latency links; loss,
// delay and partitions come from wrapping endpoints with internal/chaos.
type Mesh struct {
	p     int
	boxes []chan Message
	done  []chan struct{} // closed when the endpoint closes
}

// mailboxDepth bounds each rank's inbound queue. The cluster runtime
// drains its transport continuously from a dedicated receiver goroutine,
// so the queue only has to absorb short bursts (heartbeats during a
// compute phase, duplicated retransmissions). Overflow drops the message
// — the same observable behaviour as network loss, repaired by the
// retry/nack protocol above.
const mailboxDepth = 1024

// NewMesh creates a p-rank in-process mesh.
func NewMesh(p int) *Mesh {
	if p < 1 {
		panic("comm: mesh needs at least one rank")
	}
	m := &Mesh{p: p, boxes: make([]chan Message, p), done: make([]chan struct{}, p)}
	for i := range m.boxes {
		m.boxes[i] = make(chan Message, mailboxDepth)
		m.done[i] = make(chan struct{})
	}
	return m
}

// Endpoint returns rank's endpoint. Each endpoint must be used by one
// logical owner (the cluster member); Send and Recv are individually
// goroutine-safe.
func (m *Mesh) Endpoint(rank int) *MeshEndpoint {
	if rank < 0 || rank >= m.p {
		panic("comm: mesh rank out of range")
	}
	return &MeshEndpoint{mesh: m, rank: rank}
}

// MeshEndpoint is one rank's handle on a Mesh.
type MeshEndpoint struct {
	mesh   *Mesh
	rank   int
	closed atomic.Bool
}

// RankID returns this endpoint's rank.
func (e *MeshEndpoint) RankID() int { return e.rank }

// P returns the mesh size.
func (e *MeshEndpoint) P() int { return e.mesh.p }

// Send implements Transport. The payload is copied, so the caller keeps
// ownership of its buffer. Sends to closed or saturated mailboxes are
// silently dropped — exactly how a network loses frames to a dead host or
// a full queue; the receiver-side timeout surfaces it.
func (e *MeshEndpoint) Send(to int, m Message) error {
	if e.closed.Load() {
		return &OpError{Op: "send", Rank: e.rank, Peer: to, Err: ErrClosed}
	}
	if to < 0 || to >= e.mesh.p {
		return &OpError{Op: "send", Rank: e.rank, Peer: to, Err: ErrPeerDown}
	}
	m.From = e.rank
	if m.Payload != nil {
		m.Payload = append([]byte(nil), m.Payload...)
	}
	select {
	case <-e.mesh.done[to]:
		return nil // peer closed: frame vanishes on the floor
	case e.mesh.boxes[to] <- m:
		return nil
	default:
		return nil // mailbox full: dropped like any congested link
	}
}

// Recv implements Transport.
func (e *MeshEndpoint) Recv(timeout time.Duration) (Message, error) {
	if e.closed.Load() {
		return Message{}, &OpError{Op: "recv", Rank: e.rank, Peer: -1, Err: ErrClosed}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg := <-e.mesh.boxes[e.rank]:
		return msg, nil
	case <-e.mesh.done[e.rank]:
		return Message{}, &OpError{Op: "recv", Rank: e.rank, Peer: -1, Err: ErrClosed}
	case <-timer.C:
		return Message{}, &OpError{Op: "recv", Rank: e.rank, Peer: -1, Err: ErrTimeout}
	}
}

// Close implements Transport. Idempotent.
func (e *MeshEndpoint) Close() error {
	if e.closed.CompareAndSwap(false, true) {
		close(e.mesh.done[e.rank])
	}
	return nil
}

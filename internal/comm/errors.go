package comm

import (
	"errors"
	"fmt"
	"net"
)

// Typed transport errors. The cluster runtime's retry loop needs to tell
// transient faults (a timed-out read on a flaky link — retry with
// backoff) from structural ones (a closed endpoint, a crashed peer —
// escalate to suspicion / view change). Every error surfaced by the
// transports wraps one of these sentinels so callers classify with
// errors.Is instead of string matching.
var (
	// ErrTimeout marks a deadline expiry: a frame read/write that hit its
	// deadline, a mesh Recv that drained nothing in time, or a chaos-
	// injected message loss. Retryable.
	ErrTimeout = errors.New("comm: timeout")
	// ErrClosed marks an operation on an endpoint after Close. Terminal.
	ErrClosed = errors.New("comm: endpoint closed")
	// ErrPeerDown marks a send to an endpoint known to be gone (closed
	// mailbox, broken connection). Not retryable on its own; recovery goes
	// through the cluster layer's suspicion and rejoin protocol.
	ErrPeerDown = errors.New("comm: peer down")
	// ErrCorrupt marks a frame that failed an integrity check (bad magic,
	// unknown version, CRC mismatch). Retransmitting the same bytes cannot
	// help, but the payload itself is recoverable: the cluster layer treats
	// a corrupt frame exactly like a lost one and repairs it through the
	// nack/resend path, which fetches a fresh copy from the sender.
	ErrCorrupt = errors.New("comm: corrupt frame")
)

// OpError decorates a transport error with the operation and the ranks
// involved, preserving the wrapped sentinel for errors.Is and net.Error
// timeouts for errors.As.
type OpError struct {
	Op   string // "send", "recv", "dial", "accept", "read", "write"
	Rank int    // local rank
	Peer int    // remote rank, -1 when unknown
	Err  error
}

func (e *OpError) Error() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("comm: rank %d %s (peer %d): %v", e.Rank, e.Op, e.Peer, e.Err)
	}
	return fmt.Sprintf("comm: rank %d %s: %v", e.Rank, e.Op, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// Timeout reports whether the wrapped error is a deadline expiry, either
// the package sentinel or a net.Error timeout.
func (e *OpError) Timeout() bool {
	if errors.Is(e.Err, ErrTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(e.Err, &ne) && ne.Timeout()
}

// IsRetryable reports whether err is transient: a timeout (deadline
// expiry or injected loss) that a bounded-backoff retry may clear.
// Closed endpoints and downed peers are not retryable — those resolve
// through the cluster membership protocol, not retransmission.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTimeout) {
		return true
	}
	var oe *OpError
	if errors.As(err, &oe) && oe.Timeout() {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

package comm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// runRanks executes body on every rank concurrently and waits.
func runRanks(c *Cluster, body func(cm *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < c.P(); r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(c.Rank(rank))
		}(r)
	}
	wg.Wait()
}

func TestAllgatherOrder(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		c := NewCluster(p)
		results := make([][][]byte, p)
		runRanks(c, func(cm *Comm) {
			msg := []byte(fmt.Sprintf("rank-%d", cm.RankID()))
			results[cm.RankID()] = cm.Allgather(msg)
		})
		for r := 0; r < p; r++ {
			if len(results[r]) != p {
				t.Fatalf("p=%d rank %d got %d messages", p, r, len(results[r]))
			}
			for s := 0; s < p; s++ {
				want := fmt.Sprintf("rank-%d", s)
				if string(results[r][s]) != want {
					t.Fatalf("p=%d rank %d slot %d = %q", p, r, s, results[r][s])
				}
			}
		}
	}
}

func TestAllgatherRepeated(t *testing.T) {
	c := NewCluster(4)
	runRanks(c, func(cm *Comm) {
		for round := 0; round < 50; round++ {
			msg := []byte{byte(cm.RankID()), byte(round)}
			got := cm.Allgather(msg)
			for s := 0; s < 4; s++ {
				if got[s][0] != byte(s) || got[s][1] != byte(round) {
					t.Errorf("round %d rank %d slot %d corrupted: %v", round, cm.RankID(), s, got[s])
					return
				}
			}
		}
	})
}

func TestBroadcast(t *testing.T) {
	c := NewCluster(5)
	var mu sync.Mutex
	seen := map[int]string{}
	runRanks(c, func(cm *Comm) {
		var payload []byte
		if cm.RankID() == 2 {
			payload = []byte("from-root")
		}
		got := cm.Broadcast(payload, 2)
		mu.Lock()
		seen[cm.RankID()] = string(got)
		mu.Unlock()
	})
	for r := 0; r < 5; r++ {
		if seen[r] != "from-root" {
			t.Fatalf("rank %d got %q", r, seen[r])
		}
	}
}

func TestAllreduceSums(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for _, n := range []int{1, 2, p, 100, 1000} {
			c := NewCluster(p)
			bufs := make([][]float32, p)
			want := make([]float64, n)
			r := rand.New(rand.NewSource(int64(p*1000 + n)))
			for rank := 0; rank < p; rank++ {
				bufs[rank] = make([]float32, n)
				for i := range bufs[rank] {
					bufs[rank][i] = float32(r.Intn(100)) // integers: exact sums
					want[i] += float64(bufs[rank][i])
				}
			}
			runRanks(c, func(cm *Comm) {
				cm.Allreduce(bufs[cm.RankID()])
			})
			for rank := 0; rank < p; rank++ {
				for i := range bufs[rank] {
					if float64(bufs[rank][i]) != want[i] {
						t.Fatalf("p=%d n=%d rank %d idx %d: %g want %g",
							p, n, rank, i, bufs[rank][i], want[i])
					}
				}
			}
		}
	}
}

func TestAllreduceRepeated(t *testing.T) {
	p := 4
	c := NewCluster(p)
	runRanks(c, func(cm *Comm) {
		for round := 1; round <= 30; round++ {
			x := make([]float32, 64)
			for i := range x {
				x[i] = float32(cm.RankID() + round)
			}
			cm.Allreduce(x)
			want := float32(0)
			for r := 0; r < p; r++ {
				want += float32(r + round)
			}
			for i := range x {
				if x[i] != want {
					t.Errorf("round %d rank %d idx %d: %g want %g", round, cm.RankID(), i, x[i], want)
					return
				}
			}
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	p := 6
	c := NewCluster(p)
	var before, after sync.Map
	runRanks(c, func(cm *Comm) {
		before.Store(cm.RankID(), true)
		cm.Barrier()
		// At this point every rank must have stored before.
		for r := 0; r < p; r++ {
			if _, ok := before.Load(r); !ok {
				t.Errorf("rank %d passed barrier before rank %d arrived", cm.RankID(), r)
			}
		}
		after.Store(cm.RankID(), true)
	})
}

func TestRankValidation(t *testing.T) {
	c := NewCluster(2)
	for _, r := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d should panic", r)
				}
			}()
			c.Rank(r)
		}()
	}
}

func TestNewClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(0)
}

func BenchmarkAllreduce8x1M(b *testing.B) {
	p := 8
	c := NewCluster(p)
	bufs := make([][]float32, p)
	for r := range bufs {
		bufs[r] = make([]float32, 1<<20)
	}
	b.SetBytes(int64(p * (1 << 20) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c.Rank(rank).Allreduce(bufs[rank])
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkAllgather8x128K(b *testing.B) {
	p := 8
	c := NewCluster(p)
	msgs := make([][]byte, p)
	for r := range msgs {
		msgs[r] = make([]byte, 128<<10)
	}
	b.SetBytes(int64(p * (128 << 10)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c.Rank(rank).Allgather(msgs[rank])
			}(r)
		}
		wg.Wait()
	}
}

package comm

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"fftgrad/internal/telemetry"
)

// TCPComm is a rank endpoint whose collectives run over real TCP
// connections (a full mesh of point-to-point links), the transport a
// deployment across machines would use. The in-process Cluster and
// TCPComm expose the same collective semantics; tests assert they agree.
//
// With a Timeout set, every frame read/write arms a connection deadline
// first, so a crashed or wedged peer surfaces as a typed, retryable
// timeout (*OpError wrapping ErrTimeout, IsRetryable == true) instead of
// hanging the collective forever.
type TCPComm struct {
	rank    int
	p       int
	conns   []net.Conn // conns[j] = link to rank j (nil for j == rank)
	ln      net.Listener
	timeout time.Duration      // per-frame I/O deadline; 0 = block forever
	tx, rx  *telemetry.Counter // actual frame bytes on the wire (nil = off)
}

// SetTimeout arms a per-frame I/O deadline on every subsequent collective.
// Call before the first collective (the field is read concurrently by the
// per-peer sender goroutines afterwards). Zero restores blocking I/O.
func (c *TCPComm) SetTimeout(d time.Duration) { c.timeout = d }

// Instrument registers bytes-on-wire counters on reg and starts
// accounting every frame (4-byte length prefix + payload) this endpoint
// sends or receives. Call before the first collective.
func (c *TCPComm) Instrument(reg *telemetry.Registry) {
	c.tx = reg.Counter(`fftgrad_comm_tx_bytes_total{transport="tcp"}`,
		"Bytes sent on the TCP mesh transport, including frame headers.")
	c.rx = reg.Counter(`fftgrad_comm_rx_bytes_total{transport="tcp"}`,
		"Bytes received on the TCP mesh transport, including frame headers.")
}

// frame I/O: u32 little-endian length prefix + payload.

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// wrapNetErr types a raw socket error: net.Error timeouts become
// *OpError{Err: ErrTimeout} (retryable), everything else is wrapped
// as-is so errors.Is/As still reach the cause.
func (c *TCPComm) wrapNetErr(op string, peer int, err error) error {
	if err == nil {
		return nil
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return &OpError{Op: op, Rank: c.rank, Peer: peer, Err: fmt.Errorf("%w (%v)", ErrTimeout, err)}
	}
	return &OpError{Op: op, Rank: c.rank, Peer: peer, Err: err}
}

// writeFrameTo writes one frame to peer j, arming the write deadline when
// a timeout is configured.
func (c *TCPComm) writeFrameTo(j int, payload []byte) error {
	conn := c.conns[j]
	if conn == nil {
		return &OpError{Op: "write", Rank: c.rank, Peer: j, Err: ErrPeerDown}
	}
	if c.timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return c.wrapNetErr("write", j, err)
		}
	}
	return c.wrapNetErr("write", j, writeFrame(conn, payload))
}

// readFrameFrom reads one frame from peer j, arming the read deadline
// when a timeout is configured.
func (c *TCPComm) readFrameFrom(j int) ([]byte, error) {
	conn := c.conns[j]
	if conn == nil {
		return nil, &OpError{Op: "read", Rank: c.rank, Peer: j, Err: ErrPeerDown}
	}
	if c.timeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, c.wrapNetErr("read", j, err)
		}
	}
	payload, err := readFrame(conn)
	return payload, c.wrapNetErr("read", j, err)
}

// DialTCPCluster builds rank's endpoint of a p-rank mesh. addrs[i] is the
// listen address of rank i; the caller must have rank's listener already
// bound (pass it as ln) so that no connection races the listen call.
// Ranks dial every lower rank and accept from every higher rank; the
// dialer identifies itself with a 4-byte rank header.
func DialTCPCluster(rank, p int, addrs []string, ln net.Listener) (*TCPComm, error) {
	return DialTCPClusterContext(context.Background(), rank, p, addrs, ln)
}

// DialTCPClusterContext is DialTCPCluster honoring ctx: dials use
// DialContext, accepts poll a listener deadline so ctx cancellation (or
// expiry) aborts mesh construction with a typed error instead of
// blocking on a peer that never arrives.
func DialTCPClusterContext(ctx context.Context, rank, p int, addrs []string, ln net.Listener) (*TCPComm, error) {
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("comm: rank %d out of [0,%d)", rank, p)
	}
	if len(addrs) != p {
		return nil, fmt.Errorf("comm: %d addrs for %d ranks", len(addrs), p)
	}
	c := &TCPComm{rank: rank, p: p, conns: make([]net.Conn, p), ln: ln}

	var wg sync.WaitGroup
	errs := make([]error, 2)

	// Accept from higher ranks, polling a short accept deadline so ctx is
	// observed even while no peer is dialing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		dl, hasDeadline := ln.(interface{ SetDeadline(time.Time) error })
		for accepted := 0; accepted < p-1-rank; accepted++ {
			var conn net.Conn
			for {
				if err := ctx.Err(); err != nil {
					errs[0] = &OpError{Op: "accept", Rank: rank, Peer: -1, Err: err}
					return
				}
				if hasDeadline {
					_ = dl.SetDeadline(time.Now().Add(200 * time.Millisecond))
				}
				var err error
				conn, err = ln.Accept()
				if err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() && hasDeadline {
						continue // poll ctx and re-arm
					}
					errs[0] = c.wrapNetErr("accept", -1, err)
					return
				}
				break
			}
			if hasDeadline {
				_ = dl.SetDeadline(time.Time{})
			}
			if deadline, ok := ctx.Deadline(); ok {
				_ = conn.SetReadDeadline(deadline)
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				errs[0] = c.wrapNetErr("accept", -1, err)
				return
			}
			_ = conn.SetReadDeadline(time.Time{})
			peer := int(binary.LittleEndian.Uint32(hdr[:]))
			if peer <= rank || peer >= p {
				errs[0] = fmt.Errorf("comm: unexpected peer rank %d", peer)
				return
			}
			c.conns[peer] = conn
		}
	}()

	// Dial lower ranks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var d net.Dialer
		for j := 0; j < rank; j++ {
			conn, err := d.DialContext(ctx, "tcp", addrs[j])
			if err != nil {
				errs[1] = c.wrapNetErr("dial", j, err)
				return
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(rank))
			if deadline, ok := ctx.Deadline(); ok {
				_ = conn.SetWriteDeadline(deadline)
			}
			if _, err := conn.Write(hdr[:]); err != nil {
				errs[1] = c.wrapNetErr("dial", j, err)
				return
			}
			_ = conn.SetWriteDeadline(time.Time{})
			c.conns[j] = conn
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// StartLocalTCPCluster spins up a p-rank mesh on loopback and returns the
// connected endpoints, rank order preserved.
func StartLocalTCPCluster(p int) ([]*TCPComm, error) {
	lns := make([]net.Listener, p)
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	comms := make([]*TCPComm, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comms[rank], errs[rank] = DialTCPCluster(rank, p, addrs, lns[rank])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return comms, nil
}

// Close tears down all links and the listener.
func (c *TCPComm) Close() {
	for _, conn := range c.conns {
		if conn != nil {
			conn.Close()
		}
	}
	if c.ln != nil {
		c.ln.Close()
	}
}

// RankID returns this endpoint's rank.
func (c *TCPComm) RankID() int { return c.rank }

// P returns the cluster size.
func (c *TCPComm) P() int { return c.p }

// Allgather contributes data and returns every rank's contribution in
// rank order. Sends run on per-peer goroutines so large messages cannot
// deadlock against full TCP buffers.
func (c *TCPComm) Allgather(data []byte) ([][]byte, error) {
	out := make([][]byte, c.p)
	out[c.rank] = data
	var wg sync.WaitGroup
	sendErrs := make([]error, c.p)
	for j := 0; j < c.p; j++ {
		if j == c.rank {
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			if sendErrs[j] = c.writeFrameTo(j, data); sendErrs[j] == nil {
				c.tx.Add(c.rank, 4+len(data))
			}
		}(j)
	}
	var firstErr error
	for j := 0; j < c.p; j++ {
		if j == c.rank {
			continue
		}
		payload, err := c.readFrameFrom(j)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		c.rx.Add(c.rank, 4+len(payload))
		out[j] = payload
	}
	wg.Wait()
	for _, err := range sendErrs {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// Broadcast returns root's buffer on every rank.
func (c *TCPComm) Broadcast(data []byte, root int) ([]byte, error) {
	if c.rank == root {
		var wg sync.WaitGroup
		errs := make([]error, c.p)
		for j := 0; j < c.p; j++ {
			if j == root {
				continue
			}
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				if errs[j] = c.writeFrameTo(j, data); errs[j] == nil {
					c.tx.Add(c.rank, 4+len(data))
				}
			}(j)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	payload, err := c.readFrameFrom(root)
	if err == nil {
		c.rx.Add(c.rank, 4+len(payload))
	}
	return payload, err
}

// Barrier blocks until every rank has entered it (implemented as an
// empty-message allgather).
func (c *TCPComm) Barrier() error {
	_, err := c.Allgather(nil)
	return err
}

// Allreduce sums x element-wise across all ranks in place using the
// two-phase ring algorithm over the TCP links.
func (c *TCPComm) Allreduce(x []float32) error {
	p := c.p
	if p == 1 {
		return nil
	}
	n := len(x)
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = i * n / p
	}
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p

	sendChunk := func(idx int) error {
		lo, hi := bounds[idx], bounds[idx+1]
		buf := make([]byte, (hi-lo)*4)
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint32(buf[(i-lo)*4:], math.Float32bits(x[i]))
		}
		if err := c.writeFrameTo(next, buf); err != nil {
			return err
		}
		c.tx.Add(c.rank, 4+len(buf))
		return nil
	}
	recvChunk := func() ([]float32, error) {
		buf, err := c.readFrameFrom(prev)
		if err != nil {
			return nil, err
		}
		c.rx.Add(c.rank, 4+len(buf))
		vals := make([]float32, len(buf)/4)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		return vals, nil
	}

	for step := 0; step < p-1; step++ { // reduce-scatter
		sendIdx := (c.rank - step + p) % p
		errCh := make(chan error, 1)
		go func() { errCh <- sendChunk(sendIdx) }()
		recv, err := recvChunk()
		if err != nil {
			return err
		}
		if err := <-errCh; err != nil {
			return err
		}
		recvIdx := (c.rank - step - 1 + p) % p
		dst := x[bounds[recvIdx]:bounds[recvIdx+1]]
		for i, v := range recv {
			dst[i] += v
		}
	}
	for step := 0; step < p-1; step++ { // allgather
		sendIdx := (c.rank + 1 - step + p) % p
		errCh := make(chan error, 1)
		go func() { errCh <- sendChunk(sendIdx) }()
		recv, err := recvChunk()
		if err != nil {
			return err
		}
		if err := <-errCh; err != nil {
			return err
		}
		recvIdx := (c.rank - step + p) % p
		copy(x[bounds[recvIdx]:bounds[recvIdx+1]], recv)
	}
	return nil
}

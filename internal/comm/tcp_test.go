package comm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func startOrSkip(t *testing.T, p int) []*TCPComm {
	t.Helper()
	comms, err := StartLocalTCPCluster(p)
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	t.Cleanup(func() {
		for _, c := range comms {
			c.Close()
		}
	})
	return comms
}

func TestTCPAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		comms := startOrSkip(t, p)
		results := make([][][]byte, p)
		errs := make([]error, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				msg := []byte(fmt.Sprintf("tcp-rank-%d", rank))
				results[rank], errs[rank] = comms[rank].Allgather(msg)
			}(r)
		}
		wg.Wait()
		for r := 0; r < p; r++ {
			if errs[r] != nil {
				t.Fatalf("p=%d rank %d: %v", p, r, errs[r])
			}
			for s := 0; s < p; s++ {
				want := fmt.Sprintf("tcp-rank-%d", s)
				if string(results[r][s]) != want {
					t.Fatalf("p=%d rank %d slot %d = %q", p, r, s, results[r][s])
				}
			}
		}
	}
}

func TestTCPAllgatherLargeMessages(t *testing.T) {
	// Messages far larger than socket buffers: the per-peer send
	// goroutines must prevent deadlock.
	p := 3
	comms := startOrSkip(t, p)
	const size = 4 << 20
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			msg := bytes.Repeat([]byte{byte(rank + 1)}, size)
			got, err := comms[rank].Allgather(msg)
			if err != nil {
				errs[rank] = err
				return
			}
			for s := 0; s < p; s++ {
				if len(got[s]) != size || got[s][0] != byte(s+1) || got[s][size-1] != byte(s+1) {
					errs[rank] = fmt.Errorf("slot %d corrupted", s)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTCPBroadcast(t *testing.T) {
	p := 4
	comms := startOrSkip(t, p)
	var wg sync.WaitGroup
	results := make([][]byte, p)
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var payload []byte
			if rank == 1 {
				payload = []byte("hello-from-1")
			}
			results[rank], errs[rank] = comms[rank].Broadcast(payload, 1)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatal(errs[r])
		}
		if string(results[r]) != "hello-from-1" {
			t.Fatalf("rank %d got %q", r, results[r])
		}
	}
}

func TestTCPBarrier(t *testing.T) {
	p := 5
	comms := startOrSkip(t, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				if err := comms[rank].Barrier(); err != nil {
					t.Errorf("rank %d round %d: %v", rank, round, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestTCPAllreduceMatchesInProcess(t *testing.T) {
	for _, p := range []int{2, 3, 5} {
		comms := startOrSkip(t, p)
		n := 1000
		r := rand.New(rand.NewSource(int64(p)))
		tcpBufs := make([][]float32, p)
		memBufs := make([][]float32, p)
		for rank := 0; rank < p; rank++ {
			tcpBufs[rank] = make([]float32, n)
			memBufs[rank] = make([]float32, n)
			for i := range tcpBufs[rank] {
				v := float32(r.Intn(50))
				tcpBufs[rank][i] = v
				memBufs[rank][i] = v
			}
		}
		cl := NewCluster(p)
		var wg sync.WaitGroup
		for rank := 0; rank < p; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := comms[rank].Allreduce(tcpBufs[rank]); err != nil {
					t.Errorf("tcp rank %d: %v", rank, err)
				}
			}(rank)
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				cl.Rank(rank).Allreduce(memBufs[rank])
			}(rank)
		}
		wg.Wait()
		for rank := 0; rank < p; rank++ {
			for i := 0; i < n; i++ {
				if tcpBufs[rank][i] != memBufs[rank][i] {
					t.Fatalf("p=%d rank %d idx %d: tcp %g vs mem %g",
						p, rank, i, tcpBufs[rank][i], memBufs[rank][i])
				}
			}
		}
	}
}

func TestTCPRepeatedCollectives(t *testing.T) {
	p := 3
	comms := startOrSkip(t, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for round := 0; round < 25; round++ {
				msg := []byte{byte(rank), byte(round)}
				got, err := comms[rank].Allgather(msg)
				if err != nil {
					t.Errorf("rank %d round %d: %v", rank, round, err)
					return
				}
				for s := 0; s < p; s++ {
					if got[s][0] != byte(s) || got[s][1] != byte(round) {
						t.Errorf("rank %d round %d slot %d corrupted", rank, round, s)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestDialTCPClusterValidation(t *testing.T) {
	if _, err := DialTCPCluster(-1, 2, []string{"a", "b"}, nil); err == nil {
		t.Fatal("negative rank should fail")
	}
	if _, err := DialTCPCluster(0, 2, []string{"a"}, nil); err == nil {
		t.Fatal("addr count mismatch should fail")
	}
}

func BenchmarkTCPAllgather4x256K(b *testing.B) {
	comms, err := StartLocalTCPCluster(4)
	if err != nil {
		b.Skip(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	msg := make([]byte, 256<<10)
	b.SetBytes(int64(4 * len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if _, err := comms[rank].Allgather(msg); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

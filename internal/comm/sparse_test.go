package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"fftgrad/internal/pack"
)

// randSparse builds a sparse vector of length n with the given density.
func randSparse(n int, density float64, seed int64) *pack.Sparse {
	r := rand.New(rand.NewSource(seed))
	x := make([]float32, n)
	for i := range x {
		if r.Float64() < density {
			x[i] = float32(r.Intn(9) + 1) // small ints: exact float sums
		}
	}
	return pack.PackNonzero(x)
}

func TestSparseAllreduceMatchesDense(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, n := range []int{1, 64, 65, 1000, 10000} {
			c := NewCluster(p)
			inputs := make([]*pack.Sparse, p)
			want := make([]float64, n)
			for rank := 0; rank < p; rank++ {
				inputs[rank] = randSparse(n, 0.15, int64(p*100000+n*10+rank))
				dense := make([]float32, n)
				inputs[rank].Unpack(dense)
				for i, v := range dense {
					want[i] += float64(v)
				}
			}
			results := make([]*pack.Sparse, p)
			var wg sync.WaitGroup
			for rank := 0; rank < p; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					results[rank], _ = c.Rank(rank).SparseAllreduce(inputs[rank])
				}(rank)
			}
			wg.Wait()
			for rank := 0; rank < p; rank++ {
				dense := make([]float32, n)
				results[rank].Unpack(dense)
				for i := range dense {
					if float64(dense[i]) != want[i] {
						t.Fatalf("p=%d n=%d rank %d idx %d: %g want %g",
							p, n, rank, i, dense[i], want[i])
					}
				}
			}
		}
	}
}

func TestSparseAllreduceMaskIsUnion(t *testing.T) {
	p, n := 4, 1000
	c := NewCluster(p)
	inputs := make([]*pack.Sparse, p)
	union := make([]uint64, pack.BitmapWords(n))
	for rank := 0; rank < p; rank++ {
		inputs[rank] = randSparse(n, 0.1, int64(rank+77))
		for w := range union {
			union[w] |= inputs[rank].Bitmap[w]
		}
	}
	results := make([]*pack.Sparse, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], _ = c.Rank(rank).SparseAllreduce(inputs[rank])
		}(rank)
	}
	wg.Wait()
	for rank := 0; rank < p; rank++ {
		for w := range union {
			if results[rank].Bitmap[w] != union[w] {
				t.Fatalf("rank %d bitmap word %d: %x want union %x",
					rank, w, results[rank].Bitmap[w], union[w])
			}
		}
	}
}

// The collective's reason to exist: at moderate density it must move
// fewer bytes per rank than allgathering everyone's sparse message
// ((p−1)·msgBytes both directions for a symmetric comparison).
func TestSparseAllreduceVolumeBeatsAllgather(t *testing.T) {
	p, n := 8, 100000
	c := NewCluster(p)
	inputs := make([]*pack.Sparse, p)
	for rank := 0; rank < p; rank++ {
		inputs[rank] = randSparse(n, 0.15, int64(rank+5))
	}
	moved := make([]int, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			_, moved[rank] = c.Rank(rank).SparseAllreduce(inputs[rank])
		}(rank)
	}
	wg.Wait()
	allgatherBytes := (p - 1) * inputs[0].WireBytes()
	for rank := 0; rank < p; rank++ {
		if moved[rank] >= allgatherBytes {
			t.Fatalf("rank %d moved %d bytes, allgather would send %d",
				rank, moved[rank], allgatherBytes)
		}
	}
}

func TestSparseAllreduceRepeated(t *testing.T) {
	p, n := 3, 500
	c := NewCluster(p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cm := c.Rank(rank)
			for round := 0; round < 20; round++ {
				in := randSparse(n, 0.2, int64(rank*1000+round))
				out, _ := cm.SparseAllreduce(in)
				if out.N != n {
					t.Errorf("round %d rank %d: bad N %d", round, rank, out.N)
					return
				}
			}
		}(rank)
	}
	wg.Wait()
}

func TestSparseAllreduceEmptyInputs(t *testing.T) {
	p, n := 4, 256
	c := NewCluster(p)
	results := make([]*pack.Sparse, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], _ = c.Rank(rank).SparseAllreduce(pack.PackNonzero(make([]float32, n)))
		}(rank)
	}
	wg.Wait()
	for rank := 0; rank < p; rank++ {
		if got := popcountBitmap(results[rank].Bitmap); got != 0 {
			t.Fatalf("rank %d: empty inputs produced %d set bits", rank, got)
		}
	}
}

func TestUnionDensity(t *testing.T) {
	if got := UnionDensity(0.5, 1); got != 0.5 {
		t.Fatalf("p=1 union %g", got)
	}
	if got := UnionDensity(0.15, 8); math.Abs(got-(1-math.Pow(0.85, 8))) > 1e-12 {
		t.Fatalf("union density %g", got)
	}
	// Monotone in p.
	prev := 0.0
	for p := 1; p <= 32; p *= 2 {
		u := UnionDensity(0.1, p)
		if u <= prev {
			t.Fatalf("union density not monotone at p=%d", p)
		}
		prev = u
	}
}

func BenchmarkSparseAllreduce8(b *testing.B) {
	p, n := 8, 1<<20
	c := NewCluster(p)
	inputs := make([]*pack.Sparse, p)
	for rank := 0; rank < p; rank++ {
		inputs[rank] = randSparse(n, 0.15, int64(rank))
	}
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for rank := 0; rank < p; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c.Rank(rank).SparseAllreduce(inputs[rank])
			}(rank)
		}
		wg.Wait()
	}
}

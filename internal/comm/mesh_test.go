package comm

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func TestMeshSendRecv(t *testing.T) {
	mesh := NewMesh(3)
	a, b := mesh.Endpoint(0), mesh.Endpoint(1)
	payload := []byte("hello")
	if err := a.Send(1, Message{Seq: 7, Kind: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // sender may reuse its buffer immediately
	msg, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 0 || msg.Seq != 7 || msg.Kind != 2 || string(msg.Payload) != "hello" {
		t.Fatalf("got %+v payload %q", msg, msg.Payload)
	}
}

func TestMeshRecvTimeoutTyped(t *testing.T) {
	mesh := NewMesh(2)
	e := mesh.Endpoint(0)
	start := time.Now()
	_, err := e.Recv(20 * time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if !errors.Is(err, ErrTimeout) || !IsRetryable(err) {
		t.Fatalf("want retryable ErrTimeout, got %v", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) || !oe.Timeout() {
		t.Fatalf("want *OpError with Timeout(), got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestMeshCloseUnblocksRecv(t *testing.T) {
	mesh := NewMesh(2)
	e := mesh.Endpoint(1)
	done := make(chan error, 1)
	go func() {
		_, err := e.Recv(10 * time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	e.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	// Sends to a closed peer vanish instead of erroring (network semantics).
	if err := mesh.Endpoint(0).Send(1, Message{Payload: []byte("x")}); err != nil {
		t.Fatalf("send to closed peer: %v", err)
	}
}

func TestMeshManyToOne(t *testing.T) {
	const p = 5
	mesh := NewMesh(p)
	sink := mesh.Endpoint(0)
	var wg sync.WaitGroup
	for r := 1; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			e := mesh.Endpoint(rank)
			for s := 0; s < 20; s++ {
				if err := e.Send(0, Message{Seq: uint64(s), Payload: []byte{byte(rank)}}); err != nil {
					t.Errorf("rank %d: %v", rank, err)
				}
			}
		}(r)
	}
	wg.Wait()
	got := 0
	for {
		msg, err := sink.Recv(100 * time.Millisecond)
		if err != nil {
			break
		}
		if msg.From < 1 || msg.From >= p || msg.Payload[0] != byte(msg.From) {
			t.Fatalf("corrupt message %+v", msg)
		}
		got++
	}
	if got != (p-1)*20 {
		t.Fatalf("received %d of %d messages", got, (p-1)*20)
	}
}

// TestTCPReadTimeoutTyped: a peer that never sends must surface as a
// typed, retryable timeout instead of hanging the collective — the bug
// the failure-aware runtime exists to exploit.
func TestTCPReadTimeoutTyped(t *testing.T) {
	comms, err := StartLocalTCPCluster(2)
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	comms[0].SetTimeout(50 * time.Millisecond)
	start := time.Now()
	// Rank 1 never enters the collective: rank 0's read must time out.
	_, err = comms[0].Allgather([]byte("alone"))
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !IsRetryable(err) || !errors.Is(err, ErrTimeout) {
		t.Fatalf("want retryable ErrTimeout, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timed-out allgather took far too long")
	}
}

// TestTCPDeadPeerSurfaces: a crashed (closed) peer must produce an error,
// not a hang.
func TestTCPDeadPeerSurfaces(t *testing.T) {
	comms, err := StartLocalTCPCluster(2)
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer comms[0].Close()
	comms[1].Close() // peer crash
	comms[0].SetTimeout(100 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := comms[0].Allgather([]byte("to-the-dead"))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error from the dead peer")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("allgather against a dead peer hung")
	}
}

// TestDialTCPClusterContextCancel: mesh construction aborts when the
// context expires while waiting for peers that never dial.
func TestDialTCPClusterContextCancel(t *testing.T) {
	ln, err := listenLoopback()
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialTCPClusterContext(ctx, 0, 2, []string{ln.Addr().String(), "127.0.0.1:1"}, ln)
	if err == nil {
		t.Fatal("expected context expiry error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in chain, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation took far too long")
	}
}

package comm

import (
	"math/bits"

	"fftgrad/internal/pack"
)

// The paper's conclusion calls for "a bandwidth-efficient allreduce with
// sparse support" — it had to fall back to allgather because MPI/NCCL
// offer none, which makes every worker decompress p messages and pay
// (p−1)·m wire volume. SparseAllreduce is that missing collective: a ring
// reduce-scatter + allgather over sparse segments, where segments merge
// (bitmap OR + value add) as they travel, so each rank receives the
// already-reduced sum once.

// sparseSeg is one in-flight sparse segment of the index space: a bitmap
// over the segment's positions plus the surviving values in order.
type sparseSeg struct {
	bitmap []uint64
	values []float32
}

// wireBytes is the segment's on-the-wire size (bitmap + values), used by
// the volume accounting the tests and the netsim comparison rely on.
func (s *sparseSeg) wireBytes() int { return len(s.bitmap)*8 + len(s.values)*4 }

// SparseAllreduce sums sparse vectors (all of length s.N) element-wise
// across all ranks and returns the packed result (identical on every
// rank) plus the total bytes this rank moved over the ring. The union of
// all ranks' masks defines the result's mask; zero-valued sums are kept
// if any rank contributed the position (bitmap semantics, not value
// semantics).
func (c *Comm) SparseAllreduce(s *pack.Sparse) (*pack.Sparse, int) {
	cl := c.cluster
	p := cl.p
	n := s.N

	// Dense accumulator + mask for the local view.
	acc := make([]float32, n)
	s.Unpack(acc)
	mask := make([]uint64, len(s.Bitmap))
	copy(mask, s.Bitmap)

	if p == 1 {
		return pack.PackMask(acc, mask), 0
	}

	// Chunk i covers positions [bounds[i], bounds[i+1]). Boundaries are
	// aligned to 64-bit bitmap words so segments can slice the mask.
	bounds := make([]int, p+1)
	words := len(mask)
	for i := 0; i <= p; i++ {
		w := i * words / p
		bounds[i] = w * 64
	}
	bounds[p] = n

	extract := func(chunk int) sparseSeg {
		lo, hi := bounds[chunk], bounds[chunk+1]
		if lo >= hi {
			return sparseSeg{}
		}
		wlo, whi := lo>>6, (hi+63)>>6
		seg := sparseSeg{bitmap: append([]uint64(nil), mask[wlo:whi]...)}
		for i := lo; i < hi; i++ {
			if mask[i>>6]&(1<<(uint(i)&63)) != 0 {
				seg.values = append(seg.values, acc[i])
			}
		}
		return seg
	}
	mergeAdd := func(chunk int, seg sparseSeg) {
		lo, hi := bounds[chunk], bounds[chunk+1]
		if lo >= hi {
			return
		}
		wlo := lo >> 6
		vi := 0
		for i := lo; i < hi; i++ {
			if seg.bitmap[(i>>6)-wlo]&(1<<(uint(i)&63)) != 0 {
				acc[i] += seg.values[vi]
				vi++
			}
		}
		for w := range seg.bitmap {
			mask[wlo+w] |= seg.bitmap[w]
		}
	}
	replace := func(chunk int, seg sparseSeg) {
		lo, hi := bounds[chunk], bounds[chunk+1]
		if lo >= hi {
			return
		}
		wlo := lo >> 6
		vi := 0
		for i := lo; i < hi; i++ {
			if seg.bitmap[(i>>6)-wlo]&(1<<(uint(i)&63)) != 0 {
				acc[i] = seg.values[vi]
				vi++
			} else {
				acc[i] = 0
			}
		}
		for w := range seg.bitmap {
			mask[wlo+w] = seg.bitmap[w]
		}
	}

	next := cl.sparseRing[(c.rank+1)%p]
	prev := cl.sparseRing[c.rank]
	moved := 0

	// Phase 1: reduce-scatter. After p−1 steps, rank r holds the complete
	// sum of chunk (r+1) mod p.
	for step := 0; step < p-1; step++ {
		sendIdx := (c.rank - step + p) % p
		seg := extract(sendIdx)
		moved += seg.wireBytes()
		cl.tx.Add(c.rank, seg.wireBytes())
		next <- seg
		recv := <-prev
		cl.rx.Add(c.rank, recv.wireBytes())
		recvIdx := (c.rank - step - 1 + p) % p
		mergeAdd(recvIdx, recv)
	}
	// Phase 2: allgather the reduced chunks.
	for step := 0; step < p-1; step++ {
		sendIdx := (c.rank + 1 - step + p) % p
		seg := extract(sendIdx)
		moved += seg.wireBytes()
		cl.tx.Add(c.rank, seg.wireBytes())
		next <- seg
		recv := <-prev
		cl.rx.Add(c.rank, recv.wireBytes())
		recvIdx := (c.rank - step + p) % p
		replace(recvIdx, recv)
	}

	return pack.PackMask(acc, mask), moved
}

// UnionDensity returns the expected fraction of positions present in the
// union of p independent random masks of density d — the saturation that
// limits how much a sparse allreduce can save once many workers'
// top-k sets overlap little: 1 − (1−d)^p.
func UnionDensity(d float64, p int) float64 {
	u := 1.0
	for i := 0; i < p; i++ {
		u *= 1 - d
	}
	return 1 - u
}

// popcount over a bitmap, used by tests.
func popcountBitmap(bm []uint64) int {
	total := 0
	for _, w := range bm {
		total += bits.OnesCount64(w)
	}
	return total
}

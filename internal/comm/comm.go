// Package comm implements the collective-communication substrate for the
// in-process worker cluster: allgather, ring allreduce, broadcast and
// barrier across goroutine "ranks".
//
// The paper exchanges compressed gradients with NCCL2's allgather because
// no MPI implementation offers sparse allreduce (Sec. 4, Implementation,
// and the conclusion's call for sparse collectives). This package mirrors
// that API surface: byte-message Allgather for compressed payloads, a real
// ring Allreduce for float32 buffers (the lossless baseline path), and a
// Broadcast used for the periodic parameter re-synchronization.
package comm

import (
	"fmt"
	"sync"
	"time"

	"fftgrad/internal/scratch"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// Cluster coordinates p ranks running in one process.
type Cluster struct {
	p          int
	barrier    *barrier
	slots      [][]byte // allgather / broadcast staging, one slot per rank
	ring       []chan *[]float32
	sparseRing []chan sparseSeg
	tx, rx     *telemetry.Counter // logical bytes-on-wire (nil = off)
}

// Instrument registers bytes-on-wire counters on reg and starts
// accounting every collective against them. The in-process transport
// moves no real bytes — what is counted is the *logical* wire traffic
// of the equivalent ring schedules (the volumes netsim prices), so an
// instrumented in-process run and a TCP run of the same job report
// comparable totals. Call before the first collective; counter updates
// are atomic and allocation-free.
func (c *Cluster) Instrument(reg *telemetry.Registry) {
	c.tx = reg.Counter(`fftgrad_comm_tx_bytes_total{transport="inproc"}`,
		"Logical bytes sent by collectives on the in-process transport.")
	c.rx = reg.Counter(`fftgrad_comm_rx_bytes_total{transport="inproc"}`,
		"Logical bytes received by collectives on the in-process transport.")
}

// NewCluster creates a cluster of p ranks.
func NewCluster(p int) *Cluster {
	if p < 1 {
		panic("comm: cluster needs at least one rank")
	}
	c := &Cluster{
		p:          p,
		barrier:    newBarrier(p),
		slots:      make([][]byte, p),
		ring:       make([]chan *[]float32, p),
		sparseRing: make([]chan sparseSeg, p),
	}
	for i := range c.ring {
		c.ring[i] = make(chan *[]float32, 1)
		c.sparseRing[i] = make(chan sparseSeg, 1)
	}
	return c
}

// P returns the number of ranks.
func (c *Cluster) P() int { return c.p }

// Rank returns the communicator handle for one rank (0 ≤ rank < p).
// Each handle must be used by exactly one goroutine.
func (c *Cluster) Rank(rank int) *Comm {
	if rank < 0 || rank >= c.p {
		panic(fmt.Sprintf("comm: rank %d out of [0,%d)", rank, c.p))
	}
	return &Comm{cluster: c, rank: rank}
}

// Comm is one rank's endpoint. All collective methods must be called by
// every rank (they synchronize internally) and are not reentrant.
type Comm struct {
	cluster *Cluster
	rank    int
	tc      *trace.Ctx
}

// AttachTrace records this rank's collective arrival waits (the barrier
// span that visualizes rank skew in the timeline) on tc. A nil tc keeps
// tracing off; recording is atomics-only either way.
func (c *Comm) AttachTrace(tc *trace.Ctx) { c.tc = tc }

// RankID returns this endpoint's rank.
func (c *Comm) RankID() int { return c.rank }

// P returns the cluster size.
func (c *Comm) P() int { return c.cluster.p }

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.cluster.barrier.await() }

// Allgather contributes data and returns every rank's contribution in
// rank order. The returned slices alias the senders' buffers; treat them
// as read-only.
func (c *Comm) Allgather(data []byte) [][]byte {
	return c.AllgatherInto(make([][]byte, 0, c.cluster.p), data)
}

// AllgatherInto is Allgather reusing a caller-provided result slice: dst
// is truncated and appended to, so a slice retained across iterations
// makes the steady-state path allocation-free. The returned slices alias
// the senders' buffers; treat them as read-only.
func (c *Comm) AllgatherInto(dst [][]byte, data []byte) [][]byte {
	cl := c.cluster
	cl.slots[c.rank] = data
	var tb time.Time
	if c.tc != nil {
		tb = time.Now()
	}
	cl.barrier.await() // all contributions visible
	if c.tc != nil {
		// The arrival wait: how long this rank idled for the slowest peer.
		c.tc.SpanSince(trace.OpBarrier, int64(len(data)), tb)
	}
	out := append(dst[:0], cl.slots...)
	if cl.tx != nil {
		// Ring allgather volume: each rank forwards its m bytes p−1 times
		// and receives every peer's contribution once.
		cl.tx.Add(c.rank, (cl.p-1)*len(data))
		for j, m := range out {
			if j != c.rank {
				cl.rx.Add(c.rank, len(m))
			}
		}
	}
	cl.barrier.await() // all reads done before slots are reused
	return out
}

// Post stages data in this rank's slot without synchronizing. Composite
// schedules (internal/collective's hierarchical and tree strategies)
// pair Post/Peek with explicit Barriers to build multi-phase collectives
// on the same staging substrate the built-in collectives use. The staged
// slice may be read by peers until the next Post on this rank, so it
// must stay stable across the schedule's barriers.
func (c *Comm) Post(data []byte) { c.cluster.slots[c.rank] = data }

// Peek returns the slice rank r last staged (via Post or a collective).
// Only meaningful between the barrier that ordered the staging and the
// barrier that releases the slot; treat as read-only.
func (c *Comm) Peek(r int) []byte { return c.cluster.slots[r] }

// AccountWire adds logical bytes-on-wire to this rank's instrumented
// counters (a no-op when the cluster is not instrumented). Composite
// collectives report the volumes their equivalent wire schedule would
// move, keeping in-process accounting comparable with netsim pricing.
func (c *Comm) AccountWire(tx, rx int) {
	c.cluster.tx.Add(c.rank, tx)
	c.cluster.rx.Add(c.rank, rx)
}

// Trace returns the context attached with AttachTrace (nil when tracing
// is off), so composite collectives can record per-phase spans.
func (c *Comm) Trace() *trace.Ctx { return c.tc }

// Broadcast returns root's buffer on every rank (the root passes its data;
// other ranks' data arguments are ignored). The returned slice aliases the
// root's buffer; treat it as read-only.
func (c *Comm) Broadcast(data []byte, root int) []byte {
	cl := c.cluster
	if c.rank == root {
		cl.slots[root] = data
	}
	var tb time.Time
	if c.tc != nil {
		tb = time.Now()
	}
	cl.barrier.await()
	out := cl.slots[root]
	if c.tc != nil {
		c.tc.SpanSince(trace.OpBarrier, int64(len(out)), tb)
	}
	if cl.tx != nil {
		if c.rank == root {
			cl.tx.Add(c.rank, (cl.p-1)*len(data))
		} else {
			cl.rx.Add(c.rank, len(out))
		}
	}
	cl.barrier.await()
	return out
}

// Allreduce sums x element-wise across all ranks, in place, using the
// two-phase ring algorithm (reduce-scatter then allgather): 2(p−1) steps
// each moving n/p elements — the bandwidth-optimal schedule the lossless
// baseline would use on a real fabric.
func (c *Comm) Allreduce(x []float32) {
	cl := c.cluster
	p := cl.p
	if p == 1 {
		return
	}
	n := len(x)
	// Chunk boundaries: chunk i covers [bounds[i], bounds[i+1]).
	boundsb := scratch.Ints(p + 1)
	defer scratch.PutInts(boundsb)
	bounds := *boundsb
	for i := 0; i <= p; i++ {
		bounds[i] = i * n / p
	}
	next := cl.ring[(c.rank+1)%p]
	prev := cl.ring[c.rank]

	// Every rank borrows ONE buffer sized for the largest chunk and the
	// ring rotates ownership: each step reslices the owned buffer to the
	// outgoing chunk, sends it, and adopts the buffer received from the
	// previous rank as next step's send buffer. When n is not a multiple
	// of p the chunks are ragged, but because every in-flight buffer was
	// born with maxChunk capacity the reslice always fits — the padding
	// happens once per call, not per step, and the steady state allocates
	// nothing regardless of whether p is a power of two.
	maxChunk := 0
	for i := 0; i < p; i++ {
		if w := bounds[i+1] - bounds[i]; w > maxChunk {
			maxChunk = w
		}
	}
	bufb := scratch.Float32s(maxChunk)

	// Phase 1: reduce-scatter. After step s, rank r has accumulated the
	// chunk (r - s + p) % p from s+1 ranks.
	for s := 0; s < p-1; s++ {
		sendIdx := (c.rank - s + p) % p
		chunk := x[bounds[sendIdx]:bounds[sendIdx+1]]
		*bufb = (*bufb)[:len(chunk)]
		copy(*bufb, chunk)
		cl.tx.Add(c.rank, 4*len(chunk))
		next <- bufb
		recvb := <-prev
		cl.rx.Add(c.rank, 4*len(*recvb))
		recvIdx := (c.rank - s - 1 + p) % p
		dst := x[bounds[recvIdx]:bounds[recvIdx+1]]
		for i, v := range *recvb {
			dst[i] += v
		}
		bufb = recvb // adopt: same maxChunk capacity class on every rank
	}
	// Phase 2: allgather of the fully-reduced chunks. Rank r owns chunk
	// (r+1) % p after phase 1.
	for s := 0; s < p-1; s++ {
		sendIdx := (c.rank + 1 - s + p) % p
		chunk := x[bounds[sendIdx]:bounds[sendIdx+1]]
		*bufb = (*bufb)[:len(chunk)]
		copy(*bufb, chunk)
		cl.tx.Add(c.rank, 4*len(chunk))
		next <- bufb
		recvb := <-prev
		cl.rx.Add(c.rank, 4*len(*recvb))
		recvIdx := (c.rank - s + p) % p
		copy(x[bounds[recvIdx]:bounds[recvIdx+1]], *recvb)
		bufb = recvb
	}
	scratch.PutFloat32s(bufb)
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

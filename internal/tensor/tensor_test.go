package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(r *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64())
	}
	return t
}

// naiveMatMul is the O(mnk) reference.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += float64(a.Data[i*k+p]) * float64(b.Data[p*n+j])
			}
			c.Data[i*n+j] = float32(acc)
		}
	}
	return c
}

func maxDiff(a, b *Tensor) float64 {
	var m float64
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i] - b.Data[i])); d > m {
			m = d
		}
	}
	return m
}

func TestNewAndReshape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("len %d", x.Len())
	}
	y := x.Reshape(6, 4)
	if y.Dim(0) != 6 || y.Dim(1) != 4 {
		t.Fatal("reshape shape wrong")
	}
	y.Data[0] = 5
	if x.Data[0] != 5 {
		t.Fatal("reshape must share storage")
	}
	c := x.Clone()
	c.Data[0] = 7
	if x.Data[0] != 5 {
		t.Fatal("clone must not share storage")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 0)
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(make([]float32, 5), 2, 3)
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 33, 9}, {64, 128, 32}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		want := naiveMatMul(a, b)
		got := New(m, n)
		MatMul(got, a, b)
		if d := maxDiff(got, want); d > 1e-4 {
			t.Errorf("matmul %v: max diff %g", dims, d)
		}
	}
}

func TestMatMulTransB(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m, k, n := 13, 27, 9
	a := randTensor(r, m, k)
	bT := randTensor(r, n, k) // B stored transposed
	// Build plain B to compare through naive path.
	b := New(k, n)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			b.Data[j*n+i] = bT.Data[i*k+j]
		}
	}
	want := naiveMatMul(a, b)
	got := New(m, n)
	MatMulTransB(got, a, bT)
	if d := maxDiff(got, want); d > 1e-4 {
		t.Errorf("matmulTransB max diff %g", d)
	}
}

func TestMatMulTransA(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	k, m, n := 21, 8, 15
	aT := randTensor(r, k, m) // A stored transposed
	b := randTensor(r, k, n)
	a := New(m, k)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			a.Data[j*k+i] = aT.Data[i*m+j]
		}
	}
	want := naiveMatMul(a, b)
	got := New(m, n)
	MatMulTransA(got, aT, b)
	if d := maxDiff(got, want); d > 1e-4 {
		t.Errorf("matmulTransA max diff %g", d)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(4, 2))
}

func TestAddBiasRows(t *testing.T) {
	x := New(3, 2)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	AddBiasRows(x, []float32{10, 20})
	want := []float32{10, 21, 12, 23, 14, 25}
	for i := range want {
		if x.Data[i] != want[i] {
			t.Fatalf("index %d: %g want %g", i, x.Data[i], want[i])
		}
	}
}

func TestConvGeomOutDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, Kernel: 3, Stride: 1, Pad: 1}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same-pad 3x3: %dx%d", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 3, InH: 32, InW: 32, Kernel: 3, Stride: 2, Pad: 1}
	if g2.OutH() != 16 || g2.OutW() != 16 {
		t.Fatalf("stride-2: %dx%d", g2.OutH(), g2.OutW())
	}
}

// Im2col on a known tiny image.
func TestIm2colKnown(t *testing.T) {
	// 1 channel, 3x3 image, 2x2 kernel, stride 1, no pad → 2x2 output.
	x := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	g := ConvGeom{InC: 1, InH: 3, InW: 3, Kernel: 2, Stride: 1, Pad: 0}
	cols := make([]float32, 4*4)
	Im2col(cols, x, g)
	// Rows are kernel taps (kh,kw), columns are output positions.
	want := []float32{
		1, 2, 4, 5, // tap (0,0)
		2, 3, 5, 6, // tap (0,1)
		4, 5, 7, 8, // tap (1,0)
		5, 6, 8, 9, // tap (1,1)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("col %d: %g want %g", i, cols[i], want[i])
		}
	}
}

func TestIm2colPadding(t *testing.T) {
	x := []float32{1, 2, 3, 4} // 1x2x2
	g := ConvGeom{InC: 1, InH: 2, InW: 2, Kernel: 3, Stride: 1, Pad: 1}
	// output 2x2, rows = 9
	cols := make([]float32, 9*4)
	Im2col(cols, x, g)
	// Tap (0,0) samples (ih,iw) = (oh-1, ow-1): positions (-1,-1),(-1,0),(0,-1),(0,0)
	want00 := []float32{0, 0, 0, 1}
	for i := range want00 {
		if cols[i] != want00[i] {
			t.Fatalf("pad tap col %d: %g want %g", i, cols[i], want00[i])
		}
	}
	// Tap (1,1) is the identity tap: samples the image directly.
	row := (0*3+1)*3 + 1
	wantC := []float32{1, 2, 3, 4}
	for i := range wantC {
		if cols[row*4+i] != wantC[i] {
			t.Fatalf("center tap col %d: %g want %g", i, cols[row*4+i], wantC[i])
		}
	}
}

// Col2im must be the adjoint of Im2col: <Im2col(x), y> == <x, Col2im(y)>.
func TestCol2imAdjoint(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := ConvGeom{InC: 2, InH: 7, InW: 6, Kernel: 3, Stride: 2, Pad: 1}
	rows := g.InC * g.Kernel * g.Kernel
	cols := g.OutH() * g.OutW()
	x := make([]float32, g.InC*g.InH*g.InW)
	y := make([]float32, rows*cols)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	for i := range y {
		y[i] = float32(r.NormFloat64())
	}
	ix := make([]float32, rows*cols)
	Im2col(ix, x, g)
	var lhs float64
	for i := range ix {
		lhs += float64(ix[i]) * float64(y[i])
	}
	cy := make([]float32, len(x))
	Col2im(cy, y, g)
	var rhs float64
	for i := range x {
		rhs += float64(x[i]) * float64(cy[i])
	}
	if math.Abs(lhs-rhs) > 1e-3*math.Abs(lhs) {
		t.Fatalf("adjoint violated: %g vs %g", lhs, rhs)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randTensor(r, 256, 256)
	bb := randTensor(r, 256, 256)
	c := New(256, 256)
	b.SetBytes(2 * 256 * 256 * 256 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, bb)
	}
}

func BenchmarkIm2col(b *testing.B) {
	g := ConvGeom{InC: 64, InH: 32, InW: 32, Kernel: 3, Stride: 1, Pad: 1}
	x := make([]float32, g.InC*g.InH*g.InW)
	cols := make([]float32, g.InC*g.Kernel*g.Kernel*g.OutH()*g.OutW())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2col(cols, x, g)
	}
}

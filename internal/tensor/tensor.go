// Package tensor provides the minimal dense float32 tensor machinery the
// DNN substrate needs: row-major shaped buffers, a blocked parallel
// matrix multiply (plus the transposed variants backpropagation needs),
// and im2col/col2im for expressing convolution as a matrix product.
//
// The paper's experiments run AlexNet and ResNet32 on GPUs; this package
// is the CPU stand-in compute engine. It is deliberately small — only the
// kernels the models in internal/models require.
package tensor

import (
	"fmt"

	"fftgrad/internal/parallel"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	Data  []float32
	Shape []int
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Data: make([]float32, n), Shape: append([]int(nil), shape...)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, have %d", shape, n, len(data)))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// Len returns the total element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Reshape returns a view of t with a new shape of equal element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	return FromSlice(t.Data, shape...)
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// blockK is the k-dimension blocking factor of the matmul kernels, sized
// so a block of B rows stays in L1.
const blockK = 256

// MatMul computes C = A·B for A [m×k] and B [k×n], writing into the
// provided C [m×n] (overwritten). Parallel over rows of A.
func MatMul(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v·%v→%v", a.Shape, b.Shape, c.Shape))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	parallel.ForGrain(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := cd[i*n : (i+1)*n]
			for x := range crow {
				crow[x] = 0
			}
			for k0 := 0; k0 < k; k0 += blockK {
				kEnd := k0 + blockK
				if kEnd > k {
					kEnd = k
				}
				for p := k0; p < kEnd; p++ {
					av := ad[i*k+p]
					if av == 0 {
						continue
					}
					brow := bd[p*n : (p+1)*n]
					for x, bv := range brow {
						crow[x] += av * bv
					}
				}
			}
		}
	})
}

// MatMulTransB computes C = A·Bᵀ for A [m×k] and B [n×k], writing into
// C [m×n]. This is the y = x·Wᵀ shape used by dense layers.
func MatMulTransB(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTransB shape mismatch %v·%vᵀ→%v", a.Shape, b.Shape, c.Shape))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	parallel.ForGrain(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var acc float32
				for p := range arow {
					acc += arow[p] * brow[p]
				}
				cd[i*n+j] = acc
			}
		}
	})
}

// MatMulTransA computes C = Aᵀ·B for A [k×m] and B [k×n], writing into
// C [m×n]. This is the weight-gradient shape dW = xᵀ·dy.
func MatMulTransA(c, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTransA shape mismatch %vᵀ·%v→%v", a.Shape, b.Shape, c.Shape))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	parallel.ForGrain(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := cd[i*n : (i+1)*n]
			for x := range crow {
				crow[x] = 0
			}
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for x, bv := range brow {
					crow[x] += av * bv
				}
			}
		}
	})
}

// AddBiasRows adds bias (length n) to every row of x [m×n], in place.
func AddBiasRows(x *Tensor, bias []float32) {
	m, n := x.Shape[0], x.Shape[1]
	if len(bias) != n {
		panic("tensor: bias length mismatch")
	}
	parallel.ForGrain(m, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x.Data[i*n : (i+1)*n]
			for j := range row {
				row[j] += bias[j]
			}
		}
	})
}

// ConvGeom describes a square convolution / pooling geometry.
type ConvGeom struct {
	InC, InH, InW int
	Kernel        int
	Stride        int
	Pad           int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.Kernel)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.Kernel)/g.Stride + 1 }

// Im2col expands one image x [C×H×W] into columns dst
// [(C·K·K) × (outH·outW)] so convolution becomes a matrix product
// W[outC × C·K·K] · cols. Out-of-bounds taps read zero (padding).
func Im2col(dst []float32, x []float32, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	rows := g.InC * g.Kernel * g.Kernel
	if len(dst) != rows*cols {
		panic("tensor: im2col dst size mismatch")
	}
	for c := 0; c < g.InC; c++ {
		for kh := 0; kh < g.Kernel; kh++ {
			for kw := 0; kw < g.Kernel; kw++ {
				row := (c*g.Kernel+kh)*g.Kernel + kw
				drow := dst[row*cols : (row+1)*cols]
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.Stride + kh - g.Pad
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < outW; ow++ {
							drow[oh*outW+ow] = 0
						}
						continue
					}
					xrow := x[(c*g.InH+ih)*g.InW:]
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.Stride + kw - g.Pad
						if iw < 0 || iw >= g.InW {
							drow[oh*outW+ow] = 0
						} else {
							drow[oh*outW+ow] = xrow[iw]
						}
					}
				}
			}
		}
	}
}

// Col2im scatter-adds columns (the gradient of Im2col) back into an image
// dx [C×H×W]. dx must be pre-zeroed by the caller.
func Col2im(dx []float32, cols []float32, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	nCols := outH * outW
	for c := 0; c < g.InC; c++ {
		for kh := 0; kh < g.Kernel; kh++ {
			for kw := 0; kw < g.Kernel; kw++ {
				row := (c*g.Kernel+kh)*g.Kernel + kw
				crow := cols[row*nCols : (row+1)*nCols]
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.Stride + kh - g.Pad
					if ih < 0 || ih >= g.InH {
						continue
					}
					xrow := dx[(c*g.InH+ih)*g.InW:]
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.Stride + kw - g.Pad
						if iw >= 0 && iw < g.InW {
							xrow[iw] += crow[oh*outW+ow]
						}
					}
				}
			}
		}
	}
}

// Package adapt closes the loop between live telemetry and the paper's
// Sec. 3.3 performance model: an online controller folds the measured
// per-stage throughputs (Tm, Tf, Tp, Ts) and the effective exchange rate
// into perfmodel every iteration and decides whether compression is
// worth running at all on the fabric the job is actually on.
//
// The paper evaluates Eq. 4 offline with Table 1's measured constants;
// here the same inequality runs against the EWMAs a telemetry.StageTimer
// maintains inside the pipeline, so the decision tracks the deployment:
// on a slow fabric (1 GbE) any plausible pipeline wins and compression
// stays on; on a fast local fabric (PCIe) Eq. 4's denominator goes
// non-positive — no ratio helps — and the controller bypasses to FP32,
// re-enabling automatically if the effective exchange rate degrades.
package adapt

import (
	"math"
	"sync"

	"fftgrad/internal/perfmodel"
	"fftgrad/internal/telemetry"
)

// Config tunes the controller. The zero value gets usable defaults.
type Config struct {
	// Margin is the headroom multiplier applied to the minimal beneficial
	// ratio when targeting θ: the controller steers the achieved ratio
	// toward Margin·k_min so the win survives model error. Default 1.5.
	Margin float64
	// Patience is how many consecutive contrary evaluations are needed
	// before flipping the compress/bypass state, damping oscillation when
	// the fabric sits near the break-even point. Default 2.
	Patience int
	// MinSamples is the minimum number of StageComm observations (and of
	// pipeline-stage observations) before the controller trusts the
	// telemetry enough to act. Until then it keeps compressing, which is
	// also how it learns the pipeline rates in the first place. Default 3.
	MinSamples int64
	// AdjustTheta enables θ suggestions: tighten θ (drop more) when the
	// achieved ratio is below Margin·k_min, relax it when comfortably
	// above. Decisions carry the suggestion; dist applies it through the
	// compressor's ThetaSetter, composing with any schedule as a floor.
	AdjustTheta bool
	// ThetaMin and ThetaMax clamp suggested θ. Defaults 0.5 and 0.99.
	ThetaMin, ThetaMax float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Margin <= 0 {
		c.Margin = 1.5
	}
	if c.Patience <= 0 {
		c.Patience = 2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	if c.ThetaMin <= 0 {
		c.ThetaMin = 0.5
	}
	if c.ThetaMax <= 0 || c.ThetaMax >= 1 {
		c.ThetaMax = 0.99
	}
	return c
}

// Decision is the controller's verdict for one iteration. Every rank
// asking about the same iteration receives the identical Decision (the
// first caller computes it, the rest read the cache), so all ranks agree
// on the wire format before any message is built.
type Decision struct {
	Iter int
	// Compress says whether to run the compressor (false = FP32 bypass).
	Compress bool
	// Ready reports whether enough telemetry existed to evaluate the
	// model; when false, Compress just carries the previous state.
	Ready bool
	// NoBeneficial is true when Eq. 4 had no solution: the pipeline is
	// too slow relative to the fabric for any ratio to help.
	NoBeneficial bool
	// KMin is the minimal beneficial compression ratio (0 when
	// NoBeneficial or not Ready).
	KMin float64
	// Tcomm is the effective exchange rate (bytes/sec) the evaluation
	// used — compressed message bytes over collective seconds, the live
	// analogue of Eq. 2's Tcomm.
	Tcomm float64
	// Ratio is the compression ratio the evaluation assumed: the
	// caller's live ratio while compressing, or the last ratio seen
	// before bypassing (so re-enablement can be judged while FP32 runs).
	Ratio float64
	// Theta is the suggested drop ratio; equal to the input θ unless
	// ThetaAdjusted is set.
	Theta float64
	// ThetaAdjusted marks a θ suggestion that differs from the input.
	ThetaAdjusted bool
}

// Controller evaluates the performance model online. One instance is
// shared by all ranks of a training run; DecideIter is safe for
// concurrent use and caches one decision per iteration.
type Controller struct {
	cfg Config
	st  *telemetry.StageTimer

	mu          sync.Mutex
	lastIter    int
	last        Decision
	compressing bool
	contrary    int     // consecutive evaluations disagreeing with the state
	lastRatio   float64 // most recent ratio achieved while compressing
	flips       int64   // total enable/disable transitions
	bypassed    int64   // iterations decided as FP32 bypass
}

// New creates a controller reading live rates from st (a fresh timer is
// created when st is nil — instrument the compressors and the exchange
// with Controller.StageTimer in that case). The controller starts in the
// compressing state: compressing is how the pipeline rates get measured.
func New(cfg Config, st *telemetry.StageTimer) *Controller {
	if st == nil {
		st = telemetry.NewStageTimer()
	}
	return &Controller{cfg: cfg.withDefaults(), st: st, lastIter: -1, compressing: true}
}

// StageTimer returns the timer the controller reads. Attach it to the
// compressors (compress.Instrument) and observe the exchange on it
// (StageComm) so decisions see the live pipeline.
func (c *Controller) StageTimer() *telemetry.StageTimer { return c.st }

// MeasuredThroughputs returns the live pipeline rates in perfmodel form.
// Stages the current algorithm never exercises (e.g. no transform for
// Top-k) report +Inf: a positive value passes Validate and contributes
// zero cost, which is exactly what a skipped stage costs.
func (c *Controller) MeasuredThroughputs() perfmodel.Throughputs {
	get := func(s telemetry.Stage) float64 {
		if r := c.st.Rate(s); r > 0 {
			return r
		}
		return math.Inf(1)
	}
	return perfmodel.Throughputs{
		Tm: get(telemetry.StageConvert),
		Tf: get(telemetry.StageTransform),
		Tp: get(telemetry.StagePack),
		Ts: get(telemetry.StageSelect),
	}
}

// pipelineSamples returns the total observation count across the four
// pipeline stages.
func (c *Controller) pipelineSamples() int64 {
	return c.st.Samples(telemetry.StageConvert) +
		c.st.Samples(telemetry.StageTransform) +
		c.st.Samples(telemetry.StagePack) +
		c.st.Samples(telemetry.StageSelect)
}

// DecideIter evaluates the model for iteration iter. ratio is the
// caller's current compression ratio (original bytes / message bytes;
// pass 0 or 1 while bypassed — the controller remembers the last
// compressed ratio) and theta the θ the schedule proposes. The first
// caller for an iteration computes the decision; subsequent callers for
// the same iteration get the cached copy, keeping all ranks consistent.
func (c *Controller) DecideIter(iter int, ratio, theta float64) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if iter == c.lastIter {
		return c.last
	}

	if c.compressing && ratio > 1 {
		c.lastRatio = ratio
	}
	evalRatio := c.lastRatio

	d := Decision{Iter: iter, Compress: c.compressing, Ratio: evalRatio, Theta: theta}
	tcomm := c.st.Rate(telemetry.StageComm)
	ready := tcomm > 0 && evalRatio > 1 &&
		c.st.Samples(telemetry.StageComm) >= c.cfg.MinSamples &&
		c.pipelineSamples() >= c.cfg.MinSamples
	if !ready {
		c.commit(iter, d)
		return d
	}

	d.Ready = true
	d.Tcomm = tcomm
	t := c.MeasuredThroughputs()
	kmin, err := perfmodel.MinBeneficialRatio(tcomm, t)
	var want bool
	switch {
	case err != nil:
		// Either no beneficial ratio exists on this fabric, or a rate
		// went unmeasured in a way Validate rejects; both mean "do not
		// trust compression to win".
		d.NoBeneficial = err == perfmodel.ErrNoBeneficialRatio
		want = false
	default:
		d.KMin = kmin
		want = evalRatio > kmin
	}

	// Patience: require cfg.Patience consecutive contrary evaluations
	// before flipping, so a single noisy EWMA sample near break-even
	// cannot thrash the wire format.
	if want != c.compressing {
		c.contrary++
		if c.contrary >= c.cfg.Patience {
			c.compressing = want
			c.contrary = 0
			c.flips++
		}
	} else {
		c.contrary = 0
	}
	d.Compress = c.compressing

	if c.cfg.AdjustTheta && c.compressing && d.KMin > 1 {
		d.Theta, d.ThetaAdjusted = c.suggestTheta(theta, evalRatio, d.KMin)
	}
	c.commit(iter, d)
	return d
}

// suggestTheta steers θ so the achieved ratio approaches Margin·k_min.
// The wire ratio of a sparsifying compressor is roughly proportional to
// 1/(1−θ), so scaling the kept fraction by ratio/target moves the ratio
// onto the target: (1−θ′) = (1−θ)·ratio/target. A ±10% deadband keeps
// the controller from dithering θ every iteration.
func (c *Controller) suggestTheta(theta, ratio, kmin float64) (float64, bool) {
	target := c.cfg.Margin * kmin
	if target <= 1 || theta <= 0 || theta >= 1 {
		return theta, false
	}
	rel := ratio / target
	if rel > 0.9 && rel < 1.1 {
		return theta, false
	}
	nt := 1 - (1-theta)*rel
	if nt < c.cfg.ThetaMin {
		nt = c.cfg.ThetaMin
	}
	if nt > c.cfg.ThetaMax {
		nt = c.cfg.ThetaMax
	}
	if nt == theta {
		return theta, false
	}
	return nt, true
}

// commit stores the decision as the iteration's cached verdict; callers
// hold c.mu.
func (c *Controller) commit(iter int, d Decision) {
	c.lastIter = iter
	c.last = d
	if !d.Compress {
		c.bypassed++
	}
}

// Last returns the most recent decision (zero Decision before any).
func (c *Controller) Last() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Flips returns how many enable/disable transitions have occurred.
func (c *Controller) Flips() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flips
}

// BypassedIterations returns how many iterations were decided as FP32
// bypass.
func (c *Controller) BypassedIterations() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bypassed
}

// Register exposes the controller's state on reg as exposition-time
// gauges (no hot-path cost).
func (c *Controller) Register(reg *telemetry.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.GaugeFunc("fftgrad_adapt_compress_enabled",
		"1 when the controller has compression enabled, 0 when bypassing to FP32",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.compressing {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("fftgrad_adapt_kmin_ratio",
		"minimal beneficial compression ratio from the live Eq. 4 evaluation (0 = none exists)",
		func() float64 { return c.Last().KMin })
	reg.GaugeFunc("fftgrad_adapt_tcomm_bytes_per_second",
		"effective exchange rate the last decision used",
		func() float64 { return c.Last().Tcomm })
	reg.GaugeFunc("fftgrad_adapt_ratio",
		"compression ratio the last decision assumed",
		func() float64 { return c.Last().Ratio })
	reg.GaugeFunc("fftgrad_adapt_theta",
		"drop ratio suggested by the last decision",
		func() float64 { return c.Last().Theta })
	reg.GaugeFunc("fftgrad_adapt_flips_total",
		"total compress/bypass transitions",
		func() float64 { return float64(c.Flips()) })
	reg.GaugeFunc("fftgrad_adapt_bypassed_iterations_total",
		"iterations decided as FP32 bypass",
		func() float64 { return float64(c.BypassedIterations()) })
}

package adapt

import (
	"math"
	"testing"

	"fftgrad/internal/compress"
	"fftgrad/internal/netsim"
	"fftgrad/internal/telemetry"
)

// testGrad builds a deterministic pseudo-gradient.
func testGrad(n int) []float32 {
	g := make([]float32, n)
	for i := range g {
		g[i] = float32(math.Sin(float64(i)*0.7) * math.Exp(-float64(i%997)/500))
	}
	return g
}

// measurePipeline runs real instrumented FFT round trips so the stage
// timer holds genuinely measured Tm/Tf/Tp/Ts rates (no hand-entered
// Table 1 constants anywhere in this test), returning the steady-state
// message size.
func measurePipeline(t *testing.T, st *telemetry.StageTimer) (msgBytes, gradBytes int) {
	t.Helper()
	c := compress.NewFFT(0.85)
	compress.Instrument(c, st)
	grad := testGrad(1 << 14)
	rec := make([]float32, len(grad))
	var msg []byte
	var err error
	for i := 0; i < 6; i++ {
		msg, err = c.AppendCompress(msg[:0], grad)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.DecompressInto(rec, msg); err != nil {
			t.Fatal(err)
		}
	}
	return len(msg), 4 * len(grad)
}

// observeFabric feeds the exchange stage with netsim-modeled allgather
// times for p ranks of msgBytes each: the effective exchange rate is
// message bytes over collective seconds — Eq. 2's live Tcomm.
func observeFabric(st *telemetry.StageTimer, prof netsim.Profile, p, msgBytes, times int) {
	secs := prof.Allgather(p, msgBytes)
	for i := 0; i < times; i++ {
		st.ObserveStage(telemetry.StageComm, msgBytes, secs)
	}
}

// TestEnableDisableReenable is the PR's acceptance scenario: with the
// pipeline rates measured live from real compressions, the controller
// keeps compression on over 1 GbE (any CPU pipeline beats a ~16 MB/s
// effective link), bypasses to FP32 on PCIe (no ratio is beneficial —
// Eq. 4's denominator goes non-positive), and re-enables when the fabric
// degrades back to 1 GbE.
func TestEnableDisableReenable(t *testing.T) {
	const p = 8
	st := telemetry.NewStageTimer()
	ctrl := New(Config{Patience: 1, MinSamples: 1}, st)
	msgBytes, gradBytes := measurePipeline(t, st)
	ratio := float64(gradBytes) / float64(msgBytes)

	// Slow fabric: compression must stay enabled.
	observeFabric(st, netsim.Ethernet1G, p, msgBytes, 4)
	d := ctrl.DecideIter(1, ratio, 0.85)
	if !d.Ready {
		t.Fatalf("decision not ready: %+v", d)
	}
	if !d.Compress {
		t.Fatalf("1GbE: controller disabled compression: %+v", d)
	}
	if d.KMin <= 1 || ratio <= d.KMin {
		t.Fatalf("1GbE: achieved ratio %.1f should exceed k_min %.2f", ratio, d.KMin)
	}

	// Fabric improves to PCIe: effective exchange rate jumps ~100x, the
	// measured CPU pipeline cannot amortize at any ratio, so the model
	// returns ErrNoBeneficialRatio and the controller bypasses.
	observeFabric(st, netsim.PCIe3, p, msgBytes, 40)
	d = ctrl.DecideIter(2, ratio, 0.85)
	if d.Compress {
		t.Fatalf("PCIe: controller kept compression on: %+v", d)
	}
	if !d.NoBeneficial {
		t.Errorf("PCIe: expected the no-beneficial-ratio regime, got %+v", d)
	}

	// While bypassed, callers report ratio 1 (FP32). The fabric degrades
	// back to 1 GbE; the controller must re-enable from its remembered
	// compressed ratio.
	observeFabric(st, netsim.Ethernet1G, p, msgBytes, 40)
	d = ctrl.DecideIter(3, 1, 0.85)
	if !d.Compress {
		t.Fatalf("1GbE again: controller did not re-enable: %+v", d)
	}
	if d.Ratio <= 1 {
		t.Errorf("remembered ratio lost while bypassed: %+v", d)
	}
	if ctrl.Flips() != 2 {
		t.Errorf("flips = %d, want 2 (disable + re-enable)", ctrl.Flips())
	}
}

// TestDecisionCachedPerIteration: all ranks asking about one iteration
// must get the identical decision even if telemetry moves between calls
// — otherwise ranks could disagree about the wire format mid-exchange.
func TestDecisionCachedPerIteration(t *testing.T) {
	st := telemetry.NewStageTimer()
	ctrl := New(Config{Patience: 1, MinSamples: 1}, st)
	msgBytes, gradBytes := measurePipeline(t, st)
	ratio := float64(gradBytes) / float64(msgBytes)

	observeFabric(st, netsim.Ethernet1G, 8, msgBytes, 4)
	first := ctrl.DecideIter(7, ratio, 0.85)

	// Telemetry swings to the opposite regime between two calls for the
	// same iteration: the cached decision must not change.
	observeFabric(st, netsim.PCIe3, 8, msgBytes, 60)
	second := ctrl.DecideIter(7, ratio, 0.85)
	if first != second {
		t.Fatalf("decision for one iteration changed between ranks:\n  first  %+v\n  second %+v", first, second)
	}
	// The next iteration does see the new fabric.
	third := ctrl.DecideIter(8, ratio, 0.85)
	if third.Compress {
		t.Fatalf("iteration 8 should have flipped to bypass: %+v", third)
	}
}

// TestPatienceDampsFlapping: with Patience 2, a single contrary
// evaluation must not flip the state.
func TestPatienceDampsFlapping(t *testing.T) {
	st := telemetry.NewStageTimer()
	ctrl := New(Config{Patience: 2, MinSamples: 1}, st)
	msgBytes, gradBytes := measurePipeline(t, st)
	ratio := float64(gradBytes) / float64(msgBytes)

	observeFabric(st, netsim.Ethernet1G, 8, msgBytes, 4)
	if d := ctrl.DecideIter(1, ratio, 0.85); !d.Compress {
		t.Fatalf("baseline decision should compress: %+v", d)
	}
	observeFabric(st, netsim.PCIe3, 8, msgBytes, 60)
	if d := ctrl.DecideIter(2, ratio, 0.85); !d.Compress {
		t.Fatalf("one contrary evaluation flipped the state despite Patience=2: %+v", d)
	}
	if d := ctrl.DecideIter(3, ratio, 0.85); d.Compress {
		t.Fatalf("two contrary evaluations should flip: %+v", d)
	}
}

// TestNotReadyKeepsCompressing: before MinSamples of telemetry exist the
// controller must keep the (learning) compressing state and say so.
func TestNotReadyKeepsCompressing(t *testing.T) {
	ctrl := New(Config{}, nil)
	d := ctrl.DecideIter(0, 0, 0.85)
	if !d.Compress || d.Ready {
		t.Fatalf("cold controller should compress and report not-ready: %+v", d)
	}
}

// TestSuggestTheta checks the θ steering rule: ratio far above the
// target relaxes θ, far below tightens it, near the target (±10%) holds,
// and clamps apply.
func TestSuggestTheta(t *testing.T) {
	ctrl := New(Config{Margin: 1.5, ThetaMin: 0.5, ThetaMax: 0.99}, nil)
	kmin := 8.0 // target ratio 12

	// Achieved 24x vs target 12x: keep fraction should double, θ drops.
	nt, adj := ctrl.suggestTheta(0.9, 24, kmin)
	if !adj || nt >= 0.9 {
		t.Errorf("over-compressing should relax θ below 0.9, got %.3f (adj=%v)", nt, adj)
	}
	// Achieved 6x vs target 12x: θ must tighten toward 1.
	nt, adj = ctrl.suggestTheta(0.9, 6, kmin)
	if !adj || nt <= 0.9 {
		t.Errorf("under-compressing should tighten θ above 0.9, got %.3f (adj=%v)", nt, adj)
	}
	// Within the deadband: no change.
	if _, adj = ctrl.suggestTheta(0.9, 12.5, kmin); adj {
		t.Errorf("ratio inside deadband should not adjust θ")
	}
	// Clamped at ThetaMax.
	nt, _ = ctrl.suggestTheta(0.98, 1.2, 100)
	if nt > 0.99 {
		t.Errorf("suggestion exceeded ThetaMax: %.3f", nt)
	}
	// Clamped at ThetaMin.
	nt, _ = ctrl.suggestTheta(0.55, 1000, 2)
	if nt < 0.5 {
		t.Errorf("suggestion fell below ThetaMin: %.3f", nt)
	}
}

// TestMeasuredThroughputsInf: stages never exercised must report +Inf so
// perfmodel.Validate passes and the stage prices at zero cost.
func TestMeasuredThroughputsInf(t *testing.T) {
	st := telemetry.NewStageTimer()
	st.ObserveStage(telemetry.StageSelect, 1<<20, 0.001)
	ctrl := New(Config{}, st)
	tp := ctrl.MeasuredThroughputs()
	if !math.IsInf(tp.Tf, 1) || !math.IsInf(tp.Tm, 1) || !math.IsInf(tp.Tp, 1) {
		t.Errorf("unmeasured stages should be +Inf: %+v", tp)
	}
	if tp.Ts <= 0 || math.IsInf(tp.Ts, 1) {
		t.Errorf("measured stage should be finite positive: %+v", tp)
	}
	if err := tp.Validate(); err != nil {
		t.Errorf("throughputs with Inf stages must validate: %v", err)
	}
}

// TestRegisterExposesState: the controller's gauges land in a snapshot.
func TestRegisterExposesState(t *testing.T) {
	st := telemetry.NewStageTimer()
	ctrl := New(Config{Patience: 1, MinSamples: 1}, st)
	msgBytes, gradBytes := measurePipeline(t, st)
	observeFabric(st, netsim.Ethernet1G, 8, msgBytes, 4)
	ctrl.DecideIter(1, float64(gradBytes)/float64(msgBytes), 0.85)

	reg := telemetry.NewRegistry()
	ctrl.Register(reg)
	snap := reg.Snapshot()
	if snap["fftgrad_adapt_compress_enabled"] != 1 {
		t.Errorf("compress_enabled gauge = %v, want 1", snap["fftgrad_adapt_compress_enabled"])
	}
	if snap["fftgrad_adapt_kmin_ratio"] <= 1 {
		t.Errorf("kmin gauge = %v, want > 1", snap["fftgrad_adapt_kmin_ratio"])
	}
	if snap["fftgrad_adapt_tcomm_bytes_per_second"] <= 0 {
		t.Errorf("tcomm gauge = %v, want > 0", snap["fftgrad_adapt_tcomm_bytes_per_second"])
	}
}

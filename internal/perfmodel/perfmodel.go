// Package perfmodel implements the analytic sensitivity model of Sec. 3.3
// (Eq. 1-4): given the throughputs of the compression primitives and of
// the network, when does compression pay off, and what is the minimal
// compression ratio k that shows any benefit?
//
// The model prices a message of M bytes through the pipeline
//
//	cost_comp  = M·(2/Tm + 1/Tf + 1/Tp + 1/Ts)                     (Eq. 1)
//	cost_comm  = (M/Tcomm)·(1/k)                                   (Eq. 2)
//	saved_comm = (M/Tcomm)·(1 − 1/k)                               (Eq. 3)
//
// and requires 2·cost_comp < saved_comm (compression *and* decompression
// must amortize), giving
//
//	k > 1 / (1 − 2·Tcomm·(2/Tm + 1/Tf + 1/Tp + 1/Ts))              (Eq. 4)
//
// with no beneficial k at all once the denominator goes non-positive —
// the "no compression ratio will help" regime of Fig. 10.
package perfmodel

import (
	"errors"
	"fmt"
)

// Throughputs holds the pipeline primitive rates, all in bytes/second
// (Table 1 of the paper).
type Throughputs struct {
	Tm float64 // precision conversion (float↔half, range quantizer); O(N), counted twice
	Tf float64 // FFT
	Tp float64 // sparse packing
	Ts float64 // top-k selection
}

// Validate reports whether every rate is positive.
func (t Throughputs) Validate() error {
	if t.Tm <= 0 || t.Tf <= 0 || t.Tp <= 0 || t.Ts <= 0 {
		return fmt.Errorf("perfmodel: non-positive throughput in %+v", t)
	}
	return nil
}

// perByte returns the compression pipeline's cost per input byte,
// 2/Tm + 1/Tf + 1/Tp + 1/Ts.
func (t Throughputs) perByte() float64 {
	return 2/t.Tm + 1/t.Tf + 1/t.Tp + 1/t.Ts
}

// CompressionCost returns cost_comp (Eq. 1) for a message of m bytes.
func CompressionCost(m int, t Throughputs) float64 {
	return float64(m) * t.perByte()
}

// CommunicationCost returns cost_comm (Eq. 2) for m bytes at ratio k over
// a link of tcomm bytes/second.
func CommunicationCost(m int, tcomm, k float64) float64 {
	return float64(m) / tcomm / k
}

// SavedCost returns saved_cost_comm (Eq. 3).
func SavedCost(m int, tcomm, k float64) float64 {
	return float64(m) / tcomm * (1 - 1/k)
}

// ErrNoBeneficialRatio is returned when the compression pipeline is too
// slow relative to the network for any ratio to help.
var ErrNoBeneficialRatio = errors.New("perfmodel: no compression ratio is beneficial on this configuration")

// MinBeneficialRatio returns the minimal compression ratio k that yields
// a net win (Eq. 4), or ErrNoBeneficialRatio when the denominator is
// non-positive (compression cost alone exceeds the total communication
// saving ceiling).
func MinBeneficialRatio(tcomm float64, t Throughputs) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if tcomm <= 0 {
		return 0, fmt.Errorf("perfmodel: non-positive network throughput %g", tcomm)
	}
	den := 1 - 2*tcomm*t.perByte()
	if den <= 0 {
		return 0, ErrNoBeneficialRatio
	}
	return 1 / den, nil
}

// Beneficial reports whether running the compression pipeline at ratio k
// is a net win on the given configuration: 2·cost_comp < saved_cost_comm.
func Beneficial(m int, tcomm, k float64, t Throughputs) bool {
	return 2*CompressionCost(m, t) < SavedCost(m, tcomm, k)
}

// EndToEnd returns the total per-message time with compression enabled
// (both endpoints pay the pipeline) and without.
func EndToEnd(m int, tcomm, k float64, t Throughputs) (with, without float64) {
	with = 2*CompressionCost(m, t) + CommunicationCost(m, tcomm, k)
	without = float64(m) / tcomm
	return with, without
}

// MaxTolerableTcomm returns the fastest network on which the pipeline can
// still pay off at *any* ratio: the Tcomm where Eq. 4's denominator hits
// zero. Faster networks than this make compression pointless whatever k
// is (Fig. 10's "Ts=12GB/s ⇒ nothing helps beyond 22 Gbps" observation).
func MaxTolerableTcomm(t Throughputs) float64 {
	return 1 / (2 * t.perByte())
}

// GPUReference returns primitive throughputs representative of the
// paper's V100-class pipeline: packing at the 34 GB/s measured in
// Sec. 3.2, elementwise conversion near memory bandwidth, cuFFT and
// bucket-select at bandwidth-bound rates. Calibrated so Eq. 4 lands on
// the paper's headline numbers: minimal beneficial k ≈ 30 on 56 Gbps FDR
// InfiniBand and ≈ 2 or less on 10 Gbps Ethernet (Fig. 10).
func GPUReference() Throughputs {
	return Throughputs{
		Tm: 300e9, // bytes/s — bandwidth-bound elementwise conversion
		Tf: 50e9,
		Tp: 34e9, // the paper's measured packing throughput
		Ts: 75e9,
	}
}

package perfmodel

import (
	"errors"
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := GPUReference().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Throughputs{Tm: 1, Tf: 1, Tp: 0, Ts: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero throughput must fail")
	}
}

func TestEquationConsistency(t *testing.T) {
	// cost_comm(k) + saved(k) must equal the uncompressed cost M/Tcomm.
	m := 100 << 20
	tcomm := 7e9
	for _, k := range []float64{1.5, 2, 10, 100} {
		total := CommunicationCost(m, tcomm, k) + SavedCost(m, tcomm, k)
		want := float64(m) / tcomm
		if math.Abs(total-want) > 1e-9*want {
			t.Fatalf("k=%g: %g + %g != %g", k, CommunicationCost(m, tcomm, k), SavedCost(m, tcomm, k), want)
		}
	}
}

func TestMinRatioAtBreakEven(t *testing.T) {
	tp := GPUReference()
	tcomm := 7e9 // 56 Gbps
	k, err := MinBeneficialRatio(tcomm, tp)
	if err != nil {
		t.Fatal(err)
	}
	// At exactly k the benefit must be ~zero; slightly above it must win;
	// slightly below must lose.
	m := 100 << 20
	if Beneficial(m, tcomm, k*0.99, tp) {
		t.Fatalf("k slightly below minimum (%.2f) should not be beneficial", k)
	}
	if !Beneficial(m, tcomm, k*1.01, tp) {
		t.Fatalf("k slightly above minimum (%.2f) should be beneficial", k)
	}
}

// Fig. 10's qualitative claims: slow networks need tiny k; the paper's
// FDR InfiniBand needs k ≈ tens; beyond MaxTolerableTcomm nothing helps.
func TestFig10Shape(t *testing.T) {
	tp := GPUReference()

	k1g, err := MinBeneficialRatio(1e9/8, tp) // 1 Gbps
	if err != nil {
		t.Fatal(err)
	}
	if k1g > 1.1 {
		t.Fatalf("1GbE minimal ratio %.3f should be ≈1", k1g)
	}

	k10g, err := MinBeneficialRatio(10e9/8, tp) // 10 Gbps
	if err != nil {
		t.Fatal(err)
	}
	if k10g < k1g {
		t.Fatal("faster network must need a larger ratio")
	}
	if k10g > 3 {
		t.Fatalf("10GbE minimal ratio %.3f should be small (paper: ≈2)", k10g)
	}

	kIB, err := MinBeneficialRatio(56e9/8, tp) // 56 Gbps FDR
	if err != nil {
		t.Fatal(err)
	}
	if kIB < 5 || kIB > 100 {
		t.Fatalf("FDR minimal ratio %.1f out of the paper's ballpark (≈30)", kIB)
	}

	// Make the pipeline slower until no ratio helps.
	slow := tp
	slow.Ts = 2e9
	slow.Tp = 2e9
	if _, err := MinBeneficialRatio(56e9/8, slow); !errors.Is(err, ErrNoBeneficialRatio) {
		t.Fatalf("slow pipeline on fast network should have no beneficial ratio, got %v", err)
	}
}

func TestMaxTolerableTcomm(t *testing.T) {
	tp := GPUReference()
	limit := MaxTolerableTcomm(tp)
	if _, err := MinBeneficialRatio(limit*0.99, tp); err != nil {
		t.Fatalf("just below the limit must still work: %v", err)
	}
	if _, err := MinBeneficialRatio(limit*1.01, tp); !errors.Is(err, ErrNoBeneficialRatio) {
		t.Fatalf("just above the limit must fail, got %v", err)
	}
}

func TestEndToEnd(t *testing.T) {
	tp := GPUReference()
	m := 250 << 20
	tcomm := 7e9
	k, err := MinBeneficialRatio(tcomm, tp)
	if err != nil {
		t.Fatal(err)
	}
	with, without := EndToEnd(m, tcomm, 2*k, tp)
	if with >= without {
		t.Fatalf("at 2x the minimal ratio, compression must win: %g vs %g", with, without)
	}
	with, _ = EndToEnd(m, tcomm, k/2, tp)
	if with <= without {
		t.Fatalf("at half the minimal ratio, compression must lose: %g vs %g", with, without)
	}
}

func TestMonotonicityInK(t *testing.T) {
	tp := GPUReference()
	m := 100 << 20
	prev := math.Inf(1)
	for k := 1.0; k <= 64; k *= 2 {
		with, _ := EndToEnd(m, 7e9, k, tp)
		if with > prev {
			t.Fatalf("end-to-end time must fall with k: %g then %g", prev, with)
		}
		prev = with
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := MinBeneficialRatio(-1, GPUReference()); err == nil {
		t.Fatal("negative tcomm must error")
	}
	if _, err := MinBeneficialRatio(1e9, Throughputs{}); err == nil {
		t.Fatal("zero throughputs must error")
	}
}

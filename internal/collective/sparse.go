package collective

import (
	"encoding/binary"
	"math"
	"math/bits"

	"fftgrad/internal/pack"
)

// SparseAllreduce sums packed sparse vectors across all ranks and
// returns the identical packed result on every rank plus the bytes this
// rank moved. The ring and tree strategies delegate to comm's ring
// schedule (the tree gains nothing on a sum that every rank needs).
//
// The hierarchical strategy is where index deduplication pays: each
// group leader ORs its members' bitmaps and sums their values *before*
// anything crosses the inter-group fabric, so duplicate indices chosen
// by several ranks in one group cross the slow link once, as one
// aggregated sparse block per group, instead of once per rank. The
// result is numerically identical to the ring schedule (floating-point
// sums are reassociated; with disjoint Partitioner contributions even
// bit-identical, since each position has exactly one contributor).
func (e *Exchanger) SparseAllreduce(s *pack.Sparse) (*pack.Sparse, int) {
	if e.cfg.Strategy != Hier {
		return e.cm.SparseAllreduce(s)
	}
	return e.hierSparseAllreduce(s)
}

// appendSparse serializes [u32 words | bitmap | u32 nvals | values].
func appendSparse(dst []byte, bitmap []uint64, values []float32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(bitmap)))
	for _, w := range bitmap {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(values)))
	for _, v := range values {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// mergeSparse deserializes src, ORing the bitmap into mask and adding
// the values into acc at the masked positions — the dedup/sum step.
func mergeSparse(acc []float32, mask []uint64, src []byte) {
	words := int(binary.LittleEndian.Uint32(src))
	off := 4
	base := 0
	vi := off + 8*words + 4
	for w := 0; w < words; w++ {
		word := binary.LittleEndian.Uint64(src[off+8*w:])
		mask[w] |= word
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			acc[i] += math.Float32frombits(binary.LittleEndian.Uint32(src[vi:]))
			vi += 4
			word &= word - 1
		}
		base += 64
	}
}

func (e *Exchanger) hierSparseAllreduce(s *pack.Sparse) (*pack.Sparse, int) {
	cm := e.cm
	p := cm.P()
	g := e.cfg.GroupSize
	rank := cm.RankID()
	leader, lo, hi := e.group()
	isLeader := rank == leader
	n := s.N
	moved := 0

	wire := appendSparse(e.groupBuf[:0], s.Bitmap, s.Values)
	e.groupBuf = wire
	cm.Post(wire)
	cm.Barrier() // all contributions staged

	// Group leaders dedup: one bitmap-OR + value-sum per group, before
	// the inter-group exchange.
	var acc []float32
	var mask []uint64
	if isLeader {
		acc = make([]float32, n)
		mask = make([]uint64, pack.BitmapWords(n))
		for r := lo; r < hi; r++ {
			m := cm.Peek(r)
			mergeSparse(acc, mask, m)
			if r != rank {
				cm.AccountWire(0, len(m))
				moved += len(m)
			}
		}
	} else {
		cm.AccountWire(len(wire), 0)
		moved += len(wire)
	}
	cm.Barrier() // leaders done reading member slots
	var groupAgg []byte
	if isLeader {
		gs := pack.PackMask(acc, mask)
		groupAgg = appendSparse(e.fullBuf[:0], gs.Bitmap, gs.Values)
		e.fullBuf = groupAgg
		cm.Post(groupAgg)
	}
	cm.Barrier() // group aggregates staged

	// Leaders exchange aggregates (ring among leaders) and reduce.
	if isLeader {
		for gl := 0; gl < p; gl += g {
			if gl == rank {
				continue
			}
			m := cm.Peek(gl)
			mergeSparse(acc, mask, m)
			cm.AccountWire(len(groupAgg), len(m))
			moved += len(groupAgg) + len(m)
		}
	}
	cm.Barrier() // leaders done reading each other's aggregates
	var finalWire []byte
	if isLeader {
		fs := pack.PackMask(acc, mask)
		finalWire = appendSparse(nil, fs.Bitmap, fs.Values)
		cm.Post(finalWire)
	}
	cm.Barrier() // final sums staged

	// Everyone decodes its leader's final sum — identical bytes within a
	// group, identical values everywhere.
	src := cm.Peek(leader)
	outAcc := make([]float32, n)
	outMask := make([]uint64, pack.BitmapWords(n))
	mergeSparse(outAcc, outMask, src)
	if isLeader {
		cm.AccountWire((hi-lo-1)*len(src), 0)
		moved += (hi - lo - 1) * len(src)
	} else {
		cm.AccountWire(0, len(src))
		moved += len(src)
	}
	cm.Barrier() // all reads done before slots are reused
	return pack.PackMask(outAcc, outMask), moved
}

package collective

import (
	"math"
	"testing"

	"fftgrad/internal/netsim"
)

// TestCrossoverShift is the netsim acceptance gate: at 64, 256 and 1024
// simulated ranks, the minimum compression ratio k_min at which the
// compressed exchange beats the FP32 ring allreduce must shift with rank
// count in the direction AND approximate magnitude the Sec. 3.3 analytic
// model predicts — for the flat ring, the hierarchical strategy, and the
// bucketed ring.
//
// Closed forms (α/β model, M bytes, bandwidth B, latency L):
//
//	flat ring:  (n−1)(L + (M/k)/B) = 2(n−1)(L + M/(nB))
//	            ⇒ k_min = (M/B) / (L + 2M/(nB))
//	hier(g):    (g+G−2)L + (n−1)(M/k)/B = 2(n−1)L + 2(n−1)M/(nB)
//	            ⇒ k_min = (M/B) / ((2 − (g+G−2)/(n−1))L + 2M/(nB))
//
// Both grow as n grows (the 2M/(nB) term vanishes, leaving the latency
// floor), which is exactly why flat-ring compression stops paying at
// scale and the hierarchical schedule (half the latency floor: its
// asymptote is (M/B)/2L vs (M/B)/L) keeps the crossover reachable.
func TestCrossoverShift(t *testing.T) {
	pr := netsim.Ethernet10G
	const M = 4 << 20 // 4 MiB gradient (2^20 float32)
	ranks := []int{64, 256, 1024}

	flat := Config{Strategy: Ring}.WithDefaults()
	hier := Config{Strategy: Hier, GroupSize: 8}.WithDefaults()

	closedFlat := func(n int) float64 {
		return (float64(M) / pr.Bandwidth) / (pr.Latency + 2*float64(M)/(float64(n)*pr.Bandwidth))
	}
	closedHier := func(n int) float64 {
		g := hier.GroupSize
		G := (n + g - 1) / g
		coef := 2 - float64(g+G-2)/float64(n-1)
		return (float64(M) / pr.Bandwidth) / (coef*pr.Latency + 2*float64(M)/(float64(n)*pr.Bandwidth))
	}

	var prevF, prevH float64
	kF := map[int]float64{}
	kH := map[int]float64{}
	for _, n := range ranks {
		f := flat.KMin(pr, n, M)
		h := hier.KMin(pr, n, M)
		kF[n], kH[n] = f, h
		t.Logf("n=%4d  k_min flat=%.1f (analytic %.1f)  hier=%.1f (analytic %.1f)",
			n, f, closedFlat(n), h, closedHier(n))

		// Direction: k_min grows with rank count.
		if f <= prevF || h <= prevH {
			t.Fatalf("n=%d: k_min did not grow (flat %.2f after %.2f, hier %.2f after %.2f)", n, f, prevF, h, prevH)
		}
		prevF, prevH = f, h

		// Magnitude: bisected k_min matches the closed form within 3%.
		if rel := math.Abs(f-closedFlat(n)) / closedFlat(n); rel > 0.03 {
			t.Errorf("n=%d flat k_min %.2f deviates %.1f%% from analytic %.2f", n, f, 100*rel, closedFlat(n))
		}
		if rel := math.Abs(h-closedHier(n)) / closedHier(n); rel > 0.03 {
			t.Errorf("n=%d hier k_min %.2f deviates %.1f%% from analytic %.2f", n, h, 100*rel, closedHier(n))
		}

		// The hierarchical schedule needs strictly less compression to win.
		if h >= f {
			t.Errorf("n=%d: hier k_min %.2f not below flat %.2f", n, h, f)
		}
	}
	// The hierarchical crossover also shifts *slower*: its latency floor
	// is half the flat ring's.
	if rH, rF := kH[1024]/kH[64], kF[1024]/kF[64]; rH >= rF {
		t.Errorf("hier crossover growth %.2fx should undercut flat %.2fx", rH, rF)
	}

	// Bucketed ring: overlap can only help, so the pipeline's k_min is at
	// most the sequential (no-overlap) pipeline's, and it still shifts up
	// with rank count. Bucketing multiplies the ring's latency floor by
	// the bucket count, so it only makes sense in the bandwidth-bound
	// regime — priced here at the paper's VGG scale (250 MiB gradient),
	// where 16 buckets' extra latency is noise against the volume terms.
	const buckets = 16
	const codec = 2e9 // compressor raw-input throughput, bytes/s
	const Mb = 250 << 20
	prevB := 0.0
	for _, n := range ranks {
		kb := flat.KMinBucketed(pr, n, Mb, buckets, codec)
		compSec := float64(Mb) / buckets / codec
		seq := bisectRatio(func(k float64) float64 {
			per := flat.ModelAllgather(pr, n, int(float64(Mb)/k)/buckets)
			return float64(buckets) * (compSec + per)
		}, pr.RingAllreduce(n, Mb))
		t.Logf("n=%4d  k_min bucketed=%.1f sequential=%.1f", n, kb, seq)
		if kb > seq {
			t.Errorf("n=%d: overlapped pipeline k_min %.2f exceeds sequential %.2f", n, kb, seq)
		}
		if kb <= prevB {
			t.Errorf("n=%d: bucketed k_min %.2f did not grow past %.2f", n, kb, prevB)
		}
		prevB = kb
	}
}

// TestModelBucketedExchange: full overlap hides codec time entirely when
// exchange dominates; exposed comm is wall minus codec.
func TestModelBucketedExchange(t *testing.T) {
	pr := netsim.Ethernet10G
	cfg := Config{Strategy: Ring}.WithDefaults()
	wall, exposed := cfg.ModelBucketedExchange(pr, 64, 1<<20, 8, 1e-9)
	if exposed <= 0 || wall < exposed {
		t.Fatalf("wall=%g exposed=%g", wall, exposed)
	}
	// Tiny codec cost: wall ≈ exposed ≈ sum of per-bucket exchanges.
	per := cfg.ModelAllgather(pr, 64, (1<<20)/8)
	if math.Abs(wall-8*per)/wall > 0.01 {
		t.Fatalf("wall %g should be ~8 bucket exchanges (%g)", wall, 8*per)
	}
	// Huge codec cost: wall is codec-bound, exposed only the last bucket.
	wall2, exposed2 := cfg.ModelBucketedExchange(pr, 64, 1<<20, 8, 1.0)
	if wall2 < 8 {
		t.Fatalf("codec-bound wall %g < 8", wall2)
	}
	if exposed2 > per+1e-9 {
		t.Fatalf("codec-bound exposed %g should collapse to one bucket exchange %g", exposed2, per)
	}
}

// TestModelTreeSmallMessage: for small messages the tree model must
// undercut the flat ring allgather (log vs linear latency), and fall
// back to the ring price when the fabric has no link term.
func TestModelTreeSmallMessage(t *testing.T) {
	pr := netsim.InfiniBandFDR
	tree := Config{Strategy: Tree}.WithDefaults()
	flat := Config{Strategy: Ring}.WithDefaults()
	if tt, ft := tree.ModelAllgather(pr, 256, 64), flat.ModelAllgather(pr, 256, 64); tt >= ft {
		t.Fatalf("small-message tree %g should beat flat %g", tt, ft)
	}
	// netsim.Hierarchical has no PointToPoint: fall back to ring price.
	hf := netsim.CometCluster()
	if got, want := tree.ModelAllgather(hf, 16, 1000), hf.Allgather(16, 1000); got != want {
		t.Fatalf("fallback price %g, want %g", got, want)
	}
}

// TestModelMatchesNetsimShapes: the hier strategy model over a flat
// profile equals the two-stage sum netsim.Hierarchical would price with
// the same group size on the same fabric for both stages.
func TestModelMatchesNetsimShapes(t *testing.T) {
	pr := netsim.Ethernet10G
	cfg := Config{Strategy: Hier, GroupSize: 4}.WithDefaults()
	n, m := 64, 10000
	want := pr.Allgather(4, m) + pr.Allgather(16, 4*m)
	if got := cfg.ModelAllgather(pr, n, m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("hier model %g, want %g", got, want)
	}
}

// Package collective owns the gradient exchange *strategy*: which
// schedule moves the compressed payloads between ranks, decoupled from
// the comm primitives that stage the bytes. The paper's Sec. 3.3 cost
// model says compression wins only when the collective's volume and
// latency terms are beaten; at 64–1024 ranks the flat ring allgather's
// (p−1) latency terms and p·m received bytes dominate, so this package
// adds the schedules that keep the crossover favorable at scale:
//
//   - Ring: the flat schedule comm implements natively (the baseline).
//   - Hierarchical: intra-group gather → inter-group exchange among the
//     group leaders → intra-group broadcast, mirroring the analytic
//     shape of netsim.Hierarchical (DGC's bandwidth-at-scale regime).
//   - Tree: binomial gather + broadcast, ⌈log2 p⌉ rounds — the latency
//     winner for small (aggressively compressed) messages.
//
// On top of any strategy, gradient bucketing (bucket.go) splits the flat
// payload into fixed-byte buckets exchanged in flight while later
// buckets are still being compressed, and the MiCRO-style partitioner
// (partition.go) gives each rank a disjoint index range so sparse index
// traffic stops growing with p.
//
// All schedules run over comm's Post/Peek/Barrier staging substrate, so
// every strategy returns bit-identical message sets in rank order — a
// run that switches strategy changes wall time and wire volume, never
// arithmetic.
package collective

import (
	"fmt"

	"fftgrad/internal/comm"
)

// Strategy names an exchange schedule.
type Strategy string

const (
	// Ring is the flat ring allgather/broadcast (the default).
	Ring Strategy = "ring"
	// Hier is the hierarchical group schedule.
	Hier Strategy = "hier"
	// Tree is the binomial-tree schedule.
	Tree Strategy = "tree"
	// Gossip is decentralized ring-neighbor averaging (D-PSGD style):
	// no root, no global barrier — each rank mixes with its two nearest
	// live ring neighbors under Metropolis weights. It is not an
	// allgather (ranks intentionally see different message sets), so it
	// runs only on the failure-aware path, where cluster.GossipExchange
	// implements it over the point-to-point mesh; the barrier-based
	// Exchanger rejects it.
	Gossip Strategy = "gossip"
)

// Config selects and parameterizes the exchange strategy.
type Config struct {
	// Strategy picks the schedule; empty means Ring.
	Strategy Strategy
	// GroupSize is the hierarchical group width (ranks per leader),
	// matching netsim.Hierarchical.RanksPerHost. Default 4. The tuning
	// rule (DESIGN.md Sec. 12): set it to the rank count per
	// shared-bandwidth domain, or √p when the fabric is uniform — that
	// equalizes the intra and inter stage volumes.
	GroupSize int
	// BucketBytes > 0 splits the flat gradient into fixed-byte buckets
	// (of raw FP32 payload) that are compressed and exchanged in flight
	// with compute/comm overlap. 0 keeps the monolithic exchange.
	BucketBytes int
	// Partitioned enables MiCRO-style disjoint-partition selection on
	// the sparse-allreduce path: each rank selects only inside its own
	// rotating index partition, so selection cost and index traffic stay
	// flat as p grows.
	Partitioned bool
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Strategy == "" {
		c.Strategy = Ring
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 4
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch c.Strategy {
	case "", Ring, Hier, Tree, Gossip:
	default:
		return fmt.Errorf("collective: unknown strategy %q (want ring, hier, tree or gossip)", c.Strategy)
	}
	if c.BucketBytes < 0 {
		return fmt.Errorf("collective: negative BucketBytes %d", c.BucketBytes)
	}
	if c.Strategy == Gossip && c.BucketBytes > 0 {
		return fmt.Errorf("collective: gossip exchanges whole gradients with ring neighbors; BucketBytes does not apply")
	}
	return nil
}

// Exchanger is one rank's strategy-aware collective endpoint. Like
// comm.Comm it must be driven by exactly one goroutine, and every rank
// of the cluster must call the same methods in the same order.
type Exchanger struct {
	cm  *comm.Comm
	cfg Config

	out [][]byte // reused result slice, rewritten by the next Allgather

	// Hierarchical scratch (leaders only): the group block and the
	// assembled full set. fullBuf is rewritten only after the next
	// call's first barrier, by which point every rank has finished with
	// the previous result — same aliasing discipline as comm.Allgather.
	groupBuf, fullBuf []byte

	// Tree scratch, double-buffered by call parity: the root's gather
	// buffer is aliased by every rank's previous result and the root
	// starts rewriting it before the next call's first barrier.
	treeBuf [2][]byte
	calls   int
}

// New returns the exchanger for cfg on endpoint cm. A nil cfg selects
// the flat ring strategy.
func New(cfg *Config, cm *comm.Comm) *Exchanger {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	c = c.WithDefaults()
	return &Exchanger{cm: cm, cfg: c, out: make([][]byte, 0, cm.P())}
}

// Comm returns the underlying endpoint.
func (e *Exchanger) Comm() *comm.Comm { return e.cm }

// Configured returns the (defaulted) configuration.
func (e *Exchanger) Configured() Config { return e.cfg }

// Allgather contributes data and returns every rank's contribution in
// rank order — identical content for every strategy; only the schedule
// (and therefore the accounted wire volume and the trace spans) differ.
// The returned slices alias strategy-internal or sender buffers and stay
// valid until the *next* Allgather/Broadcast call on this exchanger.
func (e *Exchanger) Allgather(data []byte) [][]byte {
	switch e.cfg.Strategy {
	case Hier:
		return e.hierAllgather(data)
	case Tree:
		return e.treeAllgather(data)
	default:
		e.out = e.cm.AllgatherInto(e.out[:0], data)
		return e.out
	}
}

// Broadcast returns root's buffer on every rank, scheduled per strategy.
func (e *Exchanger) Broadcast(data []byte, root int) []byte {
	switch e.cfg.Strategy {
	case Hier:
		return e.hierBroadcast(data, root)
	case Tree:
		return e.treeBroadcast(data, root)
	default:
		return e.cm.Broadcast(data, root)
	}
}

// appendFrame appends a [u32 length | payload] frame.
func appendFrame(dst, payload []byte) []byte {
	n := len(payload)
	dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	return append(dst, payload...)
}

// parseFrames appends the p frames in src to out as aliasing sub-slices.
func parseFrames(out [][]byte, src []byte, p int) [][]byte {
	off := 0
	for i := 0; i < p; i++ {
		n := int(src[off]) | int(src[off+1])<<8 | int(src[off+2])<<16 | int(src[off+3])<<24
		off += 4
		out = append(out, src[off:off+n:off+n])
		off += n
	}
	return out
}

// log2ceil returns ⌈log2 n⌉ for n ≥ 1.
func log2ceil(n int) int {
	r := 0
	for v := 1; v < n; v <<= 1 {
		r++
	}
	return r
}

package collective

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fftgrad/internal/comm"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/trace"
)

// runRanks executes body on every rank concurrently and waits.
func runRanks(c *comm.Cluster, body func(cm *comm.Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < c.P(); r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(c.Rank(rank))
		}(r)
	}
	wg.Wait()
}

// rankMsg builds a deterministic per-rank message of varying size.
func rankMsg(rank, round int) []byte {
	r := rand.New(rand.NewSource(int64(rank*1000 + round)))
	m := make([]byte, 16+r.Intn(64))
	r.Read(m)
	return m
}

// TestStrategiesMatchFlatAllgather: every strategy must return exactly
// the flat allgather's message set, in rank order, across repeated
// rounds and ragged group shapes — strategies change schedules, never
// content.
func TestStrategiesMatchFlatAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 9, 13, 16} {
		for _, cfg := range []Config{
			{Strategy: Ring},
			{Strategy: Hier, GroupSize: 1},
			{Strategy: Hier, GroupSize: 3},
			{Strategy: Hier, GroupSize: 4},
			{Strategy: Hier, GroupSize: 64},
			{Strategy: Tree},
		} {
			cfg := cfg
			t.Run(fmt.Sprintf("p=%d/%s/g=%d", p, cfg.Strategy, cfg.GroupSize), func(t *testing.T) {
				cl := comm.NewCluster(p)
				tr := trace.New(p, 4096)
				got := make([][][]byte, p)
				runRanks(cl, func(cm *comm.Comm) {
					cm.AttachTrace(tr.Rank(cm.RankID()))
					ex := New(&cfg, cm)
					for round := 0; round < 4; round++ {
						msgs := ex.Allgather(rankMsg(cm.RankID(), round))
						// Copy: the result is only valid until the next call.
						cp := make([][]byte, len(msgs))
						for i, m := range msgs {
							cp[i] = append([]byte(nil), m...)
						}
						got[cm.RankID()] = cp
					}
				})
				for rank := 0; rank < p; rank++ {
					if len(got[rank]) != p {
						t.Fatalf("rank %d got %d messages, want %d", rank, len(got[rank]), p)
					}
					for j := 0; j < p; j++ {
						want := rankMsg(j, 3)
						if !bytes.Equal(got[rank][j], want) {
							t.Fatalf("rank %d msg %d mismatch: %d bytes vs %d", rank, j, len(got[rank][j]), len(want))
						}
					}
				}
			})
		}
	}
}

// TestStrategiesBroadcast: strategy broadcasts must deliver the root
// payload to every rank, for non-zero roots too.
func TestStrategiesBroadcast(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 12} {
		for _, cfg := range []Config{{Strategy: Ring}, {Strategy: Hier, GroupSize: 3}, {Strategy: Tree}} {
			cfg := cfg
			for _, root := range []int{0, p - 1, p / 2} {
				cl := comm.NewCluster(p)
				payload := rankMsg(root, 99)
				runRanks(cl, func(cm *comm.Comm) {
					ex := New(&cfg, cm)
					var data []byte
					if cm.RankID() == root {
						data = payload
					}
					out := ex.Broadcast(data, root)
					if !bytes.Equal(out, payload) {
						t.Errorf("p=%d %s root=%d rank=%d: broadcast mismatch", p, cfg.Strategy, root, cm.RankID())
					}
				})
			}
		}
	}
}

// TestStrategyWireAccounting: instrumented strategies must account the
// volumes their analytic models price — hier strictly fewer rx bytes
// than the flat ring's p(p−1)m when messages are deduplicated at
// leaders... for allgather content is not deduplicated, so hier moves
// *more* total bytes (blocks transit twice) but over different links;
// what must hold is that every strategy accounts a non-zero, schedule-
// consistent volume.
func TestStrategyWireAccounting(t *testing.T) {
	const p, m = 8, 100
	for _, cfg := range []Config{{Strategy: Ring}, {Strategy: Hier, GroupSize: 4}, {Strategy: Tree}} {
		cfg := cfg
		cl := comm.NewCluster(p)
		reg := telemetry.NewRegistry()
		cl.Instrument(reg)
		msg := make([]byte, m)
		runRanks(cl, func(cm *comm.Comm) {
			ex := New(&cfg, cm)
			ex.Allgather(msg)
		})
		snap := reg.Snapshot()
		tx := snap[`fftgrad_comm_tx_bytes_total{transport="inproc"}`]
		rx := snap[`fftgrad_comm_rx_bytes_total{transport="inproc"}`]
		if tx == 0 || rx == 0 {
			t.Fatalf("%s: no wire accounting (tx=%g rx=%g)", cfg.Strategy, tx, rx)
		}
		if cfg.Strategy == Ring {
			if want := float64(p * (p - 1) * m); tx != want {
				t.Fatalf("ring tx = %g, want %g", tx, want)
			}
		}
	}
}

// TestHierSparseMatchesRing: the hierarchical sparse allreduce with
// leader-side index dedup must produce the same mask and (reassociated)
// sums as the ring schedule.
func TestHierSparseMatchesRing(t *testing.T) {
	const p, n = 9, 500
	cfgH := Config{Strategy: Hier, GroupSize: 3}
	cfgR := Config{Strategy: Ring}
	type res struct {
		bitmap []uint64
		values []float32
	}
	run := func(cfg Config) []res {
		cl := comm.NewCluster(p)
		out := make([]res, p)
		runRanks(cl, func(cm *comm.Comm) {
			rank := cm.RankID()
			ex := New(&cfg, cm)
			pt := NewPartitioner(p, rank, n)
			grad := make([]float32, n)
			r := rand.New(rand.NewSource(int64(rank)))
			for i := range grad {
				grad[i] = float32(r.Intn(9) - 4)
			}
			sp := pt.Select(grad, 0.5, 0)
			sum, moved := ex.SparseAllreduce(sp)
			if moved < 0 {
				t.Errorf("negative moved bytes")
			}
			out[rank] = res{
				bitmap: append([]uint64(nil), sum.Bitmap...),
				values: append([]float32(nil), sum.Values...),
			}
		})
		return out
	}
	rr := run(cfgR)
	hh := run(cfgH)
	for rank := 0; rank < p; rank++ {
		if !equalU64(rr[rank].bitmap, hh[rank].bitmap) {
			t.Fatalf("rank %d: hier mask differs from ring", rank)
		}
		if len(rr[rank].values) != len(hh[rank].values) {
			t.Fatalf("rank %d: value count differs", rank)
		}
		for i := range rr[rank].values {
			// Disjoint partitions: single contributor per index, so even
			// the float sums are bit-identical.
			if rr[rank].values[i] != hh[rank].values[i] {
				t.Fatalf("rank %d value %d: %g vs %g", rank, i, rr[rank].values[i], hh[rank].values[i])
			}
		}
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPartitionerDisjointAndDraining: per-iteration selections across
// ranks must be disjoint; rotation must drain every region's residual
// (every index owned by someone within p iterations); and the summed
// contributions must conserve the gradient signal (error feedback: what
// is not shipped now ships later).
func TestPartitionerDisjoint(t *testing.T) {
	const p, n = 4, 300
	pts := make([]*Partitioner, p)
	for r := range pts {
		pts[r] = NewPartitioner(p, r, n)
	}
	owned := make([]bool, n)
	for iter := 0; iter < p; iter++ {
		seen := make([]int, n)
		for r := 0; r < p; r++ {
			grad := make([]float32, n)
			for i := range grad {
				grad[i] = 1
			}
			sp := pts[r].Select(grad, 0, iter) // θ=0: keep everything in window
			for i := 0; i < n; i++ {
				if sp.Bitmap[i>>6]&(1<<(uint(i)&63)) != 0 {
					seen[i]++
				}
			}
			lo, hi := pts[r].Window(iter)
			for i := lo; i < hi; i++ {
				owned[i] = true
			}
		}
		for i, c := range seen {
			if c > 1 {
				t.Fatalf("iter %d index %d selected by %d ranks — partitions overlap", iter, i, c)
			}
		}
	}
	for i, ok := range owned {
		if !ok {
			t.Fatalf("index %d never owned across %d iterations", i, p)
		}
	}
	// With θ=0 the window residual is fully shipped each time it is
	// owned, so after p iterations the banked residual per index equals
	// the grads accumulated since its last ownership turn — strictly
	// less than p iterations' worth.
	for r := 0; r < p; r++ {
		for i, v := range pts[r].res {
			if v >= float32(p) {
				t.Fatalf("rank %d residual[%d]=%g never drained", r, i, v)
			}
		}
	}
}

// TestBuckets: boundary arithmetic.
func TestBuckets(t *testing.T) {
	b := MakeBuckets(1000, 400) // 100 floats per bucket
	if b.Count() != 10 {
		t.Fatalf("count = %d, want 10", b.Count())
	}
	prev := 0
	for i := 0; i < b.Count(); i++ {
		lo, hi := b.Range(i)
		if lo != prev || hi <= lo {
			t.Fatalf("bucket %d range [%d,%d) not contiguous from %d", i, lo, hi, prev)
		}
		prev = hi
	}
	if prev != 1000 {
		t.Fatalf("buckets end at %d, want 1000", prev)
	}
	if MakeBuckets(1000, 0).Count() != 1 {
		t.Fatal("bucketBytes=0 must yield one bucket")
	}
	if MakeBuckets(10, 1<<20).Count() != 1 {
		t.Fatal("oversized bucket must yield one bucket")
	}
	if got := MakeBuckets(7, 8).Count(); got != 4 {
		t.Fatalf("ragged split = %d buckets, want 4", got)
	}
}

// TestConfigValidate covers the error paths wired to trainer/serve.
func TestConfigValidate(t *testing.T) {
	if err := (Config{Strategy: "mesh"}).Validate(); err == nil {
		t.Error("unknown strategy must fail validation")
	}
	if err := (Config{BucketBytes: -1}).Validate(); err == nil {
		t.Error("negative BucketBytes must fail validation")
	}
	c := (Config{}).WithDefaults()
	if c.Strategy != Ring || c.GroupSize != 4 {
		t.Fatalf("defaults = %+v", c)
	}
}

package collective

// Buckets partitions an n-element float32 gradient into fixed-byte
// buckets (of raw FP32 payload). dist compresses and exchanges bucket b
// while bucket b+1 is still being sparsified on the persistent parallel
// pool — the compute/communication overlap that hides codec time behind
// the fabric. Each bucket keeps its own compressor instance, so CRC
// framing and error-feedback residuals are accounted per bucket and the
// concatenation of the per-bucket residuals is exactly the flat
// residual partitioned.
type Buckets struct {
	bounds []int
}

// MakeBuckets splits n float32 elements into ⌈4n/bucketBytes⌉ buckets.
// bucketBytes ≤ 0 (or ≥ the whole payload) yields a single bucket.
func MakeBuckets(n, bucketBytes int) Buckets {
	per := bucketBytes / 4
	if per <= 0 || per >= n {
		per = n
	}
	if per < 1 {
		per = 1
	}
	count := (n + per - 1) / per
	if count < 1 {
		count = 1
	}
	b := Buckets{bounds: make([]int, count+1)}
	for i := 0; i <= count; i++ {
		// Balanced split: every bucket within one element of the others,
		// so the pipeline's per-bucket codec cost is uniform.
		b.bounds[i] = i * n / count
	}
	return b
}

// Count returns the number of buckets.
func (b Buckets) Count() int { return len(b.bounds) - 1 }

// Range returns bucket i's element range [lo, hi).
func (b Buckets) Range(i int) (lo, hi int) { return b.bounds[i], b.bounds[i+1] }

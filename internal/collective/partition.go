package collective

import (
	"fftgrad/internal/pack"
	"fftgrad/internal/sparsify"
)

// Partitioner implements MiCRO-style disjoint-partition sparsification:
// the index space is split into p word-aligned partitions and each rank
// selects its top-(1−θ) only inside the partition it currently owns.
// Selections are disjoint by construction, so the sparse exchange sums
// non-overlapping contributions — no duplicate indices ever cross the
// wire, selection cost per rank drops by p, and index traffic stays flat
// as p grows (each position is shipped by exactly one rank).
//
// Ownership rotates by one partition per iteration so the local residual
// of every unowned region drains within p iterations: gradient values a
// rank could not ship (outside its window, or below its threshold)
// accumulate in res and are re-added the next time they are considered —
// the usual error-feedback invariant, kept entirely local.
type Partitioner struct {
	p, rank int
	bounds  []int
	res     []float32
	work    []float32
	mask    []uint64
}

// NewPartitioner creates the per-rank state for an n-element gradient
// across p ranks.
func NewPartitioner(p, rank, n int) *Partitioner {
	words := pack.BitmapWords(n)
	pt := &Partitioner{
		p:      p,
		rank:   rank,
		bounds: make([]int, p+1),
		res:    make([]float32, n),
		work:   make([]float32, n),
		mask:   make([]uint64, words),
	}
	// Word-aligned partition boundaries (same scheme as the sparse ring),
	// so a window's bitmap is a word-range of the full mask.
	for i := 0; i <= p; i++ {
		pt.bounds[i] = (i * words / p) * 64
	}
	pt.bounds[p] = n
	return pt
}

// Window returns the [lo, hi) index range this rank owns at iter.
func (pt *Partitioner) Window(iter int) (lo, hi int) {
	own := (pt.rank + iter) % pt.p
	return pt.bounds[own], pt.bounds[own+1]
}

// Select folds the residual into grad, picks the top-(1−θ) magnitudes
// inside this rank's window for iter, updates the residual, and returns
// the packed disjoint contribution. Because contributions are disjoint,
// the exchanged sum needs no 1/p averaging — each position's value comes
// from exactly one rank.
func (pt *Partitioner) Select(grad []float32, theta float64, iter int) *pack.Sparse {
	lo, hi := pt.Window(iter)
	// Positions outside the window are not shipped this iteration: bank
	// the full signal in the residual. Inside the window the residual is
	// folded into the working copy before selection.
	for i := 0; i < lo; i++ {
		pt.res[i] += grad[i]
	}
	for i := hi; i < len(grad); i++ {
		pt.res[i] += grad[i]
	}
	for i := range pt.mask {
		pt.mask[i] = 0
	}
	if lo < hi {
		for i := lo; i < hi; i++ {
			pt.work[i] = grad[i] + pt.res[i]
		}
		sparsify.TopKSpatialMask(pt.mask[lo>>6:(hi+63)>>6], pt.work[lo:hi], theta)
		for i := lo; i < hi; i++ {
			if pt.mask[i>>6]&(1<<(uint(i)&63)) != 0 {
				pt.res[i] = 0
			} else {
				pt.res[i] = pt.work[i]
				pt.work[i] = 0
			}
		}
	}
	return pack.PackMask(pt.work, pt.mask)
}

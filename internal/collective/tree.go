package collective

import (
	"time"

	"fftgrad/internal/trace"
)

// treeAllgather gathers every rank's frame up a binomial tree rooted at
// rank 0 (⌈log2 p⌉ rounds; the sender at round k is every rank whose
// lowest set bit is bit k), then broadcasts the assembled set back down
// the same tree. 2⌈log2 p⌉ rounds total instead of the ring's 2(p−1) —
// the latency winner when compression has made the messages small.
func (e *Exchanger) treeAllgather(data []byte) [][]byte {
	cm := e.cm
	p := cm.P()
	rank := cm.RankID()
	r := log2ceil(p)
	tc := cm.Trace()

	// Gather. A receiver at round k covers ranks [v, v+2^k) and absorbs
	// its partner's buffer covering [v+2^k, v+2^(k+1)) ∩ [0, p), so the
	// concatenation stays in rank order. The buffer is double-buffered
	// by call parity: the root's gather buffer is what every rank's
	// previous result aliases, and the root starts rewriting it before
	// the next call's first barrier.
	var tb time.Time
	if tc != nil {
		tb = time.Now()
	}
	buf := appendFrame(e.treeBuf[e.calls&1][:0], data)
	sent := false
	for k := 0; k < r; k++ {
		bit := 1 << k
		if !sent && rank&bit != 0 {
			cm.Post(buf)
			cm.AccountWire(len(buf), 0)
			sent = true
		}
		cm.Barrier() // round-k senders staged
		if !sent {
			if partner := rank + bit; partner < p {
				m := cm.Peek(partner)
				buf = append(buf, m...)
				cm.AccountWire(0, len(m))
			}
		}
		cm.Barrier() // round-k reads done
	}
	e.treeBuf[e.calls&1] = buf
	e.calls++
	if rank == 0 {
		tc.SpanSince(trace.OpTreeGather, int64(len(buf)), tb)
	}

	// Broadcast the root's full set down the tree and parse it.
	full := e.treeCast(buf, 0, trace.OpTreeBcast)
	e.out = parseFrames(e.out[:0], full, p)
	cm.Barrier() // all reads done before slots are reused
	return e.out
}

// treeBroadcast is the standalone binomial broadcast used for parameter
// re-synchronization.
func (e *Exchanger) treeBroadcast(data []byte, root int) []byte {
	out := e.treeCast(data, root, trace.OpTreeBcast)
	e.cm.Barrier() // all reads done before slots are reused
	return out
}

// treeCast runs a binomial broadcast of root's data (relative ranks make
// any root work): a rank whose relative rank has lowest set bit k
// receives from its parent at round k (rounds descend from the top bit)
// and stages the alias for its own children in later rounds. One
// barrier per round: a parent's slot is posted once and stays stable, so
// round k's readers only touch slots staged in earlier rounds.
func (e *Exchanger) treeCast(data []byte, root int, op trace.Op) []byte {
	cm := e.cm
	p := cm.P()
	rank := cm.RankID()
	rel := (rank - root + p) % p
	r := log2ceil(p)
	tc := cm.Trace()

	var tb time.Time
	if tc != nil {
		tb = time.Now()
	}
	var hold []byte
	if rank == root {
		hold = data
		cm.Post(hold)
	}
	cm.Barrier() // root staged
	for k := r - 1; k >= 0; k-- {
		bit := 1 << k
		if hold == nil && rel&bit != 0 && rel&(bit-1) == 0 {
			parent := (root + rel - bit) % p
			hold = cm.Peek(parent)
			cm.AccountWire(0, len(hold))
			cm.Post(hold) // stage for my children in later rounds
		} else if hold != nil {
			if child := rel + bit; child < p {
				cm.AccountWire(len(hold), 0)
			}
		}
		cm.Barrier() // round-k reads and stagings done
	}
	tc.SpanSince(op, int64(len(hold)), tb)
	return hold
}

package collective

import (
	"sync"
	"testing"

	"fftgrad/internal/comm"
	"fftgrad/internal/trace"
)

// TestStrategiesZeroAllocSteadyState extends the repo's allocs-exact
// discipline to the strategy layer: once the frame buffers and result
// slices have grown to steady state, a full hier or tree allgather +
// broadcast round allocates nothing on any rank, tracer attached. Ranks
// are persistent goroutines stepped over channels so launches don't
// pollute the measurement.
func TestStrategiesZeroAllocSteadyState(t *testing.T) {
	const p = 16
	for _, cfg := range []Config{
		{Strategy: Ring},
		{Strategy: Hier, GroupSize: 4},
		{Strategy: Tree},
	} {
		cfg := cfg
		t.Run(string(cfg.Strategy), func(t *testing.T) {
			cl := comm.NewCluster(p)
			tr := trace.New(p, 1<<14)
			msgs := make([][]byte, p)
			for r := range msgs {
				msgs[r] = make([]byte, 256+16*r)
			}
			start := make(chan struct{})
			done := make(chan struct{})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					cm := cl.Rank(rank)
					cm.AttachTrace(tr.Rank(rank))
					ex := New(&cfg, cm)
					for {
						select {
						case <-stop:
							return
						case <-start:
						}
						out := ex.Allgather(msgs[rank])
						if len(out) != p {
							panic("bad allgather result")
						}
						ex.Broadcast(msgs[rank], 5)
						done <- struct{}{}
					}
				}(r)
			}
			step := func() {
				for i := 0; i < p; i++ {
					start <- struct{}{}
				}
				for i := 0; i < p; i++ {
					<-done
				}
			}
			// Warm both parity buffers and the trace ring.
			step()
			step()
			allocs := testing.AllocsPerRun(10, step)
			close(stop)
			wg.Wait()
			if allocs != 0 {
				t.Fatalf("%s steady-state round allocated %.1f times, want 0", cfg.Strategy, allocs)
			}
		})
	}
}

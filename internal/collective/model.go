package collective

import (
	"math"

	"fftgrad/internal/netsim"
)

// Fabric prices the base collectives — the same shape dist.Config.Fabric
// uses, satisfied by netsim.Profile and netsim.Hierarchical.
type Fabric interface {
	Allgather(n, m int) float64
	Broadcast(n, m int) float64
}

// LinkFabric additionally prices a single link, which the tree model
// needs for its per-round terms. netsim.Profile satisfies it.
type LinkFabric interface {
	Fabric
	PointToPoint(m int) float64
}

// ModelAllgather prices one exchange of m compressed bytes per rank
// across n ranks under the configured strategy:
//
//	ring:  (n−1) steps of m bytes — netsim's flat allgather.
//	hier:  intra allgather of g members + inter allgather of the G=⌈n/g⌉
//	       group blocks (g·m bytes each) — the two netsim.Hierarchical
//	       stages. Bandwidth volume matches the ring ((g−1)m + (G−1)gm ≈
//	       (n−1)m) but only g+G−2 latency terms are paid instead of n−1.
//	tree:  ⌈log2 n⌉ gather rounds (round k moves 2^k·m) plus ⌈log2 n⌉
//	       broadcast rounds of the full n·m set; needs a LinkFabric and
//	       falls back to the ring price otherwise.
func (c Config) ModelAllgather(f Fabric, n, m int) float64 {
	switch c.Strategy {
	case Hier:
		g := c.GroupSize
		if g <= 0 {
			g = 4
		}
		if g > n {
			g = n
		}
		groups := (n + g - 1) / g
		return f.Allgather(g, m) + f.Allgather(groups, m*g)
	case Tree:
		lf, ok := f.(LinkFabric)
		if !ok {
			return f.Allgather(n, m)
		}
		t := 0.0
		for k := 0; 1<<k < n; k++ {
			t += lf.PointToPoint((1 << k) * m)
		}
		t += float64(log2ceil(n)) * lf.PointToPoint(n*m)
		return t
	case Gossip:
		// One decentralized round: two neighbor exchanges of m bytes,
		// independent of n. Not comparable to an allgather's information
		// dissemination (consensus takes O(n) rounds on a ring); the
		// price models wire time per training iteration, which is what
		// the Sec. 3.3 accounting needs.
		if lf, ok := f.(LinkFabric); ok {
			return 2 * lf.PointToPoint(m)
		}
		return f.Allgather(2, m)
	default:
		return f.Allgather(n, m)
	}
}

// ModelBroadcast prices a broadcast of m bytes to n ranks under the
// strategy. The hier and ring schedules both resolve to the fabric's own
// (binomial) broadcast term; the tree schedule prices its explicit
// per-round links when the fabric exposes them.
func (c Config) ModelBroadcast(f Fabric, n, m int) float64 {
	if c.Strategy == Tree {
		if lf, ok := f.(LinkFabric); ok {
			return float64(log2ceil(n)) * lf.PointToPoint(m)
		}
	}
	return f.Broadcast(n, m)
}

// ModelBucketedExchange prices the bucketed pipeline: the payload is
// split into `buckets` pieces, each compressed in compSecPerBucket and
// exchanged under the strategy while the next bucket compresses. It
// returns the pipeline's wall time and the *exposed* communication (wall
// minus total codec time) — the quantity that competes with the FP32
// baseline in the Sec. 3.3 crossover once overlap hides codec cost.
func (c Config) ModelBucketedExchange(f Fabric, n, mTotal, buckets int, compSecPerBucket float64) (wall, exposed float64) {
	if buckets < 1 {
		buckets = 1
	}
	mb := (mTotal + buckets - 1) / buckets
	t := c.ModelAllgather(f, n, mb)
	wall = compSecPerBucket // bucket 0's codec is never hidden
	for b := 0; b < buckets; b++ {
		if b < buckets-1 {
			wall += math.Max(t, compSecPerBucket) // exchange b ∥ compress b+1
		} else {
			wall += t // last exchange has nothing left to hide behind
		}
	}
	exposed = wall - float64(buckets)*compSecPerBucket
	if exposed < 0 {
		exposed = 0
	}
	return wall, exposed
}

// KMin returns the minimum compression ratio k at which the strategy's
// compressed allgather of an mBytes gradient beats the lossless FP32
// ring allreduce across n ranks on profile pr — the generalized Sec. 3.3
// crossover, found by bisection on the monotone time-vs-ratio curve.
// Returns 1 when even uncompressed allgather wins, +Inf when no finite
// ratio can win (the latency floor exceeds the baseline).
func (c Config) KMin(pr netsim.Profile, n, mBytes int) float64 {
	base := pr.RingAllreduce(n, mBytes)
	at := func(k float64) float64 {
		return c.ModelAllgather(pr, n, int(float64(mBytes)/k))
	}
	return bisectRatio(at, base)
}

// KMinBucketed is KMin for the bucketed pipeline including codec time:
// the minimum ratio at which the pipeline's wall time (compression
// overlapped with exchange) beats the FP32 ring allreduce. codecBytesPerSec
// is the compressor's raw-input throughput.
func (c Config) KMinBucketed(pr netsim.Profile, n, mBytes, buckets int, codecBytesPerSec float64) float64 {
	base := pr.RingAllreduce(n, mBytes)
	compSec := float64(mBytes) / float64(buckets) / codecBytesPerSec
	at := func(k float64) float64 {
		wall, _ := c.ModelBucketedExchange(pr, n, int(float64(mBytes)/k), buckets, compSec)
		return wall
	}
	return bisectRatio(at, base)
}

// bisectRatio finds the smallest k ≥ 1 with at(k) ≤ base.
func bisectRatio(at func(float64) float64, base float64) float64 {
	if at(1) <= base {
		return 1
	}
	lo, hi := 1.0, 2.0
	for at(hi) > base {
		lo, hi = hi, hi*2
		if hi > 1e12 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if at(mid) > base {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

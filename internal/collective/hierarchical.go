package collective

import (
	"time"

	"fftgrad/internal/trace"
)

// group returns this rank's leader and the group's [lo, hi) rank range.
func (e *Exchanger) group() (leader, lo, hi int) {
	g := e.cfg.GroupSize
	p := e.cm.P()
	rank := e.cm.RankID()
	leader = rank - rank%g
	hi = leader + g
	if hi > p {
		hi = p
	}
	return leader, leader, hi
}

// hierAllgather runs the three-phase hierarchical schedule:
//
//	intra gather:   every rank's frame is collected by its group leader,
//	inter exchange: leaders allgather the group blocks among themselves,
//	intra bcast:    every rank parses its leader's assembled full set.
//
// With group size g and G = ⌈p/g⌉ groups, a member link carries m up and
// G·g·m down, and a leader link carries (G−1) group blocks — the two
// stages netsim.Hierarchical prices. The message content is identical to
// the flat allgather; only the schedule differs.
func (e *Exchanger) hierAllgather(data []byte) [][]byte {
	cm := e.cm
	p := cm.P()
	g := e.cfg.GroupSize
	rank := cm.RankID()
	leader, lo, hi := e.group()
	isLeader := rank == leader
	tc := cm.Trace()

	cm.Post(data)
	cm.Barrier() // all contributions staged

	// Intra-group gather: leaders frame their members' contributions.
	if isLeader {
		var tb time.Time
		if tc != nil {
			tb = time.Now()
		}
		buf := e.groupBuf[:0]
		for r := lo; r < hi; r++ {
			m := cm.Peek(r)
			buf = appendFrame(buf, m)
			if r != rank {
				cm.AccountWire(0, len(m))
			}
		}
		e.groupBuf = buf
		tc.SpanSince(trace.OpGroupGather, int64(len(buf)), tb)
	} else {
		cm.AccountWire(len(data), 0) // member → leader
	}
	cm.Barrier() // leaders done reading member slots
	if isLeader {
		cm.Post(e.groupBuf)
	}
	cm.Barrier() // group blocks staged

	// Inter-group exchange: leaders assemble every group's block (a ring
	// allgather among the G leaders: each forwards its own block G−1
	// times and receives every other block once).
	if isLeader {
		var tb time.Time
		if tc != nil {
			tb = time.Now()
		}
		full := e.fullBuf[:0]
		for gl := 0; gl < p; gl += g {
			gb := cm.Peek(gl)
			full = append(full, gb...)
			if gl != rank {
				cm.AccountWire(len(e.groupBuf), len(gb))
			}
		}
		e.fullBuf = full
		tc.SpanSince(trace.OpGroupExchange, int64(len(full)), tb)
	}
	cm.Barrier() // leaders done reading each other's blocks
	if isLeader {
		cm.Post(e.fullBuf)
	}
	cm.Barrier() // full sets staged

	// Intra-group broadcast: everyone parses its leader's full set.
	var tb time.Time
	if tc != nil {
		tb = time.Now()
	}
	src := cm.Peek(leader)
	e.out = parseFrames(e.out[:0], src, p)
	if isLeader {
		cm.AccountWire((hi-lo-1)*len(src), 0)
	} else {
		cm.AccountWire(0, len(src))
	}
	tc.SpanSince(trace.OpGroupBcast, int64(len(src)), tb)
	cm.Barrier() // all reads done before slots are reused
	return e.out
}

// hierBroadcast moves root's buffer first to the group leaders, then
// from each leader to its members — the inter-then-intra shape of
// netsim.Hierarchical.Broadcast.
func (e *Exchanger) hierBroadcast(data []byte, root int) []byte {
	cm := e.cm
	rank := cm.RankID()
	leader, lo, hi := e.group()
	isLeader := rank == leader
	m := len(data)

	if rank == root {
		cm.Post(data)
	}
	cm.Barrier()
	// Leaders pick the payload up from root and stage it for their group.
	var hold []byte
	if isLeader {
		hold = cm.Peek(root)
		if rank != root {
			cm.AccountWire(0, m)
		}
	}
	if rank == root {
		// Inter stage: root feeds every other leader.
		nLeaders := (cm.P() + e.cfg.GroupSize - 1) / e.cfg.GroupSize
		cm.AccountWire((nLeaders-1)*m, 0)
	}
	cm.Barrier()
	if isLeader {
		cm.Post(hold)
	}
	cm.Barrier()
	out := cm.Peek(leader)
	if isLeader {
		cm.AccountWire((hi-lo-1)*m, 0)
	} else if rank != root {
		cm.AccountWire(0, m)
	}
	cm.Barrier() // all reads done before slots are reused
	return out
}

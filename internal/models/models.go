// Package models builds the network architectures the paper evaluates, at
// a scale a CPU can train, plus byte-accurate communication profiles of
// the full-size originals for the network experiments.
//
// Two architecture classes matter to the paper's argument:
//
//   - linear CNNs with big early kernels (AlexNet, VGG): per-layer compute
//     dwarfs per-layer communication, so overlapping communication with
//     computation works;
//   - non-linear CNNs built from many small kernels (ResNet, Inception):
//     per-layer compute ≈ communication, so overlap fails and compression
//     is the remaining lever (Sec. 2.1).
//
// The trainable constructors reproduce those structures on 3×32×32 inputs.
package models

import (
	"math/rand"

	"fftgrad/internal/nn"
)

// AlexNetStyle is a scaled-down linear CNN in the AlexNet mold: a large
// early kernel, a deep fully-connected head holding most parameters, no
// normalization, no skips. Input 3×32×32, width scaled by scale (>= 1).
func AlexNetStyle(classes, scale int, seed int64) *nn.Network {
	if scale < 1 {
		scale = 1
	}
	r := rand.New(rand.NewSource(seed))
	c1, c2, c3 := 8*scale, 16*scale, 24*scale
	fc := 64 * scale
	return nn.Sequential(
		nn.NewConv2D(3, c1, 5, 1, 2, r), // the "11×11-class" big kernel, scaled
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 0), // 16×16
		nn.NewConv2D(c1, c2, 5, 1, 2, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 0), // 8×8
		nn.NewConv2D(c2, c3, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 0), // 4×4
		nn.NewFlatten(),
		nn.NewDense(c3*4*4, fc, r), // FC layers dominate params, like AlexNet
		nn.NewReLU(),
		nn.NewDense(fc, classes, r),
	)
}

// ResNetStyle is the CIFAR ResNet family of He et al.: a 3×3 stem, three
// stages of width {16,32,64}·scale with blocksPerStage residual blocks
// each (depth = 6·blocksPerStage+2; blocksPerStage=5 gives ResNet-32),
// global average pooling and a linear classifier. Input 3×32×32.
func ResNetStyle(classes, blocksPerStage, scale int, seed int64) *nn.Network {
	if scale < 1 {
		scale = 1
	}
	if blocksPerStage < 1 {
		blocksPerStage = 1
	}
	r := rand.New(rand.NewSource(seed))
	w := []int{16 * scale, 32 * scale, 64 * scale}

	layers := []nn.Layer{
		nn.NewConv2D(3, w[0], 3, 1, 1, r),
		nn.NewBatchNorm(w[0]),
		nn.NewReLU(),
	}
	inC := w[0]
	for stage := 0; stage < 3; stage++ {
		outC := w[stage]
		for b := 0; b < blocksPerStage; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2 // downsample entering stages 2 and 3
			}
			main := []nn.Layer{
				nn.NewConv2D(inC, outC, 3, stride, 1, r),
				nn.NewBatchNorm(outC),
				nn.NewReLU(),
				nn.NewConv2D(outC, outC, 3, 1, 1, r),
				nn.NewBatchNorm(outC),
			}
			var shortcut []nn.Layer
			if stride != 1 || inC != outC {
				shortcut = []nn.Layer{
					nn.NewConv2D(inC, outC, 1, stride, 0, r),
					nn.NewBatchNorm(outC),
				}
			}
			layers = append(layers, nn.NewResidual(main, shortcut))
			inC = outC
		}
	}
	layers = append(layers,
		nn.NewGlobalAvgPool(),
		nn.NewDense(w[2], classes, r),
	)
	return nn.Sequential(layers...)
}

// VGGMini is a small VGG-style linear CNN: stacked 3×3 convolutions with
// pooling between width doublings and a two-layer FC head.
func VGGMini(classes, scale int, seed int64) *nn.Network {
	if scale < 1 {
		scale = 1
	}
	r := rand.New(rand.NewSource(seed))
	c1, c2, c3 := 8*scale, 16*scale, 32*scale
	return nn.Sequential(
		nn.NewConv2D(3, c1, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewConv2D(c1, c1, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 0), // 16
		nn.NewConv2D(c1, c2, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewConv2D(c2, c2, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 0), // 8
		nn.NewConv2D(c2, c3, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 0), // 4
		nn.NewFlatten(),
		nn.NewDense(c3*4*4, 32*scale, r),
		nn.NewReLU(),
		nn.NewDense(32*scale, classes, r),
	)
}

// InceptionMini stacks two Inception-style fan-out blocks (1×1 / 3×3 /
// 5×5 / pool-projection branches) — the small-kernel, wide-fan-out
// structure that limits communication/computation overlap.
func InceptionMini(classes, scale int, seed int64) *nn.Network {
	if scale < 1 {
		scale = 1
	}
	r := rand.New(rand.NewSource(seed))
	stem := 8 * scale
	b := 4 * scale // per-branch width

	inception := func(inC int) nn.Layer {
		return nn.NewBranches(
			[]nn.Layer{nn.NewConv2D(inC, b, 1, 1, 0, r), nn.NewReLU()},
			[]nn.Layer{
				nn.NewConv2D(inC, b, 1, 1, 0, r), nn.NewReLU(),
				nn.NewConv2D(b, b, 3, 1, 1, r), nn.NewReLU(),
			},
			[]nn.Layer{
				nn.NewConv2D(inC, b, 1, 1, 0, r), nn.NewReLU(),
				nn.NewConv2D(b, b, 5, 1, 2, r), nn.NewReLU(),
			},
			[]nn.Layer{nn.NewConv2D(inC, b, 1, 1, 0, r), nn.NewReLU()},
		)
	}
	return nn.Sequential(
		nn.NewConv2D(3, stem, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 0), // 16
		inception(stem),
		nn.NewMaxPool2D(2, 0), // 8
		inception(4*b),
		nn.NewGlobalAvgPool(),
		nn.NewDense(4*b, classes, r),
	)
}

// TinyCNN is a two-conv classifier for 3×size×size images (size must be
// divisible by 4), small enough for the CPU convergence experiments.
func TinyCNN(classes, size int, seed int64) *nn.Network {
	r := rand.New(rand.NewSource(seed))
	return nn.Sequential(
		nn.NewConv2D(3, 8, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 0),
		nn.NewConv2D(8, 16, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 0),
		nn.NewFlatten(),
		nn.NewDense(16*(size/4)*(size/4), classes, r),
	)
}

// MLP is a plain fully-connected classifier for flat feature vectors,
// used by the fastest-running convergence experiments.
func MLP(in, hidden, classes int, seed int64) *nn.Network {
	r := rand.New(rand.NewSource(seed))
	return nn.Sequential(
		nn.NewDense(in, hidden, r),
		nn.NewReLU(),
		nn.NewDense(hidden, hidden, r),
		nn.NewReLU(),
		nn.NewDense(hidden, classes, r),
	)
}

package models

import (
	"math"
	"math/rand"
	"testing"

	"fftgrad/internal/nn"
	"fftgrad/internal/tensor"
)

func imageBatch(n int, seed int64) *tensor.Tensor {
	r := rand.New(rand.NewSource(seed))
	x := tensor.New(n, 3, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64() * 0.5)
	}
	return x
}

// forwardBackward smoke-tests a full training step and returns the flat
// gradient for inspection.
func forwardBackward(t *testing.T, net *nn.Network, batch int) []float32 {
	t.Helper()
	x := imageBatch(batch, 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = i % 10
	}
	net.ZeroGrads()
	logits := net.Forward(x, true)
	if logits.Dim(0) != batch || logits.Dim(1) != 10 {
		t.Fatalf("logit shape %v", logits.Shape)
	}
	loss, dl := nn.SoftmaxCE{}.Loss(logits, labels)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss %g", loss)
	}
	net.Backward(dl)
	g := net.FlattenGrads(make([]float32, net.NumParams()))
	var nz int
	for _, v := range g {
		if v != v {
			t.Fatal("NaN gradient")
		}
		if v != 0 {
			nz++
		}
	}
	if nz < len(g)/10 {
		t.Fatalf("gradient mostly zero: %d/%d", nz, len(g))
	}
	return g
}

func TestAlexNetStyle(t *testing.T) {
	net := AlexNetStyle(10, 1, 42)
	forwardBackward(t, net, 4)
	// FC layers must dominate the parameter count (AlexNet structure).
	params := net.Params()
	var fc, conv int
	for _, p := range params {
		if len(p.Data) == 0 {
			continue
		}
		if p.Name[0] == 'd' {
			fc += len(p.Data)
		} else {
			conv += len(p.Data)
		}
	}
	if fc <= conv {
		t.Fatalf("AlexNet-style must be FC-heavy: fc=%d conv=%d", fc, conv)
	}
}

func TestResNetStyle(t *testing.T) {
	net := ResNetStyle(10, 2, 1, 42) // depth 14
	forwardBackward(t, net, 4)
}

func TestResNet32Depth(t *testing.T) {
	// blocksPerStage=5 must produce the ResNet-32 layer structure:
	// 1 stem + 15 blocks (2 convs each) + 2 projections + fc.
	net := ResNetStyle(10, 5, 1, 42)
	convs := 0
	for _, p := range net.Params() {
		if p.Name[0] == 'c' && p.Name[len(p.Name)-1] == 'W' {
			convs++
		}
	}
	if convs != 1+15*2+2 {
		t.Fatalf("conv layer count %d want 33", convs)
	}
}

func TestVGGMini(t *testing.T) {
	forwardBackward(t, VGGMini(10, 1, 42), 4)
}

func TestInceptionMini(t *testing.T) {
	forwardBackward(t, InceptionMini(10, 1, 42), 4)
}

func TestMLP(t *testing.T) {
	net := MLP(32, 64, 10, 42)
	x := tensor.New(8, 32)
	r := rand.New(rand.NewSource(2))
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64())
	}
	labels := make([]int, 8)
	net.ZeroGrads()
	logits := net.Forward(x, true)
	_, dl := nn.SoftmaxCE{}.Loss(logits, labels)
	net.Backward(dl)
}

func TestDeterministicInit(t *testing.T) {
	a := AlexNetStyle(10, 1, 7)
	b := AlexNetStyle(10, 1, 7)
	pa := a.GetParams(make([]float32, a.NumParams()))
	pb := b.GetParams(make([]float32, b.NumParams()))
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed must give identical init")
		}
	}
	c := AlexNetStyle(10, 1, 8)
	pc := c.GetParams(make([]float32, c.NumParams()))
	same := 0
	for i := range pa {
		if pa[i] == pc[i] {
			same++
		}
	}
	if same > len(pa)/2 {
		t.Fatal("different seeds should give different init")
	}
}

func TestAlexNetProfileMatchesPaper(t *testing.T) {
	p := AlexNetImageNetProfile()
	mb := float64(p.TotalGradBytes()) / (1 << 20)
	// The paper quotes ≈250 MB; the classic ungrouped AlexNet is ≈244 MB.
	if mb < 230 || mb > 260 {
		t.Fatalf("AlexNet gradient %f MB, expected ≈250", mb)
	}
	// FC layers must hold >90% of bytes while convs hold >80% of FLOPs.
	var fcBytes, convFLOPs float64
	for _, l := range p.Layers {
		if l.Name[0] == 'f' {
			fcBytes += float64(l.GradBytes())
		} else {
			convFLOPs += l.FLOPs
		}
	}
	if fcBytes/float64(p.TotalGradBytes()) < 0.9 {
		t.Fatalf("FC byte share %.2f", fcBytes/float64(p.TotalGradBytes()))
	}
	if convFLOPs/p.TotalFLOPs() < 0.8 {
		t.Fatalf("conv FLOP share %.2f", convFLOPs/p.TotalFLOPs())
	}
}

func TestResNet32ProfileShape(t *testing.T) {
	p := ResNet32CIFARProfile()
	// He et al. report ≈0.46M params for CIFAR ResNet-32.
	if p.TotalParams() < 400_000 || p.TotalParams() > 520_000 {
		t.Fatalf("ResNet32 params %d, expected ≈464k", p.TotalParams())
	}
	// Every layer's gradient must be small: max layer ≈ 64·64·9 ≈ 37k
	// params. That uniformity is what kills overlap.
	for _, l := range p.Layers {
		if l.ParamCount > 40_000 {
			t.Fatalf("layer %s unexpectedly large: %d", l.Name, l.ParamCount)
		}
	}
}

func TestVGG16ProfileMatchesPaper(t *testing.T) {
	p := VGG16ImageNetProfile()
	mb := float64(p.TotalGradBytes()) / (1 << 20)
	// The paper quotes 553 MB ≈ 138M params.
	if mb < 520 || mb > 560 {
		t.Fatalf("VGG16 gradient %f MB, expected ≈528-553", mb)
	}
}

func BenchmarkResNetStyleIteration(b *testing.B) {
	net := ResNetStyle(10, 2, 1, 1)
	x := imageBatch(8, 1)
	labels := make([]int, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, dl := nn.SoftmaxCE{}.Loss(logits, labels)
		net.Backward(dl)
	}
}

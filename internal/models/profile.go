package models

import "fmt"

// LayerProfile describes one parameterized layer of a full-size network
// for the communication experiments: how many gradient bytes it ships per
// iteration and how much compute one iteration costs.
type LayerProfile struct {
	Name       string
	ParamCount int     // learnable scalars (gradient length)
	FLOPs      float64 // forward+backward FLOPs per iteration at BatchSize
}

// GradBytes returns the per-iteration gradient message size (FP32).
func (l LayerProfile) GradBytes() int { return l.ParamCount * 4 }

// CommProfile is the per-layer communication/compute profile of one
// network at a fixed batch size.
type CommProfile struct {
	Name      string
	BatchSize int
	Layers    []LayerProfile
}

// TotalParams returns the total learnable scalar count.
func (p *CommProfile) TotalParams() int {
	t := 0
	for _, l := range p.Layers {
		t += l.ParamCount
	}
	return t
}

// TotalGradBytes returns the full gradient size in bytes (FP32).
func (p *CommProfile) TotalGradBytes() int { return p.TotalParams() * 4 }

// TotalFLOPs returns the per-iteration compute cost.
func (p *CommProfile) TotalFLOPs() float64 {
	var t float64
	for _, l := range p.Layers {
		t += l.FLOPs
	}
	return t
}

// convProfile builds a convolution layer profile. FLOPs counts forward
// (2·out·inC·k² MACs) and roughly 2x more for the backward pass.
func convProfile(name string, inC, outC, k, outH, outW, batch int) LayerProfile {
	params := outC*inC*k*k + outC
	fwd := 2 * float64(outH*outW) * float64(outC) * float64(inC) * float64(k*k) * float64(batch)
	return LayerProfile{Name: name, ParamCount: params, FLOPs: 3 * fwd}
}

// denseProfile builds a fully-connected layer profile.
func denseProfile(name string, in, out, batch int) LayerProfile {
	params := in*out + out
	fwd := 2 * float64(in) * float64(out) * float64(batch)
	return LayerProfile{Name: name, ParamCount: params, FLOPs: 3 * fwd}
}

// AlexNetImageNetProfile reproduces the classic 8-layer AlexNet on
// 227×227 ImageNet at the paper's per-GPU batch size of 64. Its total
// gradient is ≈ 244 MB — the "250 MB" of Sec. 2.1 — with >90% of it in
// the three FC layers, while >90% of the compute is in the convolutions:
// the structure that makes overlap easy (Fig. 2a).
func AlexNetImageNetProfile() *CommProfile {
	b := 64
	return &CommProfile{
		Name:      "AlexNet",
		BatchSize: b,
		Layers: []LayerProfile{
			convProfile("conv1 11x11/4", 3, 96, 11, 55, 55, b),
			convProfile("conv2 5x5", 96, 256, 5, 27, 27, b),
			convProfile("conv3 3x3", 256, 384, 3, 13, 13, b),
			convProfile("conv4 3x3", 384, 384, 3, 13, 13, b),
			convProfile("conv5 3x3", 384, 256, 3, 13, 13, b),
			denseProfile("fc6", 256*6*6, 4096, b),
			denseProfile("fc7", 4096, 4096, b),
			denseProfile("fc8", 4096, 1000, b),
		},
	}
}

// ResNet32CIFARProfile reproduces the CIFAR-10 ResNet-32 of He et al.
// (3 stages × 5 blocks × 2 convs + stem + classifier) at the paper's
// per-GPU batch size of 128. Every layer is a small 3×3 (or 1×1)
// convolution: per-layer compute is comparable to per-layer
// communication, which kills overlap (Fig. 2b).
func ResNet32CIFARProfile() *CommProfile {
	b := 128
	p := &CommProfile{Name: "ResNet32", BatchSize: b}
	add := func(l LayerProfile) { p.Layers = append(p.Layers, l) }

	add(convProfile("stem 3x3", 3, 16, 3, 32, 32, b))
	widths := []int{16, 32, 64}
	sizes := []int{32, 16, 8}
	inC := 16
	for stage := 0; stage < 3; stage++ {
		outC := widths[stage]
		hw := sizes[stage]
		for blk := 0; blk < 5; blk++ {
			name := fmt.Sprintf("s%db%d", stage+1, blk+1)
			add(convProfile(name+".conv1", inC, outC, 3, hw, hw, b))
			add(convProfile(name+".conv2", outC, outC, 3, hw, hw, b))
			if inC != outC {
				add(convProfile(name+".proj", inC, outC, 1, hw, hw, b))
			}
			inC = outC
		}
	}
	add(denseProfile("fc", 64, 10, b))
	return p
}

// VGG16ImageNetProfile reproduces VGG-16 on ImageNet at batch 16 (the
// paper's per-GPU batch for the larger nets); its 553 MB gradient is the
// largest of the four networks in Sec. 2.1.
func VGG16ImageNetProfile() *CommProfile {
	b := 16
	cfg := []struct {
		inC, outC, hw int
	}{
		{3, 64, 224}, {64, 64, 224},
		{64, 128, 112}, {128, 128, 112},
		{128, 256, 56}, {256, 256, 56}, {256, 256, 56},
		{256, 512, 28}, {512, 512, 28}, {512, 512, 28},
		{512, 512, 14}, {512, 512, 14}, {512, 512, 14},
	}
	p := &CommProfile{Name: "VGG16", BatchSize: b}
	for i, c := range cfg {
		p.Layers = append(p.Layers, convProfile(fmt.Sprintf("conv%d 3x3", i+1), c.inC, c.outC, 3, c.hw, c.hw, b))
	}
	p.Layers = append(p.Layers,
		denseProfile("fc6", 512*7*7, 4096, b),
		denseProfile("fc7", 4096, 4096, b),
		denseProfile("fc8", 4096, 1000, b),
	)
	return p
}

package netsim

import "fmt"

// Reconciliation accumulates modeled-vs-measured collective times so a
// run can quantify how well the α/β cost model matches the fabric it is
// actually on. dist feeds it one (modeled, measured) pair per exchange;
// the ratio then either validates the profile or, via Apply, rescales it
// — closing the loop between the paper's analytic Fig. 11 curves and
// live telemetry.
type Reconciliation struct {
	modeledSum  float64
	measuredSum float64
	n           int
}

// Add records one collective: the profile-predicted time and the
// measured wall time, both in seconds. Non-positive pairs are ignored.
func (r *Reconciliation) Add(modeled, measured float64) {
	if r == nil || modeled <= 0 || measured <= 0 {
		return
	}
	r.modeledSum += modeled
	r.measuredSum += measured
	r.n++
}

// Samples returns how many pairs have been recorded.
func (r *Reconciliation) Samples() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Ratio returns measured/modeled over all recorded pairs: >1 means the
// fabric is slower than the profile claims, <1 faster. Returns 1 when
// nothing has been recorded.
func (r *Reconciliation) Ratio() float64 {
	if r == nil || r.n == 0 || r.modeledSum <= 0 {
		return 1
	}
	return r.measuredSum / r.modeledSum
}

// Apply returns p rescaled so its predictions match the measurements:
// bandwidth divided by the ratio and latency multiplied by it (a uniform
// slowdown factor — FitAllgather separates the two terms when per-size
// observations are available).
func (r *Reconciliation) Apply(p Profile) Profile {
	k := r.Ratio()
	if k <= 0 {
		return p
	}
	out := p
	out.Name = p.Name + "-reconciled"
	out.Bandwidth = p.Bandwidth / k
	out.Latency = p.Latency * k
	return out
}

// AllgatherObs is one measured ring allgather: n ranks each contributing
// m bytes took Seconds of wall time.
type AllgatherObs struct {
	N       int
	M       int
	Seconds float64
}

// FitAllgather least-squares fits a Profile to measured allgather times
// using the ring model t = (n−1)·L + (n−1)·m/B, which is linear in the
// unknowns L and 1/B. Observations must span at least two distinct
// (n, m) shapes or the system is singular. The fitted latency is clamped
// at zero (a small negative intercept is measurement noise, not physics).
func FitAllgather(obs []AllgatherObs) (Profile, error) {
	var a11, a12, a22, b1, b2 float64
	used := 0
	for _, o := range obs {
		if o.N <= 1 || o.M <= 0 || o.Seconds <= 0 {
			continue
		}
		s := float64(o.N - 1)
		sm := s * float64(o.M)
		a11 += s * s
		a12 += s * sm
		a22 += sm * sm
		b1 += s * o.Seconds
		b2 += sm * o.Seconds
		used++
	}
	if used < 2 {
		return Profile{}, fmt.Errorf("netsim: need at least 2 usable observations, have %d", used)
	}
	det := a11*a22 - a12*a12
	if det <= 0 || det < 1e-12*a11*a22 {
		return Profile{}, fmt.Errorf("netsim: observations are degenerate (all the same shape?)")
	}
	lat := (a22*b1 - a12*b2) / det
	invB := (a11*b2 - a12*b1) / det
	if invB <= 0 {
		return Profile{}, fmt.Errorf("netsim: fitted bandwidth is non-positive")
	}
	if lat < 0 {
		lat = 0
	}
	return Profile{Name: "fitted", Bandwidth: 1 / invB, Latency: lat}, nil
}

// TreeReduceObs is one measured binomial-tree reduction: n ranks reducing
// an m-byte buffer to a root took Seconds of wall time.
type TreeReduceObs struct {
	N       int
	M       int
	Seconds float64
}

// FitTreeReduce least-squares fits a Profile to measured tree-reduce
// times using t = r·L + r·m/B with r = ⌈log2 n⌉, linear in L and 1/B
// like FitAllgather. With both fits in hand, cmd/sweep can plot ring vs.
// tree vs. hierarchical predictions from the same measured fabric.
func FitTreeReduce(obs []TreeReduceObs) (Profile, error) {
	var a11, a12, a22, b1, b2 float64
	used := 0
	for _, o := range obs {
		if o.N <= 1 || o.M <= 0 || o.Seconds <= 0 {
			continue
		}
		r := float64(log2ceil(o.N))
		rm := r * float64(o.M)
		a11 += r * r
		a12 += r * rm
		a22 += rm * rm
		b1 += r * o.Seconds
		b2 += rm * o.Seconds
		used++
	}
	if used < 2 {
		return Profile{}, fmt.Errorf("netsim: need at least 2 usable observations, have %d", used)
	}
	det := a11*a22 - a12*a12
	if det <= 0 || det < 1e-12*a11*a22 {
		return Profile{}, fmt.Errorf("netsim: observations are degenerate (all the same shape?)")
	}
	lat := (a22*b1 - a12*b2) / det
	invB := (a11*b2 - a12*b1) / det
	if invB <= 0 {
		return Profile{}, fmt.Errorf("netsim: fitted bandwidth is non-positive")
	}
	if lat < 0 {
		lat = 0
	}
	return Profile{Name: "fitted-tree", Bandwidth: 1 / invB, Latency: lat}, nil
}

// Package netsim models the communication cost of the collectives used in
// distributed DNN training on parameterized network fabrics.
//
// This is the stand-in for the paper's physical testbed (4×P100 nodes on
// 56 Gbps FDR InfiniBand): wall-clock communication results in the
// experiments are produced by pricing the *actual message sizes* our
// compressors emit through these α/β (latency/bandwidth) cost models.
// The models are the standard ones from the collective-communication
// literature (Thakur et al.), and reproduce the paper's Fig. 11
// observation that allgather cost grows linearly with the number of GPUs.
package netsim

import "fmt"

// Profile describes one interconnect: per-link bandwidth in bytes/second
// and per-message latency in seconds.
type Profile struct {
	Name      string
	Bandwidth float64 // bytes per second per link direction
	Latency   float64 // seconds per message hop
}

// Standard fabrics used across the experiments. Bandwidths are the usable
// data rates of the nominal link speeds.
var (
	// Ethernet1G is 1 Gbps commodity Ethernet.
	Ethernet1G = Profile{Name: "1GbE", Bandwidth: 1e9 / 8 * 0.9, Latency: 50e-6}
	// Ethernet10G is 10 Gbps Ethernet.
	Ethernet10G = Profile{Name: "10GbE", Bandwidth: 10e9 / 8 * 0.9, Latency: 20e-6}
	// InfiniBandFDR is 56 Gbps FDR InfiniBand (the paper's cluster).
	InfiniBandFDR = Profile{Name: "FDR-IB", Bandwidth: 56e9 / 8 * 0.9, Latency: 2e-6}
	// PCIe3 approximates intra-node GPU-to-GPU transfers over PCIe 3.0 x16,
	// used for runs with ≤4 GPUs on one node (Fig. 16's flat region).
	PCIe3 = Profile{Name: "PCIe3", Bandwidth: 12e9, Latency: 1e-6}
)

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.Bandwidth <= 0 || p.Latency < 0 {
		return fmt.Errorf("netsim: invalid profile %+v", p)
	}
	return nil
}

// PointToPoint returns the time to move m bytes across one link.
func (p Profile) PointToPoint(m int) float64 {
	return p.Latency + float64(m)/p.Bandwidth
}

// RingAllreduce returns the time for a ring allreduce of an m-byte buffer
// across n nodes: 2(n−1) steps each moving m/n bytes.
func (p Profile) RingAllreduce(n, m int) float64 {
	if n <= 1 {
		return 0
	}
	steps := float64(2 * (n - 1))
	return steps*p.Latency + steps*float64(m)/float64(n)/p.Bandwidth
}

// Allgather returns the time for a ring allgather where every node
// contributes m bytes and ends with all n·m bytes: n−1 steps each moving
// m bytes. Cost grows linearly in n — the Fig. 11 curve, and the reason
// compressed allgather still beats uncompressed allreduce only when the
// compression ratio outruns the collective's volume disadvantage.
func (p Profile) Allgather(n, m int) float64 {
	if n <= 1 {
		return 0
	}
	steps := float64(n - 1)
	return steps*p.Latency + steps*float64(m)/p.Bandwidth
}

// Broadcast returns the time for a binomial-tree broadcast of m bytes to
// n nodes: ⌈log2 n⌉ rounds.
func (p Profile) Broadcast(n, m int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(log2ceil(n)) * (p.Latency + float64(m)/p.Bandwidth)
}

// TreeReduce returns the time for a binomial-tree reduction of an m-byte
// buffer to a root across n nodes: ⌈log2 n⌉ rounds, each moving the full
// m bytes over the busiest link. Latency-bound for small m (log n hops
// instead of the ring's 2(n−1)), bandwidth-bound for large m (the root's
// links carry m per round, with no ring-style m/n pipelining).
func (p Profile) TreeReduce(n, m int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(log2ceil(n)) * (p.Latency + float64(m)/p.Bandwidth)
}

// Gossip returns the time for one decentralized ring-gossip round of m
// bytes: each node exchanges with its two ring neighbors, so the cost is
// two point-to-point transfers *independent of n* — the property that
// makes gossip the degraded-mode survivor (a partition slows convergence
// but never stalls a round, and adding ranks does not add round cost).
func (p Profile) Gossip(m int) float64 {
	return 2 * p.PointToPoint(m)
}

// log2ceil returns ⌈log2 n⌉ for n ≥ 1.
func log2ceil(n int) int {
	rounds := 0
	for v := 1; v < n; v <<= 1 {
		rounds++
	}
	return rounds
}

// Hierarchical models the paper's cluster shape: nodesPerHost ranks talk
// over PCIe inside a host and the inter-host fabric between hosts. For a
// collective across n ranks it prices the slower (inter-host) stage when
// n exceeds nodesPerHost and the PCIe stage otherwise — reproducing the
// flat ≤4-GPU region of Fig. 16.
type Hierarchical struct {
	Intra        Profile // e.g. PCIe3
	Inter        Profile // e.g. InfiniBandFDR
	RanksPerHost int
}

// Allgather prices an allgather of m bytes per rank across n ranks.
func (h Hierarchical) Allgather(n, m int) float64 {
	if n <= h.RanksPerHost {
		return h.Intra.Allgather(n, m)
	}
	hosts := (n + h.RanksPerHost - 1) / h.RanksPerHost
	// Stage 1: gather within each host (RanksPerHost·m bytes per host).
	intra := h.Intra.Allgather(h.RanksPerHost, m)
	// Stage 2: hosts exchange their aggregated blocks.
	inter := h.Inter.Allgather(hosts, m*h.RanksPerHost)
	return intra + inter
}

// Broadcast prices a broadcast of m bytes to n ranks.
func (h Hierarchical) Broadcast(n, m int) float64 {
	if n <= h.RanksPerHost {
		return h.Intra.Broadcast(n, m)
	}
	hosts := (n + h.RanksPerHost - 1) / h.RanksPerHost
	return h.Inter.Broadcast(hosts, m) + h.Intra.Broadcast(h.RanksPerHost, m)
}

// CometCluster reproduces the paper's testbed shape: 4 GPUs per node over
// PCIe, nodes connected by 56 Gbps FDR InfiniBand.
func CometCluster() Hierarchical {
	return Hierarchical{Intra: PCIe3, Inter: InfiniBandFDR, RanksPerHost: 4}
}

package netsim

import (
	"math"
	"testing"
)

func TestReconciliationRatio(t *testing.T) {
	var r Reconciliation
	if r.Ratio() != 1 {
		t.Fatalf("empty reconciliation ratio = %v, want 1", r.Ratio())
	}
	r.Add(0.010, 0.020)
	r.Add(0.030, 0.060)
	if got := r.Ratio(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("ratio = %v, want 2", got)
	}
	if r.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", r.Samples())
	}
	r.Add(-1, 5) // ignored
	r.Add(5, 0)  // ignored
	if r.Samples() != 2 {
		t.Fatalf("invalid pairs were counted")
	}
}

func TestReconciliationApply(t *testing.T) {
	var r Reconciliation
	r.Add(0.010, 0.020) // fabric is 2x slower than modeled
	p := r.Apply(Ethernet10G)
	if math.Abs(p.Bandwidth-Ethernet10G.Bandwidth/2) > 1 {
		t.Errorf("bandwidth = %v, want halved %v", p.Bandwidth, Ethernet10G.Bandwidth/2)
	}
	if math.Abs(p.Latency-Ethernet10G.Latency*2) > 1e-12 {
		t.Errorf("latency = %v, want doubled %v", p.Latency, Ethernet10G.Latency*2)
	}
	// The rescaled profile now predicts the measured time.
	if got, want := p.Allgather(4, 1<<20), 2*Ethernet10G.Allgather(4, 1<<20); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("reconciled allgather = %v, want %v", got, want)
	}
}

// TestFitAllgatherRecoversProfile: exact model-generated observations
// across several (n, m) shapes must recover the generating profile.
func TestFitAllgatherRecoversProfile(t *testing.T) {
	truth := Ethernet1G
	var obs []AllgatherObs
	for _, n := range []int{2, 4, 8} {
		for _, m := range []int{1 << 12, 1 << 16, 1 << 20} {
			obs = append(obs, AllgatherObs{N: n, M: m, Seconds: truth.Allgather(n, m)})
		}
	}
	got, err := FitAllgather(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Bandwidth-truth.Bandwidth)/truth.Bandwidth > 1e-6 {
		t.Errorf("bandwidth = %v, want %v", got.Bandwidth, truth.Bandwidth)
	}
	if math.Abs(got.Latency-truth.Latency)/truth.Latency > 1e-6 {
		t.Errorf("latency = %v, want %v", got.Latency, truth.Latency)
	}
}

func TestFitAllgatherDegenerate(t *testing.T) {
	// All observations the same shape: singular normal equations.
	obs := []AllgatherObs{
		{N: 4, M: 1 << 16, Seconds: 0.01},
		{N: 4, M: 1 << 16, Seconds: 0.011},
	}
	if _, err := FitAllgather(obs); err == nil {
		t.Fatal("degenerate observations should not fit")
	}
	if _, err := FitAllgather(nil); err == nil {
		t.Fatal("no observations should not fit")
	}
}

// TestFitTreeReduceRecoversProfile: exact model-generated tree-reduce
// observations must recover the generating profile.
func TestFitTreeReduceRecoversProfile(t *testing.T) {
	truth := Ethernet10G
	var obs []TreeReduceObs
	for _, n := range []int{2, 8, 64, 1024} {
		for _, m := range []int{1 << 10, 1 << 16, 1 << 22} {
			obs = append(obs, TreeReduceObs{N: n, M: m, Seconds: truth.TreeReduce(n, m)})
		}
	}
	got, err := FitTreeReduce(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Bandwidth-truth.Bandwidth)/truth.Bandwidth > 1e-6 {
		t.Errorf("bandwidth = %v, want %v", got.Bandwidth, truth.Bandwidth)
	}
	if math.Abs(got.Latency-truth.Latency)/truth.Latency > 1e-6 {
		t.Errorf("latency = %v, want %v", got.Latency, truth.Latency)
	}
	if _, err := FitTreeReduce(obs[:1]); err == nil {
		t.Error("single observation should fail to fit")
	}
	same := []TreeReduceObs{{N: 8, M: 1 << 20, Seconds: 1}, {N: 8, M: 1 << 20, Seconds: 1.1}}
	if _, err := FitTreeReduce(same); err == nil {
		t.Error("degenerate observations should fail to fit")
	}
}

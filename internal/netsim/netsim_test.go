package netsim

import (
	"math"
	"testing"
)

func TestProfileValidate(t *testing.T) {
	for _, p := range []Profile{Ethernet1G, Ethernet10G, InfiniBandFDR, PCIe3} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := Profile{Bandwidth: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative bandwidth should fail validation")
	}
}

func TestPointToPoint(t *testing.T) {
	p := Profile{Bandwidth: 1e9, Latency: 1e-6}
	got := p.PointToPoint(1e6)
	want := 1e-6 + 1e-3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("p2p %g want %g", got, want)
	}
}

func TestSingleNodeFree(t *testing.T) {
	if InfiniBandFDR.RingAllreduce(1, 1<<20) != 0 ||
		InfiniBandFDR.Allgather(1, 1<<20) != 0 ||
		InfiniBandFDR.Broadcast(1, 1<<20) != 0 {
		t.Fatal("collectives on one node must be free")
	}
}

// Fig. 11: allgather time grows (almost exactly) linearly with node count.
func TestAllgatherLinearInNodes(t *testing.T) {
	m := 250 << 20 // AlexNet gradients
	t4 := InfiniBandFDR.Allgather(4, m)
	t8 := InfiniBandFDR.Allgather(8, m)
	t16 := InfiniBandFDR.Allgather(16, m)
	// steps n-1: ratios (8-1)/(4-1) etc.
	if r := t8 / t4; math.Abs(r-7.0/3.0) > 0.01 {
		t.Fatalf("t8/t4 = %g want 7/3", r)
	}
	if r := t16 / t8; math.Abs(r-15.0/7.0) > 0.01 {
		t.Fatalf("t16/t8 = %g want 15/7", r)
	}
}

// Ring allreduce volume is (nearly) independent of node count — the
// property that makes it the default for uncompressed training.
func TestRingAllreduceNearlyFlat(t *testing.T) {
	m := 250 << 20
	t4 := InfiniBandFDR.RingAllreduce(4, m)
	t32 := InfiniBandFDR.RingAllreduce(32, m)
	if t32 > t4*1.5 {
		t.Fatalf("ring allreduce should be nearly flat: %g vs %g", t4, t32)
	}
}

// Compressed allgather must beat uncompressed ring allreduce at the
// paper's operating point (8 nodes, ratio ≈16), and lose without enough
// compression — the trade the paper navigates.
func TestCompressionCrossover(t *testing.T) {
	m := 250 << 20
	n := 8
	uncompressed := InfiniBandFDR.RingAllreduce(n, m)
	atRatio := func(k float64) float64 {
		return InfiniBandFDR.Allgather(n, int(float64(m)/k))
	}
	if atRatio(16) >= uncompressed {
		t.Fatalf("16x-compressed allgather (%.4fs) should beat allreduce (%.4fs)", atRatio(16), uncompressed)
	}
	if atRatio(2) <= uncompressed {
		t.Fatalf("2x-compressed allgather (%.4fs) should lose to allreduce (%.4fs)", atRatio(2), uncompressed)
	}
}

func TestBroadcastLog(t *testing.T) {
	m := 1 << 20
	t2 := InfiniBandFDR.Broadcast(2, m)
	t8 := InfiniBandFDR.Broadcast(8, m)
	if r := t8 / t2; math.Abs(r-3) > 0.01 {
		t.Fatalf("log2 rounds: t8/t2 = %g want 3", r)
	}
}

func TestHierarchicalFlatWithinHost(t *testing.T) {
	h := CometCluster()
	m := 6 << 20
	t2 := h.Allgather(2, m)
	t4 := h.Allgather(4, m)
	t8 := h.Allgather(8, m)
	// Within one host: PCIe only; crossing hosts adds the IB stage, so
	// cost must jump at 8 ranks (the Fig. 16 "similar speedup ≤4 GPUs").
	if t4 >= t8 {
		t.Fatalf("crossing hosts must cost more: t4=%g t8=%g", t4, t8)
	}
	if t2 >= t4*2 {
		t.Fatalf("intra-host growth too steep: t2=%g t4=%g", t2, t4)
	}
}

// Faster fabric ⇒ cheaper collective, everywhere.
func TestFasterFabricCheaper(t *testing.T) {
	for _, n := range []int{2, 8, 32} {
		for _, m := range []int{1 << 10, 1 << 24} {
			if InfiniBandFDR.Allgather(n, m) >= Ethernet1G.Allgather(n, m) {
				t.Fatalf("IB should beat 1GbE at n=%d m=%d", n, m)
			}
		}
	}
}

// TestTreeReduceRegimes: the tree is latency-bound (log n rounds) for
// small messages and pays full-m per round for large ones — so it beats
// the ring on small buffers and loses on big ones.
func TestTreeReduce(t *testing.T) {
	if got := InfiniBandFDR.TreeReduce(1, 1<<20); got != 0 {
		t.Fatalf("single node tree reduce = %v, want 0", got)
	}
	t2 := InfiniBandFDR.TreeReduce(2, 1<<20)
	t8 := InfiniBandFDR.TreeReduce(8, 1<<20)
	if r := t8 / t2; math.Abs(r-3) > 0.01 {
		t.Fatalf("log2 rounds: t8/t2 = %g want 3", r)
	}
	// Small message, many ranks: log n latency terms beat 2(n-1).
	if tree, ring := InfiniBandFDR.TreeReduce(64, 256), InfiniBandFDR.RingAllreduce(64, 256); tree >= ring {
		t.Fatalf("small-message tree (%g) should beat ring (%g)", tree, ring)
	}
	// Huge message: the ring pipelines m/n per step and wins.
	if tree, ring := InfiniBandFDR.TreeReduce(64, 250<<20), InfiniBandFDR.RingAllreduce(64, 250<<20); tree <= ring {
		t.Fatalf("large-message tree (%g) should lose to ring (%g)", tree, ring)
	}
}

package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	if f.Trigger(0, ReasonPanic) != "" || f.Path() != "" || f.Dumps() != 0 {
		t.Fatal("nil recorder must no-op")
	}
	if NewFlightRecorder(nil, "x.json") != nil {
		t.Fatal("nil tracer must yield nil recorder")
	}
	if NewFlightRecorder(New(1, 8), "") != nil {
		t.Fatal("empty path must yield nil recorder")
	}
}

func TestFlightRecorderDump(t *testing.T) {
	tr := buildDeterministic()
	path := filepath.Join(t.TempDir(), "flight.json")
	f := NewFlightRecorder(tr, path)
	if got := f.Trigger(1, ReasonNoQuorum); got != path {
		t.Fatalf("Trigger returned %q, want %q", got, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("dump is not valid trace_event JSON: %v", err)
	}
	// The dump must contain its own cause: a flight_trigger instant on
	// the triggering rank carrying the reason.
	found := false
	for _, e := range events {
		if e["ph"] == "i" && e["name"] == "flight_trigger" && e["tid"] == float64(1) {
			args := e["args"].(map[string]any)
			if args["arg"] == float64(ReasonNoQuorum) {
				found = true
			}
		}
	}
	if !found {
		t.Error("dump missing the triggering flight_trigger instant")
	}
	if f.Dumps() != 1 {
		t.Errorf("Dumps() = %d, want 1", f.Dumps())
	}
}

func TestFlightRecorderOutOfRangeRank(t *testing.T) {
	tr := buildDeterministic()
	path := filepath.Join(t.TempDir(), "flight.json")
	f := NewFlightRecorder(tr, path)
	// A rank beyond the tracer's tracks falls back to rank 0.
	if got := f.Trigger(99, ReasonManual); got != path {
		t.Fatalf("Trigger returned %q, want %q", got, path)
	}
}

func TestFlightRecorderDumpCap(t *testing.T) {
	tr := buildDeterministic()
	path := filepath.Join(t.TempDir(), "flight.json")
	f := NewFlightRecorder(tr, path)
	f.MaxDumps = 3
	fired := 0
	for i := 0; i < 10; i++ {
		if f.Trigger(0, ReasonRollback) != "" {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("%d dumps fired, want 3 (MaxDumps)", fired)
	}
	if f.Dumps() != 3 {
		t.Errorf("Dumps() = %d, want 3", f.Dumps())
	}
}

func TestReasonString(t *testing.T) {
	for r := ReasonManual; r < numReasons; r++ {
		if r.String() == "" || r.String() == "unknown" {
			t.Errorf("reason %d has no name", r)
		}
	}
	if Reason(99).String() != "unknown" {
		t.Error("out-of-range reason must stringify as unknown")
	}
}

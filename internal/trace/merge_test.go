package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteMergedJSONGolden pins the multi-process merged export: the
// deterministic two-rank timeline, with rank 1's +50ns recording skew
// handed in as a clock offset, must render byte-for-byte as committed.
func TestWriteMergedJSONGolden(t *testing.T) {
	tr := buildDeterministic()
	var buf bytes.Buffer
	if err := tr.WriteMergedJSON(&buf, []int64{0, 50}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_merged.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("merged export drifted from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteMergedJSONStructure checks the merged view's invariants
// without pinning bytes: one process per rank, offsets actually applied
// (rank 1's spans land on rank 0's timestamps after the +50ns shift),
// and a build stamp present.
func TestWriteMergedJSONStructure(t *testing.T) {
	tr := buildDeterministic()
	var buf bytes.Buffer
	if err := tr.WriteMergedJSON(&buf, []int64{0, 50}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("merged export is not valid JSON: %v", err)
	}
	procs := map[float64]string{}
	spanTS := map[float64]map[float64]bool{} // pid -> set of span ts
	build := false
	for _, e := range events {
		switch e["ph"] {
		case "M":
			switch e["name"] {
			case "process_name":
				args := e["args"].(map[string]any)
				procs[e["pid"].(float64)] = args["name"].(string)
			case "fftgrad_build":
				args := e["args"].(map[string]any)
				if args["version"] == "test" && args["go"] == "gotest" {
					build = true
				}
			}
		case "X":
			pid := e["pid"].(float64)
			if spanTS[pid] == nil {
				spanTS[pid] = map[float64]bool{}
			}
			spanTS[pid][e["ts"].(float64)] = true
		}
	}
	if !build {
		t.Error("merged export missing the pinned build stamp")
	}
	if len(procs) != 2 || !strings.HasPrefix(procs[1], "rank 0") || !strings.HasPrefix(procs[2], "rank 1") {
		t.Errorf("want one process per rank, got %v", procs)
	}
	// After subtracting rank 1's +50ns skew both ranks recorded identical
	// span starts, so their aligned timestamp sets must coincide.
	for ts := range spanTS[1] {
		if !spanTS[2][ts] {
			t.Errorf("rank 1 missing aligned span at ts=%v after offset correction", ts)
		}
	}
}

// TestDroppedAccounting: a ring of capacity 8 that absorbs 11 events has
// lost exactly 3 to wraparound, and the merged export flags the rank as
// incomplete.
func TestDroppedAccounting(t *testing.T) {
	tr := New(2, 8)
	for i := 0; i < 11; i++ {
		tr.rings[0].append(OpCompute, uint64(i), 0, int64(i)*1000, 100)
	}
	tr.rings[1].append(OpCompute, 0, 0, 0, 100)
	if got := tr.Dropped(0); got != 3 {
		t.Errorf("Dropped(0) = %d, want 3", got)
	}
	if got := tr.Dropped(1); got != 0 {
		t.Errorf("Dropped(1) = %d, want 0", got)
	}
	if got := tr.DroppedTotal(); got != 3 {
		t.Errorf("DroppedTotal() = %d, want 3", got)
	}
	if tr.Dropped(-1) != 0 || tr.Dropped(99) != 0 || (*Tracer)(nil).Dropped(0) != 0 {
		t.Error("out-of-range/nil Dropped must be 0")
	}

	var buf bytes.Buffer
	if err := tr.WriteMergedJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"labels":"incomplete: dropped 3 events"`) {
		t.Error("merged export did not flag the wrapped rank as incomplete")
	}
}

package trace

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock replaces a tracer's monotonic source with a deterministic
// counter so tests control every timestamp.
func fakeClock(t *Tracer) *atomic.Int64 {
	var now atomic.Int64
	t.nowNanos = func() int64 { return now.Load() }
	return &now
}

func TestNewRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{
		{0, 8192}, {-5, 8192}, {1, 1}, {2, 2}, {3, 4}, {100, 128}, {8192, 8192},
	} {
		tr := New(2, c.ask)
		if got := tr.PerRankCapacity(); got != c.want {
			t.Errorf("New(2, %d): capacity %d, want %d", c.ask, got, c.want)
		}
	}
	if tr := New(0, 8); tr.Ranks() != 1 {
		t.Errorf("New(0, 8): ranks %d, want 1", tr.Ranks())
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Ranks() != 0 || tr.PerRankCapacity() != 0 || tr.Rank(0) != nil || tr.Events() != nil {
		t.Fatal("nil tracer methods must be no-ops")
	}
	var c *Ctx
	c.SetIter(3)
	c.Instant(OpNack, 1)
	c.SpanSince(OpCompute, 1, time.Now())
	c.SpanTimed(OpCompute, 1, time.Now(), time.Millisecond)
	if c.Iter() != 0 || c.StageSink() != nil {
		t.Fatal("nil Ctx must report zero iter and nil sink")
	}
	live := New(2, 8)
	if live.Rank(-1) != nil || live.Rank(2) != nil {
		t.Fatal("out-of-range ranks must return nil")
	}
}

// TestWraparoundOrdering overfills a tiny ring and checks that exactly
// the newest capacity-many events survive, exported in start order.
func TestWraparoundOrdering(t *testing.T) {
	tr := New(1, 4)
	now := fakeClock(tr)
	c := tr.Rank(0)
	const total = 11
	for i := 0; i < total; i++ {
		now.Store(int64(i) * 100)
		c.SetIter(uint64(i))
		c.Instant(OpNack, int64(i))
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events after wraparound, want 4", len(ev))
	}
	for i, e := range ev {
		wantIdx := total - 4 + i
		if e.Arg != int64(wantIdx) || e.Start != int64(wantIdx)*100 || e.Seq != uint64(wantIdx) {
			t.Errorf("event %d = %+v, want arg/seq %d start %d", i, e, wantIdx, wantIdx*100)
		}
		if i > 0 && ev[i-1].Start > e.Start {
			t.Errorf("events out of order at %d: %d > %d", i, ev[i-1].Start, e.Start)
		}
	}
}

// TestWraparoundConcurrentReader laps a tiny ring thousands of times
// from one writer while a reader snapshots continuously: the overwrite
// path must never surface a half-rewritten event. Every append uses
// Start == Arg == int64(Seq), so a torn read shows up as a mismatch.
func TestWraparoundConcurrentReader(t *testing.T) {
	tr := New(1, 64)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range tr.Events() {
				if e.Start != e.Arg || e.Arg != int64(e.Seq) {
					t.Errorf("torn event leaked: %+v", e)
					return
				}
			}
		}
	}()
	r := &tr.rings[0]
	for v := int64(0); v < 10000; v++ {
		r.append(OpNack, uint64(v), v, v, 0)
	}
	close(stop)
	<-readerDone
	ev := tr.Events()
	if len(ev) != 64 {
		t.Fatalf("got %d events, want 64", len(ev))
	}
	if ev[len(ev)-1].Arg != 9999 {
		t.Fatalf("newest event arg %d, want 9999", ev[len(ev)-1].Arg)
	}
}

// TestConcurrentAppends hammers shared rings from several writers while
// a reader snapshots continuously. The rings are sized so no slot index
// is reused (writer-writer slot collisions are out of scope — sized
// rings make a full-lap lead during one append unreachable in practice),
// leaving the seqlock's reader-vs-writer guarantee as the thing under
// test. Run under -race for the full memory-model check.
func TestConcurrentAppends(t *testing.T) {
	tr := New(2, 8192)
	var stamp atomic.Int64
	tr.nowNanos = func() int64 { return stamp.Load() }

	const writers = 4
	const perWriter = 2000
	var writerWg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})

	go func() { // concurrent snapshotting reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range tr.Events() {
				// OpNack events come from raw appends with
				// Start == Arg == Seq; OpResend events come through the
				// public API, where the shared fake clock races so only
				// the Arg/Seq pair is checkable.
				if e.Arg != int64(e.Seq) || (e.Op == OpNack && e.Start != e.Arg) {
					t.Errorf("torn event leaked: %+v", e)
					return
				}
			}
		}
	}()

	// Raw ring appends, with Start == Arg == Seq by construction.
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			r := &tr.rings[w%2]
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				r.append(OpNack, uint64(v), v, v, 0)
			}
		}(w)
	}
	// Also drive the public Ctx API concurrently on both tracks,
	// preserving the invariant via the shared fake clock: each write
	// stamps the clock to v, then records with seq == arg == v.
	for rank := 0; rank < 2; rank++ {
		writerWg.Add(1)
		go func(rank int) {
			defer writerWg.Done()
			c := tr.Rank(rank)
			for i := 0; i < perWriter; i++ {
				v := int64(rank)*perWriter*writers*2 + int64(i)
				stamp.Store(v)
				c.SetIter(uint64(v))
				c.Instant(OpResend, v)
			}
		}(rank)
	}

	done := make(chan struct{})
	go func() { writerWg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent append test wedged")
	}
	close(stop)
	<-readerDone
	if n := len(tr.Events()); n == 0 {
		t.Fatal("no events survived the storm")
	}
}

// TestAppendZeroAlloc pins the record path at zero allocations per
// event — the property that lets tracing stay on in production.
func TestAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	tr := New(1, 64)
	c := tr.Rank(0)
	sink := c.StageSink()
	start := time.Now()
	if n := testing.AllocsPerRun(100, func() {
		c.Instant(OpNack, 7)
	}); n != 0 {
		t.Errorf("Instant allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		c.SpanSince(OpCompute, 7, start)
	}); n != 0 {
		t.Errorf("SpanSince allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		c.SpanTimed(OpCompress, 7, start, time.Millisecond)
	}); n != 0 {
		t.Errorf("SpanTimed allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sink.StageSpan(1, 7, start, time.Millisecond)
	}); n != 0 {
		t.Errorf("StageSpan allocates %.1f/op, want 0", n)
	}
}

func TestOpNamesComplete(t *testing.T) {
	for op := OpNone; op < numOps; op++ {
		if op != OpNone && (op.String() == "" || op.String() == "none") {
			t.Errorf("op %d has no name", op)
		}
		if op.Cat() == "" {
			t.Errorf("op %d (%s) has no category", op, op)
		}
	}
	if Op(200).String() != "unknown" || Op(200).Cat() != "unknown" {
		t.Error("out-of-range op must stringify as unknown")
	}
}

package trace

import (
	"fmt"
	"io"
)

// WriteMergedJSON exports the timeline as a clock-aligned multi-process
// Perfetto view: one trace_event *process* per rank (pid = rank+1)
// instead of one thread inside a single process, with every rank's
// timestamps shifted onto rank 0's clock axis by subtracting
// offsets[rank] nanoseconds. This is the "global timeline" form: on the
// TCP/netsim paths each rank records against its own monotonic epoch,
// and only after the profiler's barrier-anchored offset estimation
// (obs.Profiler.Offsets) do spans from different ranks line up — rank
// 2's exchange visibly starting while rank 0 is still computing, instead
// of every rank pretending to share an epoch.
//
// offsets may be nil (no alignment) or shorter than the rank count;
// missing entries are treated as 0. After alignment all timestamps are
// re-based so the earliest event sits at t=0 — Perfetto renders negative
// timestamps poorly.
//
// Ranks that have lost events to ring wraparound get a process_labels
// metadata row ("incomplete: dropped N events") and a "dropped" arg on
// their process_name row, so readings over the oldest retained
// iterations of a merged view are visibly suspect rather than silently
// partial.
//
// A nil tracer writes an empty array.
func (t *Tracer) WriteMergedJSON(w io.Writer, offsets []int64) error {
	events := t.Events()
	bw := &errWriter{w: w}
	bw.str("[\n")
	pname := t.Name()
	if pname == "" {
		pname = "fftgrad trainer"
	}

	off := func(rank int32) int64 {
		if int(rank) < len(offsets) {
			return offsets[rank]
		}
		return 0
	}

	// Re-base onto the earliest aligned timestamp.
	var base int64
	for i, e := range events {
		if s := e.Start - off(e.Rank); i == 0 || s < base {
			base = s
		}
	}

	fmt.Fprintf(bw, `{"ph":"M","pid":0,"name":"fftgrad_build","args":{"version":%q,"go":%q}}`,
		buildVersion(), buildGo())
	for rank := 0; rank < t.Ranks(); rank++ {
		pid := rank + 1
		dropped := t.Dropped(rank)
		bw.str(",\n")
		fmt.Fprintf(bw,
			`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"rank %d — %s","offset_ns":%d,"dropped":%d}}`,
			pid, rank, pname, off(int32(rank)), dropped)
		bw.str(",\n")
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}`, pid, rank)
		if dropped > 0 {
			bw.str(",\n")
			fmt.Fprintf(bw,
				`{"ph":"M","pid":%d,"name":"process_labels","args":{"labels":"incomplete: dropped %d events"}}`,
				pid, dropped)
		}
	}
	for _, e := range events {
		bw.str(",\n")
		ts := float64(e.Start-off(e.Rank)-base) / 1e3 // aligned ns → µs
		pid := int(e.Rank) + 1
		if e.Dur > 0 || isSpan(e.Op) {
			fmt.Fprintf(bw,
				`{"ph":"X","pid":%d,"tid":0,"ts":%.3f,"dur":%.3f,"name":%q,"cat":%q,"args":{"iter":%d,"arg":%d}}`,
				pid, ts, float64(e.Dur)/1e3, e.Op.String(), e.Op.Cat(), e.Seq, e.Arg)
		} else {
			fmt.Fprintf(bw,
				`{"ph":"i","pid":%d,"tid":0,"ts":%.3f,"s":"t","name":%q,"cat":%q,"args":{"iter":%d,"arg":%d}}`,
				pid, ts, e.Op.String(), e.Op.Cat(), e.Seq, e.Arg)
		}
	}
	bw.str("\n]\n")
	return bw.err
}

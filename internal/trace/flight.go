package trace

import (
	"fmt"
	"sync"

	"fftgrad/internal/checkpoint"
)

// Reason says why a flight-recorder dump fired.
type Reason uint8

const (
	ReasonManual   Reason = iota // explicit operator/test trigger
	ReasonRollback               // guard anomaly ladder rolled parameters back
	ReasonNoQuorum               // cluster lost quorum (terminal)
	ReasonCrash                  // a transport entered a chaos crash window
	ReasonPanic                  // a worker goroutine panicked
	ReasonFailure                // unclassified terminal training error
	ReasonViewGrow               // elastic join grew the membership view
	ReasonAnomaly                // profiler EWMA z-score breach (obs package)
	numReasons
)

var reasonNames = [numReasons]string{
	ReasonManual:   "manual",
	ReasonRollback: "rollback",
	ReasonNoQuorum: "no_quorum",
	ReasonCrash:    "crash",
	ReasonPanic:    "panic",
	ReasonFailure:  "failure",
	ReasonViewGrow: "view_grow",
	ReasonAnomaly:  "anomaly",
}

// String returns the reason label used in dump file names and logs.
func (r Reason) String() string {
	if r < numReasons {
		return reasonNames[r]
	}
	return "unknown"
}

// FlightRecorder turns the tracer's always-on ring into a postmortem
// artifact: Trigger snapshots the last-N-iteration timeline and writes
// it atomically to disk the moment an incident (rollback, quorum loss,
// crash window, panic) fires, so chaos-harness investigations replay a
// Perfetto timeline instead of digging through logs.
//
// A nil *FlightRecorder is valid; Trigger is a no-op. All methods are
// safe for concurrent use — incidents on several ranks at once serialize
// on an internal mutex, and MaxDumps bounds disk usage when an incident
// storm (e.g. a flapping partition) keeps firing.
type FlightRecorder struct {
	// MaxDumps caps how many dumps one run may write (<=0 means the
	// DefaultMaxDumps). The cap counts attempts, so a persistent write
	// error cannot turn an incident storm into a disk-filling loop.
	MaxDumps int

	tr   *Tracer
	path string

	mu    sync.Mutex
	dumps int
}

// DefaultMaxDumps bounds dumps per run when MaxDumps is unset.
const DefaultMaxDumps = 16

// NewFlightRecorder dumps tr to path on Trigger. Returns nil when either
// the tracer or the path is absent, so wiring can stay unconditional.
func NewFlightRecorder(tr *Tracer, path string) *FlightRecorder {
	if tr == nil || path == "" {
		return nil
	}
	return &FlightRecorder{tr: tr, path: path}
}

// Path returns the dump destination, "" on a nil recorder.
func (f *FlightRecorder) Path() string {
	if f == nil {
		return ""
	}
	return f.path
}

// Dumps returns how many dump attempts have fired.
func (f *FlightRecorder) Dumps() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// Trigger records an OpFlightTrigger instant on rank's track (so the
// dump provably contains its own cause) and writes the timeline to the
// recorder's path via the checkpoint package's atomic write. Returns the
// dump path, or "" when the recorder is nil or the dump cap is reached.
func (f *FlightRecorder) Trigger(rank int, reason Reason) string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	max := f.MaxDumps
	if max <= 0 {
		max = DefaultMaxDumps
	}
	if f.dumps >= max {
		return ""
	}
	f.dumps++
	tc := f.tr.Rank(rank)
	if tc == nil {
		tc = f.tr.Rank(0)
	}
	tc.Instant(OpFlightTrigger, int64(reason))
	data, err := f.tr.MarshalJSON()
	if err != nil {
		fmt.Printf("trace: flight dump %s failed to render: %v\n", f.path, err)
		return ""
	}
	if err := checkpoint.WriteBytesAtomic(f.path, data); err != nil {
		fmt.Printf("trace: flight dump %s failed to write: %v\n", f.path, err)
		return ""
	}
	fmt.Printf("trace: flight recorder dumped %d bytes to %s (reason %s, rank %d)\n",
		len(data), f.path, reason, rank)
	return f.path
}

// Package trace is the timeline layer of the observability stack: a
// low-overhead span/event recorder with one fixed-size lock-free ring
// buffer per rank, exported as Chrome trace_event JSON (one track per
// rank, loadable in Perfetto or chrome://tracing).
//
// Where internal/telemetry answers "how fast is each stage on average"
// (scalar EWMAs feeding the Sec. 3.3 model), this package answers
// "where inside *this* iteration did the time go, and how do the ranks
// skew against each other" — the per-stage, per-rank overlap view that
// production diagnoses of compression schemes are made from. The same
// buffer doubles as a crash flight recorder: because the ring always
// holds the most recent events, dumping it at the moment a guard
// rollback, quorum loss, crash window or panic fires yields a replayable
// timeline of the last N iterations before the incident (see flight.go).
//
// Design constraints:
//
//   - Nil-safe everywhere. A nil *Tracer / *Ctx turns every record call
//     into a pointer check, so disabled runs pay no allocation and no
//     atomics on the data path.
//   - Lock-free append. Recording claims a slot with one atomic add and
//     publishes with per-field atomic stores plus a seqlock stamp;
//     concurrent writers (the worker loop, the cluster receiver, the
//     heartbeater) never block each other and never tear an exported
//     event.
//   - Bounded memory. The per-rank ring is sized once at New; steady
//     state recording allocates nothing (asserted by TestAppendZeroAlloc
//     and the compress/cluster gates), and old events are overwritten,
//     never accumulated.
package trace

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"fftgrad/internal/telemetry"
)

// Op identifies what a span or instant covers — the event taxonomy.
// Spans cover the iteration pipeline; instants mark cluster, guard,
// adapt and chaos incidents.
type Op uint8

const (
	OpNone Op = iota

	// Pipeline spans (ph "X" in the trace_event export).
	OpIteration  // one full training iteration (parent of the rest)
	OpCompute    // forward + backward + gradient flatten
	OpScrub      // pre-compress NaN/Inf scrub
	OpConvert    // Tm: precision conversion / (de)quantization
	OpTransform  // Tf: forward or inverse FFT/DCT
	OpSelect     // Ts: top-k / threshold selection
	OpPack       // Tp: sparse gather/scatter + wire (de)serialization
	OpCompress   // whole encode (frame included under guard)
	OpDecompress // whole decode + averaging (unpack included)
	OpExchange   // the gradient exchange collective
	OpBarrier    // in-process collective arrival wait (rank skew)
	OpSendPeer   // one peer send on the cluster path (arg = peer)
	OpUpdate     // anomaly check + SGD parameter update
	OpSync       // parameter re-broadcast

	// Exchange / cluster instants (ph "i").
	OpRecvPeer    // data payload arrived from a peer (arg = peer)
	OpNack        // repair request sent to a missing peer (arg = peer)
	OpResend      // nack answered from the sent ring (arg = requester)
	OpSuspect     // peer declared dead after heartbeat silence (arg = peer)
	OpViewChange  // membership epoch bumped (arg = new epoch)
	OpRejoin      // this rank re-admitted to the view (arg = epoch)
	OpCrash       // transport entered a crash window (arg = op index)
	OpRecover     // transport left a crash window (arg = op index)
	OpSkippedSync // parameter re-broadcast abandoned

	// Guard instants.
	OpCorruptFrame // inbound frame rejected pre-decompress (arg = sender)
	OpScrubbed     // non-finite values scrubbed (arg = count)
	OpClip         // anomaly ladder: gradient clipped
	OpSkipUpdate   // anomaly ladder: update skipped
	OpRollback     // anomaly ladder: parameters rolled back
	OpDriftResync  // cross-rank fingerprint mismatch forced a re-sync

	// Adapt / chaos / flight instants.
	OpBypass        // adapt controller shipped raw FP32 this iteration
	OpChaosCorrupt  // chaos flipped a payload bit (arg = destination)
	OpFlightTrigger // flight-recorder dump fired (arg = Reason)

	// Collective strategy spans (internal/collective).
	OpBucket        // one gradient bucket's compress→exchange→decompress (arg = bucket)
	OpGroupGather   // hierarchical: leader assembles its group's frames (arg = bytes)
	OpGroupExchange // hierarchical: inter-group leader exchange (arg = bytes)
	OpGroupBcast    // hierarchical: leader's full set read by its group (arg = bytes)
	OpTreeGather    // tree: binomial gather toward the root (arg = bytes)
	OpTreeBcast     // tree: binomial broadcast from the root (arg = bytes)

	// Elasticity / asynchrony instants.
	OpStaleFold // stale cached gradient damped into a round (arg = peer)
	OpGossip    // one completed gossip round (arg = contributing peers)
	OpJoin      // brand-new rank admitted to the view mid-run (arg = epoch)

	numOps
)

// opNames are the trace_event "name" strings, indexed by Op.
var opNames = [numOps]string{
	OpNone:          "none",
	OpIteration:     "iteration",
	OpCompute:       "compute",
	OpScrub:         "scrub",
	OpConvert:       "convert",
	OpTransform:     "transform",
	OpSelect:        "select",
	OpPack:          "pack",
	OpCompress:      "compress",
	OpDecompress:    "decompress",
	OpExchange:      "exchange",
	OpBarrier:       "barrier",
	OpSendPeer:      "send",
	OpUpdate:        "update",
	OpSync:          "sync",
	OpRecvPeer:      "recv",
	OpNack:          "nack",
	OpResend:        "resend",
	OpSuspect:       "suspect",
	OpViewChange:    "view_change",
	OpRejoin:        "rejoin",
	OpCrash:         "crash",
	OpRecover:       "recover",
	OpSkippedSync:   "skipped_sync",
	OpCorruptFrame:  "corrupt_frame",
	OpScrubbed:      "scrubbed",
	OpClip:          "clip",
	OpSkipUpdate:    "skip_update",
	OpRollback:      "rollback",
	OpDriftResync:   "drift_resync",
	OpBypass:        "bypass",
	OpChaosCorrupt:  "chaos_corrupt",
	OpFlightTrigger: "flight_trigger",
	OpBucket:        "bucket",
	OpGroupGather:   "group_gather",
	OpGroupExchange: "group_exchange",
	OpGroupBcast:    "group_bcast",
	OpTreeGather:    "tree_gather",
	OpTreeBcast:     "tree_bcast",
	OpStaleFold:     "stale_fold",
	OpGossip:        "gossip",
	OpJoin:          "join",
}

// opCats are the trace_event "cat" strings, indexed by Op.
var opCats = [numOps]string{
	OpNone:          "none",
	OpIteration:     "pipeline",
	OpCompute:       "pipeline",
	OpScrub:         "pipeline",
	OpConvert:       "pipeline",
	OpTransform:     "pipeline",
	OpSelect:        "pipeline",
	OpPack:          "pipeline",
	OpCompress:      "pipeline",
	OpDecompress:    "pipeline",
	OpExchange:      "exchange",
	OpBarrier:       "exchange",
	OpSendPeer:      "exchange",
	OpUpdate:        "pipeline",
	OpSync:          "exchange",
	OpRecvPeer:      "exchange",
	OpNack:          "exchange",
	OpResend:        "exchange",
	OpSuspect:       "cluster",
	OpViewChange:    "cluster",
	OpRejoin:        "cluster",
	OpCrash:         "cluster",
	OpRecover:       "cluster",
	OpSkippedSync:   "cluster",
	OpCorruptFrame:  "guard",
	OpScrubbed:      "guard",
	OpClip:          "guard",
	OpSkipUpdate:    "guard",
	OpRollback:      "guard",
	OpDriftResync:   "guard",
	OpBypass:        "adapt",
	OpChaosCorrupt:  "chaos",
	OpFlightTrigger: "flight",
	OpBucket:        "exchange",
	OpGroupGather:   "exchange",
	OpGroupExchange: "exchange",
	OpGroupBcast:    "exchange",
	OpTreeGather:    "exchange",
	OpTreeBcast:     "exchange",
	OpStaleFold:     "cluster",
	OpGossip:        "cluster",
	OpJoin:          "cluster",
}

// String returns the trace_event name of the op.
func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return "unknown"
}

// Cat returns the trace_event category of the op.
func (o Op) Cat() string {
	if o < numOps {
		return opCats[o]
	}
	return "unknown"
}

// Event is one recorded span (Dur > 0) or instant marker (Dur == 0).
// Times are nanoseconds since the tracer's epoch.
type Event struct {
	Start int64  // ns since tracer start
	Dur   int64  // ns; 0 for instants
	Seq   uint64 // iteration id the event belongs to
	Arg   int64  // op-specific argument (bytes, peer rank, epoch, count)
	Rank  int32
	Op    Op
}

// slot is one seqlock-protected ring entry. Writers claim an index with
// one atomic add, invalidate the stamp, store each field atomically and
// re-publish; readers accept a slot only when the stamp is unchanged
// across the field loads, so a half-written (or wrapped-over) event can
// never leak into an export. 6 words = 48 bytes per slot.
type slot struct {
	stamp atomic.Uint64 // 0 = empty/in-flight; else claim index + 1
	start atomic.Int64
	dur   atomic.Int64
	seq   atomic.Uint64
	arg   atomic.Int64
	op    atomic.Uint32
}

// ring is one rank's event buffer.
type ring struct {
	pos   atomic.Uint64
	mask  uint64
	slots []slot
}

func (r *ring) append(op Op, seq uint64, arg, start, dur int64) {
	idx := r.pos.Add(1) - 1
	s := &r.slots[idx&r.mask]
	s.stamp.Store(0) // invalidate while the fields are in flux
	s.start.Store(start)
	s.dur.Store(dur)
	s.seq.Store(seq)
	s.arg.Store(arg)
	s.op.Store(uint32(op))
	s.stamp.Store(idx + 1)
}

// DefaultEventsPerIteration is a sizing hint: one iteration records on
// the order of a dozen pipeline spans per rank plus per-peer exchange
// markers and the occasional cluster/guard instant. Multiplying an
// iteration window by this constant gives New a per-rank capacity that
// comfortably retains the window.
const DefaultEventsPerIteration = 64

// Tracer owns one ring per rank. The zero value is not usable; a nil
// *Tracer is valid and records nothing.
type Tracer struct {
	rings    []ring
	perRank  int
	nowNanos func() int64 // ns since epoch; swapped out by tests
	name     string       // Perfetto process_name; "" = default
}

// SetName overrides the process name the Chrome-trace export emits,
// so a job service exporting one timeline per job gets per-job process
// rows ("job j-42 (bsp)") instead of every job claiming "fftgrad
// trainer". Call before recording; it is not synchronized with WriteJSON.
func (t *Tracer) SetName(name string) {
	if t != nil {
		t.name = name
	}
}

// Name returns the export process name ("" when defaulted).
func (t *Tracer) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// New creates a tracer for ranks tracks retaining the last perRank
// events per rank (rounded up to a power of two; <= 0 selects 8192).
func New(ranks, perRank int) *Tracer {
	if ranks < 1 {
		ranks = 1
	}
	if perRank <= 0 {
		perRank = 8192
	}
	capPow2 := 1
	for capPow2 < perRank {
		capPow2 <<= 1
	}
	t := &Tracer{rings: make([]ring, ranks), perRank: capPow2}
	for i := range t.rings {
		t.rings[i].mask = uint64(capPow2 - 1)
		t.rings[i].slots = make([]slot, capPow2)
	}
	base := time.Now()
	t.nowNanos = func() int64 { return int64(time.Since(base)) }
	return t
}

// Ranks returns the number of tracks, 0 on a nil tracer.
func (t *Tracer) Ranks() int {
	if t == nil {
		return 0
	}
	return len(t.rings)
}

// PerRankCapacity returns the ring capacity per rank, 0 on a nil tracer.
func (t *Tracer) PerRankCapacity() int {
	if t == nil {
		return 0
	}
	return t.perRank
}

// Rank returns the recording handle for one rank's track, nil when the
// tracer is nil or the rank is out of range — callers thread the nil
// through and every record call degrades to a pointer check.
func (t *Tracer) Rank(rank int) *Ctx {
	if t == nil || rank < 0 || rank >= len(t.rings) {
		return nil
	}
	return &Ctx{t: t, rank: int32(rank)}
}

// Events snapshots every consistently-published event across all rings,
// ordered by start time (ties broken by rank, then op, then seq) — the
// form the exporter consumes. Safe to call while writers keep appending;
// events half-overwritten during the scan are skipped, not torn.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.rings)*t.perRank)
	for rank := range t.rings {
		r := &t.rings[rank]
		for i := range r.slots {
			s := &r.slots[i]
			for attempt := 0; attempt < 4; attempt++ {
				st1 := s.stamp.Load()
				if st1 == 0 {
					break
				}
				e := Event{
					Start: s.start.Load(),
					Dur:   s.dur.Load(),
					Seq:   s.seq.Load(),
					Arg:   s.arg.Load(),
					Rank:  int32(rank),
					Op:    Op(s.op.Load()),
				}
				if s.stamp.Load() == st1 {
					out = append(out, e)
					break
				}
			}
		}
	}
	sortEvents(out)
	return out
}

// Dropped returns how many events rank's ring has lost to wraparound:
// total appends beyond the ring's capacity. The ring is *designed* to
// overwrite (it is a flight recorder, not a log), but a merged timeline
// stitched from all ranks needs to know when a rank's window no longer
// reaches back to the iterations the other ranks still retain — those
// iterations are incomplete and any cross-rank attribution over them is
// suspect. Returns 0 on a nil tracer or out-of-range rank.
func (t *Tracer) Dropped(rank int) uint64 {
	if t == nil || rank < 0 || rank >= len(t.rings) {
		return 0
	}
	pos := t.rings[rank].pos.Load()
	if pos <= uint64(t.perRank) {
		return 0
	}
	return pos - uint64(t.perRank)
}

// DroppedTotal sums wraparound loss across every rank's ring.
func (t *Tracer) DroppedTotal() uint64 {
	var total uint64
	for rank := 0; rank < t.Ranks(); rank++ {
		total += t.Dropped(rank)
	}
	return total
}

// Instrument exposes per-rank wraparound loss on reg as
// fftgrad_trace_dropped_total{rank="N"} — read-on-exposition gauges, so
// the record path pays nothing for the accounting (the ring's claim
// counter already carries it).
func (t *Tracer) Instrument(reg *telemetry.Registry) {
	if t == nil || reg == nil {
		return
	}
	for rank := 0; rank < t.Ranks(); rank++ {
		rank := rank
		reg.GaugeFunc(fmt.Sprintf(`fftgrad_trace_dropped_total{rank="%d"}`, rank),
			"Trace events lost to ring wraparound on this rank's track.",
			func() float64 { return float64(t.Dropped(rank)) })
	}
}

// sortEvents orders events deterministically for export: by start time,
// then rank, then op, then seq, then duration.
func sortEvents(ev []Event) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Dur < b.Dur
	})
}

// Ctx is one rank's recording handle: it remembers the rank's track and
// the current iteration id so hot-path record calls carry no context
// arguments. A nil *Ctx is valid; every method is a no-op.
type Ctx struct {
	t    *Tracer
	rank int32
	seq  atomic.Uint64
}

// SetIter tags subsequent events with iteration id seq. Called once at
// the top of each training iteration; concurrent recorders (the cluster
// receiver) pick the new id up atomically.
func (c *Ctx) SetIter(seq uint64) {
	if c == nil {
		return
	}
	c.seq.Store(seq)
}

// Iter returns the current iteration id.
func (c *Ctx) Iter() uint64 {
	if c == nil {
		return 0
	}
	return c.seq.Load()
}

// Instant records a zero-duration marker at the current time.
func (c *Ctx) Instant(op Op, arg int64) {
	if c == nil {
		return
	}
	c.t.rings[c.rank].append(op, c.seq.Load(), arg, c.t.nowNanos(), 0)
}

// SpanSince records a span that started at start and ends now.
func (c *Ctx) SpanSince(op Op, arg int64, start time.Time) {
	if c == nil {
		return
	}
	dur := int64(time.Since(start))
	if dur < 0 {
		dur = 0
	}
	end := c.t.nowNanos()
	c.t.rings[c.rank].append(op, c.seq.Load(), arg, end-dur, dur)
}

// SpanTimed records a span with an explicit start and duration (the
// StageSink path, where the stage timer already measured both).
func (c *Ctx) SpanTimed(op Op, arg int64, start time.Time, dur time.Duration) {
	if c == nil {
		return
	}
	d := int64(dur)
	if d < 0 {
		d = 0
	}
	// Anchor the wall-clock start onto the tracer's monotonic axis: the
	// span started time.Since(start) before "now" on that axis.
	startNs := c.t.nowNanos() - int64(time.Since(start))
	c.t.rings[c.rank].append(op, c.seq.Load(), arg, startNs, d)
}

// stageSink adapts a Ctx to telemetry.StageSink: compressor-internal
// stage measurements (the Tm/Tf/Tp/Ts hooks already embedded in every
// instrumented compressor) become trace spans on the rank's track, so
// the FFT/select/quantize/pack breakdown appears inside the compress
// span without touching any compressor.
type stageSink struct{ c *Ctx }

// StageSpan implements telemetry.StageSink.
func (s stageSink) StageSpan(st telemetry.Stage, bytes int, start time.Time, dur time.Duration) {
	var op Op
	switch st {
	case telemetry.StageConvert:
		op = OpConvert
	case telemetry.StageTransform:
		op = OpTransform
	case telemetry.StageSelect:
		op = OpSelect
	case telemetry.StagePack:
		op = OpPack
	default:
		return // StageComm spans are recorded by the exchange loop itself
	}
	s.c.SpanTimed(op, int64(bytes), start, dur)
}

// StageSink returns a telemetry.StageSink recording compressor stage
// spans onto this rank's track, nil for a nil Ctx (so the caller's
// StageTimer.WithSink(nil) keeps the un-teed timer).
func (c *Ctx) StageSink() telemetry.StageSink {
	if c == nil {
		return nil
	}
	return stageSink{c}
}

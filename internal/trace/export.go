package trace

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"fftgrad/internal/buildinfo"
)

// Build identity stamped into every export's metadata (and therefore
// into flight-recorder dumps, which render through MarshalJSON). These
// are function vars so the golden tests can pin deterministic values.
var (
	buildVersion = buildinfo.Version
	buildGo      = buildinfo.GoVersion
)

// WriteJSON writes the tracer's current contents as a Chrome trace_event
// JSON array (the "JSON Array Format" both Perfetto and chrome://tracing
// accept): one metadata block naming the process and one thread per rank,
// then every span as a complete ("X") event and every instant marker as
// an "i" event, timestamps in microseconds since tracer start. A nil
// tracer writes an empty array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	bw := &errWriter{w: w}
	bw.str("[\n")
	pname := t.Name()
	if pname == "" {
		pname = "fftgrad trainer"
	}
	fmt.Fprintf(bw, `{"ph":"M","pid":1,"name":"process_name","args":{"name":%q}}`, pname)
	bw.str(",\n")
	fmt.Fprintf(bw, `{"ph":"M","pid":1,"name":"fftgrad_build","args":{"version":%q,"go":%q}}`,
		buildVersion(), buildGo())
	for rank := 0; rank < t.Ranks(); rank++ {
		bw.str(",\n")
		fmt.Fprintf(bw, `{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"rank %d"}}`, rank, rank)
	}
	for _, e := range events {
		bw.str(",\n")
		ts := float64(e.Start) / 1e3 // ns → µs
		if e.Dur > 0 || isSpan(e.Op) {
			fmt.Fprintf(bw,
				`{"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"name":%q,"cat":%q,"args":{"iter":%d,"arg":%d}}`,
				e.Rank, ts, float64(e.Dur)/1e3, e.Op.String(), e.Op.Cat(), e.Seq, e.Arg)
		} else {
			fmt.Fprintf(bw,
				`{"ph":"i","pid":1,"tid":%d,"ts":%.3f,"s":"t","name":%q,"cat":%q,"args":{"iter":%d,"arg":%d}}`,
				e.Rank, ts, e.Op.String(), e.Op.Cat(), e.Seq, e.Arg)
		}
	}
	bw.str("\n]\n")
	return bw.err
}

// isSpan reports whether op is a duration-carrying pipeline/exchange
// span (a span can legitimately measure 0ns on a fast clock and must
// still export as "X", not degrade into an instant).
func isSpan(op Op) bool {
	switch op {
	case OpIteration, OpCompute, OpScrub, OpConvert, OpTransform, OpSelect,
		OpPack, OpCompress, OpDecompress, OpExchange, OpBarrier, OpSendPeer,
		OpUpdate, OpSync:
		return true
	}
	return false
}

// MarshalJSON renders the whole timeline to a byte slice — the form the
// flight recorder hands to checkpoint.WriteBytesAtomic.
func (t *Tracer) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := t.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Handler serves the live timeline as trace_event JSON — mounted at
// /trace on the trainer's metrics mux. Safe to hit mid-run; the snapshot
// skips events being overwritten during the scan.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="fftgrad-trace.json"`)
		_ = t.WriteJSON(w)
	})
}

// errWriter latches the first write error so the export body stays free
// of per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
		return len(p), nil
	}
	return n, nil
}

func (e *errWriter) str(s string) { _, _ = io.WriteString(e, s) }

package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestMain pins the build identity the exporter stamps into metadata:
// the real values change with every commit and toolchain, which would
// make the golden files churn.
func TestMain(m *testing.M) {
	flag.Parse()
	buildVersion = func() string { return "test" }
	buildGo = func() string { return "gotest" }
	os.Exit(m.Run())
}

// buildDeterministic records a fixed timeline via raw ring appends (the
// Ctx API anchors on the wall clock, which would jitter a golden file):
// two ranks, two iterations of pipeline spans, plus cluster/guard
// instants. Timestamps are exact nanosecond literals.
func buildDeterministic() *Tracer {
	tr := New(2, 64)
	for iter := uint64(0); iter < 2; iter++ {
		base := int64(iter) * 10_000
		for rank := 0; rank < 2; rank++ {
			r := &tr.rings[rank]
			off := base + int64(rank)*50
			r.append(OpCompute, iter, 16, off, 3000)
			r.append(OpCompress, iter, 1024, off+3000, 1000)
			r.append(OpExchange, iter, 1024, off+4000, 2000)
			r.append(OpUpdate, iter, 16, off+6000, 500)
			r.append(OpIteration, iter, 1024, off, 7000)
		}
	}
	tr.rings[1].append(OpSuspect, 1, 0, 15_000, 0)
	tr.rings[0].append(OpRollback, 1, 0, 15_500, 0)
	tr.rings[0].append(OpFlightTrigger, 1, int64(ReasonRollback), 16_000, 0)
	return tr
}

func TestWriteJSONGolden(t *testing.T) {
	tr := buildDeterministic()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export drifted from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteJSONValid(t *testing.T) {
	tr := buildDeterministic()
	data, err := tr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var meta, spans, instants int
	ranks := map[float64]bool{}
	for _, e := range events {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			spans++
			ranks[e["tid"].(float64)] = true
			if e["dur"] == nil || e["name"] == "" || e["cat"] == "" {
				t.Errorf("span missing fields: %v", e)
			}
		case "i":
			instants++
			if e["s"] != "t" {
				t.Errorf("instant missing scope: %v", e)
			}
		default:
			t.Errorf("unknown phase: %v", e)
		}
	}
	if meta != 4 { // process_name + fftgrad_build + 2 thread_name
		t.Errorf("got %d metadata events, want 4", meta)
	}
	if spans != 20 || instants != 3 {
		t.Errorf("got %d spans, %d instants; want 20, 3", spans, instants)
	}
	if !ranks[0] || !ranks[1] {
		t.Errorf("spans missing a rank track: %v", ranks)
	}
}

func TestNilTracerExport(t *testing.T) {
	var tr *Tracer
	data, err := tr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("nil export is not valid JSON: %v", err)
	}
}

func TestHandler(t *testing.T) {
	tr := buildDeterministic()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	var events []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("handler body is not valid JSON: %v", err)
	}
}

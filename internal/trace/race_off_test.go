//go:build !race

package trace

// raceEnabled reports whether the race detector is active; the
// allocation-regression tests skip under -race because instrumentation
// adds bookkeeping allocations that are not present in production builds.
const raceEnabled = false

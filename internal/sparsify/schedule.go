package sparsify

import "math"

// Schedule yields the drop-out ratio θ to use at a given epoch. The paper
// proves (Thm. 3.4) that a fixed large θ leaves a convergence-error floor
// of θ²·2ησ²/b, and (Thm. 3.5) that a diminishing θ with θ_t² = L·η_t
// restores exact convergence; Fig. 13 shows dropping θ to 0 mid-training
// recovers accuracy after an aggressive start.
type Schedule interface {
	// Theta returns the drop ratio for the given 0-based epoch.
	Theta(epoch int) float64
}

// Const is a fixed-θ schedule (Theorem 3.4 regime).
type Const float64

// Theta implements Schedule.
func (c Const) Theta(epoch int) float64 { return float64(c) }

// StepDrop uses θ = Initial until epoch DropEpoch, then θ = Final. With
// Final = 0 this is the paper's accuracy-recovery schedule of Fig. 13.
type StepDrop struct {
	Initial   float64
	Final     float64
	DropEpoch int
}

// Theta implements Schedule.
func (s StepDrop) Theta(epoch int) float64 {
	if epoch >= s.DropEpoch {
		return s.Final
	}
	return s.Initial
}

// LRCoupled ties the drop ratio to the learning-rate schedule via the
// Theorem 3.5 condition θ_t² = L·η_t, clamped to [0, Cap].
type LRCoupled struct {
	L   float64                 // Lipschitz-constant estimate
	LR  func(epoch int) float64 // the training learning-rate schedule
	Cap float64                 // maximum θ (e.g. 0.95); 0 means 1.0
}

// Theta implements Schedule.
func (s LRCoupled) Theta(epoch int) float64 {
	th := math.Sqrt(s.L * s.LR(epoch))
	cap := s.Cap
	if cap == 0 {
		cap = 1
	}
	if th > cap {
		th = cap
	}
	if th < 0 {
		th = 0
	}
	return th
}

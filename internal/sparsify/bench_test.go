package sparsify

import (
	"fmt"
	"math"
	"testing"
)

// benchGrad builds a deterministic pseudo-gradient of length n with the
// mixed-scale structure real layer gradients show.
func benchGrad(n int) []float32 {
	g := make([]float32, n)
	for i := range g {
		g[i] = float32(math.Sin(float64(i)*0.7) * math.Exp(-float64(i%997)/500))
	}
	return g
}

// Sizes 2^16–2^22 match real layer gradients (dense layers through large
// conv/embedding blocks).
func BenchmarkAnalyzeSynthesize(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18, 1 << 20, 1 << 22} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := NewFFT()
			grad := benchGrad(n)
			dst := make([]float32, n)
			var spec Spectrum
			if err := f.AnalyzeInto(&spec, grad, 0.85); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n * 4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.AnalyzeInto(&spec, grad, 0.85); err != nil {
					b.Fatal(err)
				}
				if err := f.SynthesizeInto(dst, spec.L, spec.N, spec.Bins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTopKSpatialMask(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			grad := benchGrad(n)
			mask := make([]uint64, (n+63)/64)
			b.SetBytes(int64(n * 4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				TopKSpatialMask(mask, grad, 0.85)
			}
		})
	}
}

// TestAnalyzeIntoReuse checks that a Spectrum cycled through AnalyzeInto
// at mixed sizes keeps producing results identical to fresh Analyze.
func TestAnalyzeIntoReuse(t *testing.T) {
	f := NewFFT()
	var spec Spectrum
	for _, n := range []int{5000, 300, 5000, 8192, 17} {
		grad := benchGrad(n)
		if err := f.AnalyzeInto(&spec, grad, 0.85); err != nil {
			t.Fatal(err)
		}
		fresh, err := f.Analyze(grad, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		if spec.L != fresh.L || spec.N != fresh.N || spec.Kept != fresh.Kept {
			t.Fatalf("n=%d: header mismatch: reused {L:%d N:%d Kept:%d} fresh {L:%d N:%d Kept:%d}",
				n, spec.L, spec.N, spec.Kept, fresh.L, fresh.N, fresh.Kept)
		}
		for i := range fresh.Bins {
			if spec.Bins[i] != fresh.Bins[i] {
				t.Fatalf("n=%d: bin %d mismatch: %v vs %v", n, i, spec.Bins[i], fresh.Bins[i])
			}
		}
		for i := range fresh.Mask {
			if spec.Mask[i] != fresh.Mask[i] {
				t.Fatalf("n=%d: mask word %d mismatch", n, i)
			}
		}
	}
}

// TestDCTAnalyzeIntoReuse mirrors TestAnalyzeIntoReuse for the DCT path.
func TestDCTAnalyzeIntoReuse(t *testing.T) {
	d := NewDCT()
	var spec RealSpectrum
	for _, n := range []int{5000, 300, 5000} {
		grad := benchGrad(n)
		if err := d.AnalyzeInto(&spec, grad, 0.85); err != nil {
			t.Fatal(err)
		}
		fresh, err := d.Analyze(grad, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		if spec.L != fresh.L || spec.N != fresh.N || spec.Kept != fresh.Kept {
			t.Fatalf("n=%d: header mismatch", n)
		}
		for i := range fresh.Bins {
			if spec.Bins[i] != fresh.Bins[i] {
				t.Fatalf("n=%d: bin %d mismatch: %v vs %v", n, i, spec.Bins[i], fresh.Bins[i])
			}
		}
	}
}

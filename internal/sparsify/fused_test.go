package sparsify

import (
	"math"
	"math/rand"
	"testing"
)

// gatherReference reproduces the unfused compressor gather: walk the mask
// in bin order, collecting (re, im) float32 pairs and their max |value|.
func gatherReference(spec *Spectrum) ([]float32, float64) {
	vals := make([]float32, 0, 2*spec.Kept)
	var absMax float64
	for i, b := range spec.Bins {
		if spec.Mask[i>>6]&(1<<(uint(i)&63)) == 0 {
			continue
		}
		re, im := float32(real(b)), float32(imag(b))
		vals = append(vals, re, im)
		if a := math.Abs(float64(re)); a > absMax {
			absMax = a
		}
		if a := math.Abs(float64(im)); a > absMax {
			absMax = a
		}
	}
	return vals, absMax
}

// TestAnalyzePackedMatchesReference pins the fused select+pack sweep
// against AnalyzeInto + reference gather, bit for bit: same mask words,
// same zeroed spectrum, same packed values in the same order, same
// absMax — across signal shapes (random, constant, tie-heavy, sparse
// impulse), lengths spanning several chunk counts, and the full theta
// range including the keep-everything and drop-everything edges.
func TestAnalyzePackedMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	signals := map[string]func(n int) []float32{
		"random": func(n int) []float32 {
			x := make([]float32, n)
			for i := range x {
				x[i] = float32(r.NormFloat64())
			}
			return x
		},
		// A periodic signal produces many exactly-equal magnitude bins,
		// exercising the tie-fill ordering.
		"tie-heavy": func(n int) []float32 {
			x := make([]float32, n)
			for i := range x {
				x[i] = float32(i%16) - 7.5
			}
			return x
		},
		"impulse": func(n int) []float32 {
			x := make([]float32, n)
			x[n/3] = 5
			return x
		},
		"zeros": func(n int) []float32 { return make([]float32, n) },
	}
	f := NewFFT()
	for name, gen := range signals {
		for _, n := range []int{2, 100, 4096, 5000, 1 << 14} {
			x := gen(n)
			for _, theta := range []float64{0, 0.15, 0.5, 0.85, 0.99, 1} {
				var ref, fus Spectrum
				if err := f.AnalyzeInto(&ref, x, theta); err != nil {
					t.Fatalf("%s n=%d θ=%g: reference: %v", name, n, theta, err)
				}
				wantVals, wantMax := gatherReference(&ref)

				nbins := ref.N/2 + 1
				vals := make([]float32, 2*KeepCount(nbins, theta)+1)
				nvals, gotMax, err := f.AnalyzePacked(&fus, vals, x, theta)
				if err != nil {
					t.Fatalf("%s n=%d θ=%g: fused: %v", name, n, theta, err)
				}

				if fus.L != ref.L || fus.N != ref.N || fus.Kept != ref.Kept {
					t.Fatalf("%s n=%d θ=%g: header (%d,%d,%d) != (%d,%d,%d)",
						name, n, theta, fus.L, fus.N, fus.Kept, ref.L, ref.N, ref.Kept)
				}
				for w := range ref.Mask {
					if fus.Mask[w] != ref.Mask[w] {
						t.Fatalf("%s n=%d θ=%g: mask word %d %#x != %#x",
							name, n, theta, w, fus.Mask[w], ref.Mask[w])
					}
				}
				for i := range ref.Bins {
					if fus.Bins[i] != ref.Bins[i] {
						t.Fatalf("%s n=%d θ=%g: bin %d %v != %v",
							name, n, theta, i, fus.Bins[i], ref.Bins[i])
					}
				}
				if nvals != len(wantVals) {
					t.Fatalf("%s n=%d θ=%g: %d packed floats, want %d", name, n, theta, nvals, len(wantVals))
				}
				for i := 0; i < nvals; i++ {
					if math.Float32bits(vals[i]) != math.Float32bits(wantVals[i]) {
						t.Fatalf("%s n=%d θ=%g: val %d %g != %g", name, n, theta, i, vals[i], wantVals[i])
					}
				}
				if gotMax != wantMax {
					t.Fatalf("%s n=%d θ=%g: absMax %g != %g", name, n, theta, gotMax, wantMax)
				}
			}
		}
	}
}

// TestAnalyzePackedBufferTooSmall checks the defensive buffer-length
// error rather than a silent overrun.
func TestAnalyzePackedBufferTooSmall(t *testing.T) {
	f := NewFFT()
	x := make([]float32, 100)
	for i := range x {
		x[i] = float32(i)
	}
	var spec Spectrum
	if _, _, err := f.AnalyzePacked(&spec, make([]float32, 2), x, 0.5); err == nil {
		t.Fatal("expected a buffer-too-small error")
	}
}

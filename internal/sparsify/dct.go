package sparsify

import (
	"fmt"
	"sync"

	"fftgrad/internal/cfft"
	"fftgrad/internal/parallel"
	"fftgrad/internal/topk"
)

// RealSpectrum is the sparsified DCT representation of a gradient: N real
// coefficients (vs the FFT's N/2+1 complex bins), with a keep bitmap.
type RealSpectrum struct {
	L    int       // original gradient length
	N    int       // padded power-of-two transform length
	Bins []float64 // full coefficient vector (len N); dropped bins zero
	Mask []uint64  // keep bitmap over the N bins
	Kept int
}

// DCT analyzes and synthesizes gradients through the type-II discrete
// cosine transform — the real-coefficient ablation of the paper's FFT
// sparsifier (each kept bin costs one quantized value instead of two).
// Safe for concurrent use.
type DCT struct {
	mu    sync.Mutex
	plans map[int]*cfft.DCTPlan
}

// NewDCT returns an empty DCT sparsifier; plans are created lazily.
func NewDCT() *DCT { return &DCT{plans: make(map[int]*cfft.DCTPlan)} }

func (d *DCT) plan(n int) *cfft.DCTPlan {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.plans[n]
	if !ok {
		p = cfft.NewDCTPlan(n)
		d.plans[n] = p
	}
	return p
}

// Analyze transforms x (zero-padded to the next power of two) with the
// DCT-II and keeps only the top-(1-θ) fraction of coefficients by
// magnitude. x is not modified.
func (d *DCT) Analyze(x []float32, theta float64) (*RealSpectrum, error) {
	l := len(x)
	if l < 2 {
		return nil, fmt.Errorf("sparsify: gradient too short (%d)", l)
	}
	n := cfft.NextPow2(l)
	if n < 2 {
		n = 2
	}
	plan := d.plan(n)

	sig := make([]float64, n)
	parallel.For(l, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sig[i] = float64(x[i])
		}
	})
	bins := make([]float64, n)
	plan.Forward(bins, sig)

	k := KeepCount(n, theta)
	mags := make([]float64, n)
	parallel.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := bins[i]
			if v < 0 {
				v = -v
			}
			mags[i] = v
		}
	})
	mask := topk.MaskTopK(mags, k)
	for i := 0; i < n; i++ {
		if mask[i>>6]&(1<<(uint(i)&63)) == 0 {
			bins[i] = 0
		}
	}
	return &RealSpectrum{L: l, N: n, Bins: bins, Mask: mask, Kept: k}, nil
}

// Synthesize reconstructs the (lossy) gradient from a sparsified DCT
// spectrum. dst must have length spec.L.
func (d *DCT) Synthesize(dst []float32, spec *RealSpectrum) error {
	if len(dst) != spec.L {
		return fmt.Errorf("sparsify: dst length %d != gradient length %d", len(dst), spec.L)
	}
	plan := d.plan(spec.N)
	if plan.N() != len(spec.Bins) {
		return fmt.Errorf("sparsify: spectrum length %d inconsistent with N=%d", len(spec.Bins), spec.N)
	}
	sig := make([]float64, spec.N)
	plan.Inverse(sig, spec.Bins)
	parallel.For(spec.L, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = float32(sig[i])
		}
	})
	return nil
}

// Roundtrip sparsifies x at ratio theta through the DCT domain and
// returns the reconstruction.
func (d *DCT) Roundtrip(x []float32, theta float64) ([]float32, error) {
	spec, err := d.Analyze(x, theta)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(x))
	if err := d.Synthesize(out, spec); err != nil {
		return nil, err
	}
	return out, nil
}

package sparsify

import (
	"fmt"
	"time"

	"fftgrad/internal/cfft"
	"fftgrad/internal/parallel"
	"fftgrad/internal/scratch"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/topk"
)

// RealSpectrum is the sparsified DCT representation of a gradient: N real
// coefficients (vs the FFT's N/2+1 complex bins), with a keep bitmap.
type RealSpectrum struct {
	L    int       // original gradient length
	N    int       // padded power-of-two transform length
	Bins []float64 // full coefficient vector (len N); dropped bins zero
	Mask []uint64  // keep bitmap over the N bins
	Kept int
}

// DCT analyzes and synthesizes gradients through the type-II discrete
// cosine transform — the real-coefficient ablation of the paper's FFT
// sparsifier (each kept bin costs one quantized value instead of two).
// Plans come from the process-wide cfft cache and temporaries are pooled;
// safe for concurrent use.
type DCT struct{}

// NewDCT returns a DCT sparsifier; plans are cached process-wide and
// created lazily.
func NewDCT() *DCT { return &DCT{} }

// Analyze transforms x (zero-padded to the next power of two) with the
// DCT-II and keeps only the top-(1-θ) fraction of coefficients by
// magnitude. x is not modified. The returned RealSpectrum is freshly
// allocated; loops should reuse one via AnalyzeInto.
func (d *DCT) Analyze(x []float32, theta float64) (*RealSpectrum, error) {
	spec := new(RealSpectrum)
	if err := d.AnalyzeInto(spec, x, theta); err != nil {
		return nil, err
	}
	return spec, nil
}

// AnalyzeInto is Analyze reusing the capacity of spec.Bins and spec.Mask;
// after a warm-up call at a given padded length it performs no heap
// allocation. The magnitude pass is fused with top-k selection.
func (d *DCT) AnalyzeInto(spec *RealSpectrum, x []float32, theta float64) error {
	return d.AnalyzeIntoTimed(spec, x, theta, nil)
}

// AnalyzeIntoTimed is AnalyzeInto with per-stage timing reported to st
// (widening → StageConvert, DCT → StageTransform, magnitude/top-k/zero →
// StageSelect); see sparsify.FFT.AnalyzeIntoTimed. nil st disables it.
func (d *DCT) AnalyzeIntoTimed(spec *RealSpectrum, x []float32, theta float64, st *telemetry.StageTimer) error {
	l := len(x)
	if l < 2 {
		return fmt.Errorf("sparsify: gradient too short (%d)", l)
	}
	gradBytes := 4 * l
	n := cfft.PaddedLen(l)
	plan := cfft.DCTPlanFor(n)

	sigb := scratch.Float64s(n)
	defer scratch.PutFloat64s(sigb)
	sig := *sigb
	t0 := time.Now()
	parallel.For2(l, sig, x, widenF32)
	for i := l; i < n; i++ {
		sig[i] = 0
	}
	st.ObserveSince(telemetry.StageConvert, gradBytes, t0)
	spec.L, spec.N = l, n
	spec.Bins = growF64(spec.Bins, n)
	spec.Mask = growU64(spec.Mask, (n+63)/64)
	t0 = time.Now()
	plan.Forward(spec.Bins, sig)
	st.ObserveSince(telemetry.StageTransform, gradBytes, t0)

	t0 = time.Now()
	k := KeepCount(n, theta)
	magsb := scratch.Float64s(n)
	defer scratch.PutFloat64s(magsb)
	mags := *magsb
	bins := spec.Bins
	parallel.For2(n, mags, bins, func(mags, bins []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := bins[i]
			if v < 0 {
				v = -v
			}
			mags[i] = v
		}
	})
	topk.MaskTopKInto(spec.Mask, mags, k)
	for i := 0; i < n; i++ {
		if spec.Mask[i>>6]&(1<<(uint(i)&63)) == 0 {
			bins[i] = 0
		}
	}
	spec.Kept = k
	st.ObserveSince(telemetry.StageSelect, gradBytes, t0)
	return nil
}

// Synthesize reconstructs the (lossy) gradient from a sparsified DCT
// spectrum. dst must have length spec.L.
func (d *DCT) Synthesize(dst []float32, spec *RealSpectrum) error {
	return d.SynthesizeInto(dst, spec.L, spec.N, spec.Bins)
}

// SynthesizeInto reconstructs the gradient from the raw spectrum fields
// (original length l, padded length n, full DCT coefficients with dropped
// bins zeroed). dst must have length l; temporaries are pooled.
func (d *DCT) SynthesizeInto(dst []float32, l, n int, bins []float64) error {
	return d.SynthesizeIntoTimed(dst, l, n, bins, nil)
}

// SynthesizeIntoTimed is SynthesizeInto reporting the inverse DCT as
// StageTransform and the f64→f32 narrowing as StageConvert on st (nil
// disables timing).
func (d *DCT) SynthesizeIntoTimed(dst []float32, l, n int, bins []float64, st *telemetry.StageTimer) error {
	if len(dst) != l {
		return fmt.Errorf("sparsify: dst length %d != gradient length %d", len(dst), l)
	}
	if !cfft.IsPow2(n) || l > n {
		return fmt.Errorf("sparsify: bad padded length %d for gradient length %d", n, l)
	}
	plan := cfft.DCTPlanFor(n)
	if plan.N() != len(bins) {
		return fmt.Errorf("sparsify: spectrum length %d inconsistent with N=%d", len(bins), n)
	}
	sigb := scratch.Float64s(n)
	defer scratch.PutFloat64s(sigb)
	sig := *sigb
	t0 := time.Now()
	plan.Inverse(sig, bins)
	st.ObserveSince(telemetry.StageTransform, 4*l, t0)
	t0 = time.Now()
	parallel.For2(l, dst, sig, narrowF64)
	st.ObserveSince(telemetry.StageConvert, 4*l, t0)
	return nil
}

// growF64 resizes b to length n, reallocating only when capacity is
// insufficient. Contents are unspecified (callers fully overwrite).
func growF64(b []float64, n int) []float64 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]float64, n)
}

// Roundtrip sparsifies x at ratio theta through the DCT domain and
// returns the reconstruction.
func (d *DCT) Roundtrip(x []float32, theta float64) ([]float32, error) {
	spec, err := d.Analyze(x, theta)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(x))
	if err := d.Synthesize(out, spec); err != nil {
		return nil, err
	}
	return out, nil
}

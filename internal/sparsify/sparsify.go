// Package sparsify implements the two gradient sparsification strategies
// the paper compares (Sec. 3.1.1): direct spatial Top-k thresholding, and
// the paper's FFT-based Top-k which drops low-magnitude *frequency*
// coefficients so the reconstructed gradient keeps the distribution of the
// original signal (Fig. 5).
//
// θ (theta) is the drop-out ratio throughout: θ = 0.85 drops 85% of the
// components and keeps the top 15% by magnitude.
package sparsify

import (
	"fmt"
	"math"
	"time"

	"fftgrad/internal/cfft"
	"fftgrad/internal/parallel"
	"fftgrad/internal/scratch"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/topk"
)

// KeepCount returns the number of components kept from total at drop ratio
// theta: ceil((1-θ)·total), clamped to [0, total].
func KeepCount(total int, theta float64) int {
	if theta <= 0 {
		return total
	}
	if theta >= 1 {
		return 0
	}
	// The 1e-9 guard absorbs float error in (1-θ)·total (e.g. 0.15·100 =
	// 15.000000000000002) without changing genuinely fractional counts.
	k := int(math.Ceil((1-theta)*float64(total) - 1e-9))
	if k > total {
		k = total
	}
	return k
}

// TopKSpatial zeroes all but the top-(1-θ) fraction of x by magnitude, in
// place, and returns the keep bitmap (one bit per element). This is the
// vanilla Top-k baseline (Aji & Heafield 2017) without error accumulation.
func TopKSpatial(x []float32, theta float64) []uint64 {
	mask := make([]uint64, (len(x)+63)/64)
	TopKSpatialMask(mask, x, theta)
	parallel.For2(len(x), x, mask, func(x []float32, mask []uint64, lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask[i>>6]&(1<<(uint(i)&63)) == 0 {
				x[i] = 0
			}
		}
	})
	return mask
}

// TopKSpatialMask fills mask (⌈len(x)/64⌉ words) with the keep bitmap of
// the top-(1-θ) fraction of x by magnitude, without modifying x. All
// temporaries are pooled, so the steady state allocates nothing. Callers
// packing values directly by bitmap do not need the zeroing pass of
// TopKSpatial.
func TopKSpatialMask(mask []uint64, x []float32, theta float64) {
	n := len(x)
	k := KeepCount(n, theta)
	magsb := scratch.Float64s(n)
	defer scratch.PutFloat64s(magsb)
	mags := *magsb
	parallel.For2(n, mags, x, func(mags []float64, x []float32, lo, hi int) {
		for i := lo; i < hi; i++ {
			m := float64(x[i])
			if m < 0 {
				m = -m
			}
			mags[i] = m
		}
	})
	topk.MaskTopKInto(mask, mags, k)
}

// Spectrum is the sparsified frequency-domain representation of a gradient:
// the padded transform length, the surviving complex bins, and the bitmap
// saying which bins survived.
type Spectrum struct {
	L    int          // original gradient length
	N    int          // padded power-of-two transform length
	Bins []complex128 // full half-spectrum (len N/2+1); dropped bins zero
	Mask []uint64     // keep bitmap over the N/2+1 bins
	Kept int          // number of surviving bins
}

// NumBins returns the number of half-spectrum bins, N/2+1.
func (s *Spectrum) NumBins() int { return s.N/2 + 1 }

// FFT analyzes and synthesizes gradients as 1-D real signals. Transform
// plans come from the process-wide cfft cache and all temporaries are
// pooled, so one instance (or many — they share everything) is safe for
// concurrent use and allocation-free in steady state via AnalyzeInto.
type FFT struct{}

// NewFFT returns an FFT sparsifier; plans are cached process-wide and
// created lazily.
func NewFFT() *FFT { return &FFT{} }

// Analyze transforms x (zero-padded to the next power of two) into the
// frequency domain and keeps only the top-(1-θ) fraction of bins by
// complex magnitude, zeroing the rest. x is not modified. The returned
// Spectrum is freshly allocated; loops should reuse one via AnalyzeInto.
func (f *FFT) Analyze(x []float32, theta float64) (*Spectrum, error) {
	spec := new(Spectrum)
	if err := f.AnalyzeInto(spec, x, theta); err != nil {
		return nil, err
	}
	return spec, nil
}

// AnalyzeInto is Analyze reusing the capacity of spec.Bins and spec.Mask:
// after a warm-up call at a given padded length, analysis performs no heap
// allocation. The magnitude pass is fused with top-k selection — squared
// magnitudes are computed once into a pooled buffer and the selector uses
// them directly instead of recomputing |z| per bin.
func (f *FFT) AnalyzeInto(spec *Spectrum, x []float32, theta float64) error {
	return f.AnalyzeIntoTimed(spec, x, theta, nil)
}

// AnalyzeIntoTimed is AnalyzeInto reporting the per-stage wall time of
// the analysis to st: the f32→f64 widening as StageConvert (Tm), the
// forward transform as StageTransform (Tf) and the fused magnitude +
// top-k + zeroing pass as StageSelect (Ts), all normalized to the input
// gradient's byte size — exactly the terms the Sec. 3.3 model prices.
// A nil st disables timing; the observations themselves are atomic, so
// the steady state stays allocation-free either way.
func (f *FFT) AnalyzeIntoTimed(spec *Spectrum, x []float32, theta float64, st *telemetry.StageTimer) error {
	l := len(x)
	if l < 2 {
		return fmt.Errorf("sparsify: gradient too short (%d)", l)
	}
	gradBytes := 4 * l
	n := cfft.PaddedLen(l)
	plan := cfft.RealPlanFor(n)

	sigb := scratch.Float64s(n)
	defer scratch.PutFloat64s(sigb)
	sig := *sigb
	t0 := time.Now()
	parallel.For2(l, sig, x, widenF32)
	for i := l; i < n; i++ {
		sig[i] = 0
	}
	st.ObserveSince(telemetry.StageConvert, gradBytes, t0)
	nb := plan.SpectrumLen()
	spec.L, spec.N = l, n
	spec.Bins = growC128(spec.Bins, nb)
	spec.Mask = growU64(spec.Mask, (nb+63)/64)
	t0 = time.Now()
	plan.Forward(spec.Bins, sig)
	st.ObserveSince(telemetry.StageTransform, gradBytes, t0)

	t0 = time.Now()
	k := KeepCount(nb, theta)
	magsb := scratch.Float64s(nb)
	defer scratch.PutFloat64s(magsb)
	mags := *magsb
	bins := spec.Bins
	parallel.For2(nb, mags, bins, func(mags []float64, bins []complex128, lo, hi int) {
		for i := lo; i < hi; i++ {
			re, im := real(bins[i]), imag(bins[i])
			mags[i] = re*re + im*im // monotone in |z|; avoids sqrt
		}
	})
	topk.MaskTopKInto(spec.Mask, mags, k)
	for i := 0; i < nb; i++ {
		if spec.Mask[i>>6]&(1<<(uint(i)&63)) == 0 {
			bins[i] = 0
		}
	}
	spec.Kept = k
	st.ObserveSince(telemetry.StageSelect, gradBytes, t0)
	return nil
}

// Synthesize reconstructs the (lossy) gradient from a sparsified spectrum.
// dst must have length spec.L.
func (f *FFT) Synthesize(dst []float32, spec *Spectrum) error {
	return f.SynthesizeInto(dst, spec.L, spec.N, spec.Bins)
}

// SynthesizeInto reconstructs the gradient from the raw spectrum fields
// (original length l, padded length n, half-spectrum bins with dropped
// bins zeroed). dst must have length l. All temporaries are pooled, so
// synthesis performs no steady-state heap allocation.
func (f *FFT) SynthesizeInto(dst []float32, l, n int, bins []complex128) error {
	return f.SynthesizeIntoTimed(dst, l, n, bins, nil)
}

// SynthesizeIntoTimed is SynthesizeInto reporting the inverse transform
// as StageTransform and the f64→f32 narrowing as StageConvert on st (nil
// disables timing).
func (f *FFT) SynthesizeIntoTimed(dst []float32, l, n int, bins []complex128, st *telemetry.StageTimer) error {
	if len(dst) != l {
		return fmt.Errorf("sparsify: dst length %d != gradient length %d", len(dst), l)
	}
	if !cfft.IsPow2(n) || l > n {
		return fmt.Errorf("sparsify: bad padded length %d for gradient length %d", n, l)
	}
	plan := cfft.RealPlanFor(n)
	if plan.SpectrumLen() != len(bins) {
		return fmt.Errorf("sparsify: spectrum length %d inconsistent with N=%d", len(bins), n)
	}
	sigb := scratch.Float64s(n)
	defer scratch.PutFloat64s(sigb)
	sig := *sigb
	t0 := time.Now()
	plan.Inverse(sig, bins)
	st.ObserveSince(telemetry.StageTransform, 4*l, t0)
	t0 = time.Now()
	parallel.For2(l, dst, sig, narrowF64)
	st.ObserveSince(telemetry.StageConvert, 4*l, t0)
	return nil
}

// widenF32 and narrowF64 are the capture-free precision-conversion bodies
// shared by the FFT and DCT paths (parallel.For2 keeps them alloc-free).
func widenF32(dst []float64, src []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = float64(src[i])
	}
}

func narrowF64(dst []float32, src []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = float32(src[i])
	}
}

// growC128 resizes b to length n, reallocating only when capacity is
// insufficient. Contents are unspecified (callers fully overwrite).
func growC128(b []complex128, n int) []complex128 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]complex128, n)
}

// growU64 resizes b to length n, reallocating only when capacity is
// insufficient. Contents are unspecified (callers fully overwrite).
func growU64(b []uint64, n int) []uint64 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]uint64, n)
}

// Roundtrip sparsifies x at ratio theta through the frequency domain and
// returns the reconstruction — the "FFT Top-k" curve of Fig. 5.
func (f *FFT) Roundtrip(x []float32, theta float64) ([]float32, error) {
	spec, err := f.Analyze(x, theta)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(x))
	if err := f.Synthesize(out, spec); err != nil {
		return nil, err
	}
	return out, nil
}

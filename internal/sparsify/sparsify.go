// Package sparsify implements the two gradient sparsification strategies
// the paper compares (Sec. 3.1.1): direct spatial Top-k thresholding, and
// the paper's FFT-based Top-k which drops low-magnitude *frequency*
// coefficients so the reconstructed gradient keeps the distribution of the
// original signal (Fig. 5).
//
// θ (theta) is the drop-out ratio throughout: θ = 0.85 drops 85% of the
// components and keeps the top 15% by magnitude.
package sparsify

import (
	"fmt"
	"math"
	"sync"

	"fftgrad/internal/cfft"
	"fftgrad/internal/parallel"
	"fftgrad/internal/topk"
)

// KeepCount returns the number of components kept from total at drop ratio
// theta: ceil((1-θ)·total), clamped to [0, total].
func KeepCount(total int, theta float64) int {
	if theta <= 0 {
		return total
	}
	if theta >= 1 {
		return 0
	}
	// The 1e-9 guard absorbs float error in (1-θ)·total (e.g. 0.15·100 =
	// 15.000000000000002) without changing genuinely fractional counts.
	k := int(math.Ceil((1-theta)*float64(total) - 1e-9))
	if k > total {
		k = total
	}
	return k
}

// TopKSpatial zeroes all but the top-(1-θ) fraction of x by magnitude, in
// place, and returns the keep bitmap (one bit per element). This is the
// vanilla Top-k baseline (Aji & Heafield 2017) without error accumulation.
func TopKSpatial(x []float32, theta float64) []uint64 {
	n := len(x)
	k := KeepCount(n, theta)
	mags := make([]float64, n)
	parallel.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m := float64(x[i])
			if m < 0 {
				m = -m
			}
			mags[i] = m
		}
	})
	mask := topk.MaskTopK(mags, k)
	parallel.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask[i>>6]&(1<<(uint(i)&63)) == 0 {
				x[i] = 0
			}
		}
	})
	return mask
}

// Spectrum is the sparsified frequency-domain representation of a gradient:
// the padded transform length, the surviving complex bins, and the bitmap
// saying which bins survived.
type Spectrum struct {
	L    int          // original gradient length
	N    int          // padded power-of-two transform length
	Bins []complex128 // full half-spectrum (len N/2+1); dropped bins zero
	Mask []uint64     // keep bitmap over the N/2+1 bins
	Kept int          // number of surviving bins
}

// NumBins returns the number of half-spectrum bins, N/2+1.
func (s *Spectrum) NumBins() int { return s.N/2 + 1 }

// FFT analyzes and synthesizes gradients as 1-D real signals. It caches
// one RealPlan per padded length and is safe for concurrent use.
type FFT struct {
	mu    sync.Mutex
	plans map[int]*cfft.RealPlan
}

// NewFFT returns an empty sparsifier; plans are created lazily.
func NewFFT() *FFT { return &FFT{plans: make(map[int]*cfft.RealPlan)} }

func (f *FFT) plan(n int) *cfft.RealPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.plans[n]
	if !ok {
		p = cfft.NewRealPlan(n)
		f.plans[n] = p
	}
	return p
}

// Analyze transforms x (zero-padded to the next power of two) into the
// frequency domain and keeps only the top-(1-θ) fraction of bins by
// complex magnitude, zeroing the rest. x is not modified.
func (f *FFT) Analyze(x []float32, theta float64) (*Spectrum, error) {
	l := len(x)
	if l < 2 {
		return nil, fmt.Errorf("sparsify: gradient too short (%d)", l)
	}
	n := cfft.NextPow2(l)
	if n < 2 {
		n = 2
	}
	plan := f.plan(n)

	sig := make([]float64, n)
	parallel.For(l, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sig[i] = float64(x[i])
		}
	})
	bins := make([]complex128, plan.SpectrumLen())
	plan.Forward(bins, sig)

	nb := len(bins)
	k := KeepCount(nb, theta)
	mags := make([]float64, nb)
	parallel.For(nb, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			re, im := real(bins[i]), imag(bins[i])
			mags[i] = re*re + im*im // monotone in |z|; avoids sqrt
		}
	})
	mask := topk.MaskTopK(mags, k)
	for i := 0; i < nb; i++ {
		if mask[i>>6]&(1<<(uint(i)&63)) == 0 {
			bins[i] = 0
		}
	}
	return &Spectrum{L: l, N: n, Bins: bins, Mask: mask, Kept: k}, nil
}

// Synthesize reconstructs the (lossy) gradient from a sparsified spectrum.
// dst must have length spec.L.
func (f *FFT) Synthesize(dst []float32, spec *Spectrum) error {
	if len(dst) != spec.L {
		return fmt.Errorf("sparsify: dst length %d != gradient length %d", len(dst), spec.L)
	}
	plan := f.plan(spec.N)
	if plan.SpectrumLen() != len(spec.Bins) {
		return fmt.Errorf("sparsify: spectrum length %d inconsistent with N=%d", len(spec.Bins), spec.N)
	}
	sig := make([]float64, spec.N)
	plan.Inverse(sig, spec.Bins)
	parallel.For(spec.L, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = float32(sig[i])
		}
	})
	return nil
}

// Roundtrip sparsifies x at ratio theta through the frequency domain and
// returns the reconstruction — the "FFT Top-k" curve of Fig. 5.
func (f *FFT) Roundtrip(x []float32, theta float64) ([]float32, error) {
	spec, err := f.Analyze(x, theta)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(x))
	if err := f.Synthesize(out, spec); err != nil {
		return nil, err
	}
	return out, nil
}

// Package sparsify implements the two gradient sparsification strategies
// the paper compares (Sec. 3.1.1): direct spatial Top-k thresholding, and
// the paper's FFT-based Top-k which drops low-magnitude *frequency*
// coefficients so the reconstructed gradient keeps the distribution of the
// original signal (Fig. 5).
//
// θ (theta) is the drop-out ratio throughout: θ = 0.85 drops 85% of the
// components and keeps the top 15% by magnitude.
package sparsify

import (
	"fmt"
	"math"
	mbits "math/bits"
	"time"

	"fftgrad/internal/cfft"
	"fftgrad/internal/parallel"
	"fftgrad/internal/scratch"
	"fftgrad/internal/telemetry"
	"fftgrad/internal/topk"
)

// KeepCount returns the number of components kept from total at drop ratio
// theta: ceil((1-θ)·total), clamped to [0, total].
func KeepCount(total int, theta float64) int {
	if theta <= 0 {
		return total
	}
	if theta >= 1 {
		return 0
	}
	// The 1e-9 guard absorbs float error in (1-θ)·total (e.g. 0.15·100 =
	// 15.000000000000002) without changing genuinely fractional counts.
	k := int(math.Ceil((1-theta)*float64(total) - 1e-9))
	if k > total {
		k = total
	}
	return k
}

// TopKSpatial zeroes all but the top-(1-θ) fraction of x by magnitude, in
// place, and returns the keep bitmap (one bit per element). This is the
// vanilla Top-k baseline (Aji & Heafield 2017) without error accumulation.
func TopKSpatial(x []float32, theta float64) []uint64 {
	mask := make([]uint64, (len(x)+63)/64)
	TopKSpatialMask(mask, x, theta)
	parallel.For2(len(x), x, mask, func(x []float32, mask []uint64, lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask[i>>6]&(1<<(uint(i)&63)) == 0 {
				x[i] = 0
			}
		}
	})
	return mask
}

// TopKSpatialMask fills mask (⌈len(x)/64⌉ words) with the keep bitmap of
// the top-(1-θ) fraction of x by magnitude, without modifying x. All
// temporaries are pooled, so the steady state allocates nothing. Callers
// packing values directly by bitmap do not need the zeroing pass of
// TopKSpatial.
func TopKSpatialMask(mask []uint64, x []float32, theta float64) {
	n := len(x)
	k := KeepCount(n, theta)
	magsb := scratch.Float64s(n)
	defer scratch.PutFloat64s(magsb)
	mags := *magsb
	parallel.For2(n, mags, x, func(mags []float64, x []float32, lo, hi int) {
		for i := lo; i < hi; i++ {
			m := float64(x[i])
			if m < 0 {
				m = -m
			}
			mags[i] = m
		}
	})
	topk.MaskTopKInto(mask, mags, k)
}

// Spectrum is the sparsified frequency-domain representation of a gradient:
// the padded transform length, the surviving complex bins, and the bitmap
// saying which bins survived.
type Spectrum struct {
	L    int          // original gradient length
	N    int          // padded power-of-two transform length
	Bins []complex128 // full half-spectrum (len N/2+1); dropped bins zero
	Mask []uint64     // keep bitmap over the N/2+1 bins
	Kept int          // number of surviving bins
}

// NumBins returns the number of half-spectrum bins, N/2+1.
func (s *Spectrum) NumBins() int { return s.N/2 + 1 }

// FFT analyzes and synthesizes gradients as 1-D real signals. Transform
// plans come from the process-wide cfft cache and all temporaries are
// pooled, so one instance (or many — they share everything) is safe for
// concurrent use and allocation-free in steady state via AnalyzeInto.
type FFT struct{}

// NewFFT returns an FFT sparsifier; plans are cached process-wide and
// created lazily.
func NewFFT() *FFT { return &FFT{} }

// Analyze transforms x (zero-padded to the next power of two) into the
// frequency domain and keeps only the top-(1-θ) fraction of bins by
// complex magnitude, zeroing the rest. x is not modified. The returned
// Spectrum is freshly allocated; loops should reuse one via AnalyzeInto.
func (f *FFT) Analyze(x []float32, theta float64) (*Spectrum, error) {
	spec := new(Spectrum)
	if err := f.AnalyzeInto(spec, x, theta); err != nil {
		return nil, err
	}
	return spec, nil
}

// AnalyzeInto is Analyze reusing the capacity of spec.Bins and spec.Mask:
// after a warm-up call at a given padded length, analysis performs no heap
// allocation. The magnitude pass is fused with top-k selection — squared
// magnitudes are computed once into a pooled buffer and the selector uses
// them directly instead of recomputing |z| per bin.
func (f *FFT) AnalyzeInto(spec *Spectrum, x []float32, theta float64) error {
	return f.AnalyzeIntoTimed(spec, x, theta, nil)
}

// AnalyzeIntoTimed is AnalyzeInto reporting the per-stage wall time of
// the analysis to st: the f32→f64 widening as StageConvert (Tm), the
// forward transform as StageTransform (Tf) and the fused magnitude +
// top-k + zeroing pass as StageSelect (Ts), all normalized to the input
// gradient's byte size — exactly the terms the Sec. 3.3 model prices.
// A nil st disables timing; the observations themselves are atomic, so
// the steady state stays allocation-free either way.
func (f *FFT) AnalyzeIntoTimed(spec *Spectrum, x []float32, theta float64, st *telemetry.StageTimer) error {
	l := len(x)
	if l < 2 {
		return fmt.Errorf("sparsify: gradient too short (%d)", l)
	}
	gradBytes := 4 * l
	n := cfft.PaddedLen(l)
	plan := cfft.RealPlanFor(n)

	sigb := scratch.Float64s(n)
	defer scratch.PutFloat64s(sigb)
	sig := *sigb
	t0 := time.Now()
	parallel.For2(l, sig, x, widenF32)
	for i := l; i < n; i++ {
		sig[i] = 0
	}
	st.ObserveSince(telemetry.StageConvert, gradBytes, t0)
	nb := plan.SpectrumLen()
	spec.L, spec.N = l, n
	spec.Bins = growC128(spec.Bins, nb)
	spec.Mask = growU64(spec.Mask, (nb+63)/64)
	t0 = time.Now()
	plan.Forward(spec.Bins, sig)
	st.ObserveSince(telemetry.StageTransform, gradBytes, t0)

	t0 = time.Now()
	k := KeepCount(nb, theta)
	magsb := scratch.Float64s(nb)
	defer scratch.PutFloat64s(magsb)
	mags := *magsb
	bins := spec.Bins
	parallel.For2(nb, mags, bins, func(mags []float64, bins []complex128, lo, hi int) {
		for i := lo; i < hi; i++ {
			re, im := real(bins[i]), imag(bins[i])
			mags[i] = re*re + im*im // monotone in |z|; avoids sqrt
		}
	})
	topk.MaskTopKInto(spec.Mask, mags, k)
	for i := 0; i < nb; i++ {
		if spec.Mask[i>>6]&(1<<(uint(i)&63)) == 0 {
			bins[i] = 0
		}
	}
	spec.Kept = k
	st.ObserveSince(telemetry.StageSelect, gradBytes, t0)
	return nil
}

// packChunkWords is the cache-block width of the fused select+pack sweep,
// in 64-bin bitmap words: 64 words = 4096 bins = 64 KiB of complex128
// bins plus 32 KiB of magnitudes per chunk, sized to stay L2-resident
// while a chunk is masked, zeroed, and gathered in one pass.
const packChunkWords = 64

// passACtx/passBCtx thread the fused-sweep state through ForGrain1 by
// value so the bodies capture nothing.
type passACtx struct {
	mags         []float64
	mask, eq     []uint64
	gtCnt, eqCnt []int
	thr          float64
	nb           int
}

type passBCtx struct {
	bins      []complex128
	mask, eq  []uint64
	off, take []int
	vals      []float32
	maxes     []float64
	nb        int
}

// AnalyzePacked is AnalyzeInto fused with the coefficient gather the
// compressor would otherwise run as a separate pass: it fills spec as
// AnalyzeInto does AND writes the surviving coefficients into vals as
// interleaved (re, im) float32 pairs in bin order, returning the number
// of floats written and their maximum absolute value. vals must have
// length >= 2·KeepCount(bins, theta). Bit-for-bit equivalent to
// AnalyzeInto followed by a mask-directed gather (the property tests pin
// this, tie cases included).
func (f *FFT) AnalyzePacked(spec *Spectrum, vals []float32, x []float32, theta float64) (int, float64, error) {
	return f.AnalyzePackedTimed(spec, vals, x, theta, nil)
}

// AnalyzePackedTimed is AnalyzePacked reporting stage wall times to st
// (nil disables timing). Stage accounting matches the unfused pipeline:
// widening is StageConvert, the forward transform StageTransform, the
// magnitude+threshold+mask sweep StageSelect, and the zero+gather sweep
// StagePack.
//
// The select and pack work runs cache-blocked: instead of one full pass
// to build the keep mask, one to zero dropped bins, and one to gather
// survivors — each streaming all bins from memory — the bins are cut
// into packChunkWords-word chunks. Pass A builds each chunk's
// above-threshold and at-threshold masks; a serial prefix over the
// per-chunk counts then resolves the exact-k tie fill (earliest index
// wins, exactly topk.MaskTopKInto's rule) and assigns every chunk its
// output offset; pass B revisits each chunk — still warm in cache — and
// zeroes dropped bins and gathers survivors in the same sweep.
func (f *FFT) AnalyzePackedTimed(spec *Spectrum, vals []float32, x []float32, theta float64, st *telemetry.StageTimer) (int, float64, error) {
	l := len(x)
	if l < 2 {
		return 0, 0, fmt.Errorf("sparsify: gradient too short (%d)", l)
	}
	gradBytes := 4 * l
	n := cfft.PaddedLen(l)
	plan := cfft.RealPlanFor(n)

	sigb := scratch.Float64s(n)
	defer scratch.PutFloat64s(sigb)
	sig := *sigb
	t0 := time.Now()
	parallel.For2(l, sig, x, widenF32)
	for i := l; i < n; i++ {
		sig[i] = 0
	}
	st.ObserveSince(telemetry.StageConvert, gradBytes, t0)
	nb := plan.SpectrumLen()
	spec.L, spec.N = l, n
	spec.Bins = growC128(spec.Bins, nb)
	spec.Mask = growU64(spec.Mask, (nb+63)/64)
	t0 = time.Now()
	plan.Forward(spec.Bins, sig)
	st.ObserveSince(telemetry.StageTransform, gradBytes, t0)

	t0 = time.Now()
	k := KeepCount(nb, theta)
	spec.Kept = k
	if 2*k > len(vals) {
		return 0, 0, fmt.Errorf("sparsify: vals buffer holds %d floats, need %d", len(vals), 2*k)
	}
	bins := spec.Bins
	if k <= 0 {
		for i := range spec.Mask {
			spec.Mask[i] = 0
		}
		parallel.For1(nb, bins, func(bins []complex128, lo, hi int) {
			for i := lo; i < hi; i++ {
				bins[i] = 0
			}
		})
		spec.Kept = 0
		st.ObserveSince(telemetry.StageSelect, gradBytes, t0)
		return 0, 0, nil
	}
	if k >= nb {
		// Everything survives: full mask, straight gather, nothing zeroed.
		for i := range spec.Mask {
			spec.Mask[i] = ^uint64(0)
		}
		if tail := uint(nb & 63); tail != 0 {
			spec.Mask[len(spec.Mask)-1] = 1<<tail - 1
		}
		spec.Kept = nb
		st.ObserveSince(telemetry.StageSelect, gradBytes, t0)
		t0 = time.Now()
		var absMax float64
		for i, b := range bins {
			re, im := float32(real(b)), float32(imag(b))
			vals[2*i], vals[2*i+1] = re, im
			if a := math.Abs(float64(re)); a > absMax {
				absMax = a
			}
			if a := math.Abs(float64(im)); a > absMax {
				absMax = a
			}
		}
		st.ObserveSince(telemetry.StagePack, gradBytes, t0)
		return 2 * nb, absMax, nil
	}

	magsb := scratch.Float64s(nb)
	defer scratch.PutFloat64s(magsb)
	mags := *magsb
	parallel.For2(nb, mags, bins, func(mags []float64, bins []complex128, lo, hi int) {
		for i := lo; i < hi; i++ {
			re, im := real(bins[i]), imag(bins[i])
			mags[i] = re*re + im*im // monotone in |z|; avoids sqrt
		}
	})
	thr := topk.KthLargestBucket(mags, k)

	words := len(spec.Mask)
	chunks := (words + packChunkWords - 1) / packChunkWords
	eqb := scratch.Uint64s(words)
	defer scratch.PutUint64s(eqb)
	cntb := scratch.Ints(2 * chunks)
	defer scratch.PutInts(cntb)
	maxb := scratch.Float64s(chunks)
	defer scratch.PutFloat64s(maxb)
	eq := *eqb
	gtCnt, eqCnt := (*cntb)[:chunks], (*cntb)[chunks:]
	maxes := *maxb

	// Pass A: per-chunk above-threshold and at-threshold masks + counts.
	parallel.ForGrain1(chunks, 1,
		passACtx{mags: mags, mask: spec.Mask, eq: eq, gtCnt: gtCnt, eqCnt: eqCnt, thr: thr, nb: nb},
		func(c passACtx, clo, chi int) {
			for ch := clo; ch < chi; ch++ {
				wlo, whi := parallel.ChunkBounds(ch, packChunkWords, len(c.mask))
				gt, eqn := 0, 0
				for w := wlo; w < whi; w++ {
					base := w << 6
					end := base + 64
					if end > c.nb {
						end = c.nb
					}
					var gtW, eqW uint64
					for i := base; i < end; i++ {
						m := c.mags[i]
						if m > c.thr {
							gtW |= 1 << (uint(i) & 63)
						} else if m == c.thr {
							eqW |= 1 << (uint(i) & 63)
						}
					}
					c.mask[w], c.eq[w] = gtW, eqW
					gt += mbits.OnesCount64(gtW)
					eqn += mbits.OnesCount64(eqW)
				}
				c.gtCnt[ch], c.eqCnt[ch] = gt, eqn
			}
		})

	// Serial middle: resolve the exact-k tie fill and assign offsets.
	// Everything above the threshold is kept; remaining slots are filled
	// with at-threshold bins in index order (chunks are index-ordered, so
	// a running "still needed" count distributes the fill). gtCnt becomes
	// each chunk's output offset and eqCnt its tie-fill allowance.
	totalGt := 0
	for _, g := range gtCnt {
		totalGt += g
	}
	needEq := k - totalGt
	off := 0
	for c := 0; c < chunks; c++ {
		take := eqCnt[c]
		if take > needEq {
			take = needEq
		}
		needEq -= take
		keep := gtCnt[c] + take
		gtCnt[c], eqCnt[c] = off, take
		off += keep
	}
	st.ObserveSince(telemetry.StageSelect, gradBytes, t0)

	// Pass B: zero dropped bins and gather survivors, chunk by chunk.
	t0 = time.Now()
	parallel.ForGrain1(chunks, 1,
		passBCtx{bins: bins, mask: spec.Mask, eq: eq, off: gtCnt, take: eqCnt, vals: vals, maxes: maxes, nb: nb},
		func(c passBCtx, clo, chi int) {
			for ch := clo; ch < chi; ch++ {
				wlo, whi := parallel.ChunkBounds(ch, packChunkWords, len(c.mask))
				vi := 2 * c.off[ch]
				take := c.take[ch]
				var chunkMax float64
				for w := wlo; w < whi; w++ {
					sel := c.mask[w]
					if take > 0 {
						eqW := c.eq[w]
						if cnt := mbits.OnesCount64(eqW); take >= cnt {
							sel |= eqW
							take -= cnt
						} else {
							for ; take > 0; take-- {
								low := eqW & -eqW
								sel |= low
								eqW &^= low
							}
						}
					}
					c.mask[w] = sel
					base := w << 6
					end := base + 64
					if end > c.nb {
						end = c.nb
					}
					for i := base; i < end; i++ {
						if sel&(1<<(uint(i)&63)) == 0 {
							c.bins[i] = 0
							continue
						}
						b := c.bins[i]
						re, im := float32(real(b)), float32(imag(b))
						c.vals[vi], c.vals[vi+1] = re, im
						vi += 2
						if a := math.Abs(float64(re)); a > chunkMax {
							chunkMax = a
						}
						if a := math.Abs(float64(im)); a > chunkMax {
							chunkMax = a
						}
					}
				}
				c.maxes[ch] = chunkMax
			}
		})
	var absMax float64
	for _, m := range maxes[:chunks] {
		if m > absMax {
			absMax = m
		}
	}
	st.ObserveSince(telemetry.StagePack, gradBytes, t0)
	// off is the number of bins actually kept — equal to k whenever the
	// selector's threshold is exact (always, for KthLargestBucket).
	return 2 * off, absMax, nil
}

// Synthesize reconstructs the (lossy) gradient from a sparsified spectrum.
// dst must have length spec.L.
func (f *FFT) Synthesize(dst []float32, spec *Spectrum) error {
	return f.SynthesizeInto(dst, spec.L, spec.N, spec.Bins)
}

// SynthesizeInto reconstructs the gradient from the raw spectrum fields
// (original length l, padded length n, half-spectrum bins with dropped
// bins zeroed). dst must have length l. All temporaries are pooled, so
// synthesis performs no steady-state heap allocation.
func (f *FFT) SynthesizeInto(dst []float32, l, n int, bins []complex128) error {
	return f.SynthesizeIntoTimed(dst, l, n, bins, nil)
}

// SynthesizeIntoTimed is SynthesizeInto reporting the inverse transform
// as StageTransform and the f64→f32 narrowing as StageConvert on st (nil
// disables timing).
func (f *FFT) SynthesizeIntoTimed(dst []float32, l, n int, bins []complex128, st *telemetry.StageTimer) error {
	if len(dst) != l {
		return fmt.Errorf("sparsify: dst length %d != gradient length %d", len(dst), l)
	}
	if !cfft.IsPow2(n) || l > n {
		return fmt.Errorf("sparsify: bad padded length %d for gradient length %d", n, l)
	}
	plan := cfft.RealPlanFor(n)
	if plan.SpectrumLen() != len(bins) {
		return fmt.Errorf("sparsify: spectrum length %d inconsistent with N=%d", len(bins), n)
	}
	sigb := scratch.Float64s(n)
	defer scratch.PutFloat64s(sigb)
	sig := *sigb
	t0 := time.Now()
	plan.Inverse(sig, bins)
	st.ObserveSince(telemetry.StageTransform, 4*l, t0)
	t0 = time.Now()
	parallel.For2(l, dst, sig, narrowF64)
	st.ObserveSince(telemetry.StageConvert, 4*l, t0)
	return nil
}

// widenF32 and narrowF64 are the capture-free precision-conversion bodies
// shared by the FFT and DCT paths (parallel.For2 keeps them alloc-free).
func widenF32(dst []float64, src []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = float64(src[i])
	}
}

func narrowF64(dst []float32, src []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = float32(src[i])
	}
}

// growC128 resizes b to length n, reallocating only when capacity is
// insufficient. Contents are unspecified (callers fully overwrite).
func growC128(b []complex128, n int) []complex128 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]complex128, n)
}

// growU64 resizes b to length n, reallocating only when capacity is
// insufficient. Contents are unspecified (callers fully overwrite).
func growU64(b []uint64, n int) []uint64 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]uint64, n)
}

// Roundtrip sparsifies x at ratio theta through the frequency domain and
// returns the reconstruction — the "FFT Top-k" curve of Fig. 5.
func (f *FFT) Roundtrip(x []float32, theta float64) ([]float32, error) {
	spec, err := f.Analyze(x, theta)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(x))
	if err := f.Synthesize(out, spec); err != nil {
		return nil, err
	}
	return out, nil
}

package sparsify

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

func gaussGrad(n int, sigma float64, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(r.NormFloat64() * sigma)
	}
	return x
}

// smoothGrad returns a gradient-like signal with spatial correlation, the
// kind of structure the FFT exploits.
func smoothGrad(n int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float32, n)
	v := 0.0
	for i := range x {
		v = 0.97*v + 0.03*r.NormFloat64()
		x[i] = float32(v + 0.02*r.NormFloat64())
	}
	return x
}

func l2(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

func norm(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

func TestKeepCount(t *testing.T) {
	cases := []struct {
		total int
		theta float64
		want  int
	}{
		{100, 0, 100},
		{100, 1, 0},
		{100, 0.9, 10},
		{100, 0.85, 15},
		{100, 0.999, 1},
		{10, 0.5, 5},
		{3, 0.5, 2}, // ceil(1.5)
	}
	for _, c := range cases {
		if got := KeepCount(c.total, c.theta); got != c.want {
			t.Errorf("KeepCount(%d, %g)=%d want %d", c.total, c.theta, got, c.want)
		}
	}
}

func TestTopKSpatialZeroesExactly(t *testing.T) {
	x := gaussGrad(10000, 0.1, 1)
	orig := append([]float32(nil), x...)
	mask := TopKSpatial(x, 0.9)
	kept := 0
	for _, w := range mask {
		kept += bits.OnesCount64(w)
	}
	if kept != 1000 {
		t.Fatalf("kept %d want 1000", kept)
	}
	nonzero := 0
	for i := range x {
		if x[i] != 0 {
			nonzero++
			if x[i] != orig[i] {
				t.Fatalf("kept value altered at %d", i)
			}
		}
	}
	// A Gaussian sample can contain exact zeros only with probability ~0,
	// so every kept position is non-zero.
	if nonzero != 1000 {
		t.Fatalf("nonzero %d want 1000", nonzero)
	}
}

func TestTopKSpatialKeepsLargest(t *testing.T) {
	x := []float32{0.01, -9, 0.02, 5, -0.03, 3, 0.04, -1}
	TopKSpatial(x, 0.5) // keep 4
	wantKept := map[int]bool{1: true, 3: true, 5: true, 7: true}
	for i, v := range x {
		if wantKept[i] && v == 0 {
			t.Errorf("index %d should be kept", i)
		}
		if !wantKept[i] && v != 0 {
			t.Errorf("index %d should be dropped, has %g", i, v)
		}
	}
}

func TestFFTRoundtripLossless(t *testing.T) {
	// θ=0: nothing dropped, reconstruction must be near-exact.
	f := NewFFT()
	for _, n := range []int{2, 100, 1024, 5000} {
		x := gaussGrad(n, 0.1, int64(n))
		y, err := f.Roundtrip(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rel := l2(x, y) / norm(x); rel > 1e-6 {
			t.Fatalf("n=%d lossless roundtrip rel err %g", n, rel)
		}
	}
}

func TestFFTSpectrumShape(t *testing.T) {
	f := NewFFT()
	x := gaussGrad(1000, 0.1, 3)
	spec, err := f.Analyze(x, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if spec.L != 1000 || spec.N != 1024 {
		t.Fatalf("shape: L=%d N=%d", spec.L, spec.N)
	}
	if spec.NumBins() != 513 {
		t.Fatalf("bins=%d want 513", spec.NumBins())
	}
	if spec.Kept != KeepCount(513, 0.9) {
		t.Fatalf("kept=%d", spec.Kept)
	}
	// Every unmasked bin must be zero; masked bins count must match Kept.
	masked := 0
	for i, b := range spec.Bins {
		on := spec.Mask[i>>6]&(1<<(uint(i)&63)) != 0
		if on {
			masked++
		} else if b != 0 {
			t.Fatalf("dropped bin %d not zeroed: %v", i, b)
		}
	}
	if masked != spec.Kept {
		t.Fatalf("mask popcount %d != kept %d", masked, spec.Kept)
	}
}

func TestFFTKeepsHighestEnergyBins(t *testing.T) {
	// Signal = strong low-frequency tone + weak high-frequency tone.
	n := 1024
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(math.Sin(2*math.Pi*3*float64(i)/float64(n)) +
			0.01*math.Sin(2*math.Pi*200*float64(i)/float64(n)))
	}
	f := NewFFT()
	spec, err := f.Analyze(x, 0.99) // keep ~6 bins
	if err != nil {
		t.Fatal(err)
	}
	// Bin 3 (the strong tone) must survive.
	if spec.Mask[3>>6]&(1<<3) == 0 {
		t.Fatal("dominant bin 3 dropped")
	}
	y := make([]float32, n)
	if err := f.Synthesize(y, spec); err != nil {
		t.Fatal(err)
	}
	// Reconstruction must capture the strong tone: >90% energy retained.
	if rel := l2(x, y) / norm(x); rel > 0.3 {
		t.Fatalf("reconstruction error too high: %g", rel)
	}
}

// The core claim of Fig. 5: for spatially-correlated gradients at equal θ,
// FFT-domain top-k reconstructs with lower L2 error than spatial top-k.
func TestFFTBeatsSpatialOnCorrelatedSignal(t *testing.T) {
	theta := 0.85
	var fftErr, topkErr float64
	f := NewFFT()
	for seed := int64(0); seed < 5; seed++ {
		x := smoothGrad(4096, seed)
		y, err := f.Roundtrip(x, theta)
		if err != nil {
			t.Fatal(err)
		}
		fftErr += l2(x, y) / norm(x)

		sp := append([]float32(nil), x...)
		TopKSpatial(sp, theta)
		topkErr += l2(x, sp) / norm(x)
	}
	if fftErr >= topkErr {
		t.Fatalf("FFT err %g not better than top-k err %g on correlated signal", fftErr, topkErr)
	}
}

// Distribution preservation (Fig. 5/15): after FFT sparsification the
// reconstruction keeps near-zero components (non-zero everywhere), while
// spatial top-k zeroes 85% of entries exactly.
func TestFFTPreservesDistribution(t *testing.T) {
	x := smoothGrad(4096, 9)
	f := NewFFT()
	y, err := f.Roundtrip(x, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range y {
		if v == 0 {
			zeros++
		}
	}
	if zeros > len(y)/100 {
		t.Fatalf("FFT reconstruction has %d exact zeros; distribution collapsed", zeros)
	}
	sp := append([]float32(nil), x...)
	TopKSpatial(sp, 0.85)
	zeros = 0
	for _, v := range sp {
		if v == 0 {
			zeros++
		}
	}
	if zeros < len(sp)*8/10 {
		t.Fatalf("top-k should zero ~85%% of entries, zeroed %d/%d", zeros, len(sp))
	}
}

// Monotonicity: more aggressive θ ⇒ at least as much reconstruction error.
func TestErrorMonotoneInTheta(t *testing.T) {
	x := smoothGrad(2048, 4)
	f := NewFFT()
	prev := -1.0
	for _, theta := range []float64{0.1, 0.5, 0.9, 0.99} {
		y, err := f.Roundtrip(x, theta)
		if err != nil {
			t.Fatal(err)
		}
		e := l2(x, y)
		if e < prev-1e-9 {
			t.Fatalf("error decreased from %g to %g at θ=%g", prev, e, theta)
		}
		prev = e
	}
}

func TestAnalyzeErrors(t *testing.T) {
	f := NewFFT()
	if _, err := f.Analyze([]float32{1}, 0.5); err == nil {
		t.Fatal("length-1 gradient should error")
	}
	spec, err := f.Analyze(gaussGrad(100, 1, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Synthesize(make([]float32, 99), spec); err == nil {
		t.Fatal("wrong dst length should error")
	}
}

func TestSchedules(t *testing.T) {
	c := Const(0.85)
	if c.Theta(0) != 0.85 || c.Theta(100) != 0.85 {
		t.Fatal("Const schedule broken")
	}
	s := StepDrop{Initial: 0.9, Final: 0, DropEpoch: 30}
	if s.Theta(29) != 0.9 || s.Theta(30) != 0 || s.Theta(31) != 0 {
		t.Fatal("StepDrop schedule broken")
	}
	lr := func(epoch int) float64 {
		if epoch < 30 {
			return 0.01
		}
		return 0.001
	}
	lc := LRCoupled{L: 10, LR: lr, Cap: 0.95}
	// θ = sqrt(10·0.01) = 0.316..., then sqrt(10·0.001) = 0.1
	if got := lc.Theta(0); math.Abs(got-math.Sqrt(0.1)) > 1e-12 {
		t.Fatalf("LRCoupled early θ = %g", got)
	}
	if got := lc.Theta(30); math.Abs(got-math.Sqrt(0.01)) > 1e-12 {
		t.Fatalf("LRCoupled late θ = %g", got)
	}
	// Cap applies.
	hc := LRCoupled{L: 1000, LR: lr, Cap: 0.95}
	if got := hc.Theta(0); got != 0.95 {
		t.Fatalf("cap not applied: %g", got)
	}
}

func BenchmarkFFTAnalyze1M(b *testing.B) {
	x := gaussGrad(1<<20, 0.1, 1)
	f := NewFFT()
	b.SetBytes(int64(len(x) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Analyze(x, 0.85); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKSpatial1M(b *testing.B) {
	x := gaussGrad(1<<20, 0.1, 1)
	work := make([]float32, len(x))
	b.SetBytes(int64(len(x) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		TopKSpatial(work, 0.85)
	}
}

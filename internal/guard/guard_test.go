package guard

import (
	"errors"
	"math"
	"testing"

	"fftgrad/internal/comm"
	"fftgrad/internal/telemetry"
)

// rawCodec is a minimal inner compressor for the Framed tests: float32
// little-endian, no compression.
type rawCodec struct{}

func (rawCodec) Name() string { return "raw" }
func (rawCodec) Compress(grad []float32) ([]byte, error) {
	out := make([]byte, 4*len(grad))
	for i, v := range grad {
		putU32(out[4*i:], math.Float32bits(v))
	}
	return out, nil
}
func (rawCodec) Decompress(dst []float32, msg []byte) error {
	if len(msg) != 4*len(dst) {
		return errors.New("raw: length mismatch")
	}
	for i := range dst {
		dst[i] = math.Float32frombits(getU32(msg[4*i:]))
	}
	return nil
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte{0, 1, 2, 3, 250, 251, 252, 253}
	for _, withCRC := range []bool{false, true} {
		msg := AppendFrame(nil, payload, withCRC)
		if err := Verify(msg); err != nil {
			t.Fatalf("crc=%v: verify fresh frame: %v", withCRC, err)
		}
		got, err := Unframe(msg)
		if err != nil {
			t.Fatalf("crc=%v: unframe: %v", withCRC, err)
		}
		if string(got) != string(payload) {
			t.Fatalf("crc=%v: payload mangled: %v", withCRC, got)
		}
		if _, ok := PeekFingerprint(msg); ok {
			t.Fatalf("crc=%v: fingerprint reported on a frame without one", withCRC)
		}
	}
}

func TestFrameFingerprint(t *testing.T) {
	const fp uint64 = 0xDEADBEEFCAFEF00D
	msg := AppendFrameFP(nil, []byte("grad"), true, fp)
	if err := Verify(msg); err != nil {
		t.Fatal(err)
	}
	got, ok := PeekFingerprint(msg)
	if !ok || got != fp {
		t.Fatalf("PeekFingerprint = %#x, %v; want %#x, true", got, ok, fp)
	}
	payload, err := Unframe(msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "grad" {
		t.Fatalf("payload = %q", payload)
	}
}

// TestFrameDetectsEveryBitFlip is the wire-integrity core: for a flip
// of any single bit anywhere in the frame — header, fingerprint, or
// payload — either the frame is rejected with comm.ErrCorrupt, or the
// flip provably changed nothing the receiver consumes (the payload and
// fingerprint decode bit-exact). Single-bit flips are exactly the
// corruption model the chaos harness injects, so no flip may yield an
// altered gradient.
func TestFrameDetectsEveryBitFlip(t *testing.T) {
	payload := []byte("the averaged gradient of iteration 42")
	const fp uint64 = 0x0123456789ABCDEF
	msg := AppendFrameFP(nil, payload, true, fp)
	if err := Verify(msg); err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(msg)*8; bit++ {
		bad := append([]byte(nil), msg...)
		bad[bit/8] ^= 1 << (bit % 8)
		err := Verify(bad)
		if err != nil {
			if !errors.Is(err, comm.ErrCorrupt) {
				t.Fatalf("flip of bit %d: error %v does not wrap comm.ErrCorrupt", bit, err)
			}
			continue
		}
		// Undetected: only acceptable when the decode is unaltered.
		got, uerr := Unframe(bad)
		if uerr != nil {
			t.Fatalf("flip of bit %d: Verify passed but Unframe failed: %v", bit, uerr)
		}
		if string(got) != string(payload) {
			t.Fatalf("flip of bit %d silently altered the payload", bit)
		}
		if gfp, ok := PeekFingerprint(bad); !ok || gfp != fp {
			t.Fatalf("flip of bit %d silently altered the fingerprint", bit)
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	for _, msg := range [][]byte{
		nil,
		{},
		{0x47},
		{0x47, 0x46, 1},                         // shorter than header
		{0x00, 0x00, 1, 0, 0, 0, 0, 0},          // bad magic
		{0x47, 0x46, 9, 0, 0, 0, 0, 0},          // unknown version
		{0x47, 0x46, 1, flagFP, 0, 0, 0, 0, 1},  // truncated fingerprint
		{0x47, 0x46, 1, flagCRC, 1, 2, 3, 4, 5}, // wrong crc
	} {
		if err := Verify(msg); !errors.Is(err, comm.ErrCorrupt) {
			t.Errorf("Verify(%v) = %v, want comm.ErrCorrupt", msg, err)
		}
	}
	// A CRC-less frame with valid magic/version passes: integrity is
	// opt-in per frame.
	if err := Verify([]byte{0x47, 0x46, 1, 0, 0, 0, 0, 0}); err != nil {
		t.Errorf("minimal valid frame rejected: %v", err)
	}
}

func TestFramedCompressor(t *testing.T) {
	f := NewFramed(rawCodec{}, true)
	if f.Name() != "raw+crc" {
		t.Fatalf("Name = %q", f.Name())
	}
	grad := []float32{1, -2, 3.5, 0}
	msg, err := f.Compress(grad)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(msg); err != nil {
		t.Fatalf("framed message fails Verify: %v", err)
	}
	dst := make([]float32, len(grad))
	if err := f.Decompress(dst, msg); err != nil {
		t.Fatal(err)
	}
	for i := range grad {
		if dst[i] != grad[i] {
			t.Fatalf("round trip mismatch at %d: %v != %v", i, dst[i], grad[i])
		}
	}

	// A flipped payload bit must surface as comm.ErrCorrupt from the
	// decoder, before the inner codec sees the payload.
	bad := append([]byte(nil), msg...)
	bad[len(bad)-1] ^= 0x10
	if err := f.Decompress(dst, bad); !errors.Is(err, comm.ErrCorrupt) {
		t.Fatalf("corrupt framed message: err = %v, want comm.ErrCorrupt", err)
	}
}

func TestFramedFingerprintOneShot(t *testing.T) {
	f := NewFramed(rawCodec{}, true)
	grad := []float32{1, 2}
	f.SetNextFingerprint(77)
	msg1, err := f.Compress(grad)
	if err != nil {
		t.Fatal(err)
	}
	if fp, ok := PeekFingerprint(msg1); !ok || fp != 77 {
		t.Fatalf("first message fingerprint = %d, %v; want 77, true", fp, ok)
	}
	msg2, err := f.Compress(grad)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := PeekFingerprint(msg2); ok {
		t.Fatal("fingerprint leaked onto the second message")
	}
	// Fingerprinted and plain frames both decode.
	dst := make([]float32, 2)
	for _, m := range [][]byte{msg1, msg2} {
		if err := f.Decompress(dst, m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFrameAppendZeroAlloc(t *testing.T) {
	payload := make([]byte, 1024)
	buf := make([]byte, 0, 4096)
	var msg []byte
	allocs := testing.AllocsPerRun(100, func() {
		msg = AppendFrameFP(buf[:0], payload, true, 42)
		if err := Verify(msg); err != nil {
			t.Fatal(err)
		}
		if _, err := Unframe(msg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("frame+verify+unframe allocates %.2f allocs/op, want 0", allocs)
	}
}

func TestFingerprint(t *testing.T) {
	a := []float32{0.5, -1.25, 3e-9, 42}
	b := append([]float32(nil), a...)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical parameter vectors hash differently")
	}
	b[2] = math.Nextafter32(b[2], 1)
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("one-ulp divergence not reflected in the fingerprint")
	}
	if Fingerprint(nil) != Fingerprint([]float32{}) {
		t.Fatal("empty vectors hash differently")
	}
}

func TestScrubClamp(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	g := []float32{1, nan, -inf, 2, inf}
	scrubbed, skip := Scrub(g, ScrubClamp, 0)
	if skip {
		t.Fatal("clamp must never skip")
	}
	if scrubbed != 3 {
		t.Fatalf("scrubbed = %d, want 3", scrubbed)
	}
	if g[1] != 0 {
		t.Fatalf("NaN → %v, want 0", g[1])
	}
	if g[2] != -math.MaxFloat32 || g[4] != math.MaxFloat32 {
		t.Fatalf("Inf clamp wrong: %v, %v", g[2], g[4])
	}
	if g[0] != 1 || g[3] != 2 {
		t.Fatal("healthy values modified")
	}
}

func TestScrubClampLimit(t *testing.T) {
	g := []float32{5, -5, 0.5, float32(math.Inf(1))}
	scrubbed, _ := Scrub(g, ScrubClamp, 2)
	if scrubbed != 3 {
		t.Fatalf("scrubbed = %d, want 3", scrubbed)
	}
	want := []float32{2, -2, 0.5, 2}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("g[%d] = %v, want %v", i, g[i], want[i])
		}
	}
}

func TestScrubHealthyIsUntouched(t *testing.T) {
	g := []float32{1, -0.25, 1e30, -1e-30, 0}
	orig := append([]float32(nil), g...)
	for _, p := range []ScrubPolicy{ScrubClamp, ScrubSkip} {
		scrubbed, skip := Scrub(g, p, 0)
		if scrubbed != 0 || skip {
			t.Fatalf("%v flagged a healthy gradient (%d, %v)", p, scrubbed, skip)
		}
		for i := range g {
			if g[i] != orig[i] {
				t.Fatalf("%v modified healthy value %d", p, i)
			}
		}
	}
}

func TestScrubSkip(t *testing.T) {
	nan := float32(math.NaN())
	g := []float32{1, nan, 2}
	scrubbed, skip := Scrub(g, ScrubSkip, 0)
	if !skip || scrubbed != 1 {
		t.Fatalf("skip = %v, scrubbed = %d; want true, 1", skip, scrubbed)
	}
	// Skip leaves g untouched — the caller zeroes its shipped copy and
	// the residual keeps the original.
	if g[0] != 1 || !math.IsNaN(float64(g[1])) || g[2] != 2 {
		t.Fatalf("ScrubSkip modified the gradient: %v", g)
	}
}

func TestParseScrubPolicy(t *testing.T) {
	for s, want := range map[string]ScrubPolicy{"off": ScrubOff, "": ScrubOff, "clamp": ScrubClamp, "skip": ScrubSkip} {
		got, err := ParseScrubPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseScrubPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScrubPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// feed pushes n healthy samples around base so the detector warms up.
func feed(d *Detector, base float64, n int) {
	for i := 0; i < n; i++ {
		jitter := 1 + 0.02*float64(i%5-2)
		if a, _ := d.Observe(base * jitter); a != ActionNone {
			panic("healthy warmup sample flagged")
		}
	}
}

func TestDetectorEscalationLadder(t *testing.T) {
	cfg := Config{Detect: true, SkipAfter: 2, RollbackAfter: 4}.WithDefaults()
	d := NewDetector(cfg)
	feed(d, 10, 40)

	burst := 1e6
	var got []Action
	for i := 0; i < 6; i++ {
		a, scale := d.Observe(burst)
		got = append(got, a)
		if a == ActionClip && (scale <= 0 || scale >= 1) {
			t.Fatalf("clip scale = %v, want in (0,1)", scale)
		}
	}
	want := []Action{ActionClip, ActionClip, ActionSkip, ActionSkip, ActionRollback, ActionClip}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder step %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestDetectorRecovers(t *testing.T) {
	d := NewDetector(Config{Detect: true}.WithDefaults())
	feed(d, 10, 40)
	if a, _ := d.Observe(1e6); a != ActionClip {
		t.Fatalf("first anomaly = %v, want clip", a)
	}
	// A healthy sample resets the consecutive counter.
	if a, _ := d.Observe(10); a != ActionNone {
		t.Fatal("healthy sample after anomaly still flagged")
	}
	if a, _ := d.Observe(1e6); a != ActionClip {
		t.Fatal("ladder did not reset after recovery")
	}
}

func TestDetectorNonFinite(t *testing.T) {
	d := NewDetector(Config{Detect: true}.WithDefaults())
	feed(d, 10, 40)
	// Non-finite norms are not clippable: the ladder starts at skip.
	if a, _ := d.Observe(math.NaN()); a != ActionSkip {
		t.Fatalf("NaN norm = %v, want skip", a)
	}
	if a, _ := d.Observe(math.Inf(1)); a != ActionSkip {
		t.Fatalf("Inf norm = %v, want skip", a)
	}
	if !math.IsInf(d.Z(), 1) {
		t.Fatalf("Z after non-finite = %v, want +Inf", d.Z())
	}
}

func TestDetectorWarmupAbsorbs(t *testing.T) {
	d := NewDetector(Config{Detect: true, Warmup: 20}.WithDefaults())
	// Wild swings inside the warmup window must not trigger anything.
	for i, norm := range []float64{1, 100, 3, 50, 0.1, 80} {
		if a, _ := d.Observe(norm); a != ActionNone {
			t.Fatalf("warmup sample %d flagged %v", i, a)
		}
	}
}

func TestDetectorReset(t *testing.T) {
	d := NewDetector(Config{Detect: true}.WithDefaults())
	feed(d, 10, 40)
	d.Observe(math.NaN())
	d.Reset()
	if d.Z() != 0 {
		t.Fatal("Reset did not clear the z-score")
	}
	if a, _ := d.Observe(1e6); a != ActionNone {
		t.Fatal("first post-reset sample should re-seed the baseline")
	}
}

func TestConfigPredicates(t *testing.T) {
	if (Config{}).Enabled() || (Config{}).Framing() {
		t.Fatal("zero config must be fully off")
	}
	if !(Config{CRC: true}).Framing() || !(Config{DriftEvery: 10}).Framing() {
		t.Fatal("CRC and drift both require framing")
	}
	if (Config{Scrub: ScrubClamp}).Framing() {
		t.Fatal("scrub alone must not force framing")
	}
	for _, c := range []Config{{CRC: true}, {Scrub: ScrubSkip}, {Detect: true}, {DriftEvery: 5}} {
		if !c.Enabled() {
			t.Fatalf("%+v should count as enabled", c)
		}
	}
	d := Config{Detect: true}.WithDefaults()
	if d.ZThreshold <= 0 || d.SkipAfter <= 0 || d.RollbackAfter <= d.SkipAfter || d.Warmup <= 0 || d.RetainEvery <= 0 || d.RetainK <= 0 {
		t.Fatalf("WithDefaults left gaps: %+v", d)
	}
}

func TestStatsReportAndRegister(t *testing.T) {
	var s Stats
	reg := telemetry.NewRegistry()
	s.Register(reg) // before SetZ — the z gauge exists only once registered
	s.AddScrubbed(3)
	s.AddSkippedGrad()
	s.AddAnomaly()
	s.AddClip()
	s.AddSkippedUpdate()
	s.AddRollback()
	s.AddDriftCheck()
	s.AddDriftResync()
	s.SetZ(2.5)
	rep := s.Report()
	if rep.ScrubbedValues != 3 || rep.SkippedGradients != 1 || rep.Anomalies != 1 ||
		rep.Clips != 1 || rep.SkippedUpdates != 1 || rep.Rollbacks != 1 ||
		rep.DriftChecks != 1 || rep.DriftResyncs != 1 {
		t.Fatalf("report mismatch: %+v", rep)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"fftgrad_guard_scrubbed_values": 3,
		"fftgrad_guard_anomalies":       1,
		"fftgrad_guard_rollbacks":       1,
		"fftgrad_guard_drift_resyncs":   1,
		"fftgrad_guard_norm_z":          2.5,
	} {
		if snap[name] != want {
			t.Errorf("%s = %v, want %v", name, snap[name], want)
		}
	}
}

package guard

import (
	"fftgrad/internal/telemetry"
)

// Inner is the compressor shape Framed wraps. It is declared locally
// (structurally identical to compress.Compressor) so that guard does
// not import internal/compress — which lets the compress package's own
// fuzz tests import guard and fuzz the framed decoder without an import
// cycle.
type Inner interface {
	Name() string
	Compress(grad []float32) ([]byte, error)
	Decompress(dst []float32, msg []byte) error
}

// Optional inner capabilities, forwarded when present. These mirror
// compress.Appender, compress.IntoDecompressor, compress.ThetaSetter,
// compress.Instrumentable and feedback's residual sink.
type (
	appender interface {
		AppendCompress(dst []byte, grad []float32) ([]byte, error)
	}
	intoDecompressor interface {
		DecompressInto(dst []float32, msg []byte) error
	}
	thetaSetter    interface{ SetTheta(theta float64) }
	instrumentable interface {
		Instrument(st *telemetry.StageTimer)
	}
	residualSink       interface{ AddToResidual(g []float32) }
	scaledResidualSink interface {
		AddToResidualScaled(g []float32, scale float32)
	}
)

// Framed wraps a compressor so every message it emits carries the guard
// frame header and every message it decodes is integrity-checked before
// the inner decoder sees a single payload byte. The frame is built in
// place around the inner compressor's append path, so a zero-alloc
// inner round trip stays zero-alloc with CRC framing on.
//
// Framed is per-rank state (the pending fingerprint is one-shot
// per-message), like the compressors it wraps.
type Framed struct {
	inner Inner
	crc   bool

	fp    uint64
	hasFP bool
}

// NewFramed wraps inner; withCRC selects whether frames carry a CRC32C
// or just the versioned header (fingerprints can ride either way).
func NewFramed(inner Inner, withCRC bool) *Framed {
	return &Framed{inner: inner, crc: withCRC}
}

// Inner returns the wrapped compressor.
func (f *Framed) Inner() Inner { return f.inner }

// Name implements compress.Compressor.
func (f *Framed) Name() string {
	if f.crc {
		return f.inner.Name() + "+crc"
	}
	return f.inner.Name() + "+frame"
}

// SetNextFingerprint attaches fp to the next compressed message (one
// shot). dist calls this on drift-check iterations so the fingerprint
// rides the existing gradient exchange instead of a second collective.
func (f *Framed) SetNextFingerprint(fp uint64) {
	f.fp, f.hasFP = fp, true
}

// AppendCompress implements compress.Appender: header, then the inner
// compressor's payload appended in place, then the CRC patched in.
func (f *Framed) AppendCompress(dst []byte, grad []float32) ([]byte, error) {
	start := len(dst)
	dst = appendHeader(dst, f.crc, f.fp, f.hasFP)
	f.hasFP = false
	var err error
	if a, ok := f.inner.(appender); ok {
		dst, err = a.AppendCompress(dst, grad)
	} else {
		var msg []byte
		msg, err = f.inner.Compress(grad)
		dst = append(dst, msg...)
	}
	if err != nil {
		return dst[:start], err
	}
	return sealFrame(dst, start), nil
}

// Compress implements compress.Compressor.
func (f *Framed) Compress(grad []float32) ([]byte, error) {
	return f.AppendCompress(nil, grad)
}

// DecompressInto implements compress.IntoDecompressor. The integrity
// check runs first: a corrupt frame returns an error wrapping
// comm.ErrCorrupt and the inner decoder never sees the payload.
func (f *Framed) DecompressInto(dst []float32, msg []byte) error {
	payload, err := Unframe(msg)
	if err != nil {
		return err
	}
	if d, ok := f.inner.(intoDecompressor); ok {
		return d.DecompressInto(dst, payload)
	}
	return f.inner.Decompress(dst, payload)
}

// Decompress implements compress.Compressor.
func (f *Framed) Decompress(dst []float32, msg []byte) error {
	return f.DecompressInto(dst, msg)
}

// SetTheta forwards to the inner compressor when it is tunable.
func (f *Framed) SetTheta(theta float64) {
	if t, ok := f.inner.(thetaSetter); ok {
		t.SetTheta(theta)
	}
}

// Instrument forwards stage-timer instrumentation to the inner
// compressor.
func (f *Framed) Instrument(st *telemetry.StageTimer) {
	if i, ok := f.inner.(instrumentable); ok {
		i.Instrument(st)
	}
}

// AddToResidual forwards to the inner error-feedback residual when the
// inner compressor keeps one (unshipped gradients must not be lost).
func (f *Framed) AddToResidual(g []float32) {
	if r, ok := f.inner.(residualSink); ok {
		r.AddToResidual(g)
	}
}

// AddToResidualScaled forwards the bounded-staleness damping remainder
// to the inner error-feedback residual when the inner compressor keeps
// one.
func (f *Framed) AddToResidualScaled(g []float32, scale float32) {
	if r, ok := f.inner.(scaledResidualSink); ok {
		r.AddToResidualScaled(g, scale)
	}
}

package guard

import (
	"fmt"
	"math"
)

// ScrubPolicy selects what the pre-compress scrub pass does with
// non-finite gradient values.
type ScrubPolicy uint8

const (
	// ScrubOff disables the scrub pass.
	ScrubOff ScrubPolicy = iota
	// ScrubClamp repairs in place: NaN → 0, ±Inf → ±limit, and (when a
	// positive ClampLimit is set) |v| > limit → ±limit. Training
	// continues with the repaired gradient.
	ScrubClamp
	// ScrubSkip withholds any gradient containing a non-finite value:
	// the rank ships zeros for that iteration (so the BSP collective
	// stays in lockstep with no cross-rank coordination) and its
	// error-feedback residual is left untouched — preserved for the next
	// healthy iteration, not polluted with NaNs.
	ScrubSkip
)

// ParseScrubPolicy maps a flag string to a policy.
func ParseScrubPolicy(s string) (ScrubPolicy, error) {
	switch s {
	case "off", "":
		return ScrubOff, nil
	case "clamp":
		return ScrubClamp, nil
	case "skip":
		return ScrubSkip, nil
	}
	return ScrubOff, fmt.Errorf("guard: unknown scrub policy %q (want off|clamp|skip)", s)
}

func (p ScrubPolicy) String() string {
	switch p {
	case ScrubClamp:
		return "clamp"
	case ScrubSkip:
		return "skip"
	}
	return "off"
}

// Scrub applies policy to g in place. It returns how many values were
// non-finite (or clamped) and, under ScrubSkip, whether the whole
// gradient must be withheld. Under ScrubSkip g is not modified — the
// caller zeroes its shipped copy and keeps the residual intact.
func Scrub(g []float32, policy ScrubPolicy, clampLimit float64) (scrubbed int, skip bool) {
	if policy == ScrubOff {
		return 0, false
	}
	limit := float32(math.MaxFloat32)
	clampFinite := policy == ScrubClamp && clampLimit > 0
	if clampFinite {
		limit = float32(clampLimit)
	}
	for i, v := range g {
		v64 := float64(v)
		if !math.IsNaN(v64) && !math.IsInf(v64, 0) {
			if clampFinite && (v > limit || v < -limit) {
				scrubbed++
				if v > 0 {
					g[i] = limit
				} else {
					g[i] = -limit
				}
			}
			continue
		}
		scrubbed++
		if policy == ScrubSkip {
			skip = true
			continue
		}
		switch {
		case math.IsNaN(v64):
			g[i] = 0
		case v > 0:
			g[i] = limit
		default:
			g[i] = -limit
		}
	}
	return scrubbed, skip
}

// Package guard is the data-plane integrity layer: it makes silent
// corruption and numerical failure detected, typed, and recoverable.
//
// The failure-aware runtime of internal/cluster handles *fail-stop*
// faults — crashes, partitions, stragglers. Everything that survives
// those policies today is silent: a bit-flipped frame decodes into
// garbage coefficients, a NaN poisons the error-feedback residual, and
// stale-gradient reuse can let ranks drift apart unnoticed. All three
// break the paper's bounded-error assumption (Lemma 3.3:
// ‖v̄−v̂̄‖ ≤ α‖v̄‖) outright — α is meaningless once v̂ is garbage.
//
// guard closes the gap with three independent, composable mechanisms:
//
//  1. Wire integrity — an opt-in versioned frame (magic, version, flags,
//     CRC32C) around every compressed gradient message. A corrupt frame
//     surfaces comm.ErrCorrupt *before* decompression and is repaired by
//     the cluster nack/resend path exactly like a lost frame.
//  2. Numerical health — a pre-compress scrub pass (NaN/Inf clamp or
//     skip, residual-preserving) plus an EWMA gradient-norm anomaly
//     detector whose z-score escalates clip → skip-update → rollback.
//  3. Drift detection — a cheap FNV-1a fingerprint of the parameter
//     vector piggybacked on the frame every DriftEvery iterations;
//     a cross-rank mismatch forces a parameter re-sync from the
//     canonical rank.
//
// All guard state that must agree across ranks (frame format, drift
// cadence, detector thresholds) comes from one Config shared by every
// worker, and every detector observes the *post-average* gradient — so
// in the barrier path all ranks take identical actions in lockstep.
package guard

import (
	"sync/atomic"

	"fftgrad/internal/telemetry"
)

// Config selects which guards run and how aggressively they escalate.
// The zero value disables everything; WithDefaults fills canonical
// values for enabled mechanisms. The same Config must be given to every
// rank — it defines the wire format.
type Config struct {
	// CRC enables the CRC32C integrity check on every frame.
	CRC bool
	// Scrub selects the pre-compress NaN/Inf policy.
	Scrub ScrubPolicy
	// ClampLimit bounds |v| under ScrubClamp; 0 means only non-finite
	// values are replaced and finite magnitudes pass through untouched
	// (so scrubbing healthy gradients is bit-exact pure overhead).
	ClampLimit float64

	// ZThreshold is the norm z-score above which an iteration is
	// anomalous (0: default 6).
	ZThreshold float64
	// SkipAfter and RollbackAfter are the escalation-ladder rungs: up to
	// SkipAfter consecutive anomalies are clipped, beyond that the
	// update is skipped, and beyond RollbackAfter the model rolls back
	// to the last retained checkpoint.
	SkipAfter     int
	RollbackAfter int
	// Warmup is how many healthy samples the detector absorbs before it
	// may flag anomalies (0: default 20).
	Warmup int
	// Detect enables the norm anomaly detector.
	Detect bool

	// DriftEvery exchanges parameter fingerprints every that many
	// iterations (0: never). Requires framing, which it implies.
	DriftEvery int
	// RetainEvery captures an in-memory rollback checkpoint every that
	// many iterations (0: default 2*DriftEvery or 20); RetainK is the
	// ring depth (0: default 3).
	RetainEvery int
	RetainK     int
}

// Enabled reports whether any guard mechanism is on.
func (c Config) Enabled() bool {
	return c.CRC || c.Scrub != ScrubOff || c.Detect || c.DriftEvery > 0
}

// Framing reports whether messages are wrapped in the guard frame.
// Drift fingerprints ride inside the frame header, so DriftEvery
// implies framing even without CRC.
func (c Config) Framing() bool { return c.CRC || c.DriftEvery > 0 }

// WithDefaults fills canonical values for unset knobs of enabled
// mechanisms.
func (c Config) WithDefaults() Config {
	if c.ZThreshold <= 0 {
		c.ZThreshold = 6
	}
	if c.SkipAfter <= 0 {
		c.SkipAfter = 3
	}
	if c.RollbackAfter <= c.SkipAfter {
		c.RollbackAfter = c.SkipAfter + 3
	}
	if c.Warmup <= 0 {
		c.Warmup = 20
	}
	if c.RetainEvery <= 0 {
		if c.DriftEvery > 0 {
			c.RetainEvery = 2 * c.DriftEvery
		} else {
			c.RetainEvery = 20
		}
	}
	if c.RetainK <= 0 {
		c.RetainK = 3
	}
	return c
}

// Stats counts guard interventions across all ranks of one run.
// Corrupt-frame rejections are counted by the cluster runtime (the drop
// happens in its receiver, before gradients are even assembled) and
// merged into the Report by the caller.
type Stats struct {
	scrubbedValues   atomic.Uint64
	skippedGradients atomic.Uint64
	anomalies        atomic.Uint64
	clips            atomic.Uint64
	skippedUpdates   atomic.Uint64
	rollbacks        atomic.Uint64
	driftChecks      atomic.Uint64
	driftResyncs     atomic.Uint64

	zGauge *telemetry.Gauge
}

func (s *Stats) AddScrubbed(n int) { s.scrubbedValues.Add(uint64(n)) }
func (s *Stats) AddSkippedGrad()   { s.skippedGradients.Add(1) }
func (s *Stats) AddAnomaly()       { s.anomalies.Add(1) }
func (s *Stats) AddClip()          { s.clips.Add(1) }
func (s *Stats) AddSkippedUpdate() { s.skippedUpdates.Add(1) }
func (s *Stats) AddRollback()      { s.rollbacks.Add(1) }
func (s *Stats) AddDriftCheck()    { s.driftChecks.Add(1) }
func (s *Stats) AddDriftResync()   { s.driftResyncs.Add(1) }
func (s *Stats) Rollbacks() uint64 { return s.rollbacks.Load() }
func (s *Stats) SetZ(z float64) {
	if s.zGauge != nil {
		s.zGauge.Set(z)
	}
}

// Register exposes the guard counters on reg under the fftgrad_guard_*
// names (exposition-time reads of the shared atomics, so the hot path
// never touches the registry).
func (s *Stats) Register(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("fftgrad_guard_scrubbed_values", "non-finite gradient values replaced pre-compression",
		func() float64 { return float64(s.scrubbedValues.Load()) })
	reg.GaugeFunc("fftgrad_guard_anomalies", "gradient-norm anomalies flagged by the EWMA detector",
		func() float64 { return float64(s.anomalies.Load()) })
	reg.GaugeFunc("fftgrad_guard_rollbacks", "model rollbacks to a retained checkpoint",
		func() float64 { return float64(s.rollbacks.Load()) })
	reg.GaugeFunc("fftgrad_guard_drift_resyncs", "forced parameter re-syncs after a fingerprint mismatch",
		func() float64 { return float64(s.driftResyncs.Load()) })
	s.zGauge = reg.Gauge("fftgrad_guard_norm_z", "latest gradient-norm z-score (rank 0)")
}

// Report is a plain-value snapshot of one run's guard activity.
type Report struct {
	// CorruptFrames counts wire frames rejected by the integrity check
	// before decompression (repaired via nack/resend).
	CorruptFrames uint64
	// ScrubbedValues counts non-finite gradient values replaced by the
	// scrub pass; SkippedGradients counts whole gradients withheld under
	// ScrubSkip (the rank shipped zeros and kept its residual).
	ScrubbedValues   uint64
	SkippedGradients uint64
	// Anomalies counts detector firings; Clips/SkippedUpdates/Rollbacks
	// split them by the escalation rung taken.
	Anomalies      uint64
	Clips          uint64
	SkippedUpdates uint64
	Rollbacks      uint64
	// DriftChecks counts fingerprint comparison rounds; DriftResyncs the
	// mismatches that forced a parameter re-sync.
	DriftChecks  uint64
	DriftResyncs uint64
}

// Report snapshots the counters.
func (s *Stats) Report() Report {
	return Report{
		ScrubbedValues:   s.scrubbedValues.Load(),
		SkippedGradients: s.skippedGradients.Load(),
		Anomalies:        s.anomalies.Load(),
		Clips:            s.clips.Load(),
		SkippedUpdates:   s.skippedUpdates.Load(),
		Rollbacks:        s.rollbacks.Load(),
		DriftChecks:      s.driftChecks.Load(),
		DriftResyncs:     s.driftResyncs.Load(),
	}
}

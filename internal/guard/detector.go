package guard

import "math"

// Action is the escalation rung the detector picked for one iteration.
type Action uint8

const (
	// ActionNone: healthy norm, apply the update as-is.
	ActionNone Action = iota
	// ActionClip: anomalous norm, rescale the averaged gradient down to
	// the allowed envelope and apply.
	ActionClip
	// ActionSkip: repeated (or non-finite) anomaly, discard this
	// iteration's update entirely.
	ActionSkip
	// ActionRollback: the anomaly persisted past RollbackAfter
	// consecutive iterations — restore the last retained checkpoint.
	ActionRollback
)

func (a Action) String() string {
	switch a {
	case ActionClip:
		return "clip"
	case ActionSkip:
		return "skip"
	case ActionRollback:
		return "rollback"
	}
	return "none"
}

// detAlpha is the EWMA smoothing factor for the norm baseline. Slower
// than the telemetry throughput EWMAs (0.2): the baseline must not
// chase a burst, or the burst stops looking anomalous.
const detAlpha = 0.1

// Detector is the EWMA gradient-norm anomaly detector. It tracks an
// exponential moving mean and variance of the *post-average* gradient
// norm and flags iterations whose z-score exceeds ZThreshold,
// escalating clip → skip-update → rollback as anomalies persist.
//
// Observing the post-average norm (identical on every rank in the
// barrier path, near-identical under degraded fault-path rounds) means
// all ranks take the same action in lockstep without any coordination
// round. A non-finite norm can't be clipped, so it enters the ladder at
// skip.
//
// Healthy samples absorb into the baseline and reset the consecutive
// counter; anomalous samples absorb only their clipped envelope value,
// so a genuine regime shift slowly re-trains the baseline instead of
// triggering rollbacks forever.
type Detector struct {
	zThresh       float64
	skipAfter     int
	rollbackAfter int
	warmup        int

	mean, variance float64
	samples        int
	consecutive    int
	z              float64
}

// NewDetector builds a detector from the (defaulted) config thresholds.
func NewDetector(cfg Config) *Detector {
	cfg = cfg.WithDefaults()
	return &Detector{
		zThresh:       cfg.ZThreshold,
		skipAfter:     cfg.SkipAfter,
		rollbackAfter: cfg.RollbackAfter,
		warmup:        cfg.Warmup,
	}
}

// Z returns the last observed z-score (exported to the telemetry
// gauge).
func (d *Detector) Z() float64 { return d.z }

// Reset clears the baseline and the escalation state. Called after a
// rollback: the restored parameters produce pre-burst norms, so the
// burst-era statistics no longer apply.
func (d *Detector) Reset() {
	d.mean, d.variance, d.samples, d.consecutive, d.z = 0, 0, 0, 0, 0
}

// Observe feeds one post-average gradient norm and returns the action
// plus, for ActionClip, the factor to scale the gradient by (<1).
func (d *Detector) Observe(norm float64) (Action, float64) {
	if math.IsNaN(norm) || math.IsInf(norm, 0) {
		// Not clippable: a non-finite average is garbage whatever its
		// magnitude. Escalate straight from skip.
		d.z = math.Inf(1)
		return d.escalate(), 1
	}
	if d.samples == 0 {
		d.mean, d.variance, d.samples, d.z = norm, 0, 1, 0
		return ActionNone, 1
	}
	sigma := math.Sqrt(d.variance)
	// Floor sigma so ultra-stable baselines (or the first few samples)
	// don't turn ordinary jitter into huge z-scores.
	if floor := 0.05*d.mean + 1e-12; sigma < floor {
		sigma = floor
	}
	d.z = (norm - d.mean) / sigma
	if d.samples < d.warmup || d.z <= d.zThresh {
		d.absorb(norm)
		d.consecutive = 0
		return ActionNone, 1
	}
	allowed := d.mean + d.zThresh*sigma
	scale := 1.0
	if norm > 0 {
		scale = allowed / norm
	}
	d.absorb(allowed)
	if a := d.escalate(); a != ActionClip {
		return a, 1
	}
	return ActionClip, scale
}

// escalate advances the consecutive-anomaly ladder.
func (d *Detector) escalate() Action {
	d.consecutive++
	switch {
	case d.consecutive > d.rollbackAfter:
		d.consecutive = 0
		return ActionRollback
	case d.consecutive > d.skipAfter || math.IsInf(d.z, 1):
		return ActionSkip
	default:
		return ActionClip
	}
}

func (d *Detector) absorb(norm float64) {
	dev := norm - d.mean
	d.mean += detAlpha * dev
	d.variance += detAlpha * (dev*dev - d.variance)
	d.samples++
}

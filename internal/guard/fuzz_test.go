package guard

import (
	"errors"
	"testing"

	"fftgrad/internal/comm"
)

// FuzzUnframe feeds arbitrary bytes to the frame decoder: every input
// must either decode cleanly or fail with an error wrapping
// comm.ErrCorrupt — never panic, and never return a payload that
// re-frames to something failing Verify.
func FuzzUnframe(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, []byte("payload"), true))
	f.Add(AppendFrame(nil, []byte("payload"), false))
	f.Add(AppendFrameFP(nil, []byte("payload"), true, 0xFEEDFACE))
	f.Add(AppendFrameFP(nil, nil, false, 1))
	f.Add([]byte{0x47, 0x46, 1, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Unframe(data)
		if err != nil {
			if !errors.Is(err, comm.ErrCorrupt) {
				t.Fatalf("Unframe error %v does not wrap comm.ErrCorrupt", err)
			}
			return
		}
		// Verify must agree with Unframe on validity.
		if verr := Verify(data); verr != nil {
			t.Fatalf("Unframe accepted a frame Verify rejects: %v", verr)
		}
		// Accepted payloads round-trip through a fresh frame.
		fp, hasFP := PeekFingerprint(data)
		var again []byte
		if hasFP {
			again = AppendFrameFP(nil, payload, true, fp)
		} else {
			again = AppendFrame(nil, payload, true)
		}
		got, err := Unframe(again)
		if err != nil {
			t.Fatalf("re-framed payload rejected: %v", err)
		}
		if string(got) != string(payload) {
			t.Fatal("payload mutated across re-framing")
		}
	})
}

package guard

import (
	"fmt"
	"hash/crc32"
	"math"

	"fftgrad/internal/comm"
)

// Wire frame, version 1. Little-endian, 8-byte fixed header:
//
//	offset  size  field
//	0       2     magic "GF" (0x47 0x46)
//	2       1     version (1)
//	3       1     flags (bit0: CRC present, bit1: fingerprint present)
//	4       4     CRC32C over the whole frame minus this field (0 when
//	              bit0 clear)
//	8       8     parameter fingerprint (only when bit1 set)
//	...           payload (compressed gradient bytes)
//
// The CRC covers magic, version, flags, the optional fingerprint and
// the payload — everything except its own field — so a flip anywhere
// that could change how the frame is interpreted is caught. The one
// undetectable flip is bit0 of flags turning the check itself off,
// which leaves the payload bit-exact and is therefore harmless.
// CRC32C (Castagnoli) detects every single-bit flip and all burst
// errors up to 32 bits — the silent-corruption model chaos injects —
// and the Castagnoli table lives at package level so the hot path is
// hash/crc32.Update with zero allocations.
const (
	frameMagic0  = 0x47
	frameMagic1  = 0x46
	FrameVersion = 1

	flagCRC = 1 << 0
	flagFP  = 1 << 1

	headerLen = 8
	fpLen     = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends a framed copy of payload to dst and returns the
// extended slice. The compressor wrapper (Framed) builds frames in
// place without this extra copy; AppendFrame is for standalone payloads
// such as control messages and tests.
func AppendFrame(dst, payload []byte, withCRC bool) []byte {
	start := len(dst)
	dst = appendHeader(dst, withCRC, 0, false)
	dst = append(dst, payload...)
	return sealFrame(dst, start)
}

// AppendFrameFP is AppendFrame with a parameter fingerprint riding in
// the header.
func AppendFrameFP(dst, payload []byte, withCRC bool, fp uint64) []byte {
	start := len(dst)
	dst = appendHeader(dst, withCRC, fp, true)
	dst = append(dst, payload...)
	return sealFrame(dst, start)
}

// appendHeader appends the fixed header (CRC field zeroed) and the
// optional fingerprint. The stack array keeps this allocation-free.
func appendHeader(dst []byte, withCRC bool, fp uint64, hasFP bool) []byte {
	var hdr [headerLen + fpLen]byte
	hdr[0], hdr[1], hdr[2] = frameMagic0, frameMagic1, FrameVersion
	if withCRC {
		hdr[3] |= flagCRC
	}
	n := headerLen
	if hasFP {
		hdr[3] |= flagFP
		putU64(hdr[headerLen:], fp)
		n += fpLen
	}
	return append(dst, hdr[:n]...)
}

// sealFrame computes the CRC over everything but the CRC field of the
// frame starting at start and patches it into the header.
func sealFrame(dst []byte, start int) []byte {
	f := dst[start:]
	if f[3]&flagCRC != 0 {
		putU32(f[4:], frameCRC(f))
	}
	return dst
}

// frameCRC covers the frame minus the CRC field itself.
func frameCRC(f []byte) uint32 {
	return crc32.Update(crc32.Update(0, castagnoli, f[:4]), castagnoli, f[headerLen:])
}

// Unframe validates msg and returns its payload (aliasing msg, no
// copy). Errors wrap comm.ErrCorrupt.
func Unframe(msg []byte) ([]byte, error) {
	body, err := frameBody(msg)
	if err != nil {
		return nil, err
	}
	if msg[3]&flagFP != 0 {
		body = body[fpLen:]
	}
	return body, nil
}

// Verify runs the integrity check without touching the payload — this
// is the hook the cluster receiver applies to inbound data/sync frames
// so corruption is rejected before a gradient is ever assembled.
func Verify(msg []byte) error {
	_, err := frameBody(msg)
	return err
}

// PeekFingerprint extracts the parameter fingerprint from a framed
// message, if one is present. It assumes the frame was already
// verified.
func PeekFingerprint(msg []byte) (uint64, bool) {
	if len(msg) < headerLen+fpLen || msg[3]&flagFP == 0 {
		return 0, false
	}
	return getU64(msg[headerLen:]), true
}

// frameBody validates magic, version, length and CRC, returning the
// bytes after the fixed header (fingerprint included when present).
func frameBody(msg []byte) ([]byte, error) {
	if len(msg) < headerLen {
		return nil, fmt.Errorf("guard: %d-byte frame shorter than header: %w", len(msg), comm.ErrCorrupt)
	}
	if msg[0] != frameMagic0 || msg[1] != frameMagic1 {
		return nil, fmt.Errorf("guard: bad magic %#02x%02x: %w", msg[0], msg[1], comm.ErrCorrupt)
	}
	if msg[2] != FrameVersion {
		return nil, fmt.Errorf("guard: unknown frame version %d: %w", msg[2], comm.ErrCorrupt)
	}
	if msg[3]&flagFP != 0 && len(msg) < headerLen+fpLen {
		return nil, fmt.Errorf("guard: frame truncated before fingerprint: %w", comm.ErrCorrupt)
	}
	if msg[3]&flagCRC != 0 {
		want := getU32(msg[4:])
		if got := frameCRC(msg); got != want {
			return nil, fmt.Errorf("guard: crc mismatch (want %#08x got %#08x): %w", want, got, comm.ErrCorrupt)
		}
	}
	return msg[headerLen:], nil
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// Fingerprint hashes the parameter vector with FNV-1a 64 over the raw
// float32 bit patterns. Bit-identical parameters — the cross-rank
// invariant BSP training maintains — hash identically; any divergence
// (a missed sync, an applied garbage gradient, uninitialized memory)
// shows up as a mismatch with probability ~1-2^-64. Allocation-free.
func Fingerprint(params []float32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range params {
		b := math.Float32bits(v)
		h = (h ^ uint64(b&0xff)) * prime64
		h = (h ^ uint64(b>>8&0xff)) * prime64
		h = (h ^ uint64(b>>16&0xff)) * prime64
		h = (h ^ uint64(b>>24)) * prime64
	}
	return h
}

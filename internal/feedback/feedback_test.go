package feedback

import (
	"math"
	"math/rand"
	"testing"

	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/dist"
	"fftgrad/internal/models"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
)

func constGrad(n int, v float32) []float32 {
	g := make([]float32, n)
	for i := range g {
		g[i] = v
	}
	return g
}

func TestNameAndInner(t *testing.T) {
	c := New(compress.NewTopK(0.9))
	if c.Name() != "topk+ef" {
		t.Fatalf("name %q", c.Name())
	}
	if c.Inner().Name() != "topk" {
		t.Fatal("inner lost")
	}
}

// With a lossless inner compressor the residual must stay exactly zero
// and the wrapper must be transparent.
func TestLosslessInnerTransparent(t *testing.T) {
	c := New(compress.FP32{})
	r := rand.New(rand.NewSource(1))
	g := make([]float32, 1000)
	for i := range g {
		g[i] = float32(r.NormFloat64())
	}
	for iter := 0; iter < 3; iter++ {
		msg, err := c.Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		rec := make([]float32, len(g))
		if err := c.Decompress(rec, msg); err != nil {
			t.Fatal(err)
		}
		for i := range g {
			if rec[i] != g[i] {
				t.Fatalf("iter %d idx %d: %g != %g", iter, i, rec[i], g[i])
			}
		}
	}
	if c.ResidualNorm() != 0 {
		t.Fatalf("residual norm %g", c.ResidualNorm())
	}
}

// The defining property of error feedback: a gradient component that the
// sparsifier keeps dropping must accumulate in the residual until it is
// large enough to be transmitted — nothing is permanently lost.
func TestDroppedMassEventuallyTransmitted(t *testing.T) {
	// 10 coordinates: one huge, nine tiny equal values. Top-k with k=1
	// keeps only the huge one every round; with feedback the tiny ones
	// accumulate and break through.
	inner := compress.NewTopK(0.9) // keep 1 of 10
	c := New(inner)
	g := constGrad(10, 0.01)
	g[0] = 1.0

	transmittedTiny := false
	var recSum [10]float64
	for iter := 0; iter < 200 && !transmittedTiny; iter++ {
		msg, err := c.Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		rec := make([]float32, 10)
		if err := c.Decompress(rec, msg); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 10; i++ {
			recSum[i] += float64(rec[i])
			if rec[i] != 0 {
				transmittedTiny = true
			}
		}
	}
	if !transmittedTiny {
		t.Fatal("error feedback never transmitted the small coordinates")
	}

	// Without feedback they are lost forever.
	plain := compress.NewTopK(0.9)
	for iter := 0; iter < 200; iter++ {
		msg, err := plain.Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		rec := make([]float32, 10)
		if err := plain.Decompress(rec, msg); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 10; i++ {
			if rec[i] != 0 {
				t.Fatal("plain top-k should always drop the tiny coordinates")
			}
		}
	}
}

// Long-run unbiasedness: the time-averaged transmitted gradient must
// approach the true constant gradient (residual stays bounded).
func TestLongRunMeanMatchesGradient(t *testing.T) {
	c := New(compress.NewTopK(0.8)) // keep 2 of 10
	g := []float32{1, 0.5, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}
	const iters = 500
	sum := make([]float64, len(g))
	for iter := 0; iter < iters; iter++ {
		msg, err := c.Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		rec := make([]float32, len(g))
		if err := c.Decompress(rec, msg); err != nil {
			t.Fatal(err)
		}
		for i, v := range rec {
			sum[i] += float64(v)
		}
	}
	for i, want := range g {
		mean := sum[i] / iters
		if math.Abs(mean-float64(want)) > 0.02 {
			t.Errorf("coordinate %d: long-run mean %.4f want %.4f", i, mean, want)
		}
	}
	// Residual must be bounded, not growing: smaller than total injected mass.
	if rn := c.ResidualNorm(); rn > 2 {
		t.Errorf("residual norm %g grew unboundedly", rn)
	}
}

func TestResetClearsResidual(t *testing.T) {
	c := New(compress.NewTopK(0.9))
	if _, err := c.Compress(constGrad(10, 0.1)); err != nil {
		t.Fatal(err)
	}
	if c.ResidualNorm() == 0 {
		t.Fatal("expected non-zero residual after lossy compress")
	}
	c.Reset()
	if c.ResidualNorm() != 0 {
		t.Fatal("reset did not clear residual")
	}
}

func TestLengthChangeErrors(t *testing.T) {
	c := New(compress.NewTopK(0.5))
	if _, err := c.Compress(constGrad(10, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compress(constGrad(20, 1)); err == nil {
		t.Fatal("length change should error")
	}
}

// End-to-end: at an extreme fixed θ where vanilla Top-k stalls, error
// feedback must train visibly better — the DGC result, reproduced.
// Momentum is 0 here on purpose: raw error feedback's delayed gradient
// bursts interact badly with heavy momentum (that failure is precisely
// why DGC pairs error accumulation with momentum *correction*); a
// parameter sweep shows EF winning at every θ∈{0.99,0.995,0.999} without
// momentum and losing only at momentum 0.9 + lr 0.05.
func TestFeedbackRescuesExtremeTheta(t *testing.T) {
	train, test := data.GaussianBlobs(2560, 8, 16, 1.0, 21).Split(2048)
	run := func(newC func() compress.Compressor) float64 {
		res, err := dist.Train(dist.Config{
			Workers: 4, Batch: 16, Epochs: 3, Seed: 21,
			Momentum:      0,
			LR:            optim.ConstLR(0.05),
			Model:         func(s int64) *nn.Network { return models.MLP(16, 32, 8, s) },
			Train:         train,
			Test:          test,
			NewCompressor: newC,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Epochs[len(res.Epochs)-1].TrainLoss
	}
	plain := run(func() compress.Compressor { return compress.NewTopK(0.99) })
	withEF := run(func() compress.Compressor { return New(compress.NewTopK(0.99)) })
	if withEF >= plain {
		t.Fatalf("error feedback loss %.4f not below vanilla %.4f at θ=0.99", withEF, plain)
	}
}

// Feedback composes with the FFT compressor too (the paper's "can also be
// applied to improve ours").
func TestFeedbackComposesWithFFT(t *testing.T) {
	c := New(compress.NewFFT(0.95))
	r := rand.New(rand.NewSource(5))
	g := make([]float32, 4096)
	for i := range g {
		g[i] = float32(r.NormFloat64() * 0.1)
	}
	for iter := 0; iter < 5; iter++ {
		msg, err := c.Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		rec := make([]float32, len(g))
		if err := c.Decompress(rec, msg); err != nil {
			t.Fatal(err)
		}
	}
	if c.ResidualNorm() == 0 {
		t.Fatal("expected lossy FFT to produce a residual")
	}
	// θ scheduling must pass through the wrapper.
	c.SetTheta(0)
	if _, err := c.Compress(g); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFeedbackOverhead(b *testing.B) {
	c := New(compress.NewTopK(0.85))
	r := rand.New(rand.NewSource(1))
	g := make([]float32, 1<<20)
	for i := range g {
		g[i] = float32(r.NormFloat64() * 0.1)
	}
	b.SetBytes(int64(len(g) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(g); err != nil {
			b.Fatal(err)
		}
	}
}

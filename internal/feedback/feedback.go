// Package feedback implements error-feedback (residual accumulation) on
// top of any gradient compressor.
//
// The paper notes (Sec. 5) that the heuristics Deep Gradient Compression
// uses to rescue vanilla Top-k — error accumulation and momentum
// correction — are "orthogonal to our methods and can also be applied to
// improve ours". This package is that extension: the compressor wrapper
// keeps the per-worker residual e_t = g_t + e_{t-1} − ĝ_t and folds it
// into the next iteration's gradient, so information dropped by
// sparsification is delayed rather than lost. Under the bounded-error
// Assumption 3.2 this restores convergence even for fixed aggressive θ.
package feedback

import (
	"fmt"
	"math"

	"fftgrad/internal/compress"
)

// Compressor wraps an inner compressor with error feedback. It is NOT
// safe for concurrent use: each training worker owns one instance (the
// residual is per-worker state, exactly as in DGC).
type Compressor struct {
	inner    compress.Compressor
	residual []float32
	carry    []float32 // scratch: g + residual
}

// New wraps inner with error feedback.
func New(inner compress.Compressor) *Compressor {
	return &Compressor{inner: inner}
}

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return c.inner.Name() + "+ef" }

// Inner returns the wrapped compressor.
func (c *Compressor) Inner() compress.Compressor { return c.inner }

// SetTheta forwards to the inner compressor when it supports schedules.
func (c *Compressor) SetTheta(theta float64) {
	if ts, ok := c.inner.(compress.ThetaSetter); ok {
		ts.SetTheta(theta)
	}
}

// Compress adds the accumulated residual to grad, compresses the sum with
// the inner compressor, and retains what the compression dropped as the
// next residual. grad is not modified.
func (c *Compressor) Compress(grad []float32) ([]byte, error) {
	n := len(grad)
	if c.residual == nil {
		c.residual = make([]float32, n)
		c.carry = make([]float32, n)
	}
	if len(c.residual) != n {
		return nil, fmt.Errorf("feedback: gradient length changed from %d to %d", len(c.residual), n)
	}
	for i := range c.carry {
		c.carry[i] = grad[i] + c.residual[i]
	}
	msg, err := c.inner.Compress(c.carry)
	if err != nil {
		return nil, err
	}
	// Residual = what the receiver will NOT see: carry − decode(msg).
	rec := make([]float32, n)
	if err := c.inner.Decompress(rec, msg); err != nil {
		return nil, err
	}
	for i := range c.residual {
		c.residual[i] = c.carry[i] - rec[i]
	}
	return msg, nil
}

// Decompress forwards to the inner compressor (reconstruction is
// stateless; the feedback lives entirely on the sender).
func (c *Compressor) Decompress(dst []float32, msg []byte) error {
	return c.inner.Decompress(dst, msg)
}

// AddToResidual folds g into the residual. The failure-aware trainer
// calls this with a gradient that was computed but never shipped (the
// rank crashed or was evicted before its exchange completed): instead of
// discarding the work, the information re-enters the stream on the next
// successful iteration, exactly like sparsification error under the
// Sec. 3.4 bounded-error assumption.
func (c *Compressor) AddToResidual(g []float32) {
	if c.residual == nil {
		c.residual = make([]float32, len(g))
		c.carry = make([]float32, len(g))
	}
	if len(c.residual) != len(g) {
		return
	}
	for i, v := range g {
		c.residual[i] += v
	}
}

// AddToResidualScaled folds scale·g into the residual — the
// staleness-discounted accumulation of the bounded-staleness mode. When
// a peer's d-iteration-old gradient is folded into a round with weight
// λ^d, the withheld (1−λ^d) share would otherwise leave the information
// stream entirely; each receiver banks its share of that mass here, so
// it re-enters through the next compressed message exactly like
// sparsification error under the Sec. 3.4 bounded-error assumption.
func (c *Compressor) AddToResidualScaled(g []float32, scale float32) {
	if scale == 0 {
		return
	}
	if c.residual == nil {
		c.residual = make([]float32, len(g))
		c.carry = make([]float32, len(g))
	}
	if len(c.residual) != len(g) {
		return
	}
	for i, v := range g {
		c.residual[i] += scale * v
	}
}

// ResidualNorm returns the L2 norm of the current residual — a direct
// measurement of how much information is in flight (deferred, not lost).
func (c *Compressor) ResidualNorm() float64 {
	var s float64
	for _, v := range c.residual {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Reset clears the residual (e.g. after a parameter re-broadcast if the
// caller wants strict BSP determinism across restarts).
func (c *Compressor) Reset() {
	for i := range c.residual {
		c.residual[i] = 0
	}
}

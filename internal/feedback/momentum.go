package feedback

import (
	"fmt"

	"fftgrad/internal/compress"
)

// MomentumCorrected implements DGC-style momentum correction: classical
// momentum is applied *before* sparsification, and the residual keeps the
// post-momentum update, so delayed gradient mass arrives already shaped
// by the momentum dynamics instead of being amplified by the optimizer's
// momentum afterwards:
//
//	u_t = m·u_{t-1} + g_t          (local velocity)
//	v_t = v_{t-1} + u_t            (accumulated update)
//	send  ĝ_t = C(v_t);   v_t ← v_t − ĝ_t
//
// When this wrapper is used, the trainer's optimizer must run WITHOUT its
// own momentum (the velocity lives here) — see TestMomentumCorrectedTrains.
type MomentumCorrected struct {
	inner compress.Compressor
	m     float64
	u, v  []float32
}

// NewMomentumCorrected wraps inner with momentum correction at momentum m.
func NewMomentumCorrected(inner compress.Compressor, m float64) *MomentumCorrected {
	return &MomentumCorrected{inner: inner, m: m}
}

// Name implements compress.Compressor.
func (c *MomentumCorrected) Name() string { return c.inner.Name() + "+mc" }

// SetTheta forwards to the inner compressor when it supports schedules.
func (c *MomentumCorrected) SetTheta(theta float64) {
	if ts, ok := c.inner.(compress.ThetaSetter); ok {
		ts.SetTheta(theta)
	}
}

// Compress implements compress.Compressor. grad is not modified.
func (c *MomentumCorrected) Compress(grad []float32) ([]byte, error) {
	n := len(grad)
	if c.u == nil {
		c.u = make([]float32, n)
		c.v = make([]float32, n)
	}
	if len(c.u) != n {
		return nil, fmt.Errorf("feedback: gradient length changed from %d to %d", len(c.u), n)
	}
	m := float32(c.m)
	for i := range c.u {
		c.u[i] = m*c.u[i] + grad[i]
		c.v[i] += c.u[i]
	}
	msg, err := c.inner.Compress(c.v)
	if err != nil {
		return nil, err
	}
	rec := make([]float32, n)
	if err := c.inner.Decompress(rec, msg); err != nil {
		return nil, err
	}
	for i := range c.v {
		c.v[i] -= rec[i]
	}
	return msg, nil
}

// Decompress implements compress.Compressor.
func (c *MomentumCorrected) Decompress(dst []float32, msg []byte) error {
	return c.inner.Decompress(dst, msg)
}

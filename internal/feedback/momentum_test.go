package feedback

import (
	"testing"

	"fftgrad/internal/compress"
	"fftgrad/internal/data"
	"fftgrad/internal/dist"
	"fftgrad/internal/models"
	"fftgrad/internal/nn"
	"fftgrad/internal/optim"
)

func TestMomentumCorrectedName(t *testing.T) {
	c := NewMomentumCorrected(compress.NewTopK(0.9), 0.9)
	if c.Name() != "topk+mc" {
		t.Fatalf("name %q", c.Name())
	}
}

// With a lossless inner compressor, the wrapper must reproduce classical
// momentum exactly: transmitted update u_t = m·u_{t-1} + g_t.
func TestMomentumCorrectedLosslessEqualsMomentum(t *testing.T) {
	c := NewMomentumCorrected(compress.FP32{}, 0.5)
	g := []float32{1, -2}
	want := [][]float32{{1, -2}, {1.5, -3}, {1.75, -3.5}}
	for step, w := range want {
		msg, err := c.Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		rec := make([]float32, 2)
		if err := c.Decompress(rec, msg); err != nil {
			t.Fatal(err)
		}
		for i := range w {
			if rec[i] != w[i] {
				t.Fatalf("step %d idx %d: %g want %g", step, i, rec[i], w[i])
			}
		}
	}
}

func TestMomentumCorrectedLengthChange(t *testing.T) {
	c := NewMomentumCorrected(compress.NewTopK(0.5), 0.9)
	if _, err := c.Compress(make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compress(make([]float32, 9)); err == nil {
		t.Fatal("length change should error")
	}
}

// End-to-end sanity at an aggressive θ with the optimizer's momentum
// moved into the wrapper. At this toy scale momentum correction does not
// reliably beat vanilla-with-momentum (DGC's wins are demonstrated on
// long ImageNet runs at 99.9% sparsity), so the robust assertions are:
// training makes progress, stays in the same loss regime as vanilla, and
// — measured at seed 21 — avoids raw error-feedback's momentum blowup.
func TestMomentumCorrectedTrains(t *testing.T) {
	train, test := data.GaussianBlobs(2560, 8, 16, 1.0, 21).Split(2048)
	run := func(newC func() compress.Compressor, optMomentum float64) (first, last float64) {
		res, err := dist.Train(dist.Config{
			Workers: 4, Batch: 16, Epochs: 3, Seed: 21,
			Momentum:      optMomentum,
			LR:            optim.ConstLR(0.05),
			Model:         func(s int64) *nn.Network { return models.MLP(16, 32, 8, s) },
			Train:         train,
			Test:          test,
			NewCompressor: newC,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Epochs[0].TrainLoss, res.Epochs[len(res.Epochs)-1].TrainLoss
	}
	const theta = 0.999
	_, vanilla := run(func() compress.Compressor { return compress.NewTopK(theta) }, 0.9)
	_, rawEF := run(func() compress.Compressor { return New(compress.NewTopK(theta)) }, 0.9)
	first, corrected := run(func() compress.Compressor {
		return NewMomentumCorrected(compress.NewTopK(theta), 0.9)
	}, 0) // momentum lives in the wrapper
	if corrected >= first {
		t.Fatalf("momentum-corrected training made no progress: %.4f -> %.4f", first, corrected)
	}
	if corrected > vanilla*3 {
		t.Fatalf("momentum-corrected loss %.4f far above vanilla %.4f", corrected, vanilla)
	}
	if corrected >= rawEF {
		t.Fatalf("momentum correction %.4f should fix raw EF's momentum blowup %.4f", corrected, rawEF)
	}
}
